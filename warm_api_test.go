package steadystate_test

// Warm-start equivalence at the API level: a Solver session with a basis
// cache must return bit-identical throughputs to cold solves — on every
// collective kind, on identical re-solves, and on perturbed platforms —
// while the Report's warm-start telemetry records what the cache did.

import (
	"context"
	"math/big"
	"testing"

	steadystate "repro"
)

// warmKindSpecs builds one small spec per collective kind over the
// platform's participants.
func warmKindSpecs(t *testing.T, p *steadystate.Platform) map[string]steadystate.Spec {
	t.Helper()
	parts := p.Participants()
	if len(parts) < 4 {
		t.Fatalf("platform has %d participants, need 4", len(parts))
	}
	return map[string]steadystate.Spec{
		"scatter":   steadystate.ScatterSpec(parts[0], parts[1], parts[2], parts[3]),
		"broadcast": steadystate.BroadcastSpec(parts[0], parts[1], parts[2]),
		"gossip":    steadystate.GossipSpec(parts[:3], parts[:3]),
		"reduce":    steadystate.ReduceSpec(parts[:4], parts[0]),
		"gather":    steadystate.GatherSpec(parts[:3], parts[0]),
		"prefix":    steadystate.PrefixSpec(parts[:3]...),
		"composite": steadystate.CompositeSpec([]steadystate.Spec{
			steadystate.ScatterSpec(parts[0], parts[1], parts[2]),
			steadystate.ReduceSpec(parts[:3], parts[0]),
		}, nil),
	}
}

// rebuildWith reassembles the platform with every edge cost scaled by
// factor (nil: unchanged) and the edges selected by keep (nil: all).
// Re-adding nodes in ID order preserves NodeIDs, so specs stay valid.
func rebuildWith(p *steadystate.Platform, factor steadystate.Rat, keep func(i int) bool) *steadystate.Platform {
	q := steadystate.NewPlatform()
	for _, n := range p.Nodes() {
		if n.Router {
			q.AddRouter(n.Name)
		} else {
			q.AddNode(n.Name, n.Speed)
		}
	}
	for i, e := range p.Edges() {
		if keep != nil && !keep(i) {
			continue
		}
		cost := e.Cost
		if factor != nil {
			cost = new(big.Rat).Mul(e.Cost, factor)
		}
		q.AddEdge(e.From, e.To, cost)
	}
	return q
}

// TestWarmSolverMatchesColdAllKinds re-solves every kind through a
// basis-cached session: the second, warm-started solve must return the
// identical throughput with zero simplex pivots (its predecessor's basis
// is already optimal), and the report must say so.
func TestWarmSolverMatchesColdAllKinds(t *testing.T) {
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(7))
	for name, spec := range warmKindSpecs(t, p) {
		t.Run(name, func(t *testing.T) {
			solver := steadystate.NewSolver(p).UseBasisCache(steadystate.NewBasisCache(16))
			first, err := solver.Solve(context.Background(), spec)
			if err != nil {
				t.Fatalf("first solve: %v", err)
			}
			second, err := solver.Solve(context.Background(), spec)
			if err != nil {
				t.Fatalf("second solve: %v", err)
			}
			if first.Throughput().Cmp(second.Throughput()) != 0 {
				t.Errorf("warm TP %s != cold TP %s",
					second.Throughput().RatString(), first.Throughput().RatString())
			}
			frep, err := first.Report()
			if err != nil {
				t.Fatalf("first report: %v", err)
			}
			if frep.WarmStart || frep.WarmReject != "" {
				t.Errorf("first solve reported warm_start=%v warm_reject=%q, want cold",
					frep.WarmStart, frep.WarmReject)
			}
			rep, err := second.Report()
			if err != nil {
				t.Fatalf("second report: %v", err)
			}
			if !rep.WarmStart {
				t.Fatalf("second solve not warm-started (reject %q)", rep.WarmReject)
			}
			if rep.LPPivots != 0 || rep.LPPhase1Pivots != 0 {
				t.Errorf("warm re-solve spent %d pivots (%d phase 1), want 0 from its own optimal basis",
					rep.LPPivots, rep.LPPhase1Pivots)
			}
			if rep.Throughput != frep.Throughput || rep.Period != frep.Period {
				t.Errorf("warm report (%s, %s) != cold report (%s, %s)",
					rep.Throughput, rep.Period, frep.Throughput, frep.Period)
			}
			if frep.LPPhase1Pivots > 0 && rep.WarmPivotsSaved != frep.LPPhase1Pivots {
				t.Errorf("warm_pivots_saved %d, want the cold phase-1 cost %d",
					rep.WarmPivotsSaved, frep.LPPhase1Pivots)
			}
		})
	}
}

// TestWarmSolverPerturbedPlatform shares one basis cache between a base
// platform's session and a cost-jittered copy's: the perturbed solve
// must warm-start off the base basis (the structural fingerprint is
// unchanged by cost scaling) and still return exactly the throughput a
// cold solve of the perturbed platform returns.
func TestWarmSolverPerturbedPlatform(t *testing.T) {
	base := steadystate.Tiers(steadystate.DefaultTiersConfig(11))
	parts := base.Participants()
	spec := steadystate.ScatterSpec(parts[0], parts[1], parts[2], parts[3])

	cache := steadystate.NewBasisCache(16)
	if _, err := steadystate.NewSolver(base).UseBasisCache(cache).Solve(context.Background(), spec); err != nil {
		t.Fatalf("base solve: %v", err)
	}

	perturbed := rebuildWith(base, big.NewRat(21, 20), nil)
	warm, err := steadystate.NewSolver(perturbed).UseBasisCache(cache).Solve(context.Background(), spec)
	if err != nil {
		t.Fatalf("perturbed warm solve: %v", err)
	}
	cold, err := steadystate.Solve(context.Background(), rebuildWith(base, big.NewRat(21, 20), nil), spec)
	if err != nil {
		t.Fatalf("perturbed cold solve: %v", err)
	}
	if warm.Throughput().Cmp(cold.Throughput()) != 0 {
		t.Errorf("perturbed warm TP %s != cold TP %s",
			warm.Throughput().RatString(), cold.Throughput().RatString())
	}
	rep, err := warm.Report()
	if err != nil {
		t.Fatalf("warm report: %v", err)
	}
	if !rep.WarmStart {
		t.Errorf("perturbed solve not warm-started (reject %q)", rep.WarmReject)
	}
	if rep.LPPhase1Pivots != 0 {
		t.Errorf("perturbed warm solve spent %d phase-1 pivots, want 0", rep.LPPhase1Pivots)
	}
}

// TestWarmSolverEdgeDeleteRejected pins the fingerprint guard end to
// end: deleting an edge changes the LP's structure, so the cached basis
// must be rejected with fingerprint_mismatch and the solve must fall
// back to a cold path returning the perturbed platform's own optimum.
func TestWarmSolverEdgeDeleteRejected(t *testing.T) {
	base := steadystate.Tiers(steadystate.DefaultTiersConfig(11))
	parts := base.Participants()
	spec := steadystate.ScatterSpec(parts[0], parts[1], parts[2], parts[3])

	cache := steadystate.NewBasisCache(16)
	if _, err := steadystate.NewSolver(base).UseBasisCache(cache).Solve(context.Background(), spec); err != nil {
		t.Fatalf("base solve: %v", err)
	}

	// Delete the first edge whose removal keeps the platform mutually
	// connected (so the spec stays solvable).
	var cut *steadystate.Platform
	for i := range base.Edges() {
		q := rebuildWith(base, nil, func(j int) bool { return j != i })
		if q.Validate() == nil {
			cut = q
			break
		}
	}
	if cut == nil {
		t.Skip("no single edge of the seeded Tiers platform is removable")
	}

	warm, err := steadystate.NewSolver(cut).UseBasisCache(cache).Solve(context.Background(), spec)
	if err != nil {
		t.Fatalf("edge-cut warm solve: %v", err)
	}
	cold, err := steadystate.Solve(context.Background(), cut, spec)
	if err != nil {
		t.Fatalf("edge-cut cold solve: %v", err)
	}
	if warm.Throughput().Cmp(cold.Throughput()) != 0 {
		t.Errorf("edge-cut warm TP %s != cold TP %s",
			warm.Throughput().RatString(), cold.Throughput().RatString())
	}
	rep, err := warm.Report()
	if err != nil {
		t.Fatalf("warm report: %v", err)
	}
	if rep.WarmStart {
		t.Error("edge-cut solve claims warm_start despite a structural change")
	}
	if rep.WarmReject != "fingerprint_mismatch" {
		t.Errorf("warm_reject = %q, want fingerprint_mismatch", rep.WarmReject)
	}
	crep, err := cold.Report()
	if err != nil {
		t.Fatalf("cold report: %v", err)
	}
	if rep.LPPivots != crep.LPPivots || rep.LPPhase1Pivots != crep.LPPhase1Pivots {
		t.Errorf("rejected warm solve pivots (%d, %d phase 1) differ from cold (%d, %d)",
			rep.LPPivots, rep.LPPhase1Pivots, crep.LPPivots, crep.LPPhase1Pivots)
	}
}
