// Package steadystate is the public API of this repository: a Go
// implementation of
//
//	A. Legrand, L. Marchal, Y. Robert,
//	"Optimizing the steady-state throughput of scatter and reduce
//	operations on heterogeneous platforms", IPPS 2004 (INRIA RR-4872).
//
// Instead of minimizing the completion time of a single collective
// communication, the library pipelines a long series of identical
// collectives on a heterogeneous platform — a directed graph of processors
// and routers with per-link transfer costs and per-node compute speeds,
// operating under the bidirectional one-port model — and computes the
// optimal steady-state throughput TP (operations started per time unit)
// together with a concrete periodic schedule achieving it:
//
//   - Scatter (Section 3): one source, one distinct message per target per
//     operation. SolveScatter returns the optimal typed multi-route flow.
//   - Broadcast (companion work): one source, the same message to every
//     target per operation — the scatter LP with one commodity replicated
//     to all targets, charged to the one-port model through shared
//     per-edge carry rates.
//   - Gossip / personalized all-to-all (Section 3.5): every source sends a
//     distinct message to every target per operation.
//   - Reduce (Section 4): participants P_0…P_N hold values v_i, and
//     v_0 ⊕ … ⊕ v_N (⊕ associative, non-commutative) must reach a target.
//     SolveReduce returns the optimal rates of partial-result transfers
//     v[k,m] and merge tasks T_{k,l,m}; ExtractTrees certifies them as a
//     small weighted family of reduction trees (Theorem 1).
//   - Parallel prefix (Section 6 extension): every rank i receives v[0,i].
//   - Reduce-scatter: each rank i of the order keeps segment i reduced
//     over all ranks — the composite of N concurrent reduces sharing the
//     platform's port and compute capacity.
//   - Allreduce: every rank receives the full reduction — the composite
//     of a reduce-scatter phase and an allgather (gossip) phase at a
//     common rate.
//   - Composite: any weighted superposition of the base collectives,
//     solved as one LP with shared capacity rows and a common (weighted)
//     throughput.
//
// All of these collectives are instances of one steady-state framework (a
// linear program over the same platform graph), and the API reflects
// that: a Spec names the collective (kind + roles), the single entry
// point Solve computes its optimal throughput, and the returned Solution
// uniformly exposes the schedule, the protocol simulation model and a
// serializable Report:
//
//	p := steadystate.NewPlatform()
//	src := p.AddNode("src", steadystate.R(1, 1))
//	dst := p.AddNode("dst", steadystate.R(1, 1))
//	p.AddLink(src, dst, steadystate.R(1, 4)) // 4 unit messages per time unit
//	sol, _ := steadystate.Solve(ctx, p, steadystate.ScatterSpec(src, dst))
//	fmt.Println(sol.Throughput()) // exact rational: 4
//	sched, _ := sol.Schedule()    // one-port-safe periodic schedule
//
// Reduce-family solves take functional options — WithMessageSize,
// WithTaskTime, WithBlockSize, WithFixedPeriod:
//
//	p, order, target := steadystate.PaperFig9()
//	sol, _ := steadystate.Solve(ctx, p, steadystate.ReduceSpec(order, target),
//	    steadystate.WithMessageSize(steadystate.PaperFig9MessageSize()))
//
// Concurrent collectives superpose through CompositeSpec (arbitrary
// weighted members) or ReduceScatterSpec; the returned Solution
// additionally implements Concurrent, exposing each member as a full
// per-kind Solution, and Schedule merges every member's transfers into
// one one-port-safe slot sequence:
//
//	sol, _ := steadystate.Solve(ctx, p, steadystate.ReduceScatterSpec(order...))
//	for _, member := range sol.(steadystate.Concurrent).Members() {
//	    fmt.Println(member.Spec().Target, member.Throughput())
//	}
//
// For repeated solves on one platform (sweeps, services), a Solver
// session reuses per-platform state and is safe for concurrent use:
//
//	solver := steadystate.NewSolver(p)
//	for _, spec := range specs {
//	    sol, err := solver.Solve(ctx, spec)
//	    ...
//	}
//
// The context cancels the exact simplex loop between pivots, so oversized
// solves can be bounded by deadlines. Platforms, Specs and Reports
// (solution summaries) all serialize to JSON — see Scenario for the
// platform+spec file format the cmd/ tools exchange.
//
// All arithmetic is exact over the rationals (math/big.Rat): throughputs,
// schedules and periods are bit-exact, not floating point. Supporting
// machinery is exposed for schedule construction (weighted-matching
// decomposition into one-port-safe slots, Section 3.3), fixed-period
// approximation (Section 4.6), dynamic simulation of the buffered
// steady-state protocol (Section 3.4), baseline comparators, and topology
// generation (including the paper's own example platforms).
//
// The per-collective entry points below (SolveScatter, SolveGossip,
// SolveReduce, SolvePrefix) predate the unified API; they remain as thin
// deprecated wrappers delegating to Solve.
package steadystate

import (
	"context"
	"math/big"

	"repro/internal/baseline"
	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/prefix"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/scatter"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Platform is the heterogeneous platform graph G = (V, E, c): directed
// edges carry the time to transfer a unit-size message; non-router nodes
// carry compute speeds. Platform.ContentHash identifies a platform by the
// sha256 of its canonical JSON — the session-sharing and report-cache key
// of the sweep engine and the solverd serving layer.
type Platform = graph.Platform

// NodeID identifies a platform node.
type NodeID = graph.NodeID

// Node is one platform resource.
type Node = graph.Node

// Edge is one directed communication link.
type Edge = graph.Edge

// Rat is an exact rational number (alias of *math/big.Rat).
type Rat = rat.Rat

// NewPlatform returns an empty platform.
func NewPlatform() *Platform { return graph.New() }

// R returns the exact rational n/d.
func R(n, d int64) Rat { return rat.New(n, d) }

// ParseRat parses "3", "3/4" or "0.75" into an exact rational.
func ParseRat(s string) (Rat, error) { return rat.Parse(s) }

// ---------------------------------------------------------------------------
// Scatter (Section 3)

// ScatterProblem is a Series of Scatters instance.
type ScatterProblem = scatter.Problem

// ScatterSolution is a solved Series of Scatters.
type ScatterSolution = scatter.Solution

// SolveScatter computes the optimal steady-state scatter throughput from
// source to targets and the typed multi-route flow achieving it
// (linear program SSSP(G)).
//
// Deprecated: use Solve with ScatterSpec(source, targets...), which adds
// context cancellation and the uniform Solution interface.
func SolveScatter(p *Platform, source NodeID, targets []NodeID) (*ScatterSolution, error) {
	sol, err := Solve(context.Background(), p, ScatterSpec(source, targets...))
	if err != nil {
		return nil, err
	}
	return sol.Unwrap().(*ScatterSolution), nil
}

// ---------------------------------------------------------------------------
// Broadcast (companion work)

// BroadcastProblem is a Series of Broadcasts instance: one source, every
// target receives a copy of every message. Build one through Solve with
// BroadcastSpec(source, targets...).
type BroadcastProblem = scatter.BroadcastProblem

// BroadcastSolution is a solved Series of Broadcasts: the optimal
// throughput, the per-target virtual flows, and the shared per-edge carry
// rates the one-port model is charged for.
type BroadcastSolution = scatter.BroadcastSolution

// ---------------------------------------------------------------------------
// Gossip (Section 3.5)

// GossipProblem is a Series of Gossips (personalized all-to-all) instance.
type GossipProblem = gossip.Problem

// GossipSolution is a solved Series of Gossips.
type GossipSolution = gossip.Solution

// SolveGossip computes the optimal steady-state personalized all-to-all
// throughput (linear program SSPA2A(G)).
//
// Deprecated: use Solve with GossipSpec(sources, targets), which adds
// context cancellation and the uniform Solution interface.
func SolveGossip(p *Platform, sources, targets []NodeID) (*GossipSolution, error) {
	sol, err := Solve(context.Background(), p, GossipSpec(sources, targets))
	if err != nil {
		return nil, err
	}
	return sol.Unwrap().(*GossipSolution), nil
}

// ---------------------------------------------------------------------------
// Reduce (Section 4)

// ReduceProblem is a Series of Reduces instance; customize SizeOf and
// TaskTime before calling Solve for non-uniform message sizes.
type ReduceProblem = reduce.Problem

// ReduceSolution is a solved Series of Reduces.
type ReduceSolution = reduce.Solution

// ReduceApplication is the integer per-period form of a reduce solution.
type ReduceApplication = reduce.Application

// ReductionTree is one weighted reduction tree of an extracted family.
type ReductionTree = reduce.Tree

// ReduceRange identifies a partial result v[K,M].
type ReduceRange = reduce.Range

// ReduceTask identifies a merge task T_{K,L,M}.
type ReduceTask = reduce.Task

// NewReduceProblem validates a reduce instance: order lists the
// participants (order[i] holds v_i); target stores the final result.
func NewReduceProblem(p *Platform, order []NodeID, target NodeID) (*ReduceProblem, error) {
	return reduce.NewProblem(p, order, target)
}

// SolveReduce computes the optimal steady-state reduce throughput with
// unit-size partial results.
//
// Deprecated: use Solve with ReduceSpec(order, target) — and
// WithMessageSize / WithTaskTime instead of mutating a ReduceProblem —
// which adds context cancellation and the uniform Solution interface.
func SolveReduce(p *Platform, order []NodeID, target NodeID) (*ReduceSolution, error) {
	sol, err := Solve(context.Background(), p, ReduceSpec(order, target))
	if err != nil {
		return nil, err
	}
	return sol.Unwrap().(*ReduceSolution), nil
}

// NewGatherProblem configures a Series of Gathers as a reduce whose
// operator is concatenation: partial results have size (m−k+1)·blockSize
// and merges are free. Gathers in rank order are exactly non-commutative
// reductions (paper, Section 4).
func NewGatherProblem(p *Platform, order []NodeID, target NodeID, blockSize Rat) (*ReduceProblem, error) {
	return reduce.NewGatherProblem(p, order, target, blockSize)
}

// FixedPeriodPlan is the Section 4.6 approximation of a tree family for an
// arbitrary period.
type FixedPeriodPlan = reduce.FixedPeriodPlan

// ApproximateFixedPeriod re-weights extracted trees for the period fixed,
// losing at most card(trees)/fixed of throughput (Proposition 4).
func ApproximateFixedPeriod(app *ReduceApplication, trees []*ReductionTree, fixed *big.Int) (*FixedPeriodPlan, error) {
	return reduce.ApproximateFixedPeriod(app, trees, fixed)
}

// VerifyTreeDecomposition checks Theorem 1's Σ w(T)·χ_T = A equation.
func VerifyTreeDecomposition(app *ReduceApplication, trees []*ReductionTree) error {
	return reduce.VerifyDecomposition(app, trees)
}

// ---------------------------------------------------------------------------
// Concurrent collectives (composite / reduce-scatter)

// CompositeProblem is a set of collectives solved as one steady-state LP
// with shared one-port and compute capacity; build one through Solve with
// CompositeSpec or ReduceScatterSpec.
type CompositeProblem = composite.Problem

// CompositeSolution is a solved composite: the common base throughput TP
// (member i runs at Weight_i·TP) and the per-member sub-solutions. It is
// what a composite or reduce-scatter Solution unwraps to.
type CompositeSolution = composite.Solution

// CompositeMemberSolution is one member's share of a solved composite.
type CompositeMemberSolution = composite.MemberSolution

// ---------------------------------------------------------------------------
// Parallel prefix (Section 6 extension)

// PrefixProblem is a Series of Parallel Prefixes instance.
type PrefixProblem = prefix.Problem

// PrefixSolution is a solved prefix series.
type PrefixSolution = prefix.Solution

// SolvePrefix computes the optimal steady-state parallel-prefix
// throughput: every rank i receives v[0,i] per operation.
//
// Deprecated: use Solve with PrefixSpec(order...), which adds context
// cancellation and the uniform Solution interface.
func SolvePrefix(p *Platform, order []NodeID) (*PrefixSolution, error) {
	sol, err := Solve(context.Background(), p, PrefixSpec(order...))
	if err != nil {
		return nil, err
	}
	return sol.Unwrap().(*PrefixSolution), nil
}

// ---------------------------------------------------------------------------
// Schedules (Sections 3.3, 4.3)

// Schedule is a concrete periodic communication schedule: consecutive
// slots, each a one-port-safe matching of simultaneous transfers.
type Schedule = schedule.Schedule

// ScheduleSlot is one slot of a periodic schedule.
type ScheduleSlot = schedule.Slot

// ScatterSchedule serializes a scatter solution's period into matching
// slots (the construction behind the paper's Figures 3–4).
func ScatterSchedule(sol *ScatterSolution) (*Schedule, error) {
	return schedule.FromFlow(sol.Flow, scatter.UnitSize, func(c core.Commodity) string {
		return "m_" + sol.Problem.Platform.Node(c.Dst).Name
	})
}

// GossipSchedule serializes a gossip solution's period.
func GossipSchedule(sol *GossipSolution) (*Schedule, error) {
	p := sol.Problem.Platform
	return schedule.FromFlow(sol.Flow, gossip.UnitSize, func(c core.Commodity) string {
		return "m_" + p.Node(c.Src).Name + "_" + p.Node(c.Dst).Name
	})
}

// BroadcastSchedule serializes a broadcast solution's period: the carry
// stream — the messages physically moved, one shared copy per edge — is
// decomposed into one-port-safe matching slots.
func BroadcastSchedule(sol *BroadcastSolution) (*Schedule, error) {
	return schedule.MergeFlows(sol.Problem.Platform, sol.Period(),
		[]schedule.MemberFlow{composite.BroadcastMemberFlow(sol, "")})
}

// ReduceSchedule serializes a reduce tree family's period; pass a nil
// period to use the application's exact period, or a fixed-period plan's
// trees with its period.
func ReduceSchedule(app *ReduceApplication, trees []*ReductionTree, period *big.Int) (*Schedule, error) {
	return schedule.FromTrees(app, trees, period)
}

// ---------------------------------------------------------------------------
// Simulation (Section 3.4 protocol)

// SimModel is a dynamic model of the buffered periodic protocol.
type SimModel = sim.Model

// SimResult reports a finished simulation run.
type SimResult = sim.Result

// ScatterSimModel builds the simulation model of a scatter solution.
func ScatterSimModel(sol *ScatterSolution) *SimModel { return sim.ScatterModel(sol) }

// GossipSimModel builds the simulation model of a gossip solution.
func GossipSimModel(sol *GossipSolution) *SimModel { return sim.GossipModel(sol) }

// ReduceSimModel builds the simulation model of a reduce application.
func ReduceSimModel(app *ReduceApplication) *SimModel { return sim.ReduceModel(app) }

// BroadcastSimModel builds the simulation model of a broadcast solution:
// the shared carry stream y(e) is replayed with per-target replication —
// each target's bundled virtual flow x(e, b_t) is its own commodity, so
// delivered counts are checked against TP per target, not per physical
// edge-copy.
func BroadcastSimModel(sol *BroadcastSolution) *SimModel { return sim.BroadcastModel(sol) }

// PrefixSimModel builds the simulation model of a prefix solution: every
// rank delivers its prefix v[0,i] through a per-period quota sink (surplus
// stays buffered for forwarding), and rank 0's locally owned v[0,0] is
// credited directly.
func PrefixSimModel(sol *PrefixSolution) *SimModel { return sim.PrefixModel(sol) }

// MergeSimModels superposes per-member simulation models over a common
// period (each member period must divide it), namespacing each member's
// commodities with its label — the dynamic counterpart of the merged
// one-port schedule. Composite solutions do this internally via SimModel.
func MergeSimModels(p *Platform, period *big.Int, members []*SimModel, labels []string) (*SimModel, error) {
	return sim.Merge(p, period, members, labels)
}

// SimMemberPrefix returns member i's commodity-namespace prefix ("op<i>:")
// in a merged composite model; pass it to SimResult.MinDeliveredPrefix to
// read that member's delivered counts.
func SimMemberPrefix(i int) string { return sim.MemberPrefix(i) }

// Simulate runs the Section 3.4 protocol for the given number of periods
// and reports delivered operations, buffer high-water marks and the end of
// the initialization phase.
func Simulate(m *SimModel, periods int) (*SimResult, error) { return sim.Run(m, periods) }

// SimLatencyResult reports per-operation pipeline latency.
type SimLatencyResult = sim.LatencyResult

// SimulateLatency runs the protocol with FIFO origin tracking, measuring
// how many periods each delivered operation spent in flight — the latency
// cost of throughput-optimal pipelining.
func SimulateLatency(m *SimModel, periods int) (*SimLatencyResult, error) {
	return sim.RunLatency(m, periods)
}

// ---------------------------------------------------------------------------
// Baselines

// BaselineScatter is a single-path scatter plan and its throughput.
type BaselineScatter = baseline.ScatterResult

// BaselineReduce is a fixed single-tree reduce plan and its throughput.
type BaselineReduce = baseline.ReduceResult

// SinglePathScatter evaluates the static min-cost-path scatter baseline.
func SinglePathScatter(p *Platform, source NodeID, targets []NodeID) (*BaselineScatter, error) {
	return baseline.SinglePathScatter(p, source, targets)
}

// FlatReduceTree evaluates the gather-then-reduce-at-target baseline.
func FlatReduceTree(pr *ReduceProblem) (*BaselineReduce, error) {
	return baseline.FlatReduceTree(pr)
}

// BinaryReduceTree evaluates the balanced-merge-tree baseline.
func BinaryReduceTree(pr *ReduceProblem) (*BaselineReduce, error) {
	return baseline.BinaryReduceTree(pr)
}

// ---------------------------------------------------------------------------
// Topologies

// TiersConfig sizes a Tiers-like hierarchical random platform.
type TiersConfig = topology.TiersConfig

// RandomConfig controls the plain random generators.
type RandomConfig = topology.RandomConfig

// DefaultTiersConfig mirrors the scale of the paper's Figure 9.
func DefaultTiersConfig(seed int64) TiersConfig { return topology.DefaultTiersConfig(seed) }

// Tiers generates a Tiers-like WAN/MAN/LAN platform.
func Tiers(cfg TiersConfig) *Platform { return topology.Tiers(cfg) }

// Star builds a hub-and-spoke platform: node 0 linked to n peers.
func Star(n int, cost, speed Rat) *Platform { return topology.Star(n, cost, speed) }

// Chain builds a line of n nodes with symmetric links.
func Chain(n int, cost, speed Rat) *Platform { return topology.Chain(n, cost, speed) }

// Ring builds a cycle of n nodes with symmetric links.
func Ring(n int, cost, speed Rat) *Platform { return topology.Ring(n, cost, speed) }

// Grid2D builds an r×c mesh with symmetric links.
func Grid2D(r, c int, cost, speed Rat) *Platform {
	return topology.Grid2D(r, c, cost, speed)
}

// PaperFig2 returns the paper's toy scatter platform (TP = 1/2).
func PaperFig2() (*Platform, NodeID, []NodeID) { return topology.PaperFig2() }

// PaperFig6 returns the paper's toy reduce platform (TP = 1).
func PaperFig6() (*Platform, []NodeID, NodeID) { return topology.PaperFig6() }

// PaperFig9 returns the paper's 14-node Tiers experiment platform.
func PaperFig9() (*Platform, []NodeID, NodeID) { return topology.PaperFig9() }

// PaperFig9MessageSize is the message size of the Figure 9 experiment.
func PaperFig9MessageSize() Rat { return topology.PaperFig9MessageSize() }
