// Package schedule turns solved steady-state rates into concrete periodic
// communication schedules (Sections 3.3 and 4.3 of the paper).
//
// The construction: scale the rational solution to an integer period T
// (LCM of denominators), build the bipartite sender/receiver graph whose
// edges are the per-period transfer times, decompose it into weighted
// matchings (package matching), and lay the matchings out as consecutive
// slots of the period. Within a slot every processor sends at most one
// stream and receives at most one, so the slot's transfers run in parallel
// without violating the one-port model; slots run back to back and fit in
// the period because the LP bounded every port's busy time by T.
//
// Transfers may be split across non-adjacent slots (the paper's Figure
// 4(a)); Unsplit rescales the period so that every slot moves a whole
// number of messages (Figure 4(b)).
//
// Two constructions are exposed: FromFlow serializes one solved
// scatter/gossip flow, and MergeFlows superposes the transfer demands of
// several concurrent collectives (composite, reduce-scatter, allreduce
// members, broadcast carry streams) over a common period — typically the
// LCM of the member periods — into a single one-port-safe slot sequence.
package schedule

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rat"
)

// Transfer is one typed message stream within a slot.
type Transfer struct {
	From, To graph.NodeID
	// Label describes the message type (e.g. "m_P0" or "v[1,6]#2" for
	// tree 2 of a reduce schedule).
	Label string
	// Messages is the (possibly fractional) number of messages moved
	// during the slot.
	Messages rat.Rat
}

// Slot is one serial step of the period: its transfers run simultaneously.
type Slot struct {
	Start, End rat.Rat
	Transfers  []Transfer
}

// Duration returns End − Start.
func (s Slot) Duration() rat.Rat { return rat.Sub(s.End, s.Start) }

// Schedule is a periodic communication schedule.
type Schedule struct {
	Platform *graph.Platform
	// Period is the schedule period in time units.
	Period rat.Rat
	Slots  []Slot
	// ComputeLoad is the per-node computation time per period (reduce
	// schedules only; communication-only schedules leave it empty). The
	// full-overlap model lets nodes compute in parallel with the slots.
	ComputeLoad map[graph.NodeID]rat.Rat
}

// payload carries transfer identity through the matching decomposition.
type payload struct {
	label string
	// perTime is messages per time unit: count/weight, used to convert a
	// step's duration back to a message count.
	perTime rat.Rat
}

// FromFlow builds the periodic schedule of a scatter/gossip solution: one
// bipartite edge per (platform edge, message type), weighted by its busy
// time within the integer period.
func FromFlow[C comparable](flow *core.Flow[C], sizeOf func(C) rat.Rat, label func(C) string) (*Schedule, error) {
	period := new(big.Rat).SetInt(flow.Period())
	var transfers []matching.Transfer
	nNodes := flow.Platform.NumNodes()
	for e, types := range flow.Sends {
		cost := flow.Platform.Cost(e.From, e.To)
		for c, rate := range types {
			count := rat.Mul(rate, period)   // messages per period
			unit := rat.Mul(sizeOf(c), cost) // time per message
			weight := rat.Mul(count, unit)   // busy time per period
			perTime := rat.Inv(unit)         // messages per time unit
			transfers = append(transfers, matching.Transfer{
				Sender:   int(e.From),
				Receiver: int(e.To),
				Weight:   weight,
				Payload:  payload{label: label(c), perTime: perTime},
			})
		}
	}
	// flow.Sends iteration is map-ordered; the matching decomposition is
	// order-sensitive (which matching is extracted first decides the slot
	// layout), so sort before assembling to keep schedules reproducible.
	sort.Slice(transfers, func(i, j int) bool {
		a, b := transfers[i], transfers[j]
		if a.Sender != b.Sender {
			return a.Sender < b.Sender
		}
		if a.Receiver != b.Receiver {
			return a.Receiver < b.Receiver
		}
		return a.Payload.(payload).label < b.Payload.(payload).label
	})
	return assemble(flow.Platform, period, transfers, nil, nNodes)
}

// FlowTransfer is one typed steady-state message stream contributed to a
// merged schedule: Rate messages of the given Size per time unit on the
// edge From→To.
type FlowTransfer struct {
	From, To graph.NodeID
	Label    string
	Size     rat.Rat
	Rate     rat.Rat
}

// MemberFlow is one collective's demand inside a merged schedule: its
// typed transfers plus (for reduce-family members) the per-node compute
// occupation per time unit.
type MemberFlow struct {
	Transfers []FlowTransfer
	// ComputeTime maps a node to its compute busy fraction (≤ 1); it is
	// scaled by the period into the schedule's ComputeLoad.
	ComputeTime map[graph.NodeID]rat.Rat
}

// MergeFlows builds one periodic schedule for several collectives
// superposed on the same platform: the union of every member's transfers
// over the common integer period (normally the LCM of the member periods)
// is decomposed into one sequence of one-port-safe matching slots. The
// members must jointly satisfy the shared one-port constraints — as
// solutions of one shared-capacity LP do — or the decomposition fails with
// the port whose busy time overruns the period.
func MergeFlows(p *graph.Platform, period *big.Int, members []MemberFlow) (*Schedule, error) {
	per := new(big.Rat).SetInt(period)
	var transfers []matching.Transfer
	computeLoad := make(map[graph.NodeID]rat.Rat)
	for _, mem := range members {
		for _, tr := range mem.Transfers {
			cost := p.Cost(tr.From, tr.To)
			count := rat.Mul(tr.Rate, per) // messages per period
			unit := rat.Mul(tr.Size, cost) // time per message
			weight := rat.Mul(count, unit) // busy time per period
			transfers = append(transfers, matching.Transfer{
				Sender:   int(tr.From),
				Receiver: int(tr.To),
				Weight:   weight,
				Payload:  payload{label: tr.Label, perTime: rat.Inv(unit)},
			})
		}
		for id, busy := range mem.ComputeTime {
			if computeLoad[id] == nil {
				computeLoad[id] = rat.Zero()
			}
			computeLoad[id].Add(computeLoad[id], rat.Mul(busy, per))
		}
	}
	if len(computeLoad) == 0 {
		computeLoad = nil
	}
	return assemble(p, per, transfers, computeLoad, p.NumNodes())
}

// assemble runs the matching decomposition and lays out the slots.
func assemble(p *graph.Platform, period rat.Rat, transfers []matching.Transfer,
	computeLoad map[graph.NodeID]rat.Rat, nNodes int) (*Schedule, error) {
	if len(transfers) > 0 {
		delta := matching.MaxWeightedDegree(nNodes, nNodes, transfers)
		if delta.Cmp(period) > 0 {
			return nil, fmt.Errorf("schedule: port busy time %s exceeds period %s (solution violates one-port)",
				delta.RatString(), period.RatString())
		}
	}
	steps, err := matching.Decompose(nNodes, nNodes, transfers)
	if err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	sched := &Schedule{Platform: p, Period: rat.Copy(period), ComputeLoad: computeLoad}
	clock := rat.Zero()
	for _, st := range steps {
		slot := Slot{Start: rat.Copy(clock), End: rat.Add(clock, st.Duration)}
		for _, tr := range st.Transfers {
			pl := tr.Payload.(payload)
			slot.Transfers = append(slot.Transfers, Transfer{
				From:     graph.NodeID(tr.Sender),
				To:       graph.NodeID(tr.Receiver),
				Label:    pl.label,
				Messages: rat.Mul(st.Duration, pl.perTime),
			})
		}
		sched.Slots = append(sched.Slots, slot)
		clock = slot.End
	}
	if clock.Cmp(period) > 0 {
		return nil, fmt.Errorf("schedule: slots overrun the period: %s > %s",
			clock.RatString(), period.RatString())
	}
	return sched, nil
}

// Verify checks the schedule's structural invariants: slots are ordered
// and within the period, every slot is a matching (one send and one
// receive per node), and the compute load fits in the period.
func (s *Schedule) Verify() error {
	prevEnd := rat.Zero()
	for i, slot := range s.Slots {
		if slot.Start.Cmp(prevEnd) < 0 {
			return fmt.Errorf("schedule: slot %d starts at %s before previous end %s",
				i, slot.Start.RatString(), prevEnd.RatString())
		}
		if slot.End.Cmp(slot.Start) <= 0 {
			return fmt.Errorf("schedule: slot %d has non-positive duration", i)
		}
		if slot.End.Cmp(s.Period) > 0 {
			return fmt.Errorf("schedule: slot %d ends at %s after period %s",
				i, slot.End.RatString(), s.Period.RatString())
		}
		senders := make(map[graph.NodeID]bool)
		receivers := make(map[graph.NodeID]bool)
		for _, tr := range slot.Transfers {
			if senders[tr.From] {
				return fmt.Errorf("schedule: slot %d: node %s sends twice",
					i, s.Platform.Node(tr.From).Name)
			}
			if receivers[tr.To] {
				return fmt.Errorf("schedule: slot %d: node %s receives twice",
					i, s.Platform.Node(tr.To).Name)
			}
			senders[tr.From] = true
			receivers[tr.To] = true
			if tr.Messages.Sign() <= 0 {
				return fmt.Errorf("schedule: slot %d: non-positive message count", i)
			}
			if _, ok := s.Platform.FindEdge(tr.From, tr.To); !ok {
				return fmt.Errorf("schedule: slot %d: transfer over missing edge %s→%s",
					i, s.Platform.Node(tr.From).Name, s.Platform.Node(tr.To).Name)
			}
		}
		prevEnd = slot.End
	}
	for id, load := range s.ComputeLoad {
		if load.Cmp(s.Period) > 0 {
			return fmt.Errorf("schedule: node %s computes for %s > period %s",
				s.Platform.Node(id).Name, load.RatString(), s.Period.RatString())
		}
	}
	return nil
}

// TotalMessages sums the messages moved per period, per label.
func (s *Schedule) TotalMessages() map[string]rat.Rat {
	out := make(map[string]rat.Rat)
	for _, slot := range s.Slots {
		for _, tr := range slot.Transfers {
			if out[tr.Label] == nil {
				out[tr.Label] = rat.Zero()
			}
			out[tr.Label].Add(out[tr.Label], tr.Messages)
		}
	}
	return out
}

// BusyTime returns the total busy (non-idle) duration of the period.
func (s *Schedule) BusyTime() rat.Rat {
	total := rat.Zero()
	for _, slot := range s.Slots {
		total.Add(total, slot.Duration())
	}
	return total
}

// HasSplitMessages reports whether any slot moves a fractional number of
// messages (a message whose transfer spans multiple slots, as in the
// paper's Figure 4(a)).
func (s *Schedule) HasSplitMessages() bool {
	for _, slot := range s.Slots {
		for _, tr := range slot.Transfers {
			if !tr.Messages.IsInt() {
				return true
			}
		}
	}
	return false
}

// Unsplit returns an equivalent schedule whose slots each carry a whole
// number of messages, by scaling the period by the LCM of the message-count
// denominators (the paper's Figure 4(b): period 12 → 48).
func (s *Schedule) Unsplit() *Schedule {
	var counts []rat.Rat
	for _, slot := range s.Slots {
		for _, tr := range slot.Transfers {
			counts = append(counts, tr.Messages)
		}
	}
	scale := rat.DenominatorLCM(counts...)
	scaleRat := new(big.Rat).SetInt(scale)
	out := &Schedule{
		Platform:    s.Platform,
		Period:      rat.Mul(s.Period, scaleRat),
		ComputeLoad: make(map[graph.NodeID]rat.Rat, len(s.ComputeLoad)),
	}
	for id, load := range s.ComputeLoad {
		out.ComputeLoad[id] = rat.Mul(load, scaleRat)
	}
	for _, slot := range s.Slots {
		ns := Slot{Start: rat.Mul(slot.Start, scaleRat), End: rat.Mul(slot.End, scaleRat)}
		for _, tr := range slot.Transfers {
			ns.Transfers = append(ns.Transfers, Transfer{
				From: tr.From, To: tr.To, Label: tr.Label,
				Messages: rat.Mul(tr.Messages, scaleRat),
			})
		}
		out.Slots = append(out.Slots, ns)
	}
	return out
}

// Gantt renders the schedule as an ASCII table in the spirit of the
// paper's Figure 4: one row per directed link, one column per slot.
func (s *Schedule) Gantt() string {
	type key struct{ from, to graph.NodeID }
	rows := make(map[key][]string)
	var keys []key
	for _, slot := range s.Slots {
		for _, tr := range slot.Transfers {
			k := key{tr.From, tr.To}
			if _, ok := rows[k]; !ok {
				keys = append(keys, k)
			}
			rows[k] = nil
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for si, slot := range s.Slots {
		_ = si
		present := make(map[key]string)
		for _, tr := range slot.Transfers {
			present[key{tr.From, tr.To}] = fmt.Sprintf("%s×%s", tr.Messages.RatString(), tr.Label)
		}
		for _, k := range keys {
			cell := present[k]
			if cell == "" {
				cell = "-"
			}
			rows[k] = append(rows[k], cell)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "period %s, %d slots\n", s.Period.RatString(), len(s.Slots))
	fmt.Fprintf(&b, "%-18s", "slot boundaries:")
	for _, slot := range s.Slots {
		fmt.Fprintf(&b, " [%s,%s)", slot.Start.RatString(), slot.End.RatString())
	}
	b.WriteByte('\n')
	for _, k := range keys {
		fmt.Fprintf(&b, "%-18s", s.Platform.Node(k.from).Name+"→"+s.Platform.Node(k.to).Name+":")
		for _, cell := range rows[k] {
			fmt.Fprintf(&b, " %s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
