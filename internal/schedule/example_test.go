package schedule

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rat"
)

// ExampleFromFlow turns a solved steady-state flow — here two messages
// per time unit on a half-cost link — into its periodic one-port
// schedule.
func ExampleFromFlow() {
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddEdge(a, b, rat.New(1, 2))

	flow := core.NewFlow[core.Commodity](p)
	flow.Throughput = rat.New(2, 1)
	flow.SetSend(a, b, core.Commodity{Src: a, Dst: b}, rat.New(2, 1))

	sched, err := FromFlow(flow,
		func(core.Commodity) rat.Rat { return rat.One() },
		func(core.Commodity) string { return "m_b" })
	if err != nil {
		panic(err)
	}
	fmt.Printf("period %s, %d slot(s), busy %s\n",
		sched.Period.RatString(), len(sched.Slots), sched.BusyTime().RatString())
	// Output: period 1, 1 slot(s), busy 1
}
