package schedule

import (
	"fmt"
	"math/big"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rat"
	"repro/internal/reduce"
)

// FromTrees builds the periodic communication schedule of a reduce
// solution from its extracted reduction-tree family (Section 4.3): for
// every communication task of every tree, one bipartite edge weighted by
// w(T)·size(v[k,m])·c(i,j), decomposed into matchings. Computation is not
// serialized (the full-overlap model lets it run alongside); the per-node
// compute load is recorded on the schedule and checked against the period.
//
// The same construction serves fixed-period plans (Section 4.6): pass the
// plan's trees and period.
func FromTrees(app *reduce.Application, trees []*reduce.Tree, period *big.Int) (*Schedule, error) {
	if period == nil {
		period = app.Period
	}
	p := app.Problem.Platform
	periodRat := new(big.Rat).SetInt(period)

	var transfers []matching.Transfer
	for ti, tree := range trees {
		w := new(big.Rat).SetInt(tree.Weight)
		// Aggregate repeated communications within one tree (cannot occur
		// for valid trees, but cheap to be safe) by listing each once.
		for _, c := range tree.Communications() {
			cost := p.Cost(c.From, c.To)
			unit := rat.Mul(app.Problem.SizeOf(c.R), cost) // time per message
			weight := rat.Mul(w, unit)                     // tree count × time per message
			transfers = append(transfers, matching.Transfer{
				Sender:   int(c.From),
				Receiver: int(c.To),
				Weight:   weight,
				Payload:  payload{label: fmt.Sprintf("%s#%d", c.R, ti), perTime: rat.Inv(unit)},
			})
		}
	}

	computeLoad := make(map[graph.NodeID]rat.Rat)
	for _, tree := range trees {
		w := new(big.Rat).SetInt(tree.Weight)
		for _, tk := range tree.Computations() {
			if computeLoad[tk.Node] == nil {
				computeLoad[tk.Node] = rat.Zero()
			}
			computeLoad[tk.Node].Add(computeLoad[tk.Node],
				rat.Mul(w, app.Problem.TaskTime(tk.Node, tk.T)))
		}
	}

	return assemble(p, periodRat, transfers, computeLoad, p.NumNodes())
}
