package schedule

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/scatter"
	"repro/internal/topology"
)

func fig2Schedule(t *testing.T) (*scatter.Solution, *Schedule) {
	t.Helper()
	p, src, targets := topology.PaperFig2()
	pr, err := scatter.NewProblem(p, src, targets)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	sched, err := FromFlow(sol.Flow, scatter.UnitSize, func(c core.Commodity) string {
		return "m_" + p.Node(c.Dst).Name
	})
	if err != nil {
		t.Fatalf("FromFlow: %v", err)
	}
	return sol, sched
}

// TestPaperFig4Schedule builds the concrete periodic schedule for the
// Fig. 2 scatter: it must verify, fit in the period, and deliver exactly
// TP·T messages of each type per period.
func TestPaperFig4Schedule(t *testing.T) {
	sol, sched := fig2Schedule(t)
	if err := sched.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(sched.Slots) == 0 {
		t.Fatal("no slots")
	}
	// Messages delivered per period: every m_t crosses its final edge; the
	// per-label totals count every hop, so each label's total is at least
	// TP·T (relaying adds more).
	perPeriod := rat.Mul(sol.Throughput(), sched.Period)
	for label, total := range sched.TotalMessages() {
		if total.Cmp(perPeriod) < 0 {
			t.Errorf("label %s: %s messages per period, want ≥ %s",
				label, total.RatString(), perPeriod.RatString())
		}
	}
	t.Log("\n" + sched.Gantt())
}

// TestFromFlowDeterministic pins the mapdeterminism fix: FromFlow feeds
// the order-sensitive matching decomposition from a map range — when one
// edge carries several equal-weight message types, the decomposition's
// tie-break follows insertion (i.e. map iteration) order, so without the
// sort the slot layout varied run to run. Building the same schedule
// repeatedly must yield identical slot sequences.
func TestFromFlowDeterministic(t *testing.T) {
	build := func() string {
		p := graph.New()
		a := p.AddNode("A", rat.One())
		b := p.AddNode("B", rat.One())
		p.AddEdge(a, b, rat.One())
		flow := core.NewFlow[string](p)
		flow.Throughput = rat.New(1, 4)
		for _, label := range []string{"w", "x", "y", "z"} {
			flow.SetSend(a, b, label, rat.New(1, 4))
		}
		sched, err := FromFlow(flow, func(string) rat.Rat { return rat.One() },
			func(c string) string { return c })
		if err != nil {
			t.Fatalf("FromFlow: %v", err)
		}
		return sched.Gantt()
	}
	ref := build()
	for i := 0; i < 8; i++ {
		if got := build(); got != ref {
			t.Fatalf("schedule differs between identical builds (iteration %d):\n--- first\n%s\n--- now\n%s", i, ref, got)
		}
	}
}

func TestUnsplitProducesWholeMessages(t *testing.T) {
	_, sched := fig2Schedule(t)
	un := sched.Unsplit()
	if un.HasSplitMessages() {
		t.Error("Unsplit schedule still has fractional messages")
	}
	if err := un.Verify(); err != nil {
		t.Errorf("Unsplit Verify: %v", err)
	}
	// Scaling preserves the message-per-time ratio.
	ratio := rat.Div(un.Period, sched.Period)
	if !ratio.IsInt() {
		t.Errorf("Unsplit scaled by non-integer %s", ratio.RatString())
	}
	for label, total := range sched.TotalMessages() {
		want := rat.Mul(total, ratio)
		if got := un.TotalMessages()[label]; got == nil || !rat.Eq(got, want) {
			t.Errorf("label %s: unsplit total %v, want %s", label, got, want.RatString())
		}
	}
}

func TestBusyTimeWithinPeriod(t *testing.T) {
	_, sched := fig2Schedule(t)
	if sched.BusyTime().Cmp(sched.Period) > 0 {
		t.Errorf("busy time %s exceeds period %s",
			sched.BusyTime().RatString(), sched.Period.RatString())
	}
}

func TestVerifyCatchesBrokenSchedules(t *testing.T) {
	_, sched := fig2Schedule(t)

	// Overlapping senders within one slot.
	if len(sched.Slots) > 0 && len(sched.Slots[0].Transfers) > 0 {
		broken := *sched
		slot := broken.Slots[0]
		dup := slot.Transfers[0]
		slot.Transfers = append(slot.Transfers, dup)
		broken.Slots = append([]Slot{slot}, broken.Slots[1:]...)
		if err := broken.Verify(); err == nil {
			t.Error("duplicate sender in slot accepted")
		}
	}

	// Slot past the period.
	broken2 := *sched
	broken2.Period = rat.New(1, 1000)
	if err := broken2.Verify(); err == nil {
		t.Error("slot beyond period accepted")
	}
}

func TestFromFlowRejectsOverloadedFlow(t *testing.T) {
	// Hand-build an infeasible flow (port busy > 1 per unit) and check
	// the schedule builder rejects it.
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	c := p.AddNode("c", rat.One())
	p.AddEdge(a, b, rat.One())
	p.AddEdge(a, c, rat.One())
	f := core.NewFlow[int](p)
	f.SetSend(a, b, 0, rat.New(3, 4))
	f.SetSend(a, c, 1, rat.New(3, 4)) // a's out port: 3/2 > 1
	_, err := FromFlow(f, func(int) rat.Rat { return rat.One() }, func(i int) string { return "m" })
	if err == nil {
		t.Error("overloaded flow accepted")
	}
}

func TestGanttRendering(t *testing.T) {
	_, sched := fig2Schedule(t)
	g := sched.Gantt()
	for _, want := range []string{"period", "slot boundaries:", "Ps→"} {
		if !strings.Contains(g, want) {
			t.Errorf("Gantt missing %q:\n%s", want, g)
		}
	}
}

func TestScheduleFromGossipFlow(t *testing.T) {
	p := graph.New()
	var ids []graph.NodeID
	for _, name := range []string{"a", "b", "c"} {
		ids = append(ids, p.AddNode(name, rat.One()))
	}
	p.AddLink(ids[0], ids[1], rat.One())
	p.AddLink(ids[1], ids[2], rat.One())
	p.AddLink(ids[0], ids[2], rat.One())
	var comms []core.Commodity
	for _, s := range ids {
		for _, d := range ids {
			if s != d {
				comms = append(comms, core.Commodity{Src: s, Dst: d})
			}
		}
	}
	f, _, err := core.SolveUniformFlow(p, comms)
	if err != nil {
		t.Fatalf("SolveUniformFlow: %v", err)
	}
	sched, err := FromFlow(f, func(core.Commodity) rat.Rat { return rat.One() },
		func(c core.Commodity) string {
			return p.Node(c.Src).Name + ">" + p.Node(c.Dst).Name
		})
	if err != nil {
		t.Fatalf("FromFlow: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// All 6 streams appear.
	if got := len(sched.TotalMessages()); got != 6 {
		t.Errorf("labels = %d, want 6", got)
	}
}

// TestMergeFlows merges two members sharing one platform: the union must
// decompose into valid matchings, keep per-member labels, and scale the
// compute load by the period.
func TestMergeFlows(t *testing.T) {
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	c := p.AddNode("c", rat.One())
	p.AddLink(a, b, rat.New(1, 2))
	p.AddLink(b, c, rat.New(1, 2))

	// Member 0 streams a→b at rate 1 (busy 1/2); member 1 streams b→c at
	// rate 1/2 and computes at c for 1/4 per time unit.
	members := []MemberFlow{
		{Transfers: []FlowTransfer{{From: a, To: b, Label: "op0:x", Size: rat.One(), Rate: rat.One()}}},
		{
			Transfers:   []FlowTransfer{{From: b, To: c, Label: "op1:y", Size: rat.One(), Rate: rat.New(1, 2)}},
			ComputeTime: map[graph.NodeID]rat.Rat{c: rat.New(1, 4)},
		},
	}
	sched, err := MergeFlows(p, big.NewInt(4), members)
	if err != nil {
		t.Fatalf("MergeFlows: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Fatalf("merged schedule invalid: %v", err)
	}
	totals := sched.TotalMessages()
	if got := totals["op0:x"]; got == nil || !rat.Eq(got, rat.Int(4)) {
		t.Errorf("op0:x moved %v messages per period, want 4", got)
	}
	if got := totals["op1:y"]; got == nil || !rat.Eq(got, rat.Int(2)) {
		t.Errorf("op1:y moved %v messages per period, want 2", got)
	}
	if got := sched.ComputeLoad[c]; got == nil || !rat.Eq(got, rat.One()) {
		t.Errorf("compute load at c = %v, want 1 (1/4 · period 4)", got)
	}
}

// TestMergeFlowsRejectsOverload: members that jointly oversubscribe a
// port cannot be laid out in the period.
func TestMergeFlowsRejectsOverload(t *testing.T) {
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddLink(a, b, rat.One())

	members := []MemberFlow{
		{Transfers: []FlowTransfer{{From: a, To: b, Label: "op0:x", Size: rat.One(), Rate: rat.New(3, 4)}}},
		{Transfers: []FlowTransfer{{From: a, To: b, Label: "op1:y", Size: rat.One(), Rate: rat.New(1, 2)}}},
	}
	if _, err := MergeFlows(p, big.NewInt(4), members); err == nil {
		t.Fatal("oversubscribed port should fail to decompose")
	}
}
