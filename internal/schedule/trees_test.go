package schedule

import (
	"math/big"
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/topology"
)

func fig6Trees(t *testing.T) (*reduce.Solution, *reduce.Application, []*reduce.Tree) {
	t.Helper()
	p, order, target := topology.PaperFig6()
	pr, err := reduce.NewProblem(p, order, target)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		t.Fatalf("ExtractTrees: %v", err)
	}
	return sol, app, trees
}

// TestPaperFig6PipelinedSchedule builds the pipelined reduce schedule of
// the paper's Figure 6(e): communications serialized into matchings,
// computation overlapped, everything within the period.
func TestPaperFig6PipelinedSchedule(t *testing.T) {
	sol, app, trees := fig6Trees(t)
	sched, err := FromTrees(app, trees, nil)
	if err != nil {
		t.Fatalf("FromTrees: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Compute load: with TP=1, P0 runs one T[0,_,2] per op (time 1/2);
	// the other nodes' loads depend on the chosen optimum but must fit.
	for id, load := range sched.ComputeLoad {
		if load.Cmp(sched.Period) > 0 {
			t.Errorf("node %s compute load %s exceeds period %s",
				sol.Problem.Platform.Node(id).Name, load.RatString(), sched.Period.RatString())
		}
	}
	t.Log("\n" + sched.Gantt())
}

func TestFromTreesFixedPeriod(t *testing.T) {
	_, app, trees := fig6Trees(t)
	fixed := big.NewInt(60)
	plan, err := reduce.ApproximateFixedPeriod(app, trees, fixed)
	if err != nil {
		t.Fatalf("ApproximateFixedPeriod: %v", err)
	}
	sched, err := FromTrees(app, plan.Trees, fixed)
	if err != nil {
		t.Fatalf("FromTrees: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rat.Eq(sched.Period, rat.Int(60)) {
		t.Errorf("period = %s, want 60", sched.Period.RatString())
	}
}

func TestFromTreesChainReduce(t *testing.T) {
	p := topology.Chain(4, rat.New(1, 2), rat.One())
	var order []graph.NodeID
	for _, name := range []string{"n0", "n1", "n2", "n3"} {
		order = append(order, p.MustLookup(name))
	}
	pr, err := reduce.NewProblem(p, order, order[0])
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		t.Fatalf("ExtractTrees: %v", err)
	}
	sched, err := FromTrees(app, trees, nil)
	if err != nil {
		t.Fatalf("FromTrees: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Every tree communication appears in the schedule.
	total := rat.Zero()
	for _, v := range sched.TotalMessages() {
		total.Add(total, v)
	}
	wantAtLeast := rat.Zero()
	for _, tree := range trees {
		w := new(big.Rat).SetInt(tree.Weight)
		wantAtLeast.Add(wantAtLeast, rat.Mul(w, rat.Int(int64(len(tree.Communications())))))
	}
	if !rat.Eq(total, wantAtLeast) {
		t.Errorf("scheduled %s messages, want %s", total.RatString(), wantAtLeast.RatString())
	}
}
