package baseline

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/scatter"
	"repro/internal/topology"
)

func TestSinglePathScatterFig2(t *testing.T) {
	p, src, targets := topology.PaperFig2()
	res, err := SinglePathScatter(p, src, targets)
	if err != nil {
		t.Fatalf("SinglePathScatter: %v", err)
	}
	// Both routes leave through Ps's single port (1 each): out load = 2,
	// TP = 1/2. On this toy platform the single-path baseline matches
	// the LP optimum (the source port binds either way).
	if !rat.Eq(res.Throughput, rat.New(1, 2)) {
		t.Errorf("TP = %s, want 1/2", res.Throughput.RatString())
	}
	if res.Makespan.Sign() <= 0 {
		t.Error("makespan must be positive")
	}
	if len(res.Routes) != 2 {
		t.Errorf("routes = %d, want 2", len(res.Routes))
	}
}

func TestSinglePathScatterErrors(t *testing.T) {
	p, src, _ := topology.PaperFig2()
	if _, err := SinglePathScatter(p, src, nil); err == nil {
		t.Error("no targets should fail")
	}
	q := graph.New()
	a := q.AddNode("a", rat.One())
	b := q.AddNode("b", rat.One())
	q.AddEdge(b, a, rat.One())
	if _, err := SinglePathScatter(q, a, []graph.NodeID{b}); err == nil {
		t.Error("unreachable target should fail")
	}
}

// TestLPBeatsSinglePath builds a platform where multipath routing wins:
// the LP must strictly beat the single-path baseline.
func TestLPBeatsSinglePath(t *testing.T) {
	p := graph.New()
	s := p.AddNode("s", rat.One())
	a := p.AddRouter("a")
	b := p.AddRouter("b")
	d := p.AddNode("d", rat.One())
	p.AddEdge(s, a, rat.Int(3))
	p.AddEdge(s, b, rat.One())
	p.AddEdge(a, d, rat.One())
	p.AddEdge(b, d, rat.Int(3))

	base, err := SinglePathScatter(p, s, []graph.NodeID{d})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	pr, _ := scatter.NewProblem(p, s, []graph.NodeID{d})
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("LP: %v", err)
	}
	if sol.Throughput().Cmp(base.Throughput) <= 0 {
		t.Errorf("LP TP %s should strictly beat single-path TP %s",
			sol.Throughput().RatString(), base.Throughput.RatString())
	}
	// Single path: either route costs 4 per op on the binding port:
	// TP = 1/4 (out 1+3 = 4 on s for path via a? path via a: out(s) = 3,
	// in(d) = 1 → max 3 … min-cost path is via a or b (both cost 4);
	// check it's exactly 1/3 or 1/4 depending on tie-break, and LP = 1/2.
	if !rat.Eq(sol.Throughput(), rat.New(1, 2)) {
		t.Errorf("LP TP = %s, want 1/2", sol.Throughput().RatString())
	}
}

func TestFlatReduceTreeTwoNodes(t *testing.T) {
	p := graph.New()
	a := p.AddNode("P0", rat.One())
	b := p.AddNode("P1", rat.One())
	p.AddLink(a, b, rat.One())
	pr, _ := reduce.NewProblem(p, []graph.NodeID{a, b}, a)
	res, err := FlatReduceTree(pr)
	if err != nil {
		t.Fatalf("FlatReduceTree: %v", err)
	}
	// One transfer (P1→P0, time 1) + one task at P0 (time 1): max load 1
	// → TP = 1, same as the LP optimum on this trivial platform.
	if !rat.Eq(res.Throughput, rat.One()) {
		t.Errorf("TP = %s, want 1", res.Throughput.RatString())
	}
}

func TestBinaryReduceTreeValidates(t *testing.T) {
	p, order, target := topology.PaperFig6()
	pr, _ := reduce.NewProblem(p, order, target)
	res, err := BinaryReduceTree(pr)
	if err != nil {
		t.Fatalf("BinaryReduceTree: %v", err)
	}
	if err := res.Tree.Validate(pr); err != nil {
		t.Errorf("invalid tree: %v", err)
	}
	if res.Throughput.Sign() <= 0 {
		t.Error("throughput must be positive")
	}
}

// TestLPBeatsSingleTreeOnFig9 is the headline comparison: on the paper's
// heterogeneous platform, the LP steady-state schedule (which mixes
// multiple reduction trees) must beat (or match) the best fixed-tree
// baselines.
func TestLPBeatsSingleTreeOnFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("large LP in -short mode")
	}
	p, order, target := topology.PaperFig9()
	pr, err := reduce.NewProblem(p, order, target)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	size := topology.PaperFig9MessageSize()
	pr.SizeOf = func(reduce.Range) rat.Rat { return size }

	flat, err := FlatReduceTree(pr)
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	bin, err := BinaryReduceTree(pr)
	if err != nil {
		t.Fatalf("binary: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("LP: %v", err)
	}
	t.Logf("fig9 throughputs: LP=%s (~%.4f)  flat=%s (~%.4f)  binary=%s (~%.4f)",
		sol.TP.RatString(), rat.Float(sol.TP),
		flat.Throughput.RatString(), rat.Float(flat.Throughput),
		bin.Throughput.RatString(), rat.Float(bin.Throughput))
	if sol.TP.Cmp(flat.Throughput) < 0 {
		t.Errorf("LP %s below flat-tree baseline %s", sol.TP.RatString(), flat.Throughput.RatString())
	}
	if sol.TP.Cmp(bin.Throughput) < 0 {
		t.Errorf("LP %s below binary-tree baseline %s", sol.TP.RatString(), bin.Throughput.RatString())
	}
}

func TestTreeThroughputMatchesHandComputation(t *testing.T) {
	// Chain P0–P1 with slow link (cost 3): flat tree ships v[1,1] in 3
	// time units (binding) and computes in 1 → TP = 1/3.
	p := graph.New()
	a := p.AddNode("P0", rat.One())
	b := p.AddNode("P1", rat.One())
	p.AddLink(a, b, rat.Int(3))
	pr, _ := reduce.NewProblem(p, []graph.NodeID{a, b}, a)
	res, err := FlatReduceTree(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !rat.Eq(res.Throughput, rat.New(1, 3)) {
		t.Errorf("TP = %s, want 1/3", res.Throughput.RatString())
	}
}
