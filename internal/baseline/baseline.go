// Package baseline implements the comparison strategies a practitioner
// would use without the paper's LP machinery: fixed single-path routing
// for scatters and fixed single reduction trees for reduces. Each baseline
// reports the steady-state throughput its plan achieves under the same
// one-port model, so benchmarks can show where (and by how much) the
// LP-optimal steady-state schedule wins.
//
// These play the role of the related-work algorithms the paper positions
// against (Section 5): makespan-oriented heuristics on fixed trees
// (Banikazemi et al., Liu–Wang reduction trees) evaluated in pipelined
// steady state.
package baseline

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/reduce"
)

// ScatterResult is a baseline scatter plan and its steady-state rate.
type ScatterResult struct {
	// Throughput is the pipelined steady-state throughput of the plan:
	// 1 / (maximum port busy time per operation).
	Throughput rat.Rat
	// Makespan is the completion time of a single non-pipelined
	// operation under the plan (source serializes its sends; relays
	// forward immediately; downstream contention ignored — an optimistic
	// baseline).
	Makespan rat.Rat
	// Routes maps each target to its path from the source.
	Routes map[graph.NodeID][]graph.NodeID
}

// SinglePathScatter routes every target's message along its minimum-cost
// path and pipelines the result: the steady-state throughput is the
// inverse of the busiest port's per-operation time. This is what a static
// routing table achieves, against the LP's multi-route optimum.
func SinglePathScatter(p *graph.Platform, source graph.NodeID, targets []graph.NodeID) (*ScatterResult, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("baseline: no targets")
	}
	res := &ScatterResult{Routes: make(map[graph.NodeID][]graph.NodeID)}
	outLoad := make(map[graph.NodeID]rat.Rat)
	inLoad := make(map[graph.NodeID]rat.Rat)
	addLoad := func(m map[graph.NodeID]rat.Rat, n graph.NodeID, v rat.Rat) {
		if m[n] == nil {
			m[n] = rat.Zero()
		}
		m[n].Add(m[n], v)
	}
	type leg struct {
		firstCost rat.Rat
		restCost  rat.Rat
	}
	var legs []leg
	for _, t := range targets {
		path, _, ok := p.ShortestPath(source, t)
		if !ok {
			return nil, fmt.Errorf("baseline: %s unreachable from %s", p.Node(t).Name, p.Node(source).Name)
		}
		res.Routes[t] = path
		rest := rat.Zero()
		var first rat.Rat
		for i := 0; i+1 < len(path); i++ {
			c := p.Cost(path[i], path[i+1])
			addLoad(outLoad, path[i], c)
			addLoad(inLoad, path[i+1], c)
			if i == 0 {
				first = rat.Copy(c)
			} else {
				rest.Add(rest, c)
			}
		}
		legs = append(legs, leg{firstCost: first, restCost: rest})
	}
	// Steady state: inverse of the maximum per-operation port time.
	maxLoad := rat.Zero()
	for _, m := range []map[graph.NodeID]rat.Rat{outLoad, inLoad} {
		for _, v := range m {
			if v.Cmp(maxLoad) > 0 {
				maxLoad = v
			}
		}
	}
	if maxLoad.Sign() == 0 {
		return nil, fmt.Errorf("baseline: degenerate scatter with no communication")
	}
	res.Throughput = rat.Inv(maxLoad)

	// Non-pipelined makespan: send longest-remaining-path first.
	sort.Slice(legs, func(i, j int) bool { return legs[i].restCost.Cmp(legs[j].restCost) > 0 })
	clock := rat.Zero()
	makespan := rat.Zero()
	for _, l := range legs {
		clock = rat.Add(clock, l.firstCost)
		done := rat.Add(clock, l.restCost)
		if done.Cmp(makespan) > 0 {
			makespan = done
		}
	}
	res.Makespan = makespan
	return res, nil
}

// ReduceResult is a baseline reduce plan: a single fixed reduction tree
// (used for every operation) and its steady-state throughput.
type ReduceResult struct {
	Tree       *reduce.Tree
	Throughput rat.Rat
}

// FlatReduceTree builds the flat (left-deep, all-at-target) tree: every
// participant ships its value to the target along its min-cost path and
// the target performs all N merges locally. The classic "gather+reduce".
func FlatReduceTree(pr *reduce.Problem) (*ReduceResult, error) {
	n := pr.N()
	// Left-deep: acc = v[0,0]; for i in 1..N: acc = T[0,i-1,i](acc, v[i,i]).
	acc := leafAt(pr, 0, pr.Target)
	for i := 1; i <= n; i++ {
		right := leafAt(pr, i, pr.Target)
		acc = &reduce.TreeNode{
			Range: reduce.Range{K: 0, M: i},
			At:    pr.Target,
			Kind:  reduce.Compute,
			Task:  reduce.Task{K: 0, L: i - 1, M: i},
			Left:  acc,
			Right: right,
		}
	}
	return finishTree(pr, acc)
}

// BinaryReduceTree builds a balanced merge tree: recursively split the
// range in half, host each merge on the faster of the two sub-results'
// hosts, and ship partial results along min-cost paths. A heterogeneous
// binomial-tree analogue for non-commutative reductions.
func BinaryReduceTree(pr *reduce.Problem) (*ReduceResult, error) {
	var build func(k, m int) *reduce.TreeNode
	build = func(k, m int) *reduce.TreeNode {
		if k == m {
			return &reduce.TreeNode{Range: reduce.Range{K: k, M: k}, At: pr.Order[k], Kind: reduce.Leaf}
		}
		mid := (k + m) / 2
		left := build(k, mid)
		right := build(mid+1, m)
		host := left.At
		if speedOf(pr, right.At).Cmp(speedOf(pr, host)) > 0 {
			host = right.At
		}
		return &reduce.TreeNode{
			Range: reduce.Range{K: k, M: m},
			At:    host,
			Kind:  reduce.Compute,
			Task:  reduce.Task{K: k, L: mid, M: m},
			Left:  moveTo(pr, left, host),
			Right: moveTo(pr, right, host),
		}
	}
	return finishTree(pr, build(0, pr.N()))
}

// leafAt returns v[i,i] delivered to node at (a chain of transfers along
// the min-cost path when at is not the owner).
func leafAt(pr *reduce.Problem, i int, at graph.NodeID) *reduce.TreeNode {
	leaf := &reduce.TreeNode{Range: reduce.Range{K: i, M: i}, At: pr.Order[i], Kind: reduce.Leaf}
	return moveTo(pr, leaf, at)
}

// moveTo extends the tree node with transfer hops along the min-cost path
// from its current location to dst.
func moveTo(pr *reduce.Problem, n *reduce.TreeNode, dst graph.NodeID) *reduce.TreeNode {
	if n.At == dst {
		return n
	}
	path, _ := pr.Platform.MustShortestPath(n.At, dst)
	cur := n
	for i := 1; i < len(path); i++ {
		cur = &reduce.TreeNode{Range: n.Range, At: path[i], Kind: reduce.Receive, From: cur}
	}
	return cur
}

// finishTree ships the root to the target, wraps it as a weight-1 tree,
// validates it and evaluates its steady-state throughput.
func finishTree(pr *reduce.Problem, root *reduce.TreeNode) (*ReduceResult, error) {
	root = moveTo(pr, root, pr.Target)
	tree := &reduce.Tree{Root: root, Weight: big.NewInt(1)}
	if err := tree.Validate(pr); err != nil {
		return nil, fmt.Errorf("baseline: built an invalid tree: %w", err)
	}
	tp, err := TreeThroughput(pr, tree)
	if err != nil {
		return nil, err
	}
	return &ReduceResult{Tree: tree, Throughput: tp}, nil
}

// TreeThroughput evaluates the pipelined steady-state throughput of a
// single fixed reduction tree: every operation replays the tree, so the
// busiest resource (send port, receive port, or compute unit) bounds the
// rate at 1 / (its per-operation busy time).
func TreeThroughput(pr *reduce.Problem, tree *reduce.Tree) (rat.Rat, error) {
	outLoad := make(map[graph.NodeID]rat.Rat)
	inLoad := make(map[graph.NodeID]rat.Rat)
	compLoad := make(map[graph.NodeID]rat.Rat)
	add := func(m map[graph.NodeID]rat.Rat, n graph.NodeID, v rat.Rat) {
		if m[n] == nil {
			m[n] = rat.Zero()
		}
		m[n].Add(m[n], v)
	}
	for _, c := range tree.Communications() {
		t := rat.Mul(pr.SizeOf(c.R), pr.Platform.Cost(c.From, c.To))
		add(outLoad, c.From, t)
		add(inLoad, c.To, t)
	}
	for _, tk := range tree.Computations() {
		add(compLoad, tk.Node, pr.TaskTime(tk.Node, tk.T))
	}
	maxLoad := rat.Zero()
	for _, m := range []map[graph.NodeID]rat.Rat{outLoad, inLoad, compLoad} {
		for _, v := range m {
			if v.Cmp(maxLoad) > 0 {
				maxLoad = v
			}
		}
	}
	if maxLoad.Sign() == 0 {
		return nil, fmt.Errorf("baseline: tree uses no resources")
	}
	return rat.Inv(maxLoad), nil
}

func speedOf(pr *reduce.Problem, n graph.NodeID) rat.Rat {
	return pr.Platform.Node(n).Speed
}
