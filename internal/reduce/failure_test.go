package reduce

import (
	"math/big"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/topology"
)

// TestExtractTreesStuckOnCorruptedApplication: deleting a transfer from a
// consistent application must make FIND_TREE fail with a diagnostic, not
// loop or return a bogus family.
func TestExtractTreesStuckOnCorruptedApplication(t *testing.T) {
	sol := solveFig6(t)
	app := sol.Integerize()
	if len(app.Sends) == 0 {
		t.Skip("optimum has no transfers to corrupt")
	}
	for k := range app.Sends {
		delete(app.Sends, k)
		break
	}
	_, err := app.ExtractTrees()
	if err == nil {
		t.Fatal("corrupted application extracted successfully")
	}
	if !strings.Contains(err.Error(), "FIND_TREE") && !strings.Contains(err.Error(), "reduce:") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestExtractTreesInflatedOps: an application claiming more operations
// than its actions can cover must fail cleanly.
func TestExtractTreesInflatedOps(t *testing.T) {
	sol := solveFig6(t)
	app := sol.Integerize()
	app.Ops = new(big.Int).Add(app.Ops, big.NewInt(5))
	if _, err := app.ExtractTrees(); err == nil {
		t.Fatal("inflated Ops extracted successfully")
	}
}

// TestExtractTreesCycleGuard: a hand-built application whose only
// "support" for the root is a two-node transfer cycle must trip the depth
// guard rather than recurse forever.
func TestExtractTreesCycleGuard(t *testing.T) {
	p := graph.New()
	a := p.AddNode("P0", rat.One())
	b := p.AddNode("P1", rat.One())
	c := p.AddNode("P2", rat.One())
	p.AddLink(a, b, rat.One())
	p.AddLink(b, c, rat.One())
	p.AddLink(a, c, rat.One())
	pr, err := NewProblem(p, []graph.NodeID{a, b, c}, a)
	if err != nil {
		t.Fatal(err)
	}
	final := Range{0, 2}
	app := &Application{
		Problem: pr,
		Period:  big.NewInt(1),
		Ops:     big.NewInt(1),
		Sends: map[SendKey]*big.Int{
			// v[0,2] circulating b↔c, one copy entering the target from b,
			// but nothing ever produces it: the expansion must hit the
			// depth guard or a stuck state, never hang.
			{From: b, To: a, R: final}: big.NewInt(1),
			{From: c, To: b, R: final}: big.NewInt(1),
			{From: b, To: c, R: final}: big.NewInt(1),
		},
		Tasks: map[TaskKey]*big.Int{},
	}
	done := make(chan error, 1)
	go func() {
		_, err := app.ExtractTrees()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cyclic application extracted successfully")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ExtractTrees hung on a cyclic application")
	}
}

// TestReduceStressFiveParticipants: a mid-size instance (N=4 over a
// 10-node Tiers platform) through the full pipeline, as a performance and
// robustness canary between the toy examples and Fig 9.
func TestReduceStressFiveParticipants(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	cfg := topology.DefaultTiersConfig(77)
	cfg.LANs = 3
	cfg.LANNodes = 2
	p := topology.Tiers(cfg)
	parts := p.Participants()
	order := parts[:5]
	pr, err := NewProblem(p, order, order[0])
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := sol.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		t.Fatalf("ExtractTrees: %v", err)
	}
	if err := VerifyDecomposition(app, trees); err != nil {
		t.Fatalf("decomposition: %v", err)
	}
	for i, tree := range trees {
		if err := tree.Validate(pr); err != nil {
			t.Errorf("tree %d: %v", i, err)
		}
	}
	t.Logf("N=5 tiers: TP=%s, %d trees, %d pivots, %v",
		sol.TP.RatString(), len(trees), sol.Stats.Pivots, time.Since(start).Round(time.Millisecond))
}
