// Package reduce implements Section 4 of the paper: the Series of Reduces
// problem. Participants P_0 … P_N each hold a value v_i per operation; the
// goal is to compute v = v_0 ⊕ … ⊕ v_N (⊕ associative, non-commutative)
// and store it on a target processor, maximizing the steady-state
// throughput TP of pipelined operations.
//
// The package provides:
//
//   - the linear program SSR(G) (equations (7)–(11)): variables are
//     fractional per-edge transfer rates of partial results v[k,m] and
//     fractional per-node rates of reduction tasks T_{k,l,m} (which merge
//     v[k,l] ⊕ v[l+1,m] → v[k,m]), under one-port, compute-occupation and
//     conservation constraints;
//   - the reduction-tree extraction algorithm of Figure 8 (EXTRACT_TREES /
//     FIND_TREE), which certifies the integer periodic solution as a
//     polynomial-size weighted family of reduction trees (Theorem 1);
//   - the fixed-period approximation of Section 4.6 (Proposition 4).
package reduce

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/rat"
)

// Range identifies the partial result v[K,M] = v_K ⊕ … ⊕ v_M (logical
// participant indices, 0 ≤ K ≤ M ≤ N).
type Range struct {
	K, M int
}

// String renders the range as the paper writes it, e.g. "v[1,6]".
func (r Range) String() string { return fmt.Sprintf("v[%d,%d]", r.K, r.M) }

// IsLeaf reports whether the range is a single initial value v[i,i].
func (r Range) IsLeaf() bool { return r.K == r.M }

// Len returns the number of initial values covered.
func (r Range) Len() int { return r.M - r.K + 1 }

// Task identifies the reduction task T_{K,L,M}: v[K,L] ⊕ v[L+1,M] → v[K,M]
// (0 ≤ K ≤ L < M ≤ N).
type Task struct {
	K, L, M int
}

// String renders the task as the paper writes it, e.g. "T[0,0,2]".
func (t Task) String() string { return fmt.Sprintf("T[%d,%d,%d]", t.K, t.L, t.M) }

// Left returns the task's left input range v[K,L].
func (t Task) Left() Range { return Range{t.K, t.L} }

// Right returns the task's right input range v[L+1,M].
func (t Task) Right() Range { return Range{t.L + 1, t.M} }

// Result returns the task's output range v[K,M].
func (t Task) Result() Range { return Range{t.K, t.M} }

// Problem is a Series of Reduces instance.
type Problem struct {
	Platform *graph.Platform
	// Order lists the participants in reduction order: Order[i] holds v_i.
	Order []graph.NodeID
	// Target stores the final result v[0,N].
	Target graph.NodeID
	// SizeOf gives the message size of each partial result; nil means
	// unit size for all (the paper's Figure 9 experiment uses uniform
	// size 10).
	SizeOf func(Range) rat.Rat
	// TaskTime gives w(P_i, T): the time for a node to run one task; nil
	// means SizeOf(result) / node speed, the convention of the paper's
	// experiments.
	TaskTime func(graph.NodeID, Task) rat.Rat
	// ComputeAt, when non-nil, restricts reduction tasks to the listed
	// nodes (each must be a non-router with positive speed). Nil allows
	// every capable node — the paper's model. Restricting to just the
	// target ablates the paper's interleaving of computation with
	// communication (gather-then-reduce).
	ComputeAt []graph.NodeID
}

// NewProblem validates and returns a reduce problem with default size and
// task-time functions.
func NewProblem(p *graph.Platform, order []graph.NodeID, target graph.NodeID) (*Problem, error) {
	if len(order) < 2 {
		return nil, fmt.Errorf("reduce: need at least two participants (a single value needs no reduction)")
	}
	seen := make(map[graph.NodeID]bool)
	for _, id := range order {
		if p.Node(id).Router {
			return nil, fmt.Errorf("reduce: participant %s is a router", p.Node(id).Name)
		}
		if seen[id] {
			return nil, fmt.Errorf("reduce: duplicate participant %s", p.Node(id).Name)
		}
		seen[id] = true
	}
	if p.Node(target).Router {
		return nil, fmt.Errorf("reduce: target %s is a router", p.Node(target).Name)
	}
	for _, id := range order {
		if id != target && !p.CanReach(id, target) {
			return nil, fmt.Errorf("reduce: participant %s cannot reach target %s",
				p.Node(id).Name, p.Node(target).Name)
		}
	}
	pr := &Problem{
		Platform: p,
		Order:    append([]graph.NodeID(nil), order...),
		Target:   target,
	}
	pr.SizeOf = func(Range) rat.Rat { return rat.One() }
	pr.TaskTime = func(n graph.NodeID, t Task) rat.Rat {
		return rat.Div(pr.SizeOf(t.Result()), p.Node(n).Speed)
	}
	return pr, nil
}

// N returns the largest participant index (participants are P_0 … P_N).
func (pr *Problem) N() int { return len(pr.Order) - 1 }

// Ranges enumerates all partial-result types v[k,m], k ≤ m.
func (pr *Problem) Ranges() []Range {
	var out []Range
	for k := 0; k <= pr.N(); k++ {
		for m := k; m <= pr.N(); m++ {
			out = append(out, Range{k, m})
		}
	}
	return out
}

// Tasks enumerates all task types T_{k,l,m}, k ≤ l < m.
func (pr *Problem) Tasks() []Task {
	var out []Task
	for k := 0; k <= pr.N(); k++ {
		for l := k; l < pr.N(); l++ {
			for m := l + 1; m <= pr.N(); m++ {
				out = append(out, Task{k, l, m})
			}
		}
	}
	return out
}

// owner returns the participant index of node id, or -1.
func (pr *Problem) owner(id graph.NodeID) int {
	for i, n := range pr.Order {
		if n == id {
			return i
		}
	}
	return -1
}

// computeNodes returns the nodes allowed to run reduction tasks: every
// non-router node with positive speed, intersected with ComputeAt when the
// restriction is set.
func (pr *Problem) computeNodes() []graph.NodeID {
	allowed := func(graph.NodeID) bool { return true }
	if pr.ComputeAt != nil {
		set := make(map[graph.NodeID]bool, len(pr.ComputeAt))
		for _, id := range pr.ComputeAt {
			set[id] = true
		}
		allowed = func(id graph.NodeID) bool { return set[id] }
	}
	var out []graph.NodeID
	for _, n := range pr.Platform.Nodes() {
		if !n.Router && n.Speed.Sign() > 0 && allowed(n.ID) {
			out = append(out, n.ID)
		}
	}
	return out
}

// SendKey identifies a transfer variable send(From→To, v[K,M]).
type SendKey struct {
	From, To graph.NodeID
	R        Range
}

// TaskKey identifies a computation variable cons(Node, T_{K,L,M}).
type TaskKey struct {
	Node graph.NodeID
	T    Task
}

// Solution is a solved Series of Reduces: the optimal throughput and the
// steady-state rates of every transfer and task.
type Solution struct {
	Problem *Problem
	TP      rat.Rat
	Sends   map[SendKey]rat.Rat
	Tasks   map[TaskKey]rat.Rat
	Stats   core.FlowStats
}

// Solve builds and solves SSR(G) exactly over the rationals.
func (pr *Problem) Solve() (*Solution, error) { return pr.SolveCtx(context.Background()) }

// SolveCtx is Solve honoring context cancellation inside the simplex loop.
func (pr *Problem) SolveCtx(ctx context.Context) (*Solution, error) {
	m := lp.NewMaximize()
	tp := m.Var("TP")
	m.SetObjective(tp, rat.One())
	occ := core.NewOccupancy(pr.Platform)
	comp := core.NewCompute(pr.Platform)
	frag := pr.NewFragment(ctx, m, "", occ)
	occ.AddConstraints(m)
	frag.AddComputeVars(m, "", comp)
	comp.AddConstraints(m)
	frag.AddFlowConstraints(m, "", tp, rat.One())

	sol, err := m.SolveCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("reduce: SSR LP: %w", err)
	}
	if err := m.Verify(sol.Values()); err != nil {
		return nil, fmt.Errorf("reduce: LP solution failed verification: %w", err)
	}
	stats := core.StatsOf(m, sol)
	_, exSpan := obs.StartSpan(ctx, "extract")
	out := frag.Extract(sol, sol.Objective, stats)
	exSpan.SetAttr("kind", "reduce")
	exSpan.End()
	return out, nil
}

// Fragment is one reduce instance's share of a linear program: its
// transfer and task variables, with occupancy registered on (possibly
// shared) port and compute builders. A single fragment on a private model
// is exactly the plain SSR(G) program; several fragments on one model
// superpose concurrent reduce-family collectives on the same platform
// capacity — the construction behind reduce-scatter.
//
// Assembly is three-phase so shared rows aggregate every member before
// they are emitted: NewFragment (transfer variables + port occupancy) for
// every member, then occ.AddConstraints once; AddComputeVars (task
// variables + compute occupancy) for every member, then comp.AddConstraints
// once; AddFlowConstraints (conservation + throughput) for every member.
type Fragment struct {
	Problem *Problem
	Sends   map[SendKey]lp.Var
	Tasks   map[TaskKey]lp.Var
}

// NewFragment declares the transfer variables of the problem into m with
// light pruning — the final result never leaves the target, a leaf v[i,i]
// never flows into its owner — registering their busy time with occ. label
// prefixes variable names so several fragments can share one model. ctx
// carries the solve trace, if any: assembly opens an "assemble" span.
func (pr *Problem) NewFragment(ctx context.Context, m *lp.Model, label string, occ *core.OccupancyBuilder) *Fragment {
	_, asmSpan := obs.StartSpan(ctx, "assemble")
	asmSpan.SetAttr("kind", "reduce")
	asmSpan.SetAttr("label", label)
	asmSpan.SetAttr("participants", len(pr.Order))
	final := Range{0, pr.N()}
	f := &Fragment{
		Problem: pr,
		Sends:   make(map[SendKey]lp.Var),
		Tasks:   make(map[TaskKey]lp.Var),
	}
	for _, e := range pr.Platform.Edges() {
		for _, r := range pr.Ranges() {
			if r == final && e.From == pr.Target {
				continue
			}
			if r.IsLeaf() && e.To == pr.Order[r.K] {
				continue
			}
			k := SendKey{e.From, e.To, r}
			v := m.Var(fmt.Sprintf("%ssend(%s->%s,%s)", label,
				pr.Platform.Node(e.From).Name, pr.Platform.Node(e.To).Name, r))
			f.Sends[k] = v
			occ.Add(e.From, e.To, v, rat.Mul(pr.SizeOf(r), e.Cost))
		}
	}
	asmSpan.SetAttr("vars", len(f.Sends))
	asmSpan.End()
	return f
}

// AddComputeVars declares the computation variables (equations (7) and
// (9), with α substituted out), registering each task's time with comp.
func (f *Fragment) AddComputeVars(m *lp.Model, label string, comp *core.ComputeBuilder) {
	pr := f.Problem
	for _, node := range pr.computeNodes() {
		for _, t := range pr.Tasks() {
			k := TaskKey{node, t}
			v := m.Var(fmt.Sprintf("%scons(%s,%s)", label, pr.Platform.Node(node).Name, t))
			f.Tasks[k] = v
			comp.Add(node, v, pr.TaskTime(node, t))
		}
	}
}

// AddFlowConstraints adds the conservation law (10) and the throughput
// equation (11), with the delivered rate of final results constrained to
// weight·tp. With weight 1 on a private model this is the plain SSR
// program; in a shared model, weight scales the member's rate relative to
// the common objective tp.
func (f *Fragment) AddFlowConstraints(m *lp.Model, label string, tp lp.Var, weight rat.Rat) {
	pr := f.Problem
	n := pr.N()
	final := Range{0, n}

	// Conservation law (10) at every node for every range, except the
	// unlimited leaf at its owner and the final result at the target.
	for _, node := range pr.Platform.Nodes() {
		for _, r := range pr.Ranges() {
			if r.IsLeaf() && pr.Order[r.K] == node.ID {
				continue
			}
			if r == final && node.ID == pr.Target {
				continue
			}
			expr := lp.NewExpr()
			size := 0
			// Inflow.
			for _, e := range pr.Platform.InEdges(node.ID) {
				if v, ok := f.Sends[SendKey{e.From, e.To, r}]; ok {
					expr = expr.Plus1(v)
					size++
				}
			}
			// Production: tasks T_{k,l,m} with result [k,m] = r.
			for l := r.K; l < r.M; l++ {
				if v, ok := f.Tasks[TaskKey{node.ID, Task{r.K, l, r.M}}]; ok {
					expr = expr.Plus1(v)
					size++
				}
			}
			// Outflow.
			for _, e := range pr.Platform.OutEdges(node.ID) {
				if v, ok := f.Sends[SendKey{e.From, e.To, r}]; ok {
					expr = expr.Minus(rat.One(), v)
					size++
				}
			}
			// Consumption: as left operand T_{k,m,n} (n > m) or as right
			// operand T_{n,k-1,m} (n < k).
			for nn := r.M + 1; nn <= n; nn++ {
				if v, ok := f.Tasks[TaskKey{node.ID, Task{r.K, r.M, nn}}]; ok {
					expr = expr.Minus(rat.One(), v)
					size++
				}
			}
			for nn := 0; nn < r.K; nn++ {
				if v, ok := f.Tasks[TaskKey{node.ID, Task{nn, r.K - 1, r.M}}]; ok {
					expr = expr.Minus(rat.One(), v)
					size++
				}
			}
			if size == 0 {
				continue
			}
			m.AddConstraint(fmt.Sprintf("%sconserve(%s,%s)", label, node.Name, r), expr, lp.Eq, rat.Zero())
		}
	}

	// Throughput (11): final results reaching the target by transfer or
	// by local computation.
	tpExpr := lp.NewExpr().Minus(weight, tp)
	for _, e := range pr.Platform.InEdges(pr.Target) {
		if v, ok := f.Sends[SendKey{e.From, e.To, final}]; ok {
			tpExpr = tpExpr.Plus1(v)
		}
	}
	for l := 0; l < n; l++ {
		if v, ok := f.Tasks[TaskKey{pr.Target, Task{0, l, n}}]; ok {
			tpExpr = tpExpr.Plus1(v)
		}
	}
	m.AddConstraint(label+"throughput", tpExpr, lp.Eq, rat.Zero())
}

// Extract reads the fragment's solved rates into a Solution with the
// given throughput, canceling zero-net send circulations.
func (f *Fragment) Extract(sol *lp.Solution, tp rat.Rat, stats core.FlowStats) *Solution {
	out := &Solution{
		Problem: f.Problem,
		TP:      rat.Copy(tp),
		Sends:   make(map[SendKey]rat.Rat),
		Tasks:   make(map[TaskKey]rat.Rat),
		Stats:   stats,
	}
	for k, v := range f.Sends {
		if val := sol.Value(v); val.Sign() > 0 {
			out.Sends[k] = val
		}
	}
	for k, v := range f.Tasks {
		if val := sol.Value(v); val.Sign() > 0 {
			out.Tasks[k] = val
		}
	}
	out.cancelCycles()
	return out
}

// cancelCycles removes zero-net send circulations per range (the simplex
// may return them at no objective cost; the tree extractor requires
// cycle-free transfer support to terminate).
func (s *Solution) cancelCycles() {
	f := core.NewFlow[Range](s.Problem.Platform)
	for k, r := range s.Sends {
		f.SetSend(k.From, k.To, k.R, r)
	}
	core.CancelCycles(f)
	s.Sends = make(map[SendKey]rat.Rat)
	for e, types := range f.Sends {
		for rg, r := range types {
			s.Sends[SendKey{e.From, e.To, rg}] = r
		}
	}
}

// Throughput returns TP: reduce operations completed per time unit.
func (s *Solution) Throughput() rat.Rat { return rat.Copy(s.TP) }

// AllRates returns every rate in the solution plus TP (for the period
// computation).
func (s *Solution) AllRates() []rat.Rat {
	out := []rat.Rat{rat.Copy(s.TP)}
	for _, r := range s.Sends {
		out = append(out, rat.Copy(r)) //sslint:allow order-insensitive: rates feed DenominatorLCM
	}
	for _, r := range s.Tasks {
		out = append(out, rat.Copy(r)) //sslint:allow order-insensitive: rates feed DenominatorLCM
	}
	return out
}

// Period returns the integer schedule period (LCM of all denominators).
func (s *Solution) Period() *big.Int { return rat.DenominatorLCM(s.AllRates()...) }

// Verify re-checks every SSR constraint on the solution, independent of
// the LP solver: one-port and compute occupations, the conservation law,
// and the throughput equation. It returns the first violation.
func (s *Solution) Verify() error {
	pr := s.Problem
	n := pr.N()
	final := Range{0, n}

	// One-port via a typed flow.
	f := core.NewFlow[Range](pr.Platform)
	for k, r := range s.Sends {
		f.SetSend(k.From, k.To, k.R, r)
	}
	if err := f.VerifyOnePort(pr.SizeOf); err != nil {
		return fmt.Errorf("reduce: %w", err)
	}

	// Compute occupation.
	allowedCompute := make(map[graph.NodeID]bool)
	for _, id := range pr.computeNodes() {
		allowedCompute[id] = true
	}
	alpha := make(map[graph.NodeID]rat.Rat)
	for k, r := range s.Tasks {
		node := pr.Platform.Node(k.Node)
		if !allowedCompute[k.Node] {
			return fmt.Errorf("reduce: task on non-computing node %s", node.Name)
		}
		if alpha[k.Node] == nil {
			alpha[k.Node] = rat.Zero()
		}
		alpha[k.Node].Add(alpha[k.Node], rat.Mul(r, pr.TaskTime(k.Node, k.T)))
	}
	for id, a := range alpha {
		if a.Cmp(rat.One()) > 0 {
			return fmt.Errorf("reduce: node %s computes for %s > 1 per time unit",
				pr.Platform.Node(id).Name, a.RatString())
		}
	}

	// Conservation.
	for _, node := range pr.Platform.Nodes() {
		for _, r := range pr.Ranges() {
			if r.IsLeaf() && pr.Order[r.K] == node.ID {
				continue
			}
			if r == final && node.ID == pr.Target {
				continue
			}
			bal := rat.Zero()
			in, out := f.InflowOutflow(node.ID, r)
			bal.Add(bal, in)
			bal.Sub(bal, out)
			for l := r.K; l < r.M; l++ {
				if v, ok := s.Tasks[TaskKey{node.ID, Task{r.K, l, r.M}}]; ok {
					bal.Add(bal, v)
				}
			}
			for nn := r.M + 1; nn <= n; nn++ {
				if v, ok := s.Tasks[TaskKey{node.ID, Task{r.K, r.M, nn}}]; ok {
					bal.Sub(bal, v)
				}
			}
			for nn := 0; nn < r.K; nn++ {
				if v, ok := s.Tasks[TaskKey{node.ID, Task{nn, r.K - 1, r.M}}]; ok {
					bal.Sub(bal, v)
				}
			}
			if bal.Sign() != 0 {
				return fmt.Errorf("reduce: conservation violated at %s for %s: net %s",
					node.Name, r, bal.RatString())
			}
		}
	}

	// Throughput equation.
	got := rat.Zero()
	in, _ := f.InflowOutflow(pr.Target, final)
	got.Add(got, in)
	for l := 0; l < n; l++ {
		if v, ok := s.Tasks[TaskKey{pr.Target, Task{0, l, n}}]; ok {
			got.Add(got, v)
		}
	}
	if !rat.Eq(got, s.TP) {
		return fmt.Errorf("reduce: target receives %s final results, want TP=%s",
			got.RatString(), s.TP.RatString())
	}
	return nil
}

// String renders the solution like the paper's Figure 6(b)/10: throughput,
// transfers and tasks with their rates.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reduce throughput TP = %s (period %s)\n", s.TP.RatString(), s.Period().String())
	var lines []string
	for k, r := range s.Sends {
		lines = append(lines, fmt.Sprintf("  send(%s->%s, %s) = %s",
			s.Problem.Platform.Node(k.From).Name, s.Problem.Platform.Node(k.To).Name, k.R, r.RatString()))
	}
	for k, r := range s.Tasks {
		lines = append(lines, fmt.Sprintf("  cons(%s, %s) = %s",
			s.Problem.Platform.Node(k.Node).Name, k.T, r.RatString()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
