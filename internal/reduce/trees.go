package reduce

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/rat"
)

// Application is the integer per-period form of a solution, the object the
// paper calls A: for a period T (the LCM of all denominators), the integer
// number of transfers and tasks of each kind executed per period, and the
// integer number TP·T of reduce operations completed per period.
type Application struct {
	Problem *Problem
	Period  *big.Int
	Sends   map[SendKey]*big.Int
	Tasks   map[TaskKey]*big.Int
	// Ops = TP·Period: operations completed per period.
	Ops *big.Int
}

// Integerize scales the rational solution to the integer application of
// period Period().
func (s *Solution) Integerize() *Application {
	period := s.Period()
	a := &Application{
		Problem: s.Problem,
		Period:  period,
		Sends:   make(map[SendKey]*big.Int),
		Tasks:   make(map[TaskKey]*big.Int),
		Ops:     rat.ScaleToInt(s.TP, period),
	}
	for k, r := range s.Sends {
		if v := rat.ScaleToInt(r, period); v.Sign() > 0 {
			a.Sends[k] = v
		}
	}
	for k, r := range s.Tasks {
		if v := rat.ScaleToInt(r, period); v.Sign() > 0 {
			a.Tasks[k] = v
		}
	}
	return a
}

// clone deep-copies the application (used so extraction can decrement).
func (a *Application) clone() *Application {
	c := &Application{
		Problem: a.Problem,
		Period:  new(big.Int).Set(a.Period),
		Sends:   make(map[SendKey]*big.Int, len(a.Sends)),
		Tasks:   make(map[TaskKey]*big.Int, len(a.Tasks)),
		Ops:     new(big.Int).Set(a.Ops),
	}
	for k, v := range a.Sends {
		c.Sends[k] = new(big.Int).Set(v)
	}
	for k, v := range a.Tasks {
		c.Tasks[k] = new(big.Int).Set(v)
	}
	return c
}

// TreeNode is one node of a reduction tree: the partial result Range held
// At a platform node, together with how it was obtained.
type TreeNode struct {
	Range Range
	At    graph.NodeID
	// Exactly one of the following shapes holds:
	//   Leaf:     the initial value v[i,i] on its owner (no children).
	//   Compute:  Task merging Left and Right (both At the same node).
	//   Receive:  From holds the same Range at the sending node.
	Kind  NodeKind
	Task  Task      // valid when Kind == Compute
	Left  *TreeNode // compute: left input v[k,l]
	Right *TreeNode // compute: right input v[l+1,m]
	From  *TreeNode // receive: the value at the sender
}

// NodeKind discriminates TreeNode shapes.
type NodeKind int

const (
	// Leaf is an initial value at its owner.
	Leaf NodeKind = iota
	// Compute merges two partial results on one node.
	Compute
	// Receive transfers a partial result between nodes.
	Receive
)

// Tree is one weighted reduction tree of the extracted family: it reduces
// Weight operations per period.
type Tree struct {
	Root   *TreeNode
	Weight *big.Int
}

// ExtractTrees implements EXTRACT_TREES (Figure 8): it greedily peels
// weighted reduction trees off the integer application until the full
// per-period operation count is covered. The returned trees satisfy
// Theorem 1: Σ w(T)·χ_T = A, the tree count is ≤ the number of distinct
// tasks and transfers in A (each extraction zeroes at least one), and
// extraction runs in polynomial time.
func (a *Application) ExtractTrees() ([]*Tree, error) {
	work := a.clone()
	var trees []*Tree
	covered := new(big.Int)
	// Each extraction zeroes at least one entry of A, so the loop is
	// bounded by the number of positive entries (≤ 2n⁴ by the paper's
	// count); add slack for safety against miscounting bugs.
	maxTrees := len(work.Sends) + len(work.Tasks) + 1
	for covered.Cmp(a.Ops) < 0 {
		if len(trees) >= maxTrees {
			return nil, fmt.Errorf("reduce: extraction exceeded %d trees (covered %s of %s); A is inconsistent",
				maxTrees, covered.String(), a.Ops.String())
		}
		root, err := work.findTree()
		if err != nil {
			return nil, err
		}
		w := treeMinCount(work, root)
		remaining := new(big.Int).Sub(a.Ops, covered)
		if w.Cmp(remaining) > 0 {
			w = remaining
		}
		if w.Sign() <= 0 {
			return nil, fmt.Errorf("reduce: extracted tree with non-positive weight")
		}
		work.subtract(root, w)
		trees = append(trees, &Tree{Root: root, Weight: w})
		covered.Add(covered, w)
	}
	return trees, nil
}

// findTree implements FIND_TREE: build one reduction tree rooted at
// (v[0,N], target) using only entries with positive remaining count. The
// paper's greedy choice order is kept: expand by a local computation when
// one is available, otherwise by a transfer. Conservation of A guarantees
// the expansion never gets stuck, and cycle-cancellation of the transfer
// support guarantees termination.
func (a *Application) findTree() (*TreeNode, error) {
	pr := a.Problem
	var build func(r Range, at graph.NodeID, depth int) (*TreeNode, error)
	// Depth guard: a tree has at most N internal compute levels and, with
	// cycle-free transfers, at most |V| consecutive receives per level.
	maxDepth := (pr.N() + 2) * (pr.Platform.NumNodes() + 2)
	build = func(r Range, at graph.NodeID, depth int) (*TreeNode, error) {
		if depth > maxDepth {
			return nil, fmt.Errorf("reduce: FIND_TREE exceeded depth %d at (%s,%s); transfer support has a cycle",
				maxDepth, r, pr.Platform.Node(at).Name)
		}
		if r.IsLeaf() && pr.Order[r.K] == at {
			return &TreeNode{Range: r, At: at, Kind: Leaf}, nil
		}
		// Prefer computing in place (the paper's line 6), smallest l first.
		for l := r.K; l < r.M; l++ {
			t := Task{r.K, l, r.M}
			if c, ok := a.Tasks[TaskKey{at, t}]; ok && c.Sign() > 0 {
				left, err := build(t.Left(), at, depth+1)
				if err != nil {
					return nil, err
				}
				right, err := build(t.Right(), at, depth+1)
				if err != nil {
					return nil, err
				}
				return &TreeNode{Range: r, At: at, Kind: Compute, Task: t, Left: left, Right: right}, nil
			}
		}
		// Otherwise receive from a neighbour with positive transfer count.
		var senders []graph.NodeID
		for _, e := range pr.Platform.InEdges(at) {
			if c, ok := a.Sends[SendKey{e.From, e.To, r}]; ok && c.Sign() > 0 {
				senders = append(senders, e.From)
			}
		}
		sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
		if len(senders) == 0 {
			return nil, fmt.Errorf("reduce: FIND_TREE stuck at (%s, %s): no production, no transfer",
				r, pr.Platform.Node(at).Name)
		}
		from, err := build(r, senders[0], depth+1)
		if err != nil {
			return nil, err
		}
		return &TreeNode{Range: r, At: at, Kind: Receive, From: from}, nil
	}
	return build(Range{0, pr.N()}, pr.Target, 0)
}

// treeMinCount returns min over the tree's actions of the remaining count
// in A — the paper's w(T).
func treeMinCount(a *Application, root *TreeNode) *big.Int {
	var min *big.Int
	walk(root, func(n *TreeNode) {
		var c *big.Int
		switch n.Kind {
		case Compute:
			c = a.Tasks[TaskKey{n.At, n.Task}]
		case Receive:
			c = a.Sends[SendKey{n.From.At, n.At, n.Range}]
		default:
			return
		}
		if min == nil || c.Cmp(min) < 0 {
			min = c
		}
	})
	if min == nil {
		// A tree with no actions: target owns everything (cannot happen
		// with ≥ 2 participants, but fail softly).
		return new(big.Int)
	}
	return new(big.Int).Set(min)
}

// subtract decrements every action of the tree by w.
func (a *Application) subtract(root *TreeNode, w *big.Int) {
	walk(root, func(n *TreeNode) {
		switch n.Kind {
		case Compute:
			k := TaskKey{n.At, n.Task}
			a.Tasks[k].Sub(a.Tasks[k], w)
		case Receive:
			k := SendKey{n.From.At, n.At, n.Range}
			a.Sends[k].Sub(a.Sends[k], w)
		}
	})
}

// walk visits every node of the tree (pre-order).
func walk(n *TreeNode, f func(*TreeNode)) {
	if n == nil {
		return
	}
	f(n)
	walk(n.Left, f)
	walk(n.Right, f)
	walk(n.From, f)
}

// Validate checks Definition 1 on the tree: the root is (v[0,N], target),
// every compute node's inputs cover its range exactly and live on the same
// platform node, every receive crosses an existing edge, and every leaf is
// an initial value on its owner.
func (t *Tree) Validate(pr *Problem) error {
	if t.Root == nil {
		return fmt.Errorf("reduce: empty tree")
	}
	if t.Root.Range != (Range{0, pr.N()}) || t.Root.At != pr.Target {
		return fmt.Errorf("reduce: root is (%s,%s), want (v[0,%d],%s)",
			t.Root.Range, pr.Platform.Node(t.Root.At).Name, pr.N(), pr.Platform.Node(pr.Target).Name)
	}
	var check func(n *TreeNode) error
	check = func(n *TreeNode) error {
		switch n.Kind {
		case Leaf:
			if !n.Range.IsLeaf() {
				return fmt.Errorf("reduce: leaf node with range %s", n.Range)
			}
			if pr.Order[n.Range.K] != n.At {
				return fmt.Errorf("reduce: leaf %s on %s, owner is %s",
					n.Range, pr.Platform.Node(n.At).Name, pr.Platform.Node(pr.Order[n.Range.K]).Name)
			}
			return nil
		case Compute:
			if n.Task.Result() != n.Range {
				return fmt.Errorf("reduce: task %s does not produce %s", n.Task, n.Range)
			}
			if n.Left == nil || n.Right == nil {
				return fmt.Errorf("reduce: compute node %s missing children", n.Range)
			}
			if n.Left.Range != n.Task.Left() || n.Right.Range != n.Task.Right() {
				return fmt.Errorf("reduce: task %s inputs are %s,%s", n.Task, n.Left.Range, n.Right.Range)
			}
			if n.Left.At != n.At || n.Right.At != n.At {
				return fmt.Errorf("reduce: task %s inputs not local to %s", n.Task, pr.Platform.Node(n.At).Name)
			}
			node := pr.Platform.Node(n.At)
			if node.Router || node.Speed.Sign() <= 0 {
				return fmt.Errorf("reduce: task %s on non-computing node %s", n.Task, node.Name)
			}
			if err := check(n.Left); err != nil {
				return err
			}
			return check(n.Right)
		case Receive:
			if n.From == nil {
				return fmt.Errorf("reduce: receive node %s missing source", n.Range)
			}
			if n.From.Range != n.Range {
				return fmt.Errorf("reduce: transfer changes range %s→%s", n.From.Range, n.Range)
			}
			if _, ok := pr.Platform.FindEdge(n.From.At, n.At); !ok {
				return fmt.Errorf("reduce: transfer %s over missing edge %s→%s",
					n.Range, pr.Platform.Node(n.From.At).Name, pr.Platform.Node(n.At).Name)
			}
			return check(n.From)
		}
		return fmt.Errorf("reduce: unknown node kind %d", n.Kind)
	}
	return check(t.Root)
}

// VerifyDecomposition checks Theorem 1's equation Σ w(T)·χ_T = A: summing
// the weighted action counts of the trees reproduces the application
// exactly.
func VerifyDecomposition(a *Application, trees []*Tree) error {
	sends := make(map[SendKey]*big.Int)
	tasks := make(map[TaskKey]*big.Int)
	total := new(big.Int)
	for _, t := range trees {
		total.Add(total, t.Weight)
		walk(t.Root, func(n *TreeNode) {
			switch n.Kind {
			case Compute:
				k := TaskKey{n.At, n.Task}
				if tasks[k] == nil {
					tasks[k] = new(big.Int)
				}
				tasks[k].Add(tasks[k], t.Weight)
			case Receive:
				k := SendKey{n.From.At, n.At, n.Range}
				if sends[k] == nil {
					sends[k] = new(big.Int)
				}
				sends[k].Add(sends[k], t.Weight)
			}
		})
	}
	if total.Cmp(a.Ops) != 0 {
		return fmt.Errorf("reduce: tree weights sum to %s, want %s", total, a.Ops)
	}
	for k, v := range sends {
		av := a.Sends[k]
		if av == nil || v.Cmp(av) > 0 {
			return fmt.Errorf("reduce: trees use send %v %s times, A has %v", k, v, av)
		}
	}
	for k, v := range tasks {
		av := a.Tasks[k]
		if av == nil || v.Cmp(av) > 0 {
			return fmt.Errorf("reduce: trees use task %v %s times, A has %v", k, v, av)
		}
	}
	return nil
}

// Communications lists the transfers of the tree in discovery order, as
// (from, to, range) triples — the input to schedule construction.
func (t *Tree) Communications() []SendKey {
	var out []SendKey
	walk(t.Root, func(n *TreeNode) {
		if n.Kind == Receive {
			out = append(out, SendKey{n.From.At, n.At, n.Range})
		}
	})
	return out
}

// Computations lists the tasks of the tree in discovery order.
func (t *Tree) Computations() []TaskKey {
	var out []TaskKey
	walk(t.Root, func(n *TreeNode) {
		if n.Kind == Compute {
			out = append(out, TaskKey{n.At, n.Task})
		}
	})
	return out
}

// String renders the tree in the style of the paper's Figures 11–12.
func (t *Tree) String(pr *Problem) string {
	var b strings.Builder
	fmt.Fprintf(&b, "reduction tree (weight %s):\n", t.Weight)
	var render func(n *TreeNode, indent int)
	render = func(n *TreeNode, indent int) {
		pad := strings.Repeat("  ", indent)
		name := pr.Platform.Node(n.At).Name
		switch n.Kind {
		case Leaf:
			fmt.Fprintf(&b, "%s%s at %s (initial value)\n", pad, n.Range, name)
		case Compute:
			fmt.Fprintf(&b, "%scons %s at %s\n", pad, n.Task, name)
			render(n.Left, indent+1)
			render(n.Right, indent+1)
		case Receive:
			fmt.Fprintf(&b, "%stransfer %s: %s -> %s\n", pad, n.Range, pr.Platform.Node(n.From.At).Name, name)
			render(n.From, indent+1)
		}
	}
	render(t.Root, 1)
	return b.String()
}
