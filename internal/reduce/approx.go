package reduce

import (
	"fmt"
	"math/big"

	"repro/internal/rat"
)

// FixedPeriodPlan is the Section 4.6 approximation: the extracted tree
// family re-weighted for an arbitrary (usually much smaller) period
// T_fixed. Each tree's per-period count becomes r(T) = ⌊w(T)·T_fixed/T⌋,
// which keeps all one-port and compute constraints satisfied (they scale
// linearly) and loses at most card(Trees)/T_fixed of throughput
// (Proposition 4).
type FixedPeriodPlan struct {
	Period *big.Int
	// Trees holds the same tree shapes with adjusted weights; trees whose
	// adjusted weight is zero are dropped.
	Trees []*Tree
	// Throughput = Σ r(T) / T_fixed.
	Throughput rat.Rat
	// Loss = TP − Throughput ≥ 0, bounded by card(original trees)/T_fixed.
	Loss rat.Rat
}

// ApproximateFixedPeriod builds the fixed-period plan from trees extracted
// at the exact period a.Period. fixed must be positive.
func ApproximateFixedPeriod(a *Application, trees []*Tree, fixed *big.Int) (*FixedPeriodPlan, error) {
	if fixed == nil || fixed.Sign() <= 0 {
		return nil, fmt.Errorf("reduce: fixed period must be positive")
	}
	tp := rat.Div(new(big.Rat).SetInt(a.Ops), new(big.Rat).SetInt(a.Period))
	plan := &FixedPeriodPlan{Period: new(big.Int).Set(fixed)}
	sum := new(big.Int)
	for _, t := range trees {
		// r = ⌊w·fixed/T⌋
		num := new(big.Int).Mul(t.Weight, fixed)
		r := num.Div(num, a.Period)
		if r.Sign() <= 0 {
			continue
		}
		plan.Trees = append(plan.Trees, &Tree{Root: t.Root, Weight: r})
		sum.Add(sum, r)
	}
	plan.Throughput = rat.Div(new(big.Rat).SetInt(sum), new(big.Rat).SetInt(fixed))
	plan.Loss = rat.Sub(tp, plan.Throughput)
	if plan.Loss.Sign() < 0 {
		return nil, fmt.Errorf("reduce: fixed-period plan exceeds optimal throughput (bug)")
	}
	// Proposition 4's bound.
	bound := rat.Div(rat.Int(int64(len(trees))), new(big.Rat).SetInt(fixed))
	if plan.Loss.Cmp(bound) > 0 {
		return nil, fmt.Errorf("reduce: loss %s exceeds card(Trees)/T_fixed = %s (bug)",
			plan.Loss.RatString(), bound.RatString())
	}
	return plan, nil
}
