package reduce

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/topology"
)

func extractFig6(t *testing.T) (*Solution, *Application, []*Tree) {
	t.Helper()
	sol := solveFig6(t)
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		t.Fatalf("ExtractTrees: %v", err)
	}
	return sol, app, trees
}

func TestIntegerize(t *testing.T) {
	sol := solveFig6(t)
	app := sol.Integerize()
	if app.Period.Sign() <= 0 {
		t.Fatal("period must be positive")
	}
	// Ops = TP·T; with TP = 1, Ops == Period.
	if app.Ops.Cmp(app.Period) != 0 {
		t.Errorf("Ops = %s, want %s (TP=1)", app.Ops, app.Period)
	}
	for k, v := range app.Sends {
		if v.Sign() <= 0 {
			t.Errorf("non-positive integer send %v", k)
		}
	}
	for k, v := range app.Tasks {
		if v.Sign() <= 0 {
			t.Errorf("non-positive integer task %v", k)
		}
	}
}

// TestPaperFig7TreeExtraction mirrors the paper's Figure 7: the Fig-6
// solution decomposes into a small family of reduction trees whose weights
// sum to the per-period operation count (the paper finds two trees with
// throughputs 1/3 and 2/3 of TP).
func TestPaperFig7TreeExtraction(t *testing.T) {
	sol, app, trees := extractFig6(t)
	if len(trees) == 0 {
		t.Fatal("no trees extracted")
	}
	if err := VerifyDecomposition(app, trees); err != nil {
		t.Fatalf("VerifyDecomposition: %v", err)
	}
	for i, tree := range trees {
		if err := tree.Validate(sol.Problem); err != nil {
			t.Errorf("tree %d invalid: %v", i, err)
		}
	}
	// Polynomial count (Theorem 1 allows ≤ 2n⁴; here it must be tiny).
	if len(trees) > 6 {
		t.Errorf("extracted %d trees, expected a handful (paper: 2)", len(trees))
	}
	total := new(big.Int)
	for _, tree := range trees {
		total.Add(total, tree.Weight)
	}
	if total.Cmp(app.Ops) != 0 {
		t.Errorf("tree weights sum to %s, want %s", total, app.Ops)
	}
	for _, tree := range trees {
		t.Log("\n" + tree.String(sol.Problem))
	}
}

func TestTreeActionsListing(t *testing.T) {
	sol, _, trees := extractFig6(t)
	for _, tree := range trees {
		comms := tree.Communications()
		comps := tree.Computations()
		if len(comps) != sol.Problem.N() {
			t.Errorf("tree has %d tasks, want N=%d (one merge per non-leaf)", len(comps), sol.Problem.N())
		}
		// Every communication must reference an existing edge.
		for _, c := range comms {
			if _, ok := sol.Problem.Platform.FindEdge(c.From, c.To); !ok {
				t.Errorf("communication over missing edge %v", c)
			}
		}
	}
}

func TestTreeValidateRejectsBadTrees(t *testing.T) {
	p, order, target := topology.PaperFig6()
	pr, _ := NewProblem(p, order, target)

	// Wrong root range.
	bad := &Tree{Weight: big.NewInt(1), Root: &TreeNode{Range: Range{0, 1}, At: target, Kind: Leaf}}
	if err := bad.Validate(pr); err == nil {
		t.Error("wrong root accepted")
	}
	// Leaf on the wrong node.
	bad2 := &Tree{Weight: big.NewInt(1), Root: &TreeNode{
		Range: Range{0, 2}, At: target, Kind: Compute, Task: Task{0, 0, 2},
		Left:  &TreeNode{Range: Range{0, 0}, At: order[1], Kind: Leaf}, // v0 owned by order[0]
		Right: &TreeNode{Range: Range{1, 2}, At: target, Kind: Leaf},   // not a leaf range
	}}
	if err := bad2.Validate(pr); err == nil {
		t.Error("bad leaf accepted")
	}
	// Transfer over a missing edge.
	q := graph.New()
	a := q.AddNode("a", rat.One())
	b := q.AddNode("b", rat.One())
	c := q.AddNode("c", rat.One())
	q.AddLink(a, b, rat.One())
	q.AddLink(b, c, rat.One())
	qr, _ := NewProblem(q, []graph.NodeID{a, c}, a)
	badEdge := &Tree{Weight: big.NewInt(1), Root: &TreeNode{
		Range: Range{0, 1}, At: a, Kind: Compute, Task: Task{0, 0, 1},
		Left: &TreeNode{Range: Range{0, 0}, At: a, Kind: Leaf},
		Right: &TreeNode{Range: Range{1, 1}, At: a, Kind: Receive,
			From: &TreeNode{Range: Range{1, 1}, At: c, Kind: Leaf}}, // no edge c→a
	}}
	if err := badEdge.Validate(qr); err == nil {
		t.Error("missing-edge transfer accepted")
	}
}

func TestExtractTreesTwoNode(t *testing.T) {
	p := graph.New()
	a := p.AddNode("P0", rat.One())
	b := p.AddNode("P1", rat.One())
	p.AddLink(a, b, rat.One())
	pr, _ := NewProblem(p, []graph.NodeID{a, b}, a)
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		t.Fatalf("ExtractTrees: %v", err)
	}
	if len(trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(trees))
	}
	if err := trees[0].Validate(pr); err != nil {
		t.Errorf("tree invalid: %v", err)
	}
	if err := VerifyDecomposition(app, trees); err != nil {
		t.Errorf("decomposition: %v", err)
	}
}

func TestExtractTreesChain(t *testing.T) {
	p := topology.Chain(4, rat.One(), rat.One())
	var order []graph.NodeID
	for _, name := range []string{"n0", "n1", "n2", "n3"} {
		order = append(order, p.MustLookup(name))
	}
	pr, _ := NewProblem(p, order, order[0])
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		t.Fatalf("ExtractTrees: %v", err)
	}
	if err := VerifyDecomposition(app, trees); err != nil {
		t.Errorf("decomposition: %v", err)
	}
	for i, tree := range trees {
		if err := tree.Validate(pr); err != nil {
			t.Errorf("tree %d: %v", i, err)
		}
	}
}

func TestApproximateFixedPeriod(t *testing.T) {
	sol, app, trees := extractFig6(t)
	_ = sol
	for _, fixed := range []int64{1, 2, 5, 10, 100} {
		plan, err := ApproximateFixedPeriod(app, trees, big.NewInt(fixed))
		if err != nil {
			t.Fatalf("ApproximateFixedPeriod(%d): %v", fixed, err)
		}
		if plan.Loss.Sign() < 0 {
			t.Errorf("fixed=%d: negative loss", fixed)
		}
		bound := rat.New(int64(len(trees)), fixed)
		if plan.Loss.Cmp(bound) > 0 {
			t.Errorf("fixed=%d: loss %s > bound %s", fixed, plan.Loss.RatString(), bound.RatString())
		}
	}
	// Loss must vanish as the fixed period grows (Proposition 4).
	plan, err := ApproximateFixedPeriod(app, trees, big.NewInt(1000000))
	if err != nil {
		t.Fatal(err)
	}
	if rat.Less(rat.New(1, 100), rat.Sub(rat.One(), rat.Div(plan.Throughput, rat.One()))) {
		t.Errorf("throughput at T_fixed=1e6 is %s, want within 1%% of 1", plan.Throughput.RatString())
	}
}

func TestApproximateFixedPeriodValidation(t *testing.T) {
	_, app, trees := extractFig6(t)
	if _, err := ApproximateFixedPeriod(app, trees, big.NewInt(0)); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := ApproximateFixedPeriod(app, trees, nil); err == nil {
		t.Error("nil period accepted")
	}
}

func TestTreeStringRendering(t *testing.T) {
	sol, _, trees := extractFig6(t)
	out := trees[0].String(sol.Problem)
	for _, want := range []string{"reduction tree", "cons T[", "initial value"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree rendering missing %q:\n%s", want, out)
		}
	}
}
