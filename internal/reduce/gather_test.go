package reduce

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/topology"
)

func TestGatherChain(t *testing.T) {
	// n0 ← n1 ← n2 with unit links: n0's in-port must absorb 2 blocks per
	// operation (its own block is local) whether they arrive merged or
	// separate → TP = 1/2.
	p := topology.Chain(3, rat.One(), rat.One())
	var order []graph.NodeID
	for _, name := range []string{"n0", "n1", "n2"} {
		order = append(order, p.MustLookup(name))
	}
	pr, err := NewGatherProblem(p, order, order[0], rat.One())
	if err != nil {
		t.Fatalf("NewGatherProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !rat.Eq(sol.TP, rat.New(1, 2)) {
		t.Errorf("TP = %s, want 1/2", sol.TP.RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestGatherBlockSizeScales(t *testing.T) {
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddLink(a, b, rat.One())
	pr, err := NewGatherProblem(p, []graph.NodeID{a, b}, a, rat.Int(4))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// One 4-unit block crosses b→a per op → TP = 1/4.
	if !rat.Eq(sol.TP, rat.New(1, 4)) {
		t.Errorf("TP = %s, want 1/4", sol.TP.RatString())
	}
}

func TestGatherValidation(t *testing.T) {
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddLink(a, b, rat.One())
	if _, err := NewGatherProblem(p, []graph.NodeID{a, b}, a, rat.Zero()); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewGatherProblem(p, []graph.NodeID{a, b}, a, nil); err == nil {
		t.Error("nil block size accepted")
	}
	if _, err := NewGatherProblem(p, []graph.NodeID{a}, a, rat.One()); err == nil {
		t.Error("single participant accepted")
	}
}

func TestGatherTreesExtract(t *testing.T) {
	p := topology.Chain(3, rat.One(), rat.One())
	var order []graph.NodeID
	for _, name := range []string{"n0", "n1", "n2"} {
		order = append(order, p.MustLookup(name))
	}
	pr, err := NewGatherProblem(p, order, order[0], rat.One())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		t.Fatalf("ExtractTrees: %v", err)
	}
	if err := VerifyDecomposition(app, trees); err != nil {
		t.Errorf("decomposition: %v", err)
	}
}

func TestComputeAtRestriction(t *testing.T) {
	// Fig-6 platform with tasks restricted to the target: the LP can no
	// longer offload merges, so TP can only drop (or stay equal).
	p, order, target := topology.PaperFig6()
	free, err := NewProblem(p, order, target)
	if err != nil {
		t.Fatal(err)
	}
	freeSol, err := free.Solve()
	if err != nil {
		t.Fatalf("free Solve: %v", err)
	}

	restricted, err := NewProblem(p, order, target)
	if err != nil {
		t.Fatal(err)
	}
	restricted.ComputeAt = []graph.NodeID{target}
	rSol, err := restricted.Solve()
	if err != nil {
		t.Fatalf("restricted Solve: %v", err)
	}
	if rSol.TP.Cmp(freeSol.TP) > 0 {
		t.Errorf("restricting compute increased TP: %s > %s",
			rSol.TP.RatString(), freeSol.TP.RatString())
	}
	// All tasks must sit on the target.
	for k := range rSol.Tasks {
		if k.Node != target {
			t.Errorf("task %v escaped the ComputeAt restriction", k)
		}
	}
	if err := rSol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	t.Logf("fig6: free TP=%s, compute-at-target TP=%s", freeSol.TP.RatString(), rSol.TP.RatString())
}

func TestComputeAtVerifyCatchesEscapees(t *testing.T) {
	p, order, target := topology.PaperFig6()
	pr, err := NewProblem(p, order, target)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Retroactively restrict: any off-target task must now fail Verify.
	pr.ComputeAt = []graph.NodeID{target}
	offTarget := false
	for k := range sol.Tasks {
		if k.Node != target {
			offTarget = true
		}
	}
	if offTarget {
		if err := sol.Verify(); err == nil {
			t.Error("Verify accepted tasks outside ComputeAt")
		}
	} else {
		t.Log("optimum happened to compute only at target; nothing to check")
	}
}
