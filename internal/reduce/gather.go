package reduce

import (
	"repro/internal/graph"
	"repro/internal/rat"
)

// NewGatherProblem configures a Series of Gathers as a reduce instance:
// the operator ⊕ is concatenation, so a partial result v[k,m] has size
// (m−k+1)·blockSize (merging saves no bytes) and merge tasks are free
// (concatenation costs no compute). The paper notes (Section 4) that
// gathers "in a particular order" are exactly reductions under a
// non-commutative operator; this constructor makes that instantiation a
// one-liner while keeping the full LP machinery — gathers still benefit
// from multi-route transfers and from assembling blocks en route.
func NewGatherProblem(p *graph.Platform, order []graph.NodeID, target graph.NodeID, blockSize rat.Rat) (*Problem, error) {
	if blockSize == nil || blockSize.Sign() <= 0 {
		return nil, errNonPositiveBlock
	}
	pr, err := NewProblem(p, order, target)
	if err != nil {
		return nil, err
	}
	size := rat.Copy(blockSize)
	pr.SizeOf = func(r Range) rat.Rat {
		return rat.Mul(rat.Int(int64(r.Len())), size)
	}
	pr.TaskTime = func(graph.NodeID, Task) rat.Rat { return rat.Zero() }
	return pr, nil
}

var errNonPositiveBlock = errorString("reduce: gather block size must be positive")

// errorString is a tiny allocation-free error type for sentinel errors.
type errorString string

func (e errorString) Error() string { return string(e) }
