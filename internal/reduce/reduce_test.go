package reduce

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/topology"
)

func solveFig6(t *testing.T) *Solution {
	t.Helper()
	p, order, target := topology.PaperFig6()
	pr, err := NewProblem(p, order, target)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestRangeAndTaskBasics(t *testing.T) {
	r := Range{1, 6}
	if r.String() != "v[1,6]" || r.IsLeaf() || r.Len() != 6 {
		t.Errorf("Range basics wrong: %v %v %v", r.String(), r.IsLeaf(), r.Len())
	}
	if !(Range{3, 3}).IsLeaf() {
		t.Error("v[3,3] should be a leaf")
	}
	task := Task{0, 1, 4}
	if task.String() != "T[0,1,4]" {
		t.Errorf("Task.String = %s", task.String())
	}
	if task.Left() != (Range{0, 1}) || task.Right() != (Range{2, 4}) || task.Result() != (Range{0, 4}) {
		t.Error("Task ranges wrong")
	}
}

func TestProblemEnumeration(t *testing.T) {
	p, order, target := topology.PaperFig6()
	pr, err := NewProblem(p, order, target)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	if pr.N() != 2 {
		t.Errorf("N = %d, want 2", pr.N())
	}
	// Ranges: (N+1)(N+2)/2 = 6; tasks: C(N+2,3) = 4.
	if got := len(pr.Ranges()); got != 6 {
		t.Errorf("ranges = %d, want 6", got)
	}
	if got := len(pr.Tasks()); got != 4 {
		t.Errorf("tasks = %d, want 4", got)
	}
}

func TestNewProblemValidation(t *testing.T) {
	p, order, target := topology.PaperFig6()
	if _, err := NewProblem(p, order[:1], target); err == nil {
		t.Error("single participant should fail")
	}
	if _, err := NewProblem(p, []graph.NodeID{order[0], order[0], order[1]}, target); err == nil {
		t.Error("duplicate participant should fail")
	}

	q := graph.New()
	r := q.AddRouter("r")
	a := q.AddNode("a", rat.One())
	b := q.AddNode("b", rat.One())
	q.AddLink(a, b, rat.One())
	q.AddLink(a, r, rat.One())
	if _, err := NewProblem(q, []graph.NodeID{a, r}, a); err == nil {
		t.Error("router participant should fail")
	}
	if _, err := NewProblem(q, []graph.NodeID{a, b}, r); err == nil {
		t.Error("router target should fail")
	}

	// Unreachable target.
	u := graph.New()
	x := u.AddNode("x", rat.One())
	y := u.AddNode("y", rat.One())
	z := u.AddNode("z", rat.One())
	u.AddEdge(x, y, rat.One())
	_ = z
	if _, err := NewProblem(u, []graph.NodeID{x, z}, y); err == nil {
		t.Error("unreachable participant should fail")
	}
}

// TestPaperFig6Throughput is the paper's toy reduce: TP must be exactly 1
// (three reduce operations every three time units).
func TestPaperFig6Throughput(t *testing.T) {
	sol := solveFig6(t)
	if !rat.Eq(sol.TP, rat.One()) {
		t.Fatalf("TP = %s, want exactly 1", sol.TP.RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	t.Logf("fig6 LP: %d vars, %d constraints, %d pivots",
		sol.Stats.Vars, sol.Stats.Constraints, sol.Stats.Pivots)
}

func TestTwoNodeReduce(t *testing.T) {
	// P0 —(cost 1)— P1, target P0, unit sizes and speeds. Each operation
	// needs v[1,1] shipped P1→P0 (1 time unit through P0's in-port) and
	// one task T[0,0,1] at P0 (1 time unit of compute, overlapped).
	// TP = 1.
	p := graph.New()
	a := p.AddNode("P0", rat.One())
	b := p.AddNode("P1", rat.One())
	p.AddLink(a, b, rat.One())
	pr, err := NewProblem(p, []graph.NodeID{a, b}, a)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !rat.Eq(sol.TP, rat.One()) {
		t.Errorf("TP = %s, want 1", sol.TP.RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestTwoNodeReduceSlowCompute(t *testing.T) {
	// Same platform but P0 computes a task in 4 time units and P1 in 1.
	// The optimal schedule lets P1 do the work: P0 ships v[0,0] to P1
	// (out-port 1/op), P1 computes (1/op) and ships v[0,1] back (in-port
	// 1/op at P0) → TP = 1, beating the local-compute bound of 1/4.
	p := graph.New()
	a := p.AddNode("P0", rat.New(1, 4))
	b := p.AddNode("P1", rat.One())
	p.AddLink(a, b, rat.One())
	pr, err := NewProblem(p, []graph.NodeID{a, b}, a)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !rat.Eq(sol.TP, rat.One()) {
		t.Errorf("TP = %s, want 1 (offload to P1)", sol.TP.RatString())
	}
	// The solution must ship v[0,0] away from the slow target.
	shipped := rat.Zero()
	for k, r := range sol.Sends {
		if k.From == a && k.R == (Range{0, 0}) {
			shipped.Add(shipped, r)
		}
	}
	if shipped.Sign() == 0 {
		t.Error("expected v[0,0] to be offloaded from the slow node")
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestNonCommutativeOrderRespected(t *testing.T) {
	// All tasks in any solution must merge contiguous, adjacent ranges —
	// guaranteed by construction of the Task type, but Verify must also
	// reject hand-built solutions that fabricate non-adjacent merges.
	sol := solveFig6(t)
	for k := range sol.Tasks {
		if k.T.L < k.T.K || k.T.L >= k.T.M {
			t.Errorf("task %s violates k ≤ l < m", k.T)
		}
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	sol := solveFig6(t)
	// Remove one task: conservation must break.
	for k := range sol.Tasks {
		saved := sol.Tasks[k]
		delete(sol.Tasks, k)
		if err := sol.Verify(); err == nil {
			t.Errorf("Verify accepted solution with %v removed", k)
		}
		sol.Tasks[k] = saved
		break
	}
	// Inflate TP: throughput equation must break.
	savedTP := sol.TP
	sol.TP = rat.Add(sol.TP, rat.One())
	if err := sol.Verify(); err == nil {
		t.Error("Verify accepted inflated TP")
	}
	sol.TP = savedTP
	if err := sol.Verify(); err != nil {
		t.Errorf("restored solution should verify: %v", err)
	}
}

func TestSolutionStringRendering(t *testing.T) {
	sol := solveFig6(t)
	out := sol.String()
	if !strings.Contains(out, "reduce throughput TP = 1") {
		t.Errorf("String output:\n%s", out)
	}
	if !strings.Contains(out, "cons(") || !strings.Contains(out, "send(") {
		t.Errorf("String should list sends and tasks:\n%s", out)
	}
}

func TestReduceChainPlatform(t *testing.T) {
	// Chain of 3 participants, target at one end. The middle node can
	// aggregate: flows v[2,2]→P1, T[1,1,2]@P1, v[1,2]→P0, T[0,0,2]@P0.
	p := topology.Chain(3, rat.One(), rat.One())
	n0 := p.MustLookup("n0")
	n1 := p.MustLookup("n1")
	n2 := p.MustLookup("n2")
	pr, err := NewProblem(p, []graph.NodeID{n0, n1, n2}, n0)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// P0's in-port carries one v[1,2] per op → TP = 1; both compute and
	// the n1→n0 link allow it.
	if !rat.Eq(sol.TP, rat.One()) {
		t.Errorf("TP = %s, want 1", sol.TP.RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestReduceCustomSizes(t *testing.T) {
	// Double-size partial results halve link throughput.
	p := graph.New()
	a := p.AddNode("P0", rat.Int(10))
	b := p.AddNode("P1", rat.Int(10))
	p.AddLink(a, b, rat.One())
	pr, err := NewProblem(p, []graph.NodeID{a, b}, a)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	pr.SizeOf = func(Range) rat.Rat { return rat.Int(2) }
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !rat.Eq(sol.TP, rat.New(1, 2)) {
		t.Errorf("TP = %s, want 1/2 with size-2 messages", sol.TP.RatString())
	}
}
