package reduce

import (
	"math/big"
	"testing"
	"time"

	"repro/internal/rat"
	"repro/internal/topology"
)

// Fig9Problem builds the paper's Figure 9 experiment: the reconstructed
// Tiers platform, uniform message size 10, task time 10/speed.
func Fig9Problem(t testing.TB) *Problem {
	t.Helper()
	p, order, target := topology.PaperFig9()
	pr, err := NewProblem(p, order, target)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	size := topology.PaperFig9MessageSize()
	pr.SizeOf = func(Range) rat.Rat { return size }
	return pr
}

// TestPaperFig9Reduce runs the paper's main experiment end to end: solve
// SSR on the 14-node Tiers platform and extract the reduction trees. The
// paper reports TP = 2/9 and two trees of weight 1/9 each; our link
// bandwidths are re-sampled in-range (see DESIGN.md), so we assert the
// shape: a positive small-rational TP, a valid polynomial tree family
// covering it exactly, and a verified solution.
func TestPaperFig9Reduce(t *testing.T) {
	if testing.Short() {
		t.Skip("large LP in -short mode")
	}
	pr := Fig9Problem(t)
	start := time.Now()
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	solveTime := time.Since(start)
	t.Logf("fig9: TP=%s (~%.4f) vars=%d constraints=%d pivots=%d in %v",
		sol.TP.RatString(), rat.Float(sol.TP),
		sol.Stats.Vars, sol.Stats.Constraints, sol.Stats.Pivots, solveTime)

	if sol.TP.Sign() <= 0 {
		t.Fatal("TP must be positive")
	}
	if err := sol.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		t.Fatalf("ExtractTrees: %v", err)
	}
	if err := VerifyDecomposition(app, trees); err != nil {
		t.Fatalf("VerifyDecomposition: %v", err)
	}
	for i, tree := range trees {
		if err := tree.Validate(pr); err != nil {
			t.Errorf("tree %d: %v", i, err)
		}
	}
	n := pr.N() + 1
	bound := 2 * n * n * n * n
	if len(trees) > bound {
		t.Errorf("%d trees exceeds 2n⁴ = %d", len(trees), bound)
	}
	t.Logf("fig9: %d reduction trees (paper: 2), period %s", len(trees), app.Period)

	// Fixed-period approximation sweep (Proposition 4).
	for _, fixed := range []int64{10, 100, 1000} {
		plan, err := ApproximateFixedPeriod(app, trees, big.NewInt(fixed))
		if err != nil {
			t.Fatalf("ApproximateFixedPeriod(%d): %v", fixed, err)
		}
		t.Logf("fig9: T_fixed=%d → throughput %s (loss %s)",
			fixed, plan.Throughput.RatString(), plan.Loss.RatString())
	}
}
