// Package lp implements an exact linear-programming solver over the
// rational numbers.
//
// The steady-state framework of Legrand/Marchal/Robert expresses the optimal
// throughput of a pipelined collective as the optimum of a linear program
// "solved in rational numbers" (the paper uses lpsolve or Maple). The
// periodic-schedule construction then multiplies the solution by the least
// common multiple of its denominators, so the solver must be exact: a
// floating-point optimum cannot be turned into an integer period. Since the
// module is stdlib-only (no cgo wrapping of GLPK/lp_solve), this package
// provides a self-contained primal simplex over big.Int/big.Rat:
//
//   - Model: named variables (all ≥ 0, optional upper bounds), linear
//     constraints with ≤ / = / ≥ senses, and a linear objective.
//   - Solve: two-phase primal simplex. Tableau rows are stored as integer
//     vectors with a per-row positive denominator, updated fraction-free and
//     re-normalized by their content gcd, which keeps entries small and lets
//     rows untouched by a pivot be skipped entirely. Pivoting uses Dantzig's
//     rule and falls back to Bland's rule (which provably terminates) when
//     the iteration count suggests cycling.
//   - Verify: independent feasibility check of a solution against the model,
//     used by tests and callers to guard against solver defects.
package lp

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/rat"
)

// Sense is the comparison sense of a linear constraint.
type Sense int

const (
	// Leq constrains expr ≤ rhs.
	Leq Sense = iota
	// Eq constrains expr = rhs.
	Eq
	// Geq constrains expr ≥ rhs.
	Geq
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case Leq:
		return "<="
	case Eq:
		return "="
	case Geq:
		return ">="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Var identifies a variable within a Model.
type Var int

// Term is a coefficient applied to a variable in a linear expression.
type Term struct {
	Var   Var
	Coeff rat.Rat
}

// Expr is a linear expression: a sum of terms.
type Expr []Term

// NewExpr returns an empty expression.
func NewExpr() Expr { return nil }

// Plus appends coeff·v to the expression and returns the extended
// expression (builder style).
func (e Expr) Plus(coeff rat.Rat, v Var) Expr {
	return append(e, Term{Var: v, Coeff: rat.Copy(coeff)})
}

// Plus1 appends 1·v to the expression.
func (e Expr) Plus1(v Var) Expr { return e.Plus(rat.One(), v) }

// Minus appends -coeff·v to the expression.
func (e Expr) Minus(coeff rat.Rat, v Var) Expr {
	return append(e, Term{Var: v, Coeff: rat.Neg(coeff)})
}

// Constraint is a linear constraint expr (sense) rhs.
type Constraint struct {
	Name  string
	Expr  Expr
	Sense Sense
	RHS   rat.Rat
}

// Model is a linear program: maximize (or minimize) a linear objective over
// nonnegative variables subject to linear constraints. Variables are always
// ≥ 0; optional upper bounds are recorded and lowered to constraints at
// solve time.
type Model struct {
	maximize bool
	names    []string
	index    map[string]Var
	upper    []rat.Rat // nil entry = unbounded above
	obj      map[Var]rat.Rat
	cons     []Constraint
}

// NewMaximize returns an empty model whose objective will be maximized.
func NewMaximize() *Model { return newModel(true) }

// NewMinimize returns an empty model whose objective will be minimized.
func NewMinimize() *Model { return newModel(false) }

func newModel(maximize bool) *Model {
	return &Model{
		maximize: maximize,
		index:    make(map[string]Var),
		obj:      make(map[Var]rat.Rat),
	}
}

// Maximizing reports whether the model's objective is maximized.
func (m *Model) Maximizing() bool { return m.maximize }

// NumVars returns the number of variables declared so far.
func (m *Model) NumVars() int { return len(m.names) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// Var declares a new nonnegative variable with the given name and returns
// its handle. Names must be unique; Var panics on a duplicate because a
// duplicate always indicates a bug in the model builder.
func (m *Model) Var(name string) Var {
	if _, dup := m.index[name]; dup {
		panic(fmt.Sprintf("lp: duplicate variable %q", name))
	}
	v := Var(len(m.names))
	m.names = append(m.names, name)
	m.upper = append(m.upper, nil)
	m.index[name] = v
	return v
}

// LookupVar returns the variable with the given name, if any.
func (m *Model) LookupVar(name string) (Var, bool) {
	v, ok := m.index[name]
	return v, ok
}

// VarName returns the name of v.
func (m *Model) VarName(v Var) string { return m.names[v] }

// SetUpper bounds v ≤ u (in addition to the implicit v ≥ 0). A nil u
// removes the bound.
func (m *Model) SetUpper(v Var, u rat.Rat) {
	if u == nil {
		m.upper[v] = nil
		return
	}
	m.upper[v] = rat.Copy(u)
}

// SetObjective sets the objective coefficient of v (replacing any previous
// coefficient).
func (m *Model) SetObjective(v Var, coeff rat.Rat) {
	m.obj[v] = rat.Copy(coeff)
}

// AddConstraint appends the constraint expr (sense) rhs. Terms mentioning
// the same variable more than once are summed. The name is used only in
// diagnostics.
func (m *Model) AddConstraint(name string, expr Expr, sense Sense, rhs rat.Rat) {
	for _, t := range expr {
		if int(t.Var) < 0 || int(t.Var) >= len(m.names) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
	}
	m.cons = append(m.cons, Constraint{
		Name:  name,
		Expr:  append(Expr(nil), expr...),
		Sense: sense,
		RHS:   rat.Copy(rhs),
	})
}

// Constraints returns the model's constraints (shared slice; callers must
// not mutate).
func (m *Model) Constraints() []Constraint { return m.cons }

// Solution is a feasible (and, on success, optimal) assignment of rational
// values to the model's variables.
type Solution struct {
	model     *Model
	Objective rat.Rat
	values    []rat.Rat
	// Iterations is the total number of simplex pivots performed.
	Iterations int
	// Phase1Iterations is the number of those pivots spent in phase 1
	// (finding a feasible basis, including driving artificials out); zero
	// when the initial basis was already feasible.
	Phase1Iterations int
}

// Value returns the value assigned to v.
func (s *Solution) Value(v Var) rat.Rat { return s.values[v] }

// ValueByName returns the value of the named variable, or nil if the name
// is unknown.
func (s *Solution) ValueByName(name string) rat.Rat {
	v, ok := s.model.index[name]
	if !ok {
		return nil
	}
	return s.values[v]
}

// Values returns a copy of all variable values, indexed by Var.
func (s *Solution) Values() []rat.Rat { return rat.Clone(s.values) }

// NonZero returns the names and values of all nonzero variables, sorted by
// name — a compact, deterministic rendering of the solution used in
// reports and golden tests.
func (s *Solution) NonZero() []struct {
	Name  string
	Value rat.Rat
} {
	var out []struct {
		Name  string
		Value rat.Rat
	}
	for v, val := range s.values {
		if !rat.IsZero(val) {
			out = append(out, struct {
				Name  string
				Value rat.Rat
			}{s.model.names[v], val})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the solution objective and nonzero variables.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "objective = %s\n", s.Objective.RatString())
	for _, nv := range s.NonZero() {
		fmt.Fprintf(&b, "  %s = %s\n", nv.Name, nv.Value.RatString())
	}
	return b.String()
}

// Infeasible and Unbounded are the two failure modes of Solve.
var (
	// ErrInfeasible is returned when no assignment satisfies the
	// constraints.
	ErrInfeasible = fmt.Errorf("lp: infeasible")
	// ErrUnbounded is returned when the objective is unbounded over the
	// feasible region.
	ErrUnbounded = fmt.Errorf("lp: unbounded")
)

// Verify checks that values satisfies every constraint and bound of the
// model exactly, returning a descriptive error for the first violation. It
// is independent of the solver and is used to harden tests and callers.
func (m *Model) Verify(values []rat.Rat) error {
	if len(values) != len(m.names) {
		return fmt.Errorf("lp: verify: got %d values for %d variables", len(values), len(m.names))
	}
	for v, val := range values {
		if val.Sign() < 0 {
			return fmt.Errorf("lp: verify: %s = %s < 0", m.names[v], val.RatString())
		}
		if u := m.upper[v]; u != nil && val.Cmp(u) > 0 {
			return fmt.Errorf("lp: verify: %s = %s > upper bound %s", m.names[v], val.RatString(), u.RatString())
		}
	}
	for _, c := range m.cons {
		lhs := rat.Zero()
		for _, t := range c.Expr {
			lhs.Add(lhs, rat.Mul(t.Coeff, values[t.Var]))
		}
		ok := false
		switch c.Sense {
		case Leq:
			ok = lhs.Cmp(c.RHS) <= 0
		case Eq:
			ok = lhs.Cmp(c.RHS) == 0
		case Geq:
			ok = lhs.Cmp(c.RHS) >= 0
		}
		if !ok {
			return fmt.Errorf("lp: verify: constraint %q violated: %s %s %s",
				c.Name, lhs.RatString(), c.Sense, c.RHS.RatString())
		}
	}
	return nil
}

// EvalObjective computes the objective value of an assignment.
func (m *Model) EvalObjective(values []rat.Rat) rat.Rat {
	z := rat.Zero()
	for v, coeff := range m.obj {
		z.Add(z, rat.Mul(coeff, values[v]))
	}
	return z
}

// ratFromBigInts builds the rational n/d.
func ratFromBigInts(n, d *big.Int) rat.Rat {
	return new(big.Rat).SetFrac(new(big.Int).Set(n), new(big.Int).Set(d))
}
