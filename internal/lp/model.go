// Package lp implements an exact linear-programming solver over the
// rational numbers.
//
// The steady-state framework of Legrand/Marchal/Robert expresses the optimal
// throughput of a pipelined collective as the optimum of a linear program
// "solved in rational numbers" (the paper uses lpsolve or Maple). The
// periodic-schedule construction then multiplies the solution by the least
// common multiple of its denominators, so the solver must be exact: a
// floating-point optimum cannot be turned into an integer period. Since the
// module is stdlib-only (no cgo wrapping of GLPK/lp_solve), this package
// provides a self-contained primal simplex over big.Int/big.Rat:
//
//   - Model: named variables (all ≥ 0, optional upper bounds), linear
//     constraints with ≤ / = / ≥ senses, and a linear objective. Constraints
//     are stored as sorted sparse (Var, coeff) vectors — Expr merges
//     duplicate variables as it is built — and Stats reports the model's
//     nonzero count and density.
//   - Solve: two-phase primal simplex. Pivoting uses Dantzig's rule and
//     falls back to Bland's rule (which provably terminates) when the
//     iteration count suggests cycling.
//   - Verify: independent feasibility check of a solution against the model,
//     used by tests and callers to guard against solver defects.
//
// # Tableau representations
//
// The simplex tableau is pluggable (see the tableau interface in
// simplex.go); both implementations store rows fraction-free as integer
// numerators over one positive per-row denominator, re-normalized by their
// content gcd after every pivot, and both produce the exact same pivot
// sequence — solutions, pivot counts and objective values are bit-identical:
//
//   - sparse (sparse.go, the default): each row keeps only its nonzero
//     entries as parallel (column, numerator) slices sorted by column. The
//     steady-state LPs are extremely sparse — a one-port or compute row
//     touches only a node's incident edges, a conservation row only one
//     commodity's variables around one node — so pivots cost O(nnz) big.Int
//     multiplications instead of O(columns). Composite solves, whose
//     variable counts multiply by the member count, win the most.
//   - dense (simplex.go): each row is a full integer vector. It wins only
//     when rows are mostly full (density near 1, e.g. tiny textbook
//     programs), where the sparse index bookkeeping buys nothing. It is
//     kept selectable — WithTableau(ctx, TableauDense), surfaced as the
//     steadystate.WithDenseLP option — as an escape hatch and as the
//     baseline for ablation benchmarks.
package lp

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/rat"
)

// Sense is the comparison sense of a linear constraint.
type Sense int

const (
	// Leq constrains expr ≤ rhs.
	Leq Sense = iota
	// Eq constrains expr = rhs.
	Eq
	// Geq constrains expr ≥ rhs.
	Geq
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case Leq:
		return "<="
	case Eq:
		return "="
	case Geq:
		return ">="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Var identifies a variable within a Model.
type Var int

// Term is a coefficient applied to a variable in a linear expression.
type Term struct {
	Var   Var
	Coeff rat.Rat
}

// Expr is a linear expression: a sum of terms, kept as a sparse vector
// sorted by variable with at most one term per variable and no zero
// coefficients. Plus and Minus maintain the invariant by merging into an
// existing term instead of appending a duplicate, so an expression built
// term by term is already the sparse constraint row the solver stores —
// x + x is 2x, and a coefficient that cancels to zero drops out.
type Expr []Term

// NewExpr returns an empty expression.
func NewExpr() Expr { return nil }

// Plus adds coeff·v to the expression and returns the extended expression
// (builder style). A term for v already present absorbs the coefficient.
func (e Expr) Plus(coeff rat.Rat, v Var) Expr {
	if coeff.Sign() == 0 {
		return e
	}
	// Fast path: rows are usually built in increasing variable order, so
	// the new term lands at the end. The capacity-capped append forces a
	// fresh backing array, so two expressions derived from one shared
	// prefix can never clobber each other's appended terms.
	if n := len(e); n == 0 || e[n-1].Var < v {
		return append(e[:n:n], Term{Var: v, Coeff: rat.Copy(coeff)})
	}
	i := sort.Search(len(e), func(i int) bool { return e[i].Var >= v })
	if i < len(e) && e[i].Var == v {
		// Merge, never mutating the shared coefficient in place: the terms
		// of an Expr may be aliased by expressions derived from it.
		sum := rat.Add(e[i].Coeff, coeff)
		out := append(Expr(nil), e...)
		if sum.Sign() == 0 {
			return append(out[:i], out[i+1:]...)
		}
		out[i] = Term{Var: v, Coeff: sum}
		return out
	}
	out := make(Expr, 0, len(e)+1)
	out = append(out, e[:i]...)
	out = append(out, Term{Var: v, Coeff: rat.Copy(coeff)})
	return append(out, e[i:]...)
}

// Plus1 adds 1·v to the expression.
func (e Expr) Plus1(v Var) Expr { return e.Plus(rat.One(), v) }

// Minus adds -coeff·v to the expression.
func (e Expr) Minus(coeff rat.Rat, v Var) Expr {
	return e.Plus(rat.Neg(coeff), v)
}

// Concat merges every term of other into e and returns the merged
// expression, preserving the sorted-sparse invariant. It is the builder
// for shared capacity rows: per-edge occupancy expressions concatenate
// into per-node one-port rows without densifying.
func (e Expr) Concat(other Expr) Expr {
	if len(other) == 0 {
		return e
	}
	if len(e) == 0 {
		return append(Expr(nil), other...)
	}
	// Fast path: disjoint, strictly ordered ranges concatenate directly.
	if e[len(e)-1].Var < other[0].Var {
		return append(append(Expr(nil), e...), other...)
	}
	out := make(Expr, 0, len(e)+len(other))
	i, j := 0, 0
	for i < len(e) && j < len(other) {
		switch {
		case e[i].Var < other[j].Var:
			out = append(out, e[i])
			i++
		case e[i].Var > other[j].Var:
			out = append(out, other[j])
			j++
		default:
			if sum := rat.Add(e[i].Coeff, other[j].Coeff); sum.Sign() != 0 {
				out = append(out, Term{Var: e[i].Var, Coeff: sum})
			}
			i, j = i+1, j+1
		}
	}
	out = append(out, e[i:]...)
	return append(out, other[j:]...)
}

// Coeff returns the coefficient of v in the expression (zero when absent).
func (e Expr) Coeff(v Var) rat.Rat {
	i := sort.Search(len(e), func(i int) bool { return e[i].Var >= v })
	if i < len(e) && e[i].Var == v {
		return rat.Copy(e[i].Coeff)
	}
	return rat.Zero()
}

// canonical returns the expression in sorted-sparse form. Expressions
// built through Plus/Minus/Concat already satisfy the invariant and come
// back unchanged (no allocation); hand-assembled term slices are sorted
// and merged defensively.
func (e Expr) canonical() Expr {
	ordered := true
	for i := 1; i < len(e); i++ {
		if e[i-1].Var >= e[i].Var {
			ordered = false
			break
		}
	}
	if ordered {
		zeros := false
		for _, t := range e {
			if t.Coeff.Sign() == 0 {
				zeros = true
				break
			}
		}
		if !zeros {
			return e
		}
	}
	out := NewExpr()
	for _, t := range e {
		out = out.Plus(t.Coeff, t.Var)
	}
	return out
}

// Constraint is a linear constraint expr (sense) rhs.
type Constraint struct {
	Name  string
	Expr  Expr
	Sense Sense
	RHS   rat.Rat
}

// Model is a linear program: maximize (or minimize) a linear objective over
// nonnegative variables subject to linear constraints. Variables are always
// ≥ 0; optional upper bounds are recorded and lowered to constraints at
// solve time.
type Model struct {
	maximize bool
	names    []string
	index    map[string]Var
	upper    []rat.Rat // nil entry = unbounded above
	obj      map[Var]rat.Rat
	cons     []Constraint
	// blandOverride, when ≥ 0, replaces the per-phase pivot budget after
	// which the pivoting rule falls back from Dantzig's to Bland's; -1
	// means the size-derived default. Per-model (not a package global) so
	// concurrent solves never share it; tests set it through the
	// unexported setBlandAfter.
	blandOverride int
}

// NewMaximize returns an empty model whose objective will be maximized.
func NewMaximize() *Model { return newModel(true) }

// NewMinimize returns an empty model whose objective will be minimized.
func NewMinimize() *Model { return newModel(false) }

func newModel(maximize bool) *Model {
	return &Model{
		maximize:      maximize,
		index:         make(map[string]Var),
		obj:           make(map[Var]rat.Rat),
		blandOverride: -1,
	}
}

// setBlandAfter overrides the per-phase pivot budget after which the
// solver falls back from Dantzig's to Bland's rule, for this model's
// solves only. Tests use it to make the fallback (and its reset between
// phases) observable without constructing pathological cycling programs.
func (m *Model) setBlandAfter(n int) { m.blandOverride = n }

// Maximizing reports whether the model's objective is maximized.
func (m *Model) Maximizing() bool { return m.maximize }

// NumVars returns the number of variables declared so far.
func (m *Model) NumVars() int { return len(m.names) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// Var declares a new nonnegative variable with the given name and returns
// its handle. Names must be unique; Var panics on a duplicate because a
// duplicate always indicates a bug in the model builder.
func (m *Model) Var(name string) Var {
	if _, dup := m.index[name]; dup {
		panic(fmt.Sprintf("lp: duplicate variable %q", name))
	}
	v := Var(len(m.names))
	m.names = append(m.names, name)
	m.upper = append(m.upper, nil)
	m.index[name] = v
	return v
}

// LookupVar returns the variable with the given name, if any.
func (m *Model) LookupVar(name string) (Var, bool) {
	v, ok := m.index[name]
	return v, ok
}

// VarName returns the name of v.
func (m *Model) VarName(v Var) string { return m.names[v] }

// SetUpper bounds v ≤ u (in addition to the implicit v ≥ 0). A nil u
// removes the bound.
func (m *Model) SetUpper(v Var, u rat.Rat) {
	if u == nil {
		m.upper[v] = nil
		return
	}
	m.upper[v] = rat.Copy(u)
}

// SetObjective sets the objective coefficient of v (replacing any previous
// coefficient).
func (m *Model) SetObjective(v Var, coeff rat.Rat) {
	m.obj[v] = rat.Copy(coeff)
}

// AddConstraint appends the constraint expr (sense) rhs. Terms mentioning
// the same variable more than once are summed. The name is used only in
// diagnostics.
func (m *Model) AddConstraint(name string, expr Expr, sense Sense, rhs rat.Rat) {
	for _, t := range expr {
		if int(t.Var) < 0 || int(t.Var) >= len(m.names) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
	}
	m.cons = append(m.cons, Constraint{
		Name:  name,
		Expr:  append(Expr(nil), expr.canonical()...),
		Sense: sense,
		RHS:   rat.Copy(rhs),
	})
}

// Stats describes the assembled model: its size and the sparsity of its
// constraint matrix. NonZeros counts the (merged) terms of the explicit
// constraints; Density is NonZeros over the Vars×Constraints matrix area
// (0 for an empty model). The steady-state LPs sit well under 10% — each
// one-port, compute or conservation row touches only one node's incident
// variables — which is why the sparse tableau is the default.
type Stats struct {
	Vars        int
	Constraints int
	NonZeros    int
	Density     float64 //sslint:allow outbound telemetry only: density never enters solver arithmetic
}

// Stats returns the model's current size and sparsity.
func (m *Model) Stats() Stats {
	s := Stats{Vars: len(m.names), Constraints: len(m.cons)}
	for _, c := range m.cons {
		s.NonZeros += len(c.Expr)
	}
	if area := s.Vars * s.Constraints; area > 0 {
		s.Density = float64(s.NonZeros) / float64(area) //sslint:allow outbound telemetry only: density never enters solver arithmetic
	}
	return s
}

// Constraints returns the model's constraints (shared slice; callers must
// not mutate).
func (m *Model) Constraints() []Constraint { return m.cons }

// Solution is a feasible (and, on success, optimal) assignment of rational
// values to the model's variables.
type Solution struct {
	model     *Model
	Objective rat.Rat
	values    []rat.Rat
	// Iterations is the total number of simplex pivots performed.
	Iterations int
	// Phase1Iterations is the number of those pivots spent in phase 1
	// (finding a feasible basis, including driving artificials out); zero
	// when the initial basis was already feasible. A warm-started solve
	// skips phase 1, and the eliminations that restored the warm basis are
	// factorization rather than search — they appear as rebuild_pivots on
	// the lp.warmstart trace span, not in Iterations or here.
	Phase1Iterations int

	// WarmUsed reports whether this solve started from a warm basis
	// offered via WithWarmBasis.
	WarmUsed bool
	// WarmRejectReason is the WarmReject* constant explaining a declined
	// warm basis; empty when none was offered or the offer was used.
	WarmRejectReason string
	// WarmPivotsSaved estimates the phase-1 pivots avoided relative to
	// the solve that minted the warm basis; zero unless WarmUsed.
	WarmPivotsSaved int

	// basisCols / fingerprint / nCols snapshot the certified basis and the
	// model structure it belongs to, for Solution.Basis.
	basisCols   []int
	fingerprint string
	nCols       int
}

// Value returns the value assigned to v.
func (s *Solution) Value(v Var) rat.Rat { return s.values[v] }

// ValueByName returns the value of the named variable, or nil if the name
// is unknown.
func (s *Solution) ValueByName(name string) rat.Rat {
	v, ok := s.model.index[name]
	if !ok {
		return nil
	}
	return s.values[v]
}

// Values returns a copy of all variable values, indexed by Var.
func (s *Solution) Values() []rat.Rat { return rat.Clone(s.values) }

// NonZero returns the names and values of all nonzero variables, sorted by
// name — a compact, deterministic rendering of the solution used in
// reports and golden tests.
func (s *Solution) NonZero() []struct {
	Name  string
	Value rat.Rat
} {
	var out []struct {
		Name  string
		Value rat.Rat
	}
	for v, val := range s.values {
		if !rat.IsZero(val) {
			out = append(out, struct {
				Name  string
				Value rat.Rat
			}{s.model.names[v], val})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the solution objective and nonzero variables.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "objective = %s\n", s.Objective.RatString())
	for _, nv := range s.NonZero() {
		fmt.Fprintf(&b, "  %s = %s\n", nv.Name, nv.Value.RatString())
	}
	return b.String()
}

// Infeasible and Unbounded are the two failure modes of Solve.
var (
	// ErrInfeasible is returned when no assignment satisfies the
	// constraints.
	ErrInfeasible = fmt.Errorf("lp: infeasible")
	// ErrUnbounded is returned when the objective is unbounded over the
	// feasible region.
	ErrUnbounded = fmt.Errorf("lp: unbounded")
)

// Verify checks that values satisfies every constraint and bound of the
// model exactly, returning a descriptive error for the first violation. It
// is independent of the solver and is used to harden tests and callers.
func (m *Model) Verify(values []rat.Rat) error {
	if len(values) != len(m.names) {
		return fmt.Errorf("lp: verify: got %d values for %d variables", len(values), len(m.names))
	}
	for v, val := range values {
		if val.Sign() < 0 {
			return fmt.Errorf("lp: verify: %s = %s < 0", m.names[v], val.RatString())
		}
		if u := m.upper[v]; u != nil && val.Cmp(u) > 0 {
			return fmt.Errorf("lp: verify: %s = %s > upper bound %s", m.names[v], val.RatString(), u.RatString())
		}
	}
	for _, c := range m.cons {
		lhs := rat.Zero()
		for _, t := range c.Expr {
			lhs.Add(lhs, rat.Mul(t.Coeff, values[t.Var]))
		}
		ok := false
		switch c.Sense {
		case Leq:
			ok = lhs.Cmp(c.RHS) <= 0
		case Eq:
			ok = lhs.Cmp(c.RHS) == 0
		case Geq:
			ok = lhs.Cmp(c.RHS) >= 0
		}
		if !ok {
			return fmt.Errorf("lp: verify: constraint %q violated: %s %s %s",
				c.Name, lhs.RatString(), c.Sense, c.RHS.RatString())
		}
	}
	return nil
}

// EvalObjective computes the objective value of an assignment.
func (m *Model) EvalObjective(values []rat.Rat) rat.Rat {
	z := rat.Zero()
	for v, coeff := range m.obj {
		z.Add(z, rat.Mul(coeff, values[v]))
	}
	return z
}

// ratFromBigInts builds the rational n/d.
func ratFromBigInts(n, d *big.Int) rat.Rat {
	return new(big.Rat).SetFrac(new(big.Int).Set(n), new(big.Int).Set(d))
}
