package lp

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/obs"
	"repro/internal/rat"
)

// TableauImpl selects the storage representation of the simplex tableau.
// Both implementations execute the exact same pivot sequence and return
// bit-identical solutions; they differ only in per-pivot cost (see the
// package documentation).
type TableauImpl int

const (
	// TableauSparse stores rows as sorted (column, numerator) pairs over a
	// shared denominator — the default, and the faster choice for the
	// steady-state LPs, whose rows touch only a node's incident variables.
	TableauSparse TableauImpl = iota
	// TableauDense stores rows as full integer vectors — the escape hatch
	// and the ablation baseline; faster only for near-full matrices.
	TableauDense
)

// String names the implementation for reports and benchmarks.
func (t TableauImpl) String() string {
	if t == TableauDense {
		return "dense"
	}
	return "sparse"
}

// tableauCtxKey carries the tableau selection through a context.
type tableauCtxKey struct{}

// WithTableau returns a context that selects the tableau implementation
// for every Model.SolveCtx beneath it. Solvers thread one context from the
// public API down to the simplex, so a single context decoration switches
// an entire composite solve (steadystate.WithDenseLP uses this).
func WithTableau(ctx context.Context, impl TableauImpl) context.Context {
	return context.WithValue(ctx, tableauCtxKey{}, impl)
}

// TableauFrom reports the tableau implementation the context selects
// (TableauSparse when undecorated).
func TableauFrom(ctx context.Context) TableauImpl {
	if v, ok := ctx.Value(tableauCtxKey{}).(TableauImpl); ok {
		return v
	}
	return TableauSparse
}

// colVal is one nonzero tableau entry under construction: the column index
// and the integer numerator (the row's shared denominator travels
// alongside). Rows are assembled with strictly increasing columns.
type colVal struct {
	col int
	num *big.Int
}

// tableau is the pluggable pivoting storage of the two-phase simplex. The
// driver in SolveCtx owns the phase logic (row assembly, phase-1
// artificials, the drive-out loop, phase-2 objective installation,
// extraction); the implementations own entry storage and the pivot
// arithmetic. Both implementations must pick identical entering/leaving
// columns on identical states so that dense and sparse solves are
// bit-equivalent — the equivalence tests pin this.
type tableau interface {
	// addRow appends a constraint row with the given sorted nonzero
	// entries (including the rhs column) over denominator den, with the
	// column basic initially basic in it.
	addRow(entries []colVal, den *big.Int, basic int)
	// nRows returns the current row count (rows can be dropped).
	nRows() int
	// basic returns the column basic in row i.
	basic(i int) int
	// entering picks the entering column (Dantzig, falling back to Bland
	// after the pivot budget), or -1 at optimality.
	entering() int
	// leaving runs the ratio test for column c, or -1 when unbounded.
	leaving(c int) int
	// pivot performs a Gauss-Jordan pivot at (pr, pc); the entry must be
	// strictly positive.
	pivot(pr, pc int)
	// pivotCount returns the pivots performed so far.
	pivotCount() int
	// resetRule restarts the cycling heuristic for a new phase: Dantzig's
	// rule with a fresh budget of extra pivots on top of those spent.
	resetRule(budget int)
	// installPhase1 installs the phase-1 objective (minimize the sum of
	// artificials) and eliminates the basic artificial columns.
	installPhase1(art []bool)
	// installObjective installs a reduced-cost row from the given sorted
	// entries over den and eliminates the basic columns.
	installObjective(entries []colVal, den *big.Int)
	// objRHSSign returns the sign of the objective row's rhs entry.
	objRHSSign() int
	// firstNonzero returns the first column (ascending, excluding rhs)
	// with a nonzero entry in row i among columns not skipped, and the
	// entry's sign; (-1, 0) when the row is zero over those columns.
	firstNonzero(i int, skip []bool) (col, sign int)
	// colSign returns the sign of row i's entry in column c — the warm
	// basis rebuild's pivot-row probe. Both implementations answer from
	// the same normalized rows, so the rebuild is representation-invariant.
	colSign(i, c int) int
	// negateRow flips the sign of every entry of row i.
	negateRow(i int)
	// dropRow removes row i (and its basis slot).
	dropRow(i int)
	// markDead excludes the flagged columns from future entering picks.
	markDead(cols []bool)
	// value returns the rhs value of row i as an exact rational.
	value(i int) rat.Rat
	// objValue returns the objective row's rhs as an exact rational.
	objValue() rat.Rat
	// blandActive reports whether the cycling fallback (Bland's rule) has
	// engaged in the current phase — a tracing observer.
	blandActive() bool
	// rowRHSSign returns the sign of row i's rhs entry (0 marks the
	// degenerate pivots a tracing observer counts).
	rowRHSSign(i int) int
	// nonzeros counts the nonzero entries across constraint rows (rhs
	// column included, objective row excluded). Both implementations
	// normalize rows identically, so their counts agree entry for entry.
	nonzeros() int
}

// newTableau constructs the selected implementation.
func newTableau(impl TableauImpl, nCols, blandAfter int) tableau {
	if impl == TableauDense {
		return newDenseTableau(nCols, blandAfter)
	}
	return newSparseTableau(nCols, blandAfter)
}

// blandBudget returns the number of pivots a phase may spend before the
// solver suspects cycling and switches to Bland's rule. A non-negative
// override (test hook, per model) replaces the size-derived default.
func blandBudget(rows, cols, override int) int {
	if override >= 0 {
		return override
	}
	return 50 * (rows + cols + 20)
}

// iterate pivots until optimality, unboundedness or context cancellation.
// Each pivot is dominated by big.Int row arithmetic, so a per-pivot
// cancellation check costs nothing measurable. rec, when non-nil, observes
// every pivot for the solve trace; with no tracer installed rec is nil and
// the loop's only added cost is one pointer comparison per pivot
// (allocation-free, pinned by TestNoTracerPivotLoopAllocationFree).
func iterate(ctx context.Context, t tableau, rec *pivotRecorder) error {
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("lp: interrupted after %d pivots: %w", t.pivotCount(), err)
		}
		c := t.entering()
		if c < 0 {
			return nil
		}
		r := t.leaving(c)
		if r < 0 {
			return ErrUnbounded
		}
		if rec != nil {
			rec.observe(t, r)
		}
		t.pivot(r, c)
	}
}

// ---------------------------------------------------------------------------
// Dense implementation

// row is one dense tableau row: rational entries n[j]/d with a shared
// positive denominator d. Keeping rows as integer vectors makes pivots
// pure big.Int arithmetic (no per-operation gcd as big.Rat would do) and
// lets a pivot skip every row whose pivot-column entry is zero.
type row struct {
	n []*big.Int
	d *big.Int
}

func newRow(cols int) *row {
	r := &row{n: make([]*big.Int, cols), d: big.NewInt(1)}
	for j := range r.n {
		r.n[j] = new(big.Int)
	}
	return r
}

// normalize divides the row through by the gcd of its denominator and all
// entries, keeping numbers small across pivots.
func (r *row) normalize() {
	g := new(big.Int).Set(r.d)
	for _, v := range r.n {
		if v.Sign() == 0 {
			continue
		}
		g.GCD(nil, nil, g, new(big.Int).Abs(v))
		if g.Cmp(bigOne) == 0 {
			return
		}
	}
	r.d.Quo(r.d, g)
	for _, v := range r.n {
		if v.Sign() != 0 {
			v.Quo(v, g)
		}
	}
}

var bigOne = big.NewInt(1)

// rational returns entry j as an exact rational.
func (r *row) rational(j int) rat.Rat { return ratFromBigInts(r.n[j], r.d) }

// denseTableau is the dense simplex tableau in solved (basic) form.
// Column layout: structural variables, then slacks, then artificials, then
// the right-hand side as the final column.
type denseTableau struct {
	rows  []*row
	obj   *row  // reduced-cost row: obj.n[j]/obj.d = cB·B⁻¹Aj − cj; rhs = objective value
	basis []int // basis[i] = column basic in row i
	dead  []bool
	rhs   int // index of the rhs column
	// iteration bookkeeping
	pivots     int
	blandAfter int
	bland      bool
}

func newDenseTableau(nCols, blandAfter int) *denseTableau {
	return &denseTableau{
		rhs:        nCols,
		dead:       make([]bool, nCols),
		blandAfter: blandAfter,
	}
}

func (t *denseTableau) addRow(entries []colVal, den *big.Int, basic int) {
	r := newRow(t.rhs + 1)
	for _, e := range entries {
		r.n[e.col].Set(e.num)
	}
	r.d = new(big.Int).Set(den)
	r.normalize()
	t.rows = append(t.rows, r)
	t.basis = append(t.basis, basic)
}

func (t *denseTableau) nRows() int           { return len(t.rows) }
func (t *denseTableau) basic(i int) int      { return t.basis[i] }
func (t *denseTableau) pivotCount() int      { return t.pivots }
func (t *denseTableau) objRHSSign() int      { return t.obj.n[t.rhs].Sign() }
func (t *denseTableau) value(i int) rat.Rat  { return t.rows[i].rational(t.rhs) }
func (t *denseTableau) objValue() rat.Rat    { return t.obj.rational(t.rhs) }
func (t *denseTableau) blandActive() bool    { return t.bland }
func (t *denseTableau) rowRHSSign(i int) int { return t.rows[i].n[t.rhs].Sign() }

func (t *denseTableau) nonzeros() int {
	nnz := 0
	for _, r := range t.rows {
		for _, v := range r.n {
			if v.Sign() != 0 {
				nnz++
			}
		}
	}
	return nnz
}

func (t *denseTableau) resetRule(budget int) {
	t.bland = false
	t.blandAfter = t.pivots + budget
}

func (t *denseTableau) markDead(cols []bool) {
	for j, dead := range cols {
		if dead {
			t.dead[j] = true
		}
	}
}

func (t *denseTableau) firstNonzero(i int, skip []bool) (int, int) {
	r := t.rows[i]
	for j := 0; j < t.rhs; j++ {
		if !skip[j] && r.n[j].Sign() != 0 {
			return j, r.n[j].Sign()
		}
	}
	return -1, 0
}

func (t *denseTableau) negateRow(i int) {
	for _, v := range t.rows[i].n {
		v.Neg(v)
	}
}

func (t *denseTableau) colSign(i, c int) int { return t.rows[i].n[c].Sign() }

// dropRow splices row i out with explicit copies. The earlier
// append-based splice (`append(t.rows[:i], t.rows[i+1:]...)`) shifted in
// place but left the dropped row aliased past the new length in the
// backing array — a stale *row kept alive (and, symmetrically in the
// sparse tableau, scratch-buffer-sharing rows kept reachable) for the
// lifetime of the solve. Clearing the vacated tail slot severs the alias.
func (t *denseTableau) dropRow(i int) {
	n := len(t.rows)
	copy(t.rows[i:], t.rows[i+1:])
	t.rows[n-1] = nil
	t.rows = t.rows[:n-1]
	copy(t.basis[i:], t.basis[i+1:])
	t.basis = t.basis[:n-1]
}

func (t *denseTableau) installPhase1(art []bool) {
	w := newRow(t.rhs + 1)
	for j := 0; j < t.rhs; j++ {
		if art[j] {
			w.n[j].SetInt64(1)
		}
	}
	t.obj = w
	for i, b := range t.basis {
		if art[b] {
			// w ← w − (w[b]/1)·row_i normalized: w[b] is 1, the row has
			// row_i[b] = 1 as a rational, so subtract the row in rational
			// form.
			t.eliminateRational(w, t.rows[i], b)
		}
	}
}

func (t *denseTableau) installObjective(entries []colVal, den *big.Int) {
	z := newRow(t.rhs + 1)
	z.d = new(big.Int).Set(den)
	for _, e := range entries {
		z.n[e.col].Set(e.num)
	}
	t.obj = z
	for i, b := range t.basis {
		if z.n[b].Sign() != 0 {
			t.eliminateRational(z, t.rows[i], b)
		}
	}
}

// pivot performs a Gauss-Jordan pivot at (pr, pc). The entry must be
// strictly positive (as a rational).
func (t *denseTableau) pivot(pr, pc int) {
	prow := t.rows[pr]
	p := prow.n[pc] // > 0
	for i, ri := range t.rows {
		if i == pr {
			continue
		}
		t.eliminate(ri, prow, p, pc)
	}
	if t.obj != nil {
		// Warm-basis rebuild pivots run before any objective is installed.
		t.eliminate(t.obj, prow, p, pc)
	}
	// Row pr itself: divide by the pivot, i.e. its denominator becomes the
	// old pivot numerator (entries unchanged).
	prow.d = new(big.Int).Set(p)
	prow.normalize()
	t.basis[pr] = pc
	t.pivots++
}

// eliminate applies ri ← ri − (ri[pc]/p)·prow in row-integer form:
// n'[j] = n[j]·p − n[pc]·prow.n[j], d' = d·p, then renormalizes.
func (t *denseTableau) eliminate(ri, prow *row, p *big.Int, pc int) {
	f := ri.n[pc]
	if f.Sign() == 0 {
		return // row untouched by this pivot
	}
	f = new(big.Int).Set(f) // ri.n[pc] is overwritten below
	var tmp big.Int
	for j, nj := range ri.n {
		pj := prow.n[j]
		switch {
		case pj.Sign() == 0:
			if nj.Sign() != 0 {
				nj.Mul(nj, p)
			}
		case nj.Sign() == 0:
			nj.Mul(f, pj)
			nj.Neg(nj)
		default:
			nj.Mul(nj, p)
			tmp.Mul(f, pj)
			nj.Sub(nj, &tmp)
		}
	}
	ri.d = new(big.Int).Mul(ri.d, p)
	ri.normalize()
}

// entering picks the entering column, or -1 if the tableau is optimal.
// Dantzig's rule (most negative reduced cost) normally; Bland's rule
// (lowest index with negative reduced cost) once cycling is suspected.
func (t *denseTableau) entering() int {
	if !t.bland && t.pivots > t.blandAfter {
		t.bland = true
	}
	best := -1
	for j := 0; j < t.rhs; j++ {
		if t.dead[j] || t.obj.n[j].Sign() >= 0 {
			continue
		}
		if t.bland {
			return j
		}
		// All obj entries share one denominator, so numerators compare.
		if best == -1 || t.obj.n[j].Cmp(t.obj.n[best]) < 0 {
			best = j
		}
	}
	return best
}

// leaving runs the ratio test for entering column c: the feasible basis row
// minimizing rhs_i / a_ic over rows with a_ic > 0. Returns -1 when the
// column is unbounded. Ties break toward the smallest basic column index
// (required by Bland's rule; harmless otherwise).
func (t *denseTableau) leaving(c int) int {
	best := -1
	var bn, bd *big.Int // best ratio = bn/bd, bd > 0
	for i, ri := range t.rows {
		a := ri.n[c]
		if a.Sign() <= 0 {
			continue
		}
		b := ri.n[t.rhs]
		if best == -1 {
			best, bn, bd = i, b, a
			continue
		}
		// compare b/a vs bn/bd  ⇔  b·bd vs bn·a (a, bd > 0)
		l := new(big.Int).Mul(b, bd)
		r := new(big.Int).Mul(bn, a)
		switch l.Cmp(r) {
		case -1:
			best, bn, bd = i, b, a
		case 0:
			if t.basis[i] < t.basis[best] {
				best, bn, bd = i, b, a
			}
		}
	}
	return best
}

// eliminateRational performs z ← z − z[col]·row, where the row is in solved
// form (its col entry equals 1 as a rational, i.e. r.n[col] == r.d). Used
// when (re)installing an objective row over an existing basis:
//
//	z'_j = (z.n[j]·r.d − z.n[col]·r.n[j]) / (z.d·r.d)
func (t *denseTableau) eliminateRational(z *row, r *row, col int) {
	f := new(big.Int).Set(z.n[col])
	if f.Sign() == 0 {
		return
	}
	var tmp big.Int
	for j, nj := range z.n {
		nj.Mul(nj, r.d)
		tmp.Mul(f, r.n[j])
		nj.Sub(nj, &tmp)
	}
	z.d = new(big.Int).Mul(z.d, r.d)
	z.normalize()
}

// ---------------------------------------------------------------------------
// Two-phase driver

// Solve optimizes the model and returns an optimal solution, or
// ErrInfeasible / ErrUnbounded.
func (m *Model) Solve() (*Solution, error) { return m.SolveCtx(context.Background()) }

// normRow is one constraint row in solver-normal form: canonical sorted
// terms, a sense, and (after normalization) a nonnegative right-hand side.
type normRow struct {
	terms Expr // sorted by Var, duplicates merged
	sense Sense
	rhs   rat.Rat
}

// normalizedRows assembles the constraint rows the simplex sees — model
// constraints (already canonical sorted-sparse vectors) plus upper
// bounds — and normalizes right-hand sides to be nonnegative (negating a
// row flips its sense). The structural fingerprint hashes exactly this
// list, so any drift visible here rejects a warm basis.
func (m *Model) normalizedRows() []normRow {
	var rowsIn []normRow
	for _, c := range m.cons {
		rowsIn = append(rowsIn, normRow{c.Expr, c.Sense, rat.Copy(c.RHS)})
	}
	for v, u := range m.upper {
		if u == nil {
			continue
		}
		rowsIn = append(rowsIn, normRow{NewExpr().Plus1(Var(v)), Leq, rat.Copy(u)})
	}
	for i := range rowsIn {
		if rowsIn[i].rhs.Sign() < 0 {
			neg := make(Expr, len(rowsIn[i].terms))
			for j, t := range rowsIn[i].terms {
				neg[j] = Term{Var: t.Var, Coeff: rat.Neg(t.Coeff)}
			}
			rowsIn[i].terms = neg
			rowsIn[i].rhs = rat.Neg(rowsIn[i].rhs)
			switch rowsIn[i].sense {
			case Leq:
				rowsIn[i].sense = Geq
			case Geq:
				rowsIn[i].sense = Leq
			}
		}
	}
	return rowsIn
}

// buildTableau assembles a fresh tableau in the initial (slack/artificial)
// basis from normalized rows. Column layout: structural | slacks |
// artificials | rhs. Returns the tableau and the artificial-column mask.
func buildTableau(impl TableauImpl, rowsIn []normRow, nStruct, nSlack, nCols, budget int) (tableau, []bool) {
	t := newTableau(impl, nCols, budget)
	slackAt := nStruct
	artAt := nStruct + nSlack
	artCols := make([]bool, nCols)
	for _, rin := range rowsIn {
		coeffs := make([]rat.Rat, 0, len(rin.terms)+1)
		for _, term := range rin.terms {
			coeffs = append(coeffs, term.Coeff)
		}
		den := rat.DenominatorLCM(append(coeffs, rin.rhs)...)
		entries := make([]colVal, 0, len(rin.terms)+2)
		for _, term := range rin.terms {
			entries = append(entries, colVal{int(term.Var), rat.ScaleToInt(term.Coeff, den)})
		}
		basic := -1
		switch rin.sense {
		case Leq:
			entries = append(entries, colVal{slackAt, new(big.Int).Set(den)}) // +1 slack
			basic = slackAt
			slackAt++
		case Geq:
			entries = append(entries, colVal{slackAt, new(big.Int).Neg(den)}) // -1 surplus
			slackAt++
			entries = append(entries, colVal{artAt, new(big.Int).Set(den)}) // +1 artificial
			basic = artAt
			artCols[artAt] = true
			artAt++
		case Eq:
			entries = append(entries, colVal{artAt, new(big.Int).Set(den)})
			basic = artAt
			artCols[artAt] = true
			artAt++
		}
		if rin.rhs.Sign() != 0 {
			entries = append(entries, colVal{nCols, rat.ScaleToInt(rin.rhs, den)})
		}
		t.addRow(entries, den, basic)
	}
	return t, artCols
}

// driveOutArtificials removes every artificial column from the basis once
// all artificials sit at value zero: pivot each artificial-basic row on
// its first nonzero non-artificial column (negating first when the entry
// is negative — the row's rhs is 0, so feasibility is unaffected), or
// drop the row entirely when it is zero over those columns (a redundant
// constraint).
func driveOutArtificials(t tableau, artCols []bool) {
	for i := 0; i < t.nRows(); i++ {
		if !artCols[t.basic(i)] {
			continue
		}
		piv, sign := t.firstNonzero(i, artCols)
		if piv == -1 {
			t.dropRow(i)
			i--
			continue
		}
		if sign < 0 {
			t.negateRow(i)
		}
		t.pivot(i, piv)
	}
}

// finalBasis snapshots the basic column of every surviving row, in row
// order — the raw material of Solution.Basis.
func finalBasis(t tableau) []int {
	cols := make([]int, t.nRows())
	for i := range cols {
		cols[i] = t.basic(i)
	}
	return cols
}

// SolveCtx is Solve honoring context cancellation: the simplex loop checks
// ctx between pivots and returns an error wrapping ctx.Err() when the
// context is canceled or its deadline expires. The context also selects
// the tableau representation (WithTableau; sparse by default) and may
// offer a warm-start basis (WithWarmBasis; cold by default).
func (m *Model) SolveCtx(ctx context.Context) (*Solution, error) {
	nStruct := len(m.names)
	rowsIn := m.normalizedRows()

	// Column layout: structural | slacks | artificials | rhs.
	nSlack := 0
	nArt := 0
	for _, r := range rowsIn {
		if r.sense != Eq {
			nSlack++
		}
		if r.sense != Leq {
			nArt++
		}
	}
	nCols := nStruct + nSlack + nArt
	budget := blandBudget(len(rowsIn), nCols, m.blandOverride)
	impl := TableauFrom(ctx)
	fp := structuralFingerprint(nStruct, rowsIn)

	// With a tracer in ctx, each stage below opens a span; undecorated
	// contexts yield nil spans and nil recorders, whose methods no-op.
	_, rowsSpan := obs.StartSpan(ctx, "lp.rows")
	t, artCols := buildTableau(impl, rowsIn, nStruct, nSlack, nCols, budget)
	rowsSpan.SetAttr("rows", t.nRows())
	rowsSpan.SetAttr("structural", nStruct)
	rowsSpan.SetAttr("slacks", nSlack)
	rowsSpan.SetAttr("artificials", nArt)
	rowsSpan.SetAttr("nonzeros", t.nonzeros())
	rowsSpan.End()

	// Warm start: when the context offers a certified basis whose
	// structural fingerprint matches this model, pivot the tableau
	// directly into that basis. If the rebuilt basis is primal-feasible
	// for the new right-hand side, phase 1 is skipped entirely; otherwise
	// the half-rebuilt tableau is discarded and a cold phase 1 runs,
	// seeded with ratio-test pivots toward the warm basis.
	warm := checkWarmBasis(warmTake(ctx), fp, t.nRows(), nCols, artCols)
	warmOK := false
	rebuildPivots := 0
	if warm != nil && warm.cols != nil {
		ok := rebuildWarmBasis(t, warm.cols, nCols)
		warmOK = ok && warmFeasible(t, artCols)
		switch {
		case !ok:
			warm.reason = WarmRejectSingular
		case !warmOK:
			warm.reason = WarmRejectInfeasible
		}
		rebuildPivots = t.pivotCount()
		warmSpan(ctx, len(warm.cols), warmOK, warm.reason, rebuildPivots)
		if !warmOK {
			t, artCols = buildTableau(impl, rowsIn, nStruct, nSlack, nCols, budget)
			rebuildPivots = 0
		}
	} else if warm != nil && warm.ws.Basis != nil {
		warmSpan(ctx, warm.ws.Basis.Size(), false, warm.reason, 0)
	}

	// Phase 1: minimize the sum of artificials, i.e. maximize −Σa. The
	// reduced-cost row starts as +1 on artificial columns, then basic
	// columns are eliminated (each artificial is basic in its row). A
	// feasible warm basis replaces all of this entirely: the eliminations
	// that restored the warm basis are factorization, not simplex
	// iterations, so they live on the lp.warmstart span (rebuild_pivots)
	// and are excluded from every pivot counter — the counters measure
	// search, and a warm start's point is that the search is already done.
	phase1Pivots := 0
	if warmOK {
		// Leftover basic artificials (possible when the originating solve
		// dropped redundant rows) sit at value zero — warmFeasible checked
		// — so the standard drive-out applies.
		driveOutArtificials(t, artCols)
		t.markDead(artCols)
		phase1Pivots = t.pivotCount() - rebuildPivots
		if phase1Pivots > 0 {
			_, p1Span := obs.StartSpan(ctx, "lp.phase1")
			rec := newPivotRecorder(p1Span, nCols+1)
			rec.finish(p1Span, t, phase1Pivots)
			p1Span.End()
		}
	} else if nArt > 0 {
		_, p1Span := obs.StartSpan(ctx, "lp.phase1")
		rec := newPivotRecorder(p1Span, nCols+1)
		t.installPhase1(artCols)
		if warm != nil && warm.reason == WarmRejectInfeasible {
			seedPhase1(t, warm.cols, nCols)
		}
		if err := iterate(ctx, t, rec); err != nil {
			if errors.Is(err, ErrUnbounded) {
				// Phase 1 objective is bounded (≥ −Σb); unbounded here means
				// a solver bug, surface it loudly.
				panic("lp: phase 1 unbounded: " + err.Error())
			}
			return nil, err
		}
		// Optimal phase-1 value is −(sum of artificials); feasible iff 0.
		if t.objRHSSign() != 0 {
			return nil, ErrInfeasible
		}
		driveOutArtificials(t, artCols)
		t.markDead(artCols)
		phase1Pivots = t.pivotCount()
		rec.finish(p1Span, t, phase1Pivots)
		p1Span.End()
	}

	// Phase 2: the real objective. Phase 1 may have tripped the cycling
	// heuristic on a degenerate basis; that suspicion does not carry over to
	// the new objective, so phase 2 restarts on Dantzig's rule with a fresh
	// pivot budget (otherwise one degenerate phase 1 would force Bland's
	// slow lowest-index rule on the entire optimization).
	t.resetRule(budget)

	// Build the reduced-cost row −c and eliminate the basic columns.
	objDen := rat.DenominatorLCM(values(m.obj)...)
	objEntries := make([]colVal, 0, len(m.obj))
	for v := 0; v < nStruct; v++ {
		c, ok := m.obj[Var(v)]
		if !ok || c.Sign() == 0 {
			continue
		}
		cc := c
		if !m.maximize {
			cc = rat.Neg(c)
		}
		objEntries = append(objEntries, colVal{v, new(big.Int).Neg(rat.ScaleToInt(cc, objDen))})
	}
	_, p2Span := obs.StartSpan(ctx, "lp.phase2")
	rec2 := newPivotRecorder(p2Span, nCols+1)
	t.installObjective(objEntries, objDen)
	if err := iterate(ctx, t, rec2); err != nil {
		return nil, err
	}
	rec2.finish(p2Span, t, t.pivotCount()-rebuildPivots-phase1Pivots)
	p2Span.End()

	// Extract the solution.
	vals := make([]rat.Rat, nStruct)
	for v := range vals {
		vals[v] = rat.Zero()
	}
	for i := 0; i < t.nRows(); i++ {
		if b := t.basic(i); b < nStruct {
			vals[b] = t.value(i)
		}
	}
	objVal := t.objValue()
	if !m.maximize {
		objVal = rat.Neg(objVal)
	}
	sol := &Solution{
		model:            m,
		Objective:        objVal,
		values:           vals,
		Iterations:       t.pivotCount() - rebuildPivots,
		Phase1Iterations: phase1Pivots,
		basisCols:        finalBasis(t),
		fingerprint:      fp,
		nCols:            nCols,
	}
	if warm != nil {
		warm.finish(sol, warmOK, warm.reason, phase1Pivots)
	}
	return sol, nil
}

// values collects the values of a map in unspecified order.
func values[K comparable, V any](m map[K]V) []V {
	out := make([]V, 0, len(m))
	for _, v := range m {
		out = append(out, v) //sslint:allow order-insensitive by contract: sole consumer is DenominatorLCM
	}
	return out
}
