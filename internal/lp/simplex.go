package lp

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/rat"
)

// row is one tableau row: rational entries n[j]/d with a shared positive
// denominator d. Keeping rows as integer vectors makes pivots pure big.Int
// arithmetic (no per-operation gcd as big.Rat would do) and lets a pivot
// skip every row whose pivot-column entry is zero.
type row struct {
	n []*big.Int
	d *big.Int
}

func newRow(cols int) *row {
	r := &row{n: make([]*big.Int, cols), d: big.NewInt(1)}
	for j := range r.n {
		r.n[j] = new(big.Int)
	}
	return r
}

// normalize divides the row through by the gcd of its denominator and all
// entries, keeping numbers small across pivots.
func (r *row) normalize() {
	g := new(big.Int).Set(r.d)
	for _, v := range r.n {
		if v.Sign() == 0 {
			continue
		}
		g.GCD(nil, nil, g, new(big.Int).Abs(v))
		if g.Cmp(bigOne) == 0 {
			return
		}
	}
	r.d.Quo(r.d, g)
	for _, v := range r.n {
		if v.Sign() != 0 {
			v.Quo(v, g)
		}
	}
}

var bigOne = big.NewInt(1)

// blandAfterOverride, when ≥ 0, replaces the per-phase pivot budget after
// which the pivoting rule falls back from Dantzig's to Bland's. Tests use
// it to make the fallback (and its reset between phases) observable without
// constructing pathological cycling programs.
var blandAfterOverride = -1

// blandBudget returns the number of pivots a phase may spend before the
// solver suspects cycling and switches to Bland's rule.
func blandBudget(rows, cols int) int {
	if blandAfterOverride >= 0 {
		return blandAfterOverride
	}
	return 50 * (rows + cols + 20)
}

// rational returns entry j as an exact rational.
func (r *row) rational(j int) rat.Rat { return ratFromBigInts(r.n[j], r.d) }

// tableau is a simplex tableau in solved (basic) form. Column layout:
// structural variables, then slacks, then artificials, then the
// right-hand side as the final column.
type tableau struct {
	rows  []*row
	obj   *row  // reduced-cost row: obj.n[j]/obj.d = cB·B⁻¹Aj − cj; rhs = objective value
	basis []int // basis[i] = column basic in row i
	dead  []bool
	rhs   int // index of the rhs column
	// iteration bookkeeping
	pivots     int
	blandAfter int
	bland      bool
}

// pivot performs a Gauss-Jordan pivot at (pr, pc). The entry must be
// strictly positive (as a rational).
func (t *tableau) pivot(pr, pc int) {
	prow := t.rows[pr]
	p := prow.n[pc] // > 0
	for i, ri := range t.rows {
		if i == pr {
			continue
		}
		t.eliminate(ri, prow, p, pc)
	}
	t.eliminate(t.obj, prow, p, pc)
	// Row pr itself: divide by the pivot, i.e. its denominator becomes the
	// old pivot numerator (entries unchanged).
	prow.d = new(big.Int).Set(p)
	prow.normalize()
	t.basis[pr] = pc
	t.pivots++
}

// eliminate applies ri ← ri − (ri[pc]/p)·prow in row-integer form:
// n'[j] = n[j]·p − n[pc]·prow.n[j], d' = d·p, then renormalizes.
func (t *tableau) eliminate(ri, prow *row, p *big.Int, pc int) {
	f := ri.n[pc]
	if f.Sign() == 0 {
		return // row untouched by this pivot
	}
	f = new(big.Int).Set(f) // ri.n[pc] is overwritten below
	var tmp big.Int
	for j, nj := range ri.n {
		pj := prow.n[j]
		switch {
		case pj.Sign() == 0:
			if nj.Sign() != 0 {
				nj.Mul(nj, p)
			}
		case nj.Sign() == 0:
			nj.Mul(f, pj)
			nj.Neg(nj)
		default:
			nj.Mul(nj, p)
			tmp.Mul(f, pj)
			nj.Sub(nj, &tmp)
		}
	}
	ri.d = new(big.Int).Mul(ri.d, p)
	ri.normalize()
}

// entering picks the entering column, or -1 if the tableau is optimal.
// Dantzig's rule (most negative reduced cost) normally; Bland's rule
// (lowest index with negative reduced cost) once cycling is suspected.
func (t *tableau) entering() int {
	if !t.bland && t.pivots > t.blandAfter {
		t.bland = true
	}
	best := -1
	for j := 0; j < t.rhs; j++ {
		if t.dead[j] || t.obj.n[j].Sign() >= 0 {
			continue
		}
		if t.bland {
			return j
		}
		// All obj entries share one denominator, so numerators compare.
		if best == -1 || t.obj.n[j].Cmp(t.obj.n[best]) < 0 {
			best = j
		}
	}
	return best
}

// leaving runs the ratio test for entering column c: the feasible basis row
// minimizing rhs_i / a_ic over rows with a_ic > 0. Returns -1 when the
// column is unbounded. Ties break toward the smallest basic column index
// (required by Bland's rule; harmless otherwise).
func (t *tableau) leaving(c int) int {
	best := -1
	var bn, bd *big.Int // best ratio = bn/bd, bd > 0
	for i, ri := range t.rows {
		a := ri.n[c]
		if a.Sign() <= 0 {
			continue
		}
		b := ri.n[t.rhs]
		if best == -1 {
			best, bn, bd = i, b, a
			continue
		}
		// compare b/a vs bn/bd  ⇔  b·bd vs bn·a (a, bd > 0)
		l := new(big.Int).Mul(b, bd)
		r := new(big.Int).Mul(bn, a)
		switch l.Cmp(r) {
		case -1:
			best, bn, bd = i, b, a
		case 0:
			if t.basis[i] < t.basis[best] {
				best, bn, bd = i, b, a
			}
		}
	}
	return best
}

// iterate pivots until optimality, unboundedness or context cancellation.
// Each pivot is dominated by big.Int row arithmetic, so a per-pivot
// cancellation check costs nothing measurable.
func (t *tableau) iterate(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("lp: interrupted after %d pivots: %w", t.pivots, err)
		}
		c := t.entering()
		if c < 0 {
			return nil
		}
		r := t.leaving(c)
		if r < 0 {
			return ErrUnbounded
		}
		t.pivot(r, c)
	}
}

// Solve optimizes the model and returns an optimal solution, or
// ErrInfeasible / ErrUnbounded.
func (m *Model) Solve() (*Solution, error) { return m.SolveCtx(context.Background()) }

// SolveCtx is Solve honoring context cancellation: the simplex loop checks
// ctx between pivots and returns an error wrapping ctx.Err() when the
// context is canceled or its deadline expires.
func (m *Model) SolveCtx(ctx context.Context) (*Solution, error) {
	nStruct := len(m.names)

	// Assemble the constraint rows: model constraints plus upper bounds.
	type normRow struct {
		coeff map[int]rat.Rat
		sense Sense
		rhs   rat.Rat
	}
	var rowsIn []normRow
	for _, c := range m.cons {
		coeff := make(map[int]rat.Rat)
		for _, term := range c.Expr {
			if prev, ok := coeff[int(term.Var)]; ok {
				coeff[int(term.Var)] = rat.Add(prev, term.Coeff)
			} else {
				coeff[int(term.Var)] = rat.Copy(term.Coeff)
			}
		}
		rowsIn = append(rowsIn, normRow{coeff, c.Sense, rat.Copy(c.RHS)})
	}
	for v, u := range m.upper {
		if u == nil {
			continue
		}
		rowsIn = append(rowsIn, normRow{map[int]rat.Rat{v: rat.One()}, Leq, rat.Copy(u)})
	}

	// Normalize to nonnegative right-hand sides.
	for i := range rowsIn {
		if rowsIn[i].rhs.Sign() < 0 {
			for k, v := range rowsIn[i].coeff {
				rowsIn[i].coeff[k] = rat.Neg(v)
			}
			rowsIn[i].rhs = rat.Neg(rowsIn[i].rhs)
			switch rowsIn[i].sense {
			case Leq:
				rowsIn[i].sense = Geq
			case Geq:
				rowsIn[i].sense = Leq
			}
		}
	}

	// Column layout: structural | slacks | artificials | rhs.
	nSlack := 0
	nArt := 0
	for _, r := range rowsIn {
		if r.sense != Eq {
			nSlack++
		}
		if r.sense != Leq {
			nArt++
		}
	}
	nCols := nStruct + nSlack + nArt
	budget := blandBudget(len(rowsIn), nCols)
	t := &tableau{
		rhs:        nCols,
		dead:       make([]bool, nCols),
		blandAfter: budget,
	}

	slackAt := nStruct
	artAt := nStruct + nSlack
	artCols := make([]bool, nCols)
	for _, rin := range rowsIn {
		r := newRow(nCols + 1)
		den := rat.DenominatorLCM(append(values(rin.coeff), rin.rhs)...)
		for v, c := range rin.coeff {
			r.n[v] = rat.ScaleToInt(c, den)
		}
		r.n[nCols] = rat.ScaleToInt(rin.rhs, den)
		r.d = den
		basic := -1
		switch rin.sense {
		case Leq:
			r.n[slackAt] = new(big.Int).Set(den) // +1 slack
			basic = slackAt
			slackAt++
		case Geq:
			r.n[slackAt] = new(big.Int).Neg(den) // -1 surplus
			slackAt++
			r.n[artAt] = new(big.Int).Set(den) // +1 artificial
			basic = artAt
			artCols[artAt] = true
			artAt++
		case Eq:
			r.n[artAt] = new(big.Int).Set(den)
			basic = artAt
			artCols[artAt] = true
			artAt++
		}
		r.normalize()
		t.rows = append(t.rows, r)
		t.basis = append(t.basis, basic)
	}

	// Phase 1: minimize the sum of artificials, i.e. maximize −Σa. The
	// reduced-cost row starts as +1 on artificial columns, then basic
	// columns are eliminated (each artificial is basic in its row).
	phase1Pivots := 0
	if nArt > 0 {
		w := newRow(nCols + 1)
		for j := 0; j < nCols; j++ {
			if artCols[j] {
				w.n[j].SetInt64(1)
			}
		}
		t.obj = w
		for i, b := range t.basis {
			if artCols[b] {
				// w ← w − (w[b]/1)·row_i normalized: w[b] is 1, row has
				// t_i[b] = 1, so subtract the row in rational form.
				t.eliminateRational(w, t.rows[i], b)
			}
		}
		if err := t.iterate(ctx); err != nil {
			if errors.Is(err, ErrUnbounded) {
				// Phase 1 objective is bounded (≥ −Σb); unbounded here means
				// a solver bug, surface it loudly.
				panic("lp: phase 1 unbounded: " + err.Error())
			}
			return nil, err
		}
		// Optimal phase-1 value is −(sum of artificials); feasible iff 0.
		if t.obj.n[t.rhs].Sign() != 0 {
			return nil, ErrInfeasible
		}
		// Drive remaining artificials out of the basis.
		for i := 0; i < len(t.rows); i++ {
			if !artCols[t.basis[i]] {
				continue
			}
			piv := -1
			for j := 0; j < nCols; j++ {
				if !artCols[j] && t.rows[i].n[j].Sign() != 0 {
					piv = j
					break
				}
			}
			if piv == -1 {
				// Redundant row: all-zero over structural and slack
				// columns (its rhs is 0 since phase 1 succeeded). Drop it.
				t.rows = append(t.rows[:i], t.rows[i+1:]...)
				t.basis = append(t.basis[:i], t.basis[i+1:]...)
				i--
				continue
			}
			if t.rows[i].n[piv].Sign() < 0 {
				// Negate the row so the pivot entry is positive; the row's
				// rhs is 0, so feasibility is unaffected.
				for _, v := range t.rows[i].n {
					v.Neg(v)
				}
			}
			t.pivot(i, piv)
		}
		for j := 0; j < nCols; j++ {
			if artCols[j] {
				t.dead[j] = true
			}
		}
		phase1Pivots = t.pivots
	}

	// Phase 2: the real objective. Phase 1 may have tripped the cycling
	// heuristic on a degenerate basis; that suspicion does not carry over to
	// the new objective, so phase 2 restarts on Dantzig's rule with a fresh
	// pivot budget (otherwise one degenerate phase 1 would force Bland's
	// slow lowest-index rule on the entire optimization).
	t.bland = false
	t.blandAfter = t.pivots + budget

	// Build the reduced-cost row −c and eliminate the basic columns.
	z := newRow(nCols + 1)
	objDen := rat.DenominatorLCM(values(m.obj)...)
	z.d = objDen
	for v, c := range m.obj {
		cc := c
		if !m.maximize {
			cc = rat.Neg(c)
		}
		z.n[v] = new(big.Int).Neg(rat.ScaleToInt(cc, objDen))
	}
	t.obj = z
	for i, b := range t.basis {
		if z.n[b].Sign() != 0 {
			t.eliminateRational(z, t.rows[i], b)
		}
	}
	if err := t.iterate(ctx); err != nil {
		return nil, err
	}

	// Extract the solution.
	vals := make([]rat.Rat, nStruct)
	for v := range vals {
		vals[v] = rat.Zero()
	}
	for i, b := range t.basis {
		if b < nStruct {
			vals[b] = t.rows[i].rational(t.rhs)
		}
	}
	objVal := t.obj.rational(t.rhs)
	if !m.maximize {
		objVal = rat.Neg(objVal)
	}
	return &Solution{
		model:            m,
		Objective:        objVal,
		values:           vals,
		Iterations:       t.pivots,
		Phase1Iterations: phase1Pivots,
	}, nil
}

// eliminateRational performs z ← z − z[col]·row, where the row is in solved
// form (its col entry equals 1 as a rational, i.e. r.n[col] == r.d). Used
// when (re)installing an objective row over an existing basis:
//
//	z'_j = (z.n[j]·r.d − z.n[col]·r.n[j]) / (z.d·r.d)
func (t *tableau) eliminateRational(z *row, r *row, col int) {
	f := new(big.Int).Set(z.n[col])
	if f.Sign() == 0 {
		return
	}
	var tmp big.Int
	for j, nj := range z.n {
		nj.Mul(nj, r.d)
		tmp.Mul(f, r.n[j])
		nj.Sub(nj, &tmp)
	}
	z.d = new(big.Int).Mul(z.d, r.d)
	z.normalize()
}

// values collects the values of a map in unspecified order.
func values[K comparable, V any](m map[K]V) []V {
	out := make([]V, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
