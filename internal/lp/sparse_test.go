package lp

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/rat"
)

// solveBoth solves the model under each tableau implementation and pins
// bit-exact equivalence: same objective, same variable values, same total
// and phase-1 pivot counts (the implementations must walk the same vertex
// path, not merely reach the same optimum).
func solveBoth(t *testing.T, m *Model) (*Solution, *Solution) {
	t.Helper()
	sparse, sErr := m.SolveCtx(WithTableau(context.Background(), TableauSparse))
	dense, dErr := m.SolveCtx(WithTableau(context.Background(), TableauDense))
	if (sErr == nil) != (dErr == nil) {
		t.Fatalf("sparse err = %v, dense err = %v", sErr, dErr)
	}
	if sErr != nil {
		if sErr != dErr {
			t.Fatalf("sparse err = %v, dense err = %v", sErr, dErr)
		}
		return nil, nil
	}
	if !rat.Eq(sparse.Objective, dense.Objective) {
		t.Fatalf("objective: sparse %s, dense %s",
			sparse.Objective.RatString(), dense.Objective.RatString())
	}
	sv, dv := sparse.Values(), dense.Values()
	for i := range sv {
		if !rat.Eq(sv[i], dv[i]) {
			t.Fatalf("value %s: sparse %s, dense %s",
				m.names[i], sv[i].RatString(), dv[i].RatString())
		}
	}
	if sparse.Iterations != dense.Iterations {
		t.Fatalf("pivots: sparse %d, dense %d", sparse.Iterations, dense.Iterations)
	}
	if sparse.Phase1Iterations != dense.Phase1Iterations {
		t.Fatalf("phase-1 pivots: sparse %d, dense %d",
			sparse.Phase1Iterations, dense.Phase1Iterations)
	}
	if err := m.Verify(sparse.Values()); err != nil {
		t.Fatalf("sparse solution fails verification: %v", err)
	}
	if err := m.Verify(dense.Values()); err != nil {
		t.Fatalf("dense solution fails verification: %v", err)
	}
	return sparse, dense
}

// TestSparseDenseKleeMinty: the Klee–Minty cubes walk long Dantzig paths
// (and past the Bland fallback at n=12), so pivot-sequence equivalence
// here exercises both rules and the big-integer hygiene of both
// representations.
func TestSparseDenseKleeMinty(t *testing.T) {
	for _, n := range []int{3, 5, 8, 10, 12} {
		m, want := kleeMinty(n)
		sparse, _ := solveBoth(t, m)
		if sparse.Objective.Num().Cmp(want) != 0 || !sparse.Objective.IsInt() {
			t.Errorf("n=%d: objective %s, want %s", n, sparse.Objective.RatString(), want)
		}
	}
}

// TestSparseDenseDegeneratePhase1: an equality system whose phase 1 is
// degenerate (redundant rows must be dropped, artificials driven out)
// followed by a phase-2 walk — the reset semantics must agree between the
// implementations.
func TestSparseDenseDegeneratePhase1(t *testing.T) {
	build := func() *Model {
		m := NewMaximize()
		x := m.Var("x")
		y := m.Var("y")
		z := m.Var("z")
		m.SetObjective(x, rat.Int(1))
		m.SetObjective(y, rat.Int(2))
		m.SetObjective(z, rat.Int(3))
		// Duplicated and scaled equalities force redundant phase-1 rows;
		// the ≥ rows add surplus+artificial columns.
		m.AddConstraint("e1", NewExpr().Plus1(x).Plus1(y).Plus1(z), Eq, rat.Int(4))
		m.AddConstraint("e2", NewExpr().Plus1(x).Plus1(y).Plus1(z), Eq, rat.Int(4))
		m.AddConstraint("e3", NewExpr().Plus(rat.Int(2), x).Plus(rat.Int(2), y).Plus(rat.Int(2), z), Eq, rat.Int(8))
		m.AddConstraint("g1", NewExpr().Plus1(x).Plus1(y), Geq, rat.One())
		m.AddConstraint("g2", NewExpr().Plus1(z), Geq, rat.One())
		return m
	}
	sparse, _ := solveBoth(t, build())
	// x+y ≥ 1 caps z at 3; the best unit goes to y: z = 0 + 2·1 + 3·3.
	if !rat.Eq(sparse.Objective, rat.Int(11)) {
		t.Errorf("objective = %s, want 11 (y=1, z=3)", sparse.Objective.RatString())
	}
	if sparse.Phase1Iterations == 0 {
		t.Error("expected a nontrivial phase 1")
	}

	// The same system under a zero Bland budget (phase 1 trips the cycling
	// fallback immediately) must still agree between implementations.
	m := build()
	m.setBlandAfter(0)
	solveBoth(t, m)
}

// TestSparseDenseBeale: the classic cycling-prone degenerate program.
func TestSparseDenseBeale(t *testing.T) {
	m := NewMinimize()
	x4 := m.Var("x4")
	x5 := m.Var("x5")
	x6 := m.Var("x6")
	x7 := m.Var("x7")
	m.SetObjective(x4, rat.New(-3, 4))
	m.SetObjective(x5, rat.Int(150))
	m.SetObjective(x6, rat.New(-1, 50))
	m.SetObjective(x7, rat.Int(6))
	m.AddConstraint("r1",
		NewExpr().Plus(rat.New(1, 4), x4).Minus(rat.Int(60), x5).Minus(rat.New(1, 25), x6).Plus(rat.Int(9), x7),
		Leq, rat.Zero())
	m.AddConstraint("r2",
		NewExpr().Plus(rat.New(1, 2), x4).Minus(rat.Int(90), x5).Minus(rat.New(1, 50), x6).Plus(rat.Int(3), x7),
		Leq, rat.Zero())
	m.AddConstraint("r3", NewExpr().Plus1(x6), Leq, rat.One())
	sparse, _ := solveBoth(t, m)
	if !rat.Eq(sparse.Objective, rat.New(-1, 20)) {
		t.Errorf("objective = %s, want -1/20", sparse.Objective.RatString())
	}
}

// TestSparseDenseInfeasibleUnbounded: the failure modes must agree too.
func TestSparseDenseInfeasibleUnbounded(t *testing.T) {
	inf := NewMaximize()
	x := inf.Var("x")
	inf.SetObjective(x, rat.One())
	inf.AddConstraint("lo", NewExpr().Plus1(x), Geq, rat.Int(5))
	inf.AddConstraint("hi", NewExpr().Plus1(x), Leq, rat.Int(3))
	solveBoth(t, inf)

	unb := NewMaximize()
	u := unb.Var("x")
	v := unb.Var("y")
	unb.SetObjective(u, rat.One())
	unb.AddConstraint("c", NewExpr().Plus1(v), Leq, rat.Int(3))
	solveBoth(t, unb)
}

// TestSparseDenseRandom cross-checks the two implementations on random
// small LPs (a different corner of the space than the structured
// steady-state programs; the brute-force oracle test already pins the
// dense result against vertex enumeration).
func TestSparseDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(3)
		mr := 2 + rng.Intn(4)
		m := NewMaximize()
		vars := make([]Var, n)
		for j := 0; j < n; j++ {
			vars[j] = m.Var(fmt.Sprintf("x%d", j))
			m.SetObjective(vars[j], rat.Int(int64(rng.Intn(11)-5)))
		}
		for i := 0; i < mr; i++ {
			e := NewExpr()
			for j := 0; j < n; j++ {
				e = e.Plus(rat.Int(int64(rng.Intn(9)-3)), vars[j])
			}
			sense := []Sense{Leq, Geq, Eq}[rng.Intn(3)]
			e = e.canonical()
			if len(e) == 0 {
				continue
			}
			m.AddConstraint(fmt.Sprintf("c%d", i), e, sense, rat.Int(int64(rng.Intn(15)-3)))
		}
		for j := 0; j < n; j++ {
			m.SetUpper(vars[j], rat.Int(int64(10+rng.Intn(10))))
		}
		solveBoth(t, m)
	}
}

// TestExprPlusMergesDuplicates pins the sparse-expression semantics: x + x
// is one term with coefficient 2, in the stored constraint, in Verify and
// in the solver.
func TestExprPlusMergesDuplicates(t *testing.T) {
	m := NewMaximize()
	x := m.Var("x")
	m.SetObjective(x, rat.One())

	e := NewExpr().Plus1(x).Plus1(x)
	if len(e) != 1 {
		t.Fatalf("x + x has %d terms, want 1 merged term", len(e))
	}
	if !rat.Eq(e[0].Coeff, rat.Int(2)) {
		t.Fatalf("x + x coefficient = %s, want 2", e[0].Coeff.RatString())
	}
	m.AddConstraint("c", e, Leq, rat.Int(4))
	if got := m.Constraints()[0].Expr; len(got) != 1 || !rat.Eq(got[0].Coeff, rat.Int(2)) {
		t.Fatalf("stored constraint = %v, want single 2x term", got)
	}

	// Verify must treat the constraint as 2x ≤ 4.
	if err := m.Verify([]rat.Rat{rat.Int(2)}); err != nil {
		t.Errorf("Verify rejected x=2 under x+x ≤ 4: %v", err)
	}
	if err := m.Verify([]rat.Rat{rat.New(5, 2)}); err == nil {
		t.Error("Verify accepted x=5/2 under x+x ≤ 4")
	}

	// And the solver must optimize it as 2x ≤ 4 under both tableaus.
	sparse, _ := solveBoth(t, m)
	if !rat.Eq(sparse.Value(x), rat.Int(2)) {
		t.Errorf("x = %s, want 2", sparse.Value(x).RatString())
	}
}

// TestExprCancellationAndConcat: coefficients that sum to zero drop out,
// and Concat merges sorted sparse vectors.
func TestExprCancellationAndConcat(t *testing.T) {
	m := NewMaximize()
	x := m.Var("x")
	y := m.Var("y")
	z := m.Var("z")

	e := NewExpr().Plus1(x).Plus1(y).Minus(rat.One(), x)
	if len(e) != 1 || e[0].Var != y {
		t.Fatalf("x + y - x = %v, want the single term y", e)
	}

	a := NewExpr().Plus1(x).Plus(rat.Int(2), z)
	b := NewExpr().Plus(rat.Int(3), x).Plus1(y)
	c := a.Concat(b)
	want := []struct {
		v Var
		c rat.Rat
	}{{x, rat.Int(4)}, {y, rat.One()}, {z, rat.Int(2)}}
	if len(c) != len(want) {
		t.Fatalf("Concat = %v, want 3 terms", c)
	}
	for i, w := range want {
		if c[i].Var != w.v || !rat.Eq(c[i].Coeff, w.c) {
			t.Errorf("Concat[%d] = (%d, %s), want (%d, %s)",
				i, c[i].Var, c[i].Coeff.RatString(), w.v, w.c.RatString())
		}
	}
	// Concat must not have mutated its operands.
	if len(a) != 2 || !rat.Eq(a.Coeff(x), rat.One()) {
		t.Errorf("Concat mutated its receiver: %v", a)
	}
	if len(b) != 2 || !rat.Eq(b.Coeff(x), rat.Int(3)) {
		t.Errorf("Concat mutated its argument: %v", b)
	}
}

// TestExprDerivedExpressionsDoNotAlias: two expressions extended from one
// shared prefix must not clobber each other's appended terms (the append
// fast path must not write into a shared backing array).
func TestExprDerivedExpressionsDoNotAlias(t *testing.T) {
	base := NewExpr().Plus1(Var(0)).Plus1(Var(1)).Plus1(Var(2))
	a := base.Plus(rat.Int(7), Var(3))
	b := base.Plus(rat.Int(9), Var(4))
	if len(a) != 4 || a[3].Var != Var(3) || !rat.Eq(a[3].Coeff, rat.Int(7)) {
		t.Fatalf("a = %v; extending b corrupted a's appended term", a)
	}
	if len(b) != 4 || b[3].Var != Var(4) || !rat.Eq(b[3].Coeff, rat.Int(9)) {
		t.Fatalf("b = %v", b)
	}
}

// TestModelStats pins the nonzero/density accounting.
func TestModelStats(t *testing.T) {
	m := NewMaximize()
	x := m.Var("x")
	y := m.Var("y")
	z := m.Var("z")
	m.AddConstraint("c1", NewExpr().Plus1(x).Plus1(y), Leq, rat.One())
	m.AddConstraint("c2", NewExpr().Plus1(z), Leq, rat.One())
	s := m.Stats()
	if s.Vars != 3 || s.Constraints != 2 || s.NonZeros != 3 {
		t.Fatalf("Stats = %+v, want 3 vars, 2 constraints, 3 nonzeros", s)
	}
	if want := 3.0 / 6.0; s.Density != want {
		t.Errorf("Density = %v, want %v", s.Density, want)
	}
	if empty := NewMaximize().Stats(); empty.Density != 0 {
		t.Errorf("empty model density = %v, want 0", empty.Density)
	}
}

// TestBlandOverridePerSolve: the fallback override is per model, not a
// package global — concurrent solves with different overrides must not
// interfere (this was a data race when the override was a package var).
func TestBlandOverridePerSolve(t *testing.T) {
	build := func(override int) *Model {
		m := NewMaximize()
		if override >= 0 {
			m.setBlandAfter(override)
		}
		x1 := m.Var("x1")
		x2 := m.Var("x2")
		x3 := m.Var("x3")
		m.SetObjective(x1, rat.Int(1))
		m.SetObjective(x2, rat.Int(2))
		m.SetObjective(x3, rat.Int(3))
		m.AddConstraint("sum", NewExpr().Plus1(x1).Plus1(x2).Plus1(x3), Eq, rat.One())
		return m
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		override := -1
		if g%2 == 0 {
			override = 0
		}
		wg.Add(1)
		go func(override int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				sol, err := build(override).Solve()
				if err != nil {
					t.Errorf("Solve: %v", err)
					return
				}
				if !rat.Eq(sol.Objective, rat.Int(3)) {
					t.Errorf("objective = %s, want 3", sol.Objective.RatString())
					return
				}
			}
		}(override)
	}
	wg.Wait()
}
