package lp

import (
	"fmt"
	"math/big"
	"testing"

	"repro/internal/rat"
)

// kleeMinty builds the classic Klee–Minty cube of dimension n:
//
//	max  Σ 2^(n-j)·x_j
//	s.t. 2·Σ_{j<i} 2^(i-j)·x_j + x_i ≤ 5^i   (i = 1..n)
//
// Its optimum is x_n = 5^n (all other x_j = 0) with objective 5^n. Greedy
// pivot rules visit exponentially many vertices on this family, so it
// exercises the solver's pivot loop, the Bland fallback threshold and the
// big-integer row arithmetic far harder than the platform LPs do.
func kleeMinty(n int) (*Model, *big.Int) {
	m := NewMaximize()
	vars := make([]Var, n+1)
	for j := 1; j <= n; j++ {
		vars[j] = m.Var(fmt.Sprintf("x%d", j))
		coeff := new(big.Int).Lsh(big.NewInt(1), uint(n-j)) // 2^(n-j)
		m.SetObjective(vars[j], new(big.Rat).SetInt(coeff))
	}
	five := big.NewInt(5)
	for i := 1; i <= n; i++ {
		e := NewExpr()
		for j := 1; j < i; j++ {
			coeff := new(big.Int).Lsh(big.NewInt(1), uint(i-j+1)) // 2·2^(i-j)
			e = e.Plus(new(big.Rat).SetInt(coeff), vars[j])
		}
		e = e.Plus1(vars[i])
		rhs := new(big.Int).Exp(five, big.NewInt(int64(i)), nil)
		m.AddConstraint(fmt.Sprintf("c%d", i), e, Leq, new(big.Rat).SetInt(rhs))
	}
	want := new(big.Int).Exp(five, big.NewInt(int64(n)), nil)
	return m, want
}

func TestKleeMintyCubes(t *testing.T) {
	for _, n := range []int{3, 5, 8, 10} {
		m, want := kleeMinty(n)
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := m.Verify(sol.Values()); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if sol.Objective.Cmp(new(big.Rat).SetInt(want)) != 0 {
			t.Errorf("n=%d: objective %s, want %s", n, sol.Objective.RatString(), want)
		}
		t.Logf("Klee–Minty n=%d: %d pivots", n, sol.Iterations)
	}
}

func TestKleeMintyPivotGrowth(t *testing.T) {
	// The solver must finish (Dantzig may walk many vertices; Bland's
	// fallback guarantees termination regardless). Sanity-bound the pivot
	// count: the fallback threshold plus the post-switch Bland walk keeps
	// it finite and small for n=12.
	m, want := kleeMinty(12)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(new(big.Rat).SetInt(want)) != 0 {
		t.Errorf("objective %s, want %s", sol.Objective.RatString(), want)
	}
	if sol.Iterations > 1<<13 {
		t.Errorf("pivots = %d, suspiciously many even for Klee–Minty", sol.Iterations)
	}
}

// TestLargeDiagonalLP checks big-integer hygiene: widely varying
// coefficients must not corrupt the exact arithmetic.
func TestLargeDiagonalLP(t *testing.T) {
	m := NewMaximize()
	const n = 12
	total := rat.Zero()
	for i := 0; i < n; i++ {
		v := m.Var(fmt.Sprintf("x%d", i))
		m.SetObjective(v, rat.One())
		// x_i scaled by 10^i: x_i·10^i ≤ 7^i  →  x_i = (7/10)^i.
		scale := new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(i)), nil)
		rhs := new(big.Int).Exp(big.NewInt(7), big.NewInt(int64(i)), nil)
		m.AddConstraint(fmt.Sprintf("c%d", i),
			NewExpr().Plus(new(big.Rat).SetInt(scale), v), Leq, new(big.Rat).SetInt(rhs))
		total.Add(total, new(big.Rat).SetFrac(rhs, scale))
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !rat.Eq(sol.Objective, total) {
		t.Errorf("objective %s, want %s", sol.Objective.RatString(), total.RatString())
	}
}
