package lp

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rat"
)

// warmSolve solves m with the given candidate basis under impl and
// returns the solution plus the handoff outcome.
func warmSolve(t *testing.T, m *Model, b *Basis, impl TableauImpl) (*Solution, *WarmStart) {
	t.Helper()
	ws := &WarmStart{Basis: b}
	ctx := WithWarmBasis(WithTableau(context.Background(), impl), ws)
	sol, err := m.SolveCtx(ctx)
	if err != nil {
		t.Fatalf("warm solve (%s): %v", impl, err)
	}
	if err := m.Verify(sol.Values()); err != nil {
		t.Fatalf("warm solution fails verification: %v", err)
	}
	return sol, ws
}

// scaledModel rebuilds the degenerate phase-1 test program with every
// constraint coefficient scaled by f — same structure (fingerprint), new
// numbers.
func degenerateProgram(f rat.Rat) *Model {
	m := NewMaximize()
	x := m.Var("x")
	y := m.Var("y")
	z := m.Var("z")
	m.SetObjective(x, rat.Int(1))
	m.SetObjective(y, rat.Int(2))
	m.SetObjective(z, rat.Int(3))
	s := func(n int64) rat.Rat { return rat.Mul(rat.Int(n), f) }
	m.AddConstraint("e1", NewExpr().Plus(s(1), x).Plus(s(1), y).Plus(s(1), z), Eq, rat.Int(4))
	m.AddConstraint("e2", NewExpr().Plus(s(1), x).Plus(s(1), y).Plus(s(1), z), Eq, rat.Int(4))
	m.AddConstraint("e3", NewExpr().Plus(s(2), x).Plus(s(2), y).Plus(s(2), z), Eq, rat.Int(8))
	m.AddConstraint("g1", NewExpr().Plus(s(1), x).Plus(s(1), y), Geq, rat.One())
	m.AddConstraint("g2", NewExpr().Plus(s(1), z), Geq, rat.One())
	return m
}

// TestWarmResolveSkipsPhase1 pins the headline warm-start contract: a
// model re-solved from its own certified basis spends no iterate pivots
// in phase 1 (only the deterministic basis rebuild), reports WarmUsed,
// and reproduces the cold optimum bit for bit — under both tableaus.
func TestWarmResolveSkipsPhase1(t *testing.T) {
	for _, impl := range []TableauImpl{TableauSparse, TableauDense} {
		cold, err := degenerateProgram(rat.One()).SolveCtx(WithTableau(context.Background(), impl))
		if err != nil {
			t.Fatalf("cold solve: %v", err)
		}
		b := cold.Basis()
		if b == nil {
			t.Fatal("cold solution minted no basis")
		}
		m := degenerateProgram(rat.One())
		warm, ws := warmSolve(t, m, b, impl)
		if !ws.Used || !warm.WarmUsed {
			t.Fatalf("warm basis not used (%s): reject %q", impl, ws.RejectReason)
		}
		if !rat.Eq(warm.Objective, cold.Objective) {
			t.Fatalf("warm objective %s != cold %s", warm.Objective.RatString(), cold.Objective.RatString())
		}
		wv, cv := warm.Values(), cold.Values()
		for i := range wv {
			if !rat.Eq(wv[i], cv[i]) {
				t.Fatalf("value %d: warm %s, cold %s", i, wv[i].RatString(), cv[i].RatString())
			}
		}
		if warm.Phase1Iterations > cold.Phase1Iterations {
			t.Fatalf("warm phase-1 pivots %d above cold %d (%s)",
				warm.Phase1Iterations, cold.Phase1Iterations, impl)
		}
		if p2 := warm.Iterations - warm.Phase1Iterations; p2 != 0 {
			t.Fatalf("re-solve from the optimal basis spent %d phase-2 pivots (%s)", p2, impl)
		}
		if ws.Final == nil {
			t.Fatal("warm solve minted no final basis")
		}
	}
}

// TestWarmPerturbedEquivalence is the dense-vs-sparse warm property test:
// over random LPs, mint a basis from a cold solve, perturb every
// coefficient multiplicatively (structure preserved), and re-solve warm
// under both tableaus. The two implementations must take bit-identical
// pivot sequences (same counts, same values), and the warm optimum must
// equal the perturbed model's cold optimum exactly.
func TestWarmPerturbedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	build := func(seed int64, scale rat.Rat) *Model {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		mr := 2 + r.Intn(4)
		m := NewMaximize()
		vars := make([]Var, n)
		for j := 0; j < n; j++ {
			vars[j] = m.Var(fmt.Sprintf("x%d", j))
			m.SetObjective(vars[j], rat.Mul(rat.Int(int64(r.Intn(11)-5)), scale))
		}
		for i := 0; i < mr; i++ {
			e := NewExpr()
			for j := 0; j < n; j++ {
				c := int64(r.Intn(9) - 3)
				if c == 0 {
					continue
				}
				e = e.Plus(rat.Mul(rat.Int(c), scale), vars[j])
			}
			sense := []Sense{Leq, Geq, Eq}[r.Intn(3)]
			if len(e) == 0 {
				continue
			}
			m.AddConstraint(fmt.Sprintf("c%d", i), e, sense, rat.Int(int64(r.Intn(15))))
		}
		for j := 0; j < n; j++ {
			m.SetUpper(vars[j], rat.Int(int64(10+r.Intn(10))))
		}
		return m
	}
	warmUses := 0
	for trial := 0; trial < 60; trial++ {
		seed := rng.Int63()
		cold, err := build(seed, rat.One()).Solve()
		if err != nil {
			continue
		}
		b := cold.Basis()
		perturbed := build(seed, rat.New(21, 20))
		pcold, err := perturbed.SolveCtx(context.Background())
		if err != nil {
			// The perturbation flipped the model infeasible/unbounded; the
			// warm path must agree on the failure.
			if _, werr := build(seed, rat.New(21, 20)).SolveCtx(
				WithWarmBasis(context.Background(), &WarmStart{Basis: b})); werr != err {
				t.Fatalf("trial %d: warm err %v, cold err %v", trial, werr, err)
			}
			continue
		}
		sparse, wsS := warmSolve(t, build(seed, rat.New(21, 20)), b, TableauSparse)
		dense, wsD := warmSolve(t, build(seed, rat.New(21, 20)), b, TableauDense)
		if wsS.Used != wsD.Used || wsS.RejectReason != wsD.RejectReason {
			t.Fatalf("trial %d: warm outcome diverged: sparse (%v,%q) dense (%v,%q)",
				trial, wsS.Used, wsS.RejectReason, wsD.Used, wsD.RejectReason)
		}
		if !rat.Eq(sparse.Objective, dense.Objective) {
			t.Fatalf("trial %d: sparse %s, dense %s", trial,
				sparse.Objective.RatString(), dense.Objective.RatString())
		}
		sv, dv := sparse.Values(), dense.Values()
		for i := range sv {
			if !rat.Eq(sv[i], dv[i]) {
				t.Fatalf("trial %d value %d: sparse %s, dense %s", trial, i,
					sv[i].RatString(), dv[i].RatString())
			}
		}
		if sparse.Iterations != dense.Iterations || sparse.Phase1Iterations != dense.Phase1Iterations {
			t.Fatalf("trial %d: pivots sparse (%d,%d), dense (%d,%d)", trial,
				sparse.Iterations, sparse.Phase1Iterations, dense.Iterations, dense.Phase1Iterations)
		}
		if !rat.Eq(sparse.Objective, pcold.Objective) {
			t.Fatalf("trial %d: warm optimum %s != cold optimum %s", trial,
				sparse.Objective.RatString(), pcold.Objective.RatString())
		}
		if wsS.Used {
			warmUses++
		}
	}
	if warmUses == 0 {
		t.Fatal("no trial exercised the warm-used path")
	}
}

// TestWarmFingerprintMismatch pins the rejection path: a basis minted
// from a structurally different model is declined with
// WarmRejectFingerprint and the solve degrades to the cold result.
func TestWarmFingerprintMismatch(t *testing.T) {
	donor := NewMaximize()
	x := donor.Var("x")
	donor.SetObjective(x, rat.One())
	donor.AddConstraint("c", NewExpr().Plus1(x), Leq, rat.Int(3))
	dsol, err := donor.Solve()
	if err != nil {
		t.Fatal(err)
	}
	m := degenerateProgram(rat.One())
	warm, ws := warmSolve(t, m, dsol.Basis(), TableauSparse)
	if ws.Used {
		t.Fatal("structurally foreign basis was accepted")
	}
	if ws.RejectReason != WarmRejectFingerprint || warm.WarmRejectReason != WarmRejectFingerprint {
		t.Fatalf("reject reason %q / %q, want %q", ws.RejectReason, warm.WarmRejectReason, WarmRejectFingerprint)
	}
	cold, err := degenerateProgram(rat.One()).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !rat.Eq(warm.Objective, cold.Objective) || warm.Iterations != cold.Iterations {
		t.Fatalf("rejected warm solve diverged from cold: obj %s vs %s, pivots %d vs %d",
			warm.Objective.RatString(), cold.Objective.RatString(), warm.Iterations, cold.Iterations)
	}
	if ws.Final == nil {
		t.Fatal("rejected solve should still mint a final basis for the cache")
	}
}

// TestWarmInfeasibleBasisFallsBack drives the seeded-fallback path: the
// warm basis matches structurally but is not primal-feasible for the new
// right-hand side, so the solve reports WarmRejectInfeasible and still
// lands on the cold optimum under both tableaus.
func TestWarmInfeasibleBasisFallsBack(t *testing.T) {
	// max x s.t. x + y = 5, y ≤ 3, x ≤ B. At B=10 the optimal basis is
	// {x, s_y, s_x} with x = 5. Re-priced for B=4 the same basis gives
	// s_x = 4 − 5 = −1: structurally identical, primal-infeasible.
	build := func(bound int64) *Model {
		m := NewMaximize()
		x := m.Var("x")
		y := m.Var("y")
		m.SetObjective(x, rat.One())
		m.AddConstraint("sum", NewExpr().Plus1(x).Plus1(y), Eq, rat.Int(5))
		m.AddConstraint("ycap", NewExpr().Plus1(y), Leq, rat.Int(3))
		m.AddConstraint("xcap", NewExpr().Plus1(x), Leq, rat.Int(bound))
		return m
	}
	sol5, err := build(10).Solve()
	if err != nil {
		t.Fatal(err)
	}
	b := sol5.Basis()
	for _, impl := range []TableauImpl{TableauSparse, TableauDense} {
		cold, err := build(4).SolveCtx(WithTableau(context.Background(), impl))
		if err != nil {
			t.Fatal(err)
		}
		warm, ws := warmSolve(t, build(4), b, impl)
		if ws.Used {
			// The optimal basis of B=5 keeps the cap slack nonbasic at x=B;
			// with B=2 that stays feasible only if the basis never priced
			// the slack — guard the test's premise.
			t.Fatalf("expected infeasible warm basis to be rejected (%s)", impl)
		}
		if ws.RejectReason != WarmRejectInfeasible {
			t.Fatalf("reject reason %q, want %q (%s)", ws.RejectReason, WarmRejectInfeasible, impl)
		}
		if !rat.Eq(warm.Objective, cold.Objective) {
			t.Fatalf("fallback objective %s != cold %s (%s)",
				warm.Objective.RatString(), cold.Objective.RatString(), impl)
		}
	}
}

// TestDropRowRegression pins the dropRow splice fix end to end: a solve
// whose phase 1 drops redundant rows, whose certified basis then drives a
// warm re-solve that pivots again on the shrunken tableau — twice, so a
// stale aliased row or scratch buffer from the first pass would corrupt
// the second.
func TestDropRowRegression(t *testing.T) {
	for _, impl := range []TableauImpl{TableauSparse, TableauDense} {
		first, err := degenerateProgram(rat.One()).SolveCtx(WithTableau(context.Background(), impl))
		if err != nil {
			t.Fatalf("first solve (%s): %v", impl, err)
		}
		if !rat.Eq(first.Objective, rat.Int(11)) {
			t.Fatalf("objective = %s, want 11", first.Objective.RatString())
		}
		b := first.Basis()
		if b.Size() >= 5 {
			t.Fatalf("expected dropped redundant rows, basis size %d", b.Size())
		}
		// Warm re-solve with perturbed coefficients: rebuild pivots run on
		// a tableau that must be internally consistent after the drops.
		second, ws := warmSolve(t, degenerateProgram(rat.New(10, 9)), b, impl)
		if !ws.Used {
			t.Fatalf("warm basis rejected after drop (%s): %q", impl, ws.RejectReason)
		}
		third, _ := warmSolve(t, degenerateProgram(rat.New(10, 9)), second.Basis(), impl)
		if !rat.Eq(second.Objective, third.Objective) {
			t.Fatalf("re-pivot after drop diverged: %s vs %s",
				second.Objective.RatString(), third.Objective.RatString())
		}
	}
}

// TestBasisCacheLRU pins the cache's bounded deterministic behavior.
func TestBasisCacheLRU(t *testing.T) {
	sol, err := degenerateProgram(rat.One()).Solve()
	if err != nil {
		t.Fatal(err)
	}
	b := sol.Basis()
	c := NewBasisCache(2)
	c.Put("a", b)
	c.Put("b", b)
	if c.Get("a") == nil {
		t.Fatal("a evicted under capacity")
	}
	c.Put("c", b) // evicts b (a was refreshed)
	if c.Get("b") != nil {
		t.Fatal("lru entry not evicted")
	}
	if c.Get("a") == nil || c.Get("c") == nil {
		t.Fatal("resident entries missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	var nilCache *BasisCache
	nilCache.Put("x", b)
	if nilCache.Get("x") != nil || nilCache.Len() != 0 {
		t.Fatal("nil cache must be inert")
	}
	zero := NewBasisCache(0)
	zero.Put("x", b)
	if zero.Len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

// TestWarmHandoffConsumedOnce pins the one-solve-per-handoff contract.
func TestWarmHandoffConsumedOnce(t *testing.T) {
	sol, err := degenerateProgram(rat.One()).Solve()
	if err != nil {
		t.Fatal(err)
	}
	ws := &WarmStart{Basis: sol.Basis()}
	ctx := WithWarmBasis(context.Background(), ws)
	first, err := degenerateProgram(rat.One()).SolveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !first.WarmUsed {
		t.Fatal("first solve did not consume the handoff")
	}
	second, err := degenerateProgram(rat.One()).SolveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if second.WarmUsed {
		t.Fatal("second solve reused a consumed handoff")
	}
}
