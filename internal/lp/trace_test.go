package lp

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/rat"
)

// tracedModel builds a model that exercises both phases: the Geq rows
// need artificials (phase 1 plus drive-out), the Leq rows keep phase 2
// honest.
func tracedModel() *Model {
	m := NewMaximize()
	x, y, z := m.Var("x"), m.Var("y"), m.Var("z")
	m.SetObjective(x, rat.Int(3))
	m.SetObjective(y, rat.Int(2))
	m.SetObjective(z, rat.Int(1))
	m.AddConstraint("cap", NewExpr().Plus1(x).Plus1(y).Plus1(z), Leq, rat.Int(10))
	m.AddConstraint("floor", NewExpr().Plus1(x).Plus1(y), Geq, rat.Int(3))
	m.AddConstraint("tie", NewExpr().Plus1(y).Plus(rat.Int(2), z), Eq, rat.Int(4))
	return m
}

// solveTraced solves the model with a tracer installed and returns the
// solution plus the finished trace.
func solveTraced(t *testing.T, m *Model, impl TableauImpl) (*Solution, *obs.Trace) {
	t.Helper()
	tracer := obs.NewTracer("solve")
	ctx := obs.WithTracer(WithTableau(context.Background(), impl), tracer)
	sol, err := m.SolveCtx(ctx)
	if err != nil {
		t.Fatalf("traced solve: %v", err)
	}
	return sol, tracer.Finish()
}

// findSpan returns the unique span with the given name, or nil.
func findSpan(root *obs.Span, name string) *obs.Span {
	var found *obs.Span
	root.Walk(func(s *obs.Span) {
		if s.Name == name {
			found = s
		}
	})
	return found
}

// TestTracedPhaseSpansReconcile pins the reconciliation invariant the CI
// bench-smoke job asserts end to end: the lp.phase1 span's "pivots"
// attribute equals Solution.Phase1Iterations (artificial drive-out
// included), the two phase spans sum to Solution.Iterations, and the
// per-rule splits account for every pivot the iterate loop observed.
func TestTracedPhaseSpansReconcile(t *testing.T) {
	for _, impl := range []TableauImpl{TableauSparse, TableauDense} {
		t.Run(impl.String(), func(t *testing.T) {
			sol, trace := solveTraced(t, tracedModel(), impl)

			rows := findSpan(trace.Root, "lp.rows")
			if rows == nil {
				t.Fatal("no lp.rows span")
			}
			if rows.Attrs["artificials"].(int) == 0 {
				t.Fatal("model must need artificials to exercise phase 1")
			}
			if rows.Attrs["nonzeros"].(int) <= 0 {
				t.Fatalf("lp.rows nonzeros = %v", rows.Attrs["nonzeros"])
			}

			p1 := findSpan(trace.Root, "lp.phase1")
			p2 := findSpan(trace.Root, "lp.phase2")
			if p1 == nil || p2 == nil {
				t.Fatal("missing phase spans")
			}
			p1Pivots := p1.Attrs["pivots"].(int)
			p2Pivots := p2.Attrs["pivots"].(int)
			if p1Pivots != sol.Phase1Iterations {
				t.Errorf("phase1 span pivots %d != Phase1Iterations %d", p1Pivots, sol.Phase1Iterations)
			}
			if p1Pivots+p2Pivots != sol.Iterations {
				t.Errorf("phase pivots %d+%d != Iterations %d", p1Pivots, p2Pivots, sol.Iterations)
			}
			// The rule split covers exactly the pivots the iterate loop saw
			// (drive-out pivots happen outside the loop and outside the split).
			for _, s := range []*obs.Span{p1, p2} {
				loop := s.Attrs["pivots"].(int) - s.Attrs["driveout_pivots"].(int)
				if got := s.Attrs["dantzig_pivots"].(int) + s.Attrs["bland_pivots"].(int); got != loop {
					t.Errorf("%s rule split %d != loop pivots %d", s.Name, got, loop)
				}
				if s.Attrs["driveout_pivots"].(int) < 0 {
					t.Errorf("%s negative drive-out", s.Name)
				}
				if len(s.Attrs["trajectory"].([]obs.TableauSample)) == 0 {
					t.Errorf("%s has no trajectory samples", s.Name)
				}
				if len(s.Attrs["objective_waypoints"].([]obs.Waypoint)) == 0 {
					t.Errorf("%s has no objective waypoints", s.Name)
				}
			}
			if p2.Attrs["driveout_pivots"].(int) != 0 {
				t.Errorf("phase 2 cannot have drive-out pivots: %v", p2.Attrs["driveout_pivots"])
			}
			// The phase-2 closing objective is the optimum (the model
			// maximizes, so the tableau objective is the solution objective).
			if got := p2.Attrs["objective"].(string); got != sol.Objective.RatString() {
				t.Errorf("phase 2 objective attr %s != optimum %s", got, sol.Objective.RatString())
			}
		})
	}
}

// TestTracedDenseSparseIdenticalTrace pins that the dense and sparse
// tableaus execute the same pivot sequence through identical tableau
// states: their timing-stripped traces — pivot counts, rule splits,
// nonzero trajectories, objective waypoints — serialize byte-identically.
func TestTracedDenseSparseIdenticalTrace(t *testing.T) {
	_, sparse := solveTraced(t, tracedModel(), TableauSparse)
	_, dense := solveTraced(t, tracedModel(), TableauDense)
	a, err := json.Marshal(sparse.WithoutTiming())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(dense.WithoutTiming())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("dense and sparse traces differ:\nsparse: %s\ndense:  %s", a, b)
	}
}

// TestNoTracerPivotLoopAllocationFree pins the off switch: with no
// tracer in the context, span creation, recorder construction and every
// nil-receiver observation allocate nothing — the untraced pivot loop
// pays one pointer comparison per pivot (see iterate).
func TestNoTracerPivotLoopAllocationFree(t *testing.T) {
	ctx := context.Background()
	if _, span := obs.StartSpan(ctx, "lp.phase2"); span != nil {
		t.Fatal("StartSpan without a tracer must return a nil span")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, span := obs.StartSpan(ctx, "lp.phase2")
		rec := newPivotRecorder(span, 64)
		span.SetAttr("pivots", 0)
		rec.finish(span, nil, 0)
		span.End()
		_ = ctx2
	})
	if allocs != 0 {
		t.Fatalf("untraced instrumentation path allocates %.1f times per run, want 0", allocs)
	}
}

// BenchmarkSolveUntraced and BenchmarkSolveTraced bound the tracing
// overhead on a pivot-heavy solve (Klee–Minty visits exponentially many
// vertices, so per-pivot cost dominates).
func BenchmarkSolveUntraced(b *testing.B) {
	m, _ := kleeMinty(8)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveCtx(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveTraced(b *testing.B) {
	m, _ := kleeMinty(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracer := obs.NewTracer("solve")
		ctx := obs.WithTracer(context.Background(), tracer)
		if _, err := m.SolveCtx(ctx); err != nil {
			b.Fatal(err)
		}
		tracer.Finish()
	}
}
