package lp

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/rat"
)

func mustSolve(t *testing.T, m *Model) *Solution {
	t.Helper()
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := m.Verify(sol.Values()); err != nil {
		t.Fatalf("solution fails verification: %v", err)
	}
	if got := m.EvalObjective(sol.Values()); !rat.Eq(got, sol.Objective) {
		t.Fatalf("objective mismatch: reported %s, recomputed %s",
			sol.Objective.RatString(), got.RatString())
	}
	return sol
}

func TestSolveTextbookMax(t *testing.T) {
	// max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  → z = 36 at (2,6).
	m := NewMaximize()
	x := m.Var("x")
	y := m.Var("y")
	m.SetObjective(x, rat.Int(3))
	m.SetObjective(y, rat.Int(5))
	m.AddConstraint("c1", NewExpr().Plus1(x), Leq, rat.Int(4))
	m.AddConstraint("c2", NewExpr().Plus(rat.Int(2), y), Leq, rat.Int(12))
	m.AddConstraint("c3", NewExpr().Plus(rat.Int(3), x).Plus(rat.Int(2), y), Leq, rat.Int(18))
	sol := mustSolve(t, m)
	if !rat.Eq(sol.Objective, rat.Int(36)) {
		t.Errorf("objective = %s, want 36", sol.Objective.RatString())
	}
	if !rat.Eq(sol.Value(x), rat.Int(2)) || !rat.Eq(sol.Value(y), rat.Int(6)) {
		t.Errorf("solution = (%s, %s), want (2, 6)", sol.Value(x).RatString(), sol.Value(y).RatString())
	}
}

func TestSolveMinimizeWithGeq(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3 → x=7, y=3, z = 23.
	m := NewMinimize()
	x := m.Var("x")
	y := m.Var("y")
	m.SetObjective(x, rat.Int(2))
	m.SetObjective(y, rat.Int(3))
	m.AddConstraint("sum", NewExpr().Plus1(x).Plus1(y), Geq, rat.Int(10))
	m.AddConstraint("xmin", NewExpr().Plus1(x), Geq, rat.Int(2))
	m.AddConstraint("ymin", NewExpr().Plus1(y), Geq, rat.Int(3))
	sol := mustSolve(t, m)
	if !rat.Eq(sol.Objective, rat.Int(23)) {
		t.Errorf("objective = %s, want 23", sol.Objective.RatString())
	}
}

func TestSolveEqualityConstraints(t *testing.T) {
	// max x + y s.t. x + 2y = 4, 3x + y = 7 → x=2, y=1, z=3.
	m := NewMaximize()
	x := m.Var("x")
	y := m.Var("y")
	m.SetObjective(x, rat.One())
	m.SetObjective(y, rat.One())
	m.AddConstraint("e1", NewExpr().Plus1(x).Plus(rat.Int(2), y), Eq, rat.Int(4))
	m.AddConstraint("e2", NewExpr().Plus(rat.Int(3), x).Plus1(y), Eq, rat.Int(7))
	sol := mustSolve(t, m)
	if !rat.Eq(sol.Value(x), rat.Int(2)) || !rat.Eq(sol.Value(y), rat.Int(1)) {
		t.Errorf("solution = (%s, %s), want (2, 1)", sol.Value(x).RatString(), sol.Value(y).RatString())
	}
}

func TestSolveRationalOptimum(t *testing.T) {
	// max x s.t. 3x ≤ 1 → x = 1/3. Exactness check.
	m := NewMaximize()
	x := m.Var("x")
	m.SetObjective(x, rat.One())
	m.AddConstraint("c", NewExpr().Plus(rat.Int(3), x), Leq, rat.One())
	sol := mustSolve(t, m)
	if !rat.Eq(sol.Value(x), rat.New(1, 3)) {
		t.Errorf("x = %s, want exactly 1/3", sol.Value(x).RatString())
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := NewMaximize()
	x := m.Var("x")
	m.SetObjective(x, rat.One())
	m.AddConstraint("lo", NewExpr().Plus1(x), Geq, rat.Int(5))
	m.AddConstraint("hi", NewExpr().Plus1(x), Leq, rat.Int(3))
	if _, err := m.Solve(); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	m := NewMaximize()
	x := m.Var("x")
	y := m.Var("y")
	m.SetObjective(x, rat.One())
	// y is constrained, x is free to grow.
	m.AddConstraint("c", NewExpr().Plus1(y), Leq, rat.Int(3))
	if _, err := m.Solve(); err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveNoConstraintsZeroObjective(t *testing.T) {
	// max -x over x ≥ 0 → x = 0, z = 0.
	m := NewMaximize()
	x := m.Var("x")
	m.SetObjective(x, rat.Int(-1))
	sol := mustSolve(t, m)
	if !rat.IsZero(sol.Objective) || !rat.IsZero(sol.Value(x)) {
		t.Errorf("got z=%s x=%s, want 0, 0", sol.Objective.RatString(), sol.Value(x).RatString())
	}
}

func TestSolveUpperBounds(t *testing.T) {
	m := NewMaximize()
	x := m.Var("x")
	y := m.Var("y")
	m.SetObjective(x, rat.One())
	m.SetObjective(y, rat.One())
	m.SetUpper(x, rat.New(1, 2))
	m.SetUpper(y, rat.New(3, 4))
	sol := mustSolve(t, m)
	if !rat.Eq(sol.Objective, rat.New(5, 4)) {
		t.Errorf("objective = %s, want 5/4", sol.Objective.RatString())
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// x - y ≤ -2 with max x, x ≤ 5 → y ≥ x+2, y free to grow? y has no
	// objective; feasible with x=5, y=7.
	m := NewMaximize()
	x := m.Var("x")
	y := m.Var("y")
	m.SetObjective(x, rat.One())
	m.AddConstraint("c1", NewExpr().Plus1(x).Minus(rat.One(), y), Leq, rat.Int(-2))
	m.AddConstraint("c2", NewExpr().Plus1(x), Leq, rat.Int(5))
	m.AddConstraint("c3", NewExpr().Plus1(y), Leq, rat.Int(100))
	sol := mustSolve(t, m)
	if !rat.Eq(sol.Objective, rat.Int(5)) {
		t.Errorf("objective = %s, want 5", sol.Objective.RatString())
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classic degenerate LP (multiple constraints active at the
	// optimum). Beale's cycling example, which defeats naive Dantzig
	// without anti-cycling:
	//   min -0.75x4 + 150x5 - 0.02x6 + 6x7
	//   s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 ≤ 0
	//        0.5x4 - 90x5 - 0.02x6 + 3x7 ≤ 0
	//        x6 ≤ 1
	// Optimum: z = -0.05 (x6 = 1, x4 = x5 = x7 chosen accordingly).
	m := NewMinimize()
	x4 := m.Var("x4")
	x5 := m.Var("x5")
	x6 := m.Var("x6")
	x7 := m.Var("x7")
	m.SetObjective(x4, rat.New(-3, 4))
	m.SetObjective(x5, rat.Int(150))
	m.SetObjective(x6, rat.New(-1, 50))
	m.SetObjective(x7, rat.Int(6))
	m.AddConstraint("r1",
		NewExpr().Plus(rat.New(1, 4), x4).Minus(rat.Int(60), x5).Minus(rat.New(1, 25), x6).Plus(rat.Int(9), x7),
		Leq, rat.Zero())
	m.AddConstraint("r2",
		NewExpr().Plus(rat.New(1, 2), x4).Minus(rat.Int(90), x5).Minus(rat.New(1, 50), x6).Plus(rat.Int(3), x7),
		Leq, rat.Zero())
	m.AddConstraint("r3", NewExpr().Plus1(x6), Leq, rat.One())
	sol := mustSolve(t, m)
	if !rat.Eq(sol.Objective, rat.New(-1, 20)) {
		t.Errorf("objective = %s, want -1/20", sol.Objective.RatString())
	}
}

func TestPhase2ResetsBlandRule(t *testing.T) {
	// Regression: tableau.bland used to leak from phase 1 into phase 2 —
	// once a degenerate phase 1 exhausted the pivot budget, the entire
	// phase-2 solve was stuck on Bland's slow lowest-index rule. Shrinking
	// the budget to zero makes any phase 1 "long": its first pivot already
	// exceeds the budget, so phase 1 ends with bland=true.
	//
	// max x1 + 2x2 + 3x3  s.t.  x1 + x2 + x3 = 1  → z = 3 at x3 = 1.
	// Phase 1 (one pivot, enters x1) trips the zero budget. A Dantzig
	// phase 2 then pivots straight to x3 (most negative reduced cost):
	// 2 pivots total. A leaked Bland phase 2 walks x2 then x3: 3 pivots.
	m := NewMaximize()
	m.setBlandAfter(0)
	x1 := m.Var("x1")
	x2 := m.Var("x2")
	x3 := m.Var("x3")
	m.SetObjective(x1, rat.Int(1))
	m.SetObjective(x2, rat.Int(2))
	m.SetObjective(x3, rat.Int(3))
	m.AddConstraint("sum", NewExpr().Plus1(x1).Plus1(x2).Plus1(x3), Eq, rat.One())
	sol := mustSolve(t, m)
	if !rat.Eq(sol.Objective, rat.Int(3)) {
		t.Fatalf("objective = %s, want 3", sol.Objective.RatString())
	}
	if sol.Iterations > 2 {
		t.Errorf("solve took %d pivots, want ≤ 2 (phase 2 should restart on Dantzig's rule)", sol.Iterations)
	}
}

func TestSolveRedundantEqualities(t *testing.T) {
	// Duplicated equality rows exercise the redundant-row drop in the
	// phase-1 cleanup.
	m := NewMaximize()
	x := m.Var("x")
	y := m.Var("y")
	m.SetObjective(x, rat.One())
	m.AddConstraint("e1", NewExpr().Plus1(x).Plus1(y), Eq, rat.Int(4))
	m.AddConstraint("e2", NewExpr().Plus1(x).Plus1(y), Eq, rat.Int(4))
	m.AddConstraint("e3", NewExpr().Plus(rat.Int(2), x).Plus(rat.Int(2), y), Eq, rat.Int(8))
	sol := mustSolve(t, m)
	if !rat.Eq(sol.Objective, rat.Int(4)) {
		t.Errorf("objective = %s, want 4", sol.Objective.RatString())
	}
}

func TestSolveDuplicateTermsSummed(t *testing.T) {
	// x + x ≤ 4 must behave as 2x ≤ 4.
	m := NewMaximize()
	x := m.Var("x")
	m.SetObjective(x, rat.One())
	m.AddConstraint("c", NewExpr().Plus1(x).Plus1(x), Leq, rat.Int(4))
	sol := mustSolve(t, m)
	if !rat.Eq(sol.Value(x), rat.Int(2)) {
		t.Errorf("x = %s, want 2", sol.Value(x).RatString())
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	m := NewMaximize()
	x := m.Var("x")
	m.SetUpper(x, rat.Int(2))
	m.AddConstraint("c", NewExpr().Plus1(x), Leq, rat.One())

	if err := m.Verify([]rat.Rat{rat.Int(-1)}); err == nil {
		t.Error("Verify accepted a negative value")
	}
	if err := m.Verify([]rat.Rat{rat.Int(3)}); err == nil {
		t.Error("Verify accepted a bound violation")
	}
	if err := m.Verify([]rat.Rat{rat.New(3, 2)}); err == nil {
		t.Error("Verify accepted a constraint violation")
	}
	if err := m.Verify([]rat.Rat{rat.One()}); err != nil {
		t.Errorf("Verify rejected a feasible point: %v", err)
	}
	if err := m.Verify(nil); err == nil {
		t.Error("Verify accepted wrong-length values")
	}
}

func TestDuplicateVariablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Var did not panic")
		}
	}()
	m := NewMaximize()
	m.Var("x")
	m.Var("x")
}

func TestSolutionAccessors(t *testing.T) {
	m := NewMaximize()
	x := m.Var("x")
	m.SetObjective(x, rat.One())
	m.AddConstraint("c", NewExpr().Plus1(x), Leq, rat.Int(7))
	sol := mustSolve(t, m)
	if v := sol.ValueByName("x"); v == nil || !rat.Eq(v, rat.Int(7)) {
		t.Errorf("ValueByName(x) = %v, want 7", v)
	}
	if v := sol.ValueByName("nope"); v != nil {
		t.Errorf("ValueByName(nope) = %v, want nil", v)
	}
	nz := sol.NonZero()
	if len(nz) != 1 || nz[0].Name != "x" {
		t.Errorf("NonZero = %v", nz)
	}
	if sol.String() == "" {
		t.Error("String is empty")
	}
}

// eqn is one candidate tight equation for the brute-force oracle.
type eqn struct {
	coef []rat.Rat
	rhs  rat.Rat
}

// bruteForceMax enumerates all basic solutions of {Ax ≤ b, x ≥ 0} for tiny
// systems by trying every subset of tight constraints, and returns the best
// feasible objective, or nil if none. Exponential, test-only oracle.
func bruteForceMax(obj []rat.Rat, a [][]rat.Rat, b []rat.Rat) rat.Rat {
	n := len(obj)
	mRows := len(a)
	// Candidate equations: each constraint tight, or each variable at 0.
	var eqns []eqn
	for i := 0; i < mRows; i++ {
		eqns = append(eqns, eqn{a[i], b[i]})
	}
	for v := 0; v < n; v++ {
		coef := make([]rat.Rat, n)
		for j := range coef {
			coef[j] = rat.Zero()
		}
		coef[v] = rat.One()
		eqns = append(eqns, eqn{coef, rat.Zero()})
	}
	feasible := func(x []rat.Rat) bool {
		for _, xi := range x {
			if xi.Sign() < 0 {
				return false
			}
		}
		for i := 0; i < mRows; i++ {
			lhs := rat.Zero()
			for j := 0; j < n; j++ {
				lhs.Add(lhs, rat.Mul(a[i][j], x[j]))
			}
			if lhs.Cmp(b[i]) > 0 {
				return false
			}
		}
		return true
	}
	var best rat.Rat
	// Choose n equations out of len(eqns) (n ≤ 3 in tests).
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) == n {
			x := solveSquare(eqns, chosen, n)
			if x == nil || !feasible(x) {
				return
			}
			z := rat.Zero()
			for j := 0; j < n; j++ {
				z.Add(z, rat.Mul(obj[j], x[j]))
			}
			if best == nil || z.Cmp(best) > 0 {
				best = z
			}
			return
		}
		for i := start; i < len(eqns); i++ {
			rec(i+1, append(chosen, i))
		}
	}
	rec(0, nil)
	return best
}

// solveSquare solves the n×n system given by the chosen equations with
// Gaussian elimination over rationals; returns nil if singular.
func solveSquare(eqns []eqn, chosen []int, n int) []rat.Rat {
	// Build augmented matrix.
	aug := make([][]rat.Rat, n)
	for i, idx := range chosen {
		aug[i] = make([]rat.Rat, n+1)
		for j := 0; j < n; j++ {
			aug[i][j] = rat.Copy(eqns[idx].coef[j])
		}
		aug[i][n] = rat.Copy(eqns[idx].rhs)
	}
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if !rat.IsZero(aug[r][col]) {
				piv = r
				break
			}
		}
		if piv == -1 {
			return nil
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		inv := rat.Inv(aug[col][col])
		for j := col; j <= n; j++ {
			aug[col][j] = rat.Mul(aug[col][j], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || rat.IsZero(aug[r][col]) {
				continue
			}
			f := rat.Copy(aug[r][col])
			for j := col; j <= n; j++ {
				aug[r][j] = rat.Sub(aug[r][j], rat.Mul(f, aug[col][j]))
			}
		}
	}
	x := make([]rat.Rat, n)
	for i := 0; i < n; i++ {
		x[i] = aug[i][n]
	}
	return x
}

// TestSolveAgainstBruteForce cross-checks the simplex against exhaustive
// vertex enumeration on random small LPs with bounded feasible regions.
func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(2)  // 2..3 variables
		mr := 2 + rng.Intn(3) // 2..4 constraints
		obj := make([]rat.Rat, n)
		for j := range obj {
			obj[j] = rat.Int(int64(rng.Intn(11) - 5))
		}
		a := make([][]rat.Rat, mr)
		b := make([]rat.Rat, mr)
		for i := range a {
			a[i] = make([]rat.Rat, n)
			for j := range a[i] {
				a[i][j] = rat.Int(int64(rng.Intn(7) - 2))
			}
			b[i] = rat.Int(int64(rng.Intn(10) + 1))
		}
		// Bound the region so the LP is never unbounded.
		for j := 0; j < n; j++ {
			coef := make([]rat.Rat, n)
			for k := range coef {
				coef[k] = rat.Zero()
			}
			coef[j] = rat.One()
			a = append(a, coef)
			b = append(b, rat.Int(20))
		}

		model := NewMaximize()
		vars := make([]Var, n)
		for j := 0; j < n; j++ {
			vars[j] = model.Var(fmt.Sprintf("x%d", j))
			model.SetObjective(vars[j], obj[j])
		}
		for i := range a {
			e := NewExpr()
			for j := 0; j < n; j++ {
				e = e.Plus(a[i][j], vars[j])
			}
			model.AddConstraint(fmt.Sprintf("c%d", i), e, Leq, b[i])
		}
		sol, err := model.Solve()
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if err := model.Verify(sol.Values()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForceMax(obj, a, b)
		if want == nil {
			t.Fatalf("trial %d: brute force found no vertex but simplex succeeded", trial)
		}
		if !rat.Eq(sol.Objective, want) {
			t.Errorf("trial %d: simplex = %s, brute force = %s",
				trial, sol.Objective.RatString(), want.RatString())
		}
	}
}

func TestRowNormalize(t *testing.T) {
	r := &row{n: []*big.Int{big.NewInt(6), big.NewInt(-9), big.NewInt(0)}, d: big.NewInt(12)}
	r.normalize()
	if r.d.Int64() != 4 || r.n[0].Int64() != 2 || r.n[1].Int64() != -3 || r.n[2].Int64() != 0 {
		t.Errorf("normalize: got n=%v d=%v", r.n, r.d)
	}
}

func TestLargePipelineLPPerformance(t *testing.T) {
	// A flow-shaped LP similar in structure to the scatter programs:
	// maximize flow through a layered network. Not a benchmark, just a
	// guard that medium LPs (hundreds of vars) solve.
	const layers, width = 6, 5
	m := NewMaximize()
	// vars: f[l][i][j] flow from node i in layer l to node j in layer l+1
	type key struct{ l, i, j int }
	fv := map[key]Var{}
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				fv[key{l, i, j}] = m.Var(fmt.Sprintf("f_%d_%d_%d", l, i, j))
			}
		}
	}
	tp := m.Var("TP")
	m.SetObjective(tp, rat.One())
	// Capacity: each edge ≤ 1.
	for k, v := range fv {
		_ = k
		m.SetUpper(v, rat.One())
	}
	// Conservation at middle layers.
	for l := 1; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			e := NewExpr()
			for j := 0; j < width; j++ {
				e = e.Plus1(fv[key{l - 1, j, i}])
				e = e.Minus(rat.One(), fv[key{l, i, j}])
			}
			m.AddConstraint(fmt.Sprintf("cons_%d_%d", l, i), e, Eq, rat.Zero())
		}
	}
	// Source emits TP total.
	e := NewExpr()
	for i := 0; i < width; i++ {
		for j := 0; j < width; j++ {
			e = e.Plus1(fv[key{0, i, j}])
		}
	}
	e = e.Minus(rat.One(), tp)
	m.AddConstraint("src", e, Eq, rat.Zero())
	sol := mustSolve(t, m)
	// Max flow = width² edges on the first layer? No: bounded by 25 per
	// layer crossing; conservation forces equal layer flow, so 25.
	if !rat.Eq(sol.Objective, rat.Int(width*width)) {
		t.Errorf("objective = %s, want %d", sol.Objective.RatString(), width*width)
	}
}
