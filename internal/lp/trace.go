package lp

import (
	"repro/internal/obs"
)

// trajectoryEvery is K: the phase-local pivot stride at which the
// recorder samples the tableau trajectory and an objective waypoint.
// Sampling is structural (pivot ordinals, not wall clock), so the
// trajectory is identical run over run.
const trajectoryEvery = 64

// pivotRecorder accumulates the per-pivot events of one simplex phase
// for the solve trace: the Dantzig/Bland entering split, Bland
// activations, degenerate pivots (leaving row with zero rhs), the
// tableau nonzero/density trajectory and exact objective waypoints. A
// nil recorder is the off switch — iterate guards every observation
// behind one nil check, so an untraced solve stays allocation-free in
// the pivot loop.
type pivotRecorder struct {
	cols int // total tableau columns including rhs, for density

	pivots           int // pivots observed by the iterate loop this phase
	degenerate       int
	dantzig          int
	bland            int
	blandActivations int
	blandWasActive   bool

	samples   []obs.TableauSample
	waypoints []obs.Waypoint
}

// newPivotRecorder returns a recorder feeding the span, or nil when the
// span is nil (no tracer in the context).
func newPivotRecorder(span *obs.Span, cols int) *pivotRecorder {
	if span == nil {
		return nil
	}
	return &pivotRecorder{cols: cols}
}

// observe records one pivot about to happen: t's entering rule and the
// leaving row r's degeneracy, plus a trajectory sample every
// trajectoryEvery pivots (including the phase's initial state).
func (rec *pivotRecorder) observe(t tableau, r int) {
	if t.blandActive() {
		rec.bland++
		if !rec.blandWasActive {
			rec.blandWasActive = true
			rec.blandActivations++
		}
	} else {
		rec.dantzig++
	}
	if t.rowRHSSign(r) == 0 {
		rec.degenerate++
	}
	if rec.pivots%trajectoryEvery == 0 {
		rec.sample(t)
	}
	rec.pivots++
}

// sample appends one trajectory point and objective waypoint at the
// tableau's current (solve-global) pivot ordinal.
func (rec *pivotRecorder) sample(t tableau) {
	rec.samples = append(rec.samples,
		obs.NewTableauSample(t.pivotCount(), t.nRows(), rec.cols, t.nonzeros()))
	rec.waypoints = append(rec.waypoints,
		obs.Waypoint{Pivot: t.pivotCount(), Objective: t.objValue().RatString()})
}

// finish writes the phase's attributes onto its span. phasePivots is
// the phase's total pivot count by the driver's accounting — for phase
// 1 it includes the artificial drive-out pivots performed outside the
// iterate loop, so the span reconciles exactly with
// Solution.Phase1Iterations (and sweep's lp_phase1_pivots).
func (rec *pivotRecorder) finish(span *obs.Span, t tableau, phasePivots int) {
	if rec == nil {
		return
	}
	rec.sample(t) // final state: optimal objective, settled tableau
	span.SetAttr("pivots", phasePivots)
	span.SetAttr("driveout_pivots", phasePivots-rec.pivots)
	span.SetAttr("degenerate_pivots", rec.degenerate)
	span.SetAttr("dantzig_pivots", rec.dantzig)
	span.SetAttr("bland_pivots", rec.bland)
	span.SetAttr("bland_activations", rec.blandActivations)
	span.SetAttr("objective", t.objValue().RatString())
	span.SetAttr("trajectory", rec.samples)
	span.SetAttr("objective_waypoints", rec.waypoints)
}
