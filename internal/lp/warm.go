package lp

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"repro/internal/obs"
)

// Warm-start machinery: a solved LP's optimal basis is a reusable asset.
// When the same model structure re-arrives with perturbed coefficients
// (edge-cost jitter, capacity scaling — the steady-state re-solve after a
// platform drift), rebuilding the tableau directly in the previous optimal
// basis usually lands primal-feasible, phase 1 is skipped entirely, and
// phase 2 re-prices the objective from a near-optimal vertex. Everything
// stays exact: a warm start changes only the pivot path taken to the
// optimum, never the arithmetic, so warm and cold solves agree on the
// optimal objective bit for bit.
//
// The contract is intentionally narrow. A Basis can only be minted by
// Solution.Basis() — it is a snapshot of a basis the simplex actually
// certified — and it re-enters a solve only through WithWarmBasis. The
// basisflow analyzer enforces exactly this in the solver packages.

// Warm-start rejection reasons, recorded on WarmStart.RejectReason and in
// Report/metrics reject histograms. Stable strings: they are compared in
// tests and aggregated across sweeps.
const (
	// WarmRejectFingerprint marks a structural mismatch: the incoming
	// model's rows/columns differ from the ones the basis was minted for
	// (e.g. an edge was deleted, changing the LP's sparsity structure).
	WarmRejectFingerprint = "fingerprint_mismatch"
	// WarmRejectShape marks a basis whose column indices or row count
	// cannot fit the incoming tableau at all (defensive; a fingerprint
	// match makes this unreachable in practice).
	WarmRejectShape = "shape_mismatch"
	// WarmRejectSingular marks a basis that could not be pivoted back in:
	// some recorded basic column had no eligible pivot row left.
	WarmRejectSingular = "singular_basis"
	// WarmRejectInfeasible marks a structurally valid basis that is not
	// primal-feasible for the new right-hand side; the solve fell back to
	// a phase 1 seeded from the warm basis.
	WarmRejectInfeasible = "infeasible_basis"
)

// Basis is a snapshot of a certified simplex basis: the basic column per
// surviving tableau row, in row order, plus the structural fingerprint of
// the model it solved and the pivot counters of the originating solve
// (used to report lp_warm_pivots_saved). Values are immutable once
// minted; Solution.Basis is the only constructor.
type Basis struct {
	cols         []int
	fingerprint  string
	nCols        int
	originPhase1 int
	originTotal  int
}

// Size returns the number of basic columns in the snapshot.
func (b *Basis) Size() int { return len(b.cols) }

// Fingerprint returns the structural fingerprint of the model the basis
// was minted from. A warm start is attempted only when the incoming
// model's fingerprint matches exactly.
func (b *Basis) Fingerprint() string { return b.fingerprint }

// Basis snapshots the solution's certified basis for reuse by a later
// WithWarmBasis solve. Returns nil when the solution predates basis
// tracking (zero value).
func (s *Solution) Basis() *Basis {
	if s.basisCols == nil {
		return nil
	}
	return &Basis{
		cols:         append([]int(nil), s.basisCols...),
		fingerprint:  s.fingerprint,
		nCols:        s.nCols,
		originPhase1: s.Phase1Iterations,
		originTotal:  s.Iterations,
	}
}

// WarmStart is the per-solve warm-start handoff carried by the context:
// the caller supplies a candidate Basis, and the solve writes back what
// happened (used or rejected, pivots saved, and the freshly certified
// Final basis for the cache). One WarmStart serves exactly one
// Model.SolveCtx — the first solve under the context consumes it.
type WarmStart struct {
	// Basis is the candidate starting basis; nil means "no candidate yet,
	// but record the final basis" (the first solve of a chain).
	Basis *Basis

	// Used reports whether the solve actually started from Basis.
	Used bool
	// RejectReason is the WarmReject* constant explaining a declined
	// candidate; empty when Used, and empty when no candidate was offered.
	RejectReason string
	// PivotsSaved estimates the phase-1 pivots avoided relative to the
	// originating solve (origin phase-1 pivots minus this solve's, floored
	// at zero); meaningful only when Used.
	PivotsSaved int
	// Final is the certified basis of this solve, for the caller's cache.
	Final *Basis

	taken bool
}

// warmCtxKey carries the warm-start handoff through a context.
type warmCtxKey struct{}

// WithWarmBasis returns a context that offers ws to the next
// Model.SolveCtx beneath it. Like WithTableau, the decoration travels the
// whole solver stack; unlike it, the handoff is consumed by exactly one
// solve (steady-state solves run one LP per session solve, so the solve
// that consumes it is the solve the caller meant).
func WithWarmBasis(ctx context.Context, ws *WarmStart) context.Context {
	return context.WithValue(ctx, warmCtxKey{}, ws)
}

// warmTake claims the context's warm-start handoff, or nil when absent or
// already consumed by an earlier solve under the same context.
func warmTake(ctx context.Context) *WarmStart {
	ws, ok := ctx.Value(warmCtxKey{}).(*WarmStart)
	if !ok || ws == nil || ws.taken {
		return nil
	}
	ws.taken = true
	return ws
}

// structuralFingerprint hashes the model structure the simplex actually
// sees: the normalized row list (senses and sorted variable ids per row,
// after right-hand-side sign normalization) and the column layout counts.
// Coefficient and RHS *values* are deliberately excluded — a warm start
// is exactly the case of same structure, different numbers — while any
// structural drift (row added, variable gone, a sense flipped by an RHS
// sign change) changes the fingerprint and rejects the basis.
func structuralFingerprint(nStruct int, rows []normRow) string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	put := func(v int) {
		n := binary.PutVarint(buf[:], int64(v))
		h.Write(buf[:n])
	}
	put(nStruct)
	put(len(rows))
	for _, r := range rows {
		put(int(r.sense))
		put(len(r.terms))
		for _, t := range r.terms {
			put(int(t.Var))
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// warmAttempt is the solve-local state of one warm-start attempt.
type warmAttempt struct {
	ws     *WarmStart
	cols   []int  // validated candidate basis, nil when rejected up front
	reason string // WarmReject* when the candidate was rejected
}

// checkWarmBasis validates the context's warm candidate against the
// incoming model's fingerprint and tableau shape. A nil return means no
// handoff was present at all.
func checkWarmBasis(ws *WarmStart, fp string, nRows, nCols int, artCols []bool) *warmAttempt {
	if ws == nil {
		return nil
	}
	w := &warmAttempt{ws: ws}
	b := ws.Basis
	if b == nil {
		return w
	}
	if b.fingerprint != fp {
		w.reason = WarmRejectFingerprint
		return w
	}
	if b.nCols != nCols || len(b.cols) > nRows {
		w.reason = WarmRejectShape
		return w
	}
	for _, c := range b.cols {
		if c < 0 || c >= nCols || artCols[c] {
			w.reason = WarmRejectShape
			return w
		}
	}
	w.cols = b.cols
	return w
}

// rebuildWarmBasis pivots the candidate basic columns into a freshly
// assembled tableau (Gauss-Jordan, no ratio test): for each wanted column
// not yet basic, the first row — ascending, deterministic across tableau
// implementations — whose current basic column is not itself wanted and
// whose entry in the wanted column is nonzero becomes the pivot row (the
// row is negated first when the entry is negative, keeping the pivot
// strictly positive). Returns false when some wanted column has no
// eligible row: the recorded basis is singular for the new coefficients.
func rebuildWarmBasis(t tableau, want []int, nCols int) bool {
	wanted := make([]bool, nCols)
	for _, c := range want {
		wanted[c] = true
	}
	rowOf := make([]int, nCols)
	for j := range rowOf {
		rowOf[j] = -1
	}
	for i := 0; i < t.nRows(); i++ {
		rowOf[t.basic(i)] = i
	}
	for _, c := range want {
		if rowOf[c] >= 0 {
			continue
		}
		pick := -1
		for i := 0; i < t.nRows(); i++ {
			if wanted[t.basic(i)] {
				continue
			}
			if t.colSign(i, c) != 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			return false
		}
		if t.colSign(pick, c) < 0 {
			t.negateRow(pick)
		}
		old := t.basic(pick)
		t.pivot(pick, c)
		rowOf[old] = -1
		rowOf[c] = pick
	}
	return true
}

// warmFeasible reports whether the rebuilt basis is primal-feasible for
// the new right-hand side: every row's rhs is nonnegative and any
// leftover basic artificial sits at value zero (so the artificial
// drive-out loop can remove it without moving the vertex).
func warmFeasible(t tableau, artCols []bool) bool {
	for i := 0; i < t.nRows(); i++ {
		s := t.rowRHSSign(i)
		if s < 0 {
			return false
		}
		if s != 0 && artCols[t.basic(i)] {
			return false
		}
	}
	return true
}

// seedPhase1 performs ratio-test-guarded pivots that steer a cold phase 1
// toward the (structurally valid but infeasible-as-is) warm basis: each
// wanted column still nonbasic enters through the ordinary leaving-row
// test, so primal feasibility is preserved and the subsequent iterate
// loop converges from a vertex near the previous optimum. Purely a
// warm-start accelerant — correctness never depends on it.
func seedPhase1(t tableau, want []int, nCols int) {
	basicNow := make([]bool, nCols)
	for i := 0; i < t.nRows(); i++ {
		basicNow[t.basic(i)] = true
	}
	for _, c := range want {
		if basicNow[c] {
			continue
		}
		r := t.leaving(c)
		if r < 0 {
			continue
		}
		basicNow[t.basic(r)] = false
		basicNow[c] = true
		t.pivot(r, c)
	}
}

// warmSpan emits the lp.warmstart span: one per solve that carried a
// warm-start handoff with a candidate basis, attempted or rejected. All
// attributes are deterministic functions of the scenario and the offered
// basis (sizes, fingerprint match, the stable rejection reason, and the
// pivots the basis rebuild spent).
func warmSpan(ctx context.Context, basisSize int, used bool, reason string, rebuildPivots int) {
	_, span := obs.StartSpan(ctx, "lp.warmstart")
	if span == nil {
		return
	}
	span.SetAttr("basis", basisSize)
	span.SetAttr("used", used)
	span.SetAttr("reject_reason", reason)
	span.SetAttr("rebuild_pivots", rebuildPivots)
	span.End()
}

// finish writes the attempt's outcome back onto the handoff and the
// solution.
func (w *warmAttempt) finish(sol *Solution, used bool, reason string, phase1Pivots int) {
	sol.WarmUsed = used
	sol.WarmRejectReason = reason
	if used && w.ws.Basis != nil {
		if saved := w.ws.Basis.originPhase1 - phase1Pivots; saved > 0 {
			sol.WarmPivotsSaved = saved
		}
	}
	w.ws.Used = sol.WarmUsed
	w.ws.RejectReason = sol.WarmRejectReason
	w.ws.PivotsSaved = sol.WarmPivotsSaved
	w.ws.Final = sol.Basis()
	if used && w.ws.Final != nil && w.ws.Basis != nil {
		// A warm-started solve spends (near) zero phase-1 pivots of its
		// own, so its Final basis inherits the ancestral cold cost: down a
		// chain of perturbed re-solves, every warm start reports its
		// savings against the chain head's cold phase 1, not against its
		// already-warm predecessor.
		if w.ws.Basis.originPhase1 > w.ws.Final.originPhase1 {
			w.ws.Final.originPhase1 = w.ws.Basis.originPhase1
			w.ws.Final.originTotal = w.ws.Basis.originTotal
		}
	}
}

// ---------------------------------------------------------------------------
// Basis cache

// BasisCache is a bounded, mutex-guarded LRU of certified bases, keyed by
// the caller's notion of "same problem shape" (the steady-state Solver
// keys it by node count and canonical spec key, deliberately coarser than
// the platform content hash so perturbed platforms still hit — the
// fingerprint check inside the solve is what guarantees safety). A zero
// or negative capacity stores nothing. Safe for concurrent use.
type BasisCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

// basisEntry is one cache slot.
type basisEntry struct {
	key string
	b   *Basis
}

// NewBasisCache returns a basis cache holding at most capacity entries.
func NewBasisCache(capacity int) *BasisCache {
	return &BasisCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached basis for key, or nil; a hit refreshes recency.
func (c *BasisCache) Get(key string) *Basis {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*basisEntry).b
}

// Put stores the basis under key, evicting the least-recently-used entry
// beyond capacity. A nil basis is ignored.
func (c *BasisCache) Put(key string, b *Basis) {
	if c == nil || b == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*basisEntry).b = b
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&basisEntry{key: key, b: b})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*basisEntry).key)
	}
}

// Len returns the number of cached bases.
func (c *BasisCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
