package lp

import (
	"math/big"

	"repro/internal/rat"
)

// sparseRow is one tableau row stored sparsely: the nonzero integer
// numerators num over the shared positive denominator d, with cols the
// strictly increasing column indices of the numerators. The steady-state
// LPs keep rows short — a one-port or conservation row touches only one
// node's incident variables — and stay sparse across pivots (a few percent
// fill on the composite workloads), so a row update costs O(nnz) big.Int
// operations instead of O(columns). The arithmetic mirrors the dense row
// exactly (fraction-free update, content-gcd normalization), and pivot
// selection depends only on the rational row values, so both
// representations produce identical pivot sequences.
type sparseRow struct {
	cols []int
	num  []*big.Int // parallel to cols; entries are never zero
	d    *big.Int
}

// find returns the position of col in the row, or -1.
func (r *sparseRow) find(col int) int {
	lo, hi := 0, len(r.cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.cols[mid] < col {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.cols) && r.cols[lo] == col {
		return lo
	}
	return -1
}

// get returns the numerator at col, or nil when the entry is zero.
func (r *sparseRow) get(col int) *big.Int {
	if i := r.find(col); i >= 0 {
		return r.num[i]
	}
	return nil
}

// sign returns the sign of the entry at col (0 when absent).
func (r *sparseRow) sign(col int) int {
	if n := r.get(col); n != nil {
		return n.Sign()
	}
	return 0
}

// sparseTableau is the sparse simplex tableau — same solved (basic) form
// and column layout as denseTableau, same pivot rules, sparse rows. Row
// updates run allocation-free through tableau-owned scratch buffers and a
// big.Int pool: the profile of the composite workloads is dominated by
// small-integer multiplies, so avoiding per-update garbage is what turns
// the skipped zero-columns into wall-clock speedup over the dense tableau.
type sparseTableau struct {
	rows  []*sparseRow
	obj   *sparseRow
	basis []int
	dead  []bool
	rhs   int // index of the rhs column
	// iteration bookkeeping
	pivots     int
	blandAfter int
	bland      bool
	// scratch state for allocation-free row updates: the merge target
	// slices (swapped with the updated row's), a pool of retired big.Ints
	// (re-used for fill-in entries), and fixed temporaries.
	scratchCols []int
	scratchNum  []*big.Int
	pool        []*big.Int
	fbuf        big.Int // copy of the elimination factor
	tmp         big.Int // product temporary
	gbuf        big.Int // gcd accumulator
	absbuf      big.Int // |entry| scratch for gcd
}

func newSparseTableau(nCols, blandAfter int) *sparseTableau {
	return &sparseTableau{
		rhs:        nCols,
		dead:       make([]bool, nCols),
		blandAfter: blandAfter,
	}
}

// alloc returns a big.Int from the pool (or a fresh one).
func (t *sparseTableau) alloc() *big.Int {
	if n := len(t.pool); n > 0 {
		v := t.pool[n-1]
		t.pool = t.pool[:n-1]
		return v
	}
	return new(big.Int)
}

// normalizeRow divides the row through by the gcd of its denominator and
// all entries — the same content gcd the dense row computes (zero entries
// are skipped there too), so the normalized rationals agree exactly.
func (t *sparseTableau) normalizeRow(r *sparseRow) {
	if r.d.Cmp(bigOne) == 0 {
		return // g = gcd(1, …) = 1: nothing to divide out
	}
	g := t.gbuf.Set(r.d)
	for _, v := range r.num {
		t.absbuf.Abs(v)
		g.GCD(nil, nil, g, &t.absbuf)
		if g.Cmp(bigOne) == 0 {
			return
		}
	}
	r.d.Quo(r.d, g)
	for _, v := range r.num {
		v.Quo(v, g)
	}
}

// combine applies r ← (r·p − f·prow) / (d·p), the shared shape of both
// dense eliminations (pivot elimination uses the pivot numerator as p;
// objective installation over a solved row uses the row's denominator).
// The merge walks both sorted column lists once, mutating r's big.Ints in
// place, drawing fill-in entries from the pool and retiring entries that
// cancel to zero, and swaps r's slices with the tableau scratch so steady
// state allocates nothing.
func (t *sparseTableau) combine(r, prow *sparseRow, p, f *big.Int) {
	if f == nil || f.Sign() == 0 {
		return
	}
	t.fbuf.Set(f) // f may alias an entry of r mutated below
	f = &t.fbuf
	pOne := p.Cmp(bigOne) == 0 // unit pivots (common here) skip the scaling
	cols := t.scratchCols[:0]
	num := t.scratchNum[:0]
	i, j := 0, 0
	for i < len(r.cols) || j < len(prow.cols) {
		switch {
		case j >= len(prow.cols) || (i < len(r.cols) && r.cols[i] < prow.cols[j]):
			n := r.num[i]
			if !pOne {
				n.Mul(n, p)
			}
			cols = append(cols, r.cols[i])
			num = append(num, n)
			i++
		case i >= len(r.cols) || prow.cols[j] < r.cols[i]:
			n := t.alloc().Mul(f, prow.num[j])
			n.Neg(n)
			cols = append(cols, prow.cols[j])
			num = append(num, n)
			j++
		default:
			n := r.num[i]
			if !pOne {
				n.Mul(n, p)
			}
			t.tmp.Mul(f, prow.num[j])
			n.Sub(n, &t.tmp)
			if n.Sign() != 0 {
				cols = append(cols, r.cols[i])
				num = append(num, n)
			} else {
				t.pool = append(t.pool, n)
			}
			i++
			j++
		}
	}
	// r adopts the merged slices; its old backing arrays become the next
	// scratch (their big.Ints were all moved or retired above).
	t.scratchCols, r.cols = r.cols[:0], cols
	t.scratchNum, r.num = r.num[:0], num
	if !pOne {
		r.d.Mul(r.d, p)
	}
	t.normalizeRow(r)
}

func (t *sparseTableau) addRow(entries []colVal, den *big.Int, basic int) {
	r := &sparseRow{d: new(big.Int).Set(den)}
	for _, e := range entries {
		if e.num.Sign() == 0 {
			continue
		}
		r.cols = append(r.cols, e.col)
		r.num = append(r.num, new(big.Int).Set(e.num))
	}
	t.normalizeRow(r)
	t.rows = append(t.rows, r)
	t.basis = append(t.basis, basic)
}

func (t *sparseTableau) nRows() int           { return len(t.rows) }
func (t *sparseTableau) basic(i int) int      { return t.basis[i] }
func (t *sparseTableau) pivotCount() int      { return t.pivots }
func (t *sparseTableau) objRHSSign() int      { return t.obj.sign(t.rhs) }
func (t *sparseTableau) objValue() rat.Rat    { return t.rational(t.obj, t.rhs) }
func (t *sparseTableau) value(i int) rat.Rat  { return t.rational(t.rows[i], t.rhs) }
func (t *sparseTableau) blandActive() bool    { return t.bland }
func (t *sparseTableau) rowRHSSign(i int) int { return t.rows[i].sign(t.rhs) }

// nonzeros counts stored entries; sparse rows never hold zeros and both
// implementations normalize identically, so this equals the dense scan.
func (t *sparseTableau) nonzeros() int {
	nnz := 0
	for _, r := range t.rows {
		nnz += len(r.num)
	}
	return nnz
}

// rational reads entry col of r as an exact rational.
func (t *sparseTableau) rational(r *sparseRow, col int) rat.Rat {
	n := r.get(col)
	if n == nil {
		return rat.Zero()
	}
	return ratFromBigInts(n, r.d)
}

func (t *sparseTableau) resetRule(budget int) {
	t.bland = false
	t.blandAfter = t.pivots + budget
}

func (t *sparseTableau) markDead(cols []bool) {
	for j, dead := range cols {
		if dead {
			t.dead[j] = true
		}
	}
}

func (t *sparseTableau) firstNonzero(i int, skip []bool) (int, int) {
	r := t.rows[i]
	for k, col := range r.cols {
		if col >= t.rhs {
			break
		}
		if !skip[col] {
			return col, r.num[k].Sign()
		}
	}
	return -1, 0
}

func (t *sparseTableau) negateRow(i int) {
	for _, v := range t.rows[i].num {
		v.Neg(v)
	}
}

func (t *sparseTableau) colSign(i, c int) int { return t.rows[i].sign(c) }

// dropRow splices row i out with explicit copies. The earlier
// append-based splice left the dropped *sparseRow aliased past the new
// length of the backing array, keeping its column/numerator slices (which
// rotate through the tableau's scratch buffers via combine's swaps)
// reachable for the rest of the solve. Clearing the vacated tail slot
// severs the alias; the regression test pins solve → drop → re-pivot.
func (t *sparseTableau) dropRow(i int) {
	n := len(t.rows)
	copy(t.rows[i:], t.rows[i+1:])
	t.rows[n-1] = nil
	t.rows = t.rows[:n-1]
	copy(t.basis[i:], t.basis[i+1:])
	t.basis = t.basis[:n-1]
}

func (t *sparseTableau) installPhase1(art []bool) {
	w := &sparseRow{d: big.NewInt(1)}
	for j := 0; j < t.rhs; j++ {
		if art[j] {
			w.cols = append(w.cols, j)
			w.num = append(w.num, big.NewInt(1))
		}
	}
	t.obj = w
	for i, b := range t.basis {
		if art[b] {
			// w ← w − w[b]·row_i in rational form; the row is solved for b
			// (row_i[b]/row_i.d == 1), so p is the row's denominator.
			t.combine(w, t.rows[i], t.rows[i].d, w.get(b))
		}
	}
}

func (t *sparseTableau) installObjective(entries []colVal, den *big.Int) {
	z := &sparseRow{d: new(big.Int).Set(den)}
	for _, e := range entries {
		if e.num.Sign() == 0 {
			continue
		}
		z.cols = append(z.cols, e.col)
		z.num = append(z.num, new(big.Int).Set(e.num))
	}
	t.obj = z
	for i, b := range t.basis {
		t.combine(z, t.rows[i], t.rows[i].d, z.get(b))
	}
}

// pivot performs a Gauss-Jordan pivot at (pr, pc); the entry must be
// strictly positive. Rows without an entry in the pivot column are
// untouched, which the sparse lookup makes O(log nnz) to discover.
func (t *sparseTableau) pivot(pr, pc int) {
	prow := t.rows[pr]
	p := new(big.Int).Set(prow.get(pc)) // > 0; copied before rows mutate
	for i, ri := range t.rows {
		if i == pr {
			continue
		}
		t.combine(ri, prow, p, ri.get(pc))
	}
	if t.obj != nil {
		// Warm-basis rebuild pivots run before any objective is installed.
		t.combine(t.obj, prow, p, t.obj.get(pc))
	}
	// Row pr itself: divide by the pivot, i.e. its denominator becomes the
	// old pivot numerator (entries unchanged).
	prow.d = p
	t.normalizeRow(prow)
	t.basis[pr] = pc
	t.pivots++
}

// entering picks the entering column, or -1 at optimality — Dantzig's
// rule, falling back to Bland's once cycling is suspected, iterating only
// the objective row's nonzero entries (zero reduced costs are never
// negative, so skipping them picks the same column the dense scan does).
func (t *sparseTableau) entering() int {
	if !t.bland && t.pivots > t.blandAfter {
		t.bland = true
	}
	best := -1
	var bestNum *big.Int
	for k, col := range t.obj.cols {
		if col >= t.rhs {
			break
		}
		if t.dead[col] || t.obj.num[k].Sign() >= 0 {
			continue
		}
		if t.bland {
			return col
		}
		// All obj entries share one denominator, so numerators compare.
		if best == -1 || t.obj.num[k].Cmp(bestNum) < 0 {
			best, bestNum = col, t.obj.num[k]
		}
	}
	return best
}

var bigZero = new(big.Int)

// leaving runs the ratio test for entering column c — identical rule and
// tie-breaking to the dense implementation.
func (t *sparseTableau) leaving(c int) int {
	best := -1
	var bn, bd *big.Int // best ratio = bn/bd, bd > 0
	var l, r big.Int
	for i, ri := range t.rows {
		a := ri.get(c)
		if a == nil || a.Sign() <= 0 {
			continue
		}
		b := ri.get(t.rhs)
		if b == nil {
			b = bigZero
		}
		if best == -1 {
			best, bn, bd = i, b, a
			continue
		}
		// compare b/a vs bn/bd  ⇔  b·bd vs bn·a (a, bd > 0)
		l.Mul(b, bd)
		r.Mul(bn, a)
		switch l.Cmp(&r) {
		case -1:
			best, bn, bd = i, b, a
		case 0:
			if t.basis[i] < t.basis[best] {
				best, bn, bd = i, b, a
			}
		}
	}
	return best
}
