// Package obs is the solve-tracing layer: a context-carried, nil-safe
// span API producing one deterministic span tree per solve.
//
// A Tracer is rooted at the edge of the system (steadystate.Solver.Solve,
// internal/serve, cmd/sweep) and travels down the solver stack inside the
// context — WithTracer installs it, FromContext recovers it, StartSpan
// opens a child of the context's current span. Library code never mints
// tracers of its own (the obsflow analyzer enforces this): with no tracer
// in the context every call is a no-op on nil receivers, so the hot path
// pays only a context lookup per solve and a nil check per pivot.
//
// Trace structure is deterministic by construction: span names, child
// order and attributes are functions of the scenario alone, while every
// wall-clock measurement is segregated into the span's Timing block —
// exactly the SweepReport discipline — so traces golden-compare modulo
// timing (see WithoutTiming).
package obs

import (
	"context"
	"time"
)

// Timing is a span's wall-clock block: milliseconds since the trace
// root started, and the span's duration. It is the only
// nondeterministic part of a trace and is kept separable so goldens can
// strip it (WithoutTiming).
type Timing struct {
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// Span is one node of the trace tree: a named stage of the solve with
// exact structural attributes and an optional timing block. Child order
// is call order, which the solver keeps deterministic.
type Span struct {
	Name     string         `json:"name"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Timing   *Timing        `json:"timing,omitempty"`
	Children []*Span        `json:"children,omitempty"`

	tracer *Tracer
	start  time.Time
}

// Trace is one finished solve trace: the span tree plus serving-layer
// identity (ID assigned per request by solverd, Replayed marking a
// cache hit whose spans describe the original solve, not this request).
type Trace struct {
	ID       string `json:"id,omitempty"`
	Replayed bool   `json:"replayed,omitempty"`
	Root     *Span  `json:"root"`
}

// Tracer collects one solve's span tree. A nil *Tracer is the no-op
// tracer: every method is nil-safe, as is every method of the nil
// *Span, so instrumented code never branches on "is tracing on".
type Tracer struct {
	epoch time.Time
	root  *Span
}

// NewTracer starts a trace whose root span has the given name. The
// root is open until Finish.
func NewTracer(rootName string) *Tracer {
	now := time.Now()
	t := &Tracer{epoch: now}
	t.root = &Span{Name: rootName, tracer: t, start: now}
	return t
}

// Root returns the trace's root span (nil on the nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span and returns the completed trace (nil on
// the nil tracer).
func (t *Tracer) Finish() *Trace {
	if t == nil {
		return nil
	}
	t.root.End()
	return &Trace{Root: t.root}
}

// tracerKey carries the *Tracer in a context; spanKey carries the
// context's current parent span.
type tracerKey struct{}
type spanKey struct{}

// WithTracer returns ctx carrying the tracer, with the root span as the
// current parent for StartSpan. A nil tracer leaves ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, tracerKey{}, t)
	return context.WithValue(ctx, spanKey{}, t.root)
}

// FromContext returns the context's tracer, or nil when no trace is
// active — the no-op tracer, per the package discipline.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan opens a child span under the context's current span and
// returns a derived context in which the new span is the parent. With
// no tracer in ctx it returns ctx unchanged and a nil span; the caller
// uses the returned span unconditionally (nil methods no-op) and must
// End it when the stage completes.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	if tr == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		parent = tr.root
	}
	s := &Span{Name: name, tracer: tr, start: time.Now()}
	parent.Children = append(parent.Children, s)
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr records one structural attribute on the span (no-op on nil).
// Values must be deterministic functions of the scenario — counts,
// exact rational strings, attribute structs — never wall-clock data,
// which belongs in the Timing block.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]any)
	}
	s.Attrs[key] = v
}

// End closes the span, filling its timing block (no-op on nil and on a
// span already ended).
func (s *Span) End() {
	if s == nil || s.Timing != nil {
		return
	}
	now := time.Now()
	s.Timing = &Timing{
		StartMS: float64(s.start.Sub(s.tracer.epoch)) / float64(time.Millisecond),
		DurMS:   float64(now.Sub(s.start)) / float64(time.Millisecond),
	}
}

// WithoutTiming returns a deep copy of the trace with every span's
// timing block removed — the golden-comparable projection.
func (tr *Trace) WithoutTiming() *Trace {
	if tr == nil {
		return nil
	}
	return &Trace{ID: tr.ID, Replayed: tr.Replayed, Root: tr.Root.withoutTiming()}
}

// withoutTiming deep-copies the span subtree minus timing.
func (s *Span) withoutTiming() *Span {
	if s == nil {
		return nil
	}
	cp := &Span{Name: s.Name}
	if len(s.Attrs) > 0 {
		cp.Attrs = make(map[string]any, len(s.Attrs))
		for k, v := range s.Attrs {
			cp.Attrs[k] = v
		}
	}
	for _, c := range s.Children {
		cp.Children = append(cp.Children, c.withoutTiming())
	}
	return cp
}

// Walk visits the span and its subtree in depth-first order (no-op on
// nil), for aggregators like sscollect -op trace.
func (s *Span) Walk(visit func(*Span)) {
	if s == nil {
		return
	}
	visit(s)
	for _, c := range s.Children {
		c.Walk(visit)
	}
}

// TableauSample is one point of a phase's tableau trajectory, recorded
// every K pivots: the live dimensions, the nonzero count and the
// resulting density. All fields are exact functions of the pivot
// sequence, so trajectories golden-compare.
type TableauSample struct {
	Pivot    int     `json:"pivot"`
	Rows     int     `json:"rows"`
	Cols     int     `json:"cols"`
	NonZeros int     `json:"nonzeros"`
	Density  float64 `json:"density"`
}

// NewTableauSample builds a trajectory point, deriving density from the
// integer measurements (the ratfloat discipline keeps float arithmetic
// out of internal/lp, so the division happens here).
func NewTableauSample(pivot, rows, cols, nonzeros int) TableauSample {
	s := TableauSample{Pivot: pivot, Rows: rows, Cols: cols, NonZeros: nonzeros}
	if rows > 0 && cols > 0 {
		s.Density = float64(nonzeros) / (float64(rows) * float64(cols))
	}
	return s
}

// Waypoint is one objective-value waypoint of a simplex phase: the
// exact rational objective after the given pivot.
type Waypoint struct {
	Pivot     int    `json:"pivot"`
	Objective string `json:"objective"`
}
