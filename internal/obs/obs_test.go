package obs

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// TestNilSafety pins the package discipline: with no tracer installed,
// every call is a no-op on nil receivers and contexts pass through
// unchanged, so instrumented code never branches on "is tracing on".
func TestNilSafety(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext on a bare context = %v, want nil", got)
	}
	if got := WithTracer(ctx, nil); got != ctx {
		t.Fatal("WithTracer(ctx, nil) must return ctx unchanged")
	}
	ctx2, span := StartSpan(ctx, "stage")
	if ctx2 != ctx {
		t.Fatal("StartSpan without a tracer must return ctx unchanged")
	}
	if span != nil {
		t.Fatalf("StartSpan without a tracer = %v, want nil span", span)
	}

	// Every method of the nil receivers is a no-op, not a panic.
	span.SetAttr("k", 1)
	span.End()
	span.Walk(func(*Span) { t.Fatal("nil span Walk must not visit") })
	var tr *Tracer
	if tr.Root() != nil || tr.Finish() != nil {
		t.Fatal("nil tracer Root/Finish must return nil")
	}
	var trace *Trace
	if trace.WithoutTiming() != nil {
		t.Fatal("nil trace WithoutTiming must return nil")
	}
}

// TestSpanTreeStructure builds a small tree and pins parenting, child
// order, attribute storage and the idempotent End.
func TestSpanTreeStructure(t *testing.T) {
	tracer := NewTracer("solve")
	tracer.Root().SetAttr("kind", "scatter")
	ctx := WithTracer(context.Background(), tracer)

	if FromContext(ctx) != tracer {
		t.Fatal("FromContext must recover the installed tracer")
	}

	actx, a := StartSpan(ctx, "assemble")
	_, b := StartSpan(actx, "reachability") // child of a: derived context
	b.End()
	a.End()
	_, c := StartSpan(ctx, "lp.rows") // sibling of a: original context
	c.SetAttr("rows", 7)
	c.End()

	// End is idempotent: a second End must not overwrite the timing.
	timing := c.Timing
	if timing == nil {
		t.Fatal("End must fill the timing block")
	}
	c.End()
	if c.Timing != timing {
		t.Fatal("second End must not replace the timing block")
	}

	trace := tracer.Finish()
	root := trace.Root
	if root == nil || root != tracer.Root() {
		t.Fatal("Finish must return the trace rooted at Root()")
	}
	if root.Timing == nil {
		t.Fatal("Finish must end the root span")
	}
	if root.Attrs["kind"] != "scatter" {
		t.Fatalf("root kind attr = %v", root.Attrs["kind"])
	}
	if len(root.Children) != 2 || root.Children[0] != a || root.Children[1] != c {
		t.Fatalf("root children wrong: %+v", root.Children)
	}
	if len(a.Children) != 1 || a.Children[0] != b {
		t.Fatalf("assemble children wrong: %+v", a.Children)
	}
	if c.Attrs["rows"] != 7 {
		t.Fatalf("lp.rows attr = %v", c.Attrs["rows"])
	}
}

// TestWalkDepthFirst pins the DFS visit order aggregators rely on.
func TestWalkDepthFirst(t *testing.T) {
	tracer := NewTracer("root")
	ctx := WithTracer(context.Background(), tracer)
	actx, a := StartSpan(ctx, "a")
	StartSpan(actx, "a1")
	StartSpan(actx, "a2")
	a.End()
	StartSpan(ctx, "b")
	trace := tracer.Finish()

	var order []string
	trace.Root.Walk(func(s *Span) { order = append(order, s.Name) })
	want := []string{"root", "a", "a1", "a2", "b"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("walk order = %v, want %v", order, want)
	}
}

// TestWithoutTiming pins the golden projection: a deep copy with every
// timing block stripped, sharing nothing mutable with the original.
func TestWithoutTiming(t *testing.T) {
	tracer := NewTracer("solve")
	ctx := WithTracer(context.Background(), tracer)
	_, a := StartSpan(ctx, "assemble")
	a.SetAttr("vars", 12)
	a.End()
	trace := tracer.Finish()
	trace.ID = "req-1"
	trace.Replayed = true

	bare := trace.WithoutTiming()
	if bare.ID != "req-1" || !bare.Replayed {
		t.Fatalf("WithoutTiming must keep the trace identity: %+v", bare)
	}
	bare.Root.Walk(func(s *Span) {
		if s.Timing != nil {
			t.Fatalf("span %s kept its timing block", s.Name)
		}
	})
	// The original keeps its timings and is not aliased by the copy.
	trace.Root.Walk(func(s *Span) {
		if s.Timing == nil {
			t.Fatalf("original span %s lost its timing block", s.Name)
		}
	})
	bare.Root.Children[0].Attrs["vars"] = 99
	if a.Attrs["vars"] != 12 {
		t.Fatal("WithoutTiming must deep-copy attribute maps")
	}
}

// TestTraceJSONDeterminism pins that the timing-stripped projection
// serializes identically run over run (encoding/json sorts map keys, so
// attribute maps cannot leak iteration order).
func TestTraceJSONDeterminism(t *testing.T) {
	build := func() *Trace {
		tracer := NewTracer("solve")
		ctx := WithTracer(context.Background(), tracer)
		_, s := StartSpan(ctx, "lp.phase2")
		s.SetAttr("pivots", 3)
		s.SetAttr("objective", "7/2")
		s.SetAttr("trajectory", []TableauSample{NewTableauSample(0, 2, 4, 5)})
		s.End()
		return tracer.Finish()
	}
	a, err := json.Marshal(build().WithoutTiming())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build().WithoutTiming())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("timing-stripped traces differ:\n%s\n%s", a, b)
	}
}

// TestNewTableauSample pins the density derivation (the one float
// computation, kept out of internal/lp by the ratfloat discipline).
func TestNewTableauSample(t *testing.T) {
	s := NewTableauSample(3, 4, 10, 8)
	if s.Pivot != 3 || s.Rows != 4 || s.Cols != 10 || s.NonZeros != 8 {
		t.Fatalf("sample fields wrong: %+v", s)
	}
	if s.Density != 0.2 {
		t.Fatalf("density = %v, want 0.2", s.Density)
	}
	if z := NewTableauSample(0, 0, 10, 0); z.Density != 0 {
		t.Fatalf("empty tableau density = %v, want 0", z.Density)
	}
}
