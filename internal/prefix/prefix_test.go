package prefix

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/topology"
)

func TestTwoNodePrefix(t *testing.T) {
	// P0 – P1, unit everything. Rank 0's prefix v[0,0] is already local;
	// rank 1 needs v[0,1]: either P0 ships v[0,0] to P1 (1 time unit out
	// of P0) and P1 merges, or P1 ships v[1,1] to P0, P0 merges and ships
	// v[0,1] back. TP = 1 (ports allow one message each way per unit).
	p := graph.New()
	a := p.AddNode("P0", rat.One())
	b := p.AddNode("P1", rat.One())
	p.AddLink(a, b, rat.One())
	pr, err := NewProblem(p, []graph.NodeID{a, b})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !rat.Eq(sol.TP, rat.One()) {
		t.Errorf("TP = %s, want 1", sol.TP.RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestPrefixOnFig6Triangle(t *testing.T) {
	p, order, _ := topology.PaperFig6()
	pr, err := NewProblem(p, order)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.TP.Sign() <= 0 {
		t.Fatal("TP must be positive")
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// A prefix needs strictly more work than a reduce to the same nodes
	// (every rank is a delivery), so TP_prefix ≤ TP_reduce.
	rpr, _ := reduce.NewProblem(p, order, order[0])
	rsol, err := rpr.Solve()
	if err != nil {
		t.Fatalf("reduce Solve: %v", err)
	}
	if sol.TP.Cmp(rsol.TP) > 0 {
		t.Errorf("prefix TP %s exceeds reduce TP %s", sol.TP.RatString(), rsol.TP.RatString())
	}
	t.Logf("fig6 triangle: prefix TP=%s, reduce TP=%s", sol.TP.RatString(), rsol.TP.RatString())
}

func TestPrefixValidation(t *testing.T) {
	p, order, _ := topology.PaperFig6()
	if _, err := NewProblem(p, order[:1]); err == nil {
		t.Error("single participant should fail")
	}
	if _, err := NewProblem(p, []graph.NodeID{order[0], order[0]}); err == nil {
		t.Error("duplicate participant should fail")
	}
	q := graph.New()
	r := q.AddRouter("r")
	a := q.AddNode("a", rat.One())
	b := q.AddNode("b", rat.One())
	q.AddLink(a, b, rat.One())
	q.AddLink(b, r, rat.One())
	if _, err := NewProblem(q, []graph.NodeID{a, r}); err == nil {
		t.Error("router participant should fail")
	}
	// One-directional chain fails rank reachability (rank 0 must reach
	// rank 1, not vice versa — build the failing direction).
	u := graph.New()
	x := u.AddNode("x", rat.One())
	y := u.AddNode("y", rat.One())
	u.AddEdge(y, x, rat.One()) // only y→x
	if _, err := NewProblem(u, []graph.NodeID{x, y}); err == nil {
		t.Error("rank-unreachable order should fail")
	}
	// The reverse order works: rank 0 = y can reach rank 1 = x.
	if _, err := NewProblem(u, []graph.NodeID{y, x}); err != nil {
		t.Errorf("reverse order should validate: %v", err)
	}
}

func TestPrefixChain(t *testing.T) {
	p := topology.Chain(3, rat.One(), rat.One())
	var order []graph.NodeID
	for _, name := range []string{"n0", "n1", "n2"} {
		order = append(order, p.MustLookup(name))
	}
	pr, err := NewProblem(p, order)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.TP.Sign() <= 0 {
		t.Error("TP must be positive")
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if sol.Period().Sign() <= 0 {
		t.Error("period must be positive")
	}
}

func TestPrefixString(t *testing.T) {
	p := graph.New()
	a := p.AddNode("P0", rat.One())
	b := p.AddNode("P1", rat.One())
	p.AddLink(a, b, rat.One())
	pr, _ := NewProblem(p, []graph.NodeID{a, b})
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !strings.Contains(sol.String(), "prefix throughput") {
		t.Errorf("String:\n%s", sol.String())
	}
}

func TestPrefixVerifyCatchesTampering(t *testing.T) {
	p := graph.New()
	a := p.AddNode("P0", rat.One())
	b := p.AddNode("P1", rat.One())
	p.AddLink(a, b, rat.One())
	pr, _ := NewProblem(p, []graph.NodeID{a, b})
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	sol.TP = rat.Add(sol.TP, rat.One())
	if err := sol.Verify(); err == nil {
		t.Error("Verify accepted inflated TP")
	}
}
