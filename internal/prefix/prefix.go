// Package prefix implements the extension suggested in the paper's
// conclusion (Section 6): steady-state parallel prefix computation. Each
// participant P_i must obtain the prefix v[0,i] = v_0 ⊕ … ⊕ v_i of its own
// rank, for a pipelined series of operations, maximizing the common
// throughput TP.
//
// The linear program generalizes SSR(G): the same transfer and task
// variables over partial results v[k,m], the same one-port and compute
// constraints, but the conservation law at P_i for its own prefix v[0,i]
// is charged an extra TP of deliveries — the prefix may still be forwarded
// or consumed to build longer ranges for higher ranks, so rank sinks are
// quota deliveries rather than absorbing sinks.
package prefix

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/rat"
	"repro/internal/reduce"
)

// Problem is a Series of Parallel Prefixes instance. It reuses the reduce
// package's Range/Task vocabulary; participant P_i = Order[i] both holds
// v_i and must receive v[0,i].
type Problem struct {
	Platform *graph.Platform
	Order    []graph.NodeID
	SizeOf   func(reduce.Range) rat.Rat
	TaskTime func(graph.NodeID, reduce.Task) rat.Rat
}

// NewProblem validates and returns a prefix problem with default size and
// task-time functions.
func NewProblem(p *graph.Platform, order []graph.NodeID) (*Problem, error) {
	if len(order) < 2 {
		return nil, fmt.Errorf("prefix: need at least two participants")
	}
	seen := make(map[graph.NodeID]bool)
	for _, id := range order {
		if p.Node(id).Router {
			return nil, fmt.Errorf("prefix: participant %s is a router", p.Node(id).Name)
		}
		if seen[id] {
			return nil, fmt.Errorf("prefix: duplicate participant %s", p.Node(id).Name)
		}
		seen[id] = true
	}
	// Every rank needs data from all lower ranks: P_j must reach P_i for
	// j ≤ i, which the pairwise check covers.
	for i, a := range order {
		for j, b := range order {
			if j < i && !p.CanReach(b, a) {
				return nil, fmt.Errorf("prefix: %s cannot reach %s (rank %d needs rank %d)",
					p.Node(b).Name, p.Node(a).Name, i, j)
			}
		}
	}
	pr := &Problem{Platform: p, Order: append([]graph.NodeID(nil), order...)}
	pr.SizeOf = func(reduce.Range) rat.Rat { return rat.One() }
	pr.TaskTime = func(n graph.NodeID, t reduce.Task) rat.Rat {
		return rat.Div(pr.SizeOf(t.Result()), p.Node(n).Speed)
	}
	return pr, nil
}

// N returns the largest participant index.
func (pr *Problem) N() int { return len(pr.Order) - 1 }

// ranges and tasks enumerate the variable space (same shapes as reduce).
func (pr *Problem) ranges() []reduce.Range {
	var out []reduce.Range
	for k := 0; k <= pr.N(); k++ {
		for m := k; m <= pr.N(); m++ {
			out = append(out, reduce.Range{K: k, M: m})
		}
	}
	return out
}

func (pr *Problem) tasks() []reduce.Task {
	var out []reduce.Task
	for k := 0; k <= pr.N(); k++ {
		for l := k; l < pr.N(); l++ {
			for m := l + 1; m <= pr.N(); m++ {
				out = append(out, reduce.Task{K: k, L: l, M: m})
			}
		}
	}
	return out
}

func (pr *Problem) computeNodes() []graph.NodeID {
	var out []graph.NodeID
	for _, n := range pr.Platform.Nodes() {
		if !n.Router && n.Speed.Sign() > 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// Solution is a solved prefix series.
type Solution struct {
	Problem *Problem
	TP      rat.Rat
	Sends   map[reduce.SendKey]rat.Rat
	Tasks   map[reduce.TaskKey]rat.Rat
	Stats   core.FlowStats
}

// Solve builds and solves the prefix LP exactly over the rationals.
func (pr *Problem) Solve() (*Solution, error) { return pr.SolveCtx(context.Background()) }

// SolveCtx is Solve honoring context cancellation inside the simplex loop.
func (pr *Problem) SolveCtx(ctx context.Context) (*Solution, error) {
	m := lp.NewMaximize()
	tp := m.Var("TP")
	m.SetObjective(tp, rat.One())
	occ := core.NewOccupancy(pr.Platform)
	comp := core.NewCompute(pr.Platform)
	frag := pr.NewFragment(ctx, m, "", occ)
	occ.AddConstraints(m)
	frag.AddComputeVars(m, "", comp)
	comp.AddConstraints(m)
	frag.AddFlowConstraints(m, "", tp, rat.One())

	sol, err := m.SolveCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("prefix: LP: %w", err)
	}
	if err := m.Verify(sol.Values()); err != nil {
		return nil, fmt.Errorf("prefix: LP solution failed verification: %w", err)
	}
	stats := core.StatsOf(m, sol)
	_, exSpan := obs.StartSpan(ctx, "extract")
	out := frag.Extract(sol, sol.Objective, stats)
	exSpan.SetAttr("kind", "prefix")
	exSpan.End()
	return out, nil
}

// Fragment is one prefix instance's share of a linear program, following
// the same three-phase shared assembly as reduce.Fragment: transfer
// variables + port occupancy, task variables + compute occupancy, then
// conservation with per-rank deliveries.
type Fragment struct {
	Problem *Problem
	Sends   map[reduce.SendKey]lp.Var
	Tasks   map[reduce.TaskKey]lp.Var
}

// NewFragment declares the transfer variables into m (a leaf never flows
// into its owner), registering their busy time with occ. label prefixes
// variable names so several fragments can share one model. ctx carries
// the solve trace, if any: assembly opens an "assemble" span.
func (pr *Problem) NewFragment(ctx context.Context, m *lp.Model, label string, occ *core.OccupancyBuilder) *Fragment {
	_, asmSpan := obs.StartSpan(ctx, "assemble")
	asmSpan.SetAttr("kind", "prefix")
	asmSpan.SetAttr("label", label)
	asmSpan.SetAttr("participants", len(pr.Order))
	f := &Fragment{
		Problem: pr,
		Sends:   make(map[reduce.SendKey]lp.Var),
		Tasks:   make(map[reduce.TaskKey]lp.Var),
	}
	for _, e := range pr.Platform.Edges() {
		for _, r := range pr.ranges() {
			if r.IsLeaf() && e.To == pr.Order[r.K] {
				continue // a leaf never flows into its owner
			}
			k := reduce.SendKey{From: e.From, To: e.To, R: r}
			v := m.Var(fmt.Sprintf("%ssend(%s->%s,%s)", label,
				pr.Platform.Node(e.From).Name, pr.Platform.Node(e.To).Name, r))
			f.Sends[k] = v
			occ.Add(e.From, e.To, v, rat.Mul(pr.SizeOf(r), e.Cost))
		}
	}
	asmSpan.SetAttr("vars", len(f.Sends))
	asmSpan.End()
	return f
}

// AddComputeVars declares the computation variables, registering each
// task's time with comp.
func (f *Fragment) AddComputeVars(m *lp.Model, label string, comp *core.ComputeBuilder) {
	pr := f.Problem
	for _, node := range pr.computeNodes() {
		for _, t := range pr.tasks() {
			k := reduce.TaskKey{Node: node, T: t}
			v := m.Var(fmt.Sprintf("%scons(%s,%s)", label, pr.Platform.Node(node).Name, t))
			f.Tasks[k] = v
			comp.Add(node, v, pr.TaskTime(node, t))
		}
	}
}

// AddFlowConstraints adds conservation with per-rank prefix deliveries:
// at node P_i for range [0,i], the balance owes an extra weight·tp (the
// delivered prefixes).
func (f *Fragment) AddFlowConstraints(m *lp.Model, label string, tp lp.Var, weight rat.Rat) {
	pr := f.Problem
	n := pr.N()
	for _, node := range pr.Platform.Nodes() {
		for _, r := range pr.ranges() {
			if r.IsLeaf() && pr.Order[r.K] == node.ID {
				continue // unlimited local supply of v[i,i]
			}
			expr := lp.NewExpr()
			terms := 0
			for _, e := range pr.Platform.InEdges(node.ID) {
				if v, ok := f.Sends[reduce.SendKey{From: e.From, To: e.To, R: r}]; ok {
					expr = expr.Plus1(v)
					terms++
				}
			}
			for l := r.K; l < r.M; l++ {
				if v, ok := f.Tasks[reduce.TaskKey{Node: node.ID, T: reduce.Task{K: r.K, L: l, M: r.M}}]; ok {
					expr = expr.Plus1(v)
					terms++
				}
			}
			for _, e := range pr.Platform.OutEdges(node.ID) {
				if v, ok := f.Sends[reduce.SendKey{From: e.From, To: e.To, R: r}]; ok {
					expr = expr.Minus(rat.One(), v)
					terms++
				}
			}
			for nn := r.M + 1; nn <= n; nn++ {
				if v, ok := f.Tasks[reduce.TaskKey{Node: node.ID, T: reduce.Task{K: r.K, L: r.M, M: nn}}]; ok {
					expr = expr.Minus(rat.One(), v)
					terms++
				}
			}
			for nn := 0; nn < r.K; nn++ {
				if v, ok := f.Tasks[reduce.TaskKey{Node: node.ID, T: reduce.Task{K: nn, L: r.K - 1, M: r.M}}]; ok {
					expr = expr.Minus(rat.One(), v)
					terms++
				}
			}
			delivered := r.K == 0 && pr.Order[r.M] == node.ID
			if delivered {
				expr = expr.Minus(weight, tp)
				terms++
			}
			if terms == 0 {
				continue
			}
			m.AddConstraint(fmt.Sprintf("%sconserve(%s,%s)", label, node.Name, r), expr, lp.Eq, rat.Zero())
		}
	}
}

// Extract reads the fragment's solved rates into a Solution with the
// given throughput.
func (f *Fragment) Extract(sol *lp.Solution, tp rat.Rat, stats core.FlowStats) *Solution {
	out := &Solution{
		Problem: f.Problem,
		TP:      rat.Copy(tp),
		Sends:   make(map[reduce.SendKey]rat.Rat),
		Tasks:   make(map[reduce.TaskKey]rat.Rat),
		Stats:   stats,
	}
	for k, v := range f.Sends {
		if val := sol.Value(v); val.Sign() > 0 {
			out.Sends[k] = val
		}
	}
	for k, v := range f.Tasks {
		if val := sol.Value(v); val.Sign() > 0 {
			out.Tasks[k] = val
		}
	}
	return out
}

// Throughput returns TP: prefix operations per time unit.
func (s *Solution) Throughput() rat.Rat { return rat.Copy(s.TP) }

// Period returns the integer schedule period.
func (s *Solution) Period() *big.Int {
	rates := []rat.Rat{rat.Copy(s.TP)}
	for _, r := range s.Sends {
		rates = append(rates, rat.Copy(r)) //sslint:allow order-insensitive: rates feed DenominatorLCM
	}
	for _, r := range s.Tasks {
		rates = append(rates, rat.Copy(r)) //sslint:allow order-insensitive: rates feed DenominatorLCM
	}
	return rat.DenominatorLCM(rates...)
}

// Verify re-checks one-port, compute occupation and the per-rank
// conservation/delivery balance, independent of the LP solver.
func (s *Solution) Verify() error {
	pr := s.Problem
	n := pr.N()

	f := core.NewFlow[reduce.Range](pr.Platform)
	for k, r := range s.Sends {
		f.SetSend(k.From, k.To, k.R, r)
	}
	if err := f.VerifyOnePort(pr.SizeOf); err != nil {
		return fmt.Errorf("prefix: %w", err)
	}

	alpha := make(map[graph.NodeID]rat.Rat)
	for k, r := range s.Tasks {
		if alpha[k.Node] == nil {
			alpha[k.Node] = rat.Zero()
		}
		alpha[k.Node].Add(alpha[k.Node], rat.Mul(r, pr.TaskTime(k.Node, k.T)))
	}
	for id, a := range alpha {
		if a.Cmp(rat.One()) > 0 {
			return fmt.Errorf("prefix: node %s computes for %s > 1", pr.Platform.Node(id).Name, a.RatString())
		}
	}

	for _, node := range pr.Platform.Nodes() {
		for _, r := range pr.ranges() {
			if r.IsLeaf() && pr.Order[r.K] == node.ID {
				continue
			}
			bal := rat.Zero()
			in, out := f.InflowOutflow(node.ID, r)
			bal.Add(bal, in)
			bal.Sub(bal, out)
			for l := r.K; l < r.M; l++ {
				if v, ok := s.Tasks[reduce.TaskKey{Node: node.ID, T: reduce.Task{K: r.K, L: l, M: r.M}}]; ok {
					bal.Add(bal, v)
				}
			}
			for nn := r.M + 1; nn <= n; nn++ {
				if v, ok := s.Tasks[reduce.TaskKey{Node: node.ID, T: reduce.Task{K: r.K, L: r.M, M: nn}}]; ok {
					bal.Sub(bal, v)
				}
			}
			for nn := 0; nn < r.K; nn++ {
				if v, ok := s.Tasks[reduce.TaskKey{Node: node.ID, T: reduce.Task{K: nn, L: r.K - 1, M: r.M}}]; ok {
					bal.Sub(bal, v)
				}
			}
			want := rat.Zero()
			if r.K == 0 && pr.Order[r.M] == node.ID {
				want = rat.Copy(s.TP)
			}
			if !rat.Eq(bal, want) {
				return fmt.Errorf("prefix: balance at %s for %s is %s, want %s",
					node.Name, r, bal.RatString(), want.RatString())
			}
		}
	}
	return nil
}

// String renders throughput, transfers and tasks.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prefix throughput TP = %s (period %s)\n", s.TP.RatString(), s.Period().String())
	var lines []string
	for k, r := range s.Sends {
		lines = append(lines, fmt.Sprintf("  send(%s->%s, %s) = %s",
			s.Problem.Platform.Node(k.From).Name, s.Problem.Platform.Node(k.To).Name, k.R, r.RatString()))
	}
	for k, r := range s.Tasks {
		lines = append(lines, fmt.Sprintf("  cons(%s, %s) = %s",
			s.Problem.Platform.Node(k.Node).Name, k.T, r.RatString()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
