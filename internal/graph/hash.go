// hash.go gives platforms a content identity: the sha256 digest of the
// canonical JSON serialization. Two platforms hash equally exactly when
// their canonical serializations agree byte for byte — same nodes in the
// same insertion order, same edges, same exact rational costs and speeds
// — which is the sharing contract of solver-session pools: node IDs are
// insertion-ordered and stable across the JSON round trip, so a spec
// valid against one copy is valid against every copy with the same hash.
package graph

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// ContentHash returns the sha256 digest of the platform's canonical JSON
// form (the compact MarshalJSON output). The digest is independent of the
// JSON field order and whitespace a platform was decoded from — decoding
// normalizes to the canonical form — but it is sensitive to node and edge
// insertion order, because node IDs (and with them every Spec referencing
// the platform) depend on it. A nil platform is unhashable and returns an
// error; callers pooling sessions by hash should fall back to a private
// session rather than fail the solve.
func (p *Platform) ContentHash() ([sha256.Size]byte, error) {
	if p == nil {
		return [sha256.Size]byte{}, fmt.Errorf("graph: cannot hash nil platform")
	}
	data, err := json.Marshal(p)
	if err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("graph: content hash: %w", err)
	}
	return sha256.Sum256(data), nil
}
