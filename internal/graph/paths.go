package graph

import (
	"container/heap"
	"fmt"

	"repro/internal/rat"
)

// ShortestPath returns the minimum-total-cost directed path from src to
// dst (as node IDs, src first) and its cost, using Dijkstra's algorithm
// over the exact rational edge costs. ok is false when dst is unreachable.
func (p *Platform) ShortestPath(src, dst NodeID) (path []NodeID, cost rat.Rat, ok bool) {
	p.checkNode(src)
	p.checkNode(dst)
	dist := make([]rat.Rat, len(p.nodes))
	prev := make([]NodeID, len(p.nodes))
	for i := range prev {
		prev[i] = -1
	}
	dist[src] = rat.Zero()

	pq := &ratHeap{}
	heap.Init(pq)
	heap.Push(pq, ratItem{node: src, dist: rat.Zero()})
	done := make([]bool, len(p.nodes))
	for pq.Len() > 0 {
		it := heap.Pop(pq).(ratItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == dst {
			break
		}
		for _, idx := range p.out[it.node] {
			e := p.edges[idx]
			if done[e.To] {
				continue
			}
			nd := rat.Add(it.dist, e.Cost)
			if dist[e.To] == nil || nd.Cmp(dist[e.To]) < 0 {
				dist[e.To] = nd
				prev[e.To] = it.node
				heap.Push(pq, ratItem{node: e.To, dist: nd})
			}
		}
	}
	if src != dst && prev[dst] == -1 {
		return nil, nil, false
	}
	for at := dst; at != -1; at = prev[at] {
		path = append([]NodeID{at}, path...)
		if at == src {
			break
		}
	}
	if path[0] != src {
		return nil, nil, false
	}
	return path, rat.Copy(dist[dst]), true
}

// MustShortestPath is ShortestPath that panics when dst is unreachable.
func (p *Platform) MustShortestPath(src, dst NodeID) ([]NodeID, rat.Rat) {
	path, cost, ok := p.ShortestPath(src, dst)
	if !ok {
		panic(fmt.Sprintf("graph: %s cannot reach %s", p.nodes[src].Name, p.nodes[dst].Name))
	}
	return path, cost
}

type ratItem struct {
	node NodeID
	dist rat.Rat
}

type ratHeap []ratItem

func (h ratHeap) Len() int           { return len(h) }
func (h ratHeap) Less(i, j int) bool { return h[i].dist.Cmp(h[j].dist) < 0 }
func (h ratHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ratHeap) Push(x any)        { *h = append(*h, x.(ratItem)) }
func (h *ratHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return out
}
