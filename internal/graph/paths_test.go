package graph

import (
	"testing"

	"repro/internal/rat"
)

func TestShortestPathDirect(t *testing.T) {
	p := New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddEdge(a, b, rat.New(3, 2))
	path, cost, ok := p.ShortestPath(a, b)
	if !ok || len(path) != 2 || !rat.Eq(cost, rat.New(3, 2)) {
		t.Errorf("path=%v cost=%v ok=%v", path, cost, ok)
	}
}

func TestShortestPathPrefersCheaperRoute(t *testing.T) {
	// a→b→c costs 2, a→c direct costs 5.
	p := New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	c := p.AddNode("c", rat.One())
	p.AddEdge(a, b, rat.One())
	p.AddEdge(b, c, rat.One())
	p.AddEdge(a, c, rat.Int(5))
	path, cost, ok := p.ShortestPath(a, c)
	if !ok {
		t.Fatal("no path")
	}
	if len(path) != 3 || path[1] != b {
		t.Errorf("path = %v, want via b", path)
	}
	if !rat.Eq(cost, rat.Int(2)) {
		t.Errorf("cost = %s, want 2", cost.RatString())
	}
}

func TestShortestPathSelf(t *testing.T) {
	p := New()
	a := p.AddNode("a", rat.One())
	path, cost, ok := p.ShortestPath(a, a)
	if !ok || len(path) != 1 || cost.Sign() != 0 {
		t.Errorf("self path: %v %v %v", path, cost, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	p := New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddEdge(b, a, rat.One()) // only the reverse direction exists
	if _, _, ok := p.ShortestPath(a, b); ok {
		t.Error("unreachable path reported ok")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustShortestPath did not panic")
		}
	}()
	p.MustShortestPath(a, b)
}

func TestShortestPathRespectsDirection(t *testing.T) {
	p := New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddEdge(a, b, rat.Int(10))
	p.AddEdge(b, a, rat.One())
	_, cost, ok := p.ShortestPath(a, b)
	if !ok || !rat.Eq(cost, rat.Int(10)) {
		t.Errorf("a→b cost = %v (ok=%v), want 10", cost, ok)
	}
	_, cost, ok = p.ShortestPath(b, a)
	if !ok || !rat.Eq(cost, rat.One()) {
		t.Errorf("b→a cost = %v (ok=%v), want 1", cost, ok)
	}
}
