// Package graph models the heterogeneous target platform of the paper: a
// directed edge-weighted graph G = (V, E, c) where each edge e carries the
// time c(e) needed to transfer a unit-size message, and each node may carry
// a compute speed (for reduce operations, the time to run a task is derived
// from the node's speed).
//
// The graph may contain cycles and multiple paths (the LP exploits them:
// in the paper's toy example messages for one target travel along two
// different routes). Edges are directed and c(i,j) need not equal c(j,i);
// the existence of (i,j) does not imply that of (j,i).
package graph

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/rat"
)

// NodeID identifies a node within a Platform. IDs are dense indices
// assigned in insertion order.
type NodeID int

// Node is one resource of the platform: a processor (participant in
// collectives, with a compute speed) or a pure router (forwards messages,
// never computes, holds no values).
type Node struct {
	ID   NodeID
	Name string
	// Speed is the computing speed s_i of the node; the paper's Tiers
	// experiment derives task time as size/speed. A nil or zero speed
	// marks a node that cannot compute (router).
	Speed rat.Rat
	// Router marks pure forwarding nodes (white nodes in the paper's
	// Figure 9).
	Router bool
}

// Edge is a directed communication link with cost c(e): the time needed to
// transfer a unit-size message across the link.
type Edge struct {
	From, To NodeID
	Cost     rat.Rat
}

// Platform is the heterogeneous platform graph.
type Platform struct {
	nodes []Node
	// out[i] and in[i] list edge indices ordered by insertion.
	edges []Edge
	out   [][]int
	in    [][]int
	index map[string]NodeID
	// reach memoizes per-source reachability closures. It is held behind a
	// pointer so Platform values stay copyable (UnmarshalJSON replaces *p
	// wholesale) without copying a lock.
	reach *reachCache
}

// reachCache memoizes, per source node, the bitset of nodes reachable by
// directed paths. Problem validation and LP variable pruning perform many
// CanReach queries per solve; on repeated solves over the same platform
// (solver sessions, topology sweeps) the closure is computed once. The
// cache is safe for concurrent readers and is dropped whenever the
// platform gains a node or an edge.
type reachCache struct {
	mu   sync.RWMutex
	sets map[NodeID][]uint64
}

// New returns an empty platform.
func New() *Platform {
	return &Platform{index: make(map[string]NodeID), reach: &reachCache{}}
}

// invalidateReach drops the memoized closures after a mutation.
func (p *Platform) invalidateReach() {
	p.reach.mu.Lock()
	p.reach.sets = nil
	p.reach.mu.Unlock()
}

// reachSet returns the closure bitset for src, computing and caching it on
// first use.
func (p *Platform) reachSet(src NodeID) []uint64 {
	p.reach.mu.RLock()
	set := p.reach.sets[src]
	p.reach.mu.RUnlock()
	if set != nil {
		return set
	}
	set = p.computeReach(src)
	p.reach.mu.Lock()
	if p.reach.sets == nil {
		p.reach.sets = make(map[NodeID][]uint64, len(p.nodes))
	}
	p.reach.sets[src] = set
	p.reach.mu.Unlock()
	return set
}

// computeReach runs the DFS behind reachSet.
func (p *Platform) computeReach(src NodeID) []uint64 {
	set := make([]uint64, (len(p.nodes)+63)/64)
	set[src>>6] |= 1 << (uint(src) & 63)
	stack := []NodeID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, idx := range p.out[n] {
			t := p.edges[idx].To
			if set[t>>6]&(1<<(uint(t)&63)) == 0 {
				set[t>>6] |= 1 << (uint(t) & 63)
				stack = append(stack, t)
			}
		}
	}
	return set
}

// Preindex eagerly computes the reachability closure of every node, so
// that subsequent solves only read the cache. Solver sessions call this
// once per platform; it is safe (merely redundant) to call it again.
func (p *Platform) Preindex() {
	for id := range p.nodes {
		p.reachSet(NodeID(id))
	}
}

// AddNode adds a computing node with the given name and speed and returns
// its ID. Names must be unique.
func (p *Platform) AddNode(name string, speed rat.Rat) NodeID {
	return p.mustAdd(name, speed, false)
}

// AddRouter adds a pure forwarding node.
func (p *Platform) AddRouter(name string) NodeID {
	return p.mustAdd(name, rat.Zero(), true)
}

// add is the error-returning core of AddNode/AddRouter, shared with the
// unmarshal path (where malformed input must surface as an error, not a
// panic).
func (p *Platform) add(name string, speed rat.Rat, router bool) (NodeID, error) {
	if _, dup := p.index[name]; dup {
		return 0, fmt.Errorf("graph: duplicate node %q", name)
	}
	id := NodeID(len(p.nodes))
	p.nodes = append(p.nodes, Node{ID: id, Name: name, Speed: rat.Copy(speed), Router: router})
	p.out = append(p.out, nil)
	p.in = append(p.in, nil)
	p.index[name] = id
	p.invalidateReach()
	return id, nil
}

func (p *Platform) mustAdd(name string, speed rat.Rat, router bool) NodeID {
	id, err := p.add(name, speed, router)
	if err != nil {
		panic(err.Error())
	}
	return id
}

// AddEdge adds a directed edge from → to with unit-message cost c. Parallel
// duplicate edges and self-loops are rejected: neither occurs in the
// paper's model and both usually indicate builder bugs.
func (p *Platform) AddEdge(from, to NodeID, cost rat.Rat) {
	p.checkNode(from)
	p.checkNode(to)
	if err := p.addEdge(from, to, cost); err != nil {
		panic(err.Error())
	}
}

// addEdge is the error-returning core of AddEdge, shared with the
// unmarshal path.
func (p *Platform) addEdge(from, to NodeID, cost rat.Rat) error {
	if from == to {
		return fmt.Errorf("graph: self-loop on %s", p.nodes[from].Name)
	}
	if cost.Sign() <= 0 {
		return fmt.Errorf("graph: non-positive edge cost %s→%s", p.nodes[from].Name, p.nodes[to].Name)
	}
	if _, ok := p.FindEdge(from, to); ok {
		return fmt.Errorf("graph: duplicate edge %s→%s", p.nodes[from].Name, p.nodes[to].Name)
	}
	idx := len(p.edges)
	p.edges = append(p.edges, Edge{From: from, To: to, Cost: rat.Copy(cost)})
	p.out[from] = append(p.out[from], idx)
	p.in[to] = append(p.in[to], idx)
	p.invalidateReach()
	return nil
}

// AddLink adds the pair of directed edges from↔to, both with cost c — the
// common case of a symmetric physical link.
func (p *Platform) AddLink(a, b NodeID, cost rat.Rat) {
	p.AddEdge(a, b, cost)
	p.AddEdge(b, a, cost)
}

func (p *Platform) checkNode(id NodeID) {
	if int(id) < 0 || int(id) >= len(p.nodes) {
		panic(fmt.Sprintf("graph: unknown node %d", id))
	}
}

// NumNodes returns the number of nodes.
func (p *Platform) NumNodes() int { return len(p.nodes) }

// NumEdges returns the number of directed edges.
func (p *Platform) NumEdges() int { return len(p.edges) }

// Node returns the node with the given ID.
func (p *Platform) Node(id NodeID) Node {
	p.checkNode(id)
	return p.nodes[id]
}

// Nodes returns all nodes in ID order.
func (p *Platform) Nodes() []Node { return append([]Node(nil), p.nodes...) }

// Lookup returns the node with the given name.
func (p *Platform) Lookup(name string) (NodeID, bool) {
	id, ok := p.index[name]
	return id, ok
}

// MustLookup is Lookup that panics when the name is unknown.
func (p *Platform) MustLookup(name string) NodeID {
	id, ok := p.index[name]
	if !ok {
		panic(fmt.Sprintf("graph: unknown node %q", name))
	}
	return id
}

// Edges returns all edges in insertion order.
func (p *Platform) Edges() []Edge { return append([]Edge(nil), p.edges...) }

// OutEdges returns the edges leaving n, in insertion order.
func (p *Platform) OutEdges(n NodeID) []Edge {
	p.checkNode(n)
	out := make([]Edge, len(p.out[n]))
	for i, idx := range p.out[n] {
		out[i] = p.edges[idx]
	}
	return out
}

// InEdges returns the edges entering n, in insertion order.
func (p *Platform) InEdges(n NodeID) []Edge {
	p.checkNode(n)
	in := make([]Edge, len(p.in[n]))
	for i, idx := range p.in[n] {
		in[i] = p.edges[idx]
	}
	return in
}

// FindEdge returns the edge from → to, if present.
func (p *Platform) FindEdge(from, to NodeID) (Edge, bool) {
	if int(from) < 0 || int(from) >= len(p.nodes) {
		return Edge{}, false
	}
	for _, idx := range p.out[from] {
		if p.edges[idx].To == to {
			return p.edges[idx], true
		}
	}
	return Edge{}, false
}

// Cost returns c(from, to); it panics when the edge does not exist.
func (p *Platform) Cost(from, to NodeID) rat.Rat {
	e, ok := p.FindEdge(from, to)
	if !ok {
		panic(fmt.Sprintf("graph: no edge %s→%s", p.nodes[from].Name, p.nodes[to].Name))
	}
	return e.Cost
}

// Participants returns the IDs of all non-router nodes, in ID order.
func (p *Platform) Participants() []NodeID {
	var out []NodeID
	for _, n := range p.nodes {
		if !n.Router {
			out = append(out, n.ID)
		}
	}
	return out
}

// ReachableFrom returns the set of nodes reachable from src by directed
// paths (including src itself), as a sorted slice.
func (p *Platform) ReachableFrom(src NodeID) []NodeID {
	p.checkNode(src)
	set := p.reachSet(src)
	var out []NodeID
	for id := range p.nodes {
		if set[id>>6]&(1<<(uint(id)&63)) != 0 {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// CanReach reports whether there is a directed path from src to dst.
func (p *Platform) CanReach(src, dst NodeID) bool {
	p.checkNode(src)
	p.checkNode(dst)
	set := p.reachSet(src)
	return set[dst>>6]&(1<<(uint(dst)&63)) != 0
}

// HopDiameter returns the largest finite hop-count shortest path between
// any ordered pair of mutually reachable nodes. The paper uses the graph
// width/diameter to bound the initialization latency I of the steady-state
// protocol.
func (p *Platform) HopDiameter() int {
	max := 0
	for src := range p.nodes {
		dist := p.bfs(NodeID(src))
		for _, d := range dist {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// bfs returns hop distances from src (-1 when unreachable).
func (p *Platform) bfs(src NodeID) []int {
	dist := make([]int, len(p.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, idx := range p.out[n] {
			t := p.edges[idx].To
			if dist[t] == -1 {
				dist[t] = dist[n] + 1
				queue = append(queue, t)
			}
		}
	}
	return dist
}

// Validate checks structural sanity: at least one node, positive costs,
// and (when participants are present) that every pair of participants is
// connected in the underlying directed graph. It returns the first problem
// found.
func (p *Platform) Validate() error {
	if len(p.nodes) == 0 {
		return fmt.Errorf("graph: empty platform")
	}
	for _, e := range p.edges {
		if e.Cost.Sign() <= 0 {
			return fmt.Errorf("graph: edge %s→%s has non-positive cost %s",
				p.nodes[e.From].Name, p.nodes[e.To].Name, e.Cost.RatString())
		}
	}
	parts := p.Participants()
	for _, a := range parts {
		reach := make(map[NodeID]bool)
		for _, n := range p.ReachableFrom(a) {
			reach[n] = true
		}
		for _, b := range parts {
			if a != b && !reach[b] {
				return fmt.Errorf("graph: participant %s cannot reach participant %s",
					p.nodes[a].Name, p.nodes[b].Name)
			}
		}
	}
	return nil
}

// TaskTime returns the time w(P_i, T) for node i to run one reduction task
// over messages of the given size, following the paper's Tiers experiment
// convention: size / speed. It panics for routers or zero-speed nodes.
func (p *Platform) TaskTime(n NodeID, size rat.Rat) rat.Rat {
	node := p.Node(n)
	if node.Router || node.Speed.Sign() <= 0 {
		panic(fmt.Sprintf("graph: node %s cannot compute", node.Name))
	}
	return rat.Div(size, node.Speed)
}

// DOT renders the platform in Graphviz DOT format, with edge costs and
// node speeds as labels. Symmetric edge pairs are rendered as one
// double-headed edge for readability.
func (p *Platform) DOT() string {
	var b strings.Builder
	b.WriteString("digraph platform {\n")
	for _, n := range p.nodes {
		shape := "ellipse"
		label := n.Name
		if n.Router {
			shape = "box"
		} else {
			label = fmt.Sprintf("%s\\nspeed=%s", n.Name, n.Speed.RatString())
		}
		fmt.Fprintf(&b, "  %q [shape=%s,label=%q];\n", n.Name, shape, label)
	}
	done := make(map[[2]NodeID]bool)
	for _, e := range p.edges {
		if done[[2]NodeID{e.From, e.To}] {
			continue
		}
		rev, ok := p.FindEdge(e.To, e.From)
		if ok && rat.Eq(rev.Cost, e.Cost) {
			done[[2]NodeID{e.To, e.From}] = true
			fmt.Fprintf(&b, "  %q -> %q [dir=both,label=%q];\n",
				p.nodes[e.From].Name, p.nodes[e.To].Name, e.Cost.RatString())
		} else {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
				p.nodes[e.From].Name, p.nodes[e.To].Name, e.Cost.RatString())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// jsonPlatform is the serialized form.
type jsonPlatform struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Name   string `json:"name"`
	Speed  string `json:"speed,omitempty"`
	Router bool   `json:"router,omitempty"`
}

type jsonEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Cost string `json:"cost"`
}

// MarshalJSON serializes the platform with exact rational costs/speeds as
// strings ("3/4"). The output is compact, like every encoding/json
// marshaler — nesting a platform inside another document keeps it
// byte-identical, and writers that want pretty files indent at the edge
// (json.MarshalIndent / json.Indent).
func (p *Platform) MarshalJSON() ([]byte, error) {
	jp := jsonPlatform{}
	for _, n := range p.nodes {
		jn := jsonNode{Name: n.Name, Router: n.Router}
		if !n.Router {
			jn.Speed = n.Speed.RatString()
		}
		jp.Nodes = append(jp.Nodes, jn)
	}
	for _, e := range p.edges {
		jp.Edges = append(jp.Edges, jsonEdge{
			From: p.nodes[e.From].Name,
			To:   p.nodes[e.To].Name,
			Cost: e.Cost.RatString(),
		})
	}
	return json.Marshal(jp)
}

// UnmarshalJSON deserializes a platform produced by MarshalJSON. Malformed
// input — duplicate node names, self-loops, non-positive costs, duplicate
// or dangling edges — is reported as an error, never a panic, so hostile
// scenario files cannot crash the loader.
func (p *Platform) UnmarshalJSON(data []byte) error {
	var jp jsonPlatform
	if err := json.Unmarshal(data, &jp); err != nil {
		return err
	}
	*p = *New()
	for _, jn := range jp.Nodes {
		speed := rat.Zero()
		if !jn.Router && jn.Speed != "" {
			s, err := rat.Parse(jn.Speed)
			if err != nil {
				return fmt.Errorf("graph: node %q: %w", jn.Name, err)
			}
			speed = s
		}
		if _, err := p.add(jn.Name, speed, jn.Router); err != nil {
			return err
		}
	}
	for _, je := range jp.Edges {
		from, ok := p.Lookup(je.From)
		if !ok {
			return fmt.Errorf("graph: edge references unknown node %q", je.From)
		}
		to, ok := p.Lookup(je.To)
		if !ok {
			return fmt.Errorf("graph: edge references unknown node %q", je.To)
		}
		cost, err := rat.Parse(je.Cost)
		if err != nil {
			return fmt.Errorf("graph: edge %s→%s: %w", je.From, je.To, err)
		}
		if err := p.addEdge(from, to, cost); err != nil {
			return err
		}
	}
	return nil
}

// String summarizes the platform.
func (p *Platform) String() string {
	names := make([]string, len(p.nodes))
	for i, n := range p.nodes {
		names[i] = n.Name
	}
	sort.Strings(names)
	return fmt.Sprintf("platform{%d nodes, %d edges: %s}", len(p.nodes), len(p.edges), strings.Join(names, ","))
}
