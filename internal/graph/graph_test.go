package graph

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/rat"
)

// line builds Ps → Pa → P0 with unit costs.
func line(t *testing.T) (*Platform, NodeID, NodeID, NodeID) {
	t.Helper()
	p := New()
	s := p.AddNode("Ps", rat.One())
	a := p.AddRouter("Pa")
	z := p.AddNode("P0", rat.One())
	p.AddEdge(s, a, rat.One())
	p.AddEdge(a, z, rat.One())
	return p, s, a, z
}

func TestAddAndLookup(t *testing.T) {
	p, s, a, z := line(t)
	if p.NumNodes() != 3 || p.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if id, ok := p.Lookup("Pa"); !ok || id != a {
		t.Errorf("Lookup(Pa) = %v, %v", id, ok)
	}
	if p.MustLookup("Ps") != s {
		t.Error("MustLookup(Ps) wrong")
	}
	if !p.Node(a).Router {
		t.Error("Pa should be a router")
	}
	if p.Node(z).Router {
		t.Error("P0 should not be a router")
	}
}

func TestMustLookupPanics(t *testing.T) {
	p, _, _, _ := line(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup(unknown) did not panic")
		}
	}()
	p.MustLookup("nope")
}

func TestDuplicateNodePanics(t *testing.T) {
	p := New()
	p.AddNode("x", rat.One())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node did not panic")
		}
	}()
	p.AddNode("x", rat.One())
}

func TestEdgeValidation(t *testing.T) {
	p := New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())

	for name, f := range map[string]func(){
		"self-loop":      func() { p.AddEdge(a, a, rat.One()) },
		"zero cost":      func() { p.AddEdge(a, b, rat.Zero()) },
		"negative cost":  func() { p.AddEdge(a, b, rat.Int(-1)) },
		"unknown target": func() { p.AddEdge(a, NodeID(99), rat.One()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}

	p.AddEdge(a, b, rat.One())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate edge did not panic")
			}
		}()
		p.AddEdge(a, b, rat.Int(2))
	}()
}

func TestAddLinkSymmetric(t *testing.T) {
	p := New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddLink(a, b, rat.New(3, 2))
	if !rat.Eq(p.Cost(a, b), rat.New(3, 2)) || !rat.Eq(p.Cost(b, a), rat.New(3, 2)) {
		t.Error("AddLink did not create both directions")
	}
}

func TestInOutEdges(t *testing.T) {
	p, s, a, z := line(t)
	if got := p.OutEdges(s); len(got) != 1 || got[0].To != a {
		t.Errorf("OutEdges(Ps) = %v", got)
	}
	if got := p.InEdges(z); len(got) != 1 || got[0].From != a {
		t.Errorf("InEdges(P0) = %v", got)
	}
	if got := p.InEdges(s); len(got) != 0 {
		t.Errorf("InEdges(Ps) = %v, want empty", got)
	}
}

func TestCostPanicsOnMissingEdge(t *testing.T) {
	p, s, _, z := line(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Cost on missing edge did not panic")
		}
	}()
	p.Cost(z, s)
}

func TestReachability(t *testing.T) {
	p, s, a, z := line(t)
	if !p.CanReach(s, z) {
		t.Error("Ps should reach P0")
	}
	if p.CanReach(z, s) {
		t.Error("P0 should not reach Ps (directed)")
	}
	reach := p.ReachableFrom(s)
	if len(reach) != 3 {
		t.Errorf("ReachableFrom(Ps) = %v, want all 3", reach)
	}
	_ = a
}

func TestHopDiameter(t *testing.T) {
	p, _, _, _ := line(t)
	if d := p.HopDiameter(); d != 2 {
		t.Errorf("HopDiameter = %d, want 2", d)
	}
	// Single node: diameter 0.
	q := New()
	q.AddNode("solo", rat.One())
	if d := q.HopDiameter(); d != 0 {
		t.Errorf("solo HopDiameter = %d, want 0", d)
	}
}

func TestParticipants(t *testing.T) {
	p, s, _, z := line(t)
	parts := p.Participants()
	if len(parts) != 2 || parts[0] != s || parts[1] != z {
		t.Errorf("Participants = %v", parts)
	}
}

func TestValidate(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Error("empty platform should fail validation")
	}

	p, _, _, _ := line(t)
	// Ps cannot be reached from P0 → participants not mutually connected.
	if err := p.Validate(); err == nil {
		t.Error("one-way platform should fail participant connectivity")
	}

	q := New()
	a := q.AddNode("a", rat.One())
	b := q.AddNode("b", rat.One())
	q.AddLink(a, b, rat.One())
	if err := q.Validate(); err != nil {
		t.Errorf("symmetric platform should validate: %v", err)
	}
}

func TestTaskTime(t *testing.T) {
	p := New()
	fast := p.AddNode("fast", rat.Int(4))
	r := p.AddRouter("r")
	if got := p.TaskTime(fast, rat.Int(10)); !rat.Eq(got, rat.New(5, 2)) {
		t.Errorf("TaskTime = %s, want 5/2", got.RatString())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TaskTime on router did not panic")
		}
	}()
	p.TaskTime(r, rat.One())
}

func TestJSONRoundTrip(t *testing.T) {
	p := New()
	s := p.AddNode("Ps", rat.New(7, 2))
	r := p.AddRouter("R")
	d := p.AddNode("Pd", rat.Int(3))
	p.AddEdge(s, r, rat.New(2, 3))
	p.AddLink(r, d, rat.One())

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var q Platform
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.NumNodes() != 3 || q.NumEdges() != 3 {
		t.Fatalf("round trip: %d nodes %d edges", q.NumNodes(), q.NumEdges())
	}
	qs := q.MustLookup("Ps")
	if !rat.Eq(q.Node(qs).Speed, rat.New(7, 2)) {
		t.Errorf("speed lost in round trip: %s", q.Node(qs).Speed.RatString())
	}
	qr := q.MustLookup("R")
	if !q.Node(qr).Router {
		t.Error("router flag lost")
	}
	e, ok := q.FindEdge(qs, qr)
	if !ok || !rat.Eq(e.Cost, rat.New(2, 3)) {
		t.Errorf("edge cost lost: %v %v", e, ok)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	// Every malformed input must come back as an error, never a panic —
	// scenario files are untrusted input to cmd/sscollect and
	// cmd/paperbench.
	cases := []struct {
		name string
		in   string
	}{
		{"unknown edge target", `{"nodes":[{"name":"a"}],"edges":[{"from":"a","to":"zzz","cost":"1"}]}`},
		{"unknown edge source", `{"nodes":[{"name":"a"}],"edges":[{"from":"zzz","to":"a","cost":"1"}]}`},
		{"bad speed", `{"nodes":[{"name":"a","speed":"x"}],"edges":[]}`},
		{"bad cost", `{"nodes":[{"name":"a"},{"name":"b"}],"edges":[{"from":"a","to":"b","cost":"bad"}]}`},
		{"not json", `not json`},
		{"duplicate node", `{"nodes":[{"name":"a"},{"name":"a"}],"edges":[]}`},
		{"duplicate router", `{"nodes":[{"name":"a","router":true},{"name":"a","router":true}],"edges":[]}`},
		{"self-loop", `{"nodes":[{"name":"a"}],"edges":[{"from":"a","to":"a","cost":"1"}]}`},
		{"zero cost", `{"nodes":[{"name":"a"},{"name":"b"}],"edges":[{"from":"a","to":"b","cost":"0"}]}`},
		{"negative cost", `{"nodes":[{"name":"a"},{"name":"b"}],"edges":[{"from":"a","to":"b","cost":"-1/2"}]}`},
		{"duplicate edge", `{"nodes":[{"name":"a"},{"name":"b"}],"edges":[{"from":"a","to":"b","cost":"1"},{"from":"a","to":"b","cost":"2"}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("unmarshal panicked: %v", r)
				}
			}()
			var p Platform
			if err := json.Unmarshal([]byte(c.in), &p); err == nil {
				t.Errorf("unmarshal %q should fail", c.in)
			}
		})
	}
}

func TestMarshalCompactAndNestedAgree(t *testing.T) {
	// MarshalJSON must emit compact JSON so that top-level marshaling and
	// nesting inside a wrapper document produce the same bytes (a custom
	// marshaler returning indented output gets re-compacted by
	// encoding/json when nested, and double-indented by wrappers).
	p := New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.Int(2))
	p.AddLink(a, b, rat.New(1, 3))

	direct, err := p.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	top, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	if string(direct) != string(top) {
		t.Errorf("direct MarshalJSON and json.Marshal disagree:\n%s\nvs\n%s", direct, top)
	}
	nested, err := json.Marshal(struct {
		P *Platform `json:"p"`
	}{p})
	if err != nil {
		t.Fatalf("nested marshal: %v", err)
	}
	want := `{"p":` + string(top) + `}`
	if string(nested) != want {
		t.Errorf("nested serialization disagrees with top-level:\n%s\nvs\n%s", nested, want)
	}
}

func TestDOT(t *testing.T) {
	p := New()
	a := p.AddNode("a", rat.One())
	b := p.AddRouter("b")
	c := p.AddNode("c", rat.Int(2))
	p.AddLink(a, b, rat.One())
	p.AddEdge(b, c, rat.New(1, 2))
	dot := p.DOT()
	for _, want := range []string{"digraph", `"a"`, `"b"`, "dir=both", `"1/2"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestString(t *testing.T) {
	p, _, _, _ := line(t)
	s := p.String()
	if !strings.Contains(s, "3 nodes") || !strings.Contains(s, "2 edges") {
		t.Errorf("String = %q", s)
	}
}

func TestReachabilityCacheInvalidation(t *testing.T) {
	p := New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	c := p.AddNode("c", rat.One())
	p.AddEdge(a, b, rat.One())
	p.Preindex() // warm every closure, then mutate under it
	if !p.CanReach(a, b) || p.CanReach(a, c) {
		t.Fatal("wrong reachability before mutation")
	}
	p.AddEdge(b, c, rat.One())
	if !p.CanReach(a, c) {
		t.Error("AddEdge did not invalidate the cached closure")
	}
	d := p.AddNode("d", rat.One())
	if p.CanReach(a, d) {
		t.Error("new node reported reachable")
	}
	p.AddEdge(c, d, rat.One())
	if !p.CanReach(a, d) {
		t.Error("closure not recomputed after growth")
	}
	if got := p.ReachableFrom(a); len(got) != 4 {
		t.Errorf("ReachableFrom(a) = %v, want all 4 nodes", got)
	}
}
