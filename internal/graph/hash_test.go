package graph

import (
	"encoding/json"
	"testing"

	"repro/internal/rat"
)

// twoNodePlatform builds src→dst with one link, the smallest platform the
// hash tests need.
func twoNodePlatform(t *testing.T) *Platform {
	t.Helper()
	p := New()
	src := p.AddNode("src", rat.New(1, 1))
	dst := p.AddNode("dst", rat.New(2, 3))
	p.AddEdge(src, dst, rat.New(1, 4))
	return p
}

func TestContentHashStableAcrossFieldOrder(t *testing.T) {
	// The same platform serialized with JSON object fields in different
	// orders (and different whitespace) must decode to the same canonical
	// form and therefore the same hash.
	doc1 := `{"nodes":[{"name":"src","speed":"1"},{"name":"dst","speed":"2/3"}],` +
		`"edges":[{"from":"src","to":"dst","cost":"1/4"}]}`
	doc2 := `{
		"edges": [ {"cost": "1/4", "to": "dst", "from": "src"} ],
		"nodes": [ {"speed": "1", "name": "src"}, {"router": false, "speed": "2/3", "name": "dst"} ]
	}`
	p1, p2 := New(), New()
	if err := json.Unmarshal([]byte(doc1), p1); err != nil {
		t.Fatalf("unmarshal doc1: %v", err)
	}
	if err := json.Unmarshal([]byte(doc2), p2); err != nil {
		t.Fatalf("unmarshal doc2: %v", err)
	}
	h1, err := p1.ContentHash()
	if err != nil {
		t.Fatalf("hash p1: %v", err)
	}
	h2, err := p2.ContentHash()
	if err != nil {
		t.Fatalf("hash p2: %v", err)
	}
	if h1 != h2 {
		t.Fatalf("hashes differ across field order: %x vs %x", h1, h2)
	}

	// And the built-in-memory platform with the same content agrees too.
	h3, err := twoNodePlatform(t).ContentHash()
	if err != nil {
		t.Fatalf("hash built platform: %v", err)
	}
	if h1 != h3 {
		t.Fatalf("decoded and built platforms hash differently: %x vs %x", h1, h3)
	}
}

func TestContentHashDistinguishesContent(t *testing.T) {
	base, err := twoNodePlatform(t).ContentHash()
	if err != nil {
		t.Fatal(err)
	}

	// Different edge cost.
	p := New()
	src := p.AddNode("src", rat.New(1, 1))
	dst := p.AddNode("dst", rat.New(2, 3))
	p.AddEdge(src, dst, rat.New(1, 5))
	h, err := p.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if h == base {
		t.Fatal("platforms with different edge costs hash equally")
	}

	// Different node insertion order: IDs shift, so specs are not
	// interchangeable and the hash must differ.
	q := New()
	qd := q.AddNode("dst", rat.New(2, 3))
	qs := q.AddNode("src", rat.New(1, 1))
	q.AddEdge(qs, qd, rat.New(1, 4))
	h, err = q.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if h == base {
		t.Fatal("platforms with different node insertion order hash equally")
	}
}

func TestContentHashRoundTrip(t *testing.T) {
	// Marshal → unmarshal must preserve the hash (the session-sharing
	// contract of sweep and serve).
	p := twoNodePlatform(t)
	before, err := p.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q := New()
	if err := json.Unmarshal(data, q); err != nil {
		t.Fatal(err)
	}
	after, err := q.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("hash changed across JSON round trip: %x vs %x", before, after)
	}
}

func TestContentHashNilPlatform(t *testing.T) {
	var p *Platform
	if _, err := p.ContentHash(); err == nil {
		t.Fatal("nil platform hashed without error")
	}
}
