// http.go is the HTTP surface of the serving layer: POST /solve (one
// Scenario in, one Report out), POST /sweep (JSONL scenarios in, JSONL
// sweep records out, streamed), GET /healthz (readiness, drain-aware) and
// GET /metrics (JSON snapshot or Prometheus text). Every failure is a
// structured JSON error object with a stable code and the matching HTTP
// status — 400 malformed/unsolvable, 413 oversized, 503 backpressure/
// draining, 504 deadline, 500 internal solver fault.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	steadystate "repro"
	"repro/internal/sweep"
)

// Handler returns the daemon's HTTP API, wrapped with the request
// observability edge (request IDs and, when configured, slog request
// logs).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.withObservability(mux)
}

// traceWanted reports whether the request opted into solve tracing.
func traceWanted(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1"
}

// annotateTrace returns a copy of rep whose trace carries the request's
// ID and replay marker. The cached Report is shared across requests and
// must never be mutated, so the trace and report headers are copied; the
// span tree itself is immutable after the solve and is shared.
func annotateTrace(rep *steadystate.Report, id string, replayed bool) *steadystate.Report {
	if rep.Trace == nil {
		return rep
	}
	tr := *rep.Trace
	tr.ID = id
	tr.Replayed = replayed
	out := *rep
	out.Trace = &tr
	return &out
}

// writeJSON writes v as a compact JSON body with a trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the fixed response types; keep the connection
		// coherent anyway.
		fmt.Fprintf(w, `{"error":{"code":%q,"message":%q}}`+"\n", CodeInternal, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}

// errorBody is the wire form of a ServiceError.
type errorBody struct {
	Error *ServiceError `json:"error"`
}

// writeError maps an error to its structured JSON body and status.
// Non-ServiceError errors are reported as 500 internal.
func writeError(w http.ResponseWriter, err error) {
	var se *ServiceError
	if !errors.As(err, &se) {
		se = &ServiceError{Status: 500, Code: CodeInternal, Message: err.Error()}
	}
	if se.Status == 503 {
		// Backpressure responses tell clients when to come back.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, se.Status, errorBody{Error: se})
}

// requireMethod answers 405 (with Allow) unless the request uses the
// given method.
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: &ServiceError{
		Code:    CodeMethodNotAllowed,
		Message: fmt.Sprintf("%s requires %s", r.URL.Path, method),
	}})
	return false
}

// requestTimeout resolves the per-request deadline: the ?timeout= query
// parameter (a Go duration, capped at MaxSolveTimeout) or the configured
// default. A zero return means no deadline.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		if s.cfg.DefaultSolveTimeout > 0 {
			return s.cfg.DefaultSolveTimeout, nil
		}
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q (want a positive Go duration, e.g. 30s)", raw)
	}
	if d > s.cfg.MaxSolveTimeout {
		d = s.cfg.MaxSolveTimeout
	}
	return d, nil
}

// readBody reads the request body under the MaxBodyBytes limit,
// translating overflow into the structured 413.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.metrics.badRequest()
			return nil, errBodyTooLarge(s.cfg.MaxBodyBytes)
		}
		s.metrics.badRequest()
		return nil, errBadScenario(fmt.Errorf("read body: %w", err))
	}
	return data, nil
}

// handleSolve answers POST /solve: a Scenario JSON body in, the solved
// Report out. Cache hits are marked with the X-Cache header and skip the
// queue entirely.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	data, err := s.readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	sc := &steadystate.Scenario{}
	if err := json.Unmarshal(data, sc); err != nil {
		s.metrics.badRequest()
		writeError(w, errBadScenario(fmt.Errorf("parse scenario: %w", err)))
		return
	}
	timeout, err := s.requestTimeout(r)
	if err != nil {
		s.metrics.badRequest()
		writeError(w, errBadScenario(err))
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	trace := traceWanted(r)
	rep, cached, err := s.solve(ctx, sc, false, trace)
	if err != nil {
		writeError(w, err)
		return
	}
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if trace {
		rep = annotateTrace(rep, RequestID(r.Context()), cached)
	}
	writeJSON(w, http.StatusOK, rep)
}

// sweepLine is the optional wrapper form of one /sweep input line:
// {"name":…, "scenario":{…}}. A bare Scenario object is also accepted
// (its name defaults to the line number).
type sweepLine struct {
	Name     string          `json:"name"`
	Scenario json.RawMessage `json:"scenario"`
}

// handleSweep answers POST /sweep: a JSONL stream of scenarios in, a
// JSONL stream of sweep Records out (the same record format cmd/sweep
// streams), one line per scenario in completion order. Admission blocks
// when the queue is full, so reading the request body itself applies
// backpressure to the producer. Malformed lines become error records;
// they never abort the stream.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	timeout, err := s.requestTimeout(r)
	if err != nil {
		s.metrics.badRequest()
		writeError(w, errBadScenario(err))
		return
	}
	trace := traceWanted(r)

	// Records are flushed while the scanner below is still reading the
	// request body. Without full duplex, net/http's HTTP/1 server closes
	// the unread body at the first response write, silently truncating
	// every batch larger than what the server had already buffered — the
	// backpressure design needs the body read to outlive response writes.
	body := io.Reader(r.Body)
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		// A transport that cannot interleave (e.g. a test recorder):
		// buffer the whole stream up front. Correct, just without the
		// producer-side backpressure.
		data, rerr := io.ReadAll(body)
		if rerr != nil {
			s.metrics.badRequest()
			writeError(w, errBadScenario(fmt.Errorf("read stream: %w", rerr)))
			return
		}
		body = bytes.NewReader(data)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex // serializes record writes
	emit := func(rec sweep.Record) {
		line, err := json.Marshal(rec)
		if err != nil {
			return
		}
		mu.Lock()
		w.Write(append(line, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	// The window bounds lines in flight beyond the queue itself, so a
	// huge batch cannot hold one goroutine per line.
	window := make(chan struct{}, s.cfg.QueueDepth)
	scanner := bufio.NewScanner(body)
	scanner.Buffer(nil, int(s.cfg.MaxBodyBytes))
	lineNo := 0
	for scanner.Scan() {
		raw := scanner.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		lineNo++
		name := fmt.Sprintf("line-%04d", lineNo)

		var wrapped sweepLine
		payload := append([]byte(nil), raw...)
		if err := json.Unmarshal(payload, &wrapped); err == nil && len(wrapped.Scenario) > 0 {
			if wrapped.Name != "" {
				name = wrapped.Name
			}
			payload = wrapped.Scenario
		}
		sc := &steadystate.Scenario{}
		if err := json.Unmarshal(payload, sc); err != nil {
			s.metrics.badRequest()
			emit(sweep.Record{Name: name, Error: fmt.Sprintf("parse %s: %v", name, err)})
			continue
		}

		window <- struct{}{}
		wg.Add(1)
		go func(name string, sc *steadystate.Scenario) {
			defer wg.Done()
			defer func() { <-window }()
			ctx := r.Context()
			if timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			rep, cached, err := s.solve(ctx, sc, true, trace)
			if err != nil {
				emit(sweep.Record{Name: name, Error: err.Error()})
				return
			}
			if trace {
				rep = annotateTrace(rep, RequestID(r.Context()), cached)
			}
			emit(sweep.Record{Name: name, SolveMS: rep.SolveMS, LPNonZeros: rep.LPNonZeros, Report: rep})
		}(name, sc)
	}
	wg.Wait()
	if err := scanner.Err(); err != nil {
		s.metrics.badRequest()
		emit(sweep.Record{Name: fmt.Sprintf("line-%04d", lineNo+1),
			Error: fmt.Sprintf("read stream: %v", err)})
	}
}

// healthBody is the /healthz response.
type healthBody struct {
	Status string `json:"status"`
}

// handleHealthz answers GET /healthz: 200 {"status":"ok"} while serving,
// 503 {"status":"draining"} once Drain has been called — the readiness
// flip that tells load balancers to stop routing here during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, healthBody{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, healthBody{Status: "ok"})
}

// handleMetrics answers GET /metrics: the MetricsSnapshot as indented
// JSON (the CI artifact format), or Prometheus text exposition with
// ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	snap := s.metrics.Snapshot()
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		snap.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		writeError(w, err)
		return
	}
	w.Write(append(data, '\n'))
}
