package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	steadystate "repro"
	"repro/internal/sweep"
)

// newTestServer starts a Server plus an httptest front end; both are torn
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJSON posts body to url and returns the response with its body read.
func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, data
}

// scenarioJSON marshals a small scenario for posting.
func scenarioJSON(t *testing.T, n int) []byte {
	t.Helper()
	data, err := json.Marshal(testScenario(t, n))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func decodeError(t *testing.T, data []byte) *ServiceError {
	t.Helper()
	var body errorBody
	if err := json.Unmarshal(data, &body); err != nil || body.Error == nil {
		t.Fatalf("response is not a structured error: %q (%v)", data, err)
	}
	return body.Error
}

func TestHTTPErrorTable(t *testing.T) {
	// One platform with an unreachable spec for the unsolvable case.
	unsolvable := func() []byte {
		p := steadystate.NewPlatform()
		a := p.AddNode("a", steadystate.R(1, 1))
		b := p.AddNode("b", steadystate.R(1, 1))
		// No link a→b: scatter cannot reach its target.
		data, err := json.Marshal(&steadystate.Scenario{
			Platform: p, Spec: steadystate.ScatterSpec(a, b),
		})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}()

	_, ts := newTestServer(t, Config{Workers: 2, MaxBodyBytes: 4096})
	cases := []struct {
		name   string
		method string
		path   string
		body   []byte
		status int
		code   string
	}{
		{"solve wrong method", http.MethodGet, "/solve", nil, 405, "method_not_allowed"},
		{"sweep wrong method", http.MethodGet, "/sweep", nil, 405, "method_not_allowed"},
		{"healthz wrong method", http.MethodPost, "/healthz", nil, 405, "method_not_allowed"},
		{"metrics wrong method", http.MethodPost, "/metrics", nil, 405, "method_not_allowed"},
		{"malformed json", http.MethodPost, "/solve", []byte(`{"platform":`), 400, "bad_scenario"},
		{"empty object", http.MethodPost, "/solve", []byte(`{}`), 400, "bad_scenario"},
		{"oversized body", http.MethodPost, "/solve", bytes.Repeat([]byte("x"), 8192), 413, "body_too_large"},
		{"bad timeout", http.MethodPost, "/solve?timeout=banana", scenarioJSON(t, 0), 400, "bad_scenario"},
		{"negative timeout", http.MethodPost, "/solve?timeout=-5s", scenarioJSON(t, 0), 400, "bad_scenario"},
		{"instant deadline", http.MethodPost, "/solve?timeout=1ns", scenarioJSON(t, 0), 504, "deadline_exceeded"},
		{"unsolvable spec", http.MethodPost, "/solve", unsolvable, 400, "unsolvable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status: got %d want %d (body %q)", resp.StatusCode, tc.status, data)
			}
			if se := decodeError(t, data); se.Code != tc.code {
				t.Fatalf("code: got %q want %q (body %q)", se.Code, tc.code, data)
			}
		})
	}
}

func TestHTTPCacheHitBitIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	body := scenarioJSON(t, 1)

	resp1, cold := postJSON(t, ts.URL+"/solve", body)
	if resp1.StatusCode != 200 {
		t.Fatalf("cold solve: %d %q", resp1.StatusCode, cold)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold X-Cache: got %q want miss", got)
	}
	resp2, hot := postJSON(t, ts.URL+"/solve", body)
	if resp2.StatusCode != 200 {
		t.Fatalf("hot solve: %d %q", resp2.StatusCode, hot)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("hot X-Cache: got %q want hit", got)
	}
	// The cached response serializes the very same Report, so the bytes —
	// including the measured solve_ms — are identical.
	if !bytes.Equal(cold, hot) {
		t.Fatalf("cache hit diverged from cold solve:\ncold: %s\nhot:  %s", cold, hot)
	}
	snap := s.metrics.Snapshot()
	if snap.Solves != 1 || snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Fatalf("metrics after hot+cold: %+v", snap)
	}

	// The JSON snapshot endpoint reflects the same counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if got.Solves != 1 || got.CacheHits != 1 {
		t.Fatalf("/metrics: %+v", got)
	}
}

func TestHTTPHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz while serving: %d", resp.StatusCode)
	}

	s.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	var hb healthBody
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil || hb.Status != "draining" {
		t.Fatalf("healthz body: %+v %v", hb, err)
	}

	resp2, data := postJSON(t, ts.URL+"/solve", scenarioJSON(t, 0))
	if resp2.StatusCode != 503 {
		t.Fatalf("solve while draining: %d %q", resp2.StatusCode, data)
	}
	if se := decodeError(t, data); se.Code != "draining" {
		t.Fatalf("solve while draining code: %q", se.Code)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestHTTPSweepJSONL(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	var in bytes.Buffer
	in.Write(scenarioJSON(t, 0)) // bare scenario → line-0001
	in.WriteString("\n\n")       // blank line is skipped
	wrapped, err := json.Marshal(sweepLine{Name: "named-one", Scenario: scenarioJSON(t, 1)})
	if err != nil {
		t.Fatal(err)
	}
	in.Write(wrapped)
	in.WriteString("\n{\"platform\": broken\n") // malformed → error record

	resp, err := http.Post(ts.URL+"/sweep", "application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sweep status: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("sweep content type: %q", got)
	}

	recs := map[string]sweep.Record{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec sweep.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad record line %q: %v", sc.Text(), err)
		}
		recs[rec.Name] = rec
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %v", len(recs), recs)
	}
	if rec := recs["line-0001"]; rec.Error != "" || rec.Report == nil {
		t.Fatalf("bare line record: %+v", rec)
	}
	if rec := recs["named-one"]; rec.Error != "" || rec.Report == nil {
		t.Fatalf("wrapped line record: %+v", rec)
	}
	if rec := recs["line-0003"]; rec.Error == "" || rec.Report != nil {
		t.Fatalf("malformed line record: %+v", rec)
	}
}

// TestHTTPSweepStreamsFullDuplex drives /sweep interactively: send one
// line, read its record back, send the next. After the first flushed
// record the server must keep reading the request body — without full
// duplex, net/http's HTTP/1 server closes the unread body at the first
// response write and every later line is silently dropped (the batch
// truncation regression).
func TestHTTPSweepStreamsFullDuplex(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	pr, pw := io.Pipe()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")

	type result struct {
		resp *http.Response
		err  error
	}
	respc := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		respc <- result{resp, err}
	}()
	writeLine := func(n int) {
		if _, err := pw.Write(append(scenarioJSON(t, n), '\n')); err != nil {
			t.Fatalf("write line %d: %v", n, err)
		}
	}

	writeLine(0) // Do returns once the first record's headers are flushed
	res := <-respc
	if res.err != nil {
		t.Fatal(res.err)
	}
	defer res.resp.Body.Close()
	if res.resp.StatusCode != 200 {
		t.Fatalf("sweep status: %d", res.resp.StatusCode)
	}

	const lines = 6
	br := bufio.NewReader(res.resp.Body)
	for i := 0; i < lines; i++ {
		// Record i is read before line i+1 is sent, so every iteration
		// past the first exercises body reads after response writes.
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		var rec sweep.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("record %d %q: %v", i, line, err)
		}
		if rec.Error != "" || rec.Report == nil {
			t.Fatalf("record %d is not a solve record: %+v", i, rec)
		}
		if i+1 < lines {
			writeLine(i + 1)
		}
	}
	pw.Close()
	if extra, err := br.ReadBytes('\n'); err != io.EOF {
		t.Fatalf("stream did not end cleanly: %q (err %v)", extra, err)
	}
}

// normalizeReportJSON canonicalizes a Report's JSON for comparison: the
// wall-clock solve_ms measurement is dropped, keys are sorted by the map
// round trip. Everything else must match byte for byte.
func normalizeReportJSON(t *testing.T, data []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("normalize report %q: %v", data, err)
	}
	delete(m, "solve_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestHTTPDeterminismVsSweep is the determinism anchor of the serving
// layer: every corpus scenario served through /solve must produce the same
// Report (modulo the solve_ms measurement) as the batch engine, a repeat
// submission must be a pure cache hit, and the hot pass must be far
// cheaper than the cold one.
func TestHTTPDeterminismVsSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the full testdata corpus twice")
	}
	jobs, err := sweep.LoadDir("../../testdata/sweep", "*.json")
	if err != nil {
		t.Fatal(err)
	}

	// Batch-engine ground truth via the streaming record log.
	var log bytes.Buffer
	if _, err := sweep.Run(context.Background(), jobs, sweep.Options{Jobs: 4, JSONL: &log}); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	sc := bufio.NewScanner(&log)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		var rec sweep.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Error != "" {
			continue
		}
		data, err := json.Marshal(rec.Report)
		if err != nil {
			t.Fatal(err)
		}
		want[rec.Name] = normalizeReportJSON(t, data)
	}
	if len(want) == 0 {
		t.Fatal("sweep produced no successful records")
	}

	s, ts := newTestServer(t, Config{Workers: 4})
	p50 := func(d []time.Duration) time.Duration {
		sorted := append([]time.Duration(nil), d...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[len(sorted)/2]
	}

	var coldTimes, hotTimes []time.Duration
	serve := func(pass string, times *[]time.Duration) {
		for _, job := range jobs {
			raw, err := os.ReadFile(job.Path)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			resp, body := postJSON(t, ts.URL+"/solve", raw)
			elapsed := time.Since(start)
			if job.Err != nil {
				if resp.StatusCode != 400 {
					t.Fatalf("%s %s: malformed corpus file got %d, want 400", pass, job.Name, resp.StatusCode)
				}
				continue
			}
			if resp.StatusCode != 200 {
				t.Fatalf("%s %s: %d %q", pass, job.Name, resp.StatusCode, body)
			}
			*times = append(*times, elapsed)
			if got := normalizeReportJSON(t, body); got != want[job.Name] {
				t.Fatalf("%s %s: served report diverged from sweep\nserve: %s\nsweep: %s",
					pass, job.Name, got, want[job.Name])
			}
			wantCache := "miss"
			if pass == "hot" {
				wantCache = "hit"
			}
			if got := resp.Header.Get("X-Cache"); got != wantCache {
				t.Fatalf("%s %s: X-Cache got %q want %q", pass, job.Name, got, wantCache)
			}
		}
	}
	serve("cold", &coldTimes)
	coldSolves := s.metrics.Snapshot().Solves
	serve("hot", &hotTimes)

	snap := s.metrics.Snapshot()
	if snap.Solves != coldSolves {
		t.Fatalf("hot pass ran %d extra LP solves", snap.Solves-coldSolves)
	}
	if snap.CacheHits != uint64(len(want)) {
		t.Fatalf("cache hits: got %d want %d", snap.CacheHits, len(want))
	}

	coldP50, hotP50 := p50(coldTimes), p50(hotTimes)
	t.Logf("p50 cold %v hot %v over %d scenarios", coldP50, hotP50, len(coldTimes))
	if hotP50 > coldP50 {
		t.Fatalf("cache hits slower than cold solves: hot p50 %v > cold p50 %v", hotP50, coldP50)
	}
	// The ≥10× bound only binds when the cold solves are big enough for
	// wall clocks to be meaningful; tiny corpora are covered by the
	// no-extra-solves check above.
	if coldP50 >= 5*time.Millisecond && hotP50*10 > coldP50 {
		t.Fatalf("cache hit p50 %v not 10x below cold p50 %v", hotP50, coldP50)
	}
}

// TestHTTPRaceStress hammers the daemon from many goroutines with mixed
// scenarios, tiny deadlines and tolerable backpressure; run under -race in
// CI it pins down the locking of queue, caches and metrics.
func TestHTTPRaceStress(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2})
	bodies := [][]byte{
		scenarioJSON(t, 0),
		scenarioJSON(t, 1),
		scenarioJSON(t, 2),
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				url := ts.URL + "/solve"
				if (g+i)%4 == 0 {
					url += "?timeout=1ns" // forced 504s mix cancellation in
				}
				resp, err := http.Post(url, "application/json", bytes.NewReader(bodies[(g+i)%len(bodies)]))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case 200, 400, 503, 504:
				default:
					t.Errorf("goroutine %d: unexpected status %d", g, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()

	// The metrics endpoint stays coherent under load.
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(data), "solverd_solves_total") {
		t.Fatalf("prometheus exposition missing counters:\n%s", data)
	}
}

// TestHTTPSweepMatchesSolve pins the two endpoints to each other: the
// record a /sweep line produces carries the same Report /solve returns.
func TestHTTPSweepMatchesSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := scenarioJSON(t, 2)

	_, solveBody := postJSON(t, ts.URL+"/solve", body)
	resp, err := http.Post(ts.URL+"/sweep", "application/x-ndjson", bytes.NewReader(append(body, '\n')))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	line, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var rec sweep.Record
	if err := json.Unmarshal(bytes.TrimSpace(line), &rec); err != nil {
		t.Fatalf("sweep record %q: %v", line, err)
	}
	if rec.Error != "" {
		t.Fatalf("sweep record error: %s", rec.Error)
	}
	recReport, err := json.Marshal(rec.Report)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizeReportJSON(t, recReport), normalizeReportJSON(t, solveBody); got != want {
		t.Fatalf("sweep and solve reports diverged:\nsweep: %s\nsolve: %s", got, want)
	}
}
