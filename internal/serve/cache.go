// cache.go is the serving layer's LRU: a deterministic fixed-capacity
// recency cache shared by the report cache ((platform-hash, spec-key) →
// *steadystate.Report) and the session pool (platform-hash → *Solver).
// Determinism matters for testability: eviction order is a pure function
// of the Get/Put sequence, never of timing.
package serve

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache. Get marks
// recency; Put inserts or refreshes and evicts the least recently used
// entry once the capacity is exceeded. All methods are safe for
// concurrent use.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// lruEntry is one cached key/value pair.
type lruEntry struct {
	key string
	val any
}

// newLRU returns an empty cache holding at most capacity entries;
// capacity ≤ 0 yields a cache that stores nothing (every Get misses).
func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts the value (or refreshes an existing key), evicting the
// least recently used entry when the cache is over capacity.
func (c *lruCache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, val)
}

// GetOrPut returns the cached value for key, or — atomically with the
// lookup — stores and returns make()'s result. The session pool uses it
// so concurrent requests for one platform share a single Solver.
func (c *lruCache) GetOrPut(key string, make func() any) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry).val
	}
	val := make()
	c.put(key, val)
	return val
}

// put is the lock-held insertion core of Put and GetOrPut.
func (c *lruCache) put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Keys returns the cached keys from most to least recently used — the
// eviction order reversed. Test and introspection helper.
func (c *lruCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruEntry).key)
	}
	return keys
}
