// log.go is the request-observability edge of the serving layer: every
// request gets a random ID (returned on X-Request-ID, carried through
// the handler context, and adopted as the trace ID of ?trace=1 solves),
// and — when the Config carries a Logger — one structured log/slog
// record per request with method, path, status, duration and that ID.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"
)

// requestIDKey carries the per-request ID through handler contexts.
type requestIDKey struct{}

// RequestID returns the ID minted for the request whose handler context
// this is, or "" outside a request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID mints a 16-hex-digit random ID. Randomness is sound here:
// request IDs are correlation handles between log lines and served
// traces, never part of a deterministic artifact — trace golden
// comparisons run on directly-solved traces, whose ID is empty.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// An unreadable entropy source should not fail the request; a
		// constant ID only costs log correlation.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the response status for the request log while
// delegating the writes. Unwrap keeps http.ResponseController features
// working through the wrapper — the /sweep handler's full-duplex
// upgrade reaches the real connection — and Flush preserves the
// streaming flushes the same handler depends on.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withObservability wraps the API mux with the request edge: mint the
// request ID, expose it to the client and the handlers, and emit the
// structured request log record once the handler returns.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := newRequestID()
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		if s.logger != nil {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Float64("dur_ms", msSince(start)),
			)
		}
	})
}
