package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	steadystate "repro"
	"repro/internal/lp"
)

// testScenario builds a tiny solvable scenario; n distinguishes cache
// keys (distinct target sets → distinct canonical spec keys).
func testScenario(t *testing.T, n int) *steadystate.Scenario {
	t.Helper()
	p := steadystate.NewPlatform()
	src := p.AddNode("src", steadystate.R(1, 1))
	var targets []steadystate.NodeID
	for i := 0; i <= n; i++ {
		dst := p.AddNode("dst"+string(rune('a'+i)), steadystate.R(1, 1))
		p.AddLink(src, dst, steadystate.R(1, 4))
		targets = append(targets, dst)
	}
	return &steadystate.Scenario{Platform: p, Spec: steadystate.ScatterSpec(src, targets...)}
}

// blockedServer returns an unstarted server whose solves block until the
// returned release func runs (or their context dies), plus a channel that
// receives one value per solve a worker picked up.
func blockedServer(cfg Config) (*Server, chan struct{}, func()) {
	s := newServer(cfg)
	picked := make(chan struct{}, 64)
	release := make(chan struct{})
	s.solveFn = func(ctx context.Context, _ *steadystate.Solver, _ *steadystate.Scenario, _ bool) (*steadystate.Report, error) {
		picked <- struct{}{}
		select {
		case <-release:
			return &steadystate.Report{Kind: steadystate.KindScatter, Throughput: "1"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.start()
	var once bool
	return s, picked, func() {
		if !once {
			once = true
			close(release)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	// One worker, queue depth one: the first solve occupies the worker,
	// the second fills the queue, the third is rejected with the
	// structured 503.
	s, picked, release := blockedServer(Config{Workers: 1, QueueDepth: 1, CacheSize: -1})
	defer func() { release(); s.Close() }()

	ctx := context.Background()
	type outcome struct {
		rep *steadystate.Report
		err error
	}
	results := make(chan outcome, 2)
	go func() {
		rep, _, err := s.Solve(ctx, testScenario(t, 0), false)
		results <- outcome{rep, err}
	}()
	<-picked // worker busy on solve 1

	go func() {
		rep, _, err := s.Solve(ctx, testScenario(t, 1), false)
		results <- outcome{rep, err}
	}()
	// Wait until solve 2 is parked in the queue.
	deadline := time.After(5 * time.Second)
	for len(s.queue) == 0 {
		select {
		case <-deadline:
			t.Fatal("second solve never reached the queue")
		case <-time.After(time.Millisecond):
		}
	}

	_, _, err := s.Solve(ctx, testScenario(t, 2), false)
	var se *ServiceError
	if !errors.As(err, &se) || se.Status != 503 || se.Code != "queue_full" {
		t.Fatalf("third solve: got %v, want structured 503 queue_full", err)
	}
	if got := s.metrics.Snapshot().QueueRejections; got != 1 {
		t.Fatalf("queue_rejections: got %d want 1", got)
	}

	release()
	for i := 0; i < 2; i++ {
		res := <-results
		if res.err != nil {
			t.Fatalf("blocked solve %d failed after release: %v", i, res.err)
		}
	}
}

func TestBlockingAdmissionWaits(t *testing.T) {
	// The batch discipline (block=true) waits for queue space instead of
	// rejecting.
	s, picked, release := blockedServer(Config{Workers: 1, QueueDepth: 1, CacheSize: -1})
	defer func() { release(); s.Close() }()

	done := make(chan error, 3)
	solve := func(n int) {
		_, _, err := s.Solve(context.Background(), testScenario(t, n), true)
		done <- err
	}
	go solve(0)
	<-picked
	go solve(1) // queued
	go solve(2) // blocked on admission — must NOT get a 503

	select {
	case err := <-done:
		t.Fatalf("a blocking solve returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatalf("blocking solve failed: %v", err)
		}
	}
}

func TestDeadlineExceeded(t *testing.T) {
	s, _, release := blockedServer(Config{Workers: 1, QueueDepth: 4, CacheSize: -1})
	defer func() { release(); s.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := s.Solve(ctx, testScenario(t, 0), false)
	var se *ServiceError
	if !errors.As(err, &se) || se.Status != 504 || se.Code != "deadline_exceeded" {
		t.Fatalf("got %v, want structured 504 deadline_exceeded", err)
	}
	if got := s.metrics.Snapshot().DeadlineExceeded; got == 0 {
		t.Fatal("deadline_exceeded counter did not move")
	}
}

func TestQueuedTaskSkippedWhenWaiterGone(t *testing.T) {
	// A task whose context dies while queued is answered without running
	// the solve: the worker pre-checks the context.
	s, picked, release := blockedServer(Config{Workers: 1, QueueDepth: 2, CacheSize: -1})
	defer func() { release(); s.Close() }()

	go s.Solve(context.Background(), testScenario(t, 0), false)
	<-picked // worker busy

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.Solve(ctx, testScenario(t, 1), false)
		errc <- err
	}()
	deadline := time.After(5 * time.Second)
	for len(s.queue) == 0 {
		select {
		case <-deadline:
			t.Fatal("solve never queued")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled queued solve returned success")
	}
	release()
	// The skipped task must not have reached solveFn: exactly one pickup
	// (the first solve) may follow.
	select {
	case <-picked:
		t.Fatal("canceled task was solved anyway")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	s.Drain()
	_, _, err := s.Solve(context.Background(), testScenario(t, 0), false)
	var se *ServiceError
	if !errors.As(err, &se) || se.Status != 503 || se.Code != "draining" {
		t.Fatalf("got %v, want structured 503 draining", err)
	}
	s.Close()
}

func TestCloseCompletesQueuedWork(t *testing.T) {
	// Close drains the queue: a queued task is solved, not dropped.
	s, picked, release := blockedServer(Config{Workers: 1, QueueDepth: 2, CacheSize: -1})

	errs := make(chan error, 2)
	go func() { _, _, err := s.Solve(context.Background(), testScenario(t, 0), false); errs <- err }()
	<-picked
	go func() { _, _, err := s.Solve(context.Background(), testScenario(t, 1), false); errs <- err }()
	deadline := time.After(5 * time.Second)
	for len(s.queue) == 0 {
		select {
		case <-deadline:
			t.Fatal("solve never queued")
		case <-time.After(time.Millisecond):
		}
	}
	release()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	s.Close() // must return: workers exit once the queue is closed and empty
}

// TestCloseDuringAdmissionDoesNotPanic is the regression test for the
// shutdown race: Close used to close the admission queue while a handler
// could still sit between the draining check and its queue send — a
// send-on-closed-channel panic under cmd/solverd's forced-shutdown path.
// The admission refcount closes that window; late arrivals get the
// structured draining 503 instead.
func TestCloseDuringAdmissionDoesNotPanic(t *testing.T) {
	for round := 0; round < 25; round++ {
		s := newServer(Config{Workers: 2, QueueDepth: 1, CacheSize: -1})
		s.solveFn = func(context.Context, *steadystate.Solver, *steadystate.Scenario, bool) (*steadystate.Report, error) {
			return &steadystate.Report{Kind: steadystate.KindScatter, Throughput: "1"}, nil
		}
		s.start()

		const goroutines = 8
		scenarios := make([]*steadystate.Scenario, goroutines)
		for g := range scenarios {
			scenarios[g] = testScenario(t, g%3)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				_, _, err := s.Solve(context.Background(), scenarios[g], g%2 == 0)
				errs <- err
			}(g)
		}
		close(start)
		s.Close() // races the admissions above
		wg.Wait()
		close(errs)
		for err := range errs {
			if err == nil {
				continue
			}
			var se *ServiceError
			if !errors.As(err, &se) {
				t.Fatalf("round %d: unstructured error %v", round, err)
			}
			switch se.Code {
			case "draining", "queue_full":
			default:
				t.Fatalf("round %d: unexpected error %v", round, err)
			}
		}
	}
}

// TestSolveErrorClassification pins the fault classes at the Solve
// boundary: recognized problem-level failures answer 400 unsolvable,
// unrecognized solver faults answer 500 internal.
func TestSolveErrorClassification(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"infeasible LP", fmt.Errorf("scatter: %w", lp.ErrInfeasible), 400, "unsolvable"},
		{"unbounded LP", fmt.Errorf("gossip: %w", lp.ErrUnbounded), 400, "unsolvable"},
		{"tagged unsolvable", fmt.Errorf("wrapped: %w", steadystate.ErrUnsolvable), 400, "unsolvable"},
		{"unsupported capability", fmt.Errorf("no schedule: %w", steadystate.ErrUnsupported), 400, "unsolvable"},
		{"internal fault", errors.New("tableau corrupted"), 500, "internal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newServer(Config{Workers: 1, CacheSize: -1})
			s.solveFn = func(context.Context, *steadystate.Solver, *steadystate.Scenario, bool) (*steadystate.Report, error) {
				return nil, tc.err
			}
			s.start()
			defer s.Close()
			_, _, err := s.Solve(context.Background(), testScenario(t, 0), false)
			var se *ServiceError
			if !errors.As(err, &se) || se.Status != tc.status || se.Code != tc.code {
				t.Fatalf("got %v, want %d %s", err, tc.status, tc.code)
			}
		})
	}
}

func TestSolveRejectsBadScenarios(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	cases := []struct {
		name string
		sc   *steadystate.Scenario
	}{
		{"nil scenario", nil},
		{"no platform", &steadystate.Scenario{}},
		{"no spec", &steadystate.Scenario{Platform: steadystate.NewPlatform()}},
	}
	for _, tc := range cases {
		_, _, err := s.Solve(context.Background(), tc.sc, false)
		var se *ServiceError
		if !errors.As(err, &se) || se.Status != 400 {
			t.Fatalf("%s: got %v, want structured 400", tc.name, err)
		}
	}
	if got := s.metrics.Snapshot().BadRequests; got != uint64(len(cases)) {
		t.Fatalf("bad_requests: got %d want %d", got, len(cases))
	}
}

func TestSessionPoolSharesPlatforms(t *testing.T) {
	// Two scenarios over byte-identical platforms share one session; a
	// different platform gets its own.
	s := New(Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	a1, a2, b := testScenario(t, 0), testScenario(t, 0), testScenario(t, 1)
	// Distinct specs on the identical platform, so the second is not a
	// report-cache hit.
	a2.Spec = steadystate.BroadcastSpec(a2.Spec.Source, a2.Spec.Targets...)
	if _, _, err := s.Solve(ctx, a1, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(ctx, a2, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(ctx, b, false); err != nil {
		t.Fatal(err)
	}
	if got := s.sessions.Len(); got != 2 {
		t.Fatalf("session pool size: got %d want 2 (a1/a2 shared, b private)", got)
	}
}
