// Package serve is the solver-as-a-service layer behind cmd/solverd: it
// turns the steady-state library's session-ready pieces — concurrency-safe
// Solver sessions, JSON Scenario/Report serialization, context
// cancellation threaded into the exact simplex — into a long-running
// serving loop.
//
// The shape is a listener → admission queue → worker pool → cache
// pipeline:
//
//   - Admission: every scenario that misses the report cache enters a
//     bounded queue. The interactive endpoint (/solve) fails fast with a
//     structured 503 when the queue is full — backpressure the client can
//     retry on — while the batch endpoint (/sweep) blocks the producer,
//     throttling the upload itself.
//   - Deadlines: each request carries a deadline (the configured default,
//     or the request's own, capped by the configured maximum) covering
//     queue wait and solve; the context cancels the simplex between
//     pivots, so a deadline miss frees the worker promptly and answers a
//     structured 504.
//   - Worker pool: a fixed number of workers drain the queue into Solver
//     sessions pooled per platform content hash, so concurrent scenarios
//     sharing a topology share one memoized reachability index — the same
//     dedup contract as internal/sweep.
//   - Report cache: an LRU of (platform-hash, spec-key) → Report. A hit
//     returns the exact Report object computed by the cold solve —
//     bit-identical bytes, no LP work — so hot scenarios cost a map
//     lookup.
//   - Telemetry: counters, gauges and latency histograms (Metrics) back
//     the /metrics endpoint.
//
// Determinism is the correctness anchor: a scenario served through this
// layer produces a Report byte-identical (modulo the solve_ms
// measurement) to the same scenario swept through internal/sweep, and a
// cache hit returns the cold solve's Report verbatim.
package serve

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	steadystate "repro"
	"repro/internal/lp"
)

// Config sizes a Server. Zero values select the defaults.
type Config struct {
	// Workers is the solver pool size; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue; ≤ 0 means DefaultQueueDepth.
	// A full queue fails fast on /solve (503) and blocks on /sweep.
	QueueDepth int
	// CacheSize is the report-cache capacity in entries; 0 means
	// DefaultCacheSize, negative disables the cache.
	CacheSize int
	// SessionCacheSize bounds the per-platform Solver session pool; 0
	// means DefaultSessionCacheSize. Eviction only costs warmth: a new
	// session is built on the next request for that platform.
	SessionCacheSize int
	// BasisCacheSize bounds the warm-start basis cache shared by every
	// session: certified simplex bases keyed by problem shape, reused to
	// skip phase 1 when a structurally identical scenario arrives (a
	// perturbed platform, a re-submitted spec). 0 means
	// DefaultBasisCacheSize, negative disables warm starts. Warm starts
	// never change response bytes — reports stay bit-identical to cold
	// solves (modulo solve_ms and the warm_start telemetry fields).
	BasisCacheSize int
	// DefaultSolveTimeout is the per-request deadline applied when the
	// request does not carry one; 0 means DefaultSolveTimeoutValue,
	// negative means no default deadline.
	DefaultSolveTimeout time.Duration
	// MaxSolveTimeout caps request-supplied deadlines; 0 means
	// DefaultMaxSolveTimeout.
	MaxSolveTimeout time.Duration
	// MaxBodyBytes bounds a /solve request body and a single /sweep line;
	// 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Logger, when non-nil, receives one structured request-log record per
	// HTTP request (method, path, status, duration, request ID). Nil
	// disables request logging; request IDs are minted either way.
	Logger *slog.Logger
}

// The default Config values.
const (
	DefaultQueueDepth        = 64
	DefaultCacheSize         = 1024
	DefaultSessionCacheSize  = 64
	DefaultBasisCacheSize    = 1024
	DefaultSolveTimeoutValue = 2 * time.Minute
	DefaultMaxSolveTimeout   = 10 * time.Minute
	DefaultMaxBodyBytes      = 8 << 20
)

// withDefaults returns the config with zero values replaced by defaults.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.SessionCacheSize <= 0 {
		c.SessionCacheSize = DefaultSessionCacheSize
	}
	if c.BasisCacheSize == 0 {
		c.BasisCacheSize = DefaultBasisCacheSize
	}
	if c.DefaultSolveTimeout == 0 {
		c.DefaultSolveTimeout = DefaultSolveTimeoutValue
	}
	if c.MaxSolveTimeout <= 0 {
		c.MaxSolveTimeout = DefaultMaxSolveTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return c
}

// ServiceError is the structured error of the serving layer: an HTTP
// status, a stable machine-readable code, and a human message. Handlers
// serialize it as {"error":{"code":…,"message":…}}.
type ServiceError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *ServiceError) Error() string { return e.Code + ": " + e.Message }

// The stable wire error codes. These are API: clients key retry logic
// off CodeQueueFull vs CodeDraining and monitoring keys off
// CodeUnsolvable vs CodeInternal, so every code written to the wire
// must be one of these constants (the errcode analyzer enforces it).
const (
	// CodeBadScenario rejects a request whose scenario fails validation.
	CodeBadScenario = "bad_scenario"
	// CodeBodyTooLarge rejects a request body over MaxBodyBytes.
	CodeBodyTooLarge = "body_too_large"
	// CodeQueueFull refuses admission when the queue is at capacity.
	CodeQueueFull = "queue_full"
	// CodeDeadlineExceeded reports a request deadline hit while queued
	// or solving.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeUnsolvable reports a problem-level solver failure (the
	// client's scenario, not the server).
	CodeUnsolvable = "unsolvable"
	// CodeInternal reports an unrecognized server fault.
	CodeInternal = "internal"
	// CodeDraining refuses admission during graceful shutdown.
	CodeDraining = "draining"
	// CodeMethodNotAllowed rejects a request with the wrong HTTP method.
	CodeMethodNotAllowed = "method_not_allowed"
)

// The structured error constructors, one per failure class.
func errBadScenario(err error) *ServiceError {
	return &ServiceError{Status: 400, Code: CodeBadScenario, Message: err.Error()}
}
func errBodyTooLarge(limit int64) *ServiceError {
	return &ServiceError{Status: 413, Code: CodeBodyTooLarge,
		Message: fmt.Sprintf("request body exceeds %d bytes", limit)}
}
func errQueueFull(depth int) *ServiceError {
	return &ServiceError{Status: 503, Code: CodeQueueFull,
		Message: fmt.Sprintf("admission queue full (%d scenarios deep); retry later", depth)}
}
func errDeadline() *ServiceError {
	return &ServiceError{Status: 504, Code: CodeDeadlineExceeded,
		Message: "request deadline exceeded while queued or solving"}
}

// errSolve classifies a solver failure by fault. Recognized problem-level
// failures — invalid or impossible scenarios (steadystate.ErrUnsolvable),
// infeasible or unbounded LPs, unsupported capabilities — are the
// client's 400; anything unrecognized is a server fault and answers 500,
// telling clients a retry elsewhere may succeed and keeping error-rate
// monitoring honest.
func errSolve(err error) *ServiceError {
	if errors.Is(err, steadystate.ErrUnsolvable) ||
		errors.Is(err, steadystate.ErrUnsupported) ||
		errors.Is(err, lp.ErrInfeasible) || errors.Is(err, lp.ErrUnbounded) {
		return &ServiceError{Status: 400, Code: CodeUnsolvable, Message: err.Error()}
	}
	return &ServiceError{Status: 500, Code: CodeInternal, Message: err.Error()}
}
func errDraining() *ServiceError {
	return &ServiceError{Status: 503, Code: CodeDraining,
		Message: "server is draining; no new scenarios admitted"}
}

// CacheKey returns the scenario's identity in the serving layer: the
// platform content hash (hex) and the canonical spec key, joined. Two
// scenarios with equal keys produce bit-identical Reports, which is what
// makes the report cache sound.
func CacheKey(sc *steadystate.Scenario) (string, error) {
	h, err := sc.Platform.ContentHash()
	if err != nil {
		return "", err
	}
	specKey, err := sc.Spec.CanonicalKey()
	if err != nil {
		return "", fmt.Errorf("spec has no canonical form: %w", err)
	}
	return hex.EncodeToString(h[:]) + "|" + specKey, nil
}

// platformKeyOf extracts the platform-hash half of a cache key — the
// session-pool key.
func platformKeyOf(cacheKey string) string {
	for i := 0; i < len(cacheKey); i++ {
		if cacheKey[i] == '|' {
			return cacheKey[:i]
		}
	}
	return cacheKey
}

// task is one admitted solve traveling from the handler to a worker.
type task struct {
	ctx      context.Context
	scenario *steadystate.Scenario
	session  *steadystate.Solver
	key      string
	trace    bool
	enqueued time.Time
	// done receives exactly one result; buffered so a worker never blocks
	// on a waiter that gave up.
	done chan taskResult
}

// taskResult is a worker's answer to one task.
type taskResult struct {
	report *steadystate.Report
	err    error
}

// Server is one solver service instance: the admission queue, the worker
// pool, the session pool, the report cache and the telemetry. Create with
// New, expose with Handler, stop with Drain + Close.
type Server struct {
	cfg      Config
	queue    chan *task
	cache    *lruCache
	sessions *lruCache
	bases    *steadystate.BasisCache
	metrics  *Metrics
	workers  chan struct{} // closed when every worker has exited
	// The admission gate: draining refuses new admissions, admitters
	// counts handlers between admit() and their queue send. Close may only
	// close the queue once draining is set AND admitters has drained —
	// otherwise a handler that passed the gate could send on a closed
	// channel and panic.
	mu        sync.Mutex
	draining  bool
	admitters sync.WaitGroup
	closeOnce sync.Once
	// solveFn runs one admitted scenario on its session; tests substitute
	// it to make queue timing deterministic.
	solveFn func(ctx context.Context, session *steadystate.Solver, sc *steadystate.Scenario, trace bool) (*steadystate.Report, error)
	// logger receives the structured request log (nil: logging off).
	logger *slog.Logger
}

// New returns a running Server: workers are started and the handler
// returned by Handler can serve immediately.
func New(cfg Config) *Server {
	s := newServer(cfg)
	s.start()
	return s
}

// newServer builds the Server without starting its workers — the test
// seam that lets solveFn be replaced race-free.
func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *task, cfg.QueueDepth),
		cache:    newLRU(cfg.CacheSize),
		sessions: newLRU(cfg.SessionCacheSize),
		bases:    steadystate.NewBasisCache(cfg.BasisCacheSize),
		workers:  make(chan struct{}),
	}
	s.metrics = newMetrics(func() int { return len(s.queue) })
	s.solveFn = solveScenario
	s.logger = cfg.Logger
	return s
}

// start launches the worker pool.
func (s *Server) start() {
	done := make(chan struct{}, s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			s.worker()
		}()
	}
	go func() {
		for i := 0; i < s.cfg.Workers; i++ {
			<-done
		}
		close(s.workers)
	}()
}

// solveScenario is the production solveFn: solve the spec on the session
// and reduce the solution to its report, span-traced when asked.
func solveScenario(ctx context.Context, session *steadystate.Solver, sc *steadystate.Scenario, trace bool) (*steadystate.Report, error) {
	var opts []steadystate.SolveOption
	if trace {
		opts = append(opts, steadystate.WithTrace())
	}
	sol, err := session.Solve(ctx, sc.Spec, opts...)
	if err != nil {
		return nil, err
	}
	return sol.Report()
}

// worker drains the admission queue until it is closed.
func (s *Server) worker() {
	for t := range s.queue {
		s.metrics.observeQueueWait(msSince(t.enqueued))
		if err := t.ctx.Err(); err != nil {
			// The waiter's deadline fired while the task was queued;
			// don't burn a solve nobody is waiting for.
			t.done <- taskResult{err: err}
			continue
		}
		rep, err := s.solveFn(t.ctx, t.session, t.scenario, t.trace)
		if err != nil {
			t.done <- taskResult{err: err}
			continue
		}
		s.metrics.observeSolve(rep.SolveMS)
		switch {
		case rep.WarmStart:
			s.metrics.warmStart()
		case rep.WarmReject != "":
			s.metrics.warmReject()
		}
		s.cache.Put(t.key, rep)
		t.done <- taskResult{report: rep}
	}
}

// Metrics returns the server's telemetry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Drain marks the server as draining: /healthz flips to 503 (so load
// balancers stop routing here) and new scenarios are refused with a
// structured 503, while already-admitted solves run to completion. Call
// before http.Server.Shutdown; safe to call more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// isDraining reports whether Drain was called.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// admit reserves the right to enqueue one task, refusing once Drain has
// run. On success the caller owes one s.admitters.Done() when its queue
// send completes or is abandoned — the refcount Close waits on before
// closing the queue.
func (s *Server) admit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.admitters.Add(1)
	return true
}

// Close shuts the worker pool down, completing every queued solve first,
// and blocks until the last worker has exited. It is safe even while
// handlers are still running — cmd/solverd's forced-shutdown and
// listener-error paths call it with requests possibly live: admission is
// revoked first, handlers already past the gate finish their enqueues
// before the queue is closed, and later Solve calls get the structured
// draining error. Safe to call more than once.
func (s *Server) Close() {
	s.Drain()
	s.closeOnce.Do(func() {
		s.admitters.Wait()
		close(s.queue)
	})
	<-s.workers
}

// Solve resolves one scenario through the cache and the admission queue:
// the programmatic core of the POST /solve handler. The returned bool
// reports whether the report came from the cache. block selects the
// admission discipline: false fails fast with a 503 ServiceError when the
// queue is full, true waits for queue space (or the context). Every error
// is a *ServiceError.
func (s *Server) Solve(ctx context.Context, sc *steadystate.Scenario, block bool) (*steadystate.Report, bool, error) {
	return s.solve(ctx, sc, block, false)
}

// solve is Solve plus the trace switch (the ?trace=1 handler path): a
// traced solve runs under WithTrace and returns a Report embedding its
// span tree. Traced reports cache under their own keyspace — they are a
// different byte stream than untraced reports, and the untraced path
// must stay byte-identical whether or not tracing is ever requested.
// A traced cache hit returns the cold solve's trace verbatim; the
// handler marks the served copy as replayed.
func (s *Server) solve(ctx context.Context, sc *steadystate.Scenario, block, trace bool) (*steadystate.Report, bool, error) {
	s.metrics.enter()
	defer s.metrics.leave()

	if sc == nil || sc.Platform == nil {
		s.metrics.badRequest()
		return nil, false, errBadScenario(errors.New("scenario has no platform"))
	}
	if sc.Spec.Kind == "" {
		s.metrics.badRequest()
		return nil, false, errBadScenario(errors.New("scenario has no spec (generate with topogen -spec)"))
	}
	key, err := CacheKey(sc)
	if err != nil {
		s.metrics.badRequest()
		return nil, false, errBadScenario(err)
	}
	if trace {
		// "|" cannot appear in a hex platform hash, so the suffix cannot
		// collide with an untraced key; platformKeyOf still reads the
		// session-pool key off the front.
		key += "|trace"
	}

	if rep, ok := s.cache.Get(key); ok {
		s.metrics.hit()
		return rep.(*steadystate.Report), true, nil
	}
	s.metrics.miss()

	// The admission permit covers the window between the draining check
	// and the queue send, so Close cannot close the queue underneath us.
	if !s.admit() {
		return nil, false, errDraining()
	}
	session := s.sessions.GetOrPut(platformKeyOf(key), func() any {
		return steadystate.NewSolver(sc.Platform).UseBasisCache(s.bases)
	}).(*steadystate.Solver)

	t := &task{
		ctx:      ctx,
		scenario: sc,
		session:  session,
		key:      key,
		trace:    trace,
		enqueued: time.Now(),
		done:     make(chan taskResult, 1),
	}
	if block {
		select {
		case s.queue <- t:
			s.admitters.Done()
		case <-ctx.Done():
			s.admitters.Done()
			s.metrics.deadline()
			return nil, false, errDeadline()
		}
	} else {
		select {
		case s.queue <- t:
			s.admitters.Done()
		default:
			s.admitters.Done()
			s.metrics.reject()
			return nil, false, errQueueFull(s.cfg.QueueDepth)
		}
	}

	select {
	case res := <-t.done:
		if res.err != nil {
			if errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled) {
				s.metrics.deadline()
				return nil, false, errDeadline()
			}
			s.metrics.solveFailed()
			return nil, false, errSolve(res.err)
		}
		return res.report, false, nil
	case <-ctx.Done():
		// The worker may still be solving; its context is ours, so the
		// simplex unwinds between pivots and the buffered done channel
		// absorbs the late result.
		s.metrics.deadline()
		return nil, false, errDeadline()
	}
}

// msSince mirrors internal/sweep's wall-clock convention.
func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
