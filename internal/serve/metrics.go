// metrics.go is the telemetry of the serving layer: monotonic counters
// (solves, cache hits/misses, rejections, deadline misses, bad requests),
// live gauges (queue depth, in-flight requests), and fixed-bucket
// millisecond histograms for queue wait and solve time. Snapshots
// serialize to JSON (the CI artifact format) and render in
// Prometheus-style text exposition for scrapers.
package serve

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
)

// histogramBucketsMS are the upper bounds, in milliseconds, of the
// latency histograms; observations above the last bound land in the
// implicit +Inf bucket.
var histogramBucketsMS = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// histogram accumulates millisecond observations into the fixed buckets.
// It is guarded by the owning Metrics' mutex.
type histogram struct {
	count   uint64
	sumMS   float64
	buckets []uint64 // per-bucket (non-cumulative); len = len(histogramBucketsMS)+1, last is +Inf
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]uint64, len(histogramBucketsMS)+1)}
}

// observe records one duration.
func (h *histogram) observe(ms float64) {
	h.count++
	h.sumMS += ms
	for i, le := range histogramBucketsMS {
		if ms <= le {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.buckets)-1]++
}

// snapshot renders the histogram with cumulative bucket counts, the
// Prometheus convention.
func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, SumMS: h.sumMS}
	var cum uint64
	for i, le := range histogramBucketsMS {
		cum += h.buckets[i]
		s.Buckets = append(s.Buckets, BucketCount{LE: strconv.FormatFloat(le, 'g', -1, 64), Count: cum})
	}
	cum += h.buckets[len(h.buckets)-1]
	s.Buckets = append(s.Buckets, BucketCount{LE: "+Inf", Count: cum})
	return s
}

// BucketCount is one cumulative histogram bucket: the count of
// observations ≤ the upper bound LE (rendered as a string so the +Inf
// bucket survives JSON).
type BucketCount struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the serialized view of a latency histogram:
// observation count, sum, and cumulative bucket counts.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	SumMS   float64       `json:"sum_ms"`
	Buckets []BucketCount `json:"buckets"`
}

// MetricsSnapshot is the point-in-time state of a server's telemetry —
// the JSON body of the /metrics endpoint and the format of the CI
// BENCH_solverd artifacts.
type MetricsSnapshot struct {
	// Solves counts completed LP solves (cache misses that ran to a
	// report). CacheHits + Solves is the number of successful /solve
	// responses; CacheMisses counts admissions, so CacheMisses − Solves
	// is the number of misses still in flight or failed.
	Solves      uint64 `json:"solves"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// QueueRejections counts admissions refused because the queue was
	// full (503s); DeadlineExceeded counts requests that hit their
	// per-request deadline while queued or solving (504s); BadRequests
	// counts malformed or oversized payloads (400s and 413s);
	// SolveFailures counts admitted scenarios whose solve returned an
	// error other than a deadline.
	QueueRejections  uint64 `json:"queue_rejections"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	BadRequests      uint64 `json:"bad_requests"`
	SolveFailures    uint64 `json:"solve_failures"`
	// WarmStarts counts completed solves that reused a cached basis;
	// WarmRejects counts solves where a cached basis was offered but
	// rejected (fingerprint mismatch, infeasible for the new bounds, …)
	// and the solve ran cold. Solves with no cached basis available count
	// in neither.
	WarmStarts  uint64 `json:"warm_starts"`
	WarmRejects uint64 `json:"warm_rejects"`
	// QueueDepth and Inflight are live gauges: scenarios waiting in the
	// admission queue, and requests admitted but not yet answered.
	QueueDepth int `json:"queue_depth"`
	Inflight   int `json:"inflight"`
	// QueueWaitMS observes time from admission to a worker picking the
	// scenario up; SolveMS observes the LP solve wall clock (cache hits
	// observe neither).
	QueueWaitMS HistogramSnapshot `json:"queue_wait_ms"`
	SolveMS     HistogramSnapshot `json:"solve_ms"`
}

// Metrics is the mutable telemetry of one Server. All methods are safe
// for concurrent use.
type Metrics struct {
	mu               sync.Mutex
	solves           uint64
	cacheHits        uint64
	cacheMisses      uint64
	queueRejections  uint64
	deadlineExceeded uint64
	badRequests      uint64
	solveFailures    uint64
	warmStarts       uint64
	warmRejects      uint64
	inflight         int
	queueWait        *histogram
	solveMS          *histogram
	queueDepth       func() int // live view of the admission queue
}

func newMetrics(queueDepth func() int) *Metrics {
	return &Metrics{
		queueWait:  newHistogram(),
		solveMS:    newHistogram(),
		queueDepth: queueDepth,
	}
}

func (m *Metrics) hit()         { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *Metrics) miss()        { m.mu.Lock(); m.cacheMisses++; m.mu.Unlock() }
func (m *Metrics) reject()      { m.mu.Lock(); m.queueRejections++; m.mu.Unlock() }
func (m *Metrics) deadline()    { m.mu.Lock(); m.deadlineExceeded++; m.mu.Unlock() }
func (m *Metrics) badRequest()  { m.mu.Lock(); m.badRequests++; m.mu.Unlock() }
func (m *Metrics) solveFailed() { m.mu.Lock(); m.solveFailures++; m.mu.Unlock() }
func (m *Metrics) warmStart()   { m.mu.Lock(); m.warmStarts++; m.mu.Unlock() }
func (m *Metrics) warmReject()  { m.mu.Lock(); m.warmRejects++; m.mu.Unlock() }

func (m *Metrics) enter() { m.mu.Lock(); m.inflight++; m.mu.Unlock() }
func (m *Metrics) leave() { m.mu.Lock(); m.inflight--; m.mu.Unlock() }

// observeQueueWait records the admission-to-worker latency of one solve.
func (m *Metrics) observeQueueWait(ms float64) {
	m.mu.Lock()
	m.queueWait.observe(ms)
	m.mu.Unlock()
}

// observeSolve records one completed LP solve and its wall-clock cost.
func (m *Metrics) observeSolve(ms float64) {
	m.mu.Lock()
	m.solves++
	m.solveMS.observe(ms)
	m.mu.Unlock()
}

// Snapshot returns a consistent copy of all counters, gauges and
// histograms.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		Solves:           m.solves,
		CacheHits:        m.cacheHits,
		CacheMisses:      m.cacheMisses,
		QueueRejections:  m.queueRejections,
		DeadlineExceeded: m.deadlineExceeded,
		BadRequests:      m.badRequests,
		SolveFailures:    m.solveFailures,
		WarmStarts:       m.warmStarts,
		WarmRejects:      m.warmRejects,
		Inflight:         m.inflight,
		QueueWaitMS:      m.queueWait.snapshot(),
		SolveMS:          m.solveMS.snapshot(),
	}
	if m.queueDepth != nil {
		s.QueueDepth = m.queueDepth()
	}
	return s
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format under the solverd_* namespace.
func (s MetricsSnapshot) WritePrometheus(w io.Writer) error {
	counter := func(name string, v uint64, help string) {
		fmt.Fprintf(w, "# HELP solverd_%s %s\n# TYPE solverd_%s counter\nsolverd_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name string, v int, help string) {
		fmt.Fprintf(w, "# HELP solverd_%s %s\n# TYPE solverd_%s gauge\nsolverd_%s %d\n", name, help, name, name, v)
	}
	histo := func(name string, h HistogramSnapshot, help string) {
		// Standard exposition: the unit is seconds (le bounds and _sum
		// converted from the snapshot's milliseconds) and the series ends
		// with the +Inf bucket carrying the full count (snapshot appends
		// it last). The JSON snapshot keeps its millisecond form — the CI
		// artifacts and their jq pins depend on it.
		fmt.Fprintf(w, "# HELP solverd_%s %s\n# TYPE solverd_%s histogram\n", name, help, name)
		for _, b := range h.Buckets {
			le := "+Inf"
			if v, err := strconv.ParseFloat(b.LE, 64); err == nil && !math.IsInf(v, 1) {
				le = strconv.FormatFloat(v/1000, 'g', -1, 64)
			}
			fmt.Fprintf(w, "solverd_%s_bucket{le=%q} %d\n", name, le, b.Count)
		}
		fmt.Fprintf(w, "solverd_%s_sum %g\nsolverd_%s_count %d\n", name, h.SumMS/1000, name, h.Count)
	}
	counter("solves_total", s.Solves, "completed LP solves")
	counter("cache_hits_total", s.CacheHits, "report-cache hits")
	counter("cache_misses_total", s.CacheMisses, "report-cache misses admitted to the queue")
	counter("queue_rejections_total", s.QueueRejections, "admissions refused with a full queue")
	counter("deadline_exceeded_total", s.DeadlineExceeded, "requests past their deadline while queued or solving")
	counter("bad_requests_total", s.BadRequests, "malformed or oversized payloads")
	counter("solve_failures_total", s.SolveFailures, "admitted scenarios whose solve errored")
	counter("warm_starts_total", s.WarmStarts, "solves warm-started from a cached basis")
	counter("warm_rejects_total", s.WarmRejects, "cached bases offered but rejected")
	gauge("queue_depth", s.QueueDepth, "scenarios waiting in the admission queue")
	gauge("inflight", s.Inflight, "requests admitted but not yet answered")
	histo("queue_wait_seconds", s.QueueWaitMS, "admission-to-worker latency in seconds")
	histo("solve_seconds", s.SolveMS, "LP solve wall clock in seconds")
	return nil
}
