package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestLRUEvictionDeterminism(t *testing.T) {
	// Eviction order is a pure function of the Get/Put sequence.
	c := newLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3) // evicts a (least recently used)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived eviction")
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Fatalf("b: got %v, %v", v, ok)
	}
	if got, want := c.Keys(), []string{"b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("keys after eviction: got %v want %v", got, want)
	}

	// A Get refreshes recency: now c is the eviction victim.
	c.Get("b")
	c.Put("d", 4)
	if _, ok := c.Get("c"); ok {
		t.Fatal("c survived eviction despite b's refresh")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b evicted despite refresh")
	}

	// Replaying the same sequence lands in the same state.
	replay := func() []string {
		r := newLRU(2)
		r.Put("a", 1)
		r.Put("b", 2)
		r.Put("c", 3)
		r.Get("b")
		r.Put("d", 4)
		r.Get("c")
		r.Get("b")
		return r.Keys()
	}
	first := replay()
	for i := 0; i < 5; i++ {
		if got := replay(); !reflect.DeepEqual(got, first) {
			t.Fatalf("replay %d diverged: got %v want %v", i, got, first)
		}
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: b stays
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Fatalf("a: got %v, %v; want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if c.Len() != 2 {
		t.Fatalf("len: got %d want 2", c.Len())
	}
}

func TestLRUGetOrPut(t *testing.T) {
	c := newLRU(4)
	calls := 0
	make1 := func() any { calls++; return "v1" }
	if v := c.GetOrPut("k", make1); v.(string) != "v1" {
		t.Fatalf("first GetOrPut: %v", v)
	}
	if v := c.GetOrPut("k", func() any { calls++; return "v2" }); v.(string) != "v1" {
		t.Fatalf("second GetOrPut rebuilt: %v", v)
	}
	if calls != 1 {
		t.Fatalf("constructor ran %d times, want 1", calls)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache stored a value")
	}
	if c.Len() != 0 {
		t.Fatalf("len: got %d want 0", c.Len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	// Smoke for the race detector: concurrent readers and writers.
	c := newLRU(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%24)
				c.Put(key, i)
				c.Get(key)
				c.GetOrPut(key, func() any { return i })
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
}
