package serve

import (
	"strings"
	"testing"
)

func TestMetricsCountersAndHistograms(t *testing.T) {
	m := newMetrics(func() int { return 3 })
	m.hit()
	m.hit()
	m.miss()
	m.reject()
	m.deadline()
	m.badRequest()
	m.solveFailed()
	m.enter()
	m.observeQueueWait(0.5)
	m.observeQueueWait(12)
	m.observeSolve(40)

	s := m.Snapshot()
	if s.CacheHits != 2 || s.CacheMisses != 1 {
		t.Fatalf("cache counters: hits %d misses %d", s.CacheHits, s.CacheMisses)
	}
	if s.Solves != 1 || s.QueueRejections != 1 || s.DeadlineExceeded != 1 ||
		s.BadRequests != 1 || s.SolveFailures != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if s.QueueDepth != 3 || s.Inflight != 1 {
		t.Fatalf("gauges: depth %d inflight %d", s.QueueDepth, s.Inflight)
	}
	if s.QueueWaitMS.Count != 2 || s.QueueWaitMS.SumMS != 12.5 {
		t.Fatalf("queue wait histogram: %+v", s.QueueWaitMS)
	}
	if s.SolveMS.Count != 1 {
		t.Fatalf("solve histogram: %+v", s.SolveMS)
	}

	// Buckets are cumulative and end at +Inf with the full count.
	last := s.QueueWaitMS.Buckets[len(s.QueueWaitMS.Buckets)-1]
	if last.LE != "+Inf" || last.Count != 2 {
		t.Fatalf("+Inf bucket: %+v", last)
	}
	// 0.5ms lands in the le=1 bucket; 12ms first appears at le=25.
	byLE := map[string]uint64{}
	for _, b := range s.QueueWaitMS.Buckets {
		byLE[b.LE] = b.Count
	}
	if byLE["1"] != 1 || byLE["10"] != 1 || byLE["25"] != 2 {
		t.Fatalf("cumulative buckets wrong: %v", byLE)
	}
}

func TestMetricsHistogramOverflow(t *testing.T) {
	m := newMetrics(nil)
	m.observeSolve(1e9) // far past the last bound
	s := m.Snapshot()
	last := s.SolveMS.Buckets[len(s.SolveMS.Buckets)-1]
	if last.LE != "+Inf" || last.Count != 1 {
		t.Fatalf("overflow bucket: %+v", last)
	}
	// Every finite bucket stays empty.
	for _, b := range s.SolveMS.Buckets[:len(s.SolveMS.Buckets)-1] {
		if b.Count != 0 {
			t.Fatalf("finite bucket %s counted overflow: %+v", b.LE, b)
		}
	}
}

func TestMetricsPrometheusText(t *testing.T) {
	m := newMetrics(func() int { return 1 })
	m.observeSolve(3)
	m.hit()
	var b strings.Builder
	if err := m.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE solverd_solves_total counter",
		"solverd_solves_total 1",
		"solverd_cache_hits_total 1",
		"# TYPE solverd_queue_depth gauge",
		"solverd_queue_depth 1",
		"# TYPE solverd_solve_seconds histogram",
		`solverd_solve_seconds_bucket{le="+Inf"} 1`,
		"solverd_solve_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

// TestPrometheusHistogramExposition pins the histogram exposition text:
// le bounds and _sum converted to seconds, cumulative bucket counts, and
// every series ending with the +Inf bucket carrying the full count — the
// standard Prometheus convention scrapers and recording rules assume.
func TestPrometheusHistogramExposition(t *testing.T) {
	cases := []struct {
		name      string
		observeMS []float64
		want      string // exact exposition block of the solve histogram
	}{
		{
			name:      "empty",
			observeMS: nil,
			want: `# HELP solverd_solve_seconds LP solve wall clock in seconds
# TYPE solverd_solve_seconds histogram
solverd_solve_seconds_bucket{le="0.001"} 0
solverd_solve_seconds_bucket{le="0.0025"} 0
solverd_solve_seconds_bucket{le="0.005"} 0
solverd_solve_seconds_bucket{le="0.01"} 0
solverd_solve_seconds_bucket{le="0.025"} 0
solverd_solve_seconds_bucket{le="0.05"} 0
solverd_solve_seconds_bucket{le="0.1"} 0
solverd_solve_seconds_bucket{le="0.25"} 0
solverd_solve_seconds_bucket{le="0.5"} 0
solverd_solve_seconds_bucket{le="1"} 0
solverd_solve_seconds_bucket{le="2.5"} 0
solverd_solve_seconds_bucket{le="5"} 0
solverd_solve_seconds_bucket{le="10"} 0
solverd_solve_seconds_bucket{le="30"} 0
solverd_solve_seconds_bucket{le="60"} 0
solverd_solve_seconds_bucket{le="+Inf"} 0
solverd_solve_seconds_sum 0
solverd_solve_seconds_count 0
`,
		},
		{
			name:      "two observations",
			observeMS: []float64{3, 40},
			want: `# HELP solverd_solve_seconds LP solve wall clock in seconds
# TYPE solverd_solve_seconds histogram
solverd_solve_seconds_bucket{le="0.001"} 0
solverd_solve_seconds_bucket{le="0.0025"} 0
solverd_solve_seconds_bucket{le="0.005"} 1
solverd_solve_seconds_bucket{le="0.01"} 1
solverd_solve_seconds_bucket{le="0.025"} 1
solverd_solve_seconds_bucket{le="0.05"} 2
solverd_solve_seconds_bucket{le="0.1"} 2
solverd_solve_seconds_bucket{le="0.25"} 2
solverd_solve_seconds_bucket{le="0.5"} 2
solverd_solve_seconds_bucket{le="1"} 2
solverd_solve_seconds_bucket{le="2.5"} 2
solverd_solve_seconds_bucket{le="5"} 2
solverd_solve_seconds_bucket{le="10"} 2
solverd_solve_seconds_bucket{le="30"} 2
solverd_solve_seconds_bucket{le="60"} 2
solverd_solve_seconds_bucket{le="+Inf"} 2
solverd_solve_seconds_sum 0.043
solverd_solve_seconds_count 2
`,
		},
		{
			name:      "overflow past the last bound",
			observeMS: []float64{1e9},
			want: `solverd_solve_seconds_bucket{le="60"} 0
solverd_solve_seconds_bucket{le="+Inf"} 1
solverd_solve_seconds_sum 1e+06
solverd_solve_seconds_count 1
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newMetrics(nil)
			for _, ms := range tc.observeMS {
				m.observeSolve(ms)
			}
			var b strings.Builder
			if err := m.Snapshot().WritePrometheus(&b); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.String(), tc.want) {
				t.Fatalf("exposition text missing block:\n--- want ---\n%s--- got ---\n%s", tc.want, b.String())
			}
		})
	}
}
