// Package analysistest runs one analyzer over a fixture directory and
// checks its diagnostics against expectations written in the fixture
// itself — the same convention as golang.org/x/tools/go/analysis/
// analysistest, reimplemented on the in-repo framework.
//
// A fixture is a directory of Go files forming one package. Every line
// expected to be flagged carries a trailing comment
//
//	// want "regexp"
//
// (several quoted regexps when several findings land on the line). The
// harness fails the test for any diagnostic without a matching want and
// any want without a matching diagnostic.
//
// Because path-scoped analyzers (ratfloat, fragmentcontract) key off
// the package's import path, each run names the path the fixture is
// type-checked under — fixtures can pose as "repro/internal/lp/..." to
// land inside an analyzer's scope, or under a neutral path to verify
// the analyzer stays quiet out of scope. Fixtures may import real
// packages of this module (and the standard library); imports resolve
// through compiler export data.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// sharedLoader caches export-data resolution across all fixture runs in
// one test binary.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
	loaderErr  error
)

// moduleLoader returns the process-wide fixture loader, rooted at the
// enclosing module.
func moduleLoader() (*analysis.Loader, error) {
	loaderOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loader = analysis.NewLoader(root)
	})
	return loader, loaderErr
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

// Run checks the analyzer against the fixture directory, type-checked
// under importPath, comparing diagnostics to the fixture's // want
// comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	diags := Diagnostics(t, a, dir, importPath)
	wants := parseWants(t, dir)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// Diagnostics runs the analyzer over the fixture and returns its
// surviving (post-suppression) diagnostics sorted by position, for
// tests that assert on them directly.
func Diagnostics(t *testing.T, a *analysis.Analyzer, dir, importPath string) []analysis.Diagnostic {
	t.Helper()
	l, err := moduleLoader()
	if err != nil {
		t.Fatalf("locate module root: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	pkg, err := l.CheckSource(importPath, fset, files)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on fixture %s: %v", a.Name, dir, err)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return diags
}

// want is one expectation: a regexp that must match a diagnostic on the
// given fixture file and line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantPattern extracts the quoted regexps of a // want comment.
var wantPattern = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants scans the fixture sources for // want comments.
func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture %s: %v", e.Name(), err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantPattern.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, raw := range splitQuoted(m[1]) {
				pat, err := strconv.Unquote(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", e.Name(), i+1, raw, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pat, err)
				}
				wants = append(wants, want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// splitQuoted returns the double-quoted segments of s.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start+1:]
		end := 0
		for {
			i := strings.IndexByte(rest[end:], '"')
			if i < 0 {
				return out
			}
			end += i
			if end > 0 && rest[end-1] == '\\' {
				end++
				continue
			}
			break
		}
		out = append(out, s[start:start+end+2])
		s = rest[end+1:]
	}
}
