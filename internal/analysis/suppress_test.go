package analysis

import "testing"

// TestDirectiveText pins the directive syntax: //sslint:allow with or
// without a reason, no false match on longer names or non-directive
// comments.
func TestDirectiveText(t *testing.T) {
	cases := []struct {
		comment string
		reason  string
		ok      bool
	}{
		{"//sslint:allow density is telemetry", " density is telemetry", true},
		{"// sslint:allow density is telemetry", " density is telemetry", true},
		{"//sslint:allow", "", true},
		{"//sslint:allow\t tabbed reason", "\t tabbed reason", true},
		{"//sslint:allowance not a directive", "", false},
		{"// plain comment", "", false},
		{"/* block */", "", false},
	}
	for _, c := range cases {
		reason, ok := directiveText(c.comment)
		if ok != c.ok || reason != c.reason {
			t.Errorf("directiveText(%q) = (%q, %v), want (%q, %v)", c.comment, reason, ok, c.reason, c.ok)
		}
	}
}
