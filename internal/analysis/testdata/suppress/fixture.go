// Package fixture exercises the //sslint:allow directive: same-line and
// line-above suppressions with reasons work, a bare directive suppresses
// nothing and is itself a finding.
package fixture

// Keys triggers mapdeterminism three times; two carry reasoned allows.
func Keys(m map[string]int) ([]string, []string, []string) {
	var a, b, c []string
	for k := range m {
		a = append(a, k) //sslint:allow fixture: order-insensitive consumer
	}
	for k := range m {
		//sslint:allow fixture: order-insensitive consumer
		b = append(b, k)
	}
	for k := range m {
		//sslint:allow
		c = append(c, k)
	}
	return a, b, c
}
