// load.go loads and type-checks packages for analysis without
// golang.org/x/tools/go/packages: `go list -deps -export -json` yields
// every package's source files plus the compiler's export data for its
// dependencies, and go/importer type-checks the target's syntax against
// that export data. This is the same division of labor as go vet's
// unitchecker — syntax for the package under analysis, export data for
// everything below it — driven here by one process.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	// ImportPath is the package's canonical import path.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Export is the path of the compiler export data produced by
	// `go list -export`, empty if the package failed to build.
	Export string
	// GoFiles lists the package's non-test Go sources (no _test.go, no
	// files excluded by build constraints).
	GoFiles []string
	// DepOnly marks packages listed only as dependencies, not matched
	// by the command-line patterns.
	DepOnly bool
}

// A Loader lists, parses and type-checks packages rooted at a module
// directory. It shells out to the go tool once per Load call and caches
// export-data locations for import resolution; a zero Loader is not
// usable — construct with NewLoader.
type Loader struct {
	// dir is the directory `go list` runs in (any directory inside the
	// target module).
	dir string

	mu     sync.Mutex
	export map[string]string // import path → export data file
}

// NewLoader returns a loader running the go tool in dir.
func NewLoader(dir string) *Loader {
	return &Loader{dir: dir, export: make(map[string]string)}
}

// A LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	// ImportPath is the package's import path as reported by go list.
	ImportPath string
	// Fset positions the package's syntax.
	Fset *token.FileSet
	// Files is the parsed syntax of the package's non-test sources,
	// with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds type and object resolutions for Files.
	Info *types.Info
}

// Load lists the packages matching patterns (e.g. "./..."), parses and
// type-checks each one, and returns them sorted in go list order.
// Packages listed only as dependencies are resolved from export data,
// never parsed.
func (l *Loader) Load(patterns ...string) ([]*LoadedPackage, error) {
	roots, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var out []*LoadedPackage
	for _, p := range roots {
		lp, err := l.check(p)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// list runs `go list -deps -export -json`, records every listed
// package's export data for import resolution, and returns the
// non-DepOnly roots.
func (l *Loader) list(patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var roots []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(outBytes))
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		if p.Export != "" {
			l.export[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}
	return roots, nil
}

// lookupExport resolves an import path to its compiler export data,
// falling back to an extra `go list -export` run for paths outside the
// original pattern's dependency closure (the analysistest fixtures use
// this to import packages of this module).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.export[path]
	l.mu.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = l.dir
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysis: no export data for %q: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		l.mu.Lock()
		l.export[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}

// check parses and type-checks one listed package.
func (l *Loader) check(p *listedPackage) (*LoadedPackage, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	pkg, info, err := l.typeCheck(p.ImportPath, fset, files)
	if err != nil {
		return nil, err
	}
	return &LoadedPackage{
		ImportPath: p.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// CheckSource type-checks already-parsed files as the package at path,
// resolving imports through the loader's export data (with the
// on-demand fallback, so the files may import any buildable package).
// analysistest uses it to check fixture sources under a chosen import
// path — which is how path-scoped analyzers like ratfloat are pointed
// at fixtures.
func (l *Loader) CheckSource(path string, fset *token.FileSet, files []*ast.File) (*LoadedPackage, error) {
	pkg, info, err := l.typeCheck(path, fset, files)
	if err != nil {
		return nil, err
	}
	return &LoadedPackage{
		ImportPath: path,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// typeCheck type-checks already-parsed files as the package at path,
// resolving imports through the loader's export data.
func (l *Loader) typeCheck(path string, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", l.lookupExport),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-check %s: %v", path, err)
	}
	return pkg, info, nil
}
