package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/mapdeterminism"
)

// TestAllowDirective runs a real analyzer over the suppression fixture:
// reasoned allows (same line and line above) drop the finding, a bare
// allow drops nothing and is reported itself.
func TestAllowDirective(t *testing.T) {
	diags := analysistest.Diagnostics(t, mapdeterminism.Analyzer, "testdata/suppress", "repro/internal/fixture")
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (bare directive + unsuppressed append): %v", len(diags), diags)
	}
	bare, leak := diags[0], diags[1]
	if bare.Analyzer != "sslint" || !strings.Contains(bare.Message, "without a reason") {
		t.Errorf("first diagnostic = %s, want the bare-directive finding", bare)
	}
	if leak.Analyzer != "mapdeterminism" || !strings.Contains(leak.Message, "append to c") {
		t.Errorf("second diagnostic = %s, want the unsuppressed append", leak)
	}
}
