// Package mapdeterminism flags map iteration whose order can leak into
// observable output.
//
// Go randomizes map iteration order on purpose, and this repository's
// correctness story leans on byte-identical output everywhere: golden
// sweep reports, solverd's cache-hit identity, CI's served-vs-swept
// diff, JSONL shard logs that must union deterministically. A `range`
// over a map is fine while the loop body only does order-insensitive
// work (summing into an accumulator, filling another map); it becomes a
// determinism bug the moment the body appends to a slice that escapes
// the loop, or writes to a writer/encoder, without the order being
// re-established afterwards.
//
// The analyzer flags a range-over-map statement when its body
//
//   - appends to a slice declared outside the loop, unless a later
//     statement in the same function sorts that slice (the
//     collect-keys-then-sort idiom, via sort.* or slices.*), or
//   - calls a write/print/encode method (Write, WriteString, Encode,
//     Fprintf, ...) — output emitted during map iteration cannot be
//     fixed up afterwards.
//
// Genuinely order-insensitive accumulations the heuristic cannot see
// through (e.g. feeding an LCM or a max) carry a //sslint:allow
// directive naming the consumer that makes the order irrelevant.
package mapdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the mapdeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapdeterminism",
	Doc:  "flag map iteration feeding slices or writers without a later sort",
	Run:  run,
}

// writeMethods are callee names whose invocation inside a map-range
// body means iteration order reached an output stream.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
}

// run flags every offending range-over-map statement in the package.
func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		f := f
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if ok && isMapType(pass.TypesInfo.TypeOf(rs.X)) {
				checkMapRange(pass, f, rs)
			}
			return true
		})
	}
	return nil
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body for order leaks. Nested
// map-range statements are skipped — they are visited (and reported)
// on their own — while nested slice loops and function literals are
// walked, since they run per iteration.
func checkMapRange(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs && isMapType(pass.TypesInfo.TypeOf(n.X)) {
				return false
			}
		case *ast.AssignStmt:
			checkAppends(pass, file, rs, n)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && writeMethods[sel.Sel.Name] {
				pass.Reportf(n.Pos(), "%s called while ranging over a map: output order is nondeterministic; iterate sorted keys instead", sel.Sel.Name)
			}
		}
		return true
	})
}

// checkAppends flags assignments inside a map-range body that append to
// a slice declared outside the loop, unless the slice is sorted later
// in the enclosing function.
func checkAppends(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		id := rootIdent(as.Lhs[i])
		if id == nil {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || !declaredOutside(obj, rs) {
			continue
		}
		if sortedAfter(pass, file, rs, obj) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %s while ranging over a map: element order is nondeterministic; sort %s afterwards, iterate sorted keys, or //sslint:allow with the order-insensitive consumer", obj.Name(), obj.Name())
	}
}

// isBuiltinAppend reports whether the call invokes the predeclared
// append.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && id.Name == "append"
}

// rootIdent unwraps an assignable expression (x, x.f, x[i]) to its root
// identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement's span.
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// sortedAfter reports whether, after the range statement and within its
// enclosing function, a sort.* or slices.* call mentions obj — the
// collect-then-sort idiom that restores determinism.
func sortedAfter(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	fn := enclosingFunc(file, rs.Pos())
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if isSortCall(pass, call) && mentionsObject(pass, call, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// enclosingFunc returns the innermost function declaration or literal
// containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				best = n // inner nodes visited later override outer ones
			}
		}
		return true
	})
	return best
}

// isSortCall reports whether the call targets package sort or slices.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pkg.Imported().Path()
	return path == "sort" || path == "slices"
}

// mentionsObject reports whether any argument of the call references
// obj.
func mentionsObject(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}
