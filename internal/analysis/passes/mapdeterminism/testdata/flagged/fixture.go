// Package fixture exercises mapdeterminism: appends and writes inside
// map-range bodies with no rescue sort.
package fixture

import (
	"fmt"
	"io"
)

// Keys collects map keys and never re-establishes an order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out while ranging over a map"
	}
	return out
}

// Dump emits output mid-iteration; no later fix-up is possible.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "Fprintf called while ranging over a map"
	}
}

// Nested ranges a map inside a slice loop; the leak is still flagged.
func Nested(ms []map[string]int) []string {
	var out []string
	for _, m := range ms {
		for k := range m {
			out = append(out, k) // want "append to out while ranging over a map"
		}
	}
	return out
}
