// Package fixture lists the map-range shapes mapdeterminism must accept.
package fixture

import "sort"

// SortedKeys collects then sorts — the sanctioned idiom.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum accumulates order-insensitively without appending.
func Sum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// Invert fills another map; iteration order never escapes.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// FromSlice appends while ranging over a slice — not a map, not flagged.
func FromSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// LocalScratch appends to a slice declared inside the loop body; the
// order cannot escape an iteration.
func LocalScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		total += len(scratch)
	}
	return total
}
