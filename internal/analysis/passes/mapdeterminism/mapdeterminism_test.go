package mapdeterminism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/mapdeterminism"
)

// TestFlagged checks unsorted appends and mid-iteration writes are
// caught.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, mapdeterminism.Analyzer, "testdata/flagged", "repro/internal/fixture")
}

// TestClean checks the sanctioned shapes (collect-then-sort, pure
// accumulation, map fills, slice ranges) stay quiet.
func TestClean(t *testing.T) {
	if diags := analysistest.Diagnostics(t, mapdeterminism.Analyzer, "testdata/clean", "repro/internal/fixture"); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}
