// Package ratfloat forbids floating-point arithmetic in the packages
// that compute over exact rationals.
//
// The paper's guarantee is *exact* optimal steady-state throughput: the
// LP is solved over big.Rat, and the periodic-schedule construction
// multiplies the solution by the LCM of its denominators — a float
// anywhere on that path silently destroys both the optimality
// certificate and the integer period. The analyzer therefore flags, in
// the LP core (internal/lp), the shared framework (internal/core), the
// per-kind solver packages (internal/scatter, internal/gossip,
// internal/reduce, internal/prefix) and internal/composite:
//
//   - any use of the identifiers float64 or float32 (conversions,
//     declarations, struct fields, parameters);
//   - floating-point literals;
//   - calls into package math (math/big is fine — it is the exact
//     representation).
//
// Telemetry that genuinely wants a float — the lp_density ratio, wall
// clock milliseconds — carries a //sslint:allow directive naming the
// reason; such values must flow out of the package (into reports),
// never back into rational arithmetic.
package ratfloat

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ratfloat pass.
var Analyzer = &analysis.Analyzer{
	Name: "ratfloat",
	Doc:  "forbid floating-point arithmetic in the exact-rational packages",
	Run:  run,
}

// scope lists the import paths (and their subpackages) whose arithmetic
// must stay rational.
var scope = []string{
	"repro/internal/lp",
	"repro/internal/core",
	"repro/internal/scatter",
	"repro/internal/gossip",
	"repro/internal/reduce",
	"repro/internal/prefix",
	"repro/internal/composite",
}

// inScope reports whether the package path is one of the exact-rational
// packages or nested under one.
func inScope(path string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// run flags float identifiers, float literals and math.* calls.
func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[n]; obj != nil && isUniverseFloat(obj) {
					pass.Reportf(n.Pos(), "use of %s in an exact-rational package (solve over rat.Rat / big.Rat, or //sslint:allow for outbound telemetry)", n.Name)
				}
			case *ast.BasicLit:
				if n.Kind == token.FLOAT {
					pass.Reportf(n.Pos(), "floating-point literal %s in an exact-rational package (use rat.Parse or big.Rat)", n.Value)
				}
			case *ast.SelectorExpr:
				if isMathPackage(pass, n) && !isIntegerConst(pass, n.Sel) {
					pass.Reportf(n.Pos(), "package math is floating-point; use math/big for exact arithmetic")
				}
			}
			return true
		})
	}
	return nil
}

// isUniverseFloat reports whether obj is the predeclared float64 or
// float32 type.
func isUniverseFloat(obj types.Object) bool {
	if obj.Parent() != types.Universe {
		return false
	}
	return obj.Name() == "float64" || obj.Name() == "float32"
}

// isIntegerConst reports whether the identifier resolves to an integer
// (or untyped integer) constant — math.MaxInt and friends are exact and
// stay legal.
func isIntegerConst(pass *analysis.Pass, id *ast.Ident) bool {
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok {
		return false
	}
	b, ok := c.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isMathPackage reports whether sel selects from the plain math package
// (not math/big, math/bits, ...).
func isMathPackage(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "math"
}
