package ratfloat_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ratfloat"
)

// TestFlaggedInScope checks every float idiom is caught when the fixture
// poses as a package under internal/lp.
func TestFlaggedInScope(t *testing.T) {
	analysistest.Run(t, ratfloat.Analyzer, "testdata/flagged", "repro/internal/lp/fixture")
}

// TestFlaggedFixtureQuietOutOfScope re-checks the same violations under
// a neutral import path: the scope gate must silence all of them.
func TestFlaggedFixtureQuietOutOfScope(t *testing.T) {
	diags := analysistest.Diagnostics(t, ratfloat.Analyzer, "testdata/flagged", "repro/internal/tools/fixture")
	for _, d := range diags {
		if d.Analyzer == "ratfloat" {
			t.Errorf("out-of-scope package flagged: %s", d)
		}
	}
}

// TestCleanOutOfScope checks the clean fixture stays quiet.
func TestCleanOutOfScope(t *testing.T) {
	if diags := analysistest.Diagnostics(t, ratfloat.Analyzer, "testdata/clean", "repro/internal/tools/fixture"); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}
