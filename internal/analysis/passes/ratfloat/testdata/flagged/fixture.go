// Package fixture exercises ratfloat: this file is type-checked under an
// import path inside internal/lp, where floats are forbidden.
package fixture

import "math"

// Mean is the kind of float computation the exact packages must not
// contain.
func Mean(xs []int) float64 { // want "use of float64"
	total := 0.0 // want "floating-point literal 0.0"
	for _, x := range xs {
		total += float64(x) // want "use of float64"
	}
	return total / math.Sqrt(float64(len(xs))) // want "package math is floating-point" "use of float64"
}

// Half is a float literal in a declaration.
var Half float32 = 0.5 // want "use of float32" "floating-point literal 0.5"

// Capacity uses math.MaxInt, which is an exact integer constant and
// stays legal.
func Capacity() int { return math.MaxInt }

// Density is outbound telemetry: the directive suppresses both findings
// on the line.
func Density(nz, area int) float64 { //sslint:allow outbound telemetry only
	return float64(nz) / float64(area) //sslint:allow outbound telemetry only
}
