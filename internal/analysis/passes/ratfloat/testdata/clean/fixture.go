// Package fixture exercises ratfloat's scope gate: the same float-heavy
// code type-checked under a neutral import path must produce no
// findings.
package fixture

// Sum is floating-point, but this package is outside the exact-rational
// scope.
func Sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
