// Package fixture exercises basisflow's scope gate: minting a
// WarmStart and decorating the context is exactly what the session edge
// (Solver.Solve in the root package) does, so the same code under a
// neutral import path must produce no findings.
package fixture

import (
	"context"

	"repro/internal/lp"
)

// Root offers a cached basis to the next solve — the edge's legitimate
// move.
func Root(ctx context.Context, cached *lp.Basis) (context.Context, *lp.WarmStart) {
	ws := &lp.WarmStart{Basis: cached}
	return lp.WithWarmBasis(ctx, ws), ws
}
