// Package fixture exercises basisflow: this file is type-checked under
// an import path inside a solver package, where warm-start state may
// only be observed, never minted.
package fixture

import (
	"context"

	"repro/internal/lp"
)

// Forge hand-builds warm-start state and installs it mid-stack — every
// step is flagged.
func Forge(ctx context.Context) context.Context {
	b := &lp.Basis{}                 // want "lp.Basis composite literal below the solve root"
	ws := &lp.WarmStart{Basis: b}    // want "lp.WarmStart composite literal below the solve root"
	return lp.WithWarmBasis(ctx, ws) // want "lp.WithWarmBasis below the solve root"
}

// Zero forges the zero value through new — just as much a counterfeit
// certificate as a literal.
func Zero() *lp.Basis {
	return new(lp.Basis) // want "new\\(lp.Basis\\) below the solve root"
}

// Observe reads a certified basis the sanctioned way: extraction from a
// Solution and the read-only accessors stay legal.
func Observe(sol *lp.Solution) (int, string) {
	b := sol.Basis()
	if b == nil {
		return 0, ""
	}
	return b.Size(), b.Fingerprint()
}
