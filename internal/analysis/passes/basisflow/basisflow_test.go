package basisflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/basisflow"
)

// TestFlaggedInScope checks that hand-built Basis/WarmStart values and
// the mid-stack WithWarmBasis handoff are caught when the fixture poses
// as a package under internal/core, while Solution.Basis and the
// read-only accessors stay legal.
func TestFlaggedInScope(t *testing.T) {
	analysistest.Run(t, basisflow.Analyzer, "testdata/flagged", "repro/internal/core/fixture")
}

// TestFlaggedFixtureQuietOutOfScope re-checks the same code under a
// neutral import path: the scope gate must silence it.
func TestFlaggedFixtureQuietOutOfScope(t *testing.T) {
	diags := analysistest.Diagnostics(t, basisflow.Analyzer, "testdata/flagged", "repro/internal/tools/fixture")
	for _, d := range diags {
		if d.Analyzer == "basisflow" {
			t.Errorf("out-of-scope package flagged: %s", d)
		}
	}
}

// TestCleanOutOfScope checks the edge idiom — wrapping a cached basis
// in a WarmStart and decorating the context — stays quiet outside the
// solver scope.
func TestCleanOutOfScope(t *testing.T) {
	if diags := analysistest.Diagnostics(t, basisflow.Analyzer, "testdata/clean", "repro/internal/tools/fixture"); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}
