// Package basisflow enforces the warm-start provenance contract of
// internal/lp: a Basis is a certificate, not a data structure.
//
// The warm-start machinery is safe because every lp.Basis in flight was
// minted by Solution.Basis() — a snapshot of a basis the simplex
// actually certified — and re-enters a solve only through the
// lp.WithWarmBasis handoff attached at the session edge
// (steadystate.Solver.Solve). A basis assembled by hand could name
// columns the rebuild cannot pivot in, and a WithWarmBasis decoration
// added mid-stack would offer a stale handoff to whichever solve
// happens to run first under that context, silently corrupting the
// per-solve accounting (the handoff is consumed exactly once). The
// analyzer therefore flags, in the solver packages above the LP
// (internal/core, internal/scatter, internal/gossip, internal/reduce,
// internal/prefix, internal/composite):
//
//   - lp.Basis and lp.WarmStart composite literals, and new(lp.Basis) /
//     new(lp.WarmStart) — warm-start state is minted at the edge only;
//   - calls to lp.WithWarmBasis — decorating the context is the session
//     root's move.
//
// Solution.Basis(), Basis.Size(), Basis.Fingerprint() and every other
// read remain free: observing a certificate is not forging one.
package basisflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the basisflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "basisflow",
	Doc:  "forbid hand-built warm-start bases below the solve root (mint with Solution.Basis, hand off at the session edge)",
	Run:  run,
}

// scope lists the import paths (and their subpackages) where warm-start
// state may only be observed, never minted. internal/lp itself is the
// implementation and stays out of scope.
var scope = []string{
	"repro/internal/core",
	"repro/internal/scatter",
	"repro/internal/gossip",
	"repro/internal/reduce",
	"repro/internal/prefix",
	"repro/internal/composite",
}

// inScope reports whether the package path is one of the solver
// packages or nested under one.
func inScope(path string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// minted names the lp types whose construction is reserved for the LP
// and the session edge.
var minted = map[string]bool{
	"Basis":     true,
	"WarmStart": true,
}

// run flags hand-constructed warm-start state and mid-stack handoffs in
// solver packages.
func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if name, ok := lpTypeName(pass, n.Type); ok && minted[name] {
					pass.Reportf(n.Pos(), "lp.%s composite literal below the solve root: bases are minted by Solution.Basis and handed off at the session edge",
						name)
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "WithWarmBasis" && isLPPackage(pass, sel.X) {
					pass.Reportf(n.Pos(), "lp.WithWarmBasis below the solve root: the warm handoff is attached at the session edge (Solver.Solve)")
					return true
				}
				// new(lp.Basis) / new(lp.WarmStart): the zero value poses as
				// a certificate just as much as a literal does.
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					if name, ok := lpTypeName(pass, n.Args[0]); ok && minted[name] {
						pass.Reportf(n.Pos(), "new(lp.%s) below the solve root: bases are minted by Solution.Basis and handed off at the session edge",
							name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// lpTypeName resolves expr as a type selector on repro/internal/lp and
// returns the selected type name.
func lpTypeName(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || !isLPPackage(pass, sel.X) {
		return "", false
	}
	return sel.Sel.Name, true
}

// isLPPackage reports whether expr names the repro/internal/lp package.
func isLPPackage(pass *analysis.Pass, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "repro/internal/lp"
}
