// Package ctxflow enforces the repository's context discipline: solver
// entry points accept and honor a context.Context, and fresh root
// contexts are not minted inside the library.
//
// Cancellation is threaded from the HTTP edge (solverd deadlines) and
// the sweep engine all the way into the exact simplex, which checks the
// context between pivots. That chain breaks silently wherever a library
// function calls context.Background()/context.TODO() instead of
// propagating its caller's context, or where a Solve entry point simply
// does not take one. The analyzer flags, outside package main and
// tests:
//
//   - calls to context.Background or context.TODO, except in the two
//     sanctioned idioms: the nil-context normalization guard
//     (`if ctx == nil { ctx = context.Background() }`) and a
//     single-return convenience wrapper delegating to its own *Ctx
//     variant (`func (p *P) Solve() { return p.SolveCtx(context.Background()) }`);
//   - exported functions or methods named Solve* that neither take a
//     context.Context parameter nor are such a delegating wrapper;
//   - context.Context parameters that the function body never uses — an
//     accepted-but-dropped context is how a new solver loop silently
//     becomes uncancellable.
//
// Functions whose doc comment carries a "Deprecated:" notice are exempt
// (frozen compatibility surface).
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "require contexts on Solve entry points and forbid fresh root contexts in the library",
	Run:  run,
}

// run applies the three context rules to every function declaration.
func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isDeprecated(fd) {
				continue
			}
			checkSolveEntry(pass, fd)
			checkCtxParamUsed(pass, fd)
			checkRootContexts(pass, fd)
		}
	}
	return nil
}

// isDeprecated reports whether the declaration's doc comment contains a
// Deprecated: notice.
func isDeprecated(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && strings.Contains(fd.Doc.Text(), "Deprecated:")
}

// checkSolveEntry flags exported Solve* functions that neither accept a
// context nor delegate to their own *Ctx variant.
func checkSolveEntry(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !fd.Name.IsExported() || !strings.HasPrefix(name, "Solve") {
		return
	}
	if ctxParam(pass, fd) != nil || isCtxDelegation(fd) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported %s does not accept a context.Context: cancellation cannot reach the simplex (add a ctx parameter or delegate to %sCtx)", name, name)
}

// checkCtxParamUsed flags a context parameter the body never reads —
// an accepted-but-dropped context.
func checkCtxParamUsed(pass *analysis.Pass, fd *ast.FuncDecl) {
	obj := ctxParam(pass, fd)
	if obj == nil || obj.Name() == "_" || obj.Name() == "" {
		return
	}
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			used = true
			return false
		}
		return !used
	})
	if !used {
		pass.Reportf(obj.Pos(), "context parameter %s is never used: pass it on or check ctx.Err() so cancellation propagates", obj.Name())
	}
}

// checkRootContexts flags context.Background()/TODO() calls outside the
// sanctioned idioms.
func checkRootContexts(pass *analysis.Pass, fd *ast.FuncDecl) {
	if isCtxDelegation(fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := rootContextCall(pass, call)
		if name == "" {
			return true
		}
		if name == "Background" && inNilGuard(pass, fd, call) {
			return true
		}
		pass.Reportf(call.Pos(), "context.%s() severs the cancellation chain: propagate the caller's ctx (nil-guard normalization and Deprecated wrappers are exempt)", name)
		return true
	})
}

// ctxParam returns the object of the first context.Context parameter,
// or nil.
func ctxParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		if len(field.Names) == 0 {
			// An anonymous ctx parameter exists but can never be used;
			// surface it through the unused-parameter message instead.
			return types.NewParam(field.Type.Pos(), pass.Pkg, "_", t)
		}
		return pass.TypesInfo.ObjectOf(field.Names[0])
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// rootContextCall returns "Background" or "TODO" when the call is
// context.Background() or context.TODO(), else "".
func rootContextCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "context" {
		return ""
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name
	}
	return ""
}

// isCtxDelegation reports whether the function body is a single return
// statement calling <name>Ctx — the sanctioned context-free convenience
// wrapper around a context-aware variant.
func isCtxDelegation(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	want := fd.Name.Name + "Ctx"
	found := false
	for _, res := range ret.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == want {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == want {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// inNilGuard reports whether the call appears as the right-hand side of
// `x = context.Background()` inside `if x == nil { ... }` — the idiom
// that normalizes an optional caller context.
func inNilGuard(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) bool {
	guard := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || guard {
			return !guard
		}
		obj := nilComparedObject(pass, ifStmt.Cond)
		if obj == nil {
			return true
		}
		for _, stmt := range ifStmt.Body.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			if as.Rhs[0] != call {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				guard = true
			}
		}
		return !guard
	})
	return guard
}

// nilComparedObject returns the object compared against nil in a
// `x == nil` condition, or nil.
func nilComparedObject(pass *analysis.Pass, cond ast.Expr) types.Object {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return nil
	}
	x, y := bin.X, bin.Y
	if isNilIdent(pass, x) {
		x, y = y, x
	}
	if !isNilIdent(pass, y) {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// isNilIdent reports whether the expression is the predeclared nil.
func isNilIdent(pass *analysis.Pass, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}
