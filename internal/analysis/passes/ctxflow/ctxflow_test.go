package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ctxflow"
)

// TestFlagged checks context-free Solve entries, dropped ctx parameters
// and fresh root contexts are caught.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/flagged", "repro/internal/fixture")
}

// TestClean checks the sanctioned idioms — nil-guard normalization,
// single-return Ctx delegation, Deprecated wrappers — stay quiet.
func TestClean(t *testing.T) {
	if diags := analysistest.Diagnostics(t, ctxflow.Analyzer, "testdata/clean", "repro/internal/fixture"); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}
