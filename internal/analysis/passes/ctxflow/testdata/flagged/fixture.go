// Package fixture exercises ctxflow: context-free Solve entry points,
// dropped context parameters, and fresh root contexts.
package fixture

import "context"

// Problem hosts the solver entry points.
type Problem struct{}

// SolvePlain neither accepts a context nor delegates to a Ctx variant.
func (p *Problem) SolvePlain() error { // want "SolvePlain does not accept a context.Context"
	return nil
}

// SolveDropped accepts a context and never reads it.
func SolveDropped(ctx context.Context, n int) int { // want "context parameter ctx is never used"
	return n
}

// Fresh mints a root context inside the library.
func Fresh() context.Context {
	return context.TODO() // want "context.TODO\\(\\) severs the cancellation chain"
}

// Detach swaps the caller's context for a fresh root outside any nil
// guard.
func Detach(ctx context.Context) context.Context {
	_ = ctx
	return context.Background() // want "context.Background\\(\\) severs the cancellation chain"
}
