// Package fixture lists the context idioms ctxflow must accept.
package fixture

import "context"

// Problem hosts the sanctioned shapes.
type Problem struct{}

// SolveCtx is the context-aware variant: it normalizes a nil caller
// context with the sanctioned guard and honors cancellation.
func (p *Problem) SolveCtx(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx.Err()
}

// Solve is the sanctioned convenience wrapper: a single return
// delegating to its own Ctx variant.
func (p *Problem) Solve() error {
	return p.SolveCtx(context.Background())
}

// SolveOld is frozen compatibility surface.
//
// Deprecated: use SolveCtx.
func (p *Problem) SolveOld() error {
	return context.Background().Err()
}
