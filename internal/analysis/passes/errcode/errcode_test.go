package errcode_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/errcode"
)

// TestFlagged checks literal Code fields (keyed and positional) and
// inline JSON codes are caught in a ServiceError-using package.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, errcode.Analyzer, "testdata/flagged", "repro/internal/fixture")
}

// TestCleanWithoutServiceError checks the analyzer stays disarmed in
// packages that never touch a ServiceError-shaped type.
func TestCleanWithoutServiceError(t *testing.T) {
	if diags := analysistest.Diagnostics(t, errcode.Analyzer, "testdata/clean", "repro/internal/fixture"); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}
