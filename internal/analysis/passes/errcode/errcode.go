// Package errcode keeps the serving layer's wire error codes on their
// central constants.
//
// internal/serve promises clients *stable* machine-readable error codes
// ({"error":{"code":...}}): retry logic keys off queue_full vs
// draining, monitoring keys off unsolvable vs internal. That promise
// only holds while every code written to the wire is one of the
// declared Code* constants — a handler typing "que_full" inline
// compiles fine and quietly forks the API. The analyzer flags, in any
// package using a ServiceError-shaped type (a named struct with a
// string Code field):
//
//   - composite literals that set Code to a string literal instead of a
//     constant identifier;
//   - string literals embedding an inline JSON error code
//     (`"code":"..."`), which bypass the struct entirely.
//
// Tests deliberately keep literal codes: asserting on the constant
// would let a constant's value drift without any test noticing, and the
// suite does not analyze test files.
package errcode

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// Analyzer is the errcode pass.
var Analyzer = &analysis.Analyzer{
	Name: "errcode",
	Doc:  "wire error codes must reference the central Code* constants, not string literals",
	Run:  run,
}

// inlineCode matches a JSON error-code key/value pair embedded in a
// string literal.
var inlineCode = regexp.MustCompile(`"code"\s*:\s*"[^"]*"`)

// run flags literal Code fields and inline JSON codes in packages that
// touch a ServiceError-shaped type.
func run(pass *analysis.Pass) error {
	if !usesServiceError(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkLiteral(pass, n)
			case *ast.BasicLit:
				if inlineCode.MatchString(n.Value) {
					pass.Reportf(n.Pos(), "inline JSON error code bypasses ServiceError: build the body from the Code* constants")
				}
			}
			return true
		})
	}
	return nil
}

// usesServiceError reports whether the package defines or imports a
// named struct type called ServiceError with a string field Code.
func usesServiceError(pass *analysis.Pass) bool {
	if isServiceErrorScope(pass.Pkg) {
		return true
	}
	for _, imp := range pass.Pkg.Imports() {
		if isServiceErrorScope(imp) {
			return true
		}
	}
	return false
}

// isServiceErrorScope reports whether the package declares a
// ServiceError type with a string Code field.
func isServiceErrorScope(pkg *types.Package) bool {
	obj := pkg.Scope().Lookup("ServiceError")
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	return codeField(st) >= 0
}

// codeField returns the index of the string field named Code, or -1.
func codeField(st *types.Struct) int {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Code" {
			continue
		}
		if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return i
		}
	}
	return -1
}

// checkLiteral flags a ServiceError composite literal whose Code field
// is set from a string literal.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := derefNamed(t)
	if !ok || named.Obj().Name() != "ServiceError" {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	idx := codeField(st)
	if idx < 0 {
		return
	}
	for i, elt := range lit.Elts {
		var value ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Code" {
				continue
			}
			value = kv.Value
		} else if i == idx {
			value = elt
		} else {
			continue
		}
		if bl, ok := value.(*ast.BasicLit); ok {
			pass.Reportf(bl.Pos(), "wire error code %s is a string literal: reference the exported Code* constants so the stable-codes promise is checkable", bl.Value)
		}
	}
}

// derefNamed unwraps a (possibly pointer) type to its named form.
func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
