// Package fixture exercises errcode: it declares a ServiceError-shaped
// type (which arms the analyzer) and writes codes as literals.
package fixture

// ServiceError mirrors the serving layer's structured error.
type ServiceError struct {
	Status  int
	Code    string
	Message string
}

// CodeQueueFull is the central constant literals should reference.
const CodeQueueFull = "queue_full"

// Bad builds errors from string literals, keyed and positional.
func Bad() []*ServiceError {
	return []*ServiceError{
		{Status: 503, Code: "queue_full", Message: "full"}, // want "wire error code \"queue_full\" is a string literal"
		{429, "slow_down", "later"},                        // want "wire error code \"slow_down\" is a string literal"
	}
}

// Inline bypasses the struct entirely with a pre-baked JSON body.
const Inline = `{"error":{"code":"internal","message":"boom"}}` // want "inline JSON error code bypasses ServiceError"

// Good references the constant and stays quiet.
func Good() *ServiceError {
	return &ServiceError{Status: 503, Code: CodeQueueFull, Message: "full"}
}
