// Package fixture checks errcode's arming gate: with no ServiceError
// type declared or imported, even a literal JSON error code is not this
// analyzer's business.
package fixture

// Payload is an unrelated literal in a package without ServiceError.
const Payload = `{"error":{"code":"internal","message":"boom"}}`
