package obsflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/obsflow"
)

// TestFlaggedInScope checks NewTracer and WithTracer are caught when the
// fixture poses as a package under internal/lp, while FromContext,
// StartSpan and the span methods stay legal.
func TestFlaggedInScope(t *testing.T) {
	analysistest.Run(t, obsflow.Analyzer, "testdata/flagged", "repro/internal/lp/fixture")
}

// TestFlaggedFixtureQuietOutOfScope re-checks the same calls under a
// neutral import path: the scope gate must silence them.
func TestFlaggedFixtureQuietOutOfScope(t *testing.T) {
	diags := analysistest.Diagnostics(t, obsflow.Analyzer, "testdata/flagged", "repro/internal/tools/fixture")
	for _, d := range diags {
		if d.Analyzer == "obsflow" {
			t.Errorf("out-of-scope package flagged: %s", d)
		}
	}
}

// TestCleanOutOfScope checks the edge idiom — minting at the root —
// stays quiet outside the solver scope.
func TestCleanOutOfScope(t *testing.T) {
	if diags := analysistest.Diagnostics(t, obsflow.Analyzer, "testdata/clean", "repro/internal/tools/fixture"); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}
