// Package obsflow enforces the tracing discipline of internal/obs: the
// solver stack participates in a trace only through the context.
//
// A trace is rooted at the edge of the system — steadystate.Solver.Solve
// mints the Tracer, internal/serve and cmd/sweep ask for it — and
// travels down the solver stack inside the context. Library code opens
// spans with obs.StartSpan (or recovers the tracer with obs.FromContext)
// against the context it was handed; it never mints a tracer of its own
// and never re-installs one. A tracer minted mid-stack would fork the
// span tree away from the solve's root — the trace the caller receives
// silently loses the forked spans, and the golden trace-structure tests
// cannot see what was never attached. The analyzer therefore flags, in
// the solver packages (internal/lp, internal/core, internal/scatter,
// internal/gossip, internal/reduce, internal/prefix,
// internal/composite):
//
//   - calls to obs.NewTracer — tracers are minted at the edge only;
//   - calls to obs.WithTracer — installing a tracer is the root's move;
//     library code passes the context it received.
//
// obs.FromContext, obs.StartSpan and every Span/Tracer method remain
// free: they observe the context's trace without re-rooting it.
package obsflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the obsflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "obsflow",
	Doc:  "forbid minting or installing tracers below the solve root (use obs.FromContext/StartSpan)",
	Run:  run,
}

// scope lists the import paths (and their subpackages) that participate
// in traces only through the context.
var scope = []string{
	"repro/internal/lp",
	"repro/internal/core",
	"repro/internal/scatter",
	"repro/internal/gossip",
	"repro/internal/reduce",
	"repro/internal/prefix",
	"repro/internal/composite",
}

// inScope reports whether the package path is one of the solver
// packages or nested under one.
func inScope(path string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// rootOnly names the obs functions reserved for the trace root.
var rootOnly = map[string]string{
	"NewTracer":  "tracers are minted at the edge (Solver.Solve, serve, sweep)",
	"WithTracer": "installing a tracer re-roots the trace; pass the context you received",
}

// run flags obs.NewTracer and obs.WithTracer calls in solver packages.
func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			reason, reserved := rootOnly[sel.Sel.Name]
			if !reserved || !isObsPackage(pass, sel) {
				return true
			}
			pass.Reportf(call.Pos(), "obs.%s below the solve root: %s (use obs.FromContext/StartSpan)",
				sel.Sel.Name, reason)
			return true
		})
	}
	return nil
}

// isObsPackage reports whether sel selects from repro/internal/obs.
func isObsPackage(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "repro/internal/obs"
}
