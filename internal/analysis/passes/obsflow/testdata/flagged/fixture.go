// Package fixture exercises obsflow: this file is type-checked under an
// import path inside internal/lp, where tracers must come from the
// context.
package fixture

import (
	"context"

	"repro/internal/obs"
)

// Fork mints a tracer mid-stack, forking the span tree away from the
// solve's root — both the mint and the install are flagged.
func Fork(ctx context.Context) context.Context {
	t := obs.NewTracer("rogue")   // want "obs.NewTracer below the solve root"
	return obs.WithTracer(ctx, t) // want "obs.WithTracer below the solve root"
}

// Observe participates in the context's trace the sanctioned way:
// FromContext, StartSpan and the span methods stay legal.
func Observe(ctx context.Context) int {
	if obs.FromContext(ctx) == nil {
		return 0
	}
	ctx, span := obs.StartSpan(ctx, "stage")
	span.SetAttr("pivots", 1)
	span.End()
	_ = ctx
	return 1
}
