// Package fixture exercises obsflow's scope gate: minting a tracer is
// exactly what the edge packages (serve, sweep, the root package) do,
// so the same code under a neutral import path must produce no
// findings.
package fixture

import (
	"context"

	"repro/internal/obs"
)

// Root mints and installs a tracer — the edge's legitimate move.
func Root(ctx context.Context) (*obs.Trace, context.Context) {
	t := obs.NewTracer("solve")
	ctx = obs.WithTracer(ctx, t)
	return t.Finish(), ctx
}
