// Package fragmentcontract enforces the fragment contract of
// docs/architecture.md: a fragment declares its variables and registers
// occupancy on caller-owned builders; only the model owner emits the
// shared capacity rows.
//
// Composites superpose several collectives on one lp.Model by handing
// every fragment the same core.OccupancyBuilder/core.ComputeBuilder and
// flushing the builders exactly once after all fragments have
// registered. Two mistakes break that superposition silently — the LP
// stays solvable but stops modeling shared capacity:
//
//   - a fragment flushing a builder it received (each flush emits the
//     one-port/compute rows again, so members stop sharing them);
//   - a fragment hand-writing one-port / edge-occupation / compute rows
//     straight into the model, bypassing the builders that merge
//     occupancy across members.
//
// The analyzer flags, in every package: calls to AddConstraints on a
// builder that is a parameter of the enclosing function (the model
// owner constructs its builders locally), and — outside internal/core,
// where the builders live — lp.Model.AddConstraint calls whose
// constraint name contains the shared-row markers "oneport",
// "edge_occ(" or "compute(".
package fragmentcontract

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the fragmentcontract pass.
var Analyzer = &analysis.Analyzer{
	Name: "fragmentcontract",
	Doc:  "fragments register occupancy on shared builders; only the model owner flushes or emits capacity rows",
	Run:  run,
}

// corePath is the package owning the builders (exempt from the
// shared-row-name rule).
const corePath = "repro/internal/core"

// sharedRowMarkers are substrings of constraint names that identify the
// builder-owned capacity rows.
var sharedRowMarkers = []string{"oneport", "edge_occ(", "compute("}

// run applies both rules to every function declaration.
func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := paramObjects(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkBuilderFlush(pass, call, params)
				if pass.Pkg.Path() != corePath {
					checkHandWrittenRow(pass, call)
				}
				return true
			})
		}
	}
	return nil
}

// paramObjects collects the objects of the function's parameters
// (receiver included: a fragment method flushing a builder stored on
// itself is caught by the field's receiver path being a parameter).
func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	set := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
					set[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return set
}

// checkBuilderFlush flags builder.AddConstraints(...) when builder is a
// parameter of the enclosing function.
func checkBuilderFlush(pass *analysis.Pass, call *ast.CallExpr, params map[types.Object]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "AddConstraints" {
		return
	}
	recvType := pass.TypesInfo.TypeOf(sel.X)
	if !isBuilderType(recvType) {
		return
	}
	id := rootIdent(sel.X)
	if id == nil {
		return
	}
	if obj := pass.TypesInfo.ObjectOf(id); obj != nil && params[obj] {
		pass.Reportf(call.Pos(), "flushing a shared %s received as a parameter: fragments only register occupancy; the model owner calls AddConstraints once after all fragments", builderName(recvType))
	}
}

// rootIdent unwraps a selector/index/pointer path (b, pr.occ, s.b[i])
// to its root identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// checkHandWrittenRow flags lp.Model.AddConstraint calls whose name
// argument carries a shared-row marker.
func checkHandWrittenRow(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "AddConstraint" || len(call.Args) == 0 {
		return
	}
	if !isNamedType(pass.TypesInfo.TypeOf(sel.X), "repro/internal/lp", "Model") {
		return
	}
	name := stringArgText(call.Args[0])
	if name == "" {
		return
	}
	for _, marker := range sharedRowMarkers {
		if strings.Contains(name, marker) {
			pass.Reportf(call.Pos(), "hand-written %q row bypasses the shared builders: register occupancy on core.OccupancyBuilder/ComputeBuilder instead", marker)
			return
		}
	}
}

// stringArgText extracts the literal text of a constraint-name argument:
// a plain string literal, or the format literal of a fmt.Sprintf call.
func stringArgText(arg ast.Expr) string {
	switch a := arg.(type) {
	case *ast.BasicLit:
		return a.Value
	case *ast.CallExpr:
		if sel, ok := a.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sprintf" && len(a.Args) > 0 {
			if lit, ok := a.Args[0].(*ast.BasicLit); ok {
				return lit.Value
			}
		}
	case *ast.BinaryExpr:
		return stringArgText(a.X) + stringArgText(a.Y)
	}
	return ""
}

// isBuilderType reports whether t is (a pointer to) core's
// OccupancyBuilder or ComputeBuilder.
func isBuilderType(t types.Type) bool {
	return isNamedType(t, corePath, "OccupancyBuilder") || isNamedType(t, corePath, "ComputeBuilder")
}

// builderName renders the builder type for diagnostics.
func builderName(t types.Type) string {
	if isNamedType(t, corePath, "ComputeBuilder") {
		return "ComputeBuilder"
	}
	return "OccupancyBuilder"
}

// isNamedType reports whether t (or its pointee) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
