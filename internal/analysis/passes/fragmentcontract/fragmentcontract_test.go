package fragmentcontract_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/fragmentcontract"
)

// TestFlagged checks parameter-builder flushes and hand-written shared
// rows are caught.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, fragmentcontract.Analyzer, "testdata/flagged", "repro/internal/fragfixture")
}

// TestClean checks owner-side flushes, fragment registration and
// fragment-owned rows stay quiet.
func TestClean(t *testing.T) {
	if diags := analysistest.Diagnostics(t, fragmentcontract.Analyzer, "testdata/clean", "repro/internal/fragfixture"); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}
