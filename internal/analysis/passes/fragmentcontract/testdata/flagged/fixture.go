// Package fixture exercises fragmentcontract: a fragment flushing a
// shared builder it received, and hand-written shared-capacity rows.
// The fixture imports the real core and lp packages so the type checks
// are the same ones the repository faces.
package fixture

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/rat"
)

// Fragment registers occupancy correctly and then wrongly flushes the
// builder it was handed.
func Fragment(m *lp.Model, occ *core.OccupancyBuilder, from, to graph.NodeID) {
	v := m.Var("x")
	occ.Add(from, to, v, rat.One())
	occ.AddConstraints(m) // want "flushing a shared OccupancyBuilder received as a parameter"
}

// Compute does the same with the compute builder.
func Compute(m *lp.Model, cb *core.ComputeBuilder, node graph.NodeID) {
	cb.Add(node, m.Var("w"), rat.One())
	cb.AddConstraints(m) // want "flushing a shared ComputeBuilder received as a parameter"
}

// HandRows writes builder-owned capacity rows straight into the model.
func HandRows(m *lp.Model, v lp.Var, n int) {
	expr := lp.NewExpr().Plus(rat.One(), v)
	m.AddConstraint("oneport_out(A)", expr, lp.Leq, rat.One())               // want "hand-written \"oneport\" row"
	m.AddConstraint(fmt.Sprintf("edge_occ(%d)", n), expr, lp.Leq, rat.One()) // want "hand-written \"edge_occ\\(\" row"
	m.AddConstraint("compute("+"A)", expr, lp.Leq, rat.One())                // want "hand-written \"compute\\(\" row"
}
