// Package fixture lists the builder usages fragmentcontract must
// accept.
package fixture

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/rat"
)

// Owner constructs its own builder and flushes it once — the model
// owner's job.
func Owner(p *graph.Platform, from, to graph.NodeID) *lp.Model {
	m := lp.NewMaximize()
	occ := core.NewOccupancy(p)
	occ.Add(from, to, m.Var("x"), rat.One())
	occ.AddConstraints(m)
	return m
}

// Register is a well-behaved fragment: it only registers occupancy on
// the builder it received.
func Register(occ *core.OccupancyBuilder, from, to graph.NodeID, v lp.Var) {
	occ.Add(from, to, v, rat.One())
}

// Conservation rows are fragment-owned, not builder-owned; writing them
// directly is the contract.
func Conservation(m *lp.Model, v lp.Var) {
	m.AddConstraint("conserve(A,m_B)", lp.NewExpr().Plus(rat.One(), v), lp.Eq, rat.Zero())
}
