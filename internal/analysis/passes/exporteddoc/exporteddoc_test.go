package exporteddoc_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/exporteddoc"
)

// TestFlagged checks undocumented functions, types and methods are
// caught, and unexported receivers are exempt.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, exporteddoc.Analyzer, "testdata/flagged", "repro/internal/fixture")
}

// TestFlaggedValueSpecs checks undocumented vars and consts
// programmatically (a same-line want comment would count as the trailing
// doc comment the rule accepts).
func TestFlaggedValueSpecs(t *testing.T) {
	diags := analysistest.Diagnostics(t, exporteddoc.Analyzer, "testdata/vars", "repro/internal/fixture")
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for i, want := range []string{"exported var Undocumented", "exported const Loose"} {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diagnostic %d = %q, want mention of %q", i, diags[i].Message, want)
		}
	}
}

// TestClean checks every accepted documentation style stays quiet.
func TestClean(t *testing.T) {
	if diags := analysistest.Diagnostics(t, exporteddoc.Analyzer, "testdata/clean", "repro/internal/fixture"); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}
