// Package fixture lists the documentation styles exporteddoc accepts.
package fixture

// Documented carries a doc comment.
func Documented() {}

// Thing is documented on the spec.
type Thing struct{}

// Method is documented.
func (t Thing) Method() {}

// Grouped constants share the group's doc comment.
const (
	A = 1
	B = 2
)

// Enum-like specs may use trailing line comments instead.
var (
	C = 3 // C is the third value.
)

func unexported() {}
