// Package fixture exercises exporteddoc: undocumented exported
// functions, types and methods.
package fixture

func Exported() {} // want "exported function Exported is missing a doc comment"

type Thing struct{} // want "exported type Thing is missing a doc comment"

func (t Thing) Method() {} // want "exported method Thing.Method is missing a doc comment"

type hidden struct{}

// Method on an unexported type is not API surface.
func (h hidden) Method() {}
