// Package fixture holds undocumented value specs. The expectations live
// in the test, not in want comments: a trailing comment on a const/var
// spec counts as documentation, so a same-line want would legalize the
// very line it checks.
package fixture

var Undocumented = 1

const Loose = 2
