// Package exporteddoc enforces the repository's documentation bar:
// every exported identifier carries a doc comment. It is cmd/doccheck's
// rule (PR 5) ported onto the analysis framework, so one sslint run
// covers documentation alongside the exactness and determinism
// invariants; cmd/doccheck remains as a thin wrapper over CheckFile.
//
// The rule, unchanged from doccheck:
//
//   - functions and methods (methods only when their receiver type is
//     itself exported) need a doc comment on the declaration;
//   - types need a doc comment on the declaration group or the spec;
//   - consts and vars need a doc comment on the group, the spec, or a
//     trailing line comment (the idiomatic style for enum-like groups).
package exporteddoc

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the exporteddoc pass.
var Analyzer = &analysis.Analyzer{
	Name: "exporteddoc",
	Doc:  "every exported identifier carries a doc comment",
	Run:  run,
}

// A Finding is one undocumented exported identifier.
type Finding struct {
	// Pos locates the offending declaration.
	Pos token.Pos
	// What classifies the identifier: function, method, type, const or
	// var.
	What string
	// Name is the identifier (method findings are receiver-qualified).
	Name string
}

// run reports a diagnostic per undocumented exported identifier.
func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, finding := range CheckFile(f) {
			pass.Reportf(finding.Pos, "exported %s %s is missing a doc comment", finding.What, finding.Name)
		}
	}
	return nil
}

// CheckFile returns the file's undocumented exported identifiers in
// declaration order. cmd/doccheck calls it directly on parsed
// directories.
func CheckFile(f *ast.File) []Finding {
	var out []Finding
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			out = append(out, checkFunc(d)...)
		case *ast.GenDecl:
			out = append(out, checkGen(d)...)
		}
	}
	return out
}

// checkFunc flags exported functions — and methods on exported receiver
// types — without doc comments.
func checkFunc(d *ast.FuncDecl) []Finding {
	if !d.Name.IsExported() || d.Doc != nil {
		return nil
	}
	what, name := "function", d.Name.Name
	if d.Recv != nil && len(d.Recv.List) > 0 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return nil // a method on an unexported type is not API surface
		}
		what, name = "method", recv+"."+d.Name.Name
	}
	return []Finding{{Pos: d.Pos(), What: what, Name: name}}
}

// checkGen flags exported type, const and var specs whose group and
// spec both lack documentation.
func checkGen(d *ast.GenDecl) []Finding {
	var out []Finding
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				out = append(out, Finding{Pos: s.Pos(), What: "type", Name: s.Name.Name})
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			what := "const"
			if d.Tok == token.VAR {
				what = "var"
			}
			for _, name := range s.Names {
				if name.IsExported() {
					out = append(out, Finding{Pos: name.Pos(), What: what, Name: name.Name})
				}
			}
		}
	}
	return out
}

// receiverName unwraps a method receiver's type expression to its named
// type, looking through pointers and generic instantiations.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
