// Package analysis is the repository's static-analysis framework: a
// self-contained, stdlib-only reimplementation of the vocabulary of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic), sized for
// this module.
//
// The steady-state stack's headline guarantee is *exactness*: every
// throughput is a rational number, Reports are byte-identical across
// runs (golden sweeps, solverd's cache-hit identity, CI's
// served-vs-swept diff), and cancellation is threaded from the HTTP
// edge into the simplex between pivots. Those guarantees rest on
// conventions — no floats near the LP, no map-iteration order leaking
// into output, no dropped contexts — that nothing enforced until now.
// The analyzers under passes/ mechanize them, and cmd/sslint runs the
// whole suite on every commit.
//
// Why not golang.org/x/tools/go/analysis itself: the module is
// deliberately stdlib-only (see the internal/lp package doc), so the
// framework is reimplemented in miniature. The Analyzer/Pass/Diagnostic
// shape mirrors x/tools deliberately — each pass's Run func would port
// to the real framework with only import changes — but the driver here
// loads packages with `go list -export` and type-checks them against
// the compiler's export data via go/importer, instead of go/packages.
//
// # Suppressing a finding
//
// A finding is suppressed by a directive comment
//
//	//sslint:allow <reason>
//
// placed at the end of the flagged line or alone on the line directly
// above it. The reason is mandatory: a bare //sslint:allow is itself
// reported as a violation, so every suppression documents why the
// invariant does not apply (e.g. the float64 density telemetry in
// lp.Model.Stats, which never feeds back into rational arithmetic).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, a documentation string, and a
// Run function applied to every package under analysis. The shape
// mirrors golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the sslint
	// command line. By convention it is a single lowercase word.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then details.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. A non-nil error aborts the whole analysis (it means
	// the analyzer itself failed, not that the code has findings).
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package: its
// syntax, its type information, and a sink for diagnostics. The shape
// mirrors golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files is the package's parsed syntax, comments included. Test
	// files are not loaded: the suite checks shipping code, and test
	// helpers (fixtures, golden writers) routinely bend the invariants
	// on purpose.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and object resolutions for Files.
	TypesInfo *types.Info
	// report receives each finding; installed by the driver.
	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a position, the analyzer that produced
// it, and a message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}
