// Package sslint assembles the repository's analyzer suite — the eight
// passes that mechanize the exactness, determinism, context, fragment,
// error-code, tracing, warm-start provenance and documentation
// invariants — for cmd/sslint and the driver-level tests.
package sslint

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/basisflow"
	"repro/internal/analysis/passes/ctxflow"
	"repro/internal/analysis/passes/errcode"
	"repro/internal/analysis/passes/exporteddoc"
	"repro/internal/analysis/passes/fragmentcontract"
	"repro/internal/analysis/passes/mapdeterminism"
	"repro/internal/analysis/passes/obsflow"
	"repro/internal/analysis/passes/ratfloat"
)

// Suite returns the full analyzer suite in stable (alphabetical) order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		basisflow.Analyzer,
		ctxflow.Analyzer,
		errcode.Analyzer,
		exporteddoc.Analyzer,
		fragmentcontract.Analyzer,
		mapdeterminism.Analyzer,
		obsflow.Analyzer,
		ratfloat.Analyzer,
	}
}

// ByName returns the named analyzers from the suite, or false when a
// name is unknown.
func ByName(names []string) ([]*analysis.Analyzer, bool) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range Suite() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
