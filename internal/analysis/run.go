// run.go is the driver: load packages, run every analyzer over every
// package, apply //sslint:allow suppression, and return the surviving
// diagnostics sorted by position.
package analysis

import (
	"fmt"
	"sort"
)

// Run loads the packages matching patterns from the module at dir and
// applies every analyzer to every package. It returns the diagnostics
// that survive //sslint:allow suppression — plus one diagnostic per
// bare (reason-less) allow directive — sorted by file, line and column.
// A non-nil error means the analysis itself could not run (load or
// type-check failure, analyzer crash), not that findings exist.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackage applies the analyzers to one loaded package and returns
// the unsuppressed diagnostics (unsorted). analysistest uses it to run
// a single analyzer over a fixture package.
func RunPackage(pkg *LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := collectAllows(pkg.Fset, pkg.Files)
	diags := allows.bareDirectives(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			if !allows.allowed(d.Pos) {
				diags = append(diags, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	return diags, nil
}

// sortDiagnostics orders diagnostics by file, line, column, then
// analyzer name, for stable output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
