// suppress.go implements the //sslint:allow suppression directive: a
// finding is dropped when the flagged line, or the line directly above
// it, carries an allow directive with a non-empty reason. Bare
// directives are themselves findings — a suppression without a recorded
// reason is exactly the kind of silent convention the suite exists to
// remove.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is the comment prefix of a suppression.
const allowDirective = "sslint:allow"

// allowSet records, per file and line, the reason of an allow directive
// (empty string for a bare directive).
type allowSet map[string]map[int]string

// collectAllows scans a package's comments for allow directives.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]string)
					set[pos.Filename] = lines
				}
				lines[pos.Line] = strings.TrimSpace(text)
			}
		}
	}
	return set
}

// directiveText reports whether the comment is an allow directive and
// returns the text after the directive name (the reason).
func directiveText(comment string) (string, bool) {
	// Directive comments use the //-style with no space before the
	// name, like //go:build and //nolint.
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false
	}
	rest, ok := strings.CutPrefix(strings.TrimSpace(body), allowDirective)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //sslint:allowance
	}
	return rest, true
}

// allowed reports whether a diagnostic at pos is suppressed: an allow
// directive with a non-empty reason sits on the same line or the line
// directly above.
func (s allowSet) allowed(pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if reason, ok := lines[line]; ok && reason != "" {
			return true
		}
	}
	return false
}

// bareDirectives returns a diagnostic for every allow directive whose
// reason is empty, in file order.
func (s allowSet) bareDirectives(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok || strings.TrimSpace(text) != "" {
					continue
				}
				out = append(out, Diagnostic{
					Pos:      fset.Position(c.Pos()),
					Analyzer: "sslint",
					Message:  "//sslint:allow without a reason: say why the invariant does not apply here",
				})
			}
		}
	}
	return out
}
