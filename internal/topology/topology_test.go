package topology

import (
	"testing"

	"repro/internal/rat"
)

func TestStar(t *testing.T) {
	p := Star(4, rat.One(), rat.One())
	if p.NumNodes() != 5 || p.NumEdges() != 8 {
		t.Errorf("star: %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("star invalid: %v", err)
	}
}

func TestChain(t *testing.T) {
	p := Chain(5, rat.One(), rat.One())
	if p.NumNodes() != 5 || p.NumEdges() != 8 {
		t.Errorf("chain: %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if d := p.HopDiameter(); d != 4 {
		t.Errorf("chain diameter = %d, want 4", d)
	}
}

func TestRing(t *testing.T) {
	p := Ring(6, rat.One(), rat.One())
	if p.NumNodes() != 6 || p.NumEdges() != 12 {
		t.Errorf("ring: %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if d := p.HopDiameter(); d != 3 {
		t.Errorf("ring diameter = %d, want 3", d)
	}
}

func TestRingTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ring(2) did not panic")
		}
	}()
	Ring(2, rat.One(), rat.One())
}

func TestGrid2D(t *testing.T) {
	p := Grid2D(3, 4, rat.One(), rat.One())
	if p.NumNodes() != 12 {
		t.Errorf("grid nodes = %d, want 12", p.NumNodes())
	}
	// Undirected edge count: 3·3 + 2·4 = 17 → 34 directed.
	if p.NumEdges() != 34 {
		t.Errorf("grid edges = %d, want 34", p.NumEdges())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("grid invalid: %v", err)
	}
}

func TestRandomTreeConnectedAndDeterministic(t *testing.T) {
	cfg := DefaultRandomConfig(7)
	p := RandomTree(12, cfg)
	if p.NumNodes() != 12 || p.NumEdges() != 22 {
		t.Errorf("tree: %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("tree invalid: %v", err)
	}
	q := RandomTree(12, cfg)
	if p.String() != q.String() {
		t.Error("same seed produced different trees")
	}
	// Deterministic down to edge costs.
	for _, e := range p.Edges() {
		qe, ok := q.FindEdge(e.From, e.To)
		if !ok || !rat.Eq(qe.Cost, e.Cost) {
			t.Fatalf("same seed differs on edge %v", e)
		}
	}
}

func TestRandomConnectedAddsEdges(t *testing.T) {
	cfg := DefaultRandomConfig(11)
	tree := RandomTree(10, cfg)
	p := RandomConnected(10, 0.5, cfg)
	if p.NumEdges() <= tree.NumEdges() {
		t.Errorf("RandomConnected added no edges: %d vs %d", p.NumEdges(), tree.NumEdges())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestTiersStructure(t *testing.T) {
	cfg := DefaultTiersConfig(3)
	p := Tiers(cfg)
	if err := p.Validate(); err != nil {
		t.Fatalf("tiers invalid: %v", err)
	}
	parts := p.Participants()
	if len(parts) != cfg.LANs*cfg.LANNodes {
		t.Errorf("participants = %d, want %d", len(parts), cfg.LANs*cfg.LANNodes)
	}
	// All participants are LAN nodes with positive speed.
	for _, id := range parts {
		n := p.Node(id)
		if n.Speed.Sign() <= 0 {
			t.Errorf("participant %s has speed %s", n.Name, n.Speed.RatString())
		}
	}
	// Deterministic for a seed.
	q := Tiers(cfg)
	if p.String() != q.String() {
		t.Error("same seed produced different tiers platforms")
	}
}

func TestTiersNoMANs(t *testing.T) {
	cfg := DefaultTiersConfig(5)
	cfg.MANs = 0
	p := Tiers(cfg)
	if err := p.Validate(); err != nil {
		t.Fatalf("tiers (no MANs) invalid: %v", err)
	}
}

func TestPaperFig2(t *testing.T) {
	p, source, targets := PaperFig2()
	if p.NumNodes() != 5 || p.NumEdges() != 5 {
		t.Errorf("fig2: %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if p.Node(source).Name != "Ps" {
		t.Errorf("source = %s", p.Node(source).Name)
	}
	if len(targets) != 2 {
		t.Fatalf("targets = %v", targets)
	}
	for _, tgt := range targets {
		if !p.CanReach(source, tgt) {
			t.Errorf("source cannot reach %s", p.Node(tgt).Name)
		}
	}
	// The two routes to P0 must both exist (multi-path optimality).
	pa := p.MustLookup("Pa")
	pb := p.MustLookup("Pb")
	p0 := p.MustLookup("P0")
	if _, ok := p.FindEdge(pa, p0); !ok {
		t.Error("missing Pa→P0")
	}
	if _, ok := p.FindEdge(pb, p0); !ok {
		t.Error("missing Pb→P0")
	}
	if !rat.Eq(p.Cost(pa, p0), rat.New(2, 3)) {
		t.Errorf("c(Pa,P0) = %s, want 2/3", p.Cost(pa, p0).RatString())
	}
}

func TestPaperFig6(t *testing.T) {
	p, order, target := PaperFig6()
	if p.NumNodes() != 3 || p.NumEdges() != 6 {
		t.Errorf("fig6: %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if len(order) != 3 || order[0] != target {
		t.Errorf("order = %v target = %v", order, target)
	}
	if !rat.Eq(p.Node(target).Speed, rat.Int(2)) {
		t.Errorf("target speed = %s, want 2", p.Node(target).Speed.RatString())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("fig6 invalid: %v", err)
	}
}

func TestPaperFig9(t *testing.T) {
	p, order, target := PaperFig9()
	if p.NumNodes() != 14 {
		t.Errorf("fig9 nodes = %d, want 14", p.NumNodes())
	}
	if p.NumEdges() != 34 { // 17 symmetric links
		t.Errorf("fig9 edges = %d, want 34", p.NumEdges())
	}
	if len(order) != 8 {
		t.Fatalf("fig9 participants = %d, want 8", len(order))
	}
	if err := p.Validate(); err != nil {
		t.Errorf("fig9 invalid: %v", err)
	}
	// Speeds from the figure, in logical-index order.
	wantSpeeds := []int64{15, 55, 79, 75, 92, 38, 64, 17}
	for i, id := range order {
		if !rat.Eq(p.Node(id).Speed, rat.Int(wantSpeeds[i])) {
			t.Errorf("speed of index %d (%s) = %s, want %d",
				i, p.Node(id).Name, p.Node(id).Speed.RatString(), wantSpeeds[i])
		}
	}
	// Target is node6, logical index 4.
	if p.Node(target).Name != "node6" || order[4] != target {
		t.Errorf("target = %s (order[4]=%v)", p.Node(target).Name, order[4])
	}
	// Routers are node0..node5.
	for i := 0; i <= 5; i++ {
		id := p.MustLookup(nodeName(i))
		if !p.Node(id).Router {
			t.Errorf("node%d should be a router", i)
		}
	}
	if !rat.Eq(PaperFig9MessageSize(), rat.Int(10)) {
		t.Error("message size should be 10")
	}
	// Paths used by the paper's reduction trees must exist, e.g. the
	// [0,7] route 10→4→12→5→0→1→2→6.
	route := []int{10, 4, 12, 5, 0, 1, 2, 6}
	for i := 0; i+1 < len(route); i++ {
		from := p.MustLookup(nodeName(route[i]))
		to := p.MustLookup(nodeName(route[i+1]))
		if _, ok := p.FindEdge(from, to); !ok {
			t.Errorf("missing edge node%d→node%d from the paper's tree routes", route[i], route[i+1])
		}
	}
}

func TestInvalidConfigsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"bad bandwidth": func() {
			cfg := DefaultRandomConfig(1)
			cfg.MinBandwidth = 0
			RandomTree(3, cfg)
		},
		"bad speed": func() {
			cfg := DefaultRandomConfig(1)
			cfg.MaxSpeed = 0
			RandomTree(3, cfg)
		},
		"bad tiers": func() {
			cfg := DefaultTiersConfig(1)
			cfg.LANs = 0
			Tiers(cfg)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
