package topology

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rat"
)

// PaperFig2 returns the toy scatter platform of the paper's Figure 2:
//
//	        Ps
//	   1 /      \ 1
//	   Pa        Pb
//	2/3 |   4/3 /  \ 4/3
//	   P0 <----+    P1
//
// One source Ps sends messages to targets P0 and P1; Pa and Pb forward.
// The optimal steady-state throughput is TP = 1/2 (one scatter every two
// time units), and the optimal solution routes P0's messages over both Pa
// and Pb.
func PaperFig2() (p *graph.Platform, source graph.NodeID, targets []graph.NodeID) {
	p = graph.New()
	ps := p.AddNode("Ps", rat.One())
	pa := p.AddRouter("Pa")
	pb := p.AddRouter("Pb")
	p0 := p.AddNode("P0", rat.One())
	p1 := p.AddNode("P1", rat.One())
	p.AddEdge(ps, pa, rat.One())
	p.AddEdge(ps, pb, rat.One())
	p.AddEdge(pa, p0, rat.New(2, 3))
	p.AddEdge(pb, p0, rat.New(4, 3))
	p.AddEdge(pb, p1, rat.New(4, 3))
	return p, ps, []graph.NodeID{p0, p1}
}

// PaperFig6 returns the toy reduce platform of the paper's Figure 6: three
// processors P0, P1, P2 in a triangle. Every edge used by the optimal
// solution has cost 1; the unused edges out of the target have cost 2 (the
// figure's remaining label). Every processor computes any task in one time
// unit except P0, which runs two tasks per time unit (speed 2 with unit
// message size). The target is P0 and the optimal steady-state throughput
// is TP = 1 (three reduces every three time units).
//
// The participant logical order is (P0, P1, P2): P_i holds v_i.
func PaperFig6() (p *graph.Platform, order []graph.NodeID, target graph.NodeID) {
	p = graph.New()
	p0 := p.AddNode("P0", rat.Int(2))
	p1 := p.AddNode("P1", rat.One())
	p2 := p.AddNode("P2", rat.One())
	p.AddEdge(p0, p1, rat.Int(2))
	p.AddEdge(p0, p2, rat.Int(2))
	p.AddEdge(p1, p0, rat.One())
	p.AddEdge(p1, p2, rat.One())
	p.AddEdge(p2, p0, rat.One())
	p.AddEdge(p2, p1, rat.One())
	return p, []graph.NodeID{p0, p1, p2}, p0
}

// PaperFig9 returns the Tiers-generated platform of the paper's Figure 9:
// 14 nodes, of which 6 (node0–node5) are routers and 8 participate in the
// reduction. The edge set and processor speeds are reproduced exactly from
// the figure; link bandwidths are chosen within the ranges visible in the
// figure (LAN 1000, MAN ≈125–295, WAN ≈2–14; costs are 1/bandwidth), since
// the exact random draws are not recoverable from the published figure —
// see DESIGN.md for this substitution.
//
// The returned order lists participants by their logical index 0..7
// (node11, node8, node13, node9, node6, node12, node7, node10), so P_i in
// the reduction is order[i]. The target is node6 (logical index 4). The
// paper reports TP = 2/9 with message size 10 and task time 10/speed.
func PaperFig9() (p *graph.Platform, order []graph.NodeID, target graph.NodeID) {
	p = graph.New()
	var n [14]graph.NodeID
	// Routers node0..node5.
	for i := 0; i <= 5; i++ {
		n[i] = p.AddRouter(nodeName(i))
	}
	speeds := map[int]int64{
		6: 92, 7: 64, 8: 55, 9: 75, 10: 17, 11: 15, 12: 38, 13: 79,
	}
	for i := 6; i <= 13; i++ {
		n[i] = p.AddNode(nodeName(i), rat.Int(speeds[i]))
	}

	link := func(a, b int, bandwidth int64) {
		p.AddLink(n[a], n[b], rat.New(1, bandwidth))
	}
	// WAN core (router–router).
	link(0, 1, 10)
	link(0, 5, 5)
	link(1, 2, 8)
	link(2, 3, 2)
	link(4, 5, 14)
	// MAN / LAN-attachment links (router–participant).
	link(2, 6, 266)
	link(2, 8, 208)
	link(3, 6, 240)
	link(3, 8, 286)
	link(4, 10, 182)
	link(4, 12, 295)
	link(5, 10, 144)
	link(5, 12, 146)
	// LAN-internal links (participant–participant).
	link(6, 7, 1000)
	link(8, 9, 1000)
	link(10, 11, 1000)
	link(12, 13, 1000)

	order = []graph.NodeID{n[11], n[8], n[13], n[9], n[6], n[12], n[7], n[10]}
	return p, order, n[6]
}

// PaperFig9MessageSize is the uniform partial-result size used by the
// paper's Figure 9 experiment.
func PaperFig9MessageSize() rat.Rat { return rat.Int(10) }

func nodeName(i int) string {
	return fmt.Sprintf("node%d", i)
}
