package sim

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/graph"
)

// MemberPrefix returns the commodity-namespace prefix of member i in a
// merged model: "op<i>:", matching the transfer labels of the merged
// periodic schedule (schedule.MergeFlows via composite.Solution.Schedule).
// Pass it to Result.MinDeliveredPrefix to read one member's deliveries out
// of a merged replay.
func MemberPrefix(i int) string { return fmt.Sprintf("op%d:", i) }

// Merge superposes per-member simulation models into one model over a
// common period — the dynamic counterpart of schedule.MergeFlows. Every
// member model's period must divide the merged period (the composite
// period is the LCM of all member rates, so this holds by construction for
// composite solutions); member quotas and counts are scaled up by the
// period ratio and every member's types are namespaced with its label, so
// the members' buffer dynamics stay fully disjoint: the merged replay is
// the exact union of the member replays at merged-period granularity. The
// shared one-port budget is what the members' joint LP (and the merged
// schedule's matching decomposition) already guarantees per merged period;
// the replay adds the dynamic part — pipeline fill and per-member
// delivered counts.
func Merge(p *graph.Platform, period *big.Int, members []*Model, labels []string) (*Model, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("sim: merge needs at least one member model")
	}
	if len(labels) != len(members) {
		return nil, fmt.Errorf("sim: merge got %d models but %d labels", len(members), len(labels))
	}
	if period == nil || period.Sign() <= 0 {
		return nil, fmt.Errorf("sim: merged period must be positive")
	}
	out := &Model{
		Platform:  p,
		Period:    new(big.Int).Set(period),
		Sources:   make(map[Endpoint]bool),
		Sinks:     make(map[Endpoint]bool),
		SinkQuota: make(map[Endpoint]*big.Int),
	}
	seen := make(map[string]bool)
	for i, mm := range members {
		label := labels[i]
		switch {
		case mm == nil:
			return nil, fmt.Errorf("sim: member %d has no model", i)
		case mm.Platform != p:
			return nil, fmt.Errorf("sim: member %d is bound to a different platform", i)
		case label == "" || seen[label]:
			return nil, fmt.Errorf("sim: member %d has empty or duplicate label %q", i, label)
		}
		seen[label] = true
		if err := mm.Validate(); err != nil {
			return nil, fmt.Errorf("sim: member %d (%s): %w", i, label, err)
		}
		scale, rem := new(big.Int).QuoRem(period, mm.Period, new(big.Int))
		if rem.Sign() != 0 {
			return nil, fmt.Errorf("sim: member %d period %s does not divide merged period %s",
				i, mm.Period, period)
		}
		ns := func(t TypeID) TypeID { return TypeID(label) + t }
		for _, t := range mm.Transfers {
			out.Transfers = append(out.Transfers, Transfer{
				From: t.From, To: t.To, Type: ns(t.Type),
				Count: new(big.Int).Mul(t.Count, scale),
			})
		}
		for _, r := range mm.Rules {
			consumes := make([]TypeID, len(r.Consumes))
			for j, c := range r.Consumes {
				consumes[j] = ns(c)
			}
			out.Rules = append(out.Rules, Rule{
				Node:     r.Node,
				Consumes: consumes,
				Produces: ns(r.Produces),
				Count:    new(big.Int).Mul(r.Count, scale),
				Order:    r.Order,
			})
		}
		for e := range mm.Sources {
			out.Sources[Endpoint{e.Node, ns(e.Type)}] = true
		}
		for e := range mm.Sinks {
			out.Sinks[Endpoint{e.Node, ns(e.Type)}] = true
		}
		for e, q := range mm.SinkQuota {
			out.SinkQuota[Endpoint{e.Node, ns(e.Type)}] = new(big.Int).Mul(q, scale)
		}
	}
	sort.Slice(out.Transfers, func(i, j int) bool { return transferLess(out.Transfers[i], out.Transfers[j]) })
	sort.Slice(out.Rules, func(i, j int) bool { return ruleLess(out.Rules[i], out.Rules[j]) })
	return out, nil
}
