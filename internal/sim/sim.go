// Package sim executes steady-state plans dynamically, playing the role of
// the paper's experimental validation: it runs the buffered periodic
// protocol of Section 3.4 over a finite horizon and measures the actually
// delivered operations, so that Lemma 1 (no schedule beats TP·K) and
// Propositions 1–3 (the protocol asymptotically reaches TP·K) can be
// checked numerically rather than just symbolically.
//
// The simulator works at period granularity: intra-period one-port
// feasibility is the schedule package's job (matching decomposition);
// what is simulated here is the part the static schedule cannot show —
// pipeline fill, buffer growth, and the start-up losses that make the
// achieved-to-optimal ratio approach 1 only in the limit.
//
// The engine is generic: a Model has typed buffers per node, per-period
// transfer quotas, per-period production rules (reduction tasks), infinite
// sources (initial values), and sinks that count deliveries (optionally up
// to a per-period quota, with the surplus kept buffered for forwarding).
// Adapters in this package build models from every solved kind: scatter
// and gossip flows, reduce applications, broadcast solutions (the shared
// carry stream replayed with per-target replication), prefix solutions
// (quota sinks per rank), and — via Merge — composite solutions
// (reduce-scatter, allreduce, arbitrary composites), whose member models
// are superposed over the merged period under per-member commodity
// namespaces.
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/rat"
)

// TypeID identifies a message type within a model ("m_P0", "v[1,6]", …).
type TypeID string

// Transfer is a per-period transfer quota: Count messages of Type moved
// From → To each period (when the sender's buffer allows).
type Transfer struct {
	From, To graph.NodeID
	Type     TypeID
	Count    *big.Int
}

// Rule is a per-period production quota: Count executions per period, each
// consuming one message of every type in Consumes and producing one of
// Produces, on Node. Reduction tasks consume {v[k,l], v[l+1,m]} and
// produce v[k,m].
type Rule struct {
	Node     graph.NodeID
	Consumes []TypeID
	Produces TypeID
	Count    *big.Int
	// order resolves intra-period chains: rules execute in ascending
	// order, so a rule may consume what a lower-ordered rule produced in
	// the same period. Reduce adapters use the result-range length.
	Order int
}

// Endpoint names a (node, type) pair.
type Endpoint struct {
	Node graph.NodeID
	Type TypeID
}

// Model is a complete simulation input.
type Model struct {
	Platform *graph.Platform
	// Period is the plan's period in time units (used only for reporting
	// throughput per time unit).
	Period *big.Int
	// Transfers and Rules define one period of the steady-state plan.
	Transfers []Transfer
	Rules     []Rule
	// Sources have an unlimited supply of their type (message injection
	// at the scatter source; initial values v[i,i] at their owners).
	Sources map[Endpoint]bool
	// Sinks absorb and count their type (scatter targets; the reduce
	// target's final value).
	Sinks map[Endpoint]bool
	// SinkQuota caps a sink's per-period absorption: at period end it
	// drains min(quota, stock) and the surplus stays buffered for
	// forwarding or consumption. Sinks without an entry drain everything.
	// Prefix adapters use quota sinks because each rank both delivers its
	// prefix v[0,i] at rate TP and may keep forwarding it downstream. An
	// endpoint that is both a source and a sink (rank 0's locally owned
	// v[0,0]) must carry a quota; it is credited that quota every period.
	SinkQuota map[Endpoint]*big.Int
}

// Validate checks the model's structural invariants — positive period,
// non-nil non-negative counts, node IDs on the platform, non-empty types,
// and quota consistency — so that Run and RunLatency can reject malformed
// (hand-built or decoded) models with an error instead of panicking.
func (m *Model) Validate() error {
	if m.Platform == nil {
		return fmt.Errorf("sim: model has no platform")
	}
	if m.Period == nil || m.Period.Sign() <= 0 {
		return fmt.Errorf("sim: model period must be positive")
	}
	n := graph.NodeID(m.Platform.NumNodes())
	checkNode := func(id graph.NodeID, what string) error {
		if id < 0 || id >= n {
			return fmt.Errorf("sim: %s node %d outside platform (%d nodes)", what, id, n)
		}
		return nil
	}
	for _, t := range m.Transfers {
		if err := checkNode(t.From, "transfer source"); err != nil {
			return err
		}
		if err := checkNode(t.To, "transfer destination"); err != nil {
			return err
		}
		if t.Type == "" {
			return fmt.Errorf("sim: transfer %d→%d has an empty type", t.From, t.To)
		}
		if t.Count == nil || t.Count.Sign() < 0 {
			return fmt.Errorf("sim: transfer %d→%d of %s has count %v", t.From, t.To, t.Type, t.Count)
		}
	}
	for _, r := range m.Rules {
		if err := checkNode(r.Node, "rule"); err != nil {
			return err
		}
		if r.Produces == "" {
			return fmt.Errorf("sim: rule at node %d produces an empty type", r.Node)
		}
		if len(r.Consumes) == 0 {
			// A consumeless rule would be a free generator; unlimited local
			// supply is what Sources model.
			return fmt.Errorf("sim: rule at node %d producing %s consumes nothing", r.Node, r.Produces)
		}
		seen := make(map[TypeID]bool, len(r.Consumes))
		for _, c := range r.Consumes {
			if c == "" {
				return fmt.Errorf("sim: rule at node %d consumes an empty type", r.Node)
			}
			if seen[c] {
				return fmt.Errorf("sim: rule at node %d consumes %s twice", r.Node, c)
			}
			seen[c] = true
		}
		if r.Count == nil || r.Count.Sign() < 0 {
			return fmt.Errorf("sim: rule at node %d producing %s has count %v", r.Node, r.Produces, r.Count)
		}
	}
	for e := range m.Sources {
		if err := checkNode(e.Node, "source"); err != nil {
			return err
		}
		if m.Sinks[e] && m.SinkQuota[e] == nil {
			return fmt.Errorf("sim: endpoint (%d, %s) is both source and sink but has no sink quota", e.Node, e.Type)
		}
	}
	for e := range m.Sinks {
		if err := checkNode(e.Node, "sink"); err != nil {
			return err
		}
	}
	for e, q := range m.SinkQuota {
		if !m.Sinks[e] {
			return fmt.Errorf("sim: quota on (%d, %s) which is not a sink", e.Node, e.Type)
		}
		if q == nil || q.Sign() < 0 {
			return fmt.Errorf("sim: sink (%d, %s) has quota %v", e.Node, e.Type, q)
		}
	}
	return nil
}

// Result reports a finished run.
type Result struct {
	Periods int
	// Delivered counts absorbed messages per sink.
	Delivered map[Endpoint]*big.Int
	// MaxBuffer is the high-water mark of every non-source buffer.
	MaxBuffer map[Endpoint]*big.Int
	// FirstFullPeriod is the first period (0-based) in which every
	// transfer and rule executed at full quota, or -1 if never — the end
	// of the initialization phase.
	FirstFullPeriod int
}

// MinDelivered returns the smallest per-sink delivery count — the number
// of complete collective operations finished (an operation is complete
// only when every sink got its message).
func (r *Result) MinDelivered() *big.Int {
	var min *big.Int
	for _, d := range r.Delivered {
		if min == nil || d.Cmp(min) < 0 {
			min = d
		}
	}
	if min == nil {
		return new(big.Int)
	}
	return new(big.Int).Set(min)
}

// MinDeliveredPrefix returns the smallest delivery count over the sinks
// whose type starts with the given prefix — the per-member MinDelivered of
// a merged composite model (use MemberPrefix(i) as the prefix). It returns
// 0 when no sink matches.
func (r *Result) MinDeliveredPrefix(prefix string) *big.Int {
	var min *big.Int
	for e, d := range r.Delivered {
		if !strings.HasPrefix(string(e.Type), prefix) {
			continue
		}
		if min == nil || d.Cmp(min) < 0 {
			min = d
		}
	}
	if min == nil {
		return new(big.Int)
	}
	return new(big.Int).Set(min)
}

// Run simulates the model for the given number of periods using the
// Section 3.4 protocol:
//
//   - at each period start, a node ships a type only if its buffered stock
//     covers the period's full outgoing quota of that type (sources always
//     ship);
//   - arrivals are credited after the sends of the period;
//   - rules then run in Order, each up to its quota, limited by available
//     inputs (inputs produced earlier in the same period may be consumed);
//   - sinks drain and count their buffers at period end — all of it, or up
//     to SinkQuota with the surplus kept buffered; a sink that is also a
//     source counts its quota directly (locally owned deliveries).
//
// Run fails on malformed models (Validate) and on internal inconsistencies
// (negative buffers), which would indicate a protocol bug rather than a
// property of the plan.
func Run(m *Model, periods int) (*Result, error) {
	if periods <= 0 {
		return nil, fmt.Errorf("sim: periods must be positive")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	buf := make(map[Endpoint]*big.Int)
	get := func(e Endpoint) *big.Int {
		if buf[e] == nil {
			buf[e] = new(big.Int)
		}
		return buf[e]
	}
	res := &Result{
		Periods:         periods,
		Delivered:       make(map[Endpoint]*big.Int),
		MaxBuffer:       make(map[Endpoint]*big.Int),
		FirstFullPeriod: -1,
	}
	for e := range m.Sinks {
		res.Delivered[e] = new(big.Int)
	}

	// Per-(node,type) total outgoing quota, for the shipping threshold.
	demand := make(map[Endpoint]*big.Int)
	for _, t := range m.Transfers {
		e := Endpoint{t.From, t.Type}
		if demand[e] == nil {
			demand[e] = new(big.Int)
		}
		demand[e].Add(demand[e], t.Count)
	}

	rules := append([]Rule(nil), m.Rules...)
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Order < rules[j].Order })

	note := func(e Endpoint, v *big.Int) {
		if m.Sources[e] {
			return
		}
		if res.MaxBuffer[e] == nil || v.Cmp(res.MaxBuffer[e]) > 0 {
			res.MaxBuffer[e] = new(big.Int).Set(v)
		}
	}

	for period := 0; period < periods; period++ {
		full := true

		// Shipping decisions from the start-of-period snapshot.
		eligible := make(map[Endpoint]bool)
		for e, d := range demand {
			if m.Sources[e] {
				eligible[e] = true
				continue
			}
			eligible[e] = get(e).Cmp(d) >= 0
			if !eligible[e] {
				full = false
			}
		}

		// Sends, then arrivals.
		type arrival struct {
			e Endpoint
			c *big.Int
		}
		var arrivals []arrival
		for _, t := range m.Transfers {
			from := Endpoint{t.From, t.Type}
			if !eligible[from] {
				continue
			}
			if !m.Sources[from] {
				b := get(from)
				b.Sub(b, t.Count)
				if b.Sign() < 0 {
					return nil, fmt.Errorf("sim: negative buffer at %s for %s",
						m.Platform.Node(t.From).Name, t.Type)
				}
			}
			arrivals = append(arrivals, arrival{Endpoint{t.To, t.Type}, t.Count})
		}
		for _, a := range arrivals {
			if m.Sources[a.e] {
				continue // supply is infinite; discard redundant inflow
			}
			b := get(a.e)
			b.Add(b, a.c)
			note(a.e, b)
		}

		// Rules.
		for _, r := range rules {
			execs := new(big.Int).Set(r.Count)
			for _, c := range r.Consumes {
				e := Endpoint{r.Node, c}
				if m.Sources[e] {
					continue
				}
				if avail := get(e); avail.Cmp(execs) < 0 {
					execs.Set(avail)
				}
			}
			if execs.Sign() < 0 {
				execs.SetInt64(0)
			}
			if execs.Cmp(r.Count) < 0 {
				full = false
			}
			if execs.Sign() == 0 {
				continue
			}
			for _, c := range r.Consumes {
				e := Endpoint{r.Node, c}
				if m.Sources[e] {
					continue
				}
				get(e).Sub(get(e), execs)
			}
			out := Endpoint{r.Node, r.Produces}
			if !m.Sources[out] {
				b := get(out)
				b.Add(b, execs)
				note(out, b)
			}
		}

		// Sinks drain: everything, or up to the sink's per-period quota
		// with the surplus left buffered for forwarding. A sink that is
		// also a source holds unlimited local supply — its buffer is never
		// stocked — so it counts its quota directly.
		for e := range m.Sinks {
			if m.Sources[e] {
				res.Delivered[e].Add(res.Delivered[e], m.SinkQuota[e])
				continue
			}
			b := get(e)
			if b.Sign() <= 0 {
				continue
			}
			take := b
			if q, ok := m.SinkQuota[e]; ok && b.Cmp(q) > 0 {
				take = q
			}
			res.Delivered[e].Add(res.Delivered[e], take)
			b.Sub(b, take)
		}

		if full && res.FirstFullPeriod == -1 {
			res.FirstFullPeriod = period
		}
	}
	return res, nil
}

// Throughput returns delivered operations per time unit over the run:
// MinDelivered / (periods · period length).
func (r *Result) Throughput(period *big.Int) rat.Rat {
	total := new(big.Int).Mul(big.NewInt(int64(r.Periods)), period)
	if total.Sign() == 0 {
		return rat.Zero()
	}
	return new(big.Rat).SetFrac(r.MinDelivered(), total)
}

// sortedEndpoints returns the endpoints of a set in canonical
// (node, type) order.
func sortedEndpoints(set map[Endpoint]bool) []Endpoint {
	out := make([]Endpoint, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// Fingerprint returns a hex SHA-256 over a canonical byte encoding of the
// model: the period, the platform size, every transfer and rule in stored
// order, and the source/sink/quota sets in sorted endpoint order. Two
// solves that agree on the fingerprint produce byte-identical replay
// inputs — the anchor for the dense-vs-sparse and warm-vs-cold
// replay-identity pins (the stored transfer/rule order is part of the
// fingerprint on purpose: adapters must emit canonical order).
func (m *Model) Fingerprint() string {
	h := sha256.New()
	nodes := 0
	if m.Platform != nil {
		nodes = m.Platform.NumNodes()
	}
	fmt.Fprintf(h, "period %s nodes %d\n", m.Period, nodes)
	for _, t := range m.Transfers {
		fmt.Fprintf(h, "t %d %d %s %s\n", t.From, t.To, t.Type, t.Count)
	}
	for _, r := range m.Rules {
		fmt.Fprintf(h, "r %d %d %s %s <- %s\n", r.Node, r.Order, r.Produces, r.Count,
			strings.Join(typeStrings(r.Consumes), ","))
	}
	for _, e := range sortedEndpoints(m.Sources) {
		fmt.Fprintf(h, "src %d %s\n", e.Node, e.Type)
	}
	for _, e := range sortedEndpoints(m.Sinks) {
		if q, ok := m.SinkQuota[e]; ok {
			fmt.Fprintf(h, "sink %d %s quota %s\n", e.Node, e.Type, q)
		} else {
			fmt.Fprintf(h, "sink %d %s\n", e.Node, e.Type)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// typeStrings converts a type list for joining.
func typeStrings(ts []TypeID) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = string(t)
	}
	return out
}
