// Package sim executes steady-state plans dynamically, playing the role of
// the paper's experimental validation: it runs the buffered periodic
// protocol of Section 3.4 over a finite horizon and measures the actually
// delivered operations, so that Lemma 1 (no schedule beats TP·K) and
// Propositions 1–3 (the protocol asymptotically reaches TP·K) can be
// checked numerically rather than just symbolically.
//
// The simulator works at period granularity: intra-period one-port
// feasibility is the schedule package's job (matching decomposition);
// what is simulated here is the part the static schedule cannot show —
// pipeline fill, buffer growth, and the start-up losses that make the
// achieved-to-optimal ratio approach 1 only in the limit.
//
// The engine is generic: a Model has typed buffers per node, per-period
// transfer quotas, per-period production rules (reduction tasks), infinite
// sources (initial values), and sinks that count deliveries. Adapters in
// this package build models from scatter solutions, gossip solutions and
// reduce applications; composite-style solutions (reduce-scatter,
// allreduce, broadcast, arbitrary composites) have no adapter yet and
// surface ErrUnsupported through the public API — extending the engine
// to drive a merged schedule's buffered protocol is a ROADMAP item.
package sim

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/graph"
	"repro/internal/rat"
)

// TypeID identifies a message type within a model ("m_P0", "v[1,6]", …).
type TypeID string

// Transfer is a per-period transfer quota: Count messages of Type moved
// From → To each period (when the sender's buffer allows).
type Transfer struct {
	From, To graph.NodeID
	Type     TypeID
	Count    *big.Int
}

// Rule is a per-period production quota: Count executions per period, each
// consuming one message of every type in Consumes and producing one of
// Produces, on Node. Reduction tasks consume {v[k,l], v[l+1,m]} and
// produce v[k,m].
type Rule struct {
	Node     graph.NodeID
	Consumes []TypeID
	Produces TypeID
	Count    *big.Int
	// order resolves intra-period chains: rules execute in ascending
	// order, so a rule may consume what a lower-ordered rule produced in
	// the same period. Reduce adapters use the result-range length.
	Order int
}

// Endpoint names a (node, type) pair.
type Endpoint struct {
	Node graph.NodeID
	Type TypeID
}

// Model is a complete simulation input.
type Model struct {
	Platform *graph.Platform
	// Period is the plan's period in time units (used only for reporting
	// throughput per time unit).
	Period *big.Int
	// Transfers and Rules define one period of the steady-state plan.
	Transfers []Transfer
	Rules     []Rule
	// Sources have an unlimited supply of their type (message injection
	// at the scatter source; initial values v[i,i] at their owners).
	Sources map[Endpoint]bool
	// Sinks absorb and count their type (scatter targets; the reduce
	// target's final value).
	Sinks map[Endpoint]bool
}

// Result reports a finished run.
type Result struct {
	Periods int
	// Delivered counts absorbed messages per sink.
	Delivered map[Endpoint]*big.Int
	// MaxBuffer is the high-water mark of every non-source buffer.
	MaxBuffer map[Endpoint]*big.Int
	// FirstFullPeriod is the first period (0-based) in which every
	// transfer and rule executed at full quota, or -1 if never — the end
	// of the initialization phase.
	FirstFullPeriod int
}

// MinDelivered returns the smallest per-sink delivery count — the number
// of complete collective operations finished (an operation is complete
// only when every sink got its message).
func (r *Result) MinDelivered() *big.Int {
	var min *big.Int
	for _, d := range r.Delivered {
		if min == nil || d.Cmp(min) < 0 {
			min = d
		}
	}
	if min == nil {
		return new(big.Int)
	}
	return new(big.Int).Set(min)
}

// Run simulates the model for the given number of periods using the
// Section 3.4 protocol:
//
//   - at each period start, a node ships a type only if its buffered stock
//     covers the period's full outgoing quota of that type (sources always
//     ship);
//   - arrivals are credited after the sends of the period;
//   - rules then run in Order, each up to its quota, limited by available
//     inputs (inputs produced earlier in the same period may be consumed);
//   - sinks drain and count their buffers at period end.
//
// Run fails on internal inconsistencies (negative buffers), which would
// indicate a protocol bug rather than a property of the plan.
func Run(m *Model, periods int) (*Result, error) {
	if periods <= 0 {
		return nil, fmt.Errorf("sim: periods must be positive")
	}
	buf := make(map[Endpoint]*big.Int)
	get := func(e Endpoint) *big.Int {
		if buf[e] == nil {
			buf[e] = new(big.Int)
		}
		return buf[e]
	}
	res := &Result{
		Periods:         periods,
		Delivered:       make(map[Endpoint]*big.Int),
		MaxBuffer:       make(map[Endpoint]*big.Int),
		FirstFullPeriod: -1,
	}
	for e := range m.Sinks {
		res.Delivered[e] = new(big.Int)
	}

	// Per-(node,type) total outgoing quota, for the shipping threshold.
	demand := make(map[Endpoint]*big.Int)
	for _, t := range m.Transfers {
		e := Endpoint{t.From, t.Type}
		if demand[e] == nil {
			demand[e] = new(big.Int)
		}
		demand[e].Add(demand[e], t.Count)
	}

	rules := append([]Rule(nil), m.Rules...)
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Order < rules[j].Order })

	note := func(e Endpoint, v *big.Int) {
		if m.Sources[e] {
			return
		}
		if res.MaxBuffer[e] == nil || v.Cmp(res.MaxBuffer[e]) > 0 {
			res.MaxBuffer[e] = new(big.Int).Set(v)
		}
	}

	for period := 0; period < periods; period++ {
		full := true

		// Shipping decisions from the start-of-period snapshot.
		eligible := make(map[Endpoint]bool)
		for e, d := range demand {
			if m.Sources[e] {
				eligible[e] = true
				continue
			}
			eligible[e] = get(e).Cmp(d) >= 0
			if !eligible[e] {
				full = false
			}
		}

		// Sends, then arrivals.
		type arrival struct {
			e Endpoint
			c *big.Int
		}
		var arrivals []arrival
		for _, t := range m.Transfers {
			from := Endpoint{t.From, t.Type}
			if !eligible[from] {
				continue
			}
			if !m.Sources[from] {
				b := get(from)
				b.Sub(b, t.Count)
				if b.Sign() < 0 {
					return nil, fmt.Errorf("sim: negative buffer at %s for %s",
						m.Platform.Node(t.From).Name, t.Type)
				}
			}
			arrivals = append(arrivals, arrival{Endpoint{t.To, t.Type}, t.Count})
		}
		for _, a := range arrivals {
			if m.Sources[a.e] {
				continue // supply is infinite; discard redundant inflow
			}
			b := get(a.e)
			b.Add(b, a.c)
			note(a.e, b)
		}

		// Rules.
		for _, r := range rules {
			execs := new(big.Int).Set(r.Count)
			for _, c := range r.Consumes {
				e := Endpoint{r.Node, c}
				if m.Sources[e] {
					continue
				}
				if avail := get(e); avail.Cmp(execs) < 0 {
					execs.Set(avail)
				}
			}
			if execs.Sign() < 0 {
				execs.SetInt64(0)
			}
			if execs.Cmp(r.Count) < 0 {
				full = false
			}
			if execs.Sign() == 0 {
				continue
			}
			for _, c := range r.Consumes {
				e := Endpoint{r.Node, c}
				if m.Sources[e] {
					continue
				}
				get(e).Sub(get(e), execs)
			}
			out := Endpoint{r.Node, r.Produces}
			if !m.Sources[out] {
				b := get(out)
				b.Add(b, execs)
				note(out, b)
			}
		}

		// Sinks drain.
		for e := range m.Sinks {
			b := get(e)
			if b.Sign() > 0 {
				res.Delivered[e].Add(res.Delivered[e], b)
				b.SetInt64(0)
			}
		}

		if full && res.FirstFullPeriod == -1 {
			res.FirstFullPeriod = period
		}
	}
	return res, nil
}

// Throughput returns delivered operations per time unit over the run:
// MinDelivered / (periods · period length).
func (r *Result) Throughput(period *big.Int) rat.Rat {
	total := new(big.Int).Mul(big.NewInt(int64(r.Periods)), period)
	if total.Sign() == 0 {
		return rat.Zero()
	}
	return new(big.Rat).SetFrac(r.MinDelivered(), total)
}
