package sim

import (
	"math/big"
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
)

// fuzzModel decodes an arbitrary byte string into a small Model,
// deliberately allowing every malformation Validate guards against —
// negative or nil counts, out-of-range node IDs, empty types, quotas on
// non-sinks, unquoted source-sinks — so the fuzzer can drive both the
// happy path and the rejection path.
func fuzzModel(data []byte) *Model {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	p := graph.New()
	nodes := 2 + int(next()%3)
	for i := 0; i < nodes; i++ {
		p.AddNode(string(rune('a'+i)), rat.One())
	}
	// Node IDs decode into [-1, nodes]: mostly valid, sometimes not.
	node := func() graph.NodeID { return graph.NodeID(int(next()%byte(nodes+2)) - 1) }
	// Counts decode into [-1, 6] plus an occasional nil.
	count := func() *big.Int {
		b := next()
		if b%13 == 0 {
			return nil
		}
		return big.NewInt(int64(b%8) - 1)
	}
	types := []TypeID{"", "x", "y", "op0:x"}
	typ := func() TypeID { return types[next()%byte(len(types))] }

	m := &Model{
		Platform:  p,
		Period:    big.NewInt(int64(next()%4) - 1),
		Sources:   make(map[Endpoint]bool),
		Sinks:     make(map[Endpoint]bool),
		SinkQuota: make(map[Endpoint]*big.Int),
	}
	for n := int(next() % 8); n > 0; n-- {
		m.Transfers = append(m.Transfers, Transfer{From: node(), To: node(), Type: typ(), Count: count()})
	}
	for n := int(next() % 6); n > 0; n-- {
		r := Rule{Node: node(), Produces: typ(), Count: count(), Order: int(next() % 4)}
		for c := int(next() % 3); c > 0; c-- {
			r.Consumes = append(r.Consumes, typ())
		}
		m.Rules = append(m.Rules, r)
	}
	for n := int(next() % 4); n > 0; n-- {
		m.Sources[Endpoint{node(), typ()}] = true
	}
	for n := int(next() % 4); n > 0; n-- {
		e := Endpoint{node(), typ()}
		m.Sinks[e] = true
		if next()%2 == 0 {
			m.SinkQuota[e] = count()
		}
	}
	if next()%4 == 0 {
		// Quota on a non-sink endpoint.
		m.SinkQuota[Endpoint{node(), typ()}] = count()
	}
	return m
}

// FuzzSimModel: hand-built or decoded models must never panic the replay
// loop — Run and RunLatency either reject the model via Validate or
// complete, and a model accepted by Validate must replay cleanly with
// deliveries consistent between the two engines.
func FuzzSimModel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte("steady-state scatter and reduce"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := fuzzModel(data)
		valid := m.Validate() == nil

		res, err := Run(m, 4)
		if valid && err != nil {
			t.Fatalf("Run rejected a model Validate accepted: %v", err)
		}
		if !valid && err == nil {
			t.Fatal("Run accepted a model Validate rejected")
		}
		lres, lerr := RunLatency(m, 4)
		if (lerr == nil) != (err == nil) {
			t.Fatalf("Run error %v but RunLatency error %v", err, lerr)
		}
		if err != nil {
			return
		}
		for e, d := range res.Delivered {
			if d.Sign() < 0 {
				t.Fatalf("negative delivery at %v", e)
			}
			if ld := lres.Delivered[e]; ld == nil || ld.Cmp(d) != 0 {
				t.Fatalf("sink %v: Run delivered %s, RunLatency %v", e, d, ld)
			}
		}
	})
}
