package sim

import (
	"math/big"
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/scatter"
	"repro/internal/topology"
)

func TestRunLatencyDirectSend(t *testing.T) {
	// src → dst directly: every unit is delivered in the period it was
	// minted → latency 0.
	p := graph.New()
	src := p.AddNode("src", rat.One())
	dst := p.AddNode("dst", rat.One())
	p.AddEdge(src, dst, rat.One())
	ty := TypeID("m")
	m := &Model{
		Platform:  p,
		Period:    big.NewInt(1),
		Transfers: []Transfer{{From: src, To: dst, Type: ty, Count: big.NewInt(1)}},
		Sources:   map[Endpoint]bool{{src, ty}: true},
		Sinks:     map[Endpoint]bool{{dst, ty}: true},
	}
	res, err := RunLatency(m, 20)
	if err != nil {
		t.Fatalf("RunLatency: %v", err)
	}
	if res.MinLatency != 0 || res.MaxLatency != 0 {
		t.Errorf("latency = [%d,%d], want [0,0]", res.MinLatency, res.MaxLatency)
	}
	if res.Delivered[Endpoint{dst, ty}].Int64() != 20 {
		t.Errorf("delivered = %s, want 20", res.Delivered[Endpoint{dst, ty}])
	}
}

func TestRunLatencyRelayAddsAPeriod(t *testing.T) {
	// src → relay → dst: units wait one period in the relay buffer.
	p := graph.New()
	src := p.AddNode("src", rat.One())
	rel := p.AddRouter("relay")
	dst := p.AddNode("dst", rat.One())
	p.AddEdge(src, rel, rat.One())
	p.AddEdge(rel, dst, rat.One())
	ty := TypeID("m")
	m := &Model{
		Platform: p,
		Period:   big.NewInt(2),
		Transfers: []Transfer{
			{From: src, To: rel, Type: ty, Count: big.NewInt(1)},
			{From: rel, To: dst, Type: ty, Count: big.NewInt(1)},
		},
		Sources: map[Endpoint]bool{{src, ty}: true},
		Sinks:   map[Endpoint]bool{{dst, ty}: true},
	}
	res, err := RunLatency(m, 50)
	if err != nil {
		t.Fatalf("RunLatency: %v", err)
	}
	if res.MinLatency < 1 {
		t.Errorf("min latency = %d, want ≥ 1 (one relay hop)", res.MinLatency)
	}
	if res.MeanLatency() < 1 {
		t.Errorf("mean latency = %f, want ≥ 1", res.MeanLatency())
	}
}

func TestRunLatencyMatchesRunThroughput(t *testing.T) {
	// The latency engine must deliver exactly what the plain engine does.
	p, srcID, targets := topology.PaperFig2()
	pr, err := scatter.NewProblem(p, srcID, targets)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	m := ScatterModel(sol)
	plain, err := Run(m, 200)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := RunLatency(m, 200)
	if err != nil {
		t.Fatal(err)
	}
	for e, want := range plain.Delivered {
		if got := lat.Delivered[e]; got == nil || got.Cmp(want) != 0 {
			t.Errorf("sink %v: latency engine delivered %v, plain %v", e, got, want)
		}
	}
}

func TestRunLatencyReduceOldestIngredientWins(t *testing.T) {
	// Chain reduce: the final result's latency reflects the farthest
	// participant (n3's value crosses three relayed hops).
	p := topology.Chain(4, rat.One(), rat.One())
	var order []graph.NodeID
	for _, name := range []string{"n0", "n1", "n2", "n3"} {
		order = append(order, p.MustLookup(name))
	}
	pr, err := reduce.NewProblem(p, order, order[0])
	if err != nil {
		t.Fatal(err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	app := sol.Integerize()
	res, err := RunLatency(ReduceModel(app), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered[Endpoint{order[0], TypeID("v[0,3]")}].Sign() <= 0 {
		t.Fatal("nothing delivered")
	}
	// At least two periods of pipeline depth: n3's value must traverse
	// n2 and n1 (each a buffered hop) before the final merge.
	if res.MaxLatency < 2 {
		t.Errorf("max latency = %d, want ≥ 2 on a 4-chain", res.MaxLatency)
	}
}

func TestRunLatencyValidation(t *testing.T) {
	p := graph.New()
	p.AddNode("a", rat.One())
	m := &Model{Platform: p, Period: big.NewInt(1)}
	if _, err := RunLatency(m, 0); err == nil {
		t.Error("zero periods accepted")
	}
	res, err := RunLatency(m, 3)
	if err != nil {
		t.Fatalf("empty model: %v", err)
	}
	if res.MeanLatency() != 0 {
		t.Error("empty model should have zero mean latency")
	}
}

func TestAlignCohorts(t *testing.T) {
	streams := [][]cohort{
		{{tag: 5, count: big.NewInt(3)}},
		{{tag: 2, count: big.NewInt(1)}, {tag: 7, count: big.NewInt(2)}},
	}
	out := alignCohorts(streams, big.NewInt(3))
	// First unit pairs tag 5 with tag 2 → 2; remaining two pair 5 with 7 → 5.
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if out[0].tag != 2 || out[0].count.Int64() != 1 {
		t.Errorf("out[0] = %+v", out[0])
	}
	if out[1].tag != 5 || out[1].count.Int64() != 2 {
		t.Errorf("out[1] = %+v", out[1])
	}
}

func TestQueueFIFO(t *testing.T) {
	q := newQueue()
	q.push(1, big.NewInt(2))
	q.push(1, big.NewInt(1)) // merges with previous cohort
	q.push(3, big.NewInt(2))
	if len(q.items) != 2 {
		t.Fatalf("cohorts = %d, want 2 (same-tag merge)", len(q.items))
	}
	got := q.pop(big.NewInt(4))
	if len(got) != 2 || got[0].tag != 1 || got[0].count.Int64() != 3 || got[1].tag != 3 || got[1].count.Int64() != 1 {
		t.Errorf("pop = %v", got)
	}
	if q.total.Int64() != 1 {
		t.Errorf("remaining = %s, want 1", q.total)
	}
}

func TestQueueUnderflowPanics(t *testing.T) {
	q := newQueue()
	q.push(0, big.NewInt(1))
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	q.pop(big.NewInt(2))
}
