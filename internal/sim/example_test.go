package sim

import (
	"fmt"

	"repro/internal/scatter"
	"repro/internal/topology"
)

// ExampleRun replays the paper's Figure 2 scatter protocol for 100
// periods: the buffered pipeline delivers just under the steady-state
// bound TP·K while the pipeline fills.
func ExampleRun() {
	p, src, targets := topology.PaperFig2()
	pr, err := scatter.NewProblem(p, src, targets)
	if err != nil {
		panic(err)
	}
	sol, err := pr.Solve()
	if err != nil {
		panic(err)
	}
	res, err := Run(ScatterModel(sol), 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered %s scatters in 100 periods of %s time units\n",
		res.MinDelivered(), sol.Period())
	// Output: delivered 99 scatters in 100 periods of 2 time units
}
