package sim

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/scatter"
)

// commodityType names a scatter/gossip stream.
func commodityType(p *graph.Platform, c core.Commodity) TypeID {
	return TypeID(fmt.Sprintf("m_%s_%s", p.Node(c.Src).Name, p.Node(c.Dst).Name))
}

// flowModel builds a Model from any uniform flow: the integer per-period
// transfer quotas, one source per commodity at its emitter, one sink at
// its destination.
func flowModel(flow *core.Flow[core.Commodity]) *Model {
	p := flow.Platform
	period := flow.Period()
	m := &Model{
		Platform: p,
		Period:   period,
		Sources:  make(map[Endpoint]bool),
		Sinks:    make(map[Endpoint]bool),
	}
	seen := make(map[core.Commodity]bool)
	for e, types := range flow.Sends {
		for c, r := range types {
			count := rat.ScaleToInt(r, period)
			if count.Sign() == 0 {
				continue
			}
			m.Transfers = append(m.Transfers, Transfer{
				From: e.From, To: e.To, Type: commodityType(p, c), Count: count,
			})
			if !seen[c] {
				seen[c] = true
				m.Sources[Endpoint{c.Src, commodityType(p, c)}] = true
				m.Sinks[Endpoint{c.Dst, commodityType(p, c)}] = true
			}
		}
	}
	// The replay's per-period effects are commutative, but a canonical
	// transfer order keeps models comparable and traces reproducible.
	sort.Slice(m.Transfers, func(i, j int) bool { return transferLess(m.Transfers[i], m.Transfers[j]) })
	return m
}

// transferLess orders transfers by (from, to, type) for canonical models.
func transferLess(a, b Transfer) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.To != b.To {
		return a.To < b.To
	}
	return a.Type < b.Type
}

// ScatterModel builds the simulation model of a scatter solution.
func ScatterModel(sol *scatter.Solution) *Model {
	m := flowModel(sol.Flow)
	// Targets with no traffic (disconnected at TP=0) still get sinks so
	// MinDelivered stays honest.
	for _, t := range sol.Problem.Targets {
		c := core.Commodity{Src: sol.Problem.Source, Dst: t}
		m.Sinks[Endpoint{t, commodityType(sol.Problem.Platform, c)}] = true
	}
	return m
}

// GossipModel builds the simulation model of a gossip solution.
func GossipModel(sol *gossip.Solution) *Model {
	m := flowModel(sol.Flow)
	for _, c := range sol.Problem.Commodities() {
		m.Sinks[Endpoint{c.Dst, commodityType(sol.Problem.Platform, c)}] = true
	}
	return m
}

// rangeType names a partial result.
func rangeType(r reduce.Range) TypeID { return TypeID(r.String()) }

// ReduceModel builds the simulation model of a reduce application (the
// integerized solution): transfers from A's send counts, one rule per task
// kind ordered by result length (so intra-period task chains resolve),
// initial values as sources, the final value at the target as the sink.
func ReduceModel(app *reduce.Application) *Model {
	pr := app.Problem
	m := &Model{
		Platform: pr.Platform,
		Period:   app.Period,
		Sources:  make(map[Endpoint]bool),
		Sinks:    make(map[Endpoint]bool),
	}
	for i, owner := range pr.Order {
		m.Sources[Endpoint{owner, rangeType(reduce.Range{K: i, M: i})}] = true
	}
	final := reduce.Range{K: 0, M: pr.N()}
	m.Sinks[Endpoint{pr.Target, rangeType(final)}] = true

	for k, c := range app.Sends {
		if c.Sign() == 0 {
			continue
		}
		m.Transfers = append(m.Transfers, Transfer{
			From: k.From, To: k.To, Type: rangeType(k.R), Count: c,
		})
	}
	for k, c := range app.Tasks {
		if c.Sign() == 0 {
			continue
		}
		m.Rules = append(m.Rules, Rule{
			Node:     k.Node,
			Consumes: []TypeID{rangeType(k.T.Left()), rangeType(k.T.Right())},
			Produces: rangeType(k.T.Result()),
			Count:    c,
			Order:    k.T.Result().Len(),
		})
	}
	// Canonical order: the replay sorts rules by Order and same-Order
	// rules are independent, but deterministic models diff cleanly.
	sort.Slice(m.Transfers, func(i, j int) bool { return transferLess(m.Transfers[i], m.Transfers[j]) })
	sort.Slice(m.Rules, func(i, j int) bool {
		a, b := m.Rules[i], m.Rules[j]
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Produces < b.Produces
	})
	return m
}
