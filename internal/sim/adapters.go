package sim

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/prefix"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/scatter"
)

// commodityType names a scatter/gossip stream.
func commodityType(p *graph.Platform, c core.Commodity) TypeID {
	return TypeID(fmt.Sprintf("m_%s_%s", p.Node(c.Src).Name, p.Node(c.Dst).Name))
}

// flowModel builds a Model from any uniform flow: the integer per-period
// transfer quotas, one source per commodity at its emitter, one sink at
// its destination.
func flowModel(flow *core.Flow[core.Commodity]) *Model {
	p := flow.Platform
	period := flow.Period()
	m := &Model{
		Platform: p,
		Period:   period,
		Sources:  make(map[Endpoint]bool),
		Sinks:    make(map[Endpoint]bool),
	}
	seen := make(map[core.Commodity]bool)
	for e, types := range flow.Sends {
		for c, r := range types {
			count := rat.ScaleToInt(r, period)
			if count.Sign() == 0 {
				continue
			}
			m.Transfers = append(m.Transfers, Transfer{
				From: e.From, To: e.To, Type: commodityType(p, c), Count: count,
			})
			if !seen[c] {
				seen[c] = true
				m.Sources[Endpoint{c.Src, commodityType(p, c)}] = true
				m.Sinks[Endpoint{c.Dst, commodityType(p, c)}] = true
			}
		}
	}
	// The replay's per-period effects are commutative, but a canonical
	// transfer order keeps models comparable and traces reproducible.
	sort.Slice(m.Transfers, func(i, j int) bool { return transferLess(m.Transfers[i], m.Transfers[j]) })
	return m
}

// transferLess orders transfers by (from, to, type) for canonical models.
func transferLess(a, b Transfer) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.To != b.To {
		return a.To < b.To
	}
	return a.Type < b.Type
}

// ruleLess is a total order on rules — (order, node, produces, consumes) —
// so canonically sorted rule lists are byte-stable across solves (two task
// kinds may produce the same range on the same node and differ only in
// their split point, so the consume list must break the tie).
func ruleLess(a, b Rule) bool {
	if a.Order != b.Order {
		return a.Order < b.Order
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Produces != b.Produces {
		return a.Produces < b.Produces
	}
	for i := 0; i < len(a.Consumes) && i < len(b.Consumes); i++ {
		if a.Consumes[i] != b.Consumes[i] {
			return a.Consumes[i] < b.Consumes[i]
		}
	}
	return len(a.Consumes) < len(b.Consumes)
}

// ScatterModel builds the simulation model of a scatter solution.
func ScatterModel(sol *scatter.Solution) *Model {
	m := flowModel(sol.Flow)
	// Targets with no traffic (disconnected at TP=0) still get sinks so
	// MinDelivered stays honest.
	for _, t := range sol.Problem.Targets {
		c := core.Commodity{Src: sol.Problem.Source, Dst: t}
		m.Sinks[Endpoint{t, commodityType(sol.Problem.Platform, c)}] = true
	}
	return m
}

// GossipModel builds the simulation model of a gossip solution.
func GossipModel(sol *gossip.Solution) *Model {
	m := flowModel(sol.Flow)
	for _, c := range sol.Problem.Commodities() {
		m.Sinks[Endpoint{c.Dst, commodityType(sol.Problem.Platform, c)}] = true
	}
	return m
}

// rangeType names a partial result.
func rangeType(r reduce.Range) TypeID { return TypeID(r.String()) }

// ReduceModel builds the simulation model of a reduce application (the
// integerized solution): transfers from A's send counts, one rule per task
// kind ordered by result length (so intra-period task chains resolve),
// initial values as sources, the final value at the target as the sink.
func ReduceModel(app *reduce.Application) *Model {
	pr := app.Problem
	m := &Model{
		Platform: pr.Platform,
		Period:   app.Period,
		Sources:  make(map[Endpoint]bool),
		Sinks:    make(map[Endpoint]bool),
	}
	for i, owner := range pr.Order {
		m.Sources[Endpoint{owner, rangeType(reduce.Range{K: i, M: i})}] = true
	}
	final := reduce.Range{K: 0, M: pr.N()}
	m.Sinks[Endpoint{pr.Target, rangeType(final)}] = true

	for k, c := range app.Sends {
		if c.Sign() == 0 {
			continue
		}
		m.Transfers = append(m.Transfers, Transfer{
			From: k.From, To: k.To, Type: rangeType(k.R), Count: c,
		})
	}
	for k, c := range app.Tasks {
		if c.Sign() == 0 {
			continue
		}
		m.Rules = append(m.Rules, Rule{
			Node:     k.Node,
			Consumes: []TypeID{rangeType(k.T.Left()), rangeType(k.T.Right())},
			Produces: rangeType(k.T.Result()),
			Count:    c,
			Order:    k.T.Result().Len(),
		})
	}
	// Canonical order: the replay sorts rules by Order and same-Order
	// rules are independent, but deterministic models diff cleanly.
	sort.Slice(m.Transfers, func(i, j int) bool { return transferLess(m.Transfers[i], m.Transfers[j]) })
	sort.Slice(m.Rules, func(i, j int) bool { return ruleLess(m.Rules[i], m.Rules[j]) })
	return m
}

// broadcastType names one target's replicated copy of the broadcast
// stream.
func broadcastType(p *graph.Platform, target graph.NodeID) TypeID {
	return TypeID("b_" + p.Node(target).Name)
}

// BroadcastModel builds the simulation model of a broadcast solution. The
// wire moves the shared carry stream y(e) — one physical copy per edge —
// but a carried message satisfies every downstream target's conservation
// at once, so the replay tracks the per-target virtual flows x(e, b_t)
// bundled inside it: each target's copy is its own commodity with a source
// at the broadcast source and a sink at the target, and delivered counts
// are checked against TP per target, not per physical edge-copy. The
// bundling invariant x(e, b_t) ≤ y(e), which makes this replay physically
// realizable, is established by BroadcastSolution.Verify.
func BroadcastModel(sol *scatter.BroadcastSolution) *Model {
	p := sol.Problem.Platform
	period := sol.Period()
	m := &Model{
		Platform: p,
		Period:   period,
		Sources:  make(map[Endpoint]bool),
		Sinks:    make(map[Endpoint]bool),
	}
	for e, types := range sol.Flow.Sends {
		for c, r := range types {
			count := rat.ScaleToInt(r, period)
			if count.Sign() == 0 {
				continue
			}
			m.Transfers = append(m.Transfers, Transfer{
				From: e.From, To: e.To, Type: broadcastType(p, c.Dst), Count: count,
			})
		}
	}
	// Every target gets its source/sink pair even at zero traffic (TP=0)
	// so MinDelivered stays honest.
	for _, t := range sol.Problem.Targets {
		m.Sources[Endpoint{sol.Problem.Source, broadcastType(p, t)}] = true
		m.Sinks[Endpoint{t, broadcastType(p, t)}] = true
	}
	sort.Slice(m.Transfers, func(i, j int) bool { return transferLess(m.Transfers[i], m.Transfers[j]) })
	return m
}

// PrefixModel builds the simulation model of a prefix solution: transfers
// from the fragment send rates, one rule per suffix-extension or producing
// task (ordered by result length, so intra-period chains resolve), the
// initial values v[i,i] as sources at their owners, and one quota sink per
// rank — rank i must absorb v[0,i] at rate TP while any surplus stays
// buffered for forwarding downstream. Rank 0 owns v[0,0] locally (source
// and sink at once), so its quota is credited directly each period. All
// rates are scaled to integers at the solution period.
func PrefixModel(sol *prefix.Solution) *Model {
	pr := sol.Problem
	period := sol.Period()
	quota := rat.ScaleToInt(sol.TP, period)
	m := &Model{
		Platform:  pr.Platform,
		Period:    period,
		Sources:   make(map[Endpoint]bool),
		Sinks:     make(map[Endpoint]bool),
		SinkQuota: make(map[Endpoint]*big.Int),
	}
	for i, owner := range pr.Order {
		m.Sources[Endpoint{owner, rangeType(reduce.Range{K: i, M: i})}] = true
	}
	for i, owner := range pr.Order {
		e := Endpoint{owner, rangeType(reduce.Range{K: 0, M: i})}
		m.Sinks[e] = true
		m.SinkQuota[e] = new(big.Int).Set(quota)
	}
	for k, r := range sol.Sends {
		count := rat.ScaleToInt(r, period)
		if count.Sign() == 0 {
			continue
		}
		m.Transfers = append(m.Transfers, Transfer{
			From: k.From, To: k.To, Type: rangeType(k.R), Count: count,
		})
	}
	for k, r := range sol.Tasks {
		count := rat.ScaleToInt(r, period)
		if count.Sign() == 0 {
			continue
		}
		m.Rules = append(m.Rules, Rule{
			Node:     k.Node,
			Consumes: []TypeID{rangeType(k.T.Left()), rangeType(k.T.Right())},
			Produces: rangeType(k.T.Result()),
			Count:    count,
			Order:    k.T.Result().Len(),
		})
	}
	sort.Slice(m.Transfers, func(i, j int) bool { return transferLess(m.Transfers[i], m.Transfers[j]) })
	sort.Slice(m.Rules, func(i, j int) bool { return ruleLess(m.Rules[i], m.Rules[j]) })
	return m
}
