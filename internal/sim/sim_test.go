package sim

import (
	"math/big"
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/scatter"
	"repro/internal/topology"
)

func TestRunValidation(t *testing.T) {
	p := graph.New()
	p.AddNode("a", rat.One())
	m := &Model{Platform: p, Period: big.NewInt(1)}
	if _, err := Run(m, 0); err == nil {
		t.Error("zero periods accepted")
	}
}

func TestDirectRelayPipeline(t *testing.T) {
	// src → relay → dst, 2 messages per period. The relay needs one
	// period of buffering; afterwards delivery is 2 per period.
	p := graph.New()
	src := p.AddNode("src", rat.One())
	rel := p.AddRouter("relay")
	dst := p.AddNode("dst", rat.One())
	p.AddEdge(src, rel, rat.One())
	p.AddEdge(rel, dst, rat.One())

	ty := TypeID("m")
	m := &Model{
		Platform: p,
		Period:   big.NewInt(2),
		Transfers: []Transfer{
			{From: src, To: rel, Type: ty, Count: big.NewInt(2)},
			{From: rel, To: dst, Type: ty, Count: big.NewInt(2)},
		},
		Sources: map[Endpoint]bool{{src, ty}: true},
		Sinks:   map[Endpoint]bool{{dst, ty}: true},
	}
	const periods = 50
	res, err := Run(m, periods)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// First period: relay ineligible (empty buffer); thereafter full.
	// Delivered = 2·(periods − 1).
	want := big.NewInt(2 * (periods - 1))
	if res.MinDelivered().Cmp(want) != 0 {
		t.Errorf("delivered = %s, want %s", res.MinDelivered(), want)
	}
	if res.FirstFullPeriod != 1 {
		t.Errorf("FirstFullPeriod = %d, want 1", res.FirstFullPeriod)
	}
	// Buffer bound: the relay holds at most 2× its per-period demand
	// (Section 3.4's 2·buff-min-size claim).
	if mb := res.MaxBuffer[Endpoint{rel, ty}]; mb == nil || mb.Cmp(big.NewInt(4)) > 0 {
		t.Errorf("relay max buffer = %v, want ≤ 4", mb)
	}
}

// TestScatterSimPaperFig2 runs the Fig. 2 scatter protocol and checks
// Lemma 1 (delivered ≤ TP·K) and Proposition 1 (ratio → 1).
func TestScatterSimPaperFig2(t *testing.T) {
	p, src, targets := topology.PaperFig2()
	pr, err := scatter.NewProblem(p, src, targets)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	m := ScatterModel(sol)

	prevRatio := rat.Zero()
	for _, periods := range []int{10, 100, 1000} {
		res, err := Run(m, periods)
		if err != nil {
			t.Fatalf("Run(%d): %v", periods, err)
		}
		// Lemma 1: delivered operations ≤ TP·K where K = periods·T.
		k := new(big.Int).Mul(big.NewInt(int64(periods)), m.Period)
		bound := rat.Mul(sol.Throughput(), new(big.Rat).SetInt(k))
		delivered := new(big.Rat).SetInt(res.MinDelivered())
		if delivered.Cmp(bound) > 0 {
			t.Errorf("periods=%d: delivered %s exceeds Lemma-1 bound %s",
				periods, delivered.RatString(), bound.RatString())
		}
		ratio := rat.Div(delivered, bound)
		if ratio.Cmp(prevRatio) < 0 {
			t.Errorf("periods=%d: ratio %s decreased from %s",
				periods, ratio.RatString(), prevRatio.RatString())
		}
		prevRatio = ratio
	}
	if rat.Less(prevRatio, rat.New(99, 100)) {
		t.Errorf("ratio after 1000 periods = %s, want ≥ 0.99 (Proposition 1)", prevRatio.RatString())
	}
}

// TestReduceSimPaperFig6 runs the Fig. 6 reduce protocol: the pipelined
// throughput must converge to TP = 1.
func TestReduceSimPaperFig6(t *testing.T) {
	p, order, target := topology.PaperFig6()
	pr, err := reduce.NewProblem(p, order, target)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	app := sol.Integerize()
	m := ReduceModel(app)

	prevRatio := rat.Zero()
	for _, periods := range []int{10, 100, 1000} {
		res, err := Run(m, periods)
		if err != nil {
			t.Fatalf("Run(%d): %v", periods, err)
		}
		k := new(big.Int).Mul(big.NewInt(int64(periods)), m.Period)
		bound := rat.Mul(sol.Throughput(), new(big.Rat).SetInt(k))
		delivered := new(big.Rat).SetInt(res.MinDelivered())
		if delivered.Cmp(bound) > 0 {
			t.Errorf("periods=%d: delivered %s exceeds bound %s (Lemma 1)",
				periods, delivered.RatString(), bound.RatString())
		}
		ratio := rat.Div(delivered, bound)
		if ratio.Cmp(prevRatio) < 0 {
			t.Errorf("periods=%d: ratio decreased", periods)
		}
		prevRatio = ratio
	}
	if rat.Less(prevRatio, rat.New(99, 100)) {
		t.Errorf("ratio after 1000 periods = %s, want ≥ 0.99 (Proposition 3)", prevRatio.RatString())
	}
}

func TestReduceSimChain(t *testing.T) {
	p := topology.Chain(4, rat.One(), rat.One())
	var order []graph.NodeID
	for _, name := range []string{"n0", "n1", "n2", "n3"} {
		order = append(order, p.MustLookup(name))
	}
	pr, _ := reduce.NewProblem(p, order, order[0])
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	app := sol.Integerize()
	res, err := Run(ReduceModel(app), 200)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	k := new(big.Int).Mul(big.NewInt(200), app.Period)
	bound := rat.Mul(sol.Throughput(), new(big.Rat).SetInt(k))
	delivered := new(big.Rat).SetInt(res.MinDelivered())
	ratio := rat.Div(delivered, bound)
	if rat.Less(ratio, rat.New(95, 100)) || ratio.Cmp(rat.One()) > 0 {
		t.Errorf("ratio = %s, want in [0.95, 1]", ratio.RatString())
	}
	if res.FirstFullPeriod < 0 {
		t.Error("pipeline never filled")
	}
}

func TestThroughputConvergesToTP(t *testing.T) {
	p, src, targets := topology.PaperFig2()
	pr, _ := scatter.NewProblem(p, src, targets)
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	m := ScatterModel(sol)
	res, err := Run(m, 2000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	simTP := res.Throughput(m.Period)
	gap := rat.Sub(sol.Throughput(), simTP)
	if gap.Sign() < 0 {
		t.Errorf("simulated throughput %s exceeds LP optimum %s", simTP.RatString(), sol.Throughput().RatString())
	}
	if gap.Cmp(rat.New(1, 100)) > 0 {
		t.Errorf("simulated TP %s too far below optimum %s", simTP.RatString(), sol.Throughput().RatString())
	}
}
