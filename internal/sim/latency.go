package sim

import (
	"fmt"
	"math/big"
)

// LatencyResult reports per-operation pipeline latency for a run of the
// periodic protocol: steady-state scheduling maximizes throughput at the
// cost of each individual operation spending several periods in flight
// (the makespan-vs-throughput tradeoff of the paper's introduction). The
// latency of a delivered unit is the number of periods between the period
// in which its oldest ingredient left a source and the period of its
// delivery.
type LatencyResult struct {
	Periods int
	// Delivered counts absorbed units per sink (identical semantics to
	// Result.Delivered).
	Delivered map[Endpoint]*big.Int
	// MinLatency, MaxLatency and total latency are aggregated over every
	// delivered unit of every sink, in periods.
	MinLatency, MaxLatency int
	totalLatency           *big.Int
	totalUnits             *big.Int
}

// MeanLatency returns the average per-unit latency in periods (0 when
// nothing was delivered).
func (r *LatencyResult) MeanLatency() float64 {
	if r.totalUnits.Sign() == 0 {
		return 0
	}
	v, _ := new(big.Rat).SetFrac(r.totalLatency, r.totalUnits).Float64()
	return v
}

// cohort is a batch of identical units that entered the pipeline in the
// same period.
type cohort struct {
	tag   int // emission period of the oldest ingredient
	count *big.Int
}

// queue is a FIFO of cohorts.
type queue struct {
	items []cohort
	total *big.Int
}

func newQueue() *queue { return &queue{total: new(big.Int)} }

func (q *queue) push(tag int, count *big.Int) {
	if count.Sign() <= 0 {
		return
	}
	n := len(q.items)
	if n > 0 && q.items[n-1].tag == tag {
		q.items[n-1].count.Add(q.items[n-1].count, count)
	} else {
		q.items = append(q.items, cohort{tag: tag, count: new(big.Int).Set(count)})
	}
	q.total.Add(q.total, count)
}

// pop removes count units from the front and returns the removed cohorts.
// It panics if the queue holds fewer than count units (an engine bug).
func (q *queue) pop(count *big.Int) []cohort {
	if q.total.Cmp(count) < 0 {
		panic("sim: queue underflow")
	}
	remaining := new(big.Int).Set(count)
	var out []cohort
	for remaining.Sign() > 0 {
		head := &q.items[0]
		if head.count.Cmp(remaining) <= 0 {
			out = append(out, cohort{tag: head.tag, count: new(big.Int).Set(head.count)})
			remaining.Sub(remaining, head.count)
			q.items = q.items[1:]
		} else {
			out = append(out, cohort{tag: head.tag, count: new(big.Int).Set(remaining)})
			head.count.Sub(head.count, remaining)
			remaining.SetInt64(0)
		}
	}
	q.total.Sub(q.total, count)
	return out
}

// RunLatency replays the Section 3.4 protocol like Run, but tracks every
// unit's origin period through FIFO buffers so that delivery latency can
// be measured. Sends and rules follow the same eligibility semantics as
// Run; a rule's product inherits the oldest (maximum-age ⇒ minimum tag)
// ingredient among its inputs, so reduce latencies reflect the slowest
// branch of the reduction tree.
func RunLatency(m *Model, periods int) (*LatencyResult, error) {
	if periods <= 0 {
		return nil, fmt.Errorf("sim: periods must be positive")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	buf := make(map[Endpoint]*queue)
	get := func(e Endpoint) *queue {
		if buf[e] == nil {
			buf[e] = newQueue()
		}
		return buf[e]
	}
	res := &LatencyResult{
		Periods:      periods,
		Delivered:    make(map[Endpoint]*big.Int),
		MinLatency:   -1,
		totalLatency: new(big.Int),
		totalUnits:   new(big.Int),
	}
	for e := range m.Sinks {
		res.Delivered[e] = new(big.Int)
	}

	demand := make(map[Endpoint]*big.Int)
	for _, t := range m.Transfers {
		e := Endpoint{t.From, t.Type}
		if demand[e] == nil {
			demand[e] = new(big.Int)
		}
		demand[e].Add(demand[e], t.Count)
	}
	rules := sortedRules(m.Rules)

	for period := 0; period < periods; period++ {
		// Shipping decisions from the start-of-period totals.
		eligible := make(map[Endpoint]bool)
		for e, d := range demand {
			eligible[e] = m.Sources[e] || get(e).total.Cmp(d) >= 0
		}

		// Sends: pop cohorts at the sender, credit them at the receiver
		// after all sends (arrivals are usable next decisions).
		type arrival struct {
			e       Endpoint
			cohorts []cohort
		}
		var arrivals []arrival
		for _, t := range m.Transfers {
			from := Endpoint{t.From, t.Type}
			if !eligible[from] {
				continue
			}
			var moved []cohort
			if m.Sources[from] {
				// Fresh units minted this period.
				moved = []cohort{{tag: period, count: new(big.Int).Set(t.Count)}}
			} else {
				moved = get(from).pop(t.Count)
			}
			arrivals = append(arrivals, arrival{Endpoint{t.To, t.Type}, moved})
		}
		for _, a := range arrivals {
			if m.Sources[a.e] {
				continue
			}
			for _, c := range a.cohorts {
				get(a.e).push(c.tag, c.count)
			}
		}

		// Rules: consume one unit per input per execution, produce tagged
		// with the oldest ingredient. Executions are batched per distinct
		// tag combination for speed.
		for _, r := range rules {
			execs := new(big.Int).Set(r.Count)
			for _, cns := range r.Consumes {
				e := Endpoint{r.Node, cns}
				if m.Sources[e] {
					continue
				}
				if avail := get(e).total; avail.Cmp(execs) < 0 {
					execs.Set(avail)
				}
			}
			if execs.Sign() <= 0 {
				continue
			}
			// Pop per-input cohorts, then merge tags pessimistically
			// (oldest tag wins) by aligning the cohort streams.
			streams := make([][]cohort, 0, len(r.Consumes))
			for _, cns := range r.Consumes {
				e := Endpoint{r.Node, cns}
				if m.Sources[e] {
					streams = append(streams, []cohort{{tag: period, count: new(big.Int).Set(execs)}})
					continue
				}
				streams = append(streams, get(e).pop(execs))
			}
			outQ := (*queue)(nil)
			outE := Endpoint{r.Node, r.Produces}
			if !m.Sources[outE] {
				outQ = get(outE)
			}
			for _, c := range alignCohorts(streams, execs) {
				if outQ != nil {
					outQ.push(c.tag, c.count)
				}
			}
		}

		// Sinks drain and record latencies — everything, or up to the
		// sink's quota (surplus cohorts stay queued for forwarding). A
		// sink that is also a source delivers locally owned units: quota
		// per period at latency zero.
		for e := range m.Sinks {
			if m.Sources[e] {
				q := m.SinkQuota[e]
				if q.Sign() > 0 {
					res.MinLatency = 0 // zero is the floor: local units never wait
					res.totalUnits.Add(res.totalUnits, q)
					res.Delivered[e].Add(res.Delivered[e], q)
				}
				continue
			}
			q := get(e)
			if q.total.Sign() == 0 {
				continue
			}
			take := new(big.Int).Set(q.total)
			if quota, ok := m.SinkQuota[e]; ok && take.Cmp(quota) > 0 {
				take.Set(quota)
			}
			for _, c := range q.pop(take) {
				lat := period - c.tag
				if res.MinLatency == -1 || lat < res.MinLatency {
					res.MinLatency = lat
				}
				if lat > res.MaxLatency {
					res.MaxLatency = lat
				}
				res.totalLatency.Add(res.totalLatency, new(big.Int).Mul(big.NewInt(int64(lat)), c.count))
				res.totalUnits.Add(res.totalUnits, c.count)
				res.Delivered[e].Add(res.Delivered[e], c.count)
			}
		}
	}
	if res.MinLatency == -1 {
		res.MinLatency = 0
	}
	return res, nil
}

// alignCohorts zips parallel cohort streams of equal total count into one
// stream where each unit carries the minimum (oldest) tag of its aligned
// ingredients.
func alignCohorts(streams [][]cohort, total *big.Int) []cohort {
	if len(streams) == 0 {
		return nil
	}
	idx := make([]int, len(streams))
	rem := make([]*big.Int, len(streams))
	for i, s := range streams {
		if len(s) > 0 {
			rem[i] = new(big.Int).Set(s[0].count)
		}
	}
	var out []cohort
	left := new(big.Int).Set(total)
	for left.Sign() > 0 {
		// The batch size is the minimum remaining head count.
		batch := new(big.Int).Set(left)
		tag := -1
		for i, s := range streams {
			if rem[i].Cmp(batch) < 0 {
				batch.Set(rem[i])
			}
			t := s[idx[i]].tag
			if tag == -1 || t < tag {
				tag = t
			}
		}
		out = append(out, cohort{tag: tag, count: new(big.Int).Set(batch)})
		for i := range streams {
			rem[i].Sub(rem[i], batch)
			if rem[i].Sign() == 0 && idx[i]+1 < len(streams[i]) {
				idx[i]++
				rem[i] = new(big.Int).Set(streams[i][idx[i]].count)
			}
		}
		left.Sub(left, batch)
	}
	return out
}

// sortedRules returns the rules in execution order (stable by Order).
func sortedRules(rules []Rule) []Rule {
	out := append([]Rule(nil), rules...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Order < out[j-1].Order; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
