// broadcast.go implements the Series of Broadcasts problem — the
// companion construction to the paper's Series of Scatters: one source
// processor owns an unbounded series of unit-size messages, and every
// target must receive a copy of every message. Unlike a scatter, the same
// content travels to every target, so a node that forwards one copy of a
// message onto an edge serves every target routed through that edge at
// once.
//
// The linear program is the scatter LP with one commodity replicated to
// all targets: per-target virtual flows x(e, b_t) reuse the scatter
// conservation and delivery structure, but the one-port rows are charged
// with a single shared per-edge carry rate y(e), constrained by
// x(e, b_t) ≤ y(e) for every target t — the LP relaxation of packing
// weighted broadcast trees. With a single target y(e) collapses onto the
// unique flow and the program degenerates to scatter-to-one.
package scatter

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/rat"
)

// BroadcastProblem is a Series of Broadcasts instance: Source emits one
// unit-size message per operation and every target must receive a copy.
type BroadcastProblem struct {
	Platform *graph.Platform
	Source   graph.NodeID
	Targets  []graph.NodeID
}

// NewBroadcastProblem validates and returns a broadcast problem. The
// source must not be one of the targets (it already holds every message)
// and every target must be reachable.
func NewBroadcastProblem(p *graph.Platform, source graph.NodeID, targets []graph.NodeID) (*BroadcastProblem, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("broadcast: no targets")
	}
	seen := make(map[graph.NodeID]bool)
	for _, t := range targets {
		if t == source {
			return nil, fmt.Errorf("broadcast: source %s cannot be a target", p.Node(source).Name)
		}
		if seen[t] {
			return nil, fmt.Errorf("broadcast: duplicate target %s", p.Node(t).Name)
		}
		seen[t] = true
		if !p.CanReach(source, t) {
			return nil, fmt.Errorf("broadcast: target %s unreachable from source %s",
				p.Node(t).Name, p.Node(source).Name)
		}
	}
	return &BroadcastProblem{Platform: p, Source: source, Targets: append([]graph.NodeID(nil), targets...)}, nil
}

// broadcastKey identifies one per-target flow variable of a fragment.
type broadcastKey struct {
	e core.EdgeKey
	t graph.NodeID
}

// BroadcastFragment is one broadcast's share of a linear program: the
// shared per-edge carry variables (whose busy time is registered on a
// possibly shared OccupancyBuilder) plus the per-target virtual flow
// variables bounded by them. A single fragment on a private model is the
// plain broadcast LP; several fragments on one model superpose broadcasts
// with other collectives on the same platform capacity.
type BroadcastFragment struct {
	Problem *BroadcastProblem
	carry   map[core.EdgeKey]lp.Var
	sends   map[broadcastKey]lp.Var
}

// NewFragment declares the fragment's carry and flow variables into m,
// registering only the carry rates with occ — the per-target flows are
// virtual copies of the same bytes. label prefixes variable names so
// several fragments can share one model. The caller emits the port
// constraints (occ.AddConstraints) once after every fragment has been
// declared, then calls AddFlowConstraints per fragment. ctx carries the
// solve trace, if any: assembly opens an "assemble" span with a
// "reachability" child covering the pruning-index computation.
func (pr *BroadcastProblem) NewFragment(ctx context.Context, m *lp.Model, label string, occ *core.OccupancyBuilder) *BroadcastFragment {
	ctx, asmSpan := obs.StartSpan(ctx, "assemble")
	asmSpan.SetAttr("kind", "broadcast")
	asmSpan.SetAttr("label", label)
	asmSpan.SetAttr("targets", len(pr.Targets))
	p := pr.Platform
	_, reachSpan := obs.StartSpan(ctx, "reachability")
	fromSrc := make(map[graph.NodeID]bool)
	for _, n := range p.ReachableFrom(pr.Source) {
		fromSrc[n] = true
	}
	toDst := make(map[graph.NodeID]map[graph.NodeID]bool)
	for _, t := range pr.Targets {
		set := make(map[graph.NodeID]bool)
		for _, n := range p.Nodes() {
			if n.ID == t || p.CanReach(n.ID, t) {
				set[n.ID] = true
			}
		}
		toDst[t] = set
	}
	reachSpan.SetAttr("sources", 1)
	reachSpan.SetAttr("destinations", len(toDst))
	reachSpan.End()

	f := &BroadcastFragment{
		Problem: pr,
		carry:   make(map[core.EdgeKey]lp.Var),
		sends:   make(map[broadcastKey]lp.Var),
	}
	for _, e := range p.Edges() {
		// The same pruning as the scatter commodity (source, t): a useful
		// copy starts somewhere the message can exist and ends somewhere it
		// can still make progress toward t.
		var useful []graph.NodeID
		for _, t := range pr.Targets {
			if e.To != pr.Source && e.From != t && fromSrc[e.From] && toDst[t][e.To] {
				useful = append(useful, t)
			}
		}
		if len(useful) == 0 {
			continue
		}
		k := core.EdgeKey{From: e.From, To: e.To}
		y := m.Var(fmt.Sprintf("%scarry(%s->%s)", label, p.Node(e.From).Name, p.Node(e.To).Name))
		f.carry[k] = y
		occ.Add(e.From, e.To, y, e.Cost) // unit-size messages, sent once per edge
		for _, t := range useful {
			name := fmt.Sprintf("%ssend(%s->%s,b_%s)", label,
				p.Node(e.From).Name, p.Node(e.To).Name, p.Node(t).Name)
			f.sends[broadcastKey{k, t}] = m.Var(name)
		}
	}
	asmSpan.SetAttr("vars", len(f.carry)+len(f.sends))
	asmSpan.End()
	return f
}

// AddFlowConstraints adds the replication bounds x(e, b_t) ≤ y(e), the
// per-target conservation at forwarding nodes, and the delivery of
// weight·tp at every target. With weight 1 on a private model this is the
// plain broadcast program; in a shared model, weight scales the
// broadcast's delivered rate relative to the common objective tp.
func (f *BroadcastFragment) AddFlowConstraints(m *lp.Model, label string, tp lp.Var, weight rat.Rat) {
	p := f.Problem.Platform
	for _, e := range p.Edges() {
		k := core.EdgeKey{From: e.From, To: e.To}
		y, ok := f.carry[k]
		if !ok {
			continue
		}
		for _, t := range f.Problem.Targets {
			x, ok := f.sends[broadcastKey{k, t}]
			if !ok {
				continue
			}
			m.AddConstraint(
				fmt.Sprintf("%scarrybound(%s->%s,b_%s)", label,
					p.Node(e.From).Name, p.Node(e.To).Name, p.Node(t).Name),
				lp.NewExpr().Plus1(x).Minus(rat.One(), y), lp.Leq, rat.Zero())
		}
	}
	for _, t := range f.Problem.Targets {
		for _, n := range p.Nodes() {
			if n.ID == f.Problem.Source {
				continue
			}
			in := lp.NewExpr()
			for _, e := range p.InEdges(n.ID) {
				if v, ok := f.sends[broadcastKey{core.EdgeKey{From: e.From, To: e.To}, t}]; ok {
					in = in.Plus1(v)
				}
			}
			if n.ID == t {
				in = in.Minus(weight, tp)
				m.AddConstraint(
					fmt.Sprintf("%sdeliver(%s,b_%s)", label, n.Name, p.Node(t).Name),
					in, lp.Eq, rat.Zero())
				continue
			}
			out := lp.NewExpr()
			for _, e := range p.OutEdges(n.ID) {
				if v, ok := f.sends[broadcastKey{core.EdgeKey{From: e.From, To: e.To}, t}]; ok {
					out = out.Plus1(v)
				}
			}
			if len(in) == 0 && len(out) == 0 {
				continue
			}
			cons := in
			for _, term := range out {
				cons = cons.Minus(term.Coeff, term.Var)
			}
			m.AddConstraint(
				fmt.Sprintf("%sconserve(%s,b_%s)", label, n.Name, p.Node(t).Name),
				cons, lp.Eq, rat.Zero())
		}
	}
}

// Extract reads the fragment's solved rates into a broadcast solution
// with the given throughput: per-target flows are cycle-canceled, and the
// carry rate of each edge is tightened to the maximum per-target flow it
// must cover (the LP may leave slack in y within the port capacity).
func (f *BroadcastFragment) Extract(sol *lp.Solution, tp rat.Rat, stats core.FlowStats) *BroadcastSolution {
	flow := core.NewFlow[core.Commodity](f.Problem.Platform)
	flow.Throughput = rat.Copy(tp)
	for k, v := range f.sends {
		flow.SetSend(k.e.From, k.e.To, core.Commodity{Src: f.Problem.Source, Dst: k.t}, sol.Value(v))
	}
	core.CancelCycles(flow)

	carry := make(map[core.EdgeKey]rat.Rat)
	for e, types := range flow.Sends {
		max := rat.Zero()
		for _, r := range types {
			if r.Cmp(max) > 0 {
				max = r
			}
		}
		if max.Sign() > 0 {
			carry[e] = rat.Copy(max)
		}
	}
	return &BroadcastSolution{
		Problem: f.Problem,
		TP:      rat.Copy(tp),
		Flow:    flow,
		Carry:   carry,
		Stats:   stats,
	}
}

// BroadcastSolution is a solved Series of Broadcasts: the optimal
// throughput, the per-target virtual flows, and the shared carry rates
// that realize them physically.
type BroadcastSolution struct {
	Problem *BroadcastProblem
	// TP is the broadcast operations started per time unit.
	TP rat.Rat
	// Flow holds the per-target virtual flows x(e, b_t), keyed by the
	// commodity (source, t): each target's copy of the stream satisfies
	// the scatter-style conservation and delivery constraints.
	Flow *core.Flow[core.Commodity]
	// Carry is the physical rate of distinct messages on each edge —
	// max over targets of the virtual flows — the rate the one-port model
	// is charged for.
	Carry map[core.EdgeKey]rat.Rat
	Stats core.FlowStats
}

// Solve builds and solves the broadcast LP.
func (pr *BroadcastProblem) Solve() (*BroadcastSolution, error) {
	return pr.SolveCtx(context.Background())
}

// SolveCtx is Solve honoring context cancellation inside the simplex loop.
func (pr *BroadcastProblem) SolveCtx(ctx context.Context) (*BroadcastSolution, error) {
	m := lp.NewMaximize()
	tp := m.Var("TP")
	m.SetObjective(tp, rat.One())
	occ := core.NewOccupancy(pr.Platform)
	frag := pr.NewFragment(ctx, m, "", occ)
	occ.AddConstraints(m)
	frag.AddFlowConstraints(m, "", tp, rat.One())

	sol, err := m.SolveCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("broadcast: %w", err)
	}
	if err := m.Verify(sol.Values()); err != nil {
		return nil, fmt.Errorf("broadcast: LP solution failed verification: %w", err)
	}
	_, exSpan := obs.StartSpan(ctx, "extract")
	out := frag.Extract(sol, sol.Objective, core.StatsOf(m, sol))
	exSpan.SetAttr("kind", "broadcast")
	exSpan.End()
	return out, nil
}

// Throughput returns TP: broadcasts initiated per time unit.
func (s *BroadcastSolution) Throughput() rat.Rat { return rat.Copy(s.TP) }

// AllRates returns the throughput, every per-target flow rate and every
// carry rate — the input to the period computation.
func (s *BroadcastSolution) AllRates() []rat.Rat {
	out := s.Flow.AllRates()
	for _, r := range s.Carry {
		out = append(out, rat.Copy(r)) //sslint:allow order-insensitive: rates feed DenominatorLCM
	}
	return out
}

// Period returns the schedule period T: the smallest integer such that
// every per-period message count — including the carry counts the
// schedule actually moves — is an integer.
func (s *BroadcastSolution) Period() *big.Int {
	return rat.DenominatorLCM(s.AllRates()...)
}

// Verify checks the solution against the broadcast constraints,
// independent of the LP solver: every per-target flow is covered by its
// edge's carry rate, the carry stream respects the one-port model, and
// each target's virtual flow conserves at forwarding nodes and delivers
// exactly TP. It returns the first violation.
func (s *BroadcastSolution) Verify() error {
	p := s.Problem.Platform
	for e, types := range s.Flow.Sends {
		carry := s.Carry[e]
		for com, r := range types {
			if carry == nil || r.Cmp(carry) > 0 {
				return fmt.Errorf("broadcast: flow for target %s on %s→%s exceeds the edge's carry rate",
					p.Node(com.Dst).Name, p.Node(e.From).Name, p.Node(e.To).Name)
			}
		}
	}
	outTot := make(map[graph.NodeID]rat.Rat)
	inTot := make(map[graph.NodeID]rat.Rat)
	for e, r := range s.Carry {
		occ := rat.Mul(r, p.Cost(e.From, e.To))
		if occ.Cmp(rat.One()) > 0 {
			return fmt.Errorf("broadcast: edge %s→%s occupation %s > 1",
				p.Node(e.From).Name, p.Node(e.To).Name, occ.RatString())
		}
		if outTot[e.From] == nil {
			outTot[e.From] = rat.Zero()
		}
		if inTot[e.To] == nil {
			inTot[e.To] = rat.Zero()
		}
		outTot[e.From].Add(outTot[e.From], occ)
		inTot[e.To].Add(inTot[e.To], occ)
	}
	for id, occ := range outTot {
		if occ.Cmp(rat.One()) > 0 {
			return fmt.Errorf("broadcast: node %s sends for %s > 1 per time unit",
				p.Node(id).Name, occ.RatString())
		}
	}
	for id, occ := range inTot {
		if occ.Cmp(rat.One()) > 0 {
			return fmt.Errorf("broadcast: node %s receives for %s > 1 per time unit",
				p.Node(id).Name, occ.RatString())
		}
	}
	for _, t := range s.Problem.Targets {
		com := core.Commodity{Src: s.Problem.Source, Dst: t}
		for _, n := range p.Nodes() {
			in, out := s.Flow.InflowOutflow(n.ID, com)
			switch n.ID {
			case s.Problem.Source:
				// The source mints messages; only its emissions matter.
			case t:
				if !rat.IsZero(out) {
					return fmt.Errorf("broadcast: target %s re-emits its own copy", n.Name)
				}
				if !rat.Eq(in, s.TP) {
					return fmt.Errorf("broadcast: target %s receives %s, want TP=%s",
						n.Name, in.RatString(), s.TP.RatString())
				}
			default:
				if !rat.Eq(in, out) {
					return fmt.Errorf("broadcast: conservation violated at %s for b_%s: in=%s out=%s",
						n.Name, p.Node(t).Name, in.RatString(), out.RatString())
				}
			}
		}
	}
	return nil
}

// CarryTransfer is one physical message stream of a broadcast solution:
// Rate distinct unit-size messages per time unit on the edge From→To.
type CarryTransfer struct {
	From, To graph.NodeID
	Rate     rat.Rat
}

// CarryTransfers returns the broadcast's physical demand — one transfer
// per edge at the carry rate, in deterministic order — for schedule
// construction and shared-capacity accounting.
func (s *BroadcastSolution) CarryTransfers() []CarryTransfer {
	out := make([]CarryTransfer, 0, len(s.Carry))
	for e, r := range s.Carry {
		out = append(out, CarryTransfer{From: e.From, To: e.To, Rate: rat.Copy(r)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// String renders the solution as the paper's figures do: throughput, then
// per-edge carry rates (the messages physically moved).
func (s *BroadcastSolution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "broadcast throughput TP = %s (period %s)\n",
		s.TP.RatString(), s.Period().String())
	p := s.Problem.Platform
	var lines []string
	for e, r := range s.Carry {
		lines = append(lines, fmt.Sprintf("  carry(%s->%s) = %s",
			p.Node(e.From).Name, p.Node(e.To).Name, r.RatString()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
