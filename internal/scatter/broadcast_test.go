package scatter

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rat"
)

// chain3 builds a directed chain a→b→c with unit costs.
func chain3(t *testing.T) (*graph.Platform, graph.NodeID, graph.NodeID, graph.NodeID) {
	t.Helper()
	p := graph.New()
	a := p.AddNode("a", rat.New(1, 1))
	b := p.AddNode("b", rat.New(1, 1))
	c := p.AddNode("c", rat.New(1, 1))
	p.AddEdge(a, b, rat.New(1, 1))
	p.AddEdge(b, c, rat.New(1, 1))
	return p, a, b, c
}

// TestNewBroadcastProblemValidation: role errors are caught at
// construction.
func TestNewBroadcastProblemValidation(t *testing.T) {
	p, a, b, c := chain3(t)
	if _, err := NewBroadcastProblem(p, a, nil); err == nil {
		t.Error("no targets should fail")
	}
	if _, err := NewBroadcastProblem(p, a, []graph.NodeID{a}); err == nil {
		t.Error("source as target should fail")
	}
	if _, err := NewBroadcastProblem(p, a, []graph.NodeID{b, b}); err == nil {
		t.Error("duplicate target should fail")
	}
	if _, err := NewBroadcastProblem(p, c, []graph.NodeID{a}); err == nil {
		t.Error("unreachable target should fail")
	}
	if _, err := NewBroadcastProblem(p, a, []graph.NodeID{b, c}); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

// TestBroadcastChainRelay: on a chain a→b→c the same copy is relayed, so
// both targets receive full rate while every edge carries each message
// exactly once — TP = 1 where a scatter of distinct messages would halve.
func TestBroadcastChainRelay(t *testing.T) {
	p, a, b, c := chain3(t)
	pr, err := NewBroadcastProblem(p, a, []graph.NodeID{b, c})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Throughput().RatString(); got != "1" {
		t.Errorf("TP = %s, want 1", got)
	}
	for _, e := range []core.EdgeKey{{From: a, To: b}, {From: b, To: c}} {
		carry := sol.Carry[e]
		if carry == nil || carry.RatString() != "1" {
			t.Errorf("carry(%d→%d) = %v, want 1 (each message crosses once)", e.From, e.To, carry)
		}
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	trs := sol.CarryTransfers()
	if len(trs) != 2 {
		t.Errorf("got %d carry transfers, want 2", len(trs))
	}
}

// TestBroadcastSingleTargetMatchesScatter: one target leaves nothing to
// replicate; the broadcast and scatter optima coincide.
func TestBroadcastSingleTargetMatchesScatter(t *testing.T) {
	p, a, b, _ := chain3(t)
	bsol, err := must(NewBroadcastProblem(p, a, []graph.NodeID{b})).Solve()
	if err != nil {
		t.Fatal(err)
	}
	ssol, err := must(NewProblem(p, a, []graph.NodeID{b})).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if bsol.Throughput().Cmp(ssol.Throughput()) != 0 {
		t.Errorf("broadcast TP = %s, scatter TP = %s",
			bsol.Throughput().RatString(), ssol.Throughput().RatString())
	}
}

// TestBroadcastVerifyCatchesTampering: Verify rejects a solution whose
// carry rates no longer cover the per-target flows.
func TestBroadcastVerifyCatchesTampering(t *testing.T) {
	p, a, b, c := chain3(t)
	sol, err := must(NewBroadcastProblem(p, a, []graph.NodeID{b, c})).Solve()
	if err != nil {
		t.Fatal(err)
	}
	sol.Carry[core.EdgeKey{From: a, To: b}] = rat.New(1, 4)
	if err := sol.Verify(); err == nil {
		t.Error("Verify accepted a carry rate below the flows it must cover")
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
