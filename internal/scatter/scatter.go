// Package scatter implements Section 3 of the paper: the Series of
// Scatters problem. One source processor owns an unbounded series of
// unit-size messages, one distinct message per target per scatter
// operation, and the goal is to maximize the steady-state throughput TP —
// the (rational) number of scatter operations initiated per time unit —
// under the one-port model.
//
// Solve builds the linear program SSSP(G) (equations (1)–(6)), solves it
// exactly over the rationals, and returns the per-edge typed message rates.
// The companion helpers expose the Section 3.4 machinery: the integer
// period, per-node buffer requirements, and the asymptotically optimal
// buffered protocol parameters used to prove Proposition 1.
package scatter

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rat"
)

// Problem is a Series of Scatters instance.
type Problem struct {
	Platform *graph.Platform
	Source   graph.NodeID
	Targets  []graph.NodeID
}

// NewProblem validates and returns a scatter problem. The source must not
// be one of the targets (a message "sent" from the source to itself never
// crosses the network, so its throughput is not defined by the model), and
// every target must be reachable.
func NewProblem(p *graph.Platform, source graph.NodeID, targets []graph.NodeID) (*Problem, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("scatter: no targets")
	}
	seen := make(map[graph.NodeID]bool)
	for _, t := range targets {
		if t == source {
			return nil, fmt.Errorf("scatter: source %s cannot be a target", p.Node(source).Name)
		}
		if seen[t] {
			return nil, fmt.Errorf("scatter: duplicate target %s", p.Node(t).Name)
		}
		seen[t] = true
		if !p.CanReach(source, t) {
			return nil, fmt.Errorf("scatter: target %s unreachable from source %s",
				p.Node(t).Name, p.Node(source).Name)
		}
	}
	return &Problem{Platform: p, Source: source, Targets: append([]graph.NodeID(nil), targets...)}, nil
}

// Solution is a solved Series of Scatters: the optimal throughput and the
// steady-state communication pattern achieving it.
type Solution struct {
	Problem *Problem
	// Flow maps every directed edge and message type m_t (identified by
	// the commodity (source, t)) to its fractional per-time-unit rate.
	Flow  *core.Flow[core.Commodity]
	Stats core.FlowStats
}

// Solve builds and solves SSSP(G).
func (pr *Problem) Solve() (*Solution, error) { return pr.SolveCtx(context.Background()) }

// SolveCtx is Solve honoring context cancellation inside the simplex loop.
func (pr *Problem) SolveCtx(ctx context.Context) (*Solution, error) {
	comms := make([]core.Commodity, len(pr.Targets))
	for i, t := range pr.Targets {
		comms[i] = core.Commodity{Src: pr.Source, Dst: t}
	}
	flow, stats, err := core.SolveUniformFlowCtx(ctx, pr.Platform, comms)
	if err != nil {
		return nil, fmt.Errorf("scatter: %w", err)
	}
	return &Solution{Problem: pr, Flow: flow, Stats: stats}, nil
}

// Throughput returns TP: scatters initiated per time unit.
func (s *Solution) Throughput() rat.Rat { return rat.Copy(s.Flow.Throughput) }

// UnitSize is the message size function for scatter flows (all messages
// have unit size; edge costs already express per-message transfer time).
func UnitSize(core.Commodity) rat.Rat { return rat.One() }

// Period returns the schedule period T: the smallest integer such that
// every per-period message count send(e, m_t)·T is an integer.
func (s *Solution) Period() *big.Int { return s.Flow.Period() }

// Verify checks the solution against the paper's constraints, independent
// of the LP solver: one-port feasibility, conservation at every node other
// than the source and the type's target, and delivery of exactly TP per
// target. It returns the first violation.
func (s *Solution) Verify() error {
	if err := s.Flow.VerifyOnePort(UnitSize); err != nil {
		return fmt.Errorf("scatter: %w", err)
	}
	for _, t := range s.Problem.Targets {
		com := core.Commodity{Src: s.Problem.Source, Dst: t}
		for _, n := range s.Problem.Platform.Nodes() {
			in, out := s.Flow.InflowOutflow(n.ID, com)
			switch n.ID {
			case s.Problem.Source:
				// The source mints messages; only its emissions matter.
			case t:
				if !rat.IsZero(out) {
					return fmt.Errorf("scatter: target %s re-emits its own messages", n.Name)
				}
				if !rat.Eq(in, s.Flow.Throughput) {
					return fmt.Errorf("scatter: target %s receives %s, want TP=%s",
						n.Name, in.RatString(), s.Flow.Throughput.RatString())
				}
			default:
				if !rat.Eq(in, out) {
					return fmt.Errorf("scatter: conservation violated at %s for m_%s: in=%s out=%s",
						n.Name, s.Problem.Platform.Node(t).Name, in.RatString(), out.RatString())
				}
			}
		}
	}
	return nil
}

// BufferRequirement is the Section 3.4 steady-state buffer bound for one
// (node, message type) pair: the node must hold at least MinMessages
// messages of the type before entering steady state, and never holds more
// than 2·MinMessages.
type BufferRequirement struct {
	Node graph.NodeID
	// Target identifies the message type m_target.
	Target graph.NodeID
	// MinMessages = Σ_j send(node→j, m_target) · T: messages of the type
	// forwarded by the node during one period.
	MinMessages *big.Int
}

// BufferRequirements returns the buffer bounds for every forwarding node
// and type with traffic, for the integer period Period(). Entries are
// sorted by node then target for deterministic output.
func (s *Solution) BufferRequirements() []BufferRequirement {
	period := new(big.Rat).SetInt(s.Period())
	acc := make(map[[2]graph.NodeID]rat.Rat)
	for e, types := range s.Flow.Sends {
		if e.From == s.Problem.Source {
			continue // the source mints messages, it does not buffer them
		}
		for com, r := range types {
			k := [2]graph.NodeID{e.From, com.Dst}
			if acc[k] == nil {
				acc[k] = rat.Zero()
			}
			acc[k].Add(acc[k], r)
		}
	}
	var out []BufferRequirement
	for k, r := range acc {
		scaled := rat.Mul(r, period)
		if !scaled.IsInt() {
			panic("scatter: period does not clear buffer denominators")
		}
		out = append(out, BufferRequirement{
			Node:        k[0],
			Target:      k[1],
			MinMessages: new(big.Int).Set(scaled.Num()),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// Protocol returns the Section 3.4 protocol parameters for a horizon of K
// time units: period, initialization latency and steady period count, from
// which the asymptotic-optimality ratio of Proposition 1 follows.
func (s *Solution) Protocol(horizon *big.Int) core.Protocol {
	return core.Protocol{
		Period:   s.Period(),
		Diameter: s.Problem.Platform.HopDiameter(),
		Horizon:  new(big.Int).Set(horizon),
	}
}

// String renders the solution as the paper's figures do: throughput, then
// per-edge typed message rates.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scatter throughput TP = %s (period %s)\n",
		s.Flow.Throughput.RatString(), s.Period().String())
	p := s.Problem.Platform
	var lines []string
	for e, types := range s.Flow.Sends {
		for com, r := range types {
			lines = append(lines, fmt.Sprintf("  send(%s->%s, m_%s) = %s",
				p.Node(e.From).Name, p.Node(e.To).Name, p.Node(com.Dst).Name, r.RatString()))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
