package scatter

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/topology"
)

func solveFig2(t *testing.T) *Solution {
	t.Helper()
	p, src, targets := topology.PaperFig2()
	pr, err := NewProblem(p, src, targets)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestPaperFig2Throughput(t *testing.T) {
	sol := solveFig2(t)
	if !rat.Eq(sol.Throughput(), rat.New(1, 2)) {
		t.Fatalf("TP = %s, want exactly 1/2 (one scatter every two time units)",
			sol.Throughput().RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestNewProblemValidation(t *testing.T) {
	p, src, targets := topology.PaperFig2()
	if _, err := NewProblem(p, src, nil); err == nil {
		t.Error("no targets should fail")
	}
	if _, err := NewProblem(p, src, []graph.NodeID{src}); err == nil {
		t.Error("source as target should fail")
	}
	if _, err := NewProblem(p, src, []graph.NodeID{targets[0], targets[0]}); err == nil {
		t.Error("duplicate target should fail")
	}
	// P0 cannot reach P1 (edges point downward only).
	if _, err := NewProblem(p, targets[0], []graph.NodeID{targets[1]}); err == nil {
		t.Error("unreachable target should fail")
	}
}

func TestStarScatterThroughput(t *testing.T) {
	// Star: center scatters to n leaves over unit-cost links. The center's
	// out-port serializes everything: TP = 1/n.
	const n = 4
	p := topology.Star(n, rat.One(), rat.One())
	center := p.MustLookup("center")
	var targets []graph.NodeID
	for i := 0; i < n; i++ {
		targets = append(targets, p.MustLookup("leaf"+string(rune('0'+i))))
	}
	pr, err := NewProblem(p, center, targets)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !rat.Eq(sol.Throughput(), rat.New(1, n)) {
		t.Errorf("TP = %s, want 1/%d", sol.Throughput().RatString(), n)
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestChainScatterRelaying(t *testing.T) {
	// Chain n0→n1→n2→n3: n0 scatters to {n1, n2, n3}. n0's out-port must
	// push 3 messages per scatter through one link: TP ≤ 1/3. Relaying
	// achieves it: n1 forwards 2, n2 forwards 1.
	p := topology.Chain(4, rat.One(), rat.One())
	n0 := p.MustLookup("n0")
	targets := []graph.NodeID{p.MustLookup("n1"), p.MustLookup("n2"), p.MustLookup("n3")}
	pr, err := NewProblem(p, n0, targets)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !rat.Eq(sol.Throughput(), rat.New(1, 3)) {
		t.Errorf("TP = %s, want 1/3", sol.Throughput().RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestHeterogeneousBeatsBottleneck(t *testing.T) {
	// Two targets, one behind a slow link and one behind a fast link: the
	// uniform-throughput constraint makes the slow link the binding
	// resource along with the source port.
	p := graph.New()
	s := p.AddNode("s", rat.One())
	f := p.AddNode("fast", rat.One())
	sl := p.AddNode("slow", rat.One())
	p.AddEdge(s, f, rat.One())
	p.AddEdge(s, sl, rat.Int(5))
	pr, err := NewProblem(p, s, []graph.NodeID{f, sl})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Source out-port: TP·1 + TP·5 ≤ 1 → TP = 1/6.
	if !rat.Eq(sol.Throughput(), rat.New(1, 6)) {
		t.Errorf("TP = %s, want 1/6", sol.Throughput().RatString())
	}
}

func TestBufferRequirements(t *testing.T) {
	sol := solveFig2(t)
	reqs := sol.BufferRequirements()
	if len(reqs) == 0 {
		t.Fatal("no buffer requirements for a relaying platform")
	}
	p := sol.Problem.Platform
	src := sol.Problem.Source
	for _, r := range reqs {
		if r.Node == src {
			t.Error("source must not appear in buffer requirements")
		}
		if r.MinMessages.Sign() <= 0 {
			t.Errorf("node %s type m_%s: non-positive buffer %s",
				p.Node(r.Node).Name, p.Node(r.Target).Name, r.MinMessages)
		}
	}
	// Forwarders (Pa and/or Pb) must buffer exactly the per-period counts:
	// total forwarded messages per period = TP·period per target stream
	// crossing them. Check aggregate: sum over forwarders of m_t buffers
	// equals per-period forwarded count of each type.
	period := new(big.Rat).SetInt(sol.Period())
	for _, tgt := range sol.Problem.Targets {
		want := rat.Mul(sol.Throughput(), period) // messages of m_tgt delivered per period
		got := rat.Zero()
		for _, r := range reqs {
			if r.Target == tgt {
				got.Add(got, new(big.Rat).SetInt(r.MinMessages))
			}
		}
		// Every delivered message of m_tgt crosses exactly one forwarder
		// on this platform (source → forwarder → target), so the buffered
		// count equals the delivered count.
		if !rat.Eq(got, want) {
			t.Errorf("m_%s buffered %s per period, want %s",
				p.Node(tgt).Name, got.RatString(), want.RatString())
		}
	}
}

func TestProtocolAsymptotics(t *testing.T) {
	sol := solveFig2(t)
	prev := rat.Zero()
	for _, k := range []int64{100, 1000, 10000} {
		pr := sol.Protocol(big.NewInt(k))
		ratio := pr.Ratio(sol.Throughput())
		if ratio.Cmp(prev) < 0 {
			t.Errorf("ratio not monotone at K=%d", k)
		}
		if ratio.Cmp(rat.One()) > 0 {
			t.Errorf("ratio > 1 at K=%d: %s (violates Lemma 1)", k, ratio.RatString())
		}
		prev = ratio
	}
	if rat.Less(prev, rat.New(9, 10)) {
		t.Errorf("ratio at K=10000 is %s, expected ≥ 0.9", prev.RatString())
	}
}

func TestSolutionString(t *testing.T) {
	sol := solveFig2(t)
	s := sol.String()
	if !strings.Contains(s, "TP = 1/2") || !strings.Contains(s, "send(") {
		t.Errorf("String output unexpected:\n%s", s)
	}
}

func TestScatterOnTiersPlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("medium LP in -short mode")
	}
	p := topology.Tiers(topology.DefaultTiersConfig(23))
	parts := p.Participants()
	pr, err := NewProblem(p, parts[0], parts[1:])
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Throughput().Sign() <= 0 {
		t.Error("TP should be positive")
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}
