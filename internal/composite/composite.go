// Package composite implements concurrent steady-state collectives: the
// superposition of several collective operations on one heterogeneous
// platform, solved as a single linear program with shared capacity rows.
//
// The paper expresses every collective (scatter, broadcast, gossip,
// reduce, gather, prefix) as the same kind of steady-state LP over one
// platform graph, so running several of them concurrently is just the
// union of their programs under shared per-node one-port send/receive
// constraints — and, for reduce-family members, shared per-node compute
// constraints. The model maximizes a common base throughput TP; member i
// runs at Weight_i · TP, so equal weights yield the max-min fair common
// rate and unequal weights trade members off proportionally.
//
// Two collectives of the public API are pure instances of this
// construction:
//
//   - Reduce-scatter — participant i ends up with segment i reduced over
//     all ranks — is N concurrent reduces over the same participant
//     order, reduce i delivering to participant i, all with weight one.
//   - Allreduce — every participant ends up with the full reduction —
//     composes that reduce-scatter phase with an allgather: a gossip
//     member redistributing each participant's reduced segment to every
//     other rank, at the same weight-one rate.
//
// Each member's variables keep their own conservation structure (the
// members exchange no data), so the per-member sub-solutions are ordinary
// scatter/gossip/reduce/prefix solutions and reuse the existing schedule,
// tree-extraction and verification machinery. The merged periodic schedule
// decomposes the union of all members' transfers into one sequence of
// one-port-safe matching slots over the LCM of the member periods.
package composite

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/prefix"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/scatter"
	"repro/internal/schedule"
)

// Member is one collective of a composite: exactly one problem field is
// set, and Weight scales the member's delivered rate relative to the
// common base throughput (member i delivers Weight_i · TP per time unit).
type Member struct {
	Weight    rat.Rat
	Scatter   *scatter.Problem
	Broadcast *scatter.BroadcastProblem
	Gossip    *gossip.Problem
	Reduce    *reduce.Problem
	Prefix    *prefix.Problem
}

// ScatterMember wraps a scatter problem as a weighted member.
func ScatterMember(pr *scatter.Problem, weight rat.Rat) Member {
	return Member{Weight: rat.Copy(weight), Scatter: pr}
}

// BroadcastMember wraps a broadcast problem as a weighted member.
func BroadcastMember(pr *scatter.BroadcastProblem, weight rat.Rat) Member {
	return Member{Weight: rat.Copy(weight), Broadcast: pr}
}

// GossipMember wraps a gossip problem as a weighted member.
func GossipMember(pr *gossip.Problem, weight rat.Rat) Member {
	return Member{Weight: rat.Copy(weight), Gossip: pr}
}

// ReduceMember wraps a reduce (or gather) problem as a weighted member.
func ReduceMember(pr *reduce.Problem, weight rat.Rat) Member {
	return Member{Weight: rat.Copy(weight), Reduce: pr}
}

// PrefixMember wraps a prefix problem as a weighted member.
func PrefixMember(pr *prefix.Problem, weight rat.Rat) Member {
	return Member{Weight: rat.Copy(weight), Prefix: pr}
}

// Kind names the member's collective family.
func (mem Member) Kind() string {
	switch {
	case mem.Scatter != nil:
		return "scatter"
	case mem.Broadcast != nil:
		return "broadcast"
	case mem.Gossip != nil:
		return "gossip"
	case mem.Reduce != nil:
		return "reduce"
	case mem.Prefix != nil:
		return "prefix"
	}
	return "empty"
}

// platform returns the platform of the member's problem.
func (mem Member) platform() *graph.Platform {
	switch {
	case mem.Scatter != nil:
		return mem.Scatter.Platform
	case mem.Broadcast != nil:
		return mem.Broadcast.Platform
	case mem.Gossip != nil:
		return mem.Gossip.Platform
	case mem.Reduce != nil:
		return mem.Reduce.Platform
	case mem.Prefix != nil:
		return mem.Prefix.Platform
	}
	return nil
}

func (mem Member) validate(i int, p *graph.Platform) error {
	set := 0
	for _, ok := range []bool{mem.Scatter != nil, mem.Broadcast != nil, mem.Gossip != nil, mem.Reduce != nil, mem.Prefix != nil} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("composite: member %d must set exactly one problem, has %d", i, set)
	}
	if mem.Weight == nil || mem.Weight.Sign() <= 0 {
		return fmt.Errorf("composite: member %d has non-positive weight", i)
	}
	if mem.platform() != p {
		return fmt.Errorf("composite: member %d is bound to a different platform", i)
	}
	return nil
}

// Problem is a set of collectives solved as one steady-state LP on one
// platform with shared one-port and compute capacity.
type Problem struct {
	Platform *graph.Platform
	Members  []Member
}

// NewProblem validates and returns a composite instance. Every member must
// reference the same platform value the composite is built on.
func NewProblem(p *graph.Platform, members []Member) (*Problem, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("composite: no members")
	}
	for i, mem := range members {
		if err := mem.validate(i, p); err != nil {
			return nil, err
		}
	}
	return &Problem{Platform: p, Members: append([]Member(nil), members...)}, nil
}

// MemberSolution is one member's share of a solved composite: an ordinary
// per-kind solution whose rates satisfy the member's own conservation and
// delivery constraints at Throughput = Weight · TP. Its Stats mirror the
// whole composite LP (the members were solved jointly).
type MemberSolution struct {
	Weight     rat.Rat
	Throughput rat.Rat
	Scatter    *scatter.Solution
	Broadcast  *scatter.BroadcastSolution
	Gossip     *gossip.Solution
	Reduce     *reduce.Solution
	Prefix     *prefix.Solution
}

// Kind names the member's collective family.
func (ms *MemberSolution) Kind() string {
	switch {
	case ms.Scatter != nil:
		return "scatter"
	case ms.Broadcast != nil:
		return "broadcast"
	case ms.Gossip != nil:
		return "gossip"
	case ms.Reduce != nil:
		return "reduce"
	case ms.Prefix != nil:
		return "prefix"
	}
	return "empty"
}

// Verify re-checks the member's own constraints (conservation, delivery at
// Weight·TP, per-member occupations).
func (ms *MemberSolution) Verify() error {
	switch {
	case ms.Scatter != nil:
		return ms.Scatter.Verify()
	case ms.Broadcast != nil:
		return ms.Broadcast.Verify()
	case ms.Gossip != nil:
		return ms.Gossip.Verify()
	case ms.Reduce != nil:
		return ms.Reduce.Verify()
	case ms.Prefix != nil:
		return ms.Prefix.Verify()
	}
	return fmt.Errorf("composite: empty member solution")
}

// AllRates returns the member's rates plus its throughput.
func (ms *MemberSolution) AllRates() []rat.Rat {
	switch {
	case ms.Scatter != nil:
		return ms.Scatter.Flow.AllRates()
	case ms.Broadcast != nil:
		return ms.Broadcast.AllRates()
	case ms.Gossip != nil:
		return ms.Gossip.Flow.AllRates()
	case ms.Reduce != nil:
		return ms.Reduce.AllRates()
	case ms.Prefix != nil:
		rates := []rat.Rat{rat.Copy(ms.Prefix.TP)}
		for _, r := range ms.Prefix.Sends {
			rates = append(rates, rat.Copy(r)) //sslint:allow order-insensitive: rates feed DenominatorLCM
		}
		for _, r := range ms.Prefix.Tasks {
			rates = append(rates, rat.Copy(r)) //sslint:allow order-insensitive: rates feed DenominatorLCM
		}
		return rates
	}
	return nil
}

// Period returns the member's own integer schedule period (LCM of its rate
// denominators).
func (ms *MemberSolution) Period() *big.Int {
	return rat.DenominatorLCM(ms.AllRates()...)
}

// sizeOf returns the member's message-size function over its range types
// (unit for scatter/gossip commodities).
func (ms *MemberSolution) sizeOf(r reduce.Range) rat.Rat {
	switch {
	case ms.Reduce != nil:
		return ms.Reduce.Problem.SizeOf(r)
	case ms.Prefix != nil:
		return ms.Prefix.Problem.SizeOf(r)
	}
	return rat.One()
}

// flows returns the member's transfers and compute occupation for the
// merged schedule and the shared-capacity checks, with labels prefixed for
// the member. Transfers are emitted in deterministic order.
func (ms *MemberSolution) flows(p *graph.Platform, label string) schedule.MemberFlow {
	var out schedule.MemberFlow
	switch {
	case ms.Broadcast != nil:
		out = BroadcastMemberFlow(ms.Broadcast, label)
	case ms.Scatter != nil, ms.Gossip != nil:
		var flow *core.Flow[core.Commodity]
		if ms.Scatter != nil {
			flow = ms.Scatter.Flow
		} else {
			flow = ms.Gossip.Flow
		}
		for e, types := range flow.Sends {
			for c, r := range types {
				lbl := label + "m_" + p.Node(c.Dst).Name
				if ms.Gossip != nil {
					lbl = label + "m_" + p.Node(c.Src).Name + "_" + p.Node(c.Dst).Name
				}
				out.Transfers = append(out.Transfers, schedule.FlowTransfer{
					From: e.From, To: e.To, Label: lbl, Size: rat.One(), Rate: rat.Copy(r),
				})
			}
		}
	case ms.Reduce != nil, ms.Prefix != nil:
		var sends map[reduce.SendKey]rat.Rat
		var tasks map[reduce.TaskKey]rat.Rat
		var taskTime func(graph.NodeID, reduce.Task) rat.Rat
		if ms.Reduce != nil {
			sends, tasks, taskTime = ms.Reduce.Sends, ms.Reduce.Tasks, ms.Reduce.Problem.TaskTime
		} else {
			sends, tasks, taskTime = ms.Prefix.Sends, ms.Prefix.Tasks, ms.Prefix.Problem.TaskTime
		}
		for k, r := range sends {
			out.Transfers = append(out.Transfers, schedule.FlowTransfer{
				From: k.From, To: k.To, Label: label + k.R.String(),
				Size: ms.sizeOf(k.R), Rate: rat.Copy(r),
			})
		}
		out.ComputeTime = make(map[graph.NodeID]rat.Rat)
		for k, r := range tasks {
			if out.ComputeTime[k.Node] == nil {
				out.ComputeTime[k.Node] = rat.Zero()
			}
			out.ComputeTime[k.Node].Add(out.ComputeTime[k.Node], rat.Mul(r, taskTime(k.Node, k.T)))
		}
	}
	sort.Slice(out.Transfers, func(i, j int) bool {
		a, b := out.Transfers[i], out.Transfers[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label < b.Label
	})
	return out
}

// BroadcastMemberFlow converts a broadcast solution's carry stream — the
// messages physically moved, one shared copy per edge, not one per
// target — into a merged-schedule member flow, with every transfer
// labeled label+"bcast". It is the single conversion point for both the
// standalone broadcast schedule and composite merged schedules.
func BroadcastMemberFlow(sol *scatter.BroadcastSolution, label string) schedule.MemberFlow {
	var out schedule.MemberFlow
	for _, tr := range sol.CarryTransfers() {
		out.Transfers = append(out.Transfers, schedule.FlowTransfer{
			From: tr.From, To: tr.To, Label: label + "bcast", Size: rat.One(), Rate: tr.Rate,
		})
	}
	return out
}

// Solution is a solved composite: the common base throughput TP (member i
// runs at Weight_i · TP) and the per-member sub-solutions.
type Solution struct {
	Problem *Problem
	TP      rat.Rat
	Members []*MemberSolution
	Stats   core.FlowStats
}

// memberFragments holds one member's LP fragments during assembly.
type memberFragments struct {
	flow  *core.FlowFragment
	bcast *scatter.BroadcastFragment
	red   *reduce.Fragment
	pre   *prefix.Fragment
}

// memberLabel prefixes variable and constraint names of member i.
func memberLabel(i int) string { return fmt.Sprintf("op%d:", i) }

// Solve builds and solves the shared-capacity LP.
func (pr *Problem) Solve() (*Solution, error) { return pr.SolveCtx(context.Background()) }

// SolveCtx is Solve honoring context cancellation inside the simplex loop.
// The assembly mirrors the per-kind solvers phase by phase — transfer
// variables, then the shared port rows, then task variables, then the
// shared compute rows, then per-member conservation and delivery — so a
// single-member composite produces a model structurally identical to the
// plain solver's and therefore the bit-exact same throughput and period.
func (pr *Problem) SolveCtx(ctx context.Context) (*Solution, error) {
	m := lp.NewMaximize()
	tp := m.Var("TP")
	m.SetObjective(tp, rat.One())
	occ := core.NewOccupancy(pr.Platform)
	comp := core.NewCompute(pr.Platform)

	frags := make([]memberFragments, len(pr.Members))
	for i, mem := range pr.Members {
		label := memberLabel(i)
		switch {
		case mem.Scatter != nil:
			comms := make([]core.Commodity, len(mem.Scatter.Targets))
			for j, t := range mem.Scatter.Targets {
				comms[j] = core.Commodity{Src: mem.Scatter.Source, Dst: t}
			}
			f, err := core.NewFlowFragment(ctx, m, label, pr.Platform, comms, occ)
			if err != nil {
				return nil, fmt.Errorf("composite: member %d: %w", i, err)
			}
			frags[i].flow = f
		case mem.Broadcast != nil:
			frags[i].bcast = mem.Broadcast.NewFragment(ctx, m, label, occ)
		case mem.Gossip != nil:
			f, err := core.NewFlowFragment(ctx, m, label, pr.Platform, mem.Gossip.Commodities(), occ)
			if err != nil {
				return nil, fmt.Errorf("composite: member %d: %w", i, err)
			}
			frags[i].flow = f
		case mem.Reduce != nil:
			frags[i].red = mem.Reduce.NewFragment(ctx, m, label, occ)
		case mem.Prefix != nil:
			frags[i].pre = mem.Prefix.NewFragment(ctx, m, label, occ)
		}
	}
	occ.AddConstraints(m)
	for i := range pr.Members {
		label := memberLabel(i)
		switch {
		case frags[i].red != nil:
			frags[i].red.AddComputeVars(m, label, comp)
		case frags[i].pre != nil:
			frags[i].pre.AddComputeVars(m, label, comp)
		}
	}
	comp.AddConstraints(m)
	for i, mem := range pr.Members {
		label := memberLabel(i)
		switch {
		case frags[i].flow != nil:
			frags[i].flow.AddFlowConstraints(m, label, tp, mem.Weight)
		case frags[i].bcast != nil:
			frags[i].bcast.AddFlowConstraints(m, label, tp, mem.Weight)
		case frags[i].red != nil:
			frags[i].red.AddFlowConstraints(m, label, tp, mem.Weight)
		case frags[i].pre != nil:
			frags[i].pre.AddFlowConstraints(m, label, tp, mem.Weight)
		}
	}

	sol, err := m.SolveCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("composite: shared LP: %w", err)
	}
	if err := m.Verify(sol.Values()); err != nil {
		return nil, fmt.Errorf("composite: LP solution failed verification: %w", err)
	}

	out := &Solution{
		Problem: pr,
		TP:      rat.Copy(sol.Objective),
		Stats:   core.StatsOf(m, sol),
	}
	_, exSpan := obs.StartSpan(ctx, "extract")
	exSpan.SetAttr("kind", "composite")
	exSpan.SetAttr("members", len(pr.Members))
	defer exSpan.End()
	for i, mem := range pr.Members {
		memTP := rat.Mul(mem.Weight, sol.Objective)
		ms := &MemberSolution{Weight: rat.Copy(mem.Weight), Throughput: rat.Copy(memTP)}
		switch {
		case mem.Scatter != nil:
			ms.Scatter = &scatter.Solution{
				Problem: mem.Scatter,
				Flow:    frags[i].flow.Extract(sol, memTP),
				Stats:   out.Stats,
			}
		case mem.Broadcast != nil:
			ms.Broadcast = frags[i].bcast.Extract(sol, memTP, out.Stats)
		case mem.Gossip != nil:
			ms.Gossip = &gossip.Solution{
				Problem: mem.Gossip,
				Flow:    frags[i].flow.Extract(sol, memTP),
				Stats:   out.Stats,
			}
		case mem.Reduce != nil:
			ms.Reduce = frags[i].red.Extract(sol, memTP, out.Stats)
		case mem.Prefix != nil:
			ms.Prefix = frags[i].pre.Extract(sol, memTP, out.Stats)
		}
		out.Members = append(out.Members, ms)
	}
	return out, nil
}

// Throughput returns the common base throughput TP; member i delivers
// Weight_i · TP operations per time unit.
func (s *Solution) Throughput() rat.Rat { return rat.Copy(s.TP) }

// MemberThroughputs returns the per-member delivered rates Weight_i · TP.
func (s *Solution) MemberThroughputs() []rat.Rat {
	out := make([]rat.Rat, len(s.Members))
	for i, ms := range s.Members {
		out[i] = rat.Copy(ms.Throughput)
	}
	return out
}

// Period returns the merged schedule period: the LCM of the member
// periods.
func (s *Solution) Period() *big.Int {
	rates := []rat.Rat{rat.Copy(s.TP)}
	for _, ms := range s.Members {
		rates = append(rates, ms.AllRates()...)
	}
	return rat.DenominatorLCM(rates...)
}

// Verify re-checks the solution independently of the LP solver: every
// member's own constraints (conservation, delivery at Weight·TP), then the
// shared capacity rows — per-edge occupation, per-node one-port send and
// receive totals, and per-node compute totals, each summed over all
// members — that make the superposition feasible.
func (s *Solution) Verify() error {
	p := s.Problem.Platform
	edgeTot := make(map[core.EdgeKey]rat.Rat)
	outTot := make(map[graph.NodeID]rat.Rat)
	inTot := make(map[graph.NodeID]rat.Rat)
	compTot := make(map[graph.NodeID]rat.Rat)

	for i, ms := range s.Members {
		if err := ms.Verify(); err != nil {
			return fmt.Errorf("composite: member %d: %w", i, err)
		}
		mf := ms.flows(p, "")
		for _, tr := range mf.Transfers {
			occ := rat.Mul(rat.Mul(tr.Rate, tr.Size), p.Cost(tr.From, tr.To))
			k := core.EdgeKey{From: tr.From, To: tr.To}
			if edgeTot[k] == nil {
				edgeTot[k] = rat.Zero()
			}
			edgeTot[k].Add(edgeTot[k], occ)
			if outTot[tr.From] == nil {
				outTot[tr.From] = rat.Zero()
			}
			if inTot[tr.To] == nil {
				inTot[tr.To] = rat.Zero()
			}
			outTot[tr.From].Add(outTot[tr.From], occ)
			inTot[tr.To].Add(inTot[tr.To], occ)
		}
		for id, busy := range mf.ComputeTime {
			if compTot[id] == nil {
				compTot[id] = rat.Zero()
			}
			compTot[id].Add(compTot[id], busy)
		}
	}
	for k, occ := range edgeTot {
		if occ.Cmp(rat.One()) > 0 {
			return fmt.Errorf("composite: shared edge %s→%s occupation %s > 1",
				p.Node(k.From).Name, p.Node(k.To).Name, occ.RatString())
		}
	}
	for id, occ := range outTot {
		if occ.Cmp(rat.One()) > 0 {
			return fmt.Errorf("composite: node %s sends for %s > 1 across members",
				p.Node(id).Name, occ.RatString())
		}
	}
	for id, occ := range inTot {
		if occ.Cmp(rat.One()) > 0 {
			return fmt.Errorf("composite: node %s receives for %s > 1 across members",
				p.Node(id).Name, occ.RatString())
		}
	}
	for id, busy := range compTot {
		if busy.Cmp(rat.One()) > 0 {
			return fmt.Errorf("composite: node %s computes for %s > 1 across members",
				p.Node(id).Name, busy.RatString())
		}
	}
	return nil
}

// Schedule builds the merged periodic schedule: the union of every
// member's transfers over the LCM period, decomposed into one-port-safe
// matching slots; member i's transfers are labeled "op<i>:…".
func (s *Solution) Schedule() (*schedule.Schedule, error) {
	period := s.Period()
	members := make([]schedule.MemberFlow, len(s.Members))
	for i, ms := range s.Members {
		members[i] = ms.flows(s.Problem.Platform, memberLabel(i))
	}
	return schedule.MergeFlows(s.Problem.Platform, period, members)
}

// String renders the composite in the spirit of the paper's figures: the
// common throughput, then each member's summary.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "composite throughput TP = %s (period %s, %d members)\n",
		s.TP.RatString(), s.Period().String(), len(s.Members))
	for i, ms := range s.Members {
		fmt.Fprintf(&b, "member %d (%s, weight %s): TP = %s\n",
			i, ms.Kind(), ms.Weight.RatString(), ms.Throughput.RatString())
	}
	return b.String()
}
