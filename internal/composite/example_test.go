package composite

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/scatter"
)

// ExampleProblem superposes two opposite scatters on a symmetric pair:
// each member rides its own link direction, so the shared one-port rows
// leave both at full rate.
func ExampleProblem() {
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddLink(a, b, rat.One())

	ab, err := scatter.NewProblem(p, a, []graph.NodeID{b})
	if err != nil {
		panic(err)
	}
	ba, err := scatter.NewProblem(p, b, []graph.NodeID{a})
	if err != nil {
		panic(err)
	}
	pr, err := NewProblem(p, []Member{
		ScatterMember(ab, rat.One()),
		ScatterMember(ba, rat.One()),
	})
	if err != nil {
		panic(err)
	}
	sol, err := pr.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("common TP = %s over %d members\n", sol.Throughput().RatString(), len(sol.Members))
	// Output: common TP = 1 over 2 members
}
