package composite

import (
	"testing"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/prefix"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/scatter"
	"repro/internal/topology"
)

// twoNode returns a symmetric two-node platform: both directions cost c,
// both nodes speed s.
func twoNode(t *testing.T, c, s rat.Rat) (*graph.Platform, graph.NodeID, graph.NodeID) {
	t.Helper()
	p := graph.New()
	a := p.AddNode("a", s)
	b := p.AddNode("b", s)
	p.AddLink(a, b, c)
	return p, a, b
}

func TestSingleReduceMemberMatchesPlainSolve(t *testing.T) {
	p, order, target := topology.PaperFig6()
	plain, err := reduce.NewProblem(p, order, target)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Solve()
	if err != nil {
		t.Fatal(err)
	}

	memberPr, err := reduce.NewProblem(p, order, target)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewProblem(p, []Member{ReduceMember(memberPr, rat.One())})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !rat.Eq(got.TP, want.Throughput()) {
		t.Errorf("TP = %s, want %s", got.TP.RatString(), want.Throughput().RatString())
	}
	if got.Period().Cmp(want.Period()) != 0 {
		t.Errorf("period = %s, want %s", got.Period().String(), want.Period().String())
	}
	if err := got.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestTwoConcurrentReducesShareCapacity(t *testing.T) {
	// Reduce-scatter over two symmetric nodes: member 0 reduces to a,
	// member 1 to b. The optimal supports use opposite link directions and
	// distinct compute nodes, so the common rate equals the standalone
	// reduce throughput.
	p, a, b := twoNode(t, rat.One(), rat.One())
	order := []graph.NodeID{a, b}

	plainPr, err := reduce.NewProblem(p, order, a)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainPr.Solve()
	if err != nil {
		t.Fatal(err)
	}

	var members []Member
	for _, target := range order {
		pr, err := reduce.NewProblem(p, order, target)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, ReduceMember(pr, rat.One()))
	}
	cp, err := NewProblem(p, members)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := cp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !rat.Eq(sol.TP, plain.Throughput()) {
		t.Errorf("concurrent TP = %s, want standalone %s", sol.TP.RatString(), plain.Throughput().RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	sched, err := sol.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("merged schedule invalid: %v", err)
	}
}

func TestMixedMembersVerifyAndSchedule(t *testing.T) {
	// A scatter and a gossip superposed on the Fig-6 triangle, plus a
	// reduce and a prefix — all competing for the same ports.
	p, order, target := topology.PaperFig6()

	sc, err := scatter.NewProblem(p, order[0], order[1:])
	if err != nil {
		t.Fatal(err)
	}
	go1, err := gossip.NewProblem(p, order[:2], order[1:])
	if err != nil {
		t.Fatal(err)
	}
	red, err := reduce.NewProblem(p, order, target)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := prefix.NewProblem(p, order)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewProblem(p, []Member{
		ScatterMember(sc, rat.One()),
		GossipMember(go1, rat.One()),
		ReduceMember(red, rat.Int(2)),
		PrefixMember(pre, rat.One()),
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := cp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.TP.Sign() <= 0 {
		t.Fatal("expected positive common throughput")
	}
	// The weighted member must run at exactly twice the base rate.
	if !rat.Eq(sol.Members[2].Throughput, rat.Mul(rat.Int(2), sol.TP)) {
		t.Errorf("weighted member TP = %s, want 2·%s",
			sol.Members[2].Throughput.RatString(), sol.TP.RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	sched, err := sol.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("merged schedule invalid: %v", err)
	}
}

func TestNewProblemRejectsBadMembers(t *testing.T) {
	p, order, target := topology.PaperFig6()
	red, err := reduce.NewProblem(p, order, target)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProblem(p, nil); err == nil {
		t.Error("empty member list should fail")
	}
	if _, err := NewProblem(p, []Member{{Weight: rat.One()}}); err == nil {
		t.Error("member with no problem should fail")
	}
	if _, err := NewProblem(p, []Member{ReduceMember(red, rat.Zero())}); err == nil {
		t.Error("zero weight should fail")
	}
	if _, err := NewProblem(p, []Member{{Weight: rat.One(), Reduce: red, Prefix: &prefix.Problem{}}}); err == nil {
		t.Error("member with two problems should fail")
	}
	other, _, _ := topology.PaperFig6()
	otherRed, err := reduce.NewProblem(other, []graph.NodeID{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProblem(p, []Member{ReduceMember(otherRed, rat.One())}); err == nil {
		t.Error("member on a different platform should fail")
	}
}
