// Package sweep is the sharded scenario-sweep engine of the steady-state
// framework: it takes a batch of Scenario files (cmd/topogen -count can
// generate one from a single seed), fans them out over a bounded worker
// pool, and aggregates the outcomes into a deterministic
// steadystate.SweepReport plus an optional streaming JSONL result log.
//
// The engine is built for fleets of scenarios rather than single solves:
//
//   - Platforms are deduplicated by content hash, so scenarios that share
//     a topology share one concurrency-safe Solver session (and with it
//     the memoized reachability index behind validation and LP pruning).
//   - Every solve runs under a per-solve context deadline; one malformed
//     file or one timed-out solve lands in the report's failure list
//     instead of aborting the run.
//   - Shard i of n (deterministic round-robin over the name-sorted job
//     list) lets independent processes split one batch; their reports
//     union to the full result set.
//   - Cancellation of the run context stops the workers between solves
//     and inside the simplex loop; results completed before the cancel
//     are already flushed to the JSONL log and appear in the partial
//     report Run returns alongside the context error.
//
// Everything in the report except its Timing block is deterministic:
// -jobs 1 and -jobs 8 runs of the same batch produce identical
// aggregates. The report groups per-kind statistics (exact
// min/mean/max throughput, summed LP cost counters) for every
// collective kind in the batch — scatter through allreduce and
// broadcast — so mixed-kind corpora split cleanly in trend analysis.
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	steadystate "repro"
)

// Job is one scenario of a sweep. Either Scenario is set, or Err records
// why loading it failed (the sweep reports it as a failure and moves on).
type Job struct {
	// Name identifies the job in results, failures and the JSONL log;
	// loaders use the file base name. Names should be unique within a
	// sweep — results sort by them.
	Name string
	// Path is the source file, when the job came from one (diagnostic
	// only).
	Path string
	// Scenario is the parsed platform + spec to solve.
	Scenario *steadystate.Scenario
	// Err marks a job that failed to load; it is reported as a failure
	// without being solved.
	Err error
	// Opts are extra solve options for this scenario (message sizes,
	// block sizes, ...).
	Opts []steadystate.SolveOption
}

// LoadFile loads one scenario file into a Job. Load errors are recorded
// on the job, not returned: a sweep treats an unreadable or malformed
// file as one more failed scenario.
func LoadFile(path string) Job {
	job := Job{Name: filepath.Base(path), Path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		// Strip the os error's embedded path down to its cause: failure
		// lists must not depend on where the sweep was launched from.
		cause := err.Error()
		var pe *fs.PathError
		if errors.As(err, &pe) {
			cause = pe.Err.Error()
		}
		job.Err = fmt.Errorf("read %s: %s", job.Name, cause)
		return job
	}
	// Error messages reference the base name, not the path, for the same
	// launch-directory independence.
	sc := &steadystate.Scenario{}
	if err := json.Unmarshal(data, sc); err != nil {
		job.Err = fmt.Errorf("parse %s: %w", job.Name, err)
		return job
	}
	if sc.Spec.Kind == "" {
		job.Err = fmt.Errorf("parse %s: scenario has no spec (generate with topogen -spec)", job.Name)
		return job
	}
	job.Scenario = sc
	return job
}

// LoadFiles loads each path into a Job, in order.
func LoadFiles(paths []string) []Job {
	jobs := make([]Job, 0, len(paths))
	for _, p := range paths {
		jobs = append(jobs, LoadFile(p))
	}
	return jobs
}

// LoadDir loads every file of dir whose base name matches the glob
// pattern (default "*.json"). The error is non-nil only when the
// directory itself cannot be listed or the pattern is malformed —
// individual files that fail to parse come back as failed Jobs.
func LoadDir(dir, glob string) ([]Job, error) {
	if glob == "" {
		glob = "*.json"
	}
	if _, err := filepath.Match(glob, ""); err != nil {
		return nil, fmt.Errorf("sweep: bad glob %q: %w", glob, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if ok, _ := filepath.Match(glob, e.Name()); ok {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return LoadFiles(paths), nil
}

// Options configures a sweep run.
type Options struct {
	// Jobs bounds the number of concurrent solves; ≤ 0 means
	// runtime.GOMAXPROCS(0).
	Jobs int
	// SolveTimeout bounds each individual solve; 0 means no per-solve
	// deadline (the run context still applies).
	SolveTimeout time.Duration
	// ShardIndex/ShardCount select shard i of n: the name-sorted job list
	// is dealt round-robin, job j going to shard j mod n. ShardCount ≤ 1
	// disables sharding.
	ShardIndex, ShardCount int
	// JSONL, when non-nil, receives one JSON line per completed scenario
	// (in completion order — the deterministic view is the report). Each
	// line is written with a single Write call.
	JSONL io.Writer
	// Trace, when non-nil, enables WithTrace on every solve and receives
	// one TraceRecord JSON line per solved scenario (in completion order).
	// The trace is stripped from the report before aggregation, so the
	// sweep report and the JSONL stream stay byte-identical whether or not
	// tracing is on.
	Trace io.Writer
	// Warm enables warm-started chain sweeps: the name-sorted jobs are
	// grouped into perturbation chains by name stem (topogen -perturb
	// emits <base>-pNN.json files; the -pNN suffix is stripped), each
	// chain is solved sequentially through one private basis cache so
	// every solve after the chain head can warm-start from its
	// predecessor's certified basis, and distinct chains run in parallel
	// across the worker pool — the parallel schedule never changes which
	// basis a solve sees, so reports stay deterministic under -jobs.
	// Throughputs and periods are bit-identical to a cold sweep; only the
	// pivot counters and the warm_start telemetry fields differ. Sharding
	// deals jobs round-robin and so splits chains across shards — shard a
	// warm sweep only if partial warmth per shard is acceptable.
	Warm bool
}

// Record is one line of the JSONL stream: the scenario name plus either
// its full solution report or the error that failed it. SolveMS and
// LPNonZeros are always at the top level — duplicating the solved report's
// fields — so stream consumers read flat fields for offline solve-time and
// density analysis without digging into the nested report (and shard logs
// stay self-contained even when the report is absent).
type Record struct {
	Name       string              `json:"name"`
	SolveMS    float64             `json:"solve_ms,omitempty"`
	LPNonZeros int                 `json:"lp_nonzeros,omitempty"`
	Report     *steadystate.Report `json:"report,omitempty"`
	Error      string              `json:"error,omitempty"`
}

// TraceRecord is one line of the trace JSONL stream: the scenario name
// and kind plus the span-structured solve trace. Trace structure and
// attributes are deterministic; only the spans' timing blocks vary
// across runs.
type TraceRecord struct {
	Name  string             `json:"name"`
	Kind  steadystate.Kind   `json:"kind"`
	Trace *steadystate.Trace `json:"trace"`
}

// runState is the shared accumulator of one Run: the mutex serializes
// both the JSONL stream and the result/failure slices.
type runState struct {
	mu        sync.Mutex
	opts      *Options
	results   []*steadystate.SweepResult
	failures  []*steadystate.SweepFailure
	durations []float64 // solve ms, solved scenarios only
}

// record logs one completed scenario: a JSONL line (if streaming) plus
// the aggregate entry.
func (st *runState) record(name string, rep *steadystate.Report, solveMS float64, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec := Record{Name: name, SolveMS: solveMS, Report: rep}
	if rep != nil {
		rec.LPNonZeros = rep.LPNonZeros
	}
	if err != nil {
		rec.Error = err.Error()
		st.failures = append(st.failures, &steadystate.SweepFailure{Name: name, Error: err.Error()})
	} else {
		st.results = append(st.results, steadystate.SweepResultOf(name, rep))
		st.durations = append(st.durations, solveMS)
	}
	if st.opts.JSONL != nil {
		// Encoding a Record cannot fail (no custom marshalers on the
		// error path; Report marshaling is exercised by every cmd), and a
		// failed Write must not fail the sweep — the report is the
		// authoritative output.
		if line, err := json.Marshal(rec); err == nil {
			st.opts.JSONL.Write(append(line, '\n'))
		}
	}
}

// recordTrace streams one solved scenario's trace as a TraceRecord JSONL
// line, serialized under the same mutex as the result stream. Traces are
// recorded on their own writer — never in the report — so everything
// else stays byte-stable with tracing on.
func (st *runState) recordTrace(name string, kind steadystate.Kind, tr *steadystate.Trace) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if line, err := json.Marshal(TraceRecord{Name: name, Kind: kind, Trace: tr}); err == nil {
		st.opts.Trace.Write(append(line, '\n'))
	}
}

// Shard returns the jobs of shard index among count shards: the input is
// sorted by name and dealt round-robin, so complementary shards partition
// the batch deterministically regardless of load order. count ≤ 1
// returns the full sorted batch.
func Shard(jobs []Job, index, count int) ([]Job, error) {
	if count <= 1 {
		// Unsharded runs (count 0 or 1) only accept index 0 — a nonzero
		// index with a forgotten count is a misconfigured shard worker
		// that would otherwise re-solve the whole batch.
		if index != 0 {
			return nil, fmt.Errorf("sweep: shard index %d out of range for %d shard(s)", index, count)
		}
		sorted := append([]Job(nil), jobs...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		return sorted, nil
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("sweep: shard index %d out of range for %d shard(s)", index, count)
	}
	sorted := append([]Job(nil), jobs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var out []Job
	for i, job := range sorted {
		if i%count == index {
			out = append(out, job)
		}
	}
	return out, nil
}

// sessions builds one Solver per distinct platform topology: platforms
// are deduplicated by Platform.ContentHash, and jobs whose platforms hash
// equally share the session (node IDs are insertion-ordered and stable
// across the JSON round trip, so a spec from one copy is valid against
// another byte-identical copy). Returns the per-job session list and the
// number of distinct platforms.
func sessions(jobs []Job) ([]*steadystate.Solver, int) {
	solvers := make([]*steadystate.Solver, len(jobs))
	byHash := make(map[[sha256.Size]byte]*steadystate.Solver)
	for i, job := range jobs {
		if job.Scenario == nil {
			continue
		}
		h, err := job.Scenario.Platform.ContentHash()
		if err != nil {
			// Unhashable platform: fall back to a private session rather
			// than failing a solvable scenario.
			solvers[i] = steadystate.NewSolver(job.Scenario.Platform)
			continue
		}
		if s, ok := byHash[h]; ok {
			solvers[i] = s
			continue
		}
		s := steadystate.NewSolver(job.Scenario.Platform)
		byHash[h] = s
		solvers[i] = s
	}
	return solvers, len(byHash)
}

// ChainKey returns the perturbation-chain key of a scenario name: the
// name stem with any trailing -pNN perturbation suffix (as emitted by
// topogen -perturb) stripped, so a base scenario and its perturbed
// variants share a key. Warm sweeps group jobs by it; cmd/sscollect -op
// warm groups result records the same way.
func ChainKey(name string) string {
	stem := strings.TrimSuffix(name, filepath.Ext(name))
	if i := strings.LastIndex(stem, "-p"); i >= 0 && i+2 < len(stem) {
		allDigits := true
		for _, r := range stem[i+2:] {
			if r < '0' || r > '9' {
				allDigits = false
				break
			}
		}
		if allDigits {
			return stem[:i]
		}
	}
	return stem
}

// chainsOf groups the name-sorted jobs into perturbation chains: jobs
// sharing a chain key form one chain, in job order. Chains are ordered by
// first appearance, so the grouping is deterministic over the sorted job
// list (topogen names the unperturbed base -p00, sorting it to the head
// of its chain).
func chainsOf(jobs []Job) [][]int {
	var chains [][]int
	index := make(map[string]int)
	for i, job := range jobs {
		key := ChainKey(job.Name)
		ci, ok := index[key]
		if !ok {
			ci = len(chains)
			index[key] = ci
			chains = append(chains, nil)
		}
		chains[ci] = append(chains[ci], i)
	}
	return chains
}

// Run sweeps the jobs: shard selection, platform-deduplicated solver
// sessions, bounded-parallel solving, JSONL streaming, and deterministic
// aggregation. It returns the aggregated report together with ctx.Err()
// if the run was cut short — the report then covers the scenarios that
// completed before the cancellation.
func Run(ctx context.Context, jobs []Job, opts Options) (*steadystate.SweepReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	selected, err := Shard(jobs, opts.ShardIndex, opts.ShardCount)
	if err != nil {
		return nil, err
	}

	solvers, platforms := sessions(selected)
	st := &runState{opts: &opts}

	// runJob solves selected[i] on the given session and records the
	// outcome; it returns false when the whole run was canceled mid-solve
	// (the scenario then appears in neither results nor failures).
	runJob := func(i int, solver *steadystate.Solver) bool {
		job := selected[i]
		if job.Err != nil {
			st.record(job.Name, nil, 0, job.Err)
			return true
		}
		solveCtx, cancel := ctx, context.CancelFunc(func() {})
		if opts.SolveTimeout > 0 {
			solveCtx, cancel = context.WithTimeout(ctx, opts.SolveTimeout)
		}
		solveStart := time.Now()
		rep, err := solveOne(solveCtx, solver, job, opts.Trace != nil)
		cancel()
		if err != nil && ctx.Err() != nil {
			// The whole run was canceled mid-solve: this scenario was not
			// attempted to completion, so it is neither a result nor a
			// failure of the partial report.
			return false
		}
		if err != nil {
			st.record(job.Name, nil, msSince(solveStart), err)
			return true
		}
		if rep.Trace != nil {
			st.recordTrace(job.Name, rep.Kind, rep.Trace)
			rep.Trace = nil
		}
		st.record(job.Name, rep, rep.SolveMS, nil)
		return true
	}

	// The work queue is index-based and pre-filled: job indices in a cold
	// sweep, chain indices in a warm one (a chain is a unit of sequential
	// work — warmth flows along it, so it must not be split across
	// workers). Workers drain the queue until empty or the run context
	// dies.
	var chains [][]int
	units := len(selected)
	if opts.Warm {
		chains = chainsOf(selected)
		units = len(chains)
	}
	workers := opts.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > units {
		workers = units
	}
	queue := make(chan int)
	go func() {
		defer close(queue)
		for i := 0; i < units; i++ {
			select {
			case queue <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range queue {
				if !opts.Warm {
					if !runJob(u, solvers[u]) {
						return
					}
					continue
				}
				// A warm chain: each job gets a private session on its own
				// (possibly perturbed) platform, but the chain shares one
				// basis cache, so every solve after the head is offered its
				// predecessor's certified basis. The cache is chain-local —
				// the parallel schedule never changes which basis a solve
				// sees.
				cache := steadystate.NewBasisCache(len(chains[u]) + 1)
				for _, i := range chains[u] {
					solver := solvers[i]
					if sc := selected[i].Scenario; sc != nil {
						solver = steadystate.NewSolver(sc.Platform).UseBasisCache(cache)
					}
					if !runJob(i, solver) {
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	report := &steadystate.SweepReport{
		Platforms: platforms,
		Results:   st.results,
		Failures:  st.failures,
	}
	if opts.ShardCount > 1 {
		report.Shard = fmt.Sprintf("%d/%d", opts.ShardIndex, opts.ShardCount)
	}
	if _, err := report.Aggregate(); err != nil {
		return nil, err
	}
	report.Timing = timing(st.durations, msSince(start))
	return report, ctx.Err()
}

// solveOne solves one job on its session and returns the solution report.
// With tracing on, WithTrace is appended to a capacity-clipped copy of
// the job's options so the shared Job slice is never mutated.
func solveOne(ctx context.Context, solver *steadystate.Solver, job Job, trace bool) (*steadystate.Report, error) {
	opts := job.Opts
	if trace {
		opts = append(opts[:len(opts):len(opts)], steadystate.WithTrace())
	}
	sol, err := solver.Solve(ctx, job.Scenario.Spec, opts...)
	if err != nil {
		return nil, err
	}
	return sol.Report()
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// timing computes the report's wall-clock block: total and nearest-rank
// percentiles over the solved scenarios' durations.
func timing(durations []float64, wallMS float64) *steadystate.SweepTiming {
	t := &steadystate.SweepTiming{WallMS: wallMS}
	if len(durations) == 0 {
		return t
	}
	sorted := append([]float64(nil), durations...)
	sort.Float64s(sorted)
	for _, d := range sorted {
		t.TotalSolveMS += d
	}
	rank := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	t.SolveP50MS = rank(0.50)
	t.SolveP90MS = rank(0.90)
	t.SolveP99MS = rank(0.99)
	t.SolveMaxMS = sorted[len(sorted)-1]
	return t
}
