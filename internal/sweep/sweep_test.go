package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	steadystate "repro"
)

const fixtureDir = "../../testdata/sweep"

// loadFixtureJobs loads the shared sweep fixtures: fig6 (reduce,
// reduce-scatter and allreduce), fig9 (reduce), tiers-42 (scatter,
// prefix and broadcast) and one deliberately malformed file.
func loadFixtureJobs(t *testing.T) []Job {
	t.Helper()
	jobs, err := LoadDir(fixtureDir, "*.json")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(jobs) < 7 {
		t.Fatalf("fixture dir has %d jobs, want at least 7", len(jobs))
	}
	return jobs
}

// normalize strips the wall-clock block and renders the deterministic
// body of a report as indented JSON for comparison.
func normalize(t *testing.T, r *steadystate.SweepReport) string {
	t.Helper()
	clone := *r
	clone.Timing = nil
	data, err := json.MarshalIndent(&clone, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return string(data)
}

// TestSweepGolden pins the aggregated report over the testdata scenarios:
// ordering, exact throughputs, LP counters, platform dedup count and the
// failure entry for the malformed file must all stay stable.
func TestSweepGolden(t *testing.T) {
	report, err := Run(context.Background(), loadFixtureJobs(t), Options{Jobs: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := normalize(t, report)

	raw, err := os.ReadFile("../../testdata/sweep-golden.json")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	// Re-marshal the golden through the same struct so formatting details
	// of the checked-in file don't matter, only its content.
	var golden steadystate.SweepReport
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	want := normalize(t, &golden)
	if got != want {
		t.Errorf("sweep report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if report.Timing == nil || report.Timing.WallMS <= 0 {
		t.Error("report should carry a timing block with positive wall time")
	}
	if report.Timing.SolveMaxMS < report.Timing.SolveP50MS {
		t.Errorf("timing percentiles inconsistent: max %v < p50 %v",
			report.Timing.SolveMaxMS, report.Timing.SolveP50MS)
	}
	if report.Platforms != 3 {
		t.Errorf("platforms = %d, want 3 (fig6, fig9, tiers42 each shared)", report.Platforms)
	}
}

// TestSweepJobsInvariance: the aggregate must not depend on worker count.
func TestSweepJobsInvariance(t *testing.T) {
	jobs := loadFixtureJobs(t)
	seq, err := Run(context.Background(), jobs, Options{Jobs: 1})
	if err != nil {
		t.Fatalf("Run jobs=1: %v", err)
	}
	par, err := Run(context.Background(), jobs, Options{Jobs: 8})
	if err != nil {
		t.Fatalf("Run jobs=8: %v", err)
	}
	if a, b := normalize(t, seq), normalize(t, par); a != b {
		t.Errorf("-jobs 1 and -jobs 8 aggregates differ:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", a, b)
	}
}

// TestSweepShardUnion: complementary shards partition the batch and their
// reports union to the full result set.
func TestSweepShardUnion(t *testing.T) {
	jobs := loadFixtureJobs(t)
	full, err := Run(context.Background(), jobs, Options{Jobs: 4})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	union := &steadystate.SweepReport{}
	for i := 0; i < 2; i++ {
		part, err := Run(context.Background(), jobs, Options{Jobs: 4, ShardIndex: i, ShardCount: 2})
		if err != nil {
			t.Fatalf("shard %d/2: %v", i, err)
		}
		if want := "0/2"; i == 0 && part.Shard != want {
			t.Errorf("shard label = %q, want %q", part.Shard, want)
		}
		if part.Scenarios == 0 {
			t.Errorf("shard %d/2 is empty; expected the batch to split", i)
		}
		union.Results = append(union.Results, part.Results...)
		union.Failures = append(union.Failures, part.Failures...)
	}
	if _, err := union.Aggregate(); err != nil {
		t.Fatalf("aggregate union: %v", err)
	}
	// Platforms counts distinct topologies per process — two shards that
	// split a platform's scenarios both count it, so the counter is
	// per-run, not unionable. Everything else must union exactly.
	union.Platforms = full.Platforms
	if got, want := normalize(t, union), normalize(t, full); got != want {
		t.Errorf("shard union differs from full run:\n--- union ---\n%s\n--- full ---\n%s", got, want)
	}
}

// TestSweepShardErrors: out-of-range shard selections fail loudly.
func TestSweepShardErrors(t *testing.T) {
	jobs := []Job{{Name: "x"}}
	// {3, 0}: a nonzero index with a forgotten ShardCount must not
	// silently sweep the full batch.
	for _, bad := range [][2]int{{2, 2}, {-1, 2}, {1, 1}, {3, 0}} {
		if _, err := Shard(jobs, bad[0], bad[1]); err == nil {
			t.Errorf("Shard(index=%d, count=%d) should fail", bad[0], bad[1])
		}
	}
}

// cancelAfterFirstWrite is a JSONL sink that cancels the sweep context as
// soon as the first line lands.
type cancelAfterFirstWrite struct {
	mu     sync.Mutex
	cancel context.CancelFunc
	buf    bytes.Buffer
	lines  int
}

func (c *cancelAfterFirstWrite) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lines++
	c.buf.Write(p)
	c.cancel()
	return len(p), nil
}

// TestSweepCancellation: canceling mid-sweep stops the workers, returns
// the context error, and still flushes the completed scenarios' JSONL
// lines plus a partial aggregate.
func TestSweepCancellation(t *testing.T) {
	// A batch big enough that it cannot finish before the cancel: only
	// the in-flight solves (≤ Jobs) may complete after the first record.
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(42))
	parts := p.Participants()
	var jobs []Job
	for i := 0; i < 12; i++ {
		src := parts[i%len(parts)]
		var targets []steadystate.NodeID
		for d := 1; d <= 3; d++ {
			targets = append(targets, parts[(i+d)%len(parts)])
		}
		jobs = append(jobs, Job{
			Name:     filepath.Join("mem", string(rune('a'+i))+".json"),
			Scenario: &steadystate.Scenario{Platform: p, Spec: steadystate.ScatterSpec(src, targets...)},
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelAfterFirstWrite{cancel: cancel}
	report, err := Run(ctx, jobs, Options{Jobs: 2, JSONL: sink})
	if err == nil {
		t.Fatal("Run should return the context error after a mid-sweep cancel")
	}
	if report == nil {
		t.Fatal("Run should return the partial report alongside the context error")
	}
	if report.Scenarios == 0 {
		t.Error("partial report should contain the scenarios completed before the cancel")
	}
	if report.Scenarios >= len(jobs) {
		t.Errorf("report covers %d of %d scenarios; cancel should have cut the sweep short",
			report.Scenarios, len(jobs))
	}
	if sink.lines != report.Scenarios {
		t.Errorf("JSONL has %d lines for %d reported scenarios", sink.lines, report.Scenarios)
	}
	// Every flushed line must be a complete, parseable record.
	for _, line := range strings.Split(strings.TrimSpace(sink.buf.String()), "\n") {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("partial JSONL line does not parse: %v (%q)", err, line)
		}
	}
}

// TestSweepPlatformDedupMatchesColdSolves: scenarios sharing a topology
// share one solver session, and the shared sessions return bit-identical
// results to cold per-scenario solves.
func TestSweepPlatformDedupMatchesColdSolves(t *testing.T) {
	jobs := loadFixtureJobs(t)
	report, err := Run(context.Background(), jobs, Options{Jobs: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, res := range report.Results {
		var job *Job
		for i := range jobs {
			if jobs[i].Name == res.Name {
				job = &jobs[i]
				break
			}
		}
		if job == nil || job.Scenario == nil {
			t.Fatalf("result %s has no loadable job", res.Name)
		}
		sol, err := job.Scenario.Solve(context.Background())
		if err != nil {
			t.Fatalf("cold solve %s: %v", res.Name, err)
		}
		if got := sol.Throughput().RatString(); got != res.Throughput {
			t.Errorf("%s: sweep TP %s != cold TP %s", res.Name, res.Throughput, got)
		}
	}
}

// TestSweepSolveTimeout: an impossible per-solve deadline turns every
// solvable scenario into a failure, never an aborted run.
func TestSweepSolveTimeout(t *testing.T) {
	jobs := loadFixtureJobs(t)
	report, err := Run(context.Background(), jobs, Options{Jobs: 2, SolveTimeout: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if report.Solved != 0 {
		t.Errorf("%d scenarios solved under a 1ns deadline", report.Solved)
	}
	if report.Failed != report.Scenarios {
		t.Errorf("failed %d of %d; every scenario should fail under the deadline",
			report.Failed, report.Scenarios)
	}
}

// TestLoadDirErrors: only unlistable directories and malformed globs are
// hard errors; malformed files come back as failed jobs.
func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "absent"), "*.json"); err == nil {
		t.Error("LoadDir on a missing directory should fail")
	}
	if _, err := LoadDir(fixtureDir, "[bad"); err == nil {
		t.Error("LoadDir with a malformed glob should fail")
	}
	dir := t.TempDir()
	job := LoadFile(filepath.Join(dir, "absent.json"))
	if job.Err == nil {
		t.Error("LoadFile on a missing file should record an error on the job")
	} else if strings.Contains(job.Err.Error(), dir) {
		// Failure lists must be launch-directory independent, so shard
		// reports union and goldens stay stable wherever the sweep runs.
		t.Errorf("read-error message leaks the directory path: %q", job.Err)
	}
}
