package sweep

import (
	"context"
	"fmt"

	steadystate "repro"
)

// ExampleRun sweeps one in-memory scenario: jobs need not come from
// files — anything carrying a Scenario (platform + spec) can join a
// batch.
func ExampleRun() {
	p := steadystate.NewPlatform()
	a := p.AddNode("a", steadystate.R(1, 1))
	b := p.AddNode("b", steadystate.R(1, 1))
	p.AddLink(a, b, steadystate.R(1, 1))

	jobs := []Job{{
		Name:     "pair-scatter",
		Scenario: &steadystate.Scenario{Platform: p, Spec: steadystate.ScatterSpec(a, b)},
	}}
	report, err := Run(context.Background(), jobs, Options{Jobs: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d solved, %s TP = %s\n",
		report.Solved, report.Results[0].Kind, report.Results[0].Throughput)
	// Output: 1 solved, scatter TP = 1
}
