package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/rat"
)

// Commodity is one message stream of a forwarding collective: unit-size
// messages emitted by Src and destined to Dst. A scatter is the commodity
// set {(source, t) : t ∈ targets}; a gossip (personalized all-to-all) is
// {(s, t) : s ∈ S, t ∈ T, s ≠ t}.
type Commodity struct {
	Src, Dst graph.NodeID
}

// FlowStats reports the size, sparsity and solve cost of the solved
// linear program.
type FlowStats struct {
	Vars        int
	Constraints int
	// NonZeros counts the constraint matrix's nonzero coefficients and
	// Density is NonZeros over the Vars×Constraints area — the quantities
	// the sparse tableau exploits (per-pivot cost scales with row nonzeros,
	// not columns).
	NonZeros int
	Density  float64 //sslint:allow outbound telemetry only: density never enters solver arithmetic
	// Pivots is the total simplex pivot count; Phase1Pivots is the share
	// spent finding a feasible basis. Together they let sweep aggregates
	// track solver cost, not just throughput.
	Pivots       int
	Phase1Pivots int
}

// StatsOf reads the LP size, sparsity and pivot counts of a solved model.
func StatsOf(m *lp.Model, sol *lp.Solution) FlowStats {
	ms := m.Stats()
	return FlowStats{
		Vars:         ms.Vars,
		Constraints:  ms.Constraints,
		NonZeros:     ms.NonZeros,
		Density:      ms.Density,
		Pivots:       sol.Iterations,
		Phase1Pivots: sol.Phase1Iterations,
	}
}

// SolveUniformFlow builds and solves the steady-state LP of the paper's
// Section 3 (SSSP(G)) / Section 3.5 (SSPA2A(G)): maximize the common
// throughput TP such that every commodity is delivered to its destination
// at rate TP per time unit, subject to per-edge occupation ≤ 1, the
// one-port constraints and the conservation law at every forwarding node.
//
// Following the paper's conservation reading ("all the packets reaching a
// node which is not their final destination are transferred"), the
// conservation equality is imposed at every node except the commodity's
// source (which mints messages) and destination (which consumes them). Two
// physically useless variable families are pruned — messages flowing into
// their own source and messages leaving their destination — which keeps the
// LP smaller and rules out self-delivery cycles that would otherwise
// inflate TP.
func SolveUniformFlow(p *graph.Platform, commodities []Commodity) (*Flow[Commodity], FlowStats, error) {
	return SolveUniformFlowCtx(context.Background(), p, commodities)
}

// SolveUniformFlowCtx is SolveUniformFlow honoring context cancellation
// inside the simplex loop.
func SolveUniformFlowCtx(ctx context.Context, p *graph.Platform, commodities []Commodity) (*Flow[Commodity], FlowStats, error) {
	m := lp.NewMaximize()
	tp := m.Var("TP")
	m.SetObjective(tp, rat.One())
	occ := NewOccupancy(p)
	frag, err := NewFlowFragment(ctx, m, "", p, commodities, occ)
	if err != nil {
		return nil, FlowStats{}, err
	}
	occ.AddConstraints(m)
	frag.AddFlowConstraints(m, "", tp, rat.One())

	sol, err := m.SolveCtx(ctx)
	if err != nil {
		return nil, FlowStats{}, fmt.Errorf("core: flow LP: %w", err)
	}
	if err := m.Verify(sol.Values()); err != nil {
		return nil, FlowStats{}, fmt.Errorf("core: flow LP solution failed verification: %w", err)
	}

	_, exSpan := obs.StartSpan(ctx, "extract")
	f := frag.Extract(sol, sol.Objective)
	exSpan.SetAttr("kind", "flow")
	exSpan.End()
	return f, StatsOf(m, sol), nil
}

// flowKey identifies a transfer variable of a FlowFragment.
type flowKey struct {
	e EdgeKey
	c Commodity
}

// FlowFragment is one uniform-flow collective's share of a linear program:
// the transfer variables of its commodities, with their one-port occupancy
// registered on a (possibly shared) OccupancyBuilder. A single fragment on
// a private model is the plain scatter/gossip LP; several fragments on one
// model with one shared builder superpose concurrent collectives on the
// same platform capacity.
type FlowFragment struct {
	Platform    *graph.Platform
	Commodities []Commodity
	sends       map[flowKey]lp.Var
}

// NewFlowFragment validates the commodities and declares their transfer
// variables into m, registering each variable's busy time with occ. label
// prefixes variable names so several fragments can share one model. The
// caller emits the port constraints (occ.AddConstraints) once after every
// fragment has been declared, then calls AddFlowConstraints per fragment.
// ctx carries the solve trace, if any: assembly opens an "assemble" span
// with a "reachability" child covering the pruning-index computation.
func NewFlowFragment(ctx context.Context, m *lp.Model, label string, p *graph.Platform, commodities []Commodity, occ *OccupancyBuilder) (*FlowFragment, error) {
	ctx, asmSpan := obs.StartSpan(ctx, "assemble")
	asmSpan.SetAttr("kind", "flow")
	asmSpan.SetAttr("label", label)
	asmSpan.SetAttr("commodities", len(commodities))
	defer asmSpan.End()
	if len(commodities) == 0 {
		return nil, fmt.Errorf("core: no commodities")
	}
	seen := make(map[Commodity]bool)
	for _, c := range commodities {
		if c.Src == c.Dst {
			return nil, fmt.Errorf("core: commodity %s→%s has identical endpoints",
				p.Node(c.Src).Name, p.Node(c.Dst).Name)
		}
		if seen[c] {
			return nil, fmt.Errorf("core: duplicate commodity %s→%s",
				p.Node(c.Src).Name, p.Node(c.Dst).Name)
		}
		seen[c] = true
		if !p.CanReach(c.Src, c.Dst) {
			return nil, fmt.Errorf("core: %s cannot reach %s: throughput is zero",
				p.Node(c.Src).Name, p.Node(c.Dst).Name)
		}
	}

	// Reachability sets for pruning: fromSrc[s] = reachable from s;
	// toDst[d] = nodes that can reach d (reverse reachability, computed by
	// scanning each node once per destination).
	_, reachSpan := obs.StartSpan(ctx, "reachability")
	fromSrc := make(map[graph.NodeID]map[graph.NodeID]bool)
	toDst := make(map[graph.NodeID]map[graph.NodeID]bool)
	for _, c := range commodities {
		if fromSrc[c.Src] == nil {
			set := make(map[graph.NodeID]bool)
			for _, n := range p.ReachableFrom(c.Src) {
				set[n] = true
			}
			fromSrc[c.Src] = set
		}
		if toDst[c.Dst] == nil {
			set := make(map[graph.NodeID]bool)
			for _, n := range p.Nodes() {
				if n.ID == c.Dst || p.CanReach(n.ID, c.Dst) {
					set[n.ID] = true
				}
			}
			toDst[c.Dst] = set
		}
	}
	reachSpan.SetAttr("sources", len(fromSrc))
	reachSpan.SetAttr("destinations", len(toDst))
	reachSpan.End()

	f := &FlowFragment{
		Platform:    p,
		Commodities: append([]Commodity(nil), commodities...),
		sends:       make(map[flowKey]lp.Var),
	}
	allowed := func(e graph.Edge, c Commodity) bool {
		// A useful transfer starts somewhere the commodity can exist and
		// ends somewhere it can still make progress; never into its own
		// source, never out of its destination.
		return e.To != c.Src && e.From != c.Dst &&
			fromSrc[c.Src][e.From] && toDst[c.Dst][e.To]
	}
	for _, e := range p.Edges() {
		for _, c := range commodities {
			if !allowed(e, c) {
				continue
			}
			name := fmt.Sprintf("%ssend(%s->%s,m%s_%s)", label,
				p.Node(e.From).Name, p.Node(e.To).Name,
				p.Node(c.Src).Name, p.Node(c.Dst).Name)
			v := m.Var(name)
			f.sends[flowKey{EdgeKey{e.From, e.To}, c}] = v
			occ.Add(e.From, e.To, v, e.Cost) // unit-size messages
		}
	}
	asmSpan.SetAttr("vars", len(f.sends))
	return f, nil
}

// AddFlowConstraints adds the fragment's conservation constraints at
// forwarding nodes and the delivery of weight·tp at every destination.
// With weight 1 on a private model this is exactly the plain SSSP/SSPA2A
// program; in a shared model, weight scales the member's delivered rate
// relative to the common objective tp.
func (f *FlowFragment) AddFlowConstraints(m *lp.Model, label string, tp lp.Var, weight rat.Rat) {
	p := f.Platform
	for _, c := range f.Commodities {
		for _, n := range p.Nodes() {
			if n.ID == c.Src {
				continue
			}
			in := lp.NewExpr()
			for _, e := range p.InEdges(n.ID) {
				if v, ok := f.sends[flowKey{EdgeKey{e.From, e.To}, c}]; ok {
					in = in.Plus1(v)
				}
			}
			if n.ID == c.Dst {
				in = in.Minus(weight, tp)
				m.AddConstraint(
					fmt.Sprintf("%sdeliver(%s,m%s_%s)", label, n.Name, p.Node(c.Src).Name, p.Node(c.Dst).Name),
					in, lp.Eq, rat.Zero())
				continue
			}
			out := lp.NewExpr()
			for _, e := range p.OutEdges(n.ID) {
				if v, ok := f.sends[flowKey{EdgeKey{e.From, e.To}, c}]; ok {
					out = out.Plus1(v)
				}
			}
			if len(in) == 0 && len(out) == 0 {
				continue
			}
			cons := in
			for _, t := range out {
				cons = cons.Minus(t.Coeff, t.Var)
			}
			m.AddConstraint(
				fmt.Sprintf("%sconserve(%s,m%s_%s)", label, n.Name, p.Node(c.Src).Name, p.Node(c.Dst).Name),
				cons, lp.Eq, rat.Zero())
		}
	}
}

// Extract reads the fragment's solved rates into a typed flow with the
// given throughput, canceling zero-net circulations.
func (f *FlowFragment) Extract(sol *lp.Solution, tp rat.Rat) *Flow[Commodity] {
	out := NewFlow[Commodity](f.Platform)
	out.Throughput = rat.Copy(tp)
	for k, v := range f.sends {
		out.SetSend(k.e.From, k.e.To, k.c, sol.Value(v))
	}
	CancelCycles(out)
	return out
}

// CancelCycles removes pure circulations from each commodity of the flow:
// cycles of positive rate that do not change any node's net balance (the
// simplex can return them at zero objective cost; they would only waste
// schedule bandwidth). The net delivery of every commodity is unchanged.
func CancelCycles[C comparable](f *Flow[C]) {
	// Collect the commodity set.
	comms := make(map[C]bool)
	for _, m := range f.Sends {
		for c := range m {
			comms[c] = true
		}
	}
	for c := range comms {
		for cancelOneCycle(f, c) {
		}
	}
}

// cancelOneCycle finds one cycle in the support of commodity c and cancels
// it; reports whether a cycle was found.
func cancelOneCycle[C comparable](f *Flow[C], c C) bool {
	// Support adjacency.
	adj := make(map[graph.NodeID][]graph.NodeID)
	rate := make(map[EdgeKey]rat.Rat)
	for k, m := range f.Sends {
		if r, ok := m[c]; ok && r.Sign() > 0 {
			adj[k.From] = append(adj[k.From], k.To) //sslint:allow order-insensitive: every adjacency list is sorted just below
			rate[k] = r
		}
	}
	for _, succ := range adj {
		sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[graph.NodeID]int)
	parent := make(map[graph.NodeID]graph.NodeID)
	var cycle []EdgeKey
	var dfs func(n graph.NodeID) bool
	dfs = func(n graph.NodeID) bool {
		color[n] = gray
		for _, t := range adj[n] {
			switch color[t] {
			case white:
				parent[t] = n
				if dfs(t) {
					return true
				}
			case gray:
				// Found a cycle t → … → n → t.
				cycle = []EdgeKey{{n, t}}
				for cur := n; cur != t; cur = parent[cur] {
					cycle = append(cycle, EdgeKey{parent[cur], cur})
				}
				return true
			}
		}
		color[n] = black
		return false
	}
	nodes := make([]graph.NodeID, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		if color[n] == white && dfs(n) {
			break
		}
	}
	if cycle == nil {
		return false
	}
	// Cancel by the minimum rate on the cycle.
	min := rate[cycle[0]]
	for _, e := range cycle[1:] {
		if rate[e].Cmp(min) < 0 {
			min = rate[e]
		}
	}
	min = rat.Copy(min)
	for _, e := range cycle {
		nr := rat.Sub(f.Sends[e][c], min)
		if nr.Sign() == 0 {
			delete(f.Sends[e], c)
			if len(f.Sends[e]) == 0 {
				delete(f.Sends, e)
			}
		} else {
			f.Sends[e][c] = nr
		}
	}
	return true
}
