// Package core implements the shared steady-state framework of the paper
// (Section 2): the one-port operation model, the per-edge occupation
// variables s(Pi→Pj) and their constraints (equations (1)–(3)), the typed
// flow representation shared by the scatter and gossip solvers, and the
// asymptotic-optimality bookkeeping of Section 3.4 (buffer sizes,
// initialization latency, steady period count).
//
// Every collective in this repository follows the same recipe: build a
// linear program whose variables are fractional per-edge message rates
// (plus, for reduce, fractional per-node task rates), add the one-port
// constraints via OccupancyBuilder, maximize the throughput TP, and hand
// the rational solution to the schedule and tree-extraction machinery.
package core

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/rat"
)

// EdgeKey identifies a directed edge of the platform.
type EdgeKey struct {
	From, To graph.NodeID
}

// OccupancyBuilder accumulates, per directed edge, the linear expression
// for the edge's busy fraction
//
//	s(Pi→Pj) = Σ_types send(Pi→Pj, type) · size(type) · c(i,j)
//
// (equations (4) of the scatter program and (8) of the reduce program) and
// then emits the one-port constraints: every edge fraction ≤ 1, and per
// node the sum of outgoing (resp. incoming) fractions ≤ 1.
type OccupancyBuilder struct {
	p     *graph.Platform
	terms map[EdgeKey]lp.Expr
}

// NewOccupancy returns a builder for the platform.
func NewOccupancy(p *graph.Platform) *OccupancyBuilder {
	return &OccupancyBuilder{p: p, terms: make(map[EdgeKey]lp.Expr)}
}

// Add records that variable v contributes v·timePerUnit to the occupation
// of edge from→to, where timePerUnit is size(type)·c(from,to).
func (b *OccupancyBuilder) Add(from, to graph.NodeID, v lp.Var, timePerUnit rat.Rat) {
	k := EdgeKey{from, to}
	b.terms[k] = b.terms[k].Plus(timePerUnit, v)
}

// AddConstraints adds to the model, for every edge with recorded traffic,
// the constraint s(e) ≤ 1, and for every node the one-port constraints
// Σ_out s ≤ 1 and Σ_in s ≤ 1.
func (b *OccupancyBuilder) AddConstraints(m *lp.Model) {
	outBy := make(map[graph.NodeID]lp.Expr)
	inBy := make(map[graph.NodeID]lp.Expr)
	// Deterministic constraint order keeps solver runs reproducible.
	keys := make([]EdgeKey, 0, len(b.terms))
	for k := range b.terms {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	for _, k := range keys {
		expr := b.terms[k]
		m.AddConstraint(
			fmt.Sprintf("edge_occ(%s->%s)", b.p.Node(k.From).Name, b.p.Node(k.To).Name),
			expr, lp.Leq, rat.One())
		// Concat merges the sorted sparse vectors, so the per-node one-port
		// rows stay canonical without a densify-and-rescan pass.
		outBy[k.From] = outBy[k.From].Concat(expr)
		inBy[k.To] = inBy[k.To].Concat(expr)
	}
	for _, n := range b.p.Nodes() {
		if e, ok := outBy[n.ID]; ok {
			m.AddConstraint(fmt.Sprintf("oneport_out(%s)", n.Name), e, lp.Leq, rat.One())
		}
		if e, ok := inBy[n.ID]; ok {
			m.AddConstraint(fmt.Sprintf("oneport_in(%s)", n.Name), e, lp.Leq, rat.One())
		}
	}
}

// ComputeBuilder accumulates, per node, the linear expression for the
// node's compute-occupation fraction
//
//	α(P_i) = Σ_tasks cons(P_i, T) · w(P_i, T)
//
// (equation (9) of the reduce program) and then emits α(P_i) ≤ 1 for every
// node with registered work. Like OccupancyBuilder it may be shared by
// several collectives assembled into one model: superposed reduce-family
// members then compete for each node's compute time exactly as they
// compete for its ports.
type ComputeBuilder struct {
	p     *graph.Platform
	terms map[graph.NodeID]lp.Expr
}

// NewCompute returns a compute-occupation builder for the platform.
func NewCompute(p *graph.Platform) *ComputeBuilder {
	return &ComputeBuilder{p: p, terms: make(map[graph.NodeID]lp.Expr)}
}

// Add records that variable v contributes v·timePerTask to the compute
// occupation of node.
func (b *ComputeBuilder) Add(node graph.NodeID, v lp.Var, timePerTask rat.Rat) {
	b.terms[node] = b.terms[node].Plus(timePerTask, v)
}

// AddConstraints adds α(P_i) ≤ 1 for every node with registered work, in
// node-ID order.
func (b *ComputeBuilder) AddConstraints(m *lp.Model) {
	ids := make([]graph.NodeID, 0, len(b.terms))
	for id := range b.terms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m.AddConstraint(fmt.Sprintf("compute(%s)", b.p.Node(id).Name),
			b.terms[id], lp.Leq, rat.One())
	}
}

// Flow is the solved steady-state communication pattern of a forwarding
// collective (scatter, gossip): for every directed edge and message type C,
// the fractional number of messages of that type crossing the edge per time
// unit, plus the achieved throughput.
type Flow[C comparable] struct {
	Platform   *graph.Platform
	Throughput rat.Rat
	// Sends[e][c] is the per-time-unit rate of messages of type c on e.
	// Zero-rate entries are omitted.
	Sends map[EdgeKey]map[C]rat.Rat
}

// NewFlow returns an empty flow for the platform.
func NewFlow[C comparable](p *graph.Platform) *Flow[C] {
	return &Flow[C]{Platform: p, Throughput: rat.Zero(), Sends: make(map[EdgeKey]map[C]rat.Rat)}
}

// SetSend records the rate of type c on edge from→to (dropping zeros).
func (f *Flow[C]) SetSend(from, to graph.NodeID, c C, rate rat.Rat) {
	if rate.Sign() == 0 {
		return
	}
	if rate.Sign() < 0 {
		panic("core: negative send rate")
	}
	k := EdgeKey{from, to}
	if f.Sends[k] == nil {
		f.Sends[k] = make(map[C]rat.Rat)
	}
	f.Sends[k][c] = rat.Copy(rate)
}

// Send returns the rate of type c on edge from→to (zero when absent).
func (f *Flow[C]) Send(from, to graph.NodeID, c C) rat.Rat {
	if m := f.Sends[EdgeKey{from, to}]; m != nil {
		if r, ok := m[c]; ok {
			return rat.Copy(r)
		}
	}
	return rat.Zero()
}

// EdgeOccupancy computes s(e) = Σ_c rate(e,c)·size(c)·c(e) for every edge
// with traffic.
func (f *Flow[C]) EdgeOccupancy(sizeOf func(C) rat.Rat) map[EdgeKey]rat.Rat {
	occ := make(map[EdgeKey]rat.Rat)
	for k, m := range f.Sends {
		cost := f.Platform.Cost(k.From, k.To)
		s := rat.Zero()
		for c, r := range m {
			s.Add(s, rat.Mul(rat.Mul(r, sizeOf(c)), cost))
		}
		occ[k] = s
	}
	return occ
}

// VerifyOnePort checks that the flow respects the one-port model: every
// edge occupation ≤ 1 and every node's total outgoing and incoming
// occupation ≤ 1. It returns the first violation found.
func (f *Flow[C]) VerifyOnePort(sizeOf func(C) rat.Rat) error {
	occ := f.EdgeOccupancy(sizeOf)
	outTot := make(map[graph.NodeID]rat.Rat)
	inTot := make(map[graph.NodeID]rat.Rat)
	for k, s := range occ {
		if s.Cmp(rat.One()) > 0 {
			return fmt.Errorf("core: edge %s→%s occupation %s > 1",
				f.Platform.Node(k.From).Name, f.Platform.Node(k.To).Name, s.RatString())
		}
		if outTot[k.From] == nil {
			outTot[k.From] = rat.Zero()
		}
		if inTot[k.To] == nil {
			inTot[k.To] = rat.Zero()
		}
		outTot[k.From].Add(outTot[k.From], s)
		inTot[k.To].Add(inTot[k.To], s)
	}
	for id, s := range outTot {
		if s.Cmp(rat.One()) > 0 {
			return fmt.Errorf("core: node %s sends for %s > 1 per time unit",
				f.Platform.Node(id).Name, s.RatString())
		}
	}
	for id, s := range inTot {
		if s.Cmp(rat.One()) > 0 {
			return fmt.Errorf("core: node %s receives for %s > 1 per time unit",
				f.Platform.Node(id).Name, s.RatString())
		}
	}
	return nil
}

// AllRates returns every send rate plus the throughput — the input to the
// period computation (LCM of denominators).
func (f *Flow[C]) AllRates() []rat.Rat {
	out := []rat.Rat{rat.Copy(f.Throughput)}
	for _, m := range f.Sends {
		for _, r := range m {
			out = append(out, rat.Copy(r)) //sslint:allow order-insensitive: rates feed DenominatorLCM
		}
	}
	return out
}

// Period returns the smallest period T such that T·rate is an integer for
// every rate in the flow (the LCM of all denominators).
func (f *Flow[C]) Period() *big.Int {
	return rat.DenominatorLCM(f.AllRates()...)
}

// InflowOutflow sums, for node n and type c, the total incoming and
// outgoing rates. Used by conservation-law checks.
func (f *Flow[C]) InflowOutflow(n graph.NodeID, c C) (in, out rat.Rat) {
	in, out = rat.Zero(), rat.Zero()
	for k, m := range f.Sends {
		r, ok := m[c]
		if !ok {
			continue
		}
		if k.To == n {
			in.Add(in, r)
		}
		if k.From == n {
			out.Add(out, r)
		}
	}
	return in, out
}

// Protocol carries the parameters of the asymptotically optimal schedule
// of Section 3.4, for a periodic schedule of integer period T on a graph of
// hop diameter D, run over a horizon of K time units:
//
//	I = D·T               (initialization latency bound)
//	r = ⌊(K − 2I − T)/T⌋  (full steady-state periods)
//	steady(G,K) = r·T·TP  (operations completed in steady state)
//
// Lemma 1 bounds any schedule by opt(G,K) ≤ TP·K, so the achieved ratio
// steady/opt → 1 as K grows (Proposition 1/3).
type Protocol struct {
	Period   *big.Int
	Diameter int
	Horizon  *big.Int
}

// InitLatency returns I = D·T.
func (pr Protocol) InitLatency() *big.Int {
	return new(big.Int).Mul(big.NewInt(int64(pr.Diameter)), pr.Period)
}

// SteadyPeriods returns r = ⌊(K − 2I − T)/T⌋, clamped at 0.
func (pr Protocol) SteadyPeriods() *big.Int {
	i := pr.InitLatency()
	num := new(big.Int).Set(pr.Horizon)
	num.Sub(num, new(big.Int).Lsh(i, 1))
	num.Sub(num, pr.Period)
	if num.Sign() < 0 {
		return big.NewInt(0)
	}
	return num.Div(num, pr.Period)
}

// SteadyOperations returns steady(G,K) = r·T·TP as an exact rational.
func (pr Protocol) SteadyOperations(tp rat.Rat) rat.Rat {
	rT := new(big.Int).Mul(pr.SteadyPeriods(), pr.Period)
	return rat.Mul(new(big.Rat).SetInt(rT), tp)
}

// OptimalBound returns the Lemma 1 bound opt(G,K) ≤ TP·K.
func (pr Protocol) OptimalBound(tp rat.Rat) rat.Rat {
	return rat.Mul(new(big.Rat).SetInt(pr.Horizon), tp)
}

// Ratio returns steady(G,K)/(TP·K) — the fraction of the optimal bound the
// concrete protocol achieves (→ 1 as the horizon grows). Returns 0 when
// the bound is 0.
func (pr Protocol) Ratio(tp rat.Rat) rat.Rat {
	bound := pr.OptimalBound(tp)
	if bound.Sign() == 0 {
		return rat.Zero()
	}
	return rat.Div(pr.SteadyOperations(tp), bound)
}
