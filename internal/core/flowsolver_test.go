package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/topology"
)

func TestSolveUniformFlowSingleEdge(t *testing.T) {
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddEdge(a, b, rat.New(1, 4)) // 4 messages per time unit

	f, stats, err := SolveUniformFlow(p, []Commodity{{a, b}})
	if err != nil {
		t.Fatalf("SolveUniformFlow: %v", err)
	}
	if !rat.Eq(f.Throughput, rat.Int(4)) {
		t.Errorf("TP = %s, want 4", f.Throughput.RatString())
	}
	if stats.Vars == 0 || stats.Constraints == 0 {
		t.Errorf("stats look empty: %+v", stats)
	}
	if err := f.VerifyOnePort(func(Commodity) rat.Rat { return rat.One() }); err != nil {
		t.Errorf("one-port: %v", err)
	}
}

// TestSolveUniformFlowPaperFig2 is the paper's toy scatter: TP must be
// exactly 1/2, and the m0 stream must use both routes.
func TestSolveUniformFlowPaperFig2(t *testing.T) {
	p, src, targets := topology.PaperFig2()
	comms := []Commodity{{src, targets[0]}, {src, targets[1]}}
	f, _, err := SolveUniformFlow(p, comms)
	if err != nil {
		t.Fatalf("SolveUniformFlow: %v", err)
	}
	if !rat.Eq(f.Throughput, rat.New(1, 2)) {
		t.Fatalf("TP = %s, want exactly 1/2", f.Throughput.RatString())
	}
	// m0 arrives at P0 at rate 1/2 in total, possibly split across the Pa
	// and Pb routes (the paper's solution splits 3+3 per period 12, but
	// the optimum is not unique: all-via-Pa also achieves 1/2).
	pa := p.MustLookup("Pa")
	pb := p.MustLookup("Pb")
	p0 := targets[0]
	m0 := comms[0]
	viaA := f.Send(pa, p0, m0)
	viaB := f.Send(pb, p0, m0)
	if !rat.Eq(rat.Add(viaA, viaB), rat.New(1, 2)) {
		t.Errorf("m0 delivery = %s, want 1/2", rat.Add(viaA, viaB).RatString())
	}
	// m1 can only go over Pb, at rate 1/2 (6 per period 12).
	if got := f.Send(pb, targets[1], comms[1]); !rat.Eq(got, rat.New(1, 2)) {
		t.Errorf("m1 on Pb→P1 = %s, want 1/2", got.RatString())
	}
	// Period: the paper's figure uses period 12. Any positive period whose
	// multiple reaches 12 works; log the one we get.
	period := f.Period()
	if period.Sign() <= 0 {
		t.Error("period must be positive")
	}
	t.Logf("period = %s (paper uses 12)", period)
}

// TestSolveUniformFlowMultipathRequired uses a platform where no single
// route reaches the optimum: route A is cheap to enter but expensive to
// finish, route B the reverse, so only a 50/50 split achieves TP = 1/2
// (either single route alone caps at 1/3). This is the capability the
// paper highlights in Figure 2 ("all the messages destined to processor P0
// do not take the same route").
func TestSolveUniformFlowMultipathRequired(t *testing.T) {
	p := graph.New()
	s := p.AddNode("s", rat.One())
	a := p.AddRouter("a")
	b := p.AddRouter("b")
	d := p.AddNode("d", rat.One())
	p.AddEdge(s, a, rat.Int(3))
	p.AddEdge(s, b, rat.One())
	p.AddEdge(a, d, rat.One())
	p.AddEdge(b, d, rat.Int(3))

	f, _, err := SolveUniformFlow(p, []Commodity{{s, d}})
	if err != nil {
		t.Fatalf("SolveUniformFlow: %v", err)
	}
	if !rat.Eq(f.Throughput, rat.New(1, 2)) {
		t.Fatalf("TP = %s, want 1/2", f.Throughput.RatString())
	}
	com := Commodity{s, d}
	viaA := f.Send(a, d, com)
	viaB := f.Send(b, d, com)
	if rat.IsZero(viaA) || rat.IsZero(viaB) {
		t.Errorf("optimum requires both routes: viaA=%s viaB=%s",
			viaA.RatString(), viaB.RatString())
	}
}

func TestSolveUniformFlowConservation(t *testing.T) {
	// Chain s → r → d: everything the router receives must be forwarded.
	p := graph.New()
	s := p.AddNode("s", rat.One())
	r := p.AddRouter("r")
	d := p.AddNode("d", rat.One())
	p.AddEdge(s, r, rat.One())
	p.AddEdge(r, d, rat.New(1, 2))

	f, _, err := SolveUniformFlow(p, []Commodity{{s, d}})
	if err != nil {
		t.Fatalf("SolveUniformFlow: %v", err)
	}
	// Bottleneck is the s→r edge: 1 message per time unit.
	if !rat.Eq(f.Throughput, rat.One()) {
		t.Errorf("TP = %s, want 1", f.Throughput.RatString())
	}
	in, out := f.InflowOutflow(r, Commodity{s, d})
	if !rat.Eq(in, out) {
		t.Errorf("conservation violated at router: in=%s out=%s", in.RatString(), out.RatString())
	}
}

func TestSolveUniformFlowGossip(t *testing.T) {
	// Symmetric triangle, all-to-all: each ordered pair is a commodity.
	p := graph.New()
	var ids []graph.NodeID
	for _, name := range []string{"a", "b", "c"} {
		ids = append(ids, p.AddNode(name, rat.One()))
	}
	p.AddLink(ids[0], ids[1], rat.One())
	p.AddLink(ids[1], ids[2], rat.One())
	p.AddLink(ids[0], ids[2], rat.One())

	var comms []Commodity
	for _, s := range ids {
		for _, d := range ids {
			if s != d {
				comms = append(comms, Commodity{s, d})
			}
		}
	}
	f, _, err := SolveUniformFlow(p, comms)
	if err != nil {
		t.Fatalf("SolveUniformFlow: %v", err)
	}
	// Every node sends 2 unit messages per gossip and its out-port allows
	// 1 per time unit → TP = 1/2 (direct sends saturate all ports).
	if !rat.Eq(f.Throughput, rat.New(1, 2)) {
		t.Errorf("TP = %s, want 1/2", f.Throughput.RatString())
	}
	if err := f.VerifyOnePort(func(Commodity) rat.Rat { return rat.One() }); err != nil {
		t.Errorf("one-port: %v", err)
	}
}

func TestSolveUniformFlowErrors(t *testing.T) {
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	c := p.AddNode("c", rat.One())
	p.AddEdge(a, b, rat.One())
	_ = c // isolated

	if _, _, err := SolveUniformFlow(p, nil); err == nil {
		t.Error("empty commodities should fail")
	}
	if _, _, err := SolveUniformFlow(p, []Commodity{{a, a}}); err == nil {
		t.Error("self commodity should fail")
	}
	if _, _, err := SolveUniformFlow(p, []Commodity{{a, b}, {a, b}}); err == nil {
		t.Error("duplicate commodity should fail")
	}
	if _, _, err := SolveUniformFlow(p, []Commodity{{a, c}}); err == nil {
		t.Error("unreachable destination should fail")
	}
}

func TestCancelCyclesRemovesCirculation(t *testing.T) {
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	c := p.AddNode("c", rat.One())
	p.AddEdge(a, b, rat.One())
	p.AddLink(b, c, rat.One())

	f := NewFlow[Commodity](p)
	com := Commodity{a, b}
	f.Throughput = rat.New(1, 3)
	f.SetSend(a, b, com, rat.New(1, 3)) // genuine delivery
	// A useless circulation b→c→b.
	f.SetSend(b, c, com, rat.New(1, 5))
	f.SetSend(c, b, com, rat.New(1, 5))

	CancelCycles(f)

	if !rat.Eq(f.Send(a, b, com), rat.New(1, 3)) {
		t.Errorf("delivery edge changed: %s", f.Send(a, b, com).RatString())
	}
	if !rat.IsZero(f.Send(b, c, com)) || !rat.IsZero(f.Send(c, b, com)) {
		t.Error("circulation not cancelled")
	}
}

func TestCancelCyclesPartialOverlap(t *testing.T) {
	// Two overlapping cycles sharing an edge; cancellation must terminate
	// and leave an acyclic flow.
	p := graph.New()
	var n []graph.NodeID
	for _, name := range []string{"a", "b", "c", "d"} {
		n = append(n, p.AddNode(name, rat.One()))
	}
	p.AddLink(n[0], n[1], rat.One())
	p.AddLink(n[1], n[2], rat.One())
	p.AddLink(n[2], n[3], rat.One())
	p.AddLink(n[0], n[3], rat.One())

	f := NewFlow[Commodity](p)
	com := Commodity{n[0], n[2]}
	// Cycle a→b→a at rate 1/7 and a→b→c→d→a at rate 1/9.
	f.SetSend(n[0], n[1], com, rat.Add(rat.New(1, 7), rat.New(1, 9)))
	f.SetSend(n[1], n[0], com, rat.New(1, 7))
	f.SetSend(n[1], n[2], com, rat.New(1, 9))
	f.SetSend(n[2], n[3], com, rat.New(1, 9))
	f.SetSend(n[3], n[0], com, rat.New(1, 9))

	CancelCycles(f)

	// All edges should be gone: the whole flow was circulation.
	for k, m := range f.Sends {
		if r, ok := m[com]; ok && r.Sign() > 0 {
			t.Errorf("edge %v still carries %s", k, r.RatString())
		}
	}
}

func TestSolveUniformFlowOnTiers(t *testing.T) {
	if testing.Short() {
		t.Skip("medium LP in -short mode")
	}
	cfg := topology.DefaultTiersConfig(17)
	p := topology.Tiers(cfg)
	parts := p.Participants()
	src := parts[0]
	var comms []Commodity
	for _, d := range parts[1:] {
		comms = append(comms, Commodity{src, d})
	}
	f, stats, err := SolveUniformFlow(p, comms)
	if err != nil {
		t.Fatalf("SolveUniformFlow: %v", err)
	}
	if f.Throughput.Sign() <= 0 {
		t.Error("throughput should be positive on a connected platform")
	}
	if err := f.VerifyOnePort(func(Commodity) rat.Rat { return rat.One() }); err != nil {
		t.Errorf("one-port: %v", err)
	}
	t.Logf("tiers scatter: TP=%s vars=%d cons=%d pivots=%d",
		f.Throughput.RatString(), stats.Vars, stats.Constraints, stats.Pivots)
}
