package core

import (
	"math/big"
	"testing"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/rat"
)

func twoNode(t *testing.T) (*graph.Platform, graph.NodeID, graph.NodeID) {
	t.Helper()
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	p.AddLink(a, b, rat.New(1, 2))
	return p, a, b
}

func TestOccupancyBuilderConstraints(t *testing.T) {
	p, a, b := twoNode(t)
	m := lp.NewMaximize()
	x := m.Var("x") // messages a→b per time unit, each taking 1/2
	y := m.Var("y") // messages b→a per time unit, each taking 1/2
	m.SetObjective(x, rat.One())
	m.SetObjective(y, rat.One())

	occ := NewOccupancy(p)
	occ.Add(a, b, x, rat.New(1, 2))
	occ.Add(b, a, y, rat.New(1, 2))
	occ.AddConstraints(m)

	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Each direction is limited by its edge occupation: x/2 ≤ 1 → x ≤ 2,
	// same for y, and ports don't conflict (different directions), so the
	// optimum is 4.
	if !rat.Eq(sol.Objective, rat.Int(4)) {
		t.Errorf("objective = %s, want 4", sol.Objective.RatString())
	}
}

func TestOccupancyBuilderOnePortCouplesEdges(t *testing.T) {
	// One sender with two outgoing edges: the out-port constraint must
	// couple them.
	p := graph.New()
	s := p.AddNode("s", rat.One())
	u := p.AddNode("u", rat.One())
	v := p.AddNode("v", rat.One())
	p.AddEdge(s, u, rat.One())
	p.AddEdge(s, v, rat.One())

	m := lp.NewMaximize()
	x := m.Var("x")
	y := m.Var("y")
	m.SetObjective(x, rat.One())
	m.SetObjective(y, rat.One())
	occ := NewOccupancy(p)
	occ.Add(s, u, x, rat.One())
	occ.Add(s, v, y, rat.One())
	occ.AddConstraints(m)

	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !rat.Eq(sol.Objective, rat.One()) {
		t.Errorf("objective = %s, want 1 (one-port serializes the sends)", sol.Objective.RatString())
	}
}

func TestFlowSetGetSend(t *testing.T) {
	p, a, b := twoNode(t)
	f := NewFlow[int](p)
	f.SetSend(a, b, 7, rat.New(2, 3))
	if !rat.Eq(f.Send(a, b, 7), rat.New(2, 3)) {
		t.Error("Send round trip failed")
	}
	if !rat.IsZero(f.Send(b, a, 7)) || !rat.IsZero(f.Send(a, b, 8)) {
		t.Error("absent sends should read as zero")
	}
	// Zero rates are dropped.
	f.SetSend(b, a, 1, rat.Zero())
	if _, ok := f.Sends[EdgeKey{b, a}]; ok {
		t.Error("zero rate should not be stored")
	}
}

func TestFlowNegativeRatePanics(t *testing.T) {
	p, a, b := twoNode(t)
	f := NewFlow[int](p)
	defer func() {
		if recover() == nil {
			t.Fatal("negative rate did not panic")
		}
	}()
	f.SetSend(a, b, 0, rat.Int(-1))
}

func unitSize[C comparable](C) rat.Rat { return rat.One() }

func TestFlowEdgeOccupancyAndOnePort(t *testing.T) {
	p, a, b := twoNode(t)
	f := NewFlow[int](p)
	f.SetSend(a, b, 0, rat.One()) // 1 msg/unit × cost 1/2 → occupation 1/2
	f.SetSend(a, b, 1, rat.One())
	occ := f.EdgeOccupancy(unitSize[int])
	if !rat.Eq(occ[EdgeKey{a, b}], rat.One()) {
		t.Errorf("occupancy = %s, want 1", occ[EdgeKey{a, b}].RatString())
	}
	if err := f.VerifyOnePort(unitSize[int]); err != nil {
		t.Errorf("VerifyOnePort: %v", err)
	}
	// Push it over the edge capacity.
	f.SetSend(a, b, 2, rat.One())
	if err := f.VerifyOnePort(unitSize[int]); err == nil {
		t.Error("VerifyOnePort accepted an overloaded edge")
	}
}

func TestFlowOnePortNodeAggregation(t *testing.T) {
	// Two parallel edges out of one node, each individually fine, but the
	// node's send port is oversubscribed.
	p := graph.New()
	s := p.AddNode("s", rat.One())
	u := p.AddNode("u", rat.One())
	v := p.AddNode("v", rat.One())
	p.AddEdge(s, u, rat.One())
	p.AddEdge(s, v, rat.One())
	f := NewFlow[int](p)
	f.SetSend(s, u, 0, rat.New(3, 4))
	f.SetSend(s, v, 0, rat.New(3, 4))
	if err := f.VerifyOnePort(unitSize[int]); err == nil {
		t.Error("VerifyOnePort accepted an oversubscribed out-port")
	}
	// Receiving side aggregation.
	q := graph.New()
	x := q.AddNode("x", rat.One())
	y := q.AddNode("y", rat.One())
	z := q.AddNode("z", rat.One())
	q.AddEdge(x, z, rat.One())
	q.AddEdge(y, z, rat.One())
	g := NewFlow[int](q)
	g.SetSend(x, z, 0, rat.New(3, 4))
	g.SetSend(y, z, 0, rat.New(3, 4))
	if err := g.VerifyOnePort(unitSize[int]); err == nil {
		t.Error("VerifyOnePort accepted an oversubscribed in-port")
	}
}

func TestFlowPeriod(t *testing.T) {
	p, a, b := twoNode(t)
	f := NewFlow[int](p)
	f.Throughput = rat.New(1, 2)
	f.SetSend(a, b, 0, rat.New(1, 3))
	f.SetSend(b, a, 1, rat.New(5, 6))
	if got := f.Period(); got.Int64() != 6 {
		t.Errorf("Period = %s, want 6", got)
	}
}

func TestFlowInflowOutflow(t *testing.T) {
	p := graph.New()
	a := p.AddNode("a", rat.One())
	b := p.AddNode("b", rat.One())
	c := p.AddNode("c", rat.One())
	p.AddEdge(a, b, rat.One())
	p.AddEdge(b, c, rat.One())
	f := NewFlow[string](p)
	f.SetSend(a, b, "m", rat.New(2, 5))
	f.SetSend(b, c, "m", rat.New(2, 5))
	in, out := f.InflowOutflow(b, "m")
	if !rat.Eq(in, rat.New(2, 5)) || !rat.Eq(out, rat.New(2, 5)) {
		t.Errorf("in=%s out=%s, want 2/5 both", in.RatString(), out.RatString())
	}
	in, out = f.InflowOutflow(a, "m")
	if !rat.IsZero(in) || !rat.Eq(out, rat.New(2, 5)) {
		t.Errorf("source in=%s out=%s", in.RatString(), out.RatString())
	}
}

func TestProtocolArithmetic(t *testing.T) {
	pr := Protocol{Period: big.NewInt(12), Diameter: 2, Horizon: big.NewInt(1000)}
	if got := pr.InitLatency(); got.Int64() != 24 {
		t.Errorf("InitLatency = %s, want 24", got)
	}
	// r = floor((1000 - 48 - 12)/12) = floor(940/12) = 78.
	if got := pr.SteadyPeriods(); got.Int64() != 78 {
		t.Errorf("SteadyPeriods = %s, want 78", got)
	}
	tp := rat.New(1, 2)
	// steady = 78·12·(1/2) = 468; bound = 500.
	if got := pr.SteadyOperations(tp); !rat.Eq(got, rat.Int(468)) {
		t.Errorf("SteadyOperations = %s, want 468", got.RatString())
	}
	if got := pr.OptimalBound(tp); !rat.Eq(got, rat.Int(500)) {
		t.Errorf("OptimalBound = %s, want 500", got.RatString())
	}
	if got := pr.Ratio(tp); !rat.Eq(got, rat.New(468, 500)) {
		t.Errorf("Ratio = %s, want 117/125", got.RatString())
	}
}

func TestProtocolShortHorizon(t *testing.T) {
	pr := Protocol{Period: big.NewInt(12), Diameter: 2, Horizon: big.NewInt(10)}
	if got := pr.SteadyPeriods(); got.Sign() != 0 {
		t.Errorf("SteadyPeriods = %s, want 0", got)
	}
	if got := pr.Ratio(rat.Zero()); !rat.IsZero(got) {
		t.Errorf("Ratio with zero TP = %s, want 0", got.RatString())
	}
}

// TestProtocolRatioConvergence checks the Proposition 1 statement
// numerically: the ratio increases toward 1 as the horizon grows.
func TestProtocolRatioConvergence(t *testing.T) {
	tp := rat.New(2, 9)
	prev := rat.Zero()
	for _, k := range []int64{100, 1000, 10000, 100000} {
		pr := Protocol{Period: big.NewInt(9), Diameter: 4, Horizon: big.NewInt(k)}
		r := pr.Ratio(tp)
		if r.Cmp(prev) < 0 {
			t.Errorf("ratio decreased at K=%d: %s < %s", k, r.RatString(), prev.RatString())
		}
		if r.Cmp(rat.One()) > 0 {
			t.Errorf("ratio exceeds 1 at K=%d: %s", k, r.RatString())
		}
		prev = r
	}
	if rat.Less(prev, rat.New(99, 100)) {
		t.Errorf("ratio at K=100000 still %s < 0.99", prev.RatString())
	}
}
