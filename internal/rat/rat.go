// Package rat provides exact rational arithmetic helpers on top of
// math/big.Rat.
//
// Every quantity in this repository — link costs, LP coefficients,
// steady-state throughputs, schedule slot lengths — is an exact rational.
// The steady-state construction of Legrand/Marchal/Robert depends on exact
// arithmetic: the periodic schedule's period is the least common multiple of
// the denominators of the LP solution, which is meaningless under floating
// point. This package gathers the small set of operations the rest of the
// code needs so that call sites stay readable.
package rat

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Rat is an exact rational number. It aliases *big.Rat; a nil Rat is not
// valid. Use the constructors in this package.
type Rat = *big.Rat

// New returns the rational n/d. It panics if d == 0.
func New(n, d int64) Rat {
	if d == 0 {
		panic("rat: zero denominator")
	}
	return big.NewRat(n, d)
}

// Int returns the rational n/1.
func Int(n int64) Rat { return big.NewRat(n, 1) }

// Zero returns a fresh rational equal to 0.
func Zero() Rat { return new(big.Rat) }

// One returns a fresh rational equal to 1.
func One() Rat { return big.NewRat(1, 1) }

// Copy returns an independent copy of x.
func Copy(x Rat) Rat { return new(big.Rat).Set(x) }

// Add returns x + y as a fresh rational.
func Add(x, y Rat) Rat { return new(big.Rat).Add(x, y) }

// Sub returns x - y as a fresh rational.
func Sub(x, y Rat) Rat { return new(big.Rat).Sub(x, y) }

// Mul returns x * y as a fresh rational.
func Mul(x, y Rat) Rat { return new(big.Rat).Mul(x, y) }

// Div returns x / y as a fresh rational. It panics if y == 0.
func Div(x, y Rat) Rat {
	if y.Sign() == 0 {
		panic("rat: division by zero")
	}
	return new(big.Rat).Quo(x, y)
}

// Neg returns -x as a fresh rational.
func Neg(x Rat) Rat { return new(big.Rat).Neg(x) }

// Inv returns 1/x as a fresh rational. It panics if x == 0.
func Inv(x Rat) Rat {
	if x.Sign() == 0 {
		panic("rat: inverse of zero")
	}
	return new(big.Rat).Inv(x)
}

// Cmp returns -1, 0 or +1 according to the sign of x - y.
func Cmp(x, y Rat) int { return x.Cmp(y) }

// Eq reports whether x == y.
func Eq(x, y Rat) bool { return x.Cmp(y) == 0 }

// Less reports whether x < y.
func Less(x, y Rat) bool { return x.Cmp(y) < 0 }

// Leq reports whether x <= y.
func Leq(x, y Rat) bool { return x.Cmp(y) <= 0 }

// IsZero reports whether x == 0.
func IsZero(x Rat) bool { return x.Sign() == 0 }

// Min returns the smaller of x and y (a fresh copy).
func Min(x, y Rat) Rat {
	if x.Cmp(y) <= 0 {
		return Copy(x)
	}
	return Copy(y)
}

// Max returns the larger of x and y (a fresh copy).
func Max(x, y Rat) Rat {
	if x.Cmp(y) >= 0 {
		return Copy(x)
	}
	return Copy(y)
}

// Sum returns the sum of xs as a fresh rational (0 for an empty slice).
func Sum(xs ...Rat) Rat {
	s := Zero()
	for _, x := range xs {
		s.Add(s, x)
	}
	return s
}

// MinOf returns the minimum of xs. It panics on an empty slice.
func MinOf(xs ...Rat) Rat {
	if len(xs) == 0 {
		panic("rat: MinOf of empty slice")
	}
	m := Copy(xs[0])
	for _, x := range xs[1:] {
		if x.Cmp(m) < 0 {
			m.Set(x)
		}
	}
	return m
}

// MaxOf returns the maximum of xs. It panics on an empty slice.
func MaxOf(xs ...Rat) Rat {
	if len(xs) == 0 {
		panic("rat: MaxOf of empty slice")
	}
	m := Copy(xs[0])
	for _, x := range xs[1:] {
		if x.Cmp(m) > 0 {
			m.Set(x)
		}
	}
	return m
}

// gcdInt returns gcd(|a|, |b|) over big.Int.
func gcdInt(a, b *big.Int) *big.Int {
	return new(big.Int).GCD(nil, nil, new(big.Int).Abs(a), new(big.Int).Abs(b))
}

// lcmInt returns lcm(|a|, |b|) over big.Int. lcm(0, x) is defined as x so
// that folding over a list with zeros present behaves sensibly.
func lcmInt(a, b *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int).Abs(b)
	}
	if b.Sign() == 0 {
		return new(big.Int).Abs(a)
	}
	g := gcdInt(a, b)
	q := new(big.Int).Div(new(big.Int).Abs(a), g)
	return q.Mul(q, new(big.Int).Abs(b))
}

// DenominatorLCM returns the least common multiple of the denominators of
// xs, as a big.Int. For an empty slice it returns 1. This is the period
// computation of the paper: multiplying every variable of a rational LP
// solution by the LCM of all denominators yields an all-integer solution.
func DenominatorLCM(xs ...Rat) *big.Int {
	l := big.NewInt(1)
	for _, x := range xs {
		l = lcmInt(l, x.Denom())
	}
	return l
}

// ScaleToInt multiplies x by the integer scale and returns the result as a
// big.Int. It panics if the product is not an integer — callers use it only
// after computing scale = DenominatorLCM(...).
func ScaleToInt(x Rat, scale *big.Int) *big.Int {
	p := new(big.Rat).Mul(x, new(big.Rat).SetInt(scale))
	if !p.IsInt() {
		panic(fmt.Sprintf("rat: %s * %s is not an integer", x.RatString(), scale.String()))
	}
	return new(big.Int).Set(p.Num())
}

// Floor returns ⌊x⌋ as a big.Int.
func Floor(x Rat) *big.Int {
	q := new(big.Int)
	r := new(big.Int)
	q.QuoRem(x.Num(), x.Denom(), r)
	// big.Int.QuoRem truncates toward zero; fix up negatives.
	if r.Sign() < 0 {
		q.Sub(q, big.NewInt(1))
	}
	return q
}

// FloorDiv returns ⌊x/y⌋ as a big.Int. It panics if y == 0.
func FloorDiv(x, y Rat) *big.Int { return Floor(Div(x, y)) }

// Float returns x as a float64 (for reporting only; may round).
func Float(x Rat) float64 {
	f, _ := x.Float64()
	return f
}

// String formats x as "num/den" or "num" when the denominator is 1.
func String(x Rat) string { return x.RatString() }

// Parse parses a rational from a string. Accepted forms: "3", "-3", "3/4",
// "0.25" (decimal expansions are converted exactly). Empty strings,
// fractions with a missing side ("/", "3/", "/4") and zero denominators
// are rejected with specific errors.
func Parse(s string) (Rat, error) {
	if s == "" {
		return nil, fmt.Errorf("rat: empty string is not a rational")
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, den := s[:i], s[i+1:]
		if num == "" && den == "" {
			return nil, fmt.Errorf("rat: %q has neither numerator nor denominator", s)
		}
		if num == "" {
			return nil, fmt.Errorf("rat: %q is missing its numerator", s)
		}
		if den == "" {
			return nil, fmt.Errorf("rat: %q is missing its denominator", s)
		}
		if d, ok := new(big.Int).SetString(den, 10); ok && d.Sign() == 0 {
			return nil, fmt.Errorf("rat: %q has a zero denominator", s)
		}
	}
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return nil, fmt.Errorf("rat: cannot parse %q as a rational", s)
	}
	return r, nil
}

// MustParse is Parse that panics on error; for tests and constants.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Sort sorts xs in increasing order, in place.
func Sort(xs []Rat) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].Cmp(xs[j]) < 0 })
}

// Clone returns a deep copy of xs.
func Clone(xs []Rat) []Rat {
	out := make([]Rat, len(xs))
	for i, x := range xs {
		out[i] = Copy(x)
	}
	return out
}
