package rat

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestNewAndInt(t *testing.T) {
	if got := New(3, 4).RatString(); got != "3/4" {
		t.Errorf("New(3,4) = %s, want 3/4", got)
	}
	if got := Int(-7).RatString(); got != "-7" {
		t.Errorf("Int(-7) = %s, want -7", got)
	}
}

func TestNewPanicsOnZeroDenominator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestArithmetic(t *testing.T) {
	a, b := New(1, 3), New(1, 6)
	cases := []struct {
		name string
		got  Rat
		want string
	}{
		{"add", Add(a, b), "1/2"},
		{"sub", Sub(a, b), "1/6"},
		{"mul", Mul(a, b), "1/18"},
		{"div", Div(a, b), "2"},
		{"neg", Neg(a), "-1/3"},
		{"inv", Inv(a), "3"},
	}
	for _, c := range cases {
		if c.got.RatString() != c.want {
			t.Errorf("%s: got %s, want %s", c.name, c.got.RatString(), c.want)
		}
	}
}

func TestArithmeticDoesNotAliasOperands(t *testing.T) {
	a, b := New(1, 3), New(1, 6)
	_ = Add(a, b)
	_ = Sub(a, b)
	_ = Mul(a, b)
	_ = Div(a, b)
	if a.RatString() != "1/3" || b.RatString() != "1/6" {
		t.Errorf("operands mutated: a=%s b=%s", a.RatString(), b.RatString())
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(One(), Zero())
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(Zero())
}

func TestComparisons(t *testing.T) {
	a, b := New(1, 2), New(2, 3)
	if !Less(a, b) || Less(b, a) {
		t.Error("Less(1/2, 2/3) wrong")
	}
	if !Leq(a, a) || !Leq(a, b) || Leq(b, a) {
		t.Error("Leq wrong")
	}
	if !Eq(a, New(2, 4)) {
		t.Error("Eq(1/2, 2/4) should be true")
	}
	if Cmp(a, b) != -1 || Cmp(b, a) != 1 || Cmp(a, a) != 0 {
		t.Error("Cmp wrong")
	}
	if !IsZero(Zero()) || IsZero(One()) {
		t.Error("IsZero wrong")
	}
}

func TestMinMax(t *testing.T) {
	a, b := New(1, 2), New(2, 3)
	if !Eq(Min(a, b), a) || !Eq(Max(a, b), b) {
		t.Error("Min/Max wrong")
	}
	// Results must be fresh copies.
	m := Min(a, b)
	m.SetInt64(99)
	if !Eq(a, New(1, 2)) {
		t.Error("Min aliases its argument")
	}
}

func TestSumAndFolds(t *testing.T) {
	if !Eq(Sum(), Zero()) {
		t.Error("empty Sum should be 0")
	}
	s := Sum(New(1, 2), New(1, 3), New(1, 6))
	if !Eq(s, One()) {
		t.Errorf("Sum = %s, want 1", s.RatString())
	}
	if !Eq(MinOf(New(3, 1), New(1, 2), New(2, 3)), New(1, 2)) {
		t.Error("MinOf wrong")
	}
	if !Eq(MaxOf(New(3, 1), New(1, 2), New(2, 3)), Int(3)) {
		t.Error("MaxOf wrong")
	}
}

func TestMinOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MinOf() did not panic")
		}
	}()
	MinOf()
}

func TestDenominatorLCM(t *testing.T) {
	cases := []struct {
		xs   []Rat
		want int64
	}{
		{nil, 1},
		{[]Rat{Int(5)}, 1},
		{[]Rat{New(1, 2), New(1, 3)}, 6},
		{[]Rat{New(1, 4), New(1, 6), New(5, 9)}, 36},
		{[]Rat{New(3, 12)}, 4}, // 3/12 normalizes to 1/4
	}
	for _, c := range cases {
		got := DenominatorLCM(c.xs...)
		if got.Int64() != c.want {
			t.Errorf("DenominatorLCM(%v) = %s, want %d", c.xs, got, c.want)
		}
	}
}

func TestScaleToInt(t *testing.T) {
	x := New(5, 6)
	got := ScaleToInt(x, big.NewInt(12))
	if got.Int64() != 10 {
		t.Errorf("ScaleToInt(5/6, 12) = %s, want 10", got)
	}
}

func TestScaleToIntPanicsOnNonInteger(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaleToInt(1/3, 2) did not panic")
		}
	}()
	ScaleToInt(New(1, 3), big.NewInt(2))
}

func TestFloor(t *testing.T) {
	cases := []struct {
		x    Rat
		want int64
	}{
		{New(7, 2), 3},
		{New(-7, 2), -4},
		{Int(5), 5},
		{Int(-5), -5},
		{Zero(), 0},
		{New(1, 10), 0},
		{New(-1, 10), -1},
	}
	for _, c := range cases {
		if got := Floor(c.x); got.Int64() != c.want {
			t.Errorf("Floor(%s) = %s, want %d", c.x.RatString(), got, c.want)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	if got := FloorDiv(Int(7), Int(2)); got.Int64() != 3 {
		t.Errorf("FloorDiv(7,2) = %s, want 3", got)
	}
	if got := FloorDiv(New(9, 2), New(3, 2)); got.Int64() != 3 {
		t.Errorf("FloorDiv(9/2,3/2) = %s, want 3", got)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"3", "3", true},
		{"-3", "-3", true},
		{"3/4", "3/4", true},
		{"0.25", "1/4", true},
		{"x", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.ok != (err == nil) {
			t.Errorf("Parse(%q) error = %v, ok expectation %v", c.in, err, c.ok)
			continue
		}
		if c.ok && got.RatString() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.in, got.RatString(), c.want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse(garbage) did not panic")
		}
	}()
	MustParse("not-a-rational")
}

func TestSortAndClone(t *testing.T) {
	xs := []Rat{Int(3), New(1, 2), Int(-1)}
	cl := Clone(xs)
	Sort(xs)
	want := []string{"-1", "1/2", "3"}
	for i, w := range want {
		if xs[i].RatString() != w {
			t.Errorf("Sort[%d] = %s, want %s", i, xs[i].RatString(), w)
		}
	}
	// Clone must be deep: mutate clone, original unchanged.
	cl[0].SetInt64(100)
	if xs[0].RatString() == "100" || xs[1].RatString() == "100" || xs[2].RatString() == "100" {
		t.Error("Clone is not deep")
	}
}

// Property: DenominatorLCM really clears all denominators.
func TestPropertyDenominatorLCMClears(t *testing.T) {
	f := func(n1, n2, n3 int32, d1, d2, d3 uint8) bool {
		xs := []Rat{
			New(int64(n1), int64(d1)+1),
			New(int64(n2), int64(d2)+1),
			New(int64(n3), int64(d3)+1),
		}
		l := DenominatorLCM(xs...)
		for _, x := range xs {
			p := new(big.Rat).Mul(x, new(big.Rat).SetInt(l))
			if !p.IsInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Floor(x) <= x < Floor(x)+1.
func TestPropertyFloorBracket(t *testing.T) {
	f := func(n int32, d uint8) bool {
		x := New(int64(n), int64(d)+1)
		fl := Floor(x)
		lo := new(big.Rat).SetInt(fl)
		hi := new(big.Rat).Add(lo, big.NewRat(1, 1))
		return lo.Cmp(x) <= 0 && x.Cmp(hi) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Min/Max bracket both operands.
func TestPropertyMinMax(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Int(int64(a)), Int(int64(b))
		mn, mx := Min(x, y), Max(x, y)
		return Leq(mn, x) && Leq(mn, y) && Leq(x, mx) && Leq(y, mx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
