package rat

import (
	"strings"
	"testing"
)

// FuzzParseRat hardens Parse against hostile input: whatever the bytes,
// Parse must either return a usable rational or a descriptive error —
// never panic, never return a nil value without an error, and every
// accepted value must round-trip through its canonical rendering.
func FuzzParseRat(f *testing.F) {
	for _, seed := range []string{
		"", "/", "3", "-3", "+3", "3/4", "-3/4", "3/-4", "0.25", ".5",
		"1/0", "0/0", "-1/0", "1/", "/2", "3/4/5", "1e3", "1.5e2", "0x10",
		" 3", "3 ", "nan", "Inf", "--1", "9999999999999999999999/7",
		"1/00", "0_1", "１/２",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			if r != nil {
				t.Fatalf("Parse(%q) returned both a value and error %v", s, err)
			}
			return
		}
		if r == nil {
			t.Fatalf("Parse(%q) returned nil without an error", s)
		}
		if r.Denom().Sign() == 0 {
			t.Fatalf("Parse(%q) produced a zero denominator", s)
		}
		// Canonical round trip: RatString always re-parses to the same
		// value.
		back, err := Parse(r.RatString())
		if err != nil {
			t.Fatalf("Parse(%q) = %s, which does not re-parse: %v", s, r.RatString(), err)
		}
		if back.Cmp(r) != 0 {
			t.Fatalf("round trip of Parse(%q) changed the value: %s vs %s",
				s, r.RatString(), back.RatString())
		}
	})
}

// TestParseRejections pins the specific error messages the fuzz target
// can only prove are non-panicking.
func TestParseRejections(t *testing.T) {
	cases := map[string]string{
		"":      "empty string",
		"/":     "neither numerator nor denominator",
		"3/":    "missing its denominator",
		"/4":    "missing its numerator",
		"3/0":   "zero denominator",
		"-3/0":  "zero denominator",
		"0/0":   "zero denominator",
		"x":     "cannot parse",
		"3/4/5": "cannot parse",
	}
	for in, want := range cases {
		r, err := Parse(in)
		if err == nil {
			t.Errorf("Parse(%q) = %s, want error containing %q", in, r.RatString(), want)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) error = %q, want it to contain %q", in, err, want)
		}
	}
}
