package gossip

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rat"
	"repro/internal/topology"
)

func triangle(t *testing.T) (*graph.Platform, []graph.NodeID) {
	t.Helper()
	p := graph.New()
	var ids []graph.NodeID
	for _, name := range []string{"a", "b", "c"} {
		ids = append(ids, p.AddNode(name, rat.One()))
	}
	p.AddLink(ids[0], ids[1], rat.One())
	p.AddLink(ids[1], ids[2], rat.One())
	p.AddLink(ids[0], ids[2], rat.One())
	return p, ids
}

func TestAllToAllTriangle(t *testing.T) {
	p, ids := triangle(t)
	pr, err := NewProblem(p, ids, ids)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	if got := len(pr.Commodities()); got != 6 {
		t.Fatalf("commodities = %d, want 6 (self pairs excluded)", got)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Each node emits 2 messages per gossip through a 1-capacity port:
	// TP = 1/2.
	if !rat.Eq(sol.Throughput(), rat.New(1, 2)) {
		t.Errorf("TP = %s, want 1/2", sol.Throughput().RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if sol.Period().Sign() <= 0 {
		t.Error("period must be positive")
	}
}

func TestGossipSubsetSourcesTargets(t *testing.T) {
	// Sources {a}, targets {b, c}: degenerates to a scatter.
	p, ids := triangle(t)
	pr, err := NewProblem(p, ids[:1], ids[1:])
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// a sends 2 unit messages per operation out of one port → 1/2.
	if !rat.Eq(sol.Throughput(), rat.New(1, 2)) {
		t.Errorf("TP = %s, want 1/2", sol.Throughput().RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestGossipOverlapExcludesSelf(t *testing.T) {
	// Sources and targets overlap on one node: the (x, x) commodity is
	// excluded, others remain.
	p, ids := triangle(t)
	pr, err := NewProblem(p, []graph.NodeID{ids[0], ids[1]}, []graph.NodeID{ids[1], ids[2]})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	// pairs: a→b, a→c, b→c (b→b excluded).
	if got := len(pr.Commodities()); got != 3 {
		t.Fatalf("commodities = %d, want 3", got)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestGossipValidation(t *testing.T) {
	p, ids := triangle(t)
	if _, err := NewProblem(p, nil, ids); err == nil {
		t.Error("no sources should fail")
	}
	if _, err := NewProblem(p, ids, nil); err == nil {
		t.Error("no targets should fail")
	}
	if _, err := NewProblem(p, []graph.NodeID{ids[0], ids[0]}, ids); err == nil {
		t.Error("duplicate source should fail")
	}
	if _, err := NewProblem(p, ids[:1], ids[:1]); err == nil {
		t.Error("single self pair should fail")
	}

	// Unreachable pair.
	q := graph.New()
	a := q.AddNode("a", rat.One())
	b := q.AddNode("b", rat.One())
	q.AddEdge(a, b, rat.One())
	if _, err := NewProblem(q, []graph.NodeID{b}, []graph.NodeID{a}); err == nil {
		t.Error("unreachable pair should fail")
	}
}

func TestGossipProtocolRatio(t *testing.T) {
	p, ids := triangle(t)
	pr, _ := NewProblem(p, ids, ids)
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	proto := sol.Protocol(big.NewInt(100000))
	ratio := proto.Ratio(sol.Throughput())
	if ratio.Cmp(rat.One()) > 0 || rat.Less(ratio, rat.New(95, 100)) {
		t.Errorf("ratio at K=100000 = %s, want in [0.95, 1]", ratio.RatString())
	}
}

func TestGossipString(t *testing.T) {
	p, ids := triangle(t)
	pr, _ := NewProblem(p, ids[:1], ids[1:])
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	out := sol.String()
	if !strings.Contains(out, "gossip throughput") || !strings.Contains(out, "send(") {
		t.Errorf("String output unexpected:\n%s", out)
	}
}

func TestGossipStarRelay(t *testing.T) {
	// Star with center as pure relay: 3 leaves gossip all-to-all. Every
	// message crosses center; center's ports carry 6 messages per op →
	// TP = 1/6.
	p := graph.New()
	c := p.AddRouter("hub")
	var leaves []graph.NodeID
	for _, name := range []string{"l0", "l1", "l2"} {
		id := p.AddNode(name, rat.One())
		p.AddLink(c, id, rat.One())
		leaves = append(leaves, id)
	}
	pr, err := NewProblem(p, leaves, leaves)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !rat.Eq(sol.Throughput(), rat.New(1, 6)) {
		t.Errorf("TP = %s, want 1/6", sol.Throughput().RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestGossipOnTiers(t *testing.T) {
	if testing.Short() {
		t.Skip("medium LP in -short mode")
	}
	p := topology.Tiers(topology.DefaultTiersConfig(31))
	parts := p.Participants()
	// Keep the commodity count modest: 3 sources × 3 targets.
	pr, err := NewProblem(p, parts[:3], parts[len(parts)-3:])
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Throughput().Sign() <= 0 {
		t.Error("TP should be positive")
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// TestAllgatherIsGossip: the allgather convenience (every participant
// redistributes its segment to every other rank) is exactly the gossip
// with sources == targets == order, commodity for commodity.
func TestAllgatherIsGossip(t *testing.T) {
	p, ids := triangle(t)
	ag, err := NewAllgatherProblem(p, ids)
	if err != nil {
		t.Fatalf("NewAllgatherProblem: %v", err)
	}
	plain, err := NewProblem(p, ids, ids)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	if got, want := ag.Commodities(), plain.Commodities(); len(got) != len(want) {
		t.Fatalf("allgather has %d commodities, gossip %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("commodity %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
	agSol, err := ag.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	plainSol, err := plain.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if agSol.Throughput().Cmp(plainSol.Throughput()) != 0 {
		t.Errorf("allgather TP = %s, gossip TP = %s",
			agSol.Throughput().RatString(), plainSol.Throughput().RatString())
	}
}
