// Package gossip implements Section 3.5 of the paper: the Series of
// Gossips problem (pipelined personalized all-to-all). A set of source
// processors each emit a distinct unit-size message for every target
// processor per operation; the goal is the common steady-state throughput
// TP achieved simultaneously by every (source, target) stream.
//
// Solve builds the linear program SSPA2A(G) — the same one-port and
// conservation structure as the scatter program, with message types m_{k,l}
// indexed by both the emitting and the receiving processor — and solves it
// exactly over the rationals.
package gossip

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rat"
)

// Problem is a Series of Gossips instance: every source sends one distinct
// message per operation to every target (self-addressed messages, when a
// node is both source and target, are delivered locally and excluded).
type Problem struct {
	Platform *graph.Platform
	Sources  []graph.NodeID
	Targets  []graph.NodeID
}

// NewProblem validates and returns a gossip problem.
func NewProblem(p *graph.Platform, sources, targets []graph.NodeID) (*Problem, error) {
	if len(sources) == 0 || len(targets) == 0 {
		return nil, fmt.Errorf("gossip: need at least one source and one target")
	}
	for _, set := range [][]graph.NodeID{sources, targets} {
		seen := make(map[graph.NodeID]bool)
		for _, n := range set {
			if seen[n] {
				return nil, fmt.Errorf("gossip: duplicate node %s", p.Node(n).Name)
			}
			seen[n] = true
		}
	}
	pairs := 0
	for _, s := range sources {
		for _, t := range targets {
			if s == t {
				continue
			}
			pairs++
			if !p.CanReach(s, t) {
				return nil, fmt.Errorf("gossip: %s cannot reach %s", p.Node(s).Name, p.Node(t).Name)
			}
		}
	}
	if pairs == 0 {
		return nil, fmt.Errorf("gossip: no cross pairs (sources == targets == one node?)")
	}
	return &Problem{
		Platform: p,
		Sources:  append([]graph.NodeID(nil), sources...),
		Targets:  append([]graph.NodeID(nil), targets...),
	}, nil
}

// NewAllgatherProblem returns the gossip instance modeling an allgather
// over order: every participant redistributes its own segment to every
// other rank (sources == targets == order, self-addressed pairs excluded).
// It is the second phase of the allreduce decomposition — after a
// reduce-scatter leaves rank i holding reduced segment i, this gossip
// delivers every segment to every rank.
func NewAllgatherProblem(p *graph.Platform, order []graph.NodeID) (*Problem, error) {
	return NewProblem(p, order, order)
}

// Commodities returns the message types m_{k,l} of the instance: one per
// (source, target) pair with distinct endpoints, in deterministic order.
func (pr *Problem) Commodities() []core.Commodity {
	var out []core.Commodity
	for _, s := range pr.Sources {
		for _, t := range pr.Targets {
			if s != t {
				out = append(out, core.Commodity{Src: s, Dst: t})
			}
		}
	}
	return out
}

// Solution is a solved Series of Gossips.
type Solution struct {
	Problem *Problem
	Flow    *core.Flow[core.Commodity]
	Stats   core.FlowStats
}

// Solve builds and solves SSPA2A(G).
func (pr *Problem) Solve() (*Solution, error) { return pr.SolveCtx(context.Background()) }

// SolveCtx is Solve honoring context cancellation inside the simplex loop.
func (pr *Problem) SolveCtx(ctx context.Context) (*Solution, error) {
	flow, stats, err := core.SolveUniformFlowCtx(ctx, pr.Platform, pr.Commodities())
	if err != nil {
		return nil, fmt.Errorf("gossip: %w", err)
	}
	return &Solution{Problem: pr, Flow: flow, Stats: stats}, nil
}

// Throughput returns TP: gossip operations per time unit.
func (s *Solution) Throughput() rat.Rat { return rat.Copy(s.Flow.Throughput) }

// Period returns the integer schedule period (LCM of rate denominators).
func (s *Solution) Period() *big.Int { return s.Flow.Period() }

// UnitSize is the message size function (unit-size messages).
func UnitSize(core.Commodity) rat.Rat { return rat.One() }

// Verify re-checks the SSPA2A constraints independently of the solver:
// one-port feasibility, conservation at forwarding nodes, and delivery of
// exactly TP for every (source, target) stream.
func (s *Solution) Verify() error {
	if err := s.Flow.VerifyOnePort(UnitSize); err != nil {
		return fmt.Errorf("gossip: %w", err)
	}
	for _, com := range s.Problem.Commodities() {
		for _, n := range s.Problem.Platform.Nodes() {
			in, out := s.Flow.InflowOutflow(n.ID, com)
			switch n.ID {
			case com.Src:
				// mints m_{k,l}
			case com.Dst:
				if !rat.IsZero(out) {
					return fmt.Errorf("gossip: %s re-emits m(%s,%s)",
						n.Name, s.name(com.Src), s.name(com.Dst))
				}
				if !rat.Eq(in, s.Flow.Throughput) {
					return fmt.Errorf("gossip: %s receives m(%s,%s) at %s, want TP=%s",
						n.Name, s.name(com.Src), s.name(com.Dst), in.RatString(), s.Flow.Throughput.RatString())
				}
			default:
				if !rat.Eq(in, out) {
					return fmt.Errorf("gossip: conservation violated at %s for m(%s,%s)",
						n.Name, s.name(com.Src), s.name(com.Dst))
				}
			}
		}
	}
	return nil
}

// Protocol returns the Section 3.4 protocol parameters for a horizon of K
// time units (Proposition 2 extends Proposition 1 to gossips).
func (s *Solution) Protocol(horizon *big.Int) core.Protocol {
	return core.Protocol{
		Period:   s.Period(),
		Diameter: s.Problem.Platform.HopDiameter(),
		Horizon:  new(big.Int).Set(horizon),
	}
}

func (s *Solution) name(n graph.NodeID) string { return s.Problem.Platform.Node(n).Name }

// String renders throughput and per-edge typed message rates.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gossip throughput TP = %s (period %s)\n",
		s.Flow.Throughput.RatString(), s.Period().String())
	var lines []string
	for e, types := range s.Flow.Sends {
		for com, r := range types {
			lines = append(lines, fmt.Sprintf("  send(%s->%s, m_%s_%s) = %s",
				s.name(e.From), s.name(e.To), s.name(com.Src), s.name(com.Dst), r.RatString()))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
