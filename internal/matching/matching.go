// Package matching serializes the communications of one schedule period
// into non-overlapping steps, the construction of Section 3.3 of the paper:
// from the platform graph and the (integer) per-period transfer times we
// build a bipartite graph with one sender node P_i^send and one receiver
// node P_j^recv per processor and one edge per transfer, and decompose it
// into weighted matchings. Within a matching every sender sends at most one
// message stream and every receiver receives at most one, so the transfers
// of a matching may run simultaneously without violating the one-port
// model.
//
// The paper invokes the weighted edge-coloring algorithm of Schrijver
// (Combinatorial Optimization, vol. A, ch. 20). We implement the equivalent
// Birkhoff–von-Neumann construction: pad the weighted bipartite (multi-)
// graph with idle time until every sender and receiver is busy for exactly
// Δ = the maximum weighted degree, then repeatedly extract a perfect
// matching on the positive support (it exists by Hall's theorem at every
// step) weighted by its minimum entry. Each extraction zeroes at least one
// edge, so the number of matchings is polynomial, and the matchings
// restricted to real (non-padding) edges reproduce every transfer exactly.
package matching

import (
	"fmt"
	"sort"

	"repro/internal/rat"
)

// Transfer is one communication demand within a period: sender s must send
// to receiver r for Weight time units, carrying an opaque payload (the
// schedule layer stores the message type and count there).
type Transfer struct {
	Sender, Receiver int
	Weight           rat.Rat
	Payload          any
}

// Step is one serial slot of the period: a set of transfers that run
// simultaneously for Duration time units. At most one transfer per sender
// and at most one per receiver (a matching).
type Step struct {
	Duration  rat.Rat
	Transfers []Transfer // each with Weight == Duration
}

// Decompose splits the transfers into steps. nSenders and nReceivers bound
// the node indices. The returned steps satisfy:
//
//   - each step is a matching (one-port-safe),
//   - for every transfer, the total duration of steps containing it equals
//     its weight (transfers may be split across non-adjacent steps),
//   - the total duration of all steps equals Δ, the maximum weighted
//     degree over senders and receivers (idle-only steps are dropped, so
//     the emitted durations may sum to less than Δ).
func Decompose(nSenders, nReceivers int, transfers []Transfer) ([]Step, error) {
	if nSenders <= 0 || nReceivers <= 0 {
		return nil, fmt.Errorf("matching: empty side (senders=%d receivers=%d)", nSenders, nReceivers)
	}
	for _, t := range transfers {
		if t.Sender < 0 || t.Sender >= nSenders || t.Receiver < 0 || t.Receiver >= nReceivers {
			return nil, fmt.Errorf("matching: transfer %d→%d out of range", t.Sender, t.Receiver)
		}
		if t.Weight == nil || t.Weight.Sign() <= 0 {
			return nil, fmt.Errorf("matching: transfer %d→%d has non-positive weight", t.Sender, t.Receiver)
		}
	}
	if len(transfers) == 0 {
		return nil, nil
	}

	// Working copies: per-cell lists of remaining real entries, plus a
	// padding layer. Square the matrix so perfect matchings exist.
	n := nSenders
	if nReceivers > n {
		n = nReceivers
	}
	type entry struct {
		weight  rat.Rat
		payload any
	}
	cells := make([][][]*entry, n)
	pad := make([][]rat.Rat, n)
	for i := range cells {
		cells[i] = make([][]*entry, n)
		pad[i] = make([]rat.Rat, n)
		for j := range pad[i] {
			pad[i][j] = rat.Zero()
		}
	}
	rowSum := make([]rat.Rat, n)
	colSum := make([]rat.Rat, n)
	for i := 0; i < n; i++ {
		rowSum[i] = rat.Zero()
		colSum[i] = rat.Zero()
	}
	for _, t := range transfers {
		cells[t.Sender][t.Receiver] = append(cells[t.Sender][t.Receiver],
			&entry{weight: rat.Copy(t.Weight), payload: t.Payload})
		rowSum[t.Sender].Add(rowSum[t.Sender], t.Weight)
		colSum[t.Receiver].Add(colSum[t.Receiver], t.Weight)
	}
	delta := rat.MaxOf(append(rat.Clone(rowSum), colSum...)...)

	// Pad every row and column up to Δ. Greedy: repeatedly put the
	// feasible maximum into the first (row, col) pair with slack. Total
	// row slack equals total column slack, so this terminates with an
	// exactly doubly-Δ-regular weighted bipartite graph.
	for i, j := 0, 0; i < n && j < n; {
		rSlack := rat.Sub(delta, rowSum[i])
		if rSlack.Sign() == 0 {
			i++
			continue
		}
		cSlack := rat.Sub(delta, colSum[j])
		if cSlack.Sign() == 0 {
			j++
			continue
		}
		amt := rat.Min(rSlack, cSlack)
		pad[i][j].Add(pad[i][j], amt)
		rowSum[i].Add(rowSum[i], amt)
		colSum[j].Add(colSum[j], amt)
	}

	// Extraction loop.
	var steps []Step
	remaining := rat.Copy(delta)
	for remaining.Sign() > 0 {
		match, err := perfectMatching(n, func(i, j int) bool {
			return len(cells[i][j]) > 0 || pad[i][j].Sign() > 0
		})
		if err != nil {
			return nil, fmt.Errorf("matching: internal: %w (remaining=%s)", err, remaining.RatString())
		}
		// For each matched cell choose a concrete entry: the smallest real
		// entry when available (zeroes entries fastest), else padding.
		chosen := make([]*entry, n) // per row; nil = padding
		alpha := rat.Copy(remaining)
		for i, j := range match {
			var pick *entry
			for _, e := range cells[i][j] {
				if pick == nil || e.weight.Cmp(pick.weight) < 0 {
					pick = e
				}
			}
			chosen[i] = pick
			v := pad[i][j]
			if pick != nil {
				v = pick.weight
			}
			if v.Cmp(alpha) < 0 {
				alpha = rat.Copy(v)
			}
		}
		// Subtract α and emit the real part of the matching.
		st := Step{Duration: rat.Copy(alpha)}
		for i, j := range match {
			if e := chosen[i]; e != nil {
				e.weight = rat.Sub(e.weight, alpha)
				if e.weight.Sign() == 0 {
					cells[i][j] = removeEntry(cells[i][j], e)
				}
				st.Transfers = append(st.Transfers, Transfer{
					Sender: i, Receiver: j, Weight: rat.Copy(alpha), Payload: e.payload,
				})
			} else {
				pad[i][j] = rat.Sub(pad[i][j], alpha)
			}
		}
		if len(st.Transfers) > 0 {
			sort.Slice(st.Transfers, func(a, b int) bool {
				if st.Transfers[a].Sender != st.Transfers[b].Sender {
					return st.Transfers[a].Sender < st.Transfers[b].Sender
				}
				return st.Transfers[a].Receiver < st.Transfers[b].Receiver
			})
			steps = append(steps, st)
		}
		remaining.Sub(remaining, alpha)
	}
	return steps, nil
}

func removeEntry[T comparable](s []T, x T) []T {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// perfectMatching finds a perfect matching of the n×n bipartite graph
// whose edges are given by the support predicate, using Kuhn's augmenting
// path algorithm. It returns match[row] = col.
func perfectMatching(n int, support func(i, j int) bool) ([]int, error) {
	matchCol := make([]int, n) // col → row
	matchRow := make([]int, n) // row → col
	for i := range matchCol {
		matchCol[i] = -1
		matchRow[i] = -1
	}
	var try func(row int, visited []bool) bool
	try = func(row int, visited []bool) bool {
		for col := 0; col < n; col++ {
			if visited[col] || !support(row, col) {
				continue
			}
			visited[col] = true
			if matchCol[col] == -1 || try(matchCol[col], visited) {
				matchCol[col] = row
				matchRow[row] = col
				return true
			}
		}
		return false
	}
	for row := 0; row < n; row++ {
		if !try(row, make([]bool, n)) {
			return nil, fmt.Errorf("no perfect matching (row %d unmatched)", row)
		}
	}
	return matchRow, nil
}

// MaxWeightedDegree returns Δ: the largest total weight incident to any
// sender or receiver — the minimum serial time needed to run all transfers
// under the one-port model, and the total duration Decompose schedules.
func MaxWeightedDegree(nSenders, nReceivers int, transfers []Transfer) rat.Rat {
	rows := make([]rat.Rat, nSenders)
	cols := make([]rat.Rat, nReceivers)
	for i := range rows {
		rows[i] = rat.Zero()
	}
	for j := range cols {
		cols[j] = rat.Zero()
	}
	for _, t := range transfers {
		rows[t.Sender].Add(rows[t.Sender], t.Weight)
		cols[t.Receiver].Add(cols[t.Receiver], t.Weight)
	}
	return rat.MaxOf(append(rows, cols...)...)
}

// VerifySteps checks a decomposition against the original transfers: every
// step is a matching, and per (sender, receiver, payload) the step
// durations add up to the original weight. It returns the first violation.
func VerifySteps(transfers []Transfer, steps []Step) error {
	type key struct {
		s, r    int
		payload any
	}
	want := make(map[key]rat.Rat)
	for _, t := range transfers {
		k := key{t.Sender, t.Receiver, t.Payload}
		if want[k] == nil {
			want[k] = rat.Zero()
		}
		want[k].Add(want[k], t.Weight)
	}
	got := make(map[key]rat.Rat)
	for si, st := range steps {
		if st.Duration == nil || st.Duration.Sign() <= 0 {
			return fmt.Errorf("matching: step %d has non-positive duration", si)
		}
		sSeen := make(map[int]bool)
		rSeen := make(map[int]bool)
		for _, tr := range st.Transfers {
			if sSeen[tr.Sender] {
				return fmt.Errorf("matching: step %d uses sender %d twice", si, tr.Sender)
			}
			if rSeen[tr.Receiver] {
				return fmt.Errorf("matching: step %d uses receiver %d twice", si, tr.Receiver)
			}
			sSeen[tr.Sender] = true
			rSeen[tr.Receiver] = true
			if !rat.Eq(tr.Weight, st.Duration) {
				return fmt.Errorf("matching: step %d transfer %d→%d weight %s ≠ duration %s",
					si, tr.Sender, tr.Receiver, tr.Weight.RatString(), st.Duration.RatString())
			}
			k := key{tr.Sender, tr.Receiver, tr.Payload}
			if got[k] == nil {
				got[k] = rat.Zero()
			}
			got[k].Add(got[k], tr.Weight)
		}
	}
	for k, w := range want {
		g := got[k]
		if g == nil || !rat.Eq(g, w) {
			gs := "0"
			if g != nil {
				gs = g.RatString()
			}
			return fmt.Errorf("matching: transfer %d→%d: scheduled %s, want %s", k.s, k.r, gs, w.RatString())
		}
	}
	for k := range got {
		if want[k] == nil {
			return fmt.Errorf("matching: phantom transfer %d→%d in steps", k.s, k.r)
		}
	}
	return nil
}
