package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rat"
)

func TestDecomposeEmpty(t *testing.T) {
	steps, err := Decompose(2, 2, nil)
	if err != nil || steps != nil {
		t.Errorf("empty decompose: %v, %v", steps, err)
	}
}

func TestDecomposeSingleTransfer(t *testing.T) {
	tr := []Transfer{{Sender: 0, Receiver: 1, Weight: rat.Int(5), Payload: "m"}}
	steps, err := Decompose(2, 2, tr)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if err := VerifySteps(tr, steps); err != nil {
		t.Fatalf("VerifySteps: %v", err)
	}
	if len(steps) != 1 || !rat.Eq(steps[0].Duration, rat.Int(5)) {
		t.Errorf("steps = %v", steps)
	}
}

func TestDecomposeValidation(t *testing.T) {
	if _, err := Decompose(0, 1, nil); err == nil {
		t.Error("zero senders should fail")
	}
	if _, err := Decompose(1, 1, []Transfer{{Sender: 5, Receiver: 0, Weight: rat.One()}}); err == nil {
		t.Error("out-of-range sender should fail")
	}
	if _, err := Decompose(2, 2, []Transfer{{Sender: 0, Receiver: 1, Weight: rat.Zero()}}); err == nil {
		t.Error("zero weight should fail")
	}
}

// TestDecomposePaperFig3 reproduces the paper's Figure 3: the bipartite
// graph of the Fig. 2 scatter solution for a period of 12 decomposes into a
// small number of matchings. Transfers (occupation times within period 12):
//
//	Ps→Pa: 3 (3·m0)     Ps→Pb: 3 (3·m0) and 6 (6·m1)
//	Pa→P0: 2 (3·m0)     Pb→P0: 4 (3·m0)     Pb→P1: 8 (6·m1)
//
// Senders: Ps=0, Pa=1, Pb=2. Receivers: Pa=0, Pb=1, P0=2, P1=3.
// Δ = max degree = Ps sends 12, Pb sends 12, P1 receives 8 … = 12, so the
// matchings must tile exactly 12 time units.
func TestDecomposePaperFig3(t *testing.T) {
	transfers := []Transfer{
		{Sender: 0, Receiver: 0, Weight: rat.Int(3), Payload: "m0→Pa"},
		{Sender: 0, Receiver: 1, Weight: rat.Int(3), Payload: "m0→Pb"},
		{Sender: 0, Receiver: 1, Weight: rat.Int(6), Payload: "m1→Pb"},
		{Sender: 1, Receiver: 2, Weight: rat.Int(2), Payload: "m0 Pa→P0"},
		{Sender: 2, Receiver: 2, Weight: rat.Int(4), Payload: "m0 Pb→P0"},
		{Sender: 2, Receiver: 3, Weight: rat.Int(8), Payload: "m1 Pb→P1"},
	}
	if got := MaxWeightedDegree(3, 4, transfers); !rat.Eq(got, rat.Int(12)) {
		t.Fatalf("Δ = %s, want 12", got.RatString())
	}
	steps, err := Decompose(3, 4, transfers)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if err := VerifySteps(transfers, steps); err != nil {
		t.Fatalf("VerifySteps: %v", err)
	}
	// The paper finds 4 matchings; our algorithm may find a slightly
	// different but still polynomial count. It must stay small.
	if len(steps) > 10 {
		t.Errorf("steps = %d, want a handful (paper: 4)", len(steps))
	}
	total := rat.Zero()
	for _, s := range steps {
		total.Add(total, s.Duration)
	}
	if total.Cmp(rat.Int(12)) > 0 {
		t.Errorf("total duration %s exceeds Δ=12", total.RatString())
	}
	t.Logf("fig3: %d matchings, total busy duration %s of Δ=12", len(steps), total.RatString())
}

func TestDecomposeParallelEdgesSameCell(t *testing.T) {
	// Two message types on the same (sender, receiver) pair must never
	// share a step, and both must be fully scheduled.
	transfers := []Transfer{
		{Sender: 0, Receiver: 0, Weight: rat.Int(2), Payload: "a"},
		{Sender: 0, Receiver: 0, Weight: rat.Int(3), Payload: "b"},
	}
	steps, err := Decompose(1, 1, transfers)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if err := VerifySteps(transfers, steps); err != nil {
		t.Fatalf("VerifySteps: %v", err)
	}
	for _, s := range steps {
		if len(s.Transfers) != 1 {
			t.Errorf("step with %d transfers on a single pair", len(s.Transfers))
		}
	}
}

func TestDecomposeRationalWeights(t *testing.T) {
	transfers := []Transfer{
		{Sender: 0, Receiver: 0, Weight: rat.New(1, 3), Payload: "x"},
		{Sender: 0, Receiver: 1, Weight: rat.New(1, 2), Payload: "y"},
		{Sender: 1, Receiver: 0, Weight: rat.New(2, 3), Payload: "z"},
	}
	steps, err := Decompose(2, 2, transfers)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if err := VerifySteps(transfers, steps); err != nil {
		t.Fatalf("VerifySteps: %v", err)
	}
}

func TestVerifyStepsCatchesBadSchedules(t *testing.T) {
	transfers := []Transfer{
		{Sender: 0, Receiver: 0, Weight: rat.Int(2), Payload: "a"},
		{Sender: 1, Receiver: 1, Weight: rat.Int(2), Payload: "b"},
	}
	// Conflicting senders in one step.
	bad := []Step{{
		Duration: rat.Int(2),
		Transfers: []Transfer{
			{Sender: 0, Receiver: 0, Weight: rat.Int(2), Payload: "a"},
			{Sender: 0, Receiver: 1, Weight: rat.Int(2), Payload: "b"},
		},
	}}
	if err := VerifySteps(transfers, bad); err == nil {
		t.Error("sender conflict not caught")
	}
	// Under-scheduled transfer.
	short := []Step{{
		Duration:  rat.Int(1),
		Transfers: []Transfer{{Sender: 0, Receiver: 0, Weight: rat.Int(1), Payload: "a"}},
	}}
	if err := VerifySteps(transfers, short); err == nil {
		t.Error("missing duration not caught")
	}
	// Phantom transfer.
	phantom := []Step{
		{Duration: rat.Int(2), Transfers: []Transfer{{Sender: 0, Receiver: 0, Weight: rat.Int(2), Payload: "a"}}},
		{Duration: rat.Int(2), Transfers: []Transfer{{Sender: 1, Receiver: 1, Weight: rat.Int(2), Payload: "b"}}},
		{Duration: rat.Int(1), Transfers: []Transfer{{Sender: 1, Receiver: 0, Weight: rat.Int(1), Payload: "c"}}},
	}
	if err := VerifySteps(transfers, phantom); err == nil {
		t.Error("phantom transfer not caught")
	}
}

// TestPropertyDecomposeRecompose: for random transfer sets, the
// decomposition exists, verifies, and its total duration equals Δ exactly
// when every row/col is saturated or stays ≤ Δ otherwise.
func TestPropertyDecomposeRecompose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nS := 1 + rng.Intn(4)
		nR := 1 + rng.Intn(4)
		var transfers []Transfer
		count := 1 + rng.Intn(8)
		for k := 0; k < count; k++ {
			transfers = append(transfers, Transfer{
				Sender:   rng.Intn(nS),
				Receiver: rng.Intn(nR),
				Weight:   rat.New(int64(1+rng.Intn(12)), int64(1+rng.Intn(4))),
				Payload:  k,
			})
		}
		steps, err := Decompose(nS, nR, transfers)
		if err != nil {
			return false
		}
		if err := VerifySteps(transfers, steps); err != nil {
			return false
		}
		// Busy duration never exceeds Δ.
		total := rat.Zero()
		for _, s := range steps {
			total.Add(total, s.Duration)
		}
		return total.Cmp(MaxWeightedDegree(nS, nR, transfers)) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStepCountPolynomial: the number of emitted steps stays under
// the |transfers| + (n+1)² bound that the zero-one-entry-per-step argument
// gives.
func TestPropertyStepCountPolynomial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		var transfers []Transfer
		for k := 0; k < n*n; k++ {
			if rng.Intn(2) == 0 {
				continue
			}
			transfers = append(transfers, Transfer{
				Sender:   k / n,
				Receiver: k % n,
				Weight:   rat.Int(int64(1 + rng.Intn(20))),
				Payload:  k,
			})
		}
		if len(transfers) == 0 {
			continue
		}
		steps, err := Decompose(n, n, transfers)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bound := len(transfers) + (n+1)*(n+1)
		if len(steps) > bound {
			t.Errorf("trial %d: %d steps exceeds bound %d", trial, len(steps), bound)
		}
	}
}

func TestPerfectMatchingFailsOnEmptySupport(t *testing.T) {
	_, err := perfectMatching(2, func(i, j int) bool { return false })
	if err == nil {
		t.Error("expected failure with empty support")
	}
}
