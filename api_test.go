// Tests for the unified Collective API: equivalence with the legacy
// per-kind entry points on the paper platforms, error paths, context
// cancellation, and the Spec/Scenario/Report serialization formats.
package steadystate_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/big"
	"reflect"
	"sync"
	"testing"

	steadystate "repro"
)

// TestErrUnsolvableTagging: problem-level failures — invalid specs,
// impossible instances — are tagged ErrUnsolvable for errors.Is without
// changing their messages, so callers (the serving layer) can separate
// client faults from solver faults.
func TestErrUnsolvableTagging(t *testing.T) {
	p := steadystate.NewPlatform()
	a := p.AddNode("a", steadystate.R(1, 1))
	b := p.AddNode("b", steadystate.R(1, 1)) // no link a→b: unreachable

	_, err := steadystate.Solve(context.Background(), p, steadystate.ScatterSpec(a, b))
	if !errors.Is(err, steadystate.ErrUnsolvable) {
		t.Fatalf("unreachable target: err %v is not tagged ErrUnsolvable", err)
	}
	if want := "scatter: target b unreachable from source a"; err.Error() != want {
		t.Fatalf("tagging changed the message: got %q want %q", err.Error(), want)
	}

	_, err = steadystate.Solve(context.Background(), p, steadystate.Spec{Kind: "raffle"})
	if !errors.Is(err, steadystate.ErrUnsolvable) {
		t.Fatalf("unknown kind: err %v is not tagged ErrUnsolvable", err)
	}

	p.AddLink(a, b, steadystate.R(1, 2))
	if _, err := steadystate.Solve(context.Background(), p, steadystate.ScatterSpec(a, b)); err != nil {
		t.Fatalf("solvable scenario errored: %v", err)
	}
}

func ratEq(t *testing.T, got steadystate.Rat, want string, what string) {
	t.Helper()
	if got.RatString() != want {
		t.Errorf("%s = %s, want %s", what, got.RatString(), want)
	}
}

// TestSolveEquivalenceFig2Scatter: the unified entry point and the legacy
// wrapper must produce bit-exact identical throughputs on the paper's
// Figure 2 scatter.
func TestSolveEquivalenceFig2Scatter(t *testing.T) {
	p, src, targets := steadystate.PaperFig2()
	sol, err := steadystate.Solve(context.Background(), p, steadystate.ScatterSpec(src, targets...))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	legacy, err := steadystate.SolveScatter(p, src, targets)
	if err != nil {
		t.Fatalf("SolveScatter: %v", err)
	}
	ratEq(t, sol.Throughput(), "1/2", "Solve fig2 TP")
	if sol.Throughput().Cmp(legacy.Throughput()) != 0 {
		t.Errorf("Solve TP %s != SolveScatter TP %s",
			sol.Throughput().RatString(), legacy.Throughput().RatString())
	}
	if sol.Period().Cmp(legacy.Period()) != 0 {
		t.Errorf("Solve period %s != legacy period %s", sol.Period(), legacy.Period())
	}
	if sol.Kind() != steadystate.KindScatter {
		t.Errorf("Kind = %q", sol.Kind())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if _, ok := sol.Unwrap().(*steadystate.ScatterSolution); !ok {
		t.Errorf("Unwrap returned %T", sol.Unwrap())
	}
}

// TestSolveEquivalenceFig6ReduceAndPrefix checks the reduce and prefix
// kinds on the Figure 6 triangle.
func TestSolveEquivalenceFig6ReduceAndPrefix(t *testing.T) {
	p, order, target := steadystate.PaperFig6()
	rsol, err := steadystate.Solve(context.Background(), p, steadystate.ReduceSpec(order, target))
	if err != nil {
		t.Fatalf("Solve reduce: %v", err)
	}
	legacy, err := steadystate.SolveReduce(p, order, target)
	if err != nil {
		t.Fatalf("SolveReduce: %v", err)
	}
	ratEq(t, rsol.Throughput(), "1", "Solve fig6 reduce TP")
	if rsol.Throughput().Cmp(legacy.Throughput()) != 0 {
		t.Error("reduce throughput mismatch between Solve and SolveReduce")
	}

	psol, err := steadystate.Solve(context.Background(), p, steadystate.PrefixSpec(order...))
	if err != nil {
		t.Fatalf("Solve prefix: %v", err)
	}
	plegacy, err := steadystate.SolvePrefix(p, order)
	if err != nil {
		t.Fatalf("SolvePrefix: %v", err)
	}
	if psol.Throughput().Cmp(plegacy.Throughput()) != 0 {
		t.Errorf("prefix throughput mismatch: %s vs %s",
			psol.Throughput().RatString(), plegacy.Throughput().RatString())
	}
}

// TestSolveEquivalenceFig9Reduce runs the headline Tiers experiment
// through both paths: Solve + WithMessageSize versus the legacy
// problem-level customization.
func TestSolveEquivalenceFig9Reduce(t *testing.T) {
	p, order, target := steadystate.PaperFig9()
	size := steadystate.PaperFig9MessageSize()

	sol, err := steadystate.Solve(context.Background(), p,
		steadystate.ReduceSpec(order, target), steadystate.WithMessageSize(size))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}

	pr, err := steadystate.NewReduceProblem(p, order, target)
	if err != nil {
		t.Fatalf("NewReduceProblem: %v", err)
	}
	pr.SizeOf = func(steadystate.ReduceRange) steadystate.Rat { return size }
	legacy, err := pr.Solve()
	if err != nil {
		t.Fatalf("legacy solve: %v", err)
	}

	if sol.Throughput().Cmp(legacy.Throughput()) != 0 {
		t.Errorf("fig9 TP mismatch: Solve %s vs legacy %s",
			sol.Throughput().RatString(), legacy.Throughput().RatString())
	}
	if sol.Period().Cmp(legacy.Period()) != 0 {
		t.Errorf("fig9 period mismatch: %s vs %s", sol.Period(), legacy.Period())
	}
}

// TestSolveEquivalenceGossip checks gossip through both paths on a ring.
func TestSolveEquivalenceGossip(t *testing.T) {
	p := steadystate.Ring(4, steadystate.R(1, 2), steadystate.R(1, 1))
	var nodes []steadystate.NodeID
	for _, n := range p.Nodes() {
		nodes = append(nodes, n.ID)
	}
	sol, err := steadystate.Solve(context.Background(), p, steadystate.GossipSpec(nodes, nodes))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	legacy, err := steadystate.SolveGossip(p, nodes, nodes)
	if err != nil {
		t.Fatalf("SolveGossip: %v", err)
	}
	if sol.Throughput().Cmp(legacy.Throughput()) != 0 {
		t.Errorf("gossip TP mismatch: %s vs %s",
			sol.Throughput().RatString(), legacy.Throughput().RatString())
	}
	if sol.Throughput().Sign() <= 0 {
		t.Error("gossip TP must be positive")
	}
}

// TestSolveGatherEquivalence checks the gather kind against the legacy
// gather problem constructor.
func TestSolveGatherEquivalence(t *testing.T) {
	p := steadystate.Chain(3, steadystate.R(1, 2), steadystate.R(1, 1))
	order := p.Participants()
	block := steadystate.R(2, 1)

	sol, err := steadystate.Solve(context.Background(), p,
		steadystate.GatherSpec(order, order[0]), steadystate.WithBlockSize(block))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	pr, err := steadystate.NewGatherProblem(p, order, order[0], block)
	if err != nil {
		t.Fatalf("NewGatherProblem: %v", err)
	}
	legacy, err := pr.Solve()
	if err != nil {
		t.Fatalf("legacy solve: %v", err)
	}
	if sol.Throughput().Cmp(legacy.Throughput()) != 0 {
		t.Errorf("gather TP mismatch: %s vs %s",
			sol.Throughput().RatString(), legacy.Throughput().RatString())
	}
	if sol.Kind() != steadystate.KindGather {
		t.Errorf("Kind = %q", sol.Kind())
	}
}

// TestSolutionUniformSurface exercises Schedule/SimModel/Report on every
// kind that supports them and keeps the one genuinely unsupported surface
// (prefix Schedule) pinned on the ErrUnsupported path.
func TestSolutionUniformSurface(t *testing.T) {
	ctx := context.Background()
	p, src, targets := steadystate.PaperFig2()
	p6, order, target := steadystate.PaperFig6()

	solve := func(p *steadystate.Platform, spec steadystate.Spec) steadystate.Solution {
		t.Helper()
		sol, err := steadystate.Solve(ctx, p, spec)
		if err != nil {
			t.Fatalf("Solve %s: %v", spec.Kind, err)
		}
		return sol
	}

	for _, sol := range []steadystate.Solution{
		solve(p, steadystate.ScatterSpec(src, targets...)),
		solve(p6, steadystate.ReduceSpec(order, target)),
		solve(p6, steadystate.GossipSpec(order, order)),
	} {
		sched, err := sol.Schedule()
		if err != nil {
			t.Fatalf("%s Schedule: %v", sol.Kind(), err)
		}
		if err := sched.Verify(); err != nil {
			t.Errorf("%s schedule invalid: %v", sol.Kind(), err)
		}
		m, err := sol.SimModel()
		if err != nil {
			t.Fatalf("%s SimModel: %v", sol.Kind(), err)
		}
		res, err := steadystate.Simulate(m, 50)
		if err != nil {
			t.Fatalf("%s Simulate: %v", sol.Kind(), err)
		}
		if res.MinDelivered().Sign() <= 0 {
			t.Errorf("%s simulation delivered nothing", sol.Kind())
		}
		rep, err := sol.Report()
		if err != nil {
			t.Fatalf("%s Report: %v", sol.Kind(), err)
		}
		if rep.Throughput != sol.Throughput().RatString() || rep.Kind != sol.Kind() {
			t.Errorf("%s report out of sync: %+v", sol.Kind(), rep)
		}
	}

	psol := solve(p6, steadystate.PrefixSpec(order...))
	if _, err := psol.Schedule(); !errors.Is(err, steadystate.ErrUnsupported) {
		t.Errorf("prefix Schedule error = %v, want ErrUnsupported", err)
	}
	pm, err := psol.SimModel()
	if err != nil {
		t.Fatalf("prefix SimModel: %v", err)
	}
	pres, err := steadystate.Simulate(pm, 50)
	if err != nil {
		t.Fatalf("prefix Simulate: %v", err)
	}
	if pres.MinDelivered().Sign() <= 0 {
		t.Error("prefix simulation delivered nothing")
	}
	// Lemma 1: no rank may deliver more than TP·K prefixes.
	k := new(big.Int).Mul(big.NewInt(50), pm.Period)
	bound := new(big.Rat).Mul(psol.Throughput(), new(big.Rat).SetInt(k))
	if new(big.Rat).SetInt(pres.MinDelivered()).Cmp(bound) > 0 {
		t.Errorf("prefix delivered %s exceeds bound %s", pres.MinDelivered(), bound.RatString())
	}
	if _, err := psol.Report(); err != nil {
		t.Errorf("prefix Report: %v", err)
	}
}

// TestSolveErrorPaths covers the validation errors of the unified entry
// point.
func TestSolveErrorPaths(t *testing.T) {
	ctx := context.Background()
	p, src, targets := steadystate.PaperFig2()
	p6, order, target := steadystate.PaperFig6()

	cases := []struct {
		name string
		p    *steadystate.Platform
		spec steadystate.Spec
		opts []steadystate.SolveOption
	}{
		{"unknown source id", p, steadystate.ScatterSpec(steadystate.NodeID(99), targets...), nil},
		{"unknown target id", p, steadystate.ScatterSpec(src, steadystate.NodeID(-1)), nil},
		{"empty targets", p, steadystate.ScatterSpec(src), nil},
		{"duplicate targets", p, steadystate.ScatterSpec(src, targets[0], targets[0]), nil},
		{"unknown order id", p6, steadystate.ReduceSpec([]steadystate.NodeID{order[0], 99}, target), nil},
		{"target not in order", p6, steadystate.ReduceSpec(order[:2], order[2]), nil},
		{"unknown kind", p6, steadystate.Spec{Kind: "allteleport", Order: order}, nil},
		{"empty kind", p6, steadystate.Spec{}, nil},
		{"gossip no sources", p6, steadystate.GossipSpec(nil, order), nil},
		{"prefix single participant", p6, steadystate.PrefixSpec(order[0]), nil},
		{"scatter rejects message size", p, steadystate.ScatterSpec(src, targets...),
			[]steadystate.SolveOption{steadystate.WithMessageSize(steadystate.R(2, 1))}},
		{"reduce rejects block size", p6, steadystate.ReduceSpec(order, target),
			[]steadystate.SolveOption{steadystate.WithBlockSize(steadystate.R(2, 1))}},
		{"gather rejects message size", p6, steadystate.GatherSpec(order, target),
			[]steadystate.SolveOption{steadystate.WithMessageSize(steadystate.R(2, 1))}},
		{"prefix rejects fixed period", p6, steadystate.PrefixSpec(order...),
			[]steadystate.SolveOption{steadystate.WithFixedPeriod(big.NewInt(10))}},
	}
	for _, tc := range cases {
		if _, err := steadystate.Solve(ctx, tc.p, tc.spec, tc.opts...); err == nil {
			t.Errorf("%s: Solve succeeded, want error", tc.name)
		}
	}
}

// TestSolveCanceledContext: a canceled context must abort the solve with
// an error wrapping context.Canceled, and a deadline must likewise
// propagate.
func TestSolveCanceledContext(t *testing.T) {
	p, order, target := steadystate.PaperFig9()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := steadystate.Solve(ctx, p, steadystate.ReduceSpec(order, target),
		steadystate.WithMessageSize(steadystate.PaperFig9MessageSize()))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Solve error = %v, want context.Canceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 0)
	defer dcancel()
	_, err = steadystate.Solve(dctx, p, steadystate.ReduceSpec(order, target))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Solve error = %v, want context.DeadlineExceeded", err)
	}
}

// TestSolverSessionConcurrent solves several specs concurrently through
// one session; run under -race this pins the concurrency-safety claim.
func TestSolverSessionConcurrent(t *testing.T) {
	p, order, target := steadystate.PaperFig6()
	solver := steadystate.NewSolver(p)
	specs := []steadystate.Spec{
		steadystate.ReduceSpec(order, target),
		steadystate.PrefixSpec(order...),
		steadystate.GossipSpec(order, order),
		steadystate.ScatterSpec(order[0], order[1], order[2]),
	}
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sol, err := solver.Solve(context.Background(), spec)
			if err == nil && sol.Throughput().Sign() <= 0 {
				err = errors.New("non-positive throughput")
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("spec %s: %v", specs[i].Kind, err)
		}
	}
}

// TestSolverSessionMatchesColdSolves: a session's results must be
// bit-identical to one-shot solves.
func TestSolverSessionMatchesColdSolves(t *testing.T) {
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(23))
	parts := p.Participants()
	solver := steadystate.NewSolver(p)
	for i := 0; i < 3; i++ {
		spec := steadystate.ScatterSpec(parts[i], parts[i+1], parts[i+2])
		warm, err := solver.Solve(context.Background(), spec)
		if err != nil {
			t.Fatalf("session solve %d: %v", i, err)
		}
		cold, err := steadystate.Solve(context.Background(),
			steadystate.Tiers(steadystate.DefaultTiersConfig(23)), spec)
		if err != nil {
			t.Fatalf("cold solve %d: %v", i, err)
		}
		if warm.Throughput().Cmp(cold.Throughput()) != 0 {
			t.Errorf("solve %d: session TP %s != cold TP %s",
				i, warm.Throughput().RatString(), cold.Throughput().RatString())
		}
	}
}

// TestSpecJSONRoundTrip serializes every kind of spec and checks the
// round trip, including node id 0 in scalar roles.
func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []steadystate.Spec{
		steadystate.ScatterSpec(0, 1, 2),
		steadystate.GossipSpec([]steadystate.NodeID{0, 1}, []steadystate.NodeID{2, 3}),
		steadystate.ReduceSpec([]steadystate.NodeID{0, 1, 2}, 0),
		steadystate.GatherSpec([]steadystate.NodeID{2, 1, 0}, 2),
		steadystate.PrefixSpec(0, 1, 2),
	}
	for _, spec := range specs {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Kind, err)
		}
		var back steadystate.Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", spec.Kind, err)
		}
		if back.Kind != spec.Kind || back.Source != spec.Source || back.Target != spec.Target ||
			len(back.Sources) != len(spec.Sources) || len(back.Targets) != len(spec.Targets) ||
			len(back.Order) != len(spec.Order) {
			t.Errorf("%s: round trip changed spec: %+v vs %+v", spec.Kind, back, spec)
		}
	}
	if _, err := json.Marshal(steadystate.Spec{Kind: "bogus"}); err == nil {
		t.Error("marshal of unknown kind should fail")
	}
}

// TestScenarioRoundTrip: a platform+spec scenario file must survive JSON
// and still solve to the identical throughput.
func TestScenarioRoundTrip(t *testing.T) {
	p, order, target := steadystate.PaperFig6()
	sc := &steadystate.Scenario{Platform: p, Spec: steadystate.ReduceSpec(order, target)}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back steadystate.Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	sol, err := back.Solve(context.Background())
	if err != nil {
		t.Fatalf("solve round-tripped scenario: %v", err)
	}
	ratEq(t, sol.Throughput(), "1", "round-tripped fig6 TP")

	if err := json.Unmarshal([]byte(`{"spec":{"kind":"scatter"}}`), &back); err == nil {
		t.Error("scenario without platform should fail to parse")
	}
}

// TestFixedPeriodOption: WithFixedPeriod shapes the schedule and the
// report.
func TestFixedPeriodOption(t *testing.T) {
	p, order, target := steadystate.PaperFig6()
	sol, err := steadystate.Solve(context.Background(), p,
		steadystate.ReduceSpec(order, target), steadystate.WithFixedPeriod(big.NewInt(30)))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	sched, err := sol.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("fixed-period schedule invalid: %v", err)
	}
	rep, err := sol.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if rep.FixedPeriod != "30" || rep.FixedThroughput == "" || rep.FixedLoss == "" {
		t.Errorf("report missing fixed-period fields: %+v", rep)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report marshal: %v", err)
	}
	var back steadystate.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, *rep) {
		t.Errorf("report round trip changed: %+v vs %+v", back, *rep)
	}
}

// TestCertificateMatchesLegacyTreeExtraction: the Certified surface must
// agree with the legacy Integerize/ExtractTrees path.
func TestCertificateMatchesLegacyTreeExtraction(t *testing.T) {
	p, order, target := steadystate.PaperFig6()
	sol, err := steadystate.Solve(context.Background(), p, steadystate.ReduceSpec(order, target))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	app, trees, err := sol.(steadystate.Certified).Certificate()
	if err != nil {
		t.Fatalf("Certificate: %v", err)
	}
	if err := steadystate.VerifyTreeDecomposition(app, trees); err != nil {
		t.Errorf("certificate decomposition invalid: %v", err)
	}
}
