// Integration tests: end-to-end sweeps over seeded random platforms,
// cross-checking every layer against every other — LP against independent
// constraint verification, LP against baselines (optimality), schedules
// against slot invariants, tree families against Theorem 1, and the
// dynamic protocol against the Lemma-1 bound.
package steadystate_test

import (
	"math/big"
	"testing"

	steadystate "repro"
	"repro/internal/topology"
)

// randomPlatforms yields a handful of seeded heterogeneous platforms.
func randomPlatforms(t testing.TB) []*steadystate.Platform {
	t.Helper()
	var out []*steadystate.Platform
	for seed := int64(1); seed <= 4; seed++ {
		out = append(out, topology.RandomConnected(8, 0.6, topology.DefaultRandomConfig(seed)))
	}
	out = append(out, steadystate.Tiers(steadystate.DefaultTiersConfig(99)))
	return out
}

func TestIntegrationScatterSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	for i, p := range randomPlatforms(t) {
		parts := p.Participants()
		src := parts[0]
		targets := parts[1:]

		sol, err := steadystate.SolveScatter(p, src, targets)
		if err != nil {
			t.Fatalf("platform %d: solve: %v", i, err)
		}
		if err := sol.Verify(); err != nil {
			t.Errorf("platform %d: verify: %v", i, err)
		}
		if sol.Throughput().Sign() <= 0 {
			t.Errorf("platform %d: non-positive TP", i)
			continue
		}

		// Optimality: never below the single-path baseline.
		base, err := steadystate.SinglePathScatter(p, src, targets)
		if err != nil {
			t.Fatalf("platform %d: baseline: %v", i, err)
		}
		if sol.Throughput().Cmp(base.Throughput) < 0 {
			t.Errorf("platform %d: LP %s below baseline %s",
				i, sol.Throughput().RatString(), base.Throughput.RatString())
		}

		// Schedule construction and invariants.
		sched, err := steadystate.ScatterSchedule(sol)
		if err != nil {
			t.Fatalf("platform %d: schedule: %v", i, err)
		}
		if err := sched.Verify(); err != nil {
			t.Errorf("platform %d: schedule verify: %v", i, err)
		}

		// Dynamic protocol: ratio within (0, 1].
		m := steadystate.ScatterSimModel(sol)
		res, err := steadystate.Simulate(m, 300)
		if err != nil {
			t.Fatalf("platform %d: simulate: %v", i, err)
		}
		k := new(big.Int).Mul(big.NewInt(300), m.Period)
		bound := new(big.Rat).Mul(sol.Throughput(), new(big.Rat).SetInt(k))
		delivered := new(big.Rat).SetInt(res.MinDelivered())
		if delivered.Cmp(bound) > 0 {
			t.Errorf("platform %d: simulation beats Lemma-1 bound", i)
		}
		ratio := new(big.Rat).Quo(delivered, bound)
		if ratio.Cmp(big.NewRat(9, 10)) < 0 {
			t.Errorf("platform %d: ratio %s < 0.9 after 300 periods", i, ratio.RatString())
		}
	}
}

func TestIntegrationReduceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	for i, p := range randomPlatforms(t) {
		parts := p.Participants()
		// Keep the LP small: 4 participants.
		order := parts[:4]
		target := order[0]

		pr, err := steadystate.NewReduceProblem(p, order, target)
		if err != nil {
			t.Fatalf("platform %d: problem: %v", i, err)
		}
		sol, err := pr.Solve()
		if err != nil {
			t.Fatalf("platform %d: solve: %v", i, err)
		}
		if err := sol.Verify(); err != nil {
			t.Errorf("platform %d: verify: %v", i, err)
		}

		// Optimality versus both fixed-tree baselines.
		for name, build := range map[string]func(*steadystate.ReduceProblem) (*steadystate.BaselineReduce, error){
			"flat":   steadystate.FlatReduceTree,
			"binary": steadystate.BinaryReduceTree,
		} {
			base, err := build(pr)
			if err != nil {
				t.Fatalf("platform %d: %s baseline: %v", i, name, err)
			}
			if sol.Throughput().Cmp(base.Throughput) < 0 {
				t.Errorf("platform %d: LP %s below %s baseline %s",
					i, sol.Throughput().RatString(), name, base.Throughput.RatString())
			}
		}

		// Theorem 1 end to end.
		app := sol.Integerize()
		trees, err := app.ExtractTrees()
		if err != nil {
			t.Fatalf("platform %d: trees: %v", i, err)
		}
		if err := steadystate.VerifyTreeDecomposition(app, trees); err != nil {
			t.Errorf("platform %d: decomposition: %v", i, err)
		}
		for j, tree := range trees {
			if err := tree.Validate(pr); err != nil {
				t.Errorf("platform %d tree %d: %v", i, j, err)
			}
		}
		n := len(order)
		if len(trees) > 2*n*n*n*n {
			t.Errorf("platform %d: %d trees exceeds 2n⁴", i, len(trees))
		}

		// Schedule from the family.
		sched, err := steadystate.ReduceSchedule(app, trees, nil)
		if err != nil {
			t.Fatalf("platform %d: schedule: %v", i, err)
		}
		if err := sched.Verify(); err != nil {
			t.Errorf("platform %d: schedule verify: %v", i, err)
		}

		// Fixed-period plans stay within the Proposition-4 bound.
		for _, fixed := range []int64{7, 50} {
			plan, err := steadystate.ApproximateFixedPeriod(app, trees, big.NewInt(fixed))
			if err != nil {
				t.Fatalf("platform %d: fixed %d: %v", i, fixed, err)
			}
			bound := big.NewRat(int64(len(trees)), fixed)
			if plan.Loss.Cmp(bound) > 0 {
				t.Errorf("platform %d: loss exceeds bound at T=%d", i, fixed)
			}
		}
	}
}

func TestIntegrationGossipSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	for i, p := range randomPlatforms(t) {
		parts := p.Participants()
		sources := parts[:2]
		targets := parts[len(parts)-2:]
		sol, err := steadystate.SolveGossip(p, sources, targets)
		if err != nil {
			t.Fatalf("platform %d: solve: %v", i, err)
		}
		if err := sol.Verify(); err != nil {
			t.Errorf("platform %d: verify: %v", i, err)
		}
		sched, err := steadystate.GossipSchedule(sol)
		if err != nil {
			t.Fatalf("platform %d: schedule: %v", i, err)
		}
		if err := sched.Verify(); err != nil {
			t.Errorf("platform %d: schedule verify: %v", i, err)
		}
	}
}

// TestIntegrationScatterSubsetMonotonicity: adding targets can only slow
// the uniform throughput down (more work per operation).
func TestIntegrationScatterSubsetMonotonicity(t *testing.T) {
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(41))
	parts := p.Participants()
	src := parts[0]
	prev := steadystate.Rat(nil)
	for k := 2; k <= len(parts); k++ {
		sol, err := steadystate.SolveScatter(p, src, parts[1:k])
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if prev != nil && sol.Throughput().Cmp(prev) > 0 {
			t.Errorf("k=%d: TP %s increased from %s with more targets",
				k, sol.Throughput().RatString(), prev.RatString())
		}
		prev = sol.Throughput()
	}
}

// TestIntegrationReduceParticipantMonotonicity: adding participants to a
// reduce can only slow it down on a fixed platform.
func TestIntegrationReduceParticipantMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	p := steadystate.Chain(5, steadystate.R(1, 2), steadystate.R(2, 1))
	var all []steadystate.NodeID
	for _, n := range p.Nodes() {
		all = append(all, n.ID)
	}
	prev := steadystate.Rat(nil)
	for k := 2; k <= len(all); k++ {
		sol, err := steadystate.SolveReduce(p, all[:k], all[0])
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if prev != nil && sol.Throughput().Cmp(prev) > 0 {
			t.Errorf("k=%d: TP %s increased from %s with more participants",
				k, sol.Throughput().RatString(), prev.RatString())
		}
		prev = sol.Throughput()
	}
}
