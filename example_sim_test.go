package steadystate_test

import (
	"context"
	"fmt"

	steadystate "repro"
)

// ExampleSolve_compositeReplay solves a reduce-scatter on the paper's
// Figure 6 platform and replays the merged protocol: every member rides
// the shared one-port budget under its own commodity namespace, and each
// delivers just under its Lemma-1 bound TP·K while the pipeline fills.
func ExampleSolve_compositeReplay() {
	p, order, _ := steadystate.PaperFig6()
	sol, err := steadystate.Solve(context.Background(), p, steadystate.ReduceScatterSpec(order...))
	if err != nil {
		panic(err)
	}
	model, err := sol.SimModel()
	if err != nil {
		panic(err)
	}
	const periods = 50
	res, err := steadystate.Simulate(model, periods)
	if err != nil {
		panic(err)
	}
	fmt.Printf("replayed %d periods of %s time units (init ends period %d)\n",
		periods, model.Period, res.FirstFullPeriod)
	for i, member := range sol.(steadystate.Concurrent).Members() {
		fmt.Printf("member op%d (%s): delivered %s of %d segments\n",
			i, member.Kind(),
			res.MinDeliveredPrefix(steadystate.SimMemberPrefix(i)), periods)
	}
	// Output:
	// replayed 50 periods of 4 time units (init ends period 1)
	// member op0 (reduce): delivered 50 of 50 segments
	// member op1 (reduce): delivered 49 of 50 segments
	// member op2 (reduce): delivered 49 of 50 segments
}
