// Reduce on the paper's Tiers platform: the headline experiment of the
// paper (Figures 9–12). Solves the steady-state reduce LP on the 14-node
// hierarchical platform, extracts the certificate reduction trees,
// compares against fixed-tree baselines, truncates to a practical period,
// and simulates the protocol.
//
// Run with: go run ./examples/reducetiers
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"

	steadystate "repro"
)

func main() {
	p, order, target := steadystate.PaperFig9()
	fmt.Printf("platform: %d nodes (%d routers), %d links; target %s\n",
		p.NumNodes(), p.NumNodes()-len(order), p.NumEdges()/2, p.Node(target).Name)
	fmt.Print("participants (reduction order): ")
	for i, id := range order {
		if i > 0 {
			fmt.Print(" ⊕ ")
		}
		fmt.Print(p.Node(id).Name)
	}
	fmt.Println()

	// The unified entry point: a reduce spec plus the paper's message
	// size, solved with a fixed period 100 for the deployment plan.
	sol, err := steadystate.Solve(context.Background(), p,
		steadystate.ReduceSpec(order, target),
		steadystate.WithMessageSize(steadystate.PaperFig9MessageSize()),
		steadystate.WithFixedPeriod(big.NewInt(100)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal steady-state throughput: TP = %s reduces per time unit\n",
		sol.Throughput().RatString())
	fmt.Printf("(the paper reports 2/9 on its original random bandwidths)\n")

	// Fixed single-tree baselines for contrast, on the same sized problem.
	pr := sol.Unwrap().(*steadystate.ReduceSolution).Problem
	flat, err := steadystate.FlatReduceTree(pr)
	if err != nil {
		log.Fatal(err)
	}
	bin, err := steadystate.BinaryReduceTree(pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaselines: flat tree %s, binary tree %s — the LP mixes trees and wins\n",
		flat.Throughput.RatString(), bin.Throughput.RatString())

	// Tree extraction (Theorem 1): a compact certificate of the schedule.
	app, trees, err := sol.(steadystate.Certified).Certificate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d reduction trees cover all %s operations of the period %s:\n",
		len(trees), app.Ops.String(), app.Period.String())
	for i, tr := range trees {
		fmt.Printf("--- tree %d (weight %s) ---\n%s", i+1, tr.Weight.String(), tr.String(pr))
	}

	// A deployment would use a small fixed period (Section 4.6); the
	// report carries the truncated throughput and its loss.
	rep, err := sol.Report()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed period %s: throughput %s (loss %s, bounded by %d/100)\n",
		rep.FixedPeriod, rep.FixedThroughput, rep.FixedLoss, len(trees))

	// Simulate the pipelined protocol.
	model, err := sol.SimModel()
	if err != nil {
		log.Fatal(err)
	}
	res, err := steadystate.Simulate(model, 500)
	if err != nil {
		log.Fatal(err)
	}
	k := new(big.Int).Mul(big.NewInt(500), app.Period)
	bound := new(big.Rat).Mul(sol.Throughput(), new(big.Rat).SetInt(k))
	ratio, _ := new(big.Rat).Quo(new(big.Rat).SetInt(res.MinDelivered()), bound).Float64()
	fmt.Printf("\nsimulated 500 periods: %s results delivered (%.2f%% of the TP·K bound)\n",
		res.MinDelivered(), 100*ratio)
}
