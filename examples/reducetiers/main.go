// Reduce on the paper's Tiers platform: the headline experiment of the
// paper (Figures 9–12). Solves the steady-state reduce LP on the 14-node
// hierarchical platform, extracts the certificate reduction trees,
// compares against fixed-tree baselines, truncates to a practical period,
// and simulates the protocol.
//
// Run with: go run ./examples/reducetiers
package main

import (
	"fmt"
	"log"
	"math/big"

	steadystate "repro"
)

func main() {
	p, order, target := steadystate.PaperFig9()
	fmt.Printf("platform: %d nodes (%d routers), %d links; target %s\n",
		p.NumNodes(), p.NumNodes()-len(order), p.NumEdges()/2, p.Node(target).Name)
	fmt.Print("participants (reduction order): ")
	for i, id := range order {
		if i > 0 {
			fmt.Print(" ⊕ ")
		}
		fmt.Print(p.Node(id).Name)
	}
	fmt.Println()

	pr, err := steadystate.NewReduceProblem(p, order, target)
	if err != nil {
		log.Fatal(err)
	}
	size := steadystate.PaperFig9MessageSize()
	pr.SizeOf = func(steadystate.ReduceRange) steadystate.Rat { return size }

	sol, err := pr.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal steady-state throughput: TP = %s reduces per time unit\n",
		sol.Throughput().RatString())
	fmt.Printf("(the paper reports 2/9 on its original random bandwidths)\n")

	// Fixed single-tree baselines for contrast.
	flat, err := steadystate.FlatReduceTree(pr)
	if err != nil {
		log.Fatal(err)
	}
	bin, err := steadystate.BinaryReduceTree(pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaselines: flat tree %s, binary tree %s — the LP mixes trees and wins\n",
		flat.Throughput.RatString(), bin.Throughput.RatString())

	// Tree extraction (Theorem 1): a compact certificate of the schedule.
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d reduction trees cover all %s operations of the period %s:\n",
		len(trees), app.Ops.String(), app.Period.String())
	for i, tr := range trees {
		fmt.Printf("--- tree %d (weight %s) ---\n%s", i+1, tr.Weight.String(), tr.String(pr))
	}

	// A deployment would use a small fixed period (Section 4.6).
	plan, err := steadystate.ApproximateFixedPeriod(app, trees, big.NewInt(100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed period 100: throughput %s (loss %s, bounded by %d/100)\n",
		plan.Throughput.RatString(), plan.Loss.RatString(), len(trees))

	// Simulate the pipelined protocol.
	res, err := steadystate.Simulate(steadystate.ReduceSimModel(app), 500)
	if err != nil {
		log.Fatal(err)
	}
	k := new(big.Int).Mul(big.NewInt(500), app.Period)
	bound := new(big.Rat).Mul(sol.Throughput(), new(big.Rat).SetInt(k))
	ratio, _ := new(big.Rat).Quo(new(big.Rat).SetInt(res.MinDelivered()), bound).Float64()
	fmt.Printf("\nsimulated 500 periods: %s results delivered (%.2f%% of the TP·K bound)\n",
		res.MinDelivered(), 100*ratio)
}
