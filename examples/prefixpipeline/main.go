// Parallel prefix on a processor chain: the extension the paper's
// conclusion proposes. Every rank i must obtain v[0,i] = v_0 ⊕ … ⊕ v_i per
// pipelined operation — the pattern behind pipelined prefix sums, scan
// primitives and rank-ordered aggregation.
//
// Run with: go run ./examples/prefixpipeline
package main

import (
	"context"
	"fmt"
	"log"

	steadystate "repro"
)

func main() {
	// A chain of four processors with a fast shortcut from rank 0 to
	// rank 3, heterogeneous speeds.
	p := steadystate.NewPlatform()
	var order []steadystate.NodeID
	speeds := []int64{4, 1, 2, 1}
	for i, s := range speeds {
		order = append(order, p.AddNode(fmt.Sprintf("rank%d", i), steadystate.R(s, 1)))
	}
	p.AddLink(order[0], order[1], steadystate.R(1, 2))
	p.AddLink(order[1], order[2], steadystate.R(1, 2))
	p.AddLink(order[2], order[3], steadystate.R(1, 2))
	p.AddLink(order[0], order[3], steadystate.R(1, 4)) // shortcut

	sol, err := steadystate.Solve(context.Background(), p, steadystate.PrefixSpec(order...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady-state parallel prefix: TP = %s operations per time unit\n\n",
		sol.Throughput().RatString())
	fmt.Print(sol.String())

	if err := sol.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	// Compare with a plain reduce to rank 3 on the same platform: the
	// prefix delivers N+1 results per operation, so it can only be
	// slower.
	rsol, err := steadystate.Solve(context.Background(), p,
		steadystate.ReduceSpec(order, order[len(order)-1]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor contrast, a plain reduce to rank3 achieves TP = %s —\n"+
		"the prefix pays for delivering every intermediate v[0,i] as well\n",
		rsol.Throughput().RatString())
}
