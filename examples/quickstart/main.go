// Quickstart: compute the optimal steady-state scatter throughput on a
// small heterogeneous platform, build the concrete periodic schedule, and
// simulate the buffered protocol to watch the throughput converge to the
// optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"

	steadystate "repro"
)

func main() {
	// A master node feeding two workers through a shared relay, plus a
	// direct slow link to worker B — the kind of bandwidth asymmetry that
	// makes single-route scatters leave throughput on the table.
	p := steadystate.NewPlatform()
	master := p.AddNode("master", steadystate.R(1, 1))
	relay := p.AddRouter("relay")
	workerA := p.AddNode("workerA", steadystate.R(1, 1))
	workerB := p.AddNode("workerB", steadystate.R(1, 1))
	p.AddEdge(master, relay, steadystate.R(1, 2))   // fast uplink
	p.AddEdge(relay, workerA, steadystate.R(1, 1))  // unit link
	p.AddEdge(relay, workerB, steadystate.R(3, 2))  // slow link
	p.AddEdge(master, workerB, steadystate.R(2, 1)) // slow direct link

	// One entry point for every collective: describe the operation with a
	// Spec and Solve it. The context can carry a deadline to bound the
	// exact LP solve.
	sol, err := steadystate.Solve(context.Background(), p,
		steadystate.ScatterSpec(master, workerA, workerB))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal steady-state throughput: %s scatters per time unit\n\n",
		sol.Throughput().RatString())
	fmt.Print(sol.String())

	// The concrete periodic schedule: slots of simultaneous transfers,
	// none violating the one-port model.
	sched, err := sol.Schedule()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperiodic schedule:\n%s", sched.Gantt())

	// Simulate the Section 3.4 protocol: buffers fill during the first
	// periods, then every period completes TP·T operations.
	model, err := sol.SimModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprotocol simulation (period = %s time units):\n", model.Period.String())
	for _, periods := range []int{10, 100, 1000} {
		res, err := steadystate.Simulate(model, periods)
		if err != nil {
			log.Fatal(err)
		}
		k := new(big.Int).Mul(big.NewInt(int64(periods)), model.Period)
		bound := new(big.Rat).Mul(sol.Throughput(), new(big.Rat).SetInt(k))
		ratio, _ := new(big.Rat).Quo(new(big.Rat).SetInt(res.MinDelivered()), bound).Float64()
		fmt.Printf("  %5d periods: %8s ops delivered of %9s optimal — ratio %.4f\n",
			periods, res.MinDelivered(), bound.RatString(), ratio)
	}
	fmt.Println("\nthe ratio approaches 1: the periodic schedule is asymptotically optimal (Proposition 1)")
}
