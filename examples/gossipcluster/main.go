// Personalized all-to-all (gossip) between two clusters: the data-parallel
// redistribution pattern the paper's introduction motivates — e.g. a 2-D
// block-cyclic matrix moving between two groups of processors.
//
// The two clusters are joined by three parallel "bridge" links. A fixed
// single-route plan funnels all cross-cluster traffic through whichever
// bridge the routing table picked; the steady-state LP spreads the load
// over all bridges and multiplies the throughput.
//
// Run with: go run ./examples/gossipcluster
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"

	steadystate "repro"
)

// buildPlatform makes two 3-node cliques (intra-cluster links cost 1/10)
// joined by bridges a_i — b_i (cost 1/2) for the given bridge indices.
func buildPlatform(bridges []int) (*steadystate.Platform, []steadystate.NodeID) {
	p := steadystate.NewPlatform()
	var as, bs []steadystate.NodeID
	for i := 0; i < 3; i++ {
		as = append(as, p.AddNode(fmt.Sprintf("a%d", i), steadystate.R(1, 1)))
		bs = append(bs, p.AddNode(fmt.Sprintf("b%d", i), steadystate.R(1, 1)))
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			p.AddLink(as[i], as[j], steadystate.R(1, 10))
			p.AddLink(bs[i], bs[j], steadystate.R(1, 10))
		}
	}
	for _, i := range bridges {
		p.AddLink(as[i], bs[i], steadystate.R(1, 2))
	}
	return p, append(as, bs...)
}

func solveTP(bridges []int) steadystate.Rat {
	p, all := buildPlatform(bridges)
	sol, err := steadystate.Solve(context.Background(), p, steadystate.GossipSpec(all, all))
	if err != nil {
		log.Fatal(err)
	}
	if err := sol.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	return sol.Throughput()
}

func main() {
	p, all := buildPlatform([]int{0, 1, 2})
	sol, err := steadystate.Solve(context.Background(), p, steadystate.GossipSpec(all, all))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bidirectional 6-node gossip, 3 bridges: TP = %s operations per time unit\n",
		sol.Throughput().RatString())
	fmt.Printf("(each operation moves %d distinct blocks, 18 of them cross-cluster)\n\n", 6*5)

	sched, err := sol.Schedule()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d one-port-safe slots per period of %s time units\n\n",
		len(sched.Slots), sched.Period.RatString())

	// The same clusters with a single bridge: every cross-cluster block
	// serializes through one pair of ports.
	oneTP := solveTP([]int{0})
	speedup, _ := new(big.Rat).Quo(sol.Throughput(), oneTP).Float64()
	fmt.Printf("with a single bridge: TP = %s\n", oneTP.RatString())
	fmt.Printf("spreading over all three bridges is %.2fx faster — the gain a\n"+
		"fixed-route all-to-all leaves on the table\n", speedup)
}
