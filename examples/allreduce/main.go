// Allreduce on the paper's Figure 6 triangle: every participant ends up
// with the full reduction v_0 ⊕ v_1 ⊕ v_2. The solver decomposes the
// operation into a reduce-scatter phase (one concurrent reduce per
// segment, segment i delivered to participant i) composed with an
// allgather phase (a gossip redistributing each reduced segment to every
// other rank), superposes all members into one linear program with
// shared one-port and compute rows, and maximizes the common rate at
// which whole allreduce operations complete.
//
// Run with: go run ./examples/allreduce
package main

import (
	"context"
	"fmt"
	"log"

	steadystate "repro"
)

func main() {
	p, order, _ := steadystate.PaperFig6()
	fmt.Printf("platform: %d nodes, %d links\n", p.NumNodes(), p.NumEdges())
	fmt.Print("participants: ")
	for i, id := range order {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(p.Node(id).Name)
	}
	fmt.Println()

	sol, err := steadystate.Solve(context.Background(), p, steadystate.AllreduceSpec(order...))
	if err != nil {
		log.Fatal(err)
	}
	if err := sol.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommon throughput: TP = %s allreduces per time unit\n",
		sol.Throughput().RatString())

	// The members are the decomposition itself: N reduces (the
	// reduce-scatter phase) followed by the allgather gossip, all solved
	// jointly under the shared capacity constraints.
	for i, member := range sol.(steadystate.Concurrent).Members() {
		rep, err := member.Report()
		if err != nil {
			log.Fatal(err)
		}
		switch member.Kind() {
		case steadystate.KindReduce:
			fmt.Printf("phase 1, reduce %d → %s: rate %s\n",
				i, p.Node(member.Spec().Target).Name, rep.Throughput)
		default:
			fmt.Printf("phase 2, allgather (%s): rate %s\n", rep.Kind, rep.Throughput)
		}
	}

	// Contrast with the reduce-scatter phase alone: the allgather rides
	// the same links, so completing whole allreduces costs throughput.
	rs, err := steadystate.Solve(context.Background(), p, steadystate.ReduceScatterSpec(order...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreduce-scatter phase alone: TP = %s\n", rs.Throughput().RatString())

	// The merged schedule interleaves every member's transfers into
	// one-port-safe matching slots over the LCM of the member periods.
	sched, err := sol.Schedule()
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged schedule (period %s, %d slots, busy %s):\n%s",
		sched.Period.RatString(), len(sched.Slots), sched.BusyTime().RatString(), sched.Gantt())
}
