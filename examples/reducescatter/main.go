// Reduce-scatter on the paper's Figure 6 triangle: each participant i
// ends with segment i of the vector reduced over all ranks. The solver
// superposes one reduce per segment — reduce i delivering to participant
// i — into a single linear program whose one-port and compute rows are
// shared, maximizes the common throughput, and merges the members'
// transfers into one one-port-safe periodic schedule.
//
// Run with: go run ./examples/reducescatter
package main

import (
	"context"
	"fmt"
	"log"

	steadystate "repro"
)

func main() {
	p, order, _ := steadystate.PaperFig6()
	fmt.Printf("platform: %d nodes, %d links\n", p.NumNodes(), p.NumEdges())
	fmt.Print("participants: ")
	for i, id := range order {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s (keeps segment %d)", p.Node(id).Name, i)
	}
	fmt.Println()

	sol, err := steadystate.Solve(context.Background(), p, steadystate.ReduceScatterSpec(order...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommon throughput: TP = %s reduce-scatters per time unit\n",
		sol.Throughput().RatString())

	// Each member is a full reduce solution: per-segment throughputs,
	// verifiable constraints, extractable reduction trees.
	for i, member := range sol.(steadystate.Concurrent).Members() {
		rep, err := member.Report()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("segment %d → %s: rate %s, member period %s\n",
			i, p.Node(member.Spec().Target).Name, rep.Throughput, rep.Period)
	}

	// Contrast with a standalone reduce: concurrency costs capacity.
	standalone, err := steadystate.Solve(context.Background(), p,
		steadystate.ReduceSpec(order, order[0]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstandalone reduce to %s alone: TP = %s\n",
		p.Node(order[0]).Name, standalone.Throughput().RatString())

	// The merged schedule: every member's transfers in one slot sequence,
	// each slot a one-port-safe matching.
	sched, err := sol.Schedule()
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged schedule (period %s, %d slots, busy %s):\n%s",
		sched.Period.RatString(), len(sched.Slots), sched.BusyTime().RatString(), sched.Gantt())
}
