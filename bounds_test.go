// Analytic-bound property tests: the LP optimum must always sit between
// the best baseline (lower bound, by optimality) and simple closed-form
// port-capacity bounds (upper bounds, from the one-port model). These
// catch both "LP too low" (missed routes) and "LP too high" (broken
// constraints) regressions on randomized inputs.
package steadystate_test

import (
	"math/big"
	"testing"

	steadystate "repro"
	"repro/internal/topology"
)

// scatterUpperBounds returns the two closed-form bounds for a scatter:
//
//   - source port: each operation pushes one message per target out of the
//     source, so TP · Σ_t min-out-cost ≤ TP · N · c_min_out ≤ 1;
//   - target port: messages for t arrive through t's in-edges, and
//     TP · c_min_in(t) ≤ 1 for every target t.
func scatterUpperBounds(p *steadystate.Platform, source steadystate.NodeID, targets []steadystate.NodeID) []*big.Rat {
	var bounds []*big.Rat
	// Source out-port: N messages per op, each taking at least the
	// cheapest outgoing edge cost.
	minOut := (*big.Rat)(nil)
	for _, e := range p.OutEdges(source) {
		if minOut == nil || e.Cost.Cmp(minOut) < 0 {
			minOut = e.Cost
		}
	}
	if minOut != nil {
		nTargets := big.NewRat(int64(len(targets)), 1)
		bound := new(big.Rat).Inv(new(big.Rat).Mul(nTargets, minOut))
		bounds = append(bounds, bound)
	}
	for _, t := range targets {
		minIn := (*big.Rat)(nil)
		for _, e := range p.InEdges(t) {
			if minIn == nil || e.Cost.Cmp(minIn) < 0 {
				minIn = e.Cost
			}
		}
		if minIn != nil {
			bounds = append(bounds, new(big.Rat).Inv(minIn))
		}
	}
	return bounds
}

func TestScatterRespectsPortBounds(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p := topology.RandomConnected(7, 0.5, topology.DefaultRandomConfig(seed))
		parts := p.Participants()
		src := parts[0]
		targets := parts[1:5]
		sol, err := steadystate.SolveScatter(p, src, targets)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, bound := range scatterUpperBounds(p, src, targets) {
			if sol.Throughput().Cmp(bound) > 0 {
				t.Errorf("seed %d: TP %s exceeds port bound %d (%s)",
					seed, sol.Throughput().RatString(), i, bound.RatString())
			}
		}
	}
}

func TestReduceRespectsTargetBounds(t *testing.T) {
	// Each reduce delivers one final result to the target: either computed
	// there (at least one task of time ≥ min task time) or received (one
	// message of cost ≥ min in-edge cost). TP ≤ 1/min(minTask, minIn).
	for seed := int64(1); seed <= 4; seed++ {
		p := topology.RandomConnected(6, 0.5, topology.DefaultRandomConfig(seed))
		parts := p.Participants()
		order := parts[:3]
		target := order[0]
		pr, err := steadystate.NewReduceProblem(p, order, target)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sol, err := pr.Solve()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		minIn := (*big.Rat)(nil)
		for _, e := range p.InEdges(target) {
			if minIn == nil || e.Cost.Cmp(minIn) < 0 {
				minIn = e.Cost
			}
		}
		minTask := pr.TaskTime(target, steadystate.ReduceTask{K: 0, L: 0, M: 1})
		perOp := minTask
		if minIn != nil && minIn.Cmp(perOp) < 0 {
			perOp = minIn
		}
		bound := new(big.Rat).Inv(perOp)
		if sol.Throughput().Cmp(bound) > 0 {
			t.Errorf("seed %d: TP %s exceeds target bound %s",
				seed, sol.Throughput().RatString(), bound.RatString())
		}
	}
}

func TestGossipBoundedByScatterOfBusiestSource(t *testing.T) {
	// A gossip from S to T delivers |T|-ish streams per source, so its
	// uniform TP can never beat the scatter TP of any single source to the
	// same targets (the scatter is the gossip with all other sources'
	// traffic removed).
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(13))
	parts := p.Participants()
	sources := parts[:3]
	targets := parts[len(parts)-3:]
	gsol, err := steadystate.SolveGossip(p, sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sources {
		var ts []steadystate.NodeID
		for _, tt := range targets {
			if tt != s {
				ts = append(ts, tt)
			}
		}
		ssol, err := steadystate.SolveScatter(p, s, ts)
		if err != nil {
			t.Fatal(err)
		}
		if gsol.Throughput().Cmp(ssol.Throughput()) > 0 {
			t.Errorf("gossip TP %s beats single-source scatter TP %s from %s",
				gsol.Throughput().RatString(), ssol.Throughput().RatString(), p.Node(s).Name)
		}
	}
}

func TestPublicLatencySimulation(t *testing.T) {
	p, src, targets := steadystate.PaperFig2()
	sol, err := steadystate.SolveScatter(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	res, err := steadystate.SimulateLatency(steadystate.ScatterSimModel(sol), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency() < 0 {
		t.Error("negative mean latency")
	}
	if res.MaxLatency < 1 {
		t.Error("relayed scatter should have ≥ 1 period of latency")
	}
	// Delivered totals must match the plain simulator.
	plain, err := steadystate.Simulate(steadystate.ScatterSimModel(sol), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == nil || plain.MinDelivered().Sign() <= 0 {
		t.Fatal("nothing delivered")
	}
}

func TestPublicTopologyWrappers(t *testing.T) {
	if got := steadystate.Chain(3, steadystate.R(1, 1), steadystate.R(1, 1)).NumNodes(); got != 3 {
		t.Errorf("Chain nodes = %d", got)
	}
	if got := steadystate.Ring(4, steadystate.R(1, 1), steadystate.R(1, 1)).NumNodes(); got != 4 {
		t.Errorf("Ring nodes = %d", got)
	}
	if got := steadystate.Grid2D(2, 3, steadystate.R(1, 1), steadystate.R(1, 1)).NumNodes(); got != 6 {
		t.Errorf("Grid2D nodes = %d", got)
	}
	if steadystate.PaperFig9MessageSize().RatString() != "10" {
		t.Error("PaperFig9MessageSize should be 10")
	}
	if _, err := steadystate.ParseRat("zzz"); err == nil {
		t.Error("ParseRat should fail on garbage")
	}
}

func TestPublicGatherProblem(t *testing.T) {
	p := steadystate.Chain(3, steadystate.R(1, 1), steadystate.R(1, 1))
	var order []steadystate.NodeID
	for _, n := range p.Nodes() {
		order = append(order, n.ID)
	}
	pr, err := steadystate.NewGatherProblem(p, order, order[0], steadystate.R(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := pr.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput().RatString() != "1/2" {
		t.Errorf("gather TP = %s, want 1/2", sol.Throughput().RatString())
	}
}
