package steadystate_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	steadystate "repro"
)

// FuzzUnmarshalScenario hardens the Scenario decoder — the parse path
// every sweep job goes through — against hostile input: whatever the
// bytes, Unmarshal must either produce a scenario or return an error,
// never panic. Accepted scenarios must survive a marshal/unmarshal round
// trip bit-identically, so a sweep can re-serialize what it loaded.
func FuzzUnmarshalScenario(f *testing.F) {
	// Real fixtures seed the corpus with structurally valid scenarios.
	for _, name := range []string{
		"sweep/fig6-reduce.json", "sweep/fig9-reduce.json",
		"sweep/tiers42-scatter.json", "sweep/bad-truncated.json",
	} {
		if data, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(data)
		}
	}
	for _, seed := range []string{
		`{}`,
		`null`,
		`{"platform": null}`,
		`{"platform": {}}`,
		`{"platform": {"nodes": [{"name": "a"}, {"name": "a"}]}}`,
		`{"platform": {"nodes": [{"name": "a", "speed": "1/0"}]}}`,
		`{"platform": {"nodes": [{"name":"a"},{"name":"b"}], "edges": [{"from":"a","to":"b","cost":"-1"}]}}`,
		`{"platform": {"nodes": [{"name":"a"}]}, "spec": {"kind": "scatter", "source": 99}}`,
		`{"platform": {"nodes": [{"name":"a"}]}, "spec": {"kind": "composite", "members": [], "weights": ["1/0"]}}`,
		`{"platform": {"nodes": [{"name":"a"}]}, "spec": {"kind": "nope"}}`,
		`{"platform": {"nodes": [{"name":"a"}]}, "spec": 7}`,
		`{"spec": {"kind": "scatter"}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sc steadystate.Scenario
		if err := json.Unmarshal(data, &sc); err != nil {
			return
		}
		if sc.Platform == nil {
			t.Fatalf("accepted scenario has nil platform: %q", data)
		}
		// Round trip: what the decoder accepts, the encoder must
		// reproduce exactly (compact form — writers own indentation).
		out, err := json.Marshal(&sc)
		if err != nil {
			// Unknown spec kinds decode structurally but refuse to
			// re-marshal; that is a documented, non-panicking outcome.
			return
		}
		var sc2 steadystate.Scenario
		if err := json.Unmarshal(out, &sc2); err != nil {
			t.Fatalf("re-marshaled scenario does not re-parse: %v\n%s", err, out)
		}
		out2, err := json.Marshal(&sc2)
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("marshal is not a fixed point:\n%s\nvs\n%s", out, out2)
		}
	})
}
