// Sim-conformance suite: every kind, solved on the paper platforms and the
// seeded Tiers platform, must replay through SimModel with delivered
// counts inside [TP·K − warmup, TP·K] — Lemma 1 as the ceiling and the
// buffered protocol's pipeline-fill bound as the floor, with the warmup
// bounded by the schedule depth. Dense-vs-sparse and warm-vs-cold solves
// must additionally produce byte-identical models (same fingerprint) and
// identical delivered counts, pinning the whole solve→model→replay chain
// as deterministic.
package steadystate_test

import (
	"context"
	"math/big"
	"testing"

	steadystate "repro"
)

// simConformanceCase is one (kind, platform) cell of the suite.
type simConformanceCase struct {
	name    string
	p       *steadystate.Platform
	spec    steadystate.Spec
	periods int
}

// simConformanceCases builds the kind×platform matrix: all eight kinds,
// collectively covering fig2, fig6, fig9 and the seed-42 Tiers platform.
func simConformanceCases(t *testing.T) []simConformanceCase {
	t.Helper()
	p2, src2, targets2 := steadystate.PaperFig2()
	p6, order6, target6 := steadystate.PaperFig6()
	p9, order9, _ := steadystate.PaperFig9()
	tiers := steadystate.Tiers(steadystate.DefaultTiersConfig(42))
	tparts := tiers.Participants()

	return []simConformanceCase{
		{"scatter/fig2", p2, steadystate.ScatterSpec(src2, targets2...), 60},
		{"scatter/fig9", p9, steadystate.ScatterSpec(order9[0], order9[1:]...), 60},
		{"broadcast/fig2", p2, steadystate.BroadcastSpec(src2, targets2...), 60},
		{"broadcast/fig9", p9, steadystate.BroadcastSpec(order9[0], order9[1:]...), 60},
		{"broadcast/tiers42", tiers, steadystate.BroadcastSpec(tparts[0], tparts[1:]...), 60},
		{"gossip/fig6", p6, steadystate.GossipSpec(order6, order6), 60},
		{"reduce/fig6", p6, steadystate.ReduceSpec(order6, target6), 60},
		{"gather/fig6", p6, steadystate.GatherSpec(order6, target6), 60},
		{"prefix/fig6", p6, steadystate.PrefixSpec(order6...), 60},
		{"prefix/tiers42", tiers, steadystate.PrefixSpec(tparts[:3]...), 60},
		{"reducescatter/fig6", p6, steadystate.ReduceScatterSpec(order6...), 60},
		{"allreduce/fig6", p6, steadystate.AllreduceSpec(order6...), 60},
		{"allreduce/tiers42", tiers, steadystate.AllreduceSpec(tparts[:3]...), 40},
		{"composite/fig6", p6, steadystate.CompositeSpec(
			[]steadystate.Spec{
				steadystate.ScatterSpec(order6[0], order6[1], order6[2]),
				steadystate.ReduceSpec(order6, order6[0]),
			},
			[]steadystate.Rat{steadystate.R(2, 1), steadystate.R(1, 1)}), 60},
	}
}

// perPeriodOps returns tp·period as an exact integer (the full per-sink
// delivery quota of one period).
func perPeriodOps(t *testing.T, tp steadystate.Rat, period *big.Int) *big.Int {
	t.Helper()
	scaled := new(big.Rat).Mul(tp, new(big.Rat).SetInt(period))
	if !scaled.IsInt() {
		t.Fatalf("TP·T = %s is not an integer", scaled.RatString())
	}
	return new(big.Int).Set(scaled.Num())
}

// assertConformance checks delivered ∈ [ops·(K−W), ops·K] with W the end
// of the initialization phase, itself bounded by the schedule depth.
func assertConformance(t *testing.T, label string, delivered, ops *big.Int, periods, firstFull, depth int) {
	t.Helper()
	if ops.Sign() == 0 {
		if delivered.Sign() != 0 {
			t.Errorf("%s: delivered %s with zero throughput", label, delivered)
		}
		return
	}
	if firstFull < 0 {
		t.Errorf("%s: pipeline never reached a full period", label)
		return
	}
	if firstFull > depth {
		t.Errorf("%s: warmup %d periods exceeds the schedule-depth bound %d", label, firstFull, depth)
	}
	upper := new(big.Int).Mul(ops, big.NewInt(int64(periods)))
	lower := new(big.Int).Mul(ops, big.NewInt(int64(periods-firstFull)))
	if delivered.Cmp(upper) > 0 {
		t.Errorf("%s: delivered %s beats the Lemma-1 bound %s", label, delivered, upper)
	}
	if delivered.Cmp(lower) < 0 {
		t.Errorf("%s: delivered %s below the warmup floor %s (warmup %d of %d periods)",
			label, delivered, lower, firstFull, periods)
	}
}

// runConformance replays a solved case and applies the delivered-count
// window per sink set — overall for base kinds, per member for composites.
func runConformance(t *testing.T, sol steadystate.Solution, periods int) {
	t.Helper()
	m, err := sol.SimModel()
	if err != nil {
		t.Fatalf("SimModel: %v", err)
	}
	res, err := steadystate.Simulate(m, periods)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	depth := len(m.Transfers) + len(m.Rules) + 1
	if conc, ok := sol.(steadystate.Concurrent); ok {
		for i, member := range conc.Members() {
			ops := perPeriodOps(t, member.Throughput(), m.Period)
			delivered := res.MinDeliveredPrefix(steadystate.SimMemberPrefix(i))
			assertConformance(t, string(member.Kind()), delivered, ops, periods, res.FirstFullPeriod, depth)
		}
		return
	}
	ops := perPeriodOps(t, sol.Throughput(), m.Period)
	assertConformance(t, string(sol.Kind()), res.MinDelivered(), ops, periods, res.FirstFullPeriod, depth)
}

// TestSimConformanceEveryKind is the headline table: solve → model →
// replay K periods → delivered ∈ [TP·K − warmup, TP·K] for every kind.
func TestSimConformanceEveryKind(t *testing.T) {
	ctx := context.Background()
	for _, c := range simConformanceCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sol, err := steadystate.Solve(ctx, c.p, c.spec)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			runConformance(t, sol, c.periods)
		})
	}
}

// TestSimCompositeMemberSubmodels: the Concurrent surface must hand out
// working per-member submodels next to the merged model, and the merged
// replay must agree with each member's standalone replay scaled to the
// merged period (the member namespaces are disjoint, so the union replay
// is exact).
func TestSimCompositeMemberSubmodels(t *testing.T) {
	p, order, _ := steadystate.PaperFig6()
	sol, err := steadystate.Solve(context.Background(), p, steadystate.ReduceScatterSpec(order...))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	merged, err := sol.SimModel()
	if err != nil {
		t.Fatalf("composite SimModel: %v", err)
	}
	const periods = 40
	mres, err := steadystate.Simulate(merged, periods)
	if err != nil {
		t.Fatalf("merged Simulate: %v", err)
	}
	for i, member := range sol.(steadystate.Concurrent).Members() {
		sub, err := member.SimModel()
		if err != nil {
			t.Fatalf("member %d SimModel: %v", i, err)
		}
		// Scale the standalone member model to the merged period (the
		// same namespacing Merge applies) and replay it alone: its
		// delivered count must equal the member's share of the merged run.
		scaled, err := steadystate.MergeSimModels(p, merged.Period,
			[]*steadystate.SimModel{sub}, []string{steadystate.SimMemberPrefix(i)})
		if err != nil {
			t.Fatalf("member %d scale: %v", i, err)
		}
		sres, err := steadystate.Simulate(scaled, periods)
		if err != nil {
			t.Fatalf("member %d Simulate: %v", i, err)
		}
		alone := sres.MinDelivered()
		inMerged := mres.MinDeliveredPrefix(steadystate.SimMemberPrefix(i))
		if alone.Cmp(inMerged) != 0 {
			t.Errorf("member %d delivered %s alone but %s inside the merged replay", i, alone, inMerged)
		}
	}
}

// sameReplay asserts two solves produced byte-identical models and
// identical delivered counts.
func sameReplay(t *testing.T, label string, a, b steadystate.Solution, periods int) {
	t.Helper()
	ma, err := a.SimModel()
	if err != nil {
		t.Fatalf("%s: first SimModel: %v", label, err)
	}
	mb, err := b.SimModel()
	if err != nil {
		t.Fatalf("%s: second SimModel: %v", label, err)
	}
	if fa, fb := ma.Fingerprint(), mb.Fingerprint(); fa != fb {
		t.Errorf("%s: model fingerprints differ: %s vs %s", label, fa, fb)
	}
	ra, err := steadystate.Simulate(ma, periods)
	if err != nil {
		t.Fatalf("%s: first Simulate: %v", label, err)
	}
	rb, err := steadystate.Simulate(mb, periods)
	if err != nil {
		t.Fatalf("%s: second Simulate: %v", label, err)
	}
	if len(ra.Delivered) != len(rb.Delivered) {
		t.Fatalf("%s: %d vs %d sinks", label, len(ra.Delivered), len(rb.Delivered))
	}
	for e, d := range ra.Delivered {
		if other := rb.Delivered[e]; other == nil || d.Cmp(other) != 0 {
			t.Errorf("%s: sink %v delivered %s vs %v", label, e, d, other)
		}
	}
}

// TestSimReplayIdentityDenseVsSparse: the dense and sparse LP cores walk
// bit-identical pivot sequences, so the models they induce must be
// byte-identical and replay identically.
func TestSimReplayIdentityDenseVsSparse(t *testing.T) {
	ctx := context.Background()
	p2, src2, targets2 := steadystate.PaperFig2()
	p6, order6, _ := steadystate.PaperFig6()
	cases := []simConformanceCase{
		{"broadcast/fig2", p2, steadystate.BroadcastSpec(src2, targets2...), 30},
		{"prefix/fig6", p6, steadystate.PrefixSpec(order6...), 30},
		{"reducescatter/fig6", p6, steadystate.ReduceScatterSpec(order6...), 30},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sparse, err := steadystate.Solve(ctx, c.p, c.spec)
			if err != nil {
				t.Fatalf("sparse Solve: %v", err)
			}
			dense, err := steadystate.Solve(ctx, c.p, c.spec, steadystate.WithDenseLP())
			if err != nil {
				t.Fatalf("dense Solve: %v", err)
			}
			sameReplay(t, c.name, sparse, dense, c.periods)
		})
	}
}

// TestSimReplayIdentityWarmVsCold: a warm-started re-solve must reach the
// same optimal basis, hence the same model bytes and the same replay.
func TestSimReplayIdentityWarmVsCold(t *testing.T) {
	ctx := context.Background()
	p6, order6, _ := steadystate.PaperFig6()
	cases := []simConformanceCase{
		{"prefix/fig6", p6, steadystate.PrefixSpec(order6...), 30},
		{"allreduce/fig6", p6, steadystate.AllreduceSpec(order6...), 30},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cold, err := steadystate.Solve(ctx, c.p, c.spec)
			if err != nil {
				t.Fatalf("cold Solve: %v", err)
			}
			solver := steadystate.NewSolver(c.p)
			solver.UseBasisCache(steadystate.NewBasisCache(8))
			if _, err := solver.Solve(ctx, c.spec); err != nil {
				t.Fatalf("cache-priming Solve: %v", err)
			}
			warm, err := solver.Solve(ctx, c.spec)
			if err != nil {
				t.Fatalf("warm Solve: %v", err)
			}
			sameReplay(t, c.name, cold, warm, c.periods)
		})
	}
}
