// Benchmarks regenerating every experimental artifact of the paper, one
// bench per figure/proposition (see DESIGN.md §4 for the index and
// EXPERIMENTS.md for paper-vs-measured results). Run with:
//
//	go test -bench=. -benchmem
//
// The benches assert the paper's exact values where they are exact (Fig 2
// TP = 1/2, Fig 6 TP = 1) so a regression fails loudly rather than
// reporting wrong science fast.
package steadystate_test

import (
	"fmt"
	"math/big"
	"testing"

	steadystate "repro"
	"repro/internal/topology"
)

func requireRat(b *testing.B, got steadystate.Rat, want string, what string) {
	b.Helper()
	if got.RatString() != want {
		b.Fatalf("%s = %s, want %s", what, got.RatString(), want)
	}
}

// BenchmarkFig2ScatterToy solves the paper's toy scatter LP (Figure 2):
// TP must be exactly 1/2.
func BenchmarkFig2ScatterToy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, src, targets := steadystate.PaperFig2()
		sol, err := steadystate.SolveScatter(p, src, targets)
		if err != nil {
			b.Fatal(err)
		}
		requireRat(b, sol.Throughput(), "1/2", "Fig2 TP")
	}
}

// BenchmarkFig3Matchings decomposes the Fig-2 period into one-port-safe
// matchings (Figure 3: the paper finds 4).
func BenchmarkFig3Matchings(b *testing.B) {
	p, src, targets := steadystate.PaperFig2()
	sol, err := steadystate.SolveScatter(p, src, targets)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := steadystate.ScatterSchedule(sol)
		if err != nil {
			b.Fatal(err)
		}
		if len(sched.Slots) == 0 || len(sched.Slots) > 10 {
			b.Fatalf("slots = %d, want a handful", len(sched.Slots))
		}
	}
}

// BenchmarkFig4Schedule builds both Figure-4 schedules: split messages at
// the exact period and whole messages at the scaled period.
func BenchmarkFig4Schedule(b *testing.B) {
	p, src, targets := steadystate.PaperFig2()
	sol, err := steadystate.SolveScatter(p, src, targets)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := steadystate.ScatterSchedule(sol)
		if err != nil {
			b.Fatal(err)
		}
		un := sched.Unsplit()
		if un.HasSplitMessages() {
			b.Fatal("unsplit schedule still splits messages")
		}
		if err := un.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5ReductionTree builds and validates the single fixed
// reduction tree of Figure 5 (the flat 3-processor example) via the
// baseline tree builder.
func BenchmarkFig5ReductionTree(b *testing.B) {
	p, order, target := steadystate.PaperFig6()
	pr, err := steadystate.NewReduceProblem(p, order, target)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := steadystate.FlatReduceTree(pr)
		if err != nil {
			b.Fatal(err)
		}
		if res.Throughput.Sign() <= 0 {
			b.Fatal("non-positive baseline throughput")
		}
	}
}

// BenchmarkFig6ReduceToy solves the paper's toy reduce LP (Figure 6):
// TP must be exactly 1.
func BenchmarkFig6ReduceToy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, order, target := steadystate.PaperFig6()
		sol, err := steadystate.SolveReduce(p, order, target)
		if err != nil {
			b.Fatal(err)
		}
		requireRat(b, sol.Throughput(), "1", "Fig6 TP")
	}
}

// BenchmarkFig7TreeExtraction extracts the reduction-tree family of the
// Fig-6 solution (Figure 7: the paper finds trees of weight 1/3 and 2/3).
func BenchmarkFig7TreeExtraction(b *testing.B) {
	p, order, target := steadystate.PaperFig6()
	sol, err := steadystate.SolveReduce(p, order, target)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := sol.Integerize()
		trees, err := app.ExtractTrees()
		if err != nil {
			b.Fatal(err)
		}
		if err := steadystate.VerifyTreeDecomposition(app, trees); err != nil {
			b.Fatal(err)
		}
	}
}

func fig9Problem(b *testing.B) *steadystate.ReduceProblem {
	b.Helper()
	p, order, target := steadystate.PaperFig9()
	pr, err := steadystate.NewReduceProblem(p, order, target)
	if err != nil {
		b.Fatal(err)
	}
	size := steadystate.PaperFig9MessageSize()
	pr.SizeOf = func(steadystate.ReduceRange) steadystate.Rat { return size }
	return pr
}

// BenchmarkFig9TiersReduce solves the paper's headline experiment: the
// full SSR LP on the 14-node Tiers platform (paper: TP = 2/9 on its
// original bandwidth draws).
func BenchmarkFig9TiersReduce(b *testing.B) {
	pr := fig9Problem(b)
	for i := 0; i < b.N; i++ {
		sol, err := pr.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Throughput().Sign() <= 0 {
			b.Fatal("TP must be positive")
		}
		b.ReportMetric(float64(sol.Stats.Pivots), "pivots")
	}
}

// BenchmarkFig11TreeExtraction extracts the Fig-9 reduction trees
// (Figures 11–12: the paper finds two of weight 1/9 each).
func BenchmarkFig11TreeExtraction(b *testing.B) {
	pr := fig9Problem(b)
	sol, err := pr.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := sol.Integerize()
		trees, err := app.ExtractTrees()
		if err != nil {
			b.Fatal(err)
		}
		if err := steadystate.VerifyTreeDecomposition(app, trees); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(trees)), "trees")
	}
}

// BenchmarkProp1AsymptoticScatter simulates the Section 3.4 scatter
// protocol and reports the achieved fraction of the TP·K bound.
func BenchmarkProp1AsymptoticScatter(b *testing.B) {
	p, src, targets := steadystate.PaperFig2()
	sol, err := steadystate.SolveScatter(p, src, targets)
	if err != nil {
		b.Fatal(err)
	}
	m := steadystate.ScatterSimModel(sol)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := steadystate.Simulate(m, 1000)
		if err != nil {
			b.Fatal(err)
		}
		k := new(big.Int).Mul(big.NewInt(1000), m.Period)
		bound := new(big.Rat).Mul(sol.Throughput(), new(big.Rat).SetInt(k))
		ratio, _ := new(big.Rat).Quo(new(big.Rat).SetInt(res.MinDelivered()), bound).Float64()
		if ratio > 1 {
			b.Fatalf("ratio %f violates Lemma 1", ratio)
		}
		b.ReportMetric(ratio, "ratio")
	}
}

// BenchmarkProp3AsymptoticReduce simulates the pipelined reduce protocol.
func BenchmarkProp3AsymptoticReduce(b *testing.B) {
	p, order, target := steadystate.PaperFig6()
	sol, err := steadystate.SolveReduce(p, order, target)
	if err != nil {
		b.Fatal(err)
	}
	app := sol.Integerize()
	m := steadystate.ReduceSimModel(app)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := steadystate.Simulate(m, 1000)
		if err != nil {
			b.Fatal(err)
		}
		k := new(big.Int).Mul(big.NewInt(1000), m.Period)
		bound := new(big.Rat).Mul(sol.Throughput(), new(big.Rat).SetInt(k))
		ratio, _ := new(big.Rat).Quo(new(big.Rat).SetInt(res.MinDelivered()), bound).Float64()
		if ratio > 1 {
			b.Fatalf("ratio %f violates Lemma 1", ratio)
		}
		b.ReportMetric(ratio, "ratio")
	}
}

// BenchmarkProp4FixedPeriod sweeps the Section 4.6 truncation on the
// Fig-9 trees and reports the worst observed loss·T_fixed (must stay ≤
// card(Trees)).
func BenchmarkProp4FixedPeriod(b *testing.B) {
	pr := fig9Problem(b)
	sol, err := pr.Solve()
	if err != nil {
		b.Fatal(err)
	}
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worst := 0.0
		for _, fixed := range []int64{5, 10, 50, 100, 1000} {
			plan, err := steadystate.ApproximateFixedPeriod(app, trees, big.NewInt(fixed))
			if err != nil {
				b.Fatal(err)
			}
			scaled, _ := new(big.Rat).Mul(plan.Loss, big.NewRat(fixed, 1)).Float64()
			if scaled > worst {
				worst = scaled
			}
		}
		if worst > float64(len(trees)) {
			b.Fatalf("loss bound violated: %f > %d", worst, len(trees))
		}
		b.ReportMetric(worst, "worst-loss×T")
	}
}

// BenchmarkGossipTiers solves the Section 3.5 gossip LP on a Tiers
// platform (experiment X1).
func BenchmarkGossipTiers(b *testing.B) {
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(17))
	parts := p.Participants()
	for i := 0; i < b.N; i++ {
		sol, err := steadystate.SolveGossip(p, parts[:3], parts[len(parts)-3:])
		if err != nil {
			b.Fatal(err)
		}
		if sol.Throughput().Sign() <= 0 {
			b.Fatal("TP must be positive")
		}
	}
}

// BenchmarkPrefixToy solves the Section 6 parallel-prefix extension on the
// Fig-6 triangle (experiment X2).
func BenchmarkPrefixToy(b *testing.B) {
	p, order, _ := steadystate.PaperFig6()
	for i := 0; i < b.N; i++ {
		sol, err := steadystate.SolvePrefix(p, order)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Throughput().Sign() <= 0 {
			b.Fatal("TP must be positive")
		}
	}
}

// BenchmarkBaselineScatter compares the LP against the single-path
// baseline on a multipath platform (experiment B1, scatter side) and
// reports the speedup.
func BenchmarkBaselineScatter(b *testing.B) {
	p := steadystate.NewPlatform()
	s := p.AddNode("s", steadystate.R(1, 1))
	a := p.AddRouter("a")
	c := p.AddRouter("b")
	d := p.AddNode("d", steadystate.R(1, 1))
	p.AddEdge(s, a, steadystate.R(3, 1))
	p.AddEdge(s, c, steadystate.R(1, 1))
	p.AddEdge(a, d, steadystate.R(1, 1))
	p.AddEdge(c, d, steadystate.R(3, 1))
	for i := 0; i < b.N; i++ {
		sol, err := steadystate.SolveScatter(p, s, []steadystate.NodeID{d})
		if err != nil {
			b.Fatal(err)
		}
		base, err := steadystate.SinglePathScatter(p, s, []steadystate.NodeID{d})
		if err != nil {
			b.Fatal(err)
		}
		speedup, _ := new(big.Rat).Quo(sol.Throughput(), base.Throughput).Float64()
		if speedup < 1 {
			b.Fatalf("LP lost to baseline: %f", speedup)
		}
		b.ReportMetric(speedup, "speedup")
	}
}

// BenchmarkBaselineReduce compares the LP against fixed-tree baselines on
// the Fig-9 platform (experiment B1, reduce side).
func BenchmarkBaselineReduce(b *testing.B) {
	pr := fig9Problem(b)
	sol, err := pr.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flat, err := steadystate.FlatReduceTree(pr)
		if err != nil {
			b.Fatal(err)
		}
		bin, err := steadystate.BinaryReduceTree(pr)
		if err != nil {
			b.Fatal(err)
		}
		best := flat.Throughput
		if bin.Throughput.Cmp(best) > 0 {
			best = bin.Throughput
		}
		if sol.Throughput().Cmp(best) < 0 {
			b.Fatal("LP lost to a fixed tree")
		}
		speedup, _ := new(big.Rat).Quo(sol.Throughput(), best).Float64()
		b.ReportMetric(speedup, "speedup")
	}
}

// BenchmarkScalingScatter sweeps the scatter LP over growing Tiers
// platforms (experiment S1).
func BenchmarkScalingScatter(b *testing.B) {
	for _, lans := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("lans=%d", lans), func(b *testing.B) {
			cfg := steadystate.DefaultTiersConfig(7)
			cfg.LANs = lans
			p := steadystate.Tiers(cfg)
			parts := p.Participants()
			for i := 0; i < b.N; i++ {
				sol, err := steadystate.SolveScatter(p, parts[0], parts[1:])
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sol.Stats.Pivots), "pivots")
			}
		})
	}
}

// BenchmarkScalingReduce sweeps the reduce LP over growing chains
// (experiment S1).
func BenchmarkScalingReduce(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := topology.Chain(n, steadystate.R(1, 2), steadystate.R(1, 1))
			var order []steadystate.NodeID
			for _, node := range p.Nodes() {
				order = append(order, node.ID)
			}
			for i := 0; i < b.N; i++ {
				sol, err := steadystate.SolveReduce(p, order, order[0])
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sol.Stats.Pivots), "pivots")
			}
		})
	}
}
