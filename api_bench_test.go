// Benchmarks for the solver-session acceptance criterion: on a
// repeated-sweep workload, reusing a Solver session must be no slower
// than cold solves (target: faster, because the per-platform reachability
// index is built once instead of per solve).
//
// Compare with:
//
//	go test -bench 'SweepCold|SweepSession' -run xxx .
package steadystate_test

import (
	"context"
	"testing"

	steadystate "repro"
)

// sweepSpecs is the repeated-sweep workload: every participant scatters
// to its three successors, the pattern of the topology scaling runs.
func sweepSpecs(p *steadystate.Platform) []steadystate.Spec {
	parts := p.Participants()
	specs := make([]steadystate.Spec, 0, len(parts))
	for i := range parts {
		targets := []steadystate.NodeID{
			parts[(i+1)%len(parts)],
			parts[(i+2)%len(parts)],
			parts[(i+3)%len(parts)],
		}
		specs = append(specs, steadystate.ScatterSpec(parts[i], targets...))
	}
	return specs
}

// BenchmarkScatterSweepCold rebuilds the platform for every solve: no
// state is shared between solves.
func BenchmarkScatterSweepCold(b *testing.B) {
	cfg := steadystate.DefaultTiersConfig(11)
	specs := sweepSpecs(steadystate.Tiers(cfg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			p := steadystate.Tiers(cfg)
			if _, err := steadystate.Solve(context.Background(), p, spec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkScatterSweepSession runs the identical sweep through one
// Solver session on one platform.
func BenchmarkScatterSweepSession(b *testing.B) {
	cfg := steadystate.DefaultTiersConfig(11)
	p := steadystate.Tiers(cfg)
	specs := sweepSpecs(p)
	solver := steadystate.NewSolver(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			if _, err := solver.Solve(context.Background(), spec); err != nil {
				b.Fatal(err)
			}
		}
	}
}
