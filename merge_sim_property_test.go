// Property test for schedule.MergeFlows under simulation: for randomized
// seeded composites, (a) the merged periodic schedule must exist and
// verify — the one-port check at matching granularity, which covers every
// replay period since each period executes the same quotas — and (b) the
// merged replay must deliver exactly what the members deliver when each
// member's model is scaled to the merged period and replayed alone: the
// member namespaces are disjoint, so superposition changes nothing but the
// shared port budget, which the joint LP already priced in.
package steadystate_test

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	steadystate "repro"
)

// randPick returns n distinct participants in random order.
func randPick(rng *rand.Rand, parts []steadystate.NodeID, n int) []steadystate.NodeID {
	idx := rng.Perm(len(parts))[:n]
	out := make([]steadystate.NodeID, n)
	for i, j := range idx {
		out[i] = parts[j]
	}
	return out
}

// randMemberSpec draws one random base-kind member over the participants.
func randMemberSpec(rng *rand.Rand, parts []steadystate.NodeID) steadystate.Spec {
	switch rng.Intn(5) {
	case 0:
		ns := randPick(rng, parts, 3)
		return steadystate.ScatterSpec(ns[0], ns[1], ns[2])
	case 1:
		ns := randPick(rng, parts, 3)
		return steadystate.BroadcastSpec(ns[0], ns[1], ns[2])
	case 2:
		return steadystate.GossipSpec(randPick(rng, parts, 2), randPick(rng, parts, 2))
	case 3:
		order := randPick(rng, parts, 3)
		return steadystate.ReduceSpec(order, order[rng.Intn(len(order))])
	default:
		return steadystate.PrefixSpec(randPick(rng, parts, 3)...)
	}
}

func TestMergeFlowsUnderSimulationProperty(t *testing.T) {
	ctx := context.Background()
	p6, order6, _ := steadystate.PaperFig6()
	tiers := steadystate.Tiers(steadystate.DefaultTiersConfig(42))
	platforms := []struct {
		name  string
		p     *steadystate.Platform
		parts []steadystate.NodeID
	}{
		{"fig6", p6, order6},
		{"tiers42", tiers, tiers.Participants()[:5]},
	}
	const periods = 30
	for seed := int64(1); seed <= 3; seed++ {
		for _, plat := range platforms {
			plat := plat
			rng := rand.New(rand.NewSource(seed))
			members := make([]steadystate.Spec, 2+rng.Intn(2))
			weights := make([]steadystate.Rat, len(members))
			for i := range members {
				members[i] = randMemberSpec(rng, plat.parts)
				weights[i] = steadystate.R(int64(1+rng.Intn(3)), 1)
			}
			t.Run(plat.name, func(t *testing.T) {
				sol, err := steadystate.Solve(ctx, plat.p, steadystate.CompositeSpec(members, weights))
				if err != nil {
					t.Fatalf("seed %d: Solve: %v", seed, err)
				}

				// (a) One-port: the merged MergeFlows schedule exists and
				// verifies; every replay period runs these exact quotas.
				sched, err := sol.Schedule()
				if err != nil {
					t.Fatalf("seed %d: merged Schedule: %v", seed, err)
				}
				if err := sched.Verify(); err != nil {
					t.Errorf("seed %d: merged schedule violates one-port: %v", seed, err)
				}

				// (b) Merged replay ≡ union of standalone member replays.
				merged, err := sol.SimModel()
				if err != nil {
					t.Fatalf("seed %d: SimModel: %v", seed, err)
				}
				mres, err := steadystate.Simulate(merged, periods)
				if err != nil {
					t.Fatalf("seed %d: merged Simulate: %v", seed, err)
				}
				mergedTotal := new(big.Int)
				for _, d := range mres.Delivered {
					mergedTotal.Add(mergedTotal, d)
				}
				memberTotal := new(big.Int)
				for i, member := range sol.(steadystate.Concurrent).Members() {
					sub, err := member.SimModel()
					if err != nil {
						t.Fatalf("seed %d: member %d SimModel: %v", seed, i, err)
					}
					scaled, err := steadystate.MergeSimModels(plat.p, merged.Period,
						[]*steadystate.SimModel{sub}, []string{steadystate.SimMemberPrefix(i)})
					if err != nil {
						t.Fatalf("seed %d: member %d scale: %v", seed, i, err)
					}
					sres, err := steadystate.Simulate(scaled, periods)
					if err != nil {
						t.Fatalf("seed %d: member %d Simulate: %v", seed, i, err)
					}
					for e, d := range sres.Delivered {
						memberTotal.Add(memberTotal, d)
						if got := mres.Delivered[e]; got == nil || got.Cmp(d) != 0 {
							t.Errorf("seed %d: member %d sink %v delivered %s alone, %v merged",
								seed, i, e, d, got)
						}
					}
				}
				if mergedTotal.Cmp(memberTotal) != 0 {
					t.Errorf("seed %d: merged replay delivered %s, members alone delivered %s",
						seed, mergedTotal, memberTotal)
				}
			})
		}
	}
}
