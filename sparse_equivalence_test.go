// Dense-vs-sparse LP equivalence at the API level: the sparse tableau
// (the default) and the dense tableau (WithDenseLP) must return
// bit-identical solutions — same exact throughput, same pivot counts, both
// Verify-clean — for every collective kind, on seeded topogen-style
// platforms. The per-pivot arithmetic is the only thing the representation
// is allowed to change; ablation_bench_test.go measures that.
package steadystate_test

import (
	"context"
	"fmt"
	"testing"

	steadystate "repro"
)

// equivalenceSpecs enumerates one spec per collective kind (plus a mixed
// composite) over the platform's participants.
func equivalenceSpecs(p *steadystate.Platform) map[string]steadystate.Spec {
	parts := p.Participants()
	scatter := steadystate.ScatterSpec(parts[0], parts[1], parts[2], parts[3])
	reduce := steadystate.ReduceSpec([]steadystate.NodeID{parts[0], parts[1], parts[2]}, parts[0])
	return map[string]steadystate.Spec{
		"scatter":       scatter,
		"gossip":        steadystate.GossipSpec(parts[:2], parts[2:4]),
		"reduce":        reduce,
		"gather":        steadystate.GatherSpec([]steadystate.NodeID{parts[0], parts[1], parts[2]}, parts[0]),
		"prefix":        steadystate.PrefixSpec(parts[0], parts[1], parts[2]),
		"reducescatter": steadystate.ReduceScatterSpec(parts[0], parts[1], parts[2]),
		"composite": steadystate.CompositeSpec(
			[]steadystate.Spec{scatter, reduce},
			[]steadystate.Rat{steadystate.R(1, 1), steadystate.R(2, 1)}),
	}
}

// TestSparseDenseEquivalenceAcrossKinds is the property test over seeded
// platforms: for each kind, the sparse and dense solves must agree on the
// exact throughput, the LP shape and cost counters (identical pivot
// sequence, not just identical optimum), and both must pass the
// solver-independent Verify.
func TestSparseDenseEquivalenceAcrossKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("solves every kind twice per seed")
	}
	for _, seed := range []int64{7, 42} {
		p := steadystate.Tiers(steadystate.DefaultTiersConfig(seed))
		for name, spec := range equivalenceSpecs(p) {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				t.Parallel()
				ctx := context.Background()
				sparse, err := steadystate.Solve(ctx, p, spec)
				if err != nil {
					t.Fatalf("sparse solve: %v", err)
				}
				dense, err := steadystate.Solve(ctx, p, spec, steadystate.WithDenseLP())
				if err != nil {
					t.Fatalf("dense solve: %v", err)
				}
				if a, b := sparse.Throughput(), dense.Throughput(); a.Cmp(b) != 0 {
					t.Fatalf("throughput: sparse %s, dense %s", a.RatString(), b.RatString())
				}
				if a, b := sparse.Period(), dense.Period(); a.Cmp(b) != 0 {
					t.Fatalf("period: sparse %s, dense %s", a, b)
				}
				sr, err := sparse.Report()
				if err != nil {
					t.Fatalf("sparse report: %v", err)
				}
				dr, err := dense.Report()
				if err != nil {
					t.Fatalf("dense report: %v", err)
				}
				if sr.LPPivots != dr.LPPivots || sr.LPPhase1Pivots != dr.LPPhase1Pivots {
					t.Fatalf("pivots: sparse %d (%d phase 1), dense %d (%d phase 1)",
						sr.LPPivots, sr.LPPhase1Pivots, dr.LPPivots, dr.LPPhase1Pivots)
				}
				if sr.LPVars != dr.LPVars || sr.LPConstraints != dr.LPConstraints ||
					sr.LPNonZeros != dr.LPNonZeros || sr.LPDensity != dr.LPDensity {
					t.Fatalf("LP shape: sparse %d/%d/%d, dense %d/%d/%d",
						sr.LPVars, sr.LPConstraints, sr.LPNonZeros,
						dr.LPVars, dr.LPConstraints, dr.LPNonZeros)
				}
				if sr.LPNonZeros == 0 {
					t.Fatal("report carries no lp_nonzeros")
				}
				if sr.LPDensity <= 0 || sr.LPDensity > 0.5 {
					t.Fatalf("lp_density = %v; the steady-state LPs should be sparse", sr.LPDensity)
				}
				if err := sparse.Verify(); err != nil {
					t.Fatalf("sparse Verify: %v", err)
				}
				if err := dense.Verify(); err != nil {
					t.Fatalf("dense Verify: %v", err)
				}
			})
		}
	}
}
