package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	steadystate "repro"
)

// syncBuffer is a mutex-guarded bytes.Buffer: run writes to stderr from
// its own goroutine while the test reads it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-addr"},                              // missing value
		{"-workers", "notanumber"},             // bad int
		{"-timeout", "tomorrow"},               // bad duration
		{"extra", "positional"},                // positional args
		{"-addr", "definitely:not:an:address"}, // listen fails
	}
	for _, args := range cases {
		var errBuf syncBuffer
		if err := run(context.Background(), args, io.Discard, &errBuf); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, serves a
// scenario (twice — the repeat must be a cache hit), then cancels the run
// context and verifies the graceful drain completes.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var errBuf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "10s"}, io.Discard, &errBuf)
	}()

	// The daemon prints its bound address once listening.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr:\n%s", errBuf.String())
		}
		for _, line := range strings.Split(errBuf.String(), "\n") {
			if addr, ok := strings.CutPrefix(line, "solverd: listening on "); ok {
				base = "http://" + strings.TrimSpace(addr)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Solve the paper's Figure 2 scatter scenario through the daemon.
	p, src, targets := steadystate.PaperFig2()
	body, err := json.Marshal(&steadystate.Scenario{
		Platform: p, Spec: steadystate.ScatterSpec(src, targets...),
	})
	if err != nil {
		t.Fatal(err)
	}
	post := func() (*http.Response, *steadystate.Report) {
		resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("solve: %d %q", resp.StatusCode, data)
		}
		rep := &steadystate.Report{}
		if err := json.Unmarshal(data, rep); err != nil {
			t.Fatalf("parse report %q: %v", data, err)
		}
		return resp, rep
	}
	r1, rep := post()
	if r1.Header.Get("X-Cache") != "miss" || rep.Throughput != "1/2" {
		t.Fatalf("cold solve: X-Cache %q throughput %q (want miss, 1/2)", r1.Header.Get("X-Cache"), rep.Throughput)
	}
	r2, rep2 := post()
	if r2.Header.Get("X-Cache") != "hit" || rep2.Throughput != "1/2" {
		t.Fatalf("hot solve: X-Cache %q throughput %q (want hit, 1/2)", r2.Header.Get("X-Cache"), rep2.Throughput)
	}

	// SIGTERM path: cancel the run context and wait for the clean drain.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain; stderr:\n%s", err, errBuf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain; stderr:\n%s", errBuf.String())
	}
	if out := errBuf.String(); !strings.Contains(out, "solverd: drained cleanly") {
		t.Fatalf("missing clean-drain message; stderr:\n%s", out)
	}
}
