// Command solverd serves the steady-state solver as a long-running HTTP
// daemon: scenarios (the same platform+spec JSON files cmd/topogen writes
// and cmd/sweep consumes) are posted over HTTP and answered with solved
// Reports, amortizing solver sessions and caching hot scenarios across
// requests — the serving counterpart of the batch pipeline
// topogen → sweep → report.
//
// Usage:
//
//	solverd                                  # listen on :8080 with defaults
//	solverd -addr 127.0.0.1:9090 -workers 8  # bind elsewhere, size the pool
//	solverd -queue 128 -cache 4096           # deeper queue, bigger report cache
//	solverd -timeout 1m -max-timeout 5m      # default and maximum per-request deadline
//	solverd -log-format json -log-level info # structured slog request logs on stderr
//	solverd -debug-addr 127.0.0.1:6060       # net/http/pprof on a separate listener
//
// Endpoints:
//
//	POST /solve   one Scenario JSON body in, the solved Report out.
//	              ?timeout=30s bounds the solve; a report-cache hit skips
//	              the LP entirely (X-Cache: hit). ?trace=1 embeds the
//	              span-structured solve trace in the Report, carrying the
//	              request's X-Request-ID as its trace ID; a traced cache
//	              hit replays the cold solve's trace marked "replayed".
//	              Errors are structured JSON: 400 malformed, 413
//	              oversized, 503 queue full, 504 deadline exceeded.
//	POST /sweep   JSONL in (one Scenario per line, or {"name":…,
//	              "scenario":{…}}), JSONL out — one sweep record per line
//	              in completion order, the same record format cmd/sweep
//	              streams with -jsonl. ?trace=1 traces every solve.
//	GET  /healthz readiness: 200 while serving, 503 once draining.
//	GET  /metrics telemetry snapshot as JSON (counters, queue depth,
//	              queue-wait and solve-time histograms); Prometheus text
//	              with ?format=prometheus.
//
// A seeded batch served through /solve produces Reports byte-identical
// (modulo the solve_ms measurement) to cmd/sweep over the same files —
// the CI solverd-smoke job pins exactly that.
//
// On SIGTERM or SIGINT the daemon drains gracefully: /healthz flips to
// 503, new scenarios are refused, in-flight solves finish and flush their
// responses (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "solverd: %v\n", err)
		os.Exit(1)
	}
}

// run executes the daemon until ctx is canceled (the signal path) or the
// listener fails; factored out of main for testability. The bound address
// is printed to stderr once listening — tests bind :0 and parse it.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("solverd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "solver pool size (0: GOMAXPROCS)")
		queue      = fs.Int("queue", serve.DefaultQueueDepth, "admission queue depth (full queue answers 503)")
		cache      = fs.Int("cache", serve.DefaultCacheSize, "report-cache entries (negative: disable)")
		sessions   = fs.Int("sessions", serve.DefaultSessionCacheSize, "solver session pool entries (one per distinct platform)")
		timeout    = fs.Duration("timeout", serve.DefaultSolveTimeoutValue, "default per-request deadline (negative: none)")
		maxTimeout = fs.Duration("max-timeout", serve.DefaultMaxSolveTimeout, "cap on request-supplied ?timeout=")
		maxBody    = fs.Int64("max-body", serve.DefaultMaxBodyBytes, "max request body (and /sweep line) bytes")
		drain      = fs.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight solves")
		logFormat  = fs.String("log-format", "text", "request log format: text or json")
		logLevel   = fs.String("log-level", "info", "request log level: debug, info, warn or error")
		debugAddr  = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty: disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	logger, err := newLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}

	srv := serve.New(serve.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CacheSize:           *cache,
		SessionCacheSize:    *sessions,
		DefaultSolveTimeout: *timeout,
		MaxSolveTimeout:     *maxTimeout,
		MaxBodyBytes:        *maxBody,
		Logger:              logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "solverd: listening on %s\n", ln.Addr())

	// The pprof listener is deliberately separate from the API address:
	// profiling endpoints never share exposure with the solve surface, and
	// a saturated worker pool cannot starve a profile grab. net/http/pprof
	// registers on the DefaultServeMux at import.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		fmt.Fprintf(stderr, "solverd: pprof on %s/debug/pprof/\n", dln.Addr())
		go http.Serve(dln, nil)
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (healthz flips to 503, new scenarios
	// get structured 503s), let in-flight handlers flush their solves,
	// then stop the workers.
	fmt.Fprintf(stderr, "solverd: draining (up to %v for in-flight solves)\n", *drain)
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		// The budget ran out with handlers still busy: cut them off.
		hs.Close()
		srv.Close()
		return fmt.Errorf("drain exceeded %v: %w", *drain, err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		return err
	}
	srv.Close()
	fmt.Fprintf(stderr, "solverd: drained cleanly\n")
	return nil
}

// newLogger builds the request logger from the -log-format and
// -log-level flags.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}
