package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	steadystate "repro"
)

// capture redirects the report writer for the duration of fn.
func capture(fn func()) string {
	var buf bytes.Buffer
	saved := out
	out = &buf
	defer func() { out = saved }()
	fn()
	return buf.String()
}

func TestFig2Experiment(t *testing.T) {
	got := capture(fig2)
	if !strings.Contains(got, "ours:  TP = 1/2") {
		t.Errorf("fig2 output:\n%s", got)
	}
}

func TestFig3Experiment(t *testing.T) {
	got := capture(fig3)
	if !strings.Contains(got, "matchings") {
		t.Errorf("fig3 output:\n%s", got)
	}
}

func TestFig4Experiment(t *testing.T) {
	got := capture(fig4)
	if !strings.Contains(got, "no splits") {
		t.Errorf("fig4 output:\n%s", got)
	}
}

func TestFig6Experiment(t *testing.T) {
	got := capture(fig6)
	if !strings.Contains(got, "ours:  TP = 1 ") {
		t.Errorf("fig6 output:\n%s", got)
	}
}

func TestFig7Experiment(t *testing.T) {
	got := capture(fig7)
	if !strings.Contains(got, "tree(s) covering") {
		t.Errorf("fig7 output:\n%s", got)
	}
}

func TestProp1Experiment(t *testing.T) {
	got := capture(prop1)
	if !strings.Contains(got, "ratio") || !strings.Contains(got, "0.9") {
		t.Errorf("prop1 output:\n%s", got)
	}
}

func TestProp3Experiment(t *testing.T) {
	got := capture(prop3)
	if !strings.Contains(got, "ratio") {
		t.Errorf("prop3 output:\n%s", got)
	}
}

func TestGossipExperiment(t *testing.T) {
	got := capture(gossipExp)
	if !strings.Contains(got, "gossip") {
		t.Errorf("gossip output:\n%s", got)
	}
}

func TestPrefixExperiment(t *testing.T) {
	got := capture(prefixExp)
	if !strings.Contains(got, "prefix") {
		t.Errorf("prefix output:\n%s", got)
	}
}

func TestScalingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	got := capture(scaling)
	if !strings.Contains(got, "scatter-tiers") || !strings.Contains(got, "reduce-chain") {
		t.Errorf("scaling output:\n%s", got)
	}
}

func TestSessionExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("session sweep in -short mode")
	}
	got := capture(sessionExp)
	if strings.Contains(got, "MISMATCH") {
		t.Fatalf("session sweep diverged from cold solves:\n%s", got)
	}
	if !strings.Contains(got, "solver session:") {
		t.Errorf("session output:\n%s", got)
	}
}

func TestRunScenario(t *testing.T) {
	p, src, targets := steadystate.PaperFig2()
	sc := &steadystate.Scenario{Platform: p, Spec: steadystate.ScatterSpec(src, targets...)}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig2.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := capture(func() {
		if err := runScenario(path); err != nil {
			t.Errorf("runScenario: %v", err)
		}
	})
	var rep steadystate.Report
	if err := json.Unmarshal([]byte(got), &rep); err != nil {
		t.Fatalf("report output is not JSON: %v\n%s", err, got)
	}
	if rep.Throughput != "1/2" {
		t.Errorf("report TP = %s, want 1/2", rep.Throughput)
	}
}
