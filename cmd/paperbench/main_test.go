package main

import (
	"bytes"
	"strings"
	"testing"
)

// capture redirects the report writer for the duration of fn.
func capture(fn func()) string {
	var buf bytes.Buffer
	saved := out
	out = &buf
	defer func() { out = saved }()
	fn()
	return buf.String()
}

func TestFig2Experiment(t *testing.T) {
	got := capture(fig2)
	if !strings.Contains(got, "ours:  TP = 1/2") {
		t.Errorf("fig2 output:\n%s", got)
	}
}

func TestFig3Experiment(t *testing.T) {
	got := capture(fig3)
	if !strings.Contains(got, "matchings") {
		t.Errorf("fig3 output:\n%s", got)
	}
}

func TestFig4Experiment(t *testing.T) {
	got := capture(fig4)
	if !strings.Contains(got, "no splits") {
		t.Errorf("fig4 output:\n%s", got)
	}
}

func TestFig6Experiment(t *testing.T) {
	got := capture(fig6)
	if !strings.Contains(got, "ours:  TP = 1 ") {
		t.Errorf("fig6 output:\n%s", got)
	}
}

func TestFig7Experiment(t *testing.T) {
	got := capture(fig7)
	if !strings.Contains(got, "tree(s) covering") {
		t.Errorf("fig7 output:\n%s", got)
	}
}

func TestProp1Experiment(t *testing.T) {
	got := capture(prop1)
	if !strings.Contains(got, "ratio") || !strings.Contains(got, "0.9") {
		t.Errorf("prop1 output:\n%s", got)
	}
}

func TestProp3Experiment(t *testing.T) {
	got := capture(prop3)
	if !strings.Contains(got, "ratio") {
		t.Errorf("prop3 output:\n%s", got)
	}
}

func TestGossipExperiment(t *testing.T) {
	got := capture(gossipExp)
	if !strings.Contains(got, "gossip") {
		t.Errorf("gossip output:\n%s", got)
	}
}

func TestPrefixExperiment(t *testing.T) {
	got := capture(prefixExp)
	if !strings.Contains(got, "prefix") {
		t.Errorf("prefix output:\n%s", got)
	}
}

func TestScalingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	got := capture(scaling)
	if !strings.Contains(got, "scatter-tiers") || !strings.Contains(got, "reduce-chain") {
		t.Errorf("scaling output:\n%s", got)
	}
}
