// Command paperbench regenerates every experimental artifact of the paper
// (Legrand/Marchal/Robert, IPPS 2004) as text tables: the figure-by-figure
// results, the asymptotic-optimality convergence of Propositions 1 and 3,
// the fixed-period approximation sweep of Section 4.6, baseline
// comparisons, solver scaling, and solver-session reuse. EXPERIMENTS.md
// records the paper-vs-measured comparison produced by this harness.
//
// Usage:
//
//	paperbench                      # run everything
//	paperbench -run fig9            # run one experiment (fig2|fig3|fig4|fig6|fig7|fig9|prop1|prop3|prop4|gossip|prefix|rscatter|bcast|allreduce|baseline|scaling|session)
//	paperbench -timeout 30s         # bound every solve with a deadline
//	paperbench -scenario work.json  # solve one scenario file, print its report JSON
//
// Scenario files are the interchange format of the whole pipeline:
// cmd/topogen writes them, cmd/sweep batches them, cmd/solverd serves
// them over HTTP.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"strings"
	"time"

	steadystate "repro"
	"repro/internal/topology"
)

// out is the report destination; tests point it at a buffer.
var out io.Writer = os.Stdout

// ctx bounds every solve of the harness; -timeout installs a deadline.
var ctx = context.Background()

func main() {
	run := flag.String("run", "", "run a single experiment by id (default: all)")
	timeout := flag.Duration("timeout", 0, "deadline for every solve (0: none)")
	scenario := flag.String("scenario", "", "solve one scenario JSON file and print its report")
	flag.Parse()

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *scenario != "" {
		if err := runScenario(*scenario); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	experiments := []struct {
		id string
		fn func()
	}{
		{"fig2", fig2}, {"fig3", fig3}, {"fig4", fig4}, {"fig6", fig6},
		{"fig7", fig7}, {"fig9", fig9}, {"prop1", prop1}, {"prop3", prop3},
		{"prop4", prop4}, {"gossip", gossipExp}, {"prefix", prefixExp},
		{"rscatter", reduceScatterExp}, {"bcast", broadcastExp}, {"allreduce", allreduceExp},
		{"baseline", baselineExp}, {"scaling", scaling}, {"session", sessionExp},
	}
	any := false
	for _, e := range experiments {
		if *run != "" && e.id != *run {
			continue
		}
		any = true
		banner(e.id)
		start := time.Now()
		e.fn()
		fmt.Fprintf(out, "[%s done in %v]\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if !any {
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q\n", *run)
		os.Exit(1)
	}
}

// runScenario solves a scenario file and prints its report JSON — the
// file-composition path: topogen -spec → paperbench -scenario.
func runScenario(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sc steadystate.Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	sol, err := sc.Solve(ctx)
	if err != nil {
		return err
	}
	rep, err := sol.Report()
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", enc)
	return nil
}

func banner(id string) {
	fmt.Fprintf(out, "\n===== %s =====\n", strings.ToUpper(id))
}

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	return v
}

func f(r steadystate.Rat) float64 {
	v, _ := r.Float64()
	return v
}

// fig2: toy scatter — paper reports TP = 1/2 with multi-route m0.
func fig2() {
	p, src, targets := steadystate.PaperFig2()
	sol := must(steadystate.Solve(ctx, p, steadystate.ScatterSpec(src, targets...)))
	fmt.Fprintf(out, "paper: TP = 1/2 (one scatter every two time units)\n")
	fmt.Fprintf(out, "ours:  TP = %s\n", sol.Throughput().RatString())
	fmt.Fprint(out, sol.String())
}

// fig3: the bipartite matchings of the Fig-2 period — paper finds 4.
func fig3() {
	p, src, targets := steadystate.PaperFig2()
	sol := must(steadystate.Solve(ctx, p, steadystate.ScatterSpec(src, targets...)))
	sched := must(sol.Schedule())
	fmt.Fprintf(out, "paper: 4 matchings tile the period\n")
	fmt.Fprintf(out, "ours:  %d matchings, busy %s of period %s\n",
		len(sched.Slots), sched.BusyTime().RatString(), sched.Period.RatString())
}

// fig4: the concrete schedules — split (exact period) and unsplit.
func fig4() {
	p, src, targets := steadystate.PaperFig2()
	sol := must(steadystate.Solve(ctx, p, steadystate.ScatterSpec(src, targets...)))
	sched := must(sol.Schedule())
	fmt.Fprintf(out, "paper: period 12 with split messages; period 48 without\n")
	fmt.Fprintf(out, "ours (split allowed, period %s):\n%s", sched.Period.RatString(), sched.Gantt())
	un := sched.Unsplit()
	fmt.Fprintf(out, "ours (no splits, period %s):\n%s", un.Period.RatString(), un.Gantt())
}

// fig6: toy reduce — paper reports TP = 1 (period 3, three ops).
func fig6() {
	p, order, target := steadystate.PaperFig6()
	sol := must(steadystate.Solve(ctx, p, steadystate.ReduceSpec(order, target)))
	rep := must(sol.Report())
	fmt.Fprintf(out, "paper: TP = 1 (three reduces every three time units)\n")
	fmt.Fprintf(out, "ours:  TP = %s  (LP: %d vars, %d constraints, %d pivots)\n",
		rep.Throughput, rep.LPVars, rep.LPConstraints, rep.LPPivots)
	fmt.Fprint(out, sol.String())
}

// fig7: reduction trees of the Fig-6 solution — paper finds two (1/3, 2/3).
func fig7() {
	p, order, target := steadystate.PaperFig6()
	sol := must(steadystate.Solve(ctx, p, steadystate.ReduceSpec(order, target)))
	app, trees, err := sol.(steadystate.Certified).Certificate()
	must(0, err)
	fmt.Fprintf(out, "paper: 2 trees with throughputs 1/3 and 2/3\n")
	fmt.Fprintf(out, "ours:  %d tree(s) covering %s ops per period %s\n",
		len(trees), app.Ops.String(), app.Period.String())
	pr := sol.Unwrap().(*steadystate.ReduceSolution).Problem
	for _, tr := range trees {
		fmt.Fprint(out, tr.String(pr))
	}
}

// fig9: the Tiers experiment — paper reports TP = 2/9 and two trees.
func fig9() {
	p, order, target := steadystate.PaperFig9()
	start := time.Now()
	sol := must(steadystate.Solve(ctx, p, steadystate.ReduceSpec(order, target),
		steadystate.WithMessageSize(steadystate.PaperFig9MessageSize())))
	solveTime := time.Since(start) // LP solve only: Report() would add tree extraction
	rep := must(sol.Report())
	fmt.Fprintf(out, "paper: TP = 2/9 ≈ 0.2222 (exact bandwidths not recoverable; see DESIGN.md)\n")
	fmt.Fprintf(out, "ours:  TP = %s ≈ %.4f  (LP: %d vars, %d constraints, %d pivots, %v)\n",
		rep.Throughput, rep.ThroughputFloat,
		rep.LPVars, rep.LPConstraints, rep.LPPivots, solveTime.Round(time.Millisecond))
	app, trees, err := sol.(steadystate.Certified).Certificate()
	must(0, err)
	fmt.Fprintf(out, "paper: 2 reduction trees of weight 1/9 each (figs 11-12)\n")
	fmt.Fprintf(out, "ours:  %d reduction tree(s), weights:", len(trees))
	for _, tr := range trees {
		fmt.Fprintf(out, " %s/%s", tr.Weight.String(), app.Period.String())
	}
	fmt.Fprintln(out)
	pr := sol.Unwrap().(*steadystate.ReduceSolution).Problem
	for i, tr := range trees {
		fmt.Fprintf(out, "--- tree %d ---\n%s", i+1, tr.String(pr))
	}
}

// prop1: asymptotic optimality of the scatter protocol.
func prop1() {
	p, src, targets := steadystate.PaperFig2()
	sol := must(steadystate.Solve(ctx, p, steadystate.ScatterSpec(src, targets...)))
	m := must(sol.SimModel())
	convergenceTable(m, sol.Throughput())
}

// prop3: asymptotic optimality of the reduce protocol.
func prop3() {
	p, order, target := steadystate.PaperFig6()
	sol := must(steadystate.Solve(ctx, p, steadystate.ReduceSpec(order, target)))
	m := must(sol.SimModel())
	convergenceTable(m, sol.Throughput())
}

// convergenceTable simulates the buffered protocol and reports the
// delivered/bound ratio converging to 1.
func convergenceTable(m *steadystate.SimModel, tp steadystate.Rat) {
	fmt.Fprintf(out, "%-10s %-14s %-14s %s\n", "periods", "delivered", "bound TP*K", "ratio")
	for _, periods := range []int{10, 50, 100, 500, 1000, 5000} {
		res := must(steadystate.Simulate(m, periods))
		k := new(big.Int).Mul(big.NewInt(int64(periods)), m.Period)
		bound := new(big.Rat).Mul(tp, new(big.Rat).SetInt(k))
		ratio := new(big.Rat).Quo(new(big.Rat).SetInt(res.MinDelivered()), bound)
		fmt.Fprintf(out, "%-10d %-14s %-14s %.6f\n", periods, res.MinDelivered(), bound.RatString(), f(ratio))
	}
}

// prop4: fixed-period truncation sweep on the Fig-9 trees.
func prop4() {
	p, order, target := steadystate.PaperFig9()
	sol := must(steadystate.Solve(ctx, p, steadystate.ReduceSpec(order, target),
		steadystate.WithMessageSize(steadystate.PaperFig9MessageSize())))
	app, trees, err := sol.(steadystate.Certified).Certificate()
	must(0, err)
	fmt.Fprintf(out, "TP = %s, %d trees, exact period %s\n", sol.Throughput().RatString(), len(trees), app.Period.String())
	fmt.Fprintf(out, "%-10s %-16s %-16s %s\n", "T_fixed", "throughput", "loss", "bound card/T")
	for _, fixed := range []int64{5, 10, 50, 100, 1000, 10000} {
		plan := must(steadystate.ApproximateFixedPeriod(app, trees, big.NewInt(fixed)))
		bound := big.NewRat(int64(len(trees)), fixed)
		fmt.Fprintf(out, "%-10d %-16s %-16s %s\n", fixed,
			plan.Throughput.RatString(), plan.Loss.RatString(), bound.RatString())
	}
}

// gossipExp: the Section 3.5 gossip LP on a Tiers platform.
func gossipExp() {
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(17))
	parts := p.Participants()
	sol := must(steadystate.Solve(ctx, p, steadystate.GossipSpec(parts[:3], parts[len(parts)-3:])))
	rep := must(sol.Report())
	fmt.Fprintf(out, "tiers 3x3 gossip: TP = %s ≈ %.5f (LP %d vars, %d constraints)\n",
		rep.Throughput, rep.ThroughputFloat, rep.LPVars, rep.LPConstraints)
	sched := must(sol.Schedule())
	fmt.Fprintf(out, "schedule: %d slots, busy %s of period %s\n",
		len(sched.Slots), sched.BusyTime().RatString(), sched.Period.RatString())
}

// prefixExp: the Section 6 extension on the Fig-6 triangle.
func prefixExp() {
	p, order, _ := steadystate.PaperFig6()
	sol := must(steadystate.Solve(ctx, p, steadystate.PrefixSpec(order...)))
	fmt.Fprintf(out, "fig6 triangle parallel prefix: TP = %s\n", sol.Throughput().RatString())
	fmt.Fprint(out, sol.String())
}

// reduceScatterExp: concurrent collectives — reduce-scatter as N reduces
// sharing one-port capacity, on the Fig-6 triangle and a symmetric ring.
func reduceScatterExp() {
	solveRS := func(name string, p *steadystate.Platform, order []steadystate.NodeID) {
		sol := must(steadystate.Solve(ctx, p, steadystate.ReduceScatterSpec(order...)))
		must(0, sol.Verify())
		standalone := must(steadystate.Solve(ctx, p, steadystate.ReduceSpec(order, order[0])))
		sched := must(sol.Schedule())
		fmt.Fprintf(out, "%-16s common TP = %-8s (single reduce alone: %s)\n",
			name, sol.Throughput().RatString(), standalone.Throughput().RatString())
		fmt.Fprintf(out, "%-16s merged schedule: %d slots, busy %s of period %s\n",
			"", len(sched.Slots), sched.BusyTime().RatString(), sched.Period.RatString())
	}
	p6, order, _ := steadystate.PaperFig6()
	solveRS("fig6 triangle", p6, order)
	ring := steadystate.Ring(4, steadystate.R(1, 2), steadystate.R(1, 1))
	solveRS("ring-4", ring, ring.Participants())
}

// broadcastExp: broadcast vs scatter on the Fig-2 platform — replication
// (one copy per edge serves every target routed through it) strictly
// beats the per-target scatter streams, and a single-target broadcast
// degenerates to scatter-to-one.
func broadcastExp() {
	p, src, targets := steadystate.PaperFig2()
	bsol := must(steadystate.Solve(ctx, p, steadystate.BroadcastSpec(src, targets...)))
	must(0, bsol.Verify())
	ssol := must(steadystate.Solve(ctx, p, steadystate.ScatterSpec(src, targets...)))
	fmt.Fprintf(out, "fig2 broadcast: TP = %s (scatter of distinct messages: %s, %.2fx)\n",
		bsol.Throughput().RatString(), ssol.Throughput().RatString(),
		f(new(big.Rat).Quo(bsol.Throughput(), ssol.Throughput())))
	fmt.Fprint(out, bsol.String())
	one := must(steadystate.Solve(ctx, p, steadystate.BroadcastSpec(src, targets[0])))
	oneScatter := must(steadystate.Solve(ctx, p, steadystate.ScatterSpec(src, targets[0])))
	fmt.Fprintf(out, "single-target degeneration: broadcast TP = %s, scatter-to-one TP = %s\n",
		one.Throughput().RatString(), oneScatter.Throughput().RatString())
}

// allreduceExp: allreduce on the Fig-6 triangle — the reduce-scatter
// phase composed with an allgather at a common rate, contrasted with the
// reduce-scatter alone.
func allreduceExp() {
	p, order, _ := steadystate.PaperFig6()
	sol := must(steadystate.Solve(ctx, p, steadystate.AllreduceSpec(order...)))
	must(0, sol.Verify())
	rs := must(steadystate.Solve(ctx, p, steadystate.ReduceScatterSpec(order...)))
	fmt.Fprintf(out, "fig6 allreduce: TP = %s (reduce-scatter phase alone: %s)\n",
		sol.Throughput().RatString(), rs.Throughput().RatString())
	for _, member := range sol.(steadystate.Concurrent).Members() {
		rep := must(member.Report())
		fmt.Fprintf(out, "  member %-7s TP = %s\n", rep.Kind, rep.Throughput)
	}
	sched := must(sol.Schedule())
	fmt.Fprintf(out, "merged schedule: %d slots, busy %s of period %s\n",
		len(sched.Slots), sched.BusyTime().RatString(), sched.Period.RatString())
}

// baselineExp: LP vs fixed-plan baselines on the paper platforms.
func baselineExp() {
	// Scatter on Fig 2.
	{
		p, src, targets := steadystate.PaperFig2()
		lpSol := must(steadystate.Solve(ctx, p, steadystate.ScatterSpec(src, targets...)))
		base := must(steadystate.SinglePathScatter(p, src, targets))
		fmt.Fprintf(out, "%-28s %-12s %-12s %s\n", "scatter fig2", "LP", "single-path", "LP/single")
		ratio := new(big.Rat).Quo(lpSol.Throughput(), base.Throughput)
		fmt.Fprintf(out, "%-28s %-12s %-12s %.3f\n", "", lpSol.Throughput().RatString(),
			base.Throughput.RatString(), f(ratio))
	}
	// Reduce on Fig 9.
	{
		p, order, target := steadystate.PaperFig9()
		lpSol := must(steadystate.Solve(ctx, p, steadystate.ReduceSpec(order, target),
			steadystate.WithMessageSize(steadystate.PaperFig9MessageSize())))
		// Baselines evaluate fixed plans on the same sized problem.
		pr := must(steadystate.NewReduceProblem(p, order, target))
		size := steadystate.PaperFig9MessageSize()
		pr.SizeOf = func(steadystate.ReduceRange) steadystate.Rat { return size }
		flat := must(steadystate.FlatReduceTree(pr))
		bin := must(steadystate.BinaryReduceTree(pr))
		fmt.Fprintf(out, "%-28s %-12s %-12s %-12s\n", "reduce fig9", "LP", "flat-tree", "binary-tree")
		fmt.Fprintf(out, "%-28s %-12s %-12s %-12s\n", "",
			lpSol.Throughput().RatString(), flat.Throughput.RatString(), bin.Throughput.RatString())
		fmt.Fprintf(out, "LP wins by %.2fx over flat, %.2fx over binary\n",
			f(new(big.Rat).Quo(lpSol.Throughput(), flat.Throughput)),
			f(new(big.Rat).Quo(lpSol.Throughput(), bin.Throughput)))
	}
}

// scaling: LP size and solve time as the platform grows.
func scaling() {
	fmt.Fprintf(out, "%-22s %-8s %-8s %-8s %-10s %s\n", "platform", "vars", "cons", "pivots", "time", "TP")
	for _, nLans := range []int{2, 3, 4, 5} {
		cfg := steadystate.DefaultTiersConfig(7)
		cfg.LANs = nLans
		p := steadystate.Tiers(cfg)
		parts := p.Participants()
		start := time.Now()
		sol := must(steadystate.Solve(ctx, p, steadystate.ScatterSpec(parts[0], parts[1:]...)))
		solveTime := time.Since(start)
		rep := must(sol.Report())
		fmt.Fprintf(out, "scatter-tiers-%-9d %-8d %-8d %-8d %-10v %s\n", nLans,
			rep.LPVars, rep.LPConstraints, rep.LPPivots,
			solveTime.Round(time.Millisecond), rep.Throughput)
	}
	for _, nParts := range []int{3, 4, 5, 6} {
		p := topology.Chain(nParts, steadystate.R(1, 2), steadystate.R(1, 1))
		var order []steadystate.NodeID
		for _, n := range p.Nodes() {
			order = append(order, n.ID)
		}
		start := time.Now()
		sol := must(steadystate.Solve(ctx, p, steadystate.ReduceSpec(order, order[0])))
		solveTime := time.Since(start)
		rep := must(sol.Report())
		fmt.Fprintf(out, "reduce-chain-%-9d %-8d %-8d %-8d %-10v %s\n", nParts,
			rep.LPVars, rep.LPConstraints, rep.LPPivots,
			solveTime.Round(time.Millisecond), rep.Throughput)
	}
}

// sessionExp: a repeated-sweep workload — every participant of one Tiers
// platform scatters to three peers — solved twice: cold (fresh platform
// state per solve) and through one Solver session (shared reachability
// index). The sweep is the access pattern of paperbench itself and of the
// topology scaling runs.
func sessionExp() {
	cfg := steadystate.DefaultTiersConfig(11)
	specs := func(p *steadystate.Platform) []steadystate.Spec {
		parts := p.Participants()
		var out []steadystate.Spec
		for i := range parts {
			var targets []steadystate.NodeID
			for d := 1; d <= 3; d++ {
				targets = append(targets, parts[(i+d)%len(parts)])
			}
			out = append(out, steadystate.ScatterSpec(parts[i], targets...))
		}
		return out
	}

	runCold := func() []steadystate.Rat {
		var tps []steadystate.Rat
		for _, spec := range specs(steadystate.Tiers(cfg)) {
			// Rebuild the platform per solve: no shared state at all.
			sol := must(steadystate.Solve(ctx, steadystate.Tiers(cfg), spec))
			tps = append(tps, sol.Throughput())
		}
		return tps
	}
	p := steadystate.Tiers(cfg)
	solver := steadystate.NewSolver(p)
	runSession := func() []steadystate.Rat {
		var tps []steadystate.Rat
		for _, spec := range specs(p) {
			sol := must(solver.Solve(ctx, spec))
			tps = append(tps, sol.Throughput())
		}
		return tps
	}

	// Interleaved best-of-3: a single back-to-back pair is dominated by
	// allocator and GC noise at these solve sizes.
	var coldTPs, sessTPs []steadystate.Rat
	var cold, sess time.Duration
	for round := 0; round < 3; round++ {
		start := time.Now()
		coldTPs = runCold()
		if d := time.Since(start); round == 0 || d < cold {
			cold = d
		}
		start = time.Now()
		sessTPs = runSession()
		if d := time.Since(start); round == 0 || d < sess {
			sess = d
		}
	}

	for i, coldTP := range coldTPs {
		if coldTP.Cmp(sessTPs[i]) != 0 {
			fmt.Fprintf(out, "MISMATCH on spec %d: cold %s vs session %s\n",
				i, coldTP.RatString(), sessTPs[i].RatString())
			return
		}
	}
	fmt.Fprintf(out, "sweep of %d scatter solves on one tiers platform:\n", len(specs(p)))
	fmt.Fprintf(out, "  cold solves:    %v\n", cold.Round(time.Millisecond))
	fmt.Fprintf(out, "  solver session: %v (%.2fx)\n", sess.Round(time.Millisecond),
		float64(cold)/float64(sess))
}
