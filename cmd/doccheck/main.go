// Command doccheck enforces the repository's documentation bar: every
// exported identifier in the listed package directories must carry a doc
// comment. It is the CI docs job's replacement for an external linter's
// "exported" rule — pure go/ast, no dependencies.
//
// The rule itself lives in internal/analysis/passes/exporteddoc, where
// cmd/sslint runs it type-checked over whole package patterns; this
// command remains as the thin parse-only wrapper the docs job calls on
// explicit directories.
//
// Usage:
//
//	doccheck ./pkg1 ./pkg2 ...
//
// For each directory, every non-test Go file is parsed and the exported
// top-level declarations are checked:
//
//   - functions and methods (methods only when their receiver type is
//     itself exported) need a doc comment on the declaration;
//   - types need a doc comment on the declaration group or the spec;
//   - consts and vars need a doc comment on the group, the spec, or a
//     trailing line comment.
//
// Offenders are listed one per line as file:line: identifier; any
// offender makes the command exit non-zero.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/passes/exporteddoc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
}

// run checks every directory argument and returns an error when any
// exported identifier lacks documentation (or a directory fails to
// parse); factored out of main for testability.
func run(dirs []string, out io.Writer) error {
	if len(dirs) == 0 {
		return fmt.Errorf("no package directories given")
	}
	total := 0
	for _, dir := range dirs {
		missing, err := checkDir(dir)
		if err != nil {
			return err
		}
		for _, m := range missing {
			fmt.Fprintln(out, m)
		}
		total += len(missing)
	}
	if total > 0 {
		return fmt.Errorf("%d exported identifier(s) missing doc comments", total)
	}
	return nil
}

// checkDir parses the directory's non-test Go files and returns one
// "file:line: exported X is missing a doc comment" entry per offender,
// sorted by position (parser.ParseDir hands back files in map order).
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var missing []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, f := range exporteddoc.CheckFile(file) {
				p := fset.Position(f.Pos)
				missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s is missing a doc comment",
					filepath.ToSlash(p.Filename), p.Line, f.What, f.Name))
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}
