// Command doccheck enforces the repository's documentation bar: every
// exported identifier in the listed package directories must carry a doc
// comment. It is the CI docs job's replacement for an external linter's
// "exported" rule — pure go/ast, no dependencies.
//
// Usage:
//
//	doccheck ./pkg1 ./pkg2 ...
//
// For each directory, every non-test Go file is parsed and the exported
// top-level declarations are checked:
//
//   - functions and methods (methods only when their receiver type is
//     itself exported) need a doc comment on the declaration;
//   - types need a doc comment on the declaration group or the spec;
//   - consts and vars need a doc comment on the group, the spec, or a
//     trailing line comment.
//
// Offenders are listed one per line as file:line: identifier; any
// offender makes the command exit non-zero.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
}

// run checks every directory argument and returns an error when any
// exported identifier lacks documentation (or a directory fails to
// parse); factored out of main for testability.
func run(dirs []string, out io.Writer) error {
	if len(dirs) == 0 {
		return fmt.Errorf("no package directories given")
	}
	total := 0
	for _, dir := range dirs {
		missing, err := checkDir(dir)
		if err != nil {
			return err
		}
		for _, m := range missing {
			fmt.Fprintln(out, m)
		}
		total += len(missing)
	}
	if total > 0 {
		return fmt.Errorf("%d exported identifier(s) missing doc comments", total)
	}
	return nil
}

// checkDir parses the directory's non-test Go files and returns one
// "file:line: exported X is missing a doc comment" entry per offender.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s is missing a doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return missing, nil
}

// checkFunc flags exported functions — and methods on exported receiver
// types — without doc comments.
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	what, name := "function", d.Name.Name
	if d.Recv != nil && len(d.Recv.List) > 0 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return // a method on an unexported type is not API surface
		}
		what, name = "method", recv+"."+d.Name.Name
	}
	report(d.Pos(), what, name)
}

// checkGen flags exported type, const and var specs whose group and spec
// both lack documentation (const/var specs also accept a trailing line
// comment, the idiomatic style for enum-like groups).
func checkGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			what := "const"
			if d.Tok == token.VAR {
				what = "var"
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), what, name.Name)
				}
			}
		}
	}
}

// receiverName unwraps a method receiver's type expression to its named
// type, looking through pointers and generic instantiations.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
