package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePkg lays one Go file down as a throwaway package directory.
func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDoccheckFlagsUndocumentedExports(t *testing.T) {
	dir := writePkg(t, `package x

func Exported() {}

type Exposed struct{}

func (Exposed) Method() {}

const Loose = 1

var V = 2
`)
	var out bytes.Buffer
	err := run([]string{dir}, &out)
	if err == nil {
		t.Fatal("undocumented exports should fail")
	}
	got := out.String()
	for _, want := range []string{
		"function Exported", "type Exposed", "method Exposed.Method", "const Loose", "var V",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestDoccheckAcceptsDocumentedAndUnexported(t *testing.T) {
	dir := writePkg(t, `package x

// Exported does nothing.
func Exported() {}

// Group docs cover every spec.
const (
	A = 1
	B = 2
)

const (
	C = 3 // trailing comments count too
)

type hidden struct{}

func (hidden) Method() {} // method on unexported type: not API surface

func internal() {}
`)
	var out bytes.Buffer
	if err := run([]string{dir}, &out); err != nil {
		t.Fatalf("clean package flagged: %v\n%s", err, out.String())
	}
}

func TestDoccheckErrors(t *testing.T) {
	if err := run(nil, new(bytes.Buffer)); err == nil {
		t.Error("no directories should fail")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing")}, new(bytes.Buffer)); err == nil {
		t.Error("missing directory should fail")
	}
}

// TestDoccheckRepoPackagesClean pins the documentation bar for the
// packages the CI docs job checks — the same list, kept green here so
// drift is caught by go test before CI.
func TestDoccheckRepoPackagesClean(t *testing.T) {
	dirs := []string{
		"../..",
		"../../internal/composite",
		"../../internal/sweep",
		"../../internal/schedule",
		"../../internal/sim",
		"../../internal/scatter",
		"../../internal/gossip",
		".",
	}
	var out bytes.Buffer
	if err := run(dirs, &out); err != nil {
		t.Errorf("doccheck: %v\n%s", err, out.String())
	}
}
