// Command topogen generates platform description files (JSON) for the
// steady-state collective solvers: regular families, random graphs, the
// Tiers-like hierarchical topology used by the paper's experiments, and
// the paper's own figure platforms.
//
// Usage:
//
//	topogen -kind tiers -seed 42 -out platform.json
//	topogen -kind star -n 8
//	topogen -kind fig9 -dot
//
// Kinds: star, chain, ring, grid, tree, connected, tiers, fig2, fig6, fig9.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	steadystate "repro"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool; factored out of main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind  = fs.String("kind", "tiers", "topology kind: star|chain|ring|grid|tree|connected|tiers|fig2|fig6|fig9")
		n     = fs.Int("n", 8, "node count (star/chain/ring/tree/connected)")
		rows  = fs.Int("rows", 3, "grid rows")
		cols  = fs.Int("cols", 3, "grid cols")
		seed  = fs.Int64("seed", 1, "random seed")
		extra = fs.Float64("extra", 0.5, "extra edges per node (connected)")
		cost  = fs.String("cost", "1", "uniform link cost (regular families)")
		speed = fs.String("speed", "1", "uniform node speed (regular families)")
		out   = fs.String("out", "", "output file (default stdout)")
		dot   = fs.Bool("dot", false, "emit Graphviz DOT instead of JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := steadystate.ParseRat(*cost)
	if err != nil {
		return fmt.Errorf("bad -cost: %w", err)
	}
	s, err := steadystate.ParseRat(*speed)
	if err != nil {
		return fmt.Errorf("bad -speed: %w", err)
	}

	var p *steadystate.Platform
	// The paper's figure platforms are intentionally one-directional
	// (scatter-only edges), which the mutual-connectivity check rejects.
	validate := true
	switch *kind {
	case "star":
		p = steadystate.Star(*n, c, s)
	case "chain":
		p = steadystate.Chain(*n, c, s)
	case "ring":
		p = steadystate.Ring(*n, c, s)
	case "grid":
		p = steadystate.Grid2D(*rows, *cols, c, s)
	case "tree":
		p = topology.RandomTree(*n, topology.DefaultRandomConfig(*seed))
	case "connected":
		p = topology.RandomConnected(*n, *extra, topology.DefaultRandomConfig(*seed))
	case "tiers":
		p = steadystate.Tiers(steadystate.DefaultTiersConfig(*seed))
	case "fig2":
		p, _, _ = steadystate.PaperFig2()
		validate = false
	case "fig6":
		p, _, _ = steadystate.PaperFig6()
	case "fig9":
		p, _, _ = steadystate.PaperFig9()
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
	if validate {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("generated platform invalid: %w", err)
		}
	}

	var data []byte
	if *dot {
		data = []byte(p.DOT())
	} else {
		data, err = json.Marshal(p)
		if err != nil {
			return fmt.Errorf("marshal: %w", err)
		}
		data = append(data, '\n')
	}
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", *out, err)
	}
	fmt.Fprintf(stderr, "wrote %s (%d nodes, %d edges)\n", *out, p.NumNodes(), p.NumEdges())
	return nil
}
