// Command topogen generates platform description files (JSON) for the
// steady-state collective solvers: regular families, random graphs, the
// Tiers-like hierarchical topology used by the paper's experiments, and
// the paper's own figure platforms.
//
// Usage:
//
//	topogen -kind tiers -seed 42 -out platform.json
//	topogen -kind star -n 8
//	topogen -kind fig9 -dot
//	topogen -kind tiers -spec -op reduce -out scenario.json
//	topogen -kind tiers -count 16 -seed 42 -spec -op scatter -out scenarios/
//	topogen -kind tiers -count 4 -perturb 8 -seed 42 -spec -op scatter -out chains/
//
// Kinds: star, chain, ring, grid, tree, connected, tiers, fig2, fig6, fig9.
//
// With -spec the output is a scenario file — the platform plus the spec
// of a collective to solve on it (-op
// scatter|broadcast|gossip|reduce|gather|prefix|reducescatter|allreduce)
// — which cmd/sscollect, cmd/paperbench and cmd/sweep consume directly
// and cmd/solverd accepts over HTTP.
// -ranks N caps the number of participants the spec involves, which keeps
// LP sizes bounded for the expensive composite kinds (an allreduce over
// all ranks of a Tiers platform is an order of magnitude larger than one
// over three). Composite scenarios (several weighted member collectives)
// are built programmatically with CompositeSpec and serialize through the
// same format.
//
// With -count N, topogen synthesizes a scenario batch for cmd/sweep:
// -out names a directory (created if missing) receiving N numbered
// scenario files <kind>-0000.json … <kind>-NNNN.json, scenario i
// generated with seed S+i. Batches are fully deterministic — the same
// -seed reproduces byte-identical files — so an entire sweep is
// reproducible from a single seed.
//
// With -perturb K (alongside -count), every scenario heads a chain of K
// cumulatively perturbed variants — exact-rational cost jitter, node
// speed rescales, the occasional single-edge deletion, all within the
// magnitude set by -jitter — written as <kind>-NNNN-p00.json (the base)
// through -pKK.json. The whole chain shares one spec, so cmd/sweep -warm
// can re-solve it incrementally through a warm-start basis cache.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	steadystate "repro"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool; factored out of main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind     = fs.String("kind", "tiers", "topology kind: star|chain|ring|grid|tree|connected|tiers|fig2|fig6|fig9")
		n        = fs.Int("n", 8, "node count (star/chain/ring/tree/connected)")
		rows     = fs.Int("rows", 3, "grid rows")
		cols     = fs.Int("cols", 3, "grid cols")
		seed     = fs.Int64("seed", 1, "random seed")
		extra    = fs.Float64("extra", 0.5, "extra edges per node (connected)")
		cost     = fs.String("cost", "1", "uniform link cost (regular families)")
		speed    = fs.String("speed", "1", "uniform node speed (regular families)")
		out      = fs.String("out", "", "output file (default stdout)")
		dot      = fs.Bool("dot", false, "emit Graphviz DOT instead of JSON")
		withSpec = fs.Bool("spec", false, "emit a scenario (platform + collective spec) instead of a bare platform")
		op       = fs.String("op", "", "collective kind for -spec: scatter|broadcast|gossip|reduce|gather|prefix|reducescatter|allreduce (default: the figure's canonical collective, else scatter)")
		ranks    = fs.Int("ranks", 0, "cap the number of participants the -spec roles involve (0: all participants)")
		count    = fs.Int("count", 0, "emit a batch of this many numbered scenario files into the -out directory, scenario i seeded with -seed+i")
		perturb  = fs.Int("perturb", 0, "with -count, emit a chain of this many cumulatively perturbed variants after each base scenario (files <kind>-NNNN-pMM.json, p00 the base)")
		jitter   = fs.String("jitter", "1/10", "perturbation magnitude as an exact rational in [0,1): each mutation scales costs or speeds by factors within 1±jitter")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := steadystate.ParseRat(*cost)
	if err != nil {
		return fmt.Errorf("bad -cost: %w", err)
	}
	s, err := steadystate.ParseRat(*speed)
	if err != nil {
		return fmt.Errorf("bad -speed: %w", err)
	}

	if *ranks < 0 {
		return fmt.Errorf("bad -ranks: %d is negative", *ranks)
	}
	cfg := genConfig{kind: *kind, n: *n, rows: *rows, cols: *cols, extra: *extra, cost: c, speed: s, ranks: *ranks}
	if *count > 0 {
		if *dot {
			return fmt.Errorf("-count emits scenario batches, not DOT")
		}
		j, err := steadystate.ParseRat(*jitter)
		if err != nil {
			return fmt.Errorf("bad -jitter: %w", err)
		}
		if j.Sign() < 0 || j.Cmp(steadystate.R(1, 1)) >= 0 {
			return fmt.Errorf("bad -jitter %q: must be in [0,1) to keep costs and speeds positive", *jitter)
		}
		if *perturb < 0 {
			return fmt.Errorf("bad -perturb: %d is negative", *perturb)
		}
		return runBatch(cfg, *count, *perturb, j, *seed, steadystate.Kind(*op), *out, stderr)
	}

	p, figSpec, validate, err := cfg.build(*seed)
	if err != nil {
		return err
	}
	if validate {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("generated platform invalid: %w", err)
		}
	}

	var data []byte
	switch {
	case *dot:
		data = []byte(p.DOT())
	case *withSpec:
		spec, err := defaultSpec(p, steadystate.Kind(*op), figSpec, cfg.ranks)
		if err != nil {
			return err
		}
		sc := &steadystate.Scenario{Platform: p, Spec: spec}
		// MarshalJSON is compact for nesting; the writer owns the pretty
		// printing.
		data, err = json.MarshalIndent(sc, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal scenario: %w", err)
		}
		data = append(data, '\n')
	default:
		data, err = json.MarshalIndent(p, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal: %w", err)
		}
		data = append(data, '\n')
	}
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", *out, err)
	}
	fmt.Fprintf(stderr, "wrote %s (%d nodes, %d edges)\n", *out, p.NumNodes(), p.NumEdges())
	return nil
}

// genConfig is everything platform construction needs besides the seed,
// so batch generation can rebuild the same family with per-scenario
// seeds.
type genConfig struct {
	kind        string
	n           int
	rows, cols  int
	extra       float64
	cost, speed steadystate.Rat
	// ranks caps the participants a generated spec involves (0: all).
	ranks int
}

// build constructs one platform of the configured kind with the given
// seed. Figure platforms come back with their canonical spec; validate
// reports whether the platform should pass the mutual-connectivity check
// (the paper's figure platforms are intentionally one-directional).
func (g genConfig) build(seed int64) (p *steadystate.Platform, figSpec *steadystate.Spec, validate bool, err error) {
	validate = true
	switch g.kind {
	case "star":
		p = steadystate.Star(g.n, g.cost, g.speed)
	case "chain":
		p = steadystate.Chain(g.n, g.cost, g.speed)
	case "ring":
		p = steadystate.Ring(g.n, g.cost, g.speed)
	case "grid":
		p = steadystate.Grid2D(g.rows, g.cols, g.cost, g.speed)
	case "tree":
		p = topology.RandomTree(g.n, topology.DefaultRandomConfig(seed))
	case "connected":
		p = topology.RandomConnected(g.n, g.extra, topology.DefaultRandomConfig(seed))
	case "tiers":
		p = steadystate.Tiers(steadystate.DefaultTiersConfig(seed))
	case "fig2":
		var src steadystate.NodeID
		var tgts []steadystate.NodeID
		p, src, tgts = steadystate.PaperFig2()
		s := steadystate.ScatterSpec(src, tgts...)
		figSpec = &s
		validate = false
	case "fig6":
		var order []steadystate.NodeID
		var tgt steadystate.NodeID
		p, order, tgt = steadystate.PaperFig6()
		s := steadystate.ReduceSpec(order, tgt)
		figSpec = &s
	case "fig9":
		var order []steadystate.NodeID
		var tgt steadystate.NodeID
		p, order, tgt = steadystate.PaperFig9()
		s := steadystate.ReduceSpec(order, tgt)
		figSpec = &s
	default:
		return nil, nil, false, fmt.Errorf("unknown -kind %q", g.kind)
	}
	return p, figSpec, validate, nil
}

// runBatch synthesizes a deterministic scenario batch for cmd/sweep:
// count numbered files in the out directory, scenario i built with seed
// base+i. With perturb > 0 every scenario heads a chain of perturb
// cumulatively mutated variants (files <kind>-NNNN-p00.json … -pKK.json,
// p00 the unperturbed base) sharing one spec — the corpus of a
// warm-started sweep. The same base seed reproduces byte-identical files.
func runBatch(cfg genConfig, count, perturb int, jitter steadystate.Rat, baseSeed int64, op steadystate.Kind, out string, stderr io.Writer) error {
	if out == "" {
		return fmt.Errorf("-count needs -out (a directory for the scenario files)")
	}
	files := 0
	for i := 0; i < count; i++ {
		p, figSpec, validate, err := cfg.build(baseSeed + int64(i))
		if err != nil {
			return err
		}
		if validate {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("scenario %d: generated platform invalid: %w", i, err)
			}
		}
		// The spec is minted once from the base platform and shared by the
		// whole chain: mutations preserve the node set, so the roles stay
		// valid, and an identical spec is what lets a warm sweep's basis
		// cache key match along the chain.
		spec, err := defaultSpec(p, op, figSpec, cfg.ranks)
		if err != nil {
			return fmt.Errorf("scenario %d: %w", i, err)
		}
		rng := rand.New(rand.NewSource(baseSeed + int64(i)))
		for v := 0; v <= perturb; v++ {
			if v > 0 {
				p = perturbed(p, rng, jitter, validate)
			}
			sc := &steadystate.Scenario{Platform: p, Spec: spec}
			data, err := json.MarshalIndent(sc, "", "  ")
			if err != nil {
				return fmt.Errorf("scenario %d: marshal: %w", i, err)
			}
			if files == 0 {
				// Create the directory only once the first scenario exists,
				// so flag mistakes don't leave empty directories behind.
				if err := os.MkdirAll(out, 0o755); err != nil {
					return fmt.Errorf("create -out directory: %w", err)
				}
			}
			name := fmt.Sprintf("%s-%04d.json", cfg.kind, i)
			if perturb > 0 {
				name = fmt.Sprintf("%s-%04d-p%02d.json", cfg.kind, i, v)
			}
			path := filepath.Join(out, name)
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
			files++
		}
	}
	fmt.Fprintf(stderr, "wrote %d %s scenarios to %s (seeds %d..%d)\n",
		files, cfg.kind, out, baseSeed, baseSeed+int64(count)-1)
	return nil
}

// defaultSpec builds the scenario spec for a generated platform: the
// figure platforms keep their canonical roles (re-kinded when -op asks
// for a different collective over the same participants), every other
// platform uses its participants in ID order. ranks > 0 caps the
// participant list before roles are assigned.
func defaultSpec(p *steadystate.Platform, kind steadystate.Kind, figSpec *steadystate.Spec, ranks int) (steadystate.Spec, error) {
	capped := func(parts []steadystate.NodeID) []steadystate.NodeID {
		if ranks > 0 && len(parts) > ranks {
			return parts[:ranks]
		}
		return parts
	}
	if figSpec != nil {
		spec := *figSpec
		parts := specParticipants(spec)
		if kind != "" && kind != spec.Kind {
			// Re-target the canonical roles at the requested collective.
			return rolesFor(kind, capped(parts))
		}
		if ranks > 0 && ranks < len(parts) {
			// Capping drops participants, so the canonical roles must be
			// re-derived over the truncated list.
			return rolesFor(spec.Kind, capped(parts))
		}
		return spec, nil
	}
	return rolesFor(kind, capped(p.Participants()))
}

// specParticipants lists the nodes a figure spec involves, in role order.
func specParticipants(spec steadystate.Spec) []steadystate.NodeID {
	if spec.Kind == steadystate.KindScatter {
		return append([]steadystate.NodeID{spec.Source}, spec.Targets...)
	}
	return spec.Order
}

// rolesFor assigns the default roles of a collective over the listed
// participants: the first node sources/collects, the rest follow in
// order.
func rolesFor(kind steadystate.Kind, parts []steadystate.NodeID) (steadystate.Spec, error) {
	if len(parts) < 2 {
		return steadystate.Spec{}, fmt.Errorf("platform has %d participants, need at least 2 for a spec", len(parts))
	}
	switch kind {
	case steadystate.KindScatter, "":
		return steadystate.ScatterSpec(parts[0], parts[1:]...), nil
	case steadystate.KindBroadcast:
		return steadystate.BroadcastSpec(parts[0], parts[1:]...), nil
	case steadystate.KindGossip:
		return steadystate.GossipSpec(parts, parts), nil
	case steadystate.KindReduce:
		return steadystate.ReduceSpec(parts, parts[0]), nil
	case steadystate.KindGather:
		return steadystate.GatherSpec(parts, parts[0]), nil
	case steadystate.KindPrefix:
		return steadystate.PrefixSpec(parts...), nil
	case steadystate.KindReduceScatter:
		return steadystate.ReduceScatterSpec(parts...), nil
	case steadystate.KindAllreduce:
		return steadystate.AllreduceSpec(parts...), nil
	}
	return steadystate.Spec{}, fmt.Errorf("unknown -op %q", kind)
}
