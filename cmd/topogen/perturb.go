// perturb.go generates perturbation chains: sequences of slightly-mutated
// copies of a base platform, the input corpus of warm-started sweeps
// (cmd/sweep -warm). Mutations are cumulative — chain member j+1 mutates
// member j — and exact: every factor is a rational, so the chain is
// byte-reproducible from its seed. The node set never changes (node IDs
// and therefore the scenario spec stay valid along the whole chain); most
// mutations preserve the LP's structural fingerprint (cost jitter, speed
// rescale), while the occasional edge deletion changes it, exercising the
// warm-start reject path downstream.
package main

import (
	"math/rand"

	steadystate "repro"
	"repro/internal/rat"
)

// perturbed returns one mutation of the platform, driven by the chain's
// rng: usually a cost jitter over every edge, sometimes a single node's
// speed rescale, occasionally a single edge deletion. Deletions are
// guarded by Validate — a mutation that would break mutual connectivity
// falls back to jitter — and skipped entirely when the base platform
// itself does not validate (the paper's one-directional figure
// platforms).
func perturbed(p *steadystate.Platform, rng *rand.Rand, jitter steadystate.Rat, allowDelete bool) *steadystate.Platform {
	nodes := p.Nodes()
	edges := p.Edges()
	switch pick := rng.Intn(8); {
	case pick == 0 && allowDelete && len(edges) > 1:
		i := rng.Intn(len(edges))
		rest := append(append([]steadystate.Edge(nil), edges[:i]...), edges[i+1:]...)
		if q := rebuild(nodes, rest); q.Validate() == nil {
			return q
		}
		return rebuild(nodes, jitterEdges(edges, rng, jitter))
	case pick == 1:
		var computing []int
		for i, n := range nodes {
			if !n.Router {
				computing = append(computing, i)
			}
		}
		if len(computing) == 0 {
			return rebuild(nodes, jitterEdges(edges, rng, jitter))
		}
		scaled := append([]steadystate.Node(nil), nodes...)
		i := computing[rng.Intn(len(computing))]
		scaled[i].Speed = rat.Mul(scaled[i].Speed, factor(rng, jitter))
		return rebuild(scaled, edges)
	default:
		return rebuild(nodes, jitterEdges(edges, rng, jitter))
	}
}

// factor draws an exact multiplicative perturbation 1 + jitter·k/8 with
// k uniform in [-8, 8]; jitter < 1 keeps it strictly positive.
func factor(rng *rand.Rand, jitter steadystate.Rat) steadystate.Rat {
	k := int64(rng.Intn(17) - 8)
	return rat.Add(rat.One(), rat.Mul(jitter, rat.New(k, 8)))
}

// jitterEdges rescales every edge cost by its own random factor.
func jitterEdges(edges []steadystate.Edge, rng *rand.Rand, jitter steadystate.Rat) []steadystate.Edge {
	out := append([]steadystate.Edge(nil), edges...)
	for i := range out {
		out[i].Cost = rat.Mul(out[i].Cost, factor(rng, jitter))
	}
	return out
}

// rebuild reassembles a platform from explicit node and edge lists.
// Nodes are re-added in ID order, so the copy assigns the same NodeIDs
// and every spec minted against the original stays valid.
func rebuild(nodes []steadystate.Node, edges []steadystate.Edge) *steadystate.Platform {
	q := steadystate.NewPlatform()
	for _, n := range nodes {
		if n.Router {
			q.AddRouter(n.Name)
		} else {
			q.AddNode(n.Name, n.Speed)
		}
	}
	for _, e := range edges {
		q.AddEdge(e.From, e.To, e.Cost)
	}
	return q
}
