package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	steadystate "repro"
)

func runOK(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String(), errOut.String()
}

func TestGenerateJSONToStdout(t *testing.T) {
	out, _ := runOK(t, "-kind", "star", "-n", "3")
	var p steadystate.Platform
	if err := json.Unmarshal([]byte(out), &p); err != nil {
		t.Fatalf("output is not a platform: %v", err)
	}
	if p.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4", p.NumNodes())
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	_, errOut := runOK(t, "-kind", "tiers", "-seed", "3", "-out", path)
	if !strings.Contains(errOut, "wrote") {
		t.Errorf("missing confirmation: %q", errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p steadystate.Platform
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatalf("file is not a platform: %v", err)
	}
}

func TestGenerateDOT(t *testing.T) {
	out, _ := runOK(t, "-kind", "ring", "-n", "4", "-dot")
	if !strings.Contains(out, "digraph") {
		t.Errorf("not DOT output: %q", out)
	}
}

func TestAllKinds(t *testing.T) {
	for _, kind := range []string{"star", "chain", "ring", "grid", "tree", "connected", "tiers", "fig2", "fig6", "fig9"} {
		var out, errOut bytes.Buffer
		if err := run([]string{"-kind", kind, "-n", "4"}, &out, &errOut); err != nil {
			t.Errorf("kind %s: %v", kind, err)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope"},
		{"-cost", "garbage"},
		{"-speed", "garbage"},
		{"-badflag"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
