package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	steadystate "repro"
)

func runOK(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String(), errOut.String()
}

func TestGenerateJSONToStdout(t *testing.T) {
	out, _ := runOK(t, "-kind", "star", "-n", "3")
	var p steadystate.Platform
	if err := json.Unmarshal([]byte(out), &p); err != nil {
		t.Fatalf("output is not a platform: %v", err)
	}
	if p.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4", p.NumNodes())
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	_, errOut := runOK(t, "-kind", "tiers", "-seed", "3", "-out", path)
	if !strings.Contains(errOut, "wrote") {
		t.Errorf("missing confirmation: %q", errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p steadystate.Platform
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatalf("file is not a platform: %v", err)
	}
}

func TestGenerateDOT(t *testing.T) {
	out, _ := runOK(t, "-kind", "ring", "-n", "4", "-dot")
	if !strings.Contains(out, "digraph") {
		t.Errorf("not DOT output: %q", out)
	}
}

func TestAllKinds(t *testing.T) {
	for _, kind := range []string{"star", "chain", "ring", "grid", "tree", "connected", "tiers", "fig2", "fig6", "fig9"} {
		var out, errOut bytes.Buffer
		if err := run([]string{"-kind", kind, "-n", "4"}, &out, &errOut); err != nil {
			t.Errorf("kind %s: %v", kind, err)
		}
	}
}

func TestEmitScenario(t *testing.T) {
	for _, op := range []string{"scatter", "gossip", "reduce", "gather", "prefix"} {
		out, _ := runOK(t, "-kind", "ring", "-n", "4", "-spec", "-op", op)
		var sc steadystate.Scenario
		if err := json.Unmarshal([]byte(out), &sc); err != nil {
			t.Fatalf("op %s: output is not a scenario: %v", op, err)
		}
		if sc.Spec.Kind != steadystate.Kind(op) {
			t.Errorf("op %s: spec kind = %q", op, sc.Spec.Kind)
		}
		// The emitted scenario must solve as-is — the file is the
		// interface between topogen and sscollect.
		if _, err := sc.Solve(context.Background()); err != nil {
			t.Errorf("op %s: scenario does not solve: %v", op, err)
		}
	}
}

func TestEmitScenarioFigureKeepsCanonicalRoles(t *testing.T) {
	out, _ := runOK(t, "-kind", "fig6", "-spec", "-op", "reduce")
	var sc steadystate.Scenario
	if err := json.Unmarshal([]byte(out), &sc); err != nil {
		t.Fatal(err)
	}
	sol, err := sc.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput().RatString() != "1" {
		t.Errorf("fig6 scenario TP = %s, want 1", sol.Throughput().RatString())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope"},
		{"-cost", "garbage"},
		{"-speed", "garbage"},
		{"-badflag"},
		{"-kind", "star", "-n", "4", "-spec", "-op", "nope"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
