package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	steadystate "repro"
)

func runOK(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String(), errOut.String()
}

func TestGenerateJSONToStdout(t *testing.T) {
	out, _ := runOK(t, "-kind", "star", "-n", "3")
	var p steadystate.Platform
	if err := json.Unmarshal([]byte(out), &p); err != nil {
		t.Fatalf("output is not a platform: %v", err)
	}
	if p.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4", p.NumNodes())
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	_, errOut := runOK(t, "-kind", "tiers", "-seed", "3", "-out", path)
	if !strings.Contains(errOut, "wrote") {
		t.Errorf("missing confirmation: %q", errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p steadystate.Platform
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatalf("file is not a platform: %v", err)
	}
}

func TestGenerateDOT(t *testing.T) {
	out, _ := runOK(t, "-kind", "ring", "-n", "4", "-dot")
	if !strings.Contains(out, "digraph") {
		t.Errorf("not DOT output: %q", out)
	}
}

func TestAllKinds(t *testing.T) {
	for _, kind := range []string{"star", "chain", "ring", "grid", "tree", "connected", "tiers", "fig2", "fig6", "fig9"} {
		var out, errOut bytes.Buffer
		if err := run([]string{"-kind", kind, "-n", "4"}, &out, &errOut); err != nil {
			t.Errorf("kind %s: %v", kind, err)
		}
	}
}

func TestEmitScenario(t *testing.T) {
	for _, op := range []string{"scatter", "broadcast", "gossip", "reduce", "gather", "prefix", "reducescatter", "allreduce"} {
		out, _ := runOK(t, "-kind", "ring", "-n", "4", "-spec", "-op", op)
		var sc steadystate.Scenario
		if err := json.Unmarshal([]byte(out), &sc); err != nil {
			t.Fatalf("op %s: output is not a scenario: %v", op, err)
		}
		if sc.Spec.Kind != steadystate.Kind(op) {
			t.Errorf("op %s: spec kind = %q", op, sc.Spec.Kind)
		}
		// The emitted scenario must solve as-is — the file is the
		// interface between topogen and sscollect.
		if _, err := sc.Solve(context.Background()); err != nil {
			t.Errorf("op %s: scenario does not solve: %v", op, err)
		}
	}
}

func TestEmitScenarioFigureKeepsCanonicalRoles(t *testing.T) {
	out, _ := runOK(t, "-kind", "fig6", "-spec", "-op", "reduce")
	var sc steadystate.Scenario
	if err := json.Unmarshal([]byte(out), &sc); err != nil {
		t.Fatal(err)
	}
	sol, err := sc.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput().RatString() != "1" {
		t.Errorf("fig6 scenario TP = %s, want 1", sol.Throughput().RatString())
	}
}

// TestRanksCapsSpecParticipants: -ranks bounds the participants a spec
// involves, keeping the composite kinds' LP sizes in check.
func TestRanksCapsSpecParticipants(t *testing.T) {
	out, _ := runOK(t, "-kind", "tiers", "-seed", "42", "-spec", "-op", "allreduce", "-ranks", "3")
	var sc steadystate.Scenario
	if err := json.Unmarshal([]byte(out), &sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.Spec.Order) != 3 {
		t.Errorf("allreduce order has %d ranks, want 3", len(sc.Spec.Order))
	}
	if _, err := sc.Solve(context.Background()); err != nil {
		t.Errorf("capped scenario does not solve: %v", err)
	}
	if err := run([]string{"-ranks", "-1", "-spec"}, new(bytes.Buffer), new(bytes.Buffer)); err == nil {
		t.Error("negative -ranks should fail")
	}

	// Figure platforms keeping their canonical collective re-derive the
	// roles when -ranks truncates the participant list.
	out, _ = runOK(t, "-kind", "fig6", "-spec", "-op", "reduce", "-ranks", "2")
	if err := json.Unmarshal([]byte(out), &sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.Spec.Order) != 2 {
		t.Errorf("fig6 reduce order has %d ranks with -ranks 2", len(sc.Spec.Order))
	}
	if _, err := sc.Solve(context.Background()); err != nil {
		t.Errorf("capped figure scenario does not solve: %v", err)
	}
}

// TestBatchDeterminism: topogen -count must be reproducible from its
// seed alone — two runs with the same seed emit byte-identical files, a
// different seed changes the random platforms.
func TestBatchDeterminism(t *testing.T) {
	gen := func(dir string, seed string) map[string][]byte {
		t.Helper()
		runOK(t, "-kind", "tiers", "-count", "4", "-seed", seed, "-spec", "-op", "scatter", "-out", dir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[string][]byte)
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		return files
	}

	a := gen(t.TempDir(), "42")
	b := gen(t.TempDir(), "42")
	c := gen(t.TempDir(), "43")
	if len(a) != 4 {
		t.Fatalf("batch emitted %d files, want 4", len(a))
	}
	differsFromC := false
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			t.Errorf("same seed produced different bytes for %s", name)
		}
		if !bytes.Equal(data, c[name]) {
			differsFromC = true
		}
		// Every batch file must be a solvable scenario — the batch is the
		// input contract of cmd/sweep.
		var sc steadystate.Scenario
		if err := json.Unmarshal(data, &sc); err != nil {
			t.Fatalf("%s is not a scenario: %v", name, err)
		}
		if _, err := sc.Solve(context.Background()); err != nil {
			t.Errorf("%s does not solve: %v", name, err)
		}
	}
	if !differsFromC {
		t.Error("changing the seed changed nothing; batch seeding is broken")
	}
}

// TestBatchScenariosDifferWithinBatch: scenario i is seeded with seed+i,
// so a random family produces distinct platforms within one batch.
func TestBatchScenariosDifferWithinBatch(t *testing.T) {
	dir := t.TempDir()
	runOK(t, "-kind", "connected", "-n", "6", "-count", "2", "-seed", "7", "-spec", "-out", dir)
	a, err := os.ReadFile(filepath.Join(dir, "connected-0000.json"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "connected-0001.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("scenarios 0 and 1 of a random batch are identical; per-scenario seeding is broken")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope"},
		{"-cost", "garbage"},
		{"-speed", "garbage"},
		{"-badflag"},
		{"-kind", "star", "-n", "4", "-spec", "-op", "nope"},
		{"-kind", "tiers", "-count", "2"},         // batch without -out
		{"-kind", "tiers", "-count", "2", "-dot"}, // batch cannot emit DOT
		{"-kind", "nope", "-count", "2", "-out", "x"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
