package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	steadystate "repro"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errOut.String())
	}
	return out.String()
}

func writeTriangle(t *testing.T) string {
	t.Helper()
	p := steadystate.NewPlatform()
	a := p.AddNode("a", steadystate.R(1, 1))
	b := p.AddNode("b", steadystate.R(1, 1))
	c := p.AddNode("c", steadystate.R(1, 1))
	p.AddLink(a, b, steadystate.R(1, 1))
	p.AddLink(b, c, steadystate.R(1, 1))
	p.AddLink(a, c, steadystate.R(1, 1))
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tri.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScatterOnFig2(t *testing.T) {
	out := runOK(t, "-platform", "fig2", "-op", "scatter", "-schedule", "-simulate", "20")
	for _, want := range []string{"TP = 1/2", "slot boundaries:", "simulated 20 periods"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReduceOnFig6(t *testing.T) {
	out := runOK(t, "-platform", "fig6", "-op", "reduce", "-trees", "-schedule", "-simulate", "20")
	for _, want := range []string{"reduce throughput TP = 1", "reduction tree", "simulated 20 periods"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLatencyFlag(t *testing.T) {
	out := runOK(t, "-platform", "fig2", "-op", "scatter", "-simulate", "30", "-latency")
	if !strings.Contains(out, "pipeline latency: min") {
		t.Errorf("missing latency report:\n%s", out)
	}
}

func TestPrefixOnFig6(t *testing.T) {
	out := runOK(t, "-platform", "fig6", "-op", "prefix")
	if !strings.Contains(out, "prefix throughput") {
		t.Errorf("output:\n%s", out)
	}
}

func TestScatterOnFile(t *testing.T) {
	path := writeTriangle(t)
	out := runOK(t, "-platform", path, "-op", "scatter", "-source", "a", "-targets", "b,c")
	if !strings.Contains(out, "scatter throughput") {
		t.Errorf("output:\n%s", out)
	}
}

func TestGossipOnFile(t *testing.T) {
	path := writeTriangle(t)
	out := runOK(t, "-platform", path, "-op", "gossip", "-sources", "a,b", "-targets", "b,c", "-schedule", "-simulate", "10")
	if !strings.Contains(out, "gossip throughput") {
		t.Errorf("output:\n%s", out)
	}
}

func TestReduceCustomSizeOnFile(t *testing.T) {
	path := writeTriangle(t)
	out := runOK(t, "-platform", path, "-op", "reduce", "-order", "a,b,c", "-target", "a", "-size", "2")
	if !strings.Contains(out, "reduce throughput") {
		t.Errorf("output:\n%s", out)
	}
}

func TestErrorPaths(t *testing.T) {
	path := writeTriangle(t)
	cases := [][]string{
		{},                              // missing platform
		{"-platform", "nope.json"},      // unreadable file
		{"-platform", path, "-op", "x"}, // unknown op
		{"-platform", path, "-op", "scatter", "-source", "zzz", "-targets", "b"},              // unknown node
		{"-platform", path, "-op", "gossip"},                                                  // missing endpoints
		{"-platform", path, "-op", "reduce", "-order", "a,b", "-target", "a", "-size", "bad"}, // bad size
		{"-badflag"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestLoadPlatformBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadScenario(path); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestScenarioFileCarriesSpec(t *testing.T) {
	// A scenario file supplies both platform and spec: no role flags
	// needed.
	p := steadystate.NewPlatform()
	a := p.AddNode("a", steadystate.R(1, 1))
	b := p.AddNode("b", steadystate.R(1, 1))
	c := p.AddNode("c", steadystate.R(1, 1))
	p.AddLink(a, b, steadystate.R(1, 1))
	p.AddLink(b, c, steadystate.R(1, 1))
	sc := &steadystate.Scenario{Platform: p, Spec: steadystate.ScatterSpec(a, b, c)}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-platform", path)
	if !strings.Contains(out, "scatter throughput") {
		t.Errorf("output:\n%s", out)
	}
}

func TestGatherOnFile(t *testing.T) {
	path := writeTriangle(t)
	out := runOK(t, "-platform", path, "-op", "gather", "-order", "a,b,c", "-target", "a", "-blocksize", "2", "-trees")
	for _, want := range []string{"reduce throughput", "reduction trees cover"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReportFile(t *testing.T) {
	report := filepath.Join(t.TempDir(), "report.json")
	runOK(t, "-platform", "fig6", "-op", "reduce", "-fixedperiod", "30", "-report", report)
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep steadystate.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Kind != steadystate.KindReduce || rep.Throughput != "1" {
		t.Errorf("report = %+v, want reduce with TP 1", rep)
	}
	if rep.FixedPeriod != "30" || rep.FixedThroughput == "" {
		t.Errorf("report missing fixed-period fields: %+v", rep)
	}
}

func TestPrefixScheduleUnsupportedIsNotFatal(t *testing.T) {
	// -schedule on a prefix solve degrades to a notice (no schedule
	// construction for prefix); -simulate runs for real, since every kind
	// now builds a simulation model.
	out := runOK(t, "-platform", "fig6", "-op", "prefix", "-schedule", "-simulate", "10")
	for _, want := range []string{"prefix throughput", "simulated 10 periods"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// simSweepCheapScenarios lists the fast members of testdata/sweep (the
// fig9 reduce and tiers42 prefix scenarios are multi-minute LPs, so the
// unit test pins the cheap ones explicitly; CI sweeps whole directories).
func simSweepCheapScenarios() string {
	files := []string{
		"fig6-allreduce.json", "fig6-reduce.json", "fig6-rscatter.json",
		"tiers42-broadcast.json", "tiers42-scatter.json", "bad-truncated.json",
	}
	for i, f := range files {
		files[i] = filepath.Join("..", "..", "testdata", "sweep", f)
	}
	return strings.Join(files, ",")
}

func TestOpSimGolden(t *testing.T) {
	report := filepath.Join(t.TempDir(), "sim.json")
	out := runOK(t, "-op", "sim", "-in", simSweepCheapScenarios(), "-simulate", "40", "-report", report)

	golden, err := os.ReadFile(filepath.Join("testdata", "op-sim.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Errorf("-op sim output differs from testdata/op-sim.golden:\ngot:\n%s\nwant:\n%s", out, golden)
	}

	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var sweep simSweepSummary
	if err := json.Unmarshal(data, &sweep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if sweep.Periods != 40 || len(sweep.Scenarios) != 6 {
		t.Errorf("report = %d periods, %d scenarios; want 40, 6", sweep.Periods, len(sweep.Scenarios))
	}
	if sweep.Failures != 0 || sweep.Errors != 1 {
		t.Errorf("report counts failures=%d errors=%d; want 0 conformance failures, 1 load error", sweep.Failures, sweep.Errors)
	}
	for _, sc := range sweep.Scenarios {
		if sc.Name == "fig6-allreduce" && len(sc.Members) != 4 {
			t.Errorf("allreduce summary has %d member rows, want 4", len(sc.Members))
		}
	}
}

func TestOpSimErrorPaths(t *testing.T) {
	cases := [][]string{
		{"-op", "sim"},                     // missing -in
		{"-op", "sim", "-in", "nope.json"}, // unreadable entry
		{"-op", "sim", "-in", ", ,"},       // no files
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCompositeSimulateMemberLines(t *testing.T) {
	// A composite -simulate reports the merged replay plus one line per
	// member against the member's own bound.
	path := filepath.Join("..", "..", "testdata", "sweep", "fig6-rscatter.json")
	out := runOK(t, "-platform", path, "-simulate", "20")
	for _, want := range []string{"simulated 20 periods", "member op0 (reduce)", "member op2 (reduce)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
