// sim.go implements sscollect -op sim: a sim-backed conformance sweep.
// Every scenario in -in (files or directories of scenario JSON) is solved,
// turned into a simulation model, and replayed for -simulate periods; the
// delivered count must land in the Lemma-1 window [TP·K − warmup, TP·K],
// with the warmup bounded by the schedule depth. Composite scenarios are
// additionally checked per member against the member's own throughput.
// Load and solve errors are reported and counted but do not abort the
// sweep; conformance failures make the command exit non-zero.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	steadystate "repro"
)

// simMemberSummary is one composite member's conformance verdict.
type simMemberSummary struct {
	Kind      string  `json:"kind"`
	Delivered string  `json:"delivered"`
	Bound     string  `json:"bound"`
	Ratio     float64 `json:"ratio"`
	OK        bool    `json:"ok"`
}

// simScenarioSummary is one scenario's replay outcome.
type simScenarioSummary struct {
	Name      string             `json:"name"`
	Kind      string             `json:"kind,omitempty"`
	Period    string             `json:"period,omitempty"`
	Delivered string             `json:"delivered,omitempty"`
	Bound     string             `json:"bound,omitempty"`
	Ratio     float64            `json:"ratio,omitempty"`
	FirstFull int                `json:"first_full_period"`
	OK        bool               `json:"ok"`
	Error     string             `json:"error,omitempty"`
	Members   []simMemberSummary `json:"members,omitempty"`
}

// simSweepSummary is the whole sweep's JSON report (-report).
type simSweepSummary struct {
	Periods   int                  `json:"periods"`
	Scenarios []simScenarioSummary `json:"scenarios"`
	Failures  int                  `json:"conformance_failures"`
	Errors    int                  `json:"errors"`
}

// simConformance applies the delivered-count window for one sink set:
// delivered ∈ [TP·T·(K−W), TP·T·K] with W ≤ depth, and zero throughput
// must deliver nothing.
func simConformance(delivered *big.Int, tp steadystate.Rat, period *big.Int, periods, firstFull, depth int) (bound steadystate.Rat, ratio float64, ok bool) {
	perPeriod := new(big.Rat).Mul(tp, new(big.Rat).SetInt(period))
	bound = new(big.Rat).Mul(perPeriod, new(big.Rat).SetInt64(int64(periods)))
	d := new(big.Rat).SetInt(delivered)
	if bound.Sign() == 0 {
		return bound, 0, delivered.Sign() == 0
	}
	ratio, _ = new(big.Rat).Quo(d, bound).Float64()
	if firstFull < 0 || firstFull > depth {
		return bound, ratio, false
	}
	floor := new(big.Rat).Mul(perPeriod, new(big.Rat).SetInt64(int64(periods-firstFull)))
	return bound, ratio, d.Cmp(bound) <= 0 && d.Cmp(floor) >= 0
}

// simSweepFiles expands the comma-separated -in list: each entry is a
// scenario file or a directory whose *.json files are taken in sorted
// order.
func simSweepFiles(paths string) ([]string, error) {
	var files []string
	for _, entry := range strings.Split(paths, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		info, err := os.Stat(entry)
		if err != nil {
			return nil, fmt.Errorf("stat -in entry: %w", err)
		}
		if !info.IsDir() {
			files = append(files, entry)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(entry, "*.json"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		files = append(files, matches...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("-in matched no scenario files")
	}
	return files, nil
}

// simScenario solves and replays one scenario file.
func simScenario(path string, periods int) simScenarioSummary {
	sum := simScenarioSummary{Name: strings.TrimSuffix(filepath.Base(path), ".json"), FirstFull: -1}
	fail := func(err error) simScenarioSummary {
		sum.Error = err.Error()
		return sum
	}
	sc, err := loadScenario(path)
	if err != nil {
		return fail(err)
	}
	if sc.Spec.Kind == "" {
		return fail(fmt.Errorf("scenario carries no collective spec"))
	}
	sum.Kind = string(sc.Spec.Kind)
	sol, err := steadystate.Solve(context.Background(), sc.Platform, sc.Spec)
	if err != nil {
		return fail(fmt.Errorf("solve: %w", err))
	}
	m, err := sol.SimModel()
	if err != nil {
		return fail(fmt.Errorf("simulation model: %w", err))
	}
	res, err := steadystate.Simulate(m, periods)
	if err != nil {
		return fail(fmt.Errorf("simulate: %w", err))
	}
	depth := len(m.Transfers) + len(m.Rules) + 1
	sum.Period = m.Period.String()
	sum.FirstFull = res.FirstFullPeriod
	sum.Delivered = res.MinDelivered().String()

	bound, ratio, ok := simConformance(res.MinDelivered(), sol.Throughput(), m.Period, periods, res.FirstFullPeriod, depth)
	sum.Bound, sum.Ratio, sum.OK = bound.RatString(), ratio, ok
	if conc, isConc := sol.(steadystate.Concurrent); isConc {
		for i, member := range conc.Members() {
			delivered := res.MinDeliveredPrefix(steadystate.SimMemberPrefix(i))
			mBound, mRatio, mOK := simConformance(delivered, member.Throughput(), m.Period, periods, res.FirstFullPeriod, depth)
			sum.Members = append(sum.Members, simMemberSummary{
				Kind:      string(member.Kind()),
				Delivered: delivered.String(),
				Bound:     mBound.RatString(),
				Ratio:     mRatio,
				OK:        mOK,
			})
			if !mOK {
				sum.OK = false
			}
		}
	}
	return sum
}

// simSweep runs the -op sim mode: replay every scenario and tabulate the
// delivered-versus-bound verdicts.
func simSweep(paths string, periods int, reportFile string, stdout, stderr io.Writer) error {
	if paths == "" {
		return fmt.Errorf("-op sim needs -in (scenario files or directories, comma separated)")
	}
	if periods <= 0 {
		periods = 50
	}
	files, err := simSweepFiles(paths)
	if err != nil {
		return err
	}

	sweep := simSweepSummary{Periods: periods}
	okCount := 0
	for _, path := range files {
		sum := simScenario(path, periods)
		switch {
		case sum.Error != "":
			sweep.Errors++
			fmt.Fprintf(stderr, "sscollect: %s: %s\n", sum.Name, sum.Error)
		case sum.OK:
			okCount++
		default:
			sweep.Failures++
		}
		sweep.Scenarios = append(sweep.Scenarios, sum)
	}

	fmt.Fprintf(stdout, "sim conformance: %d scenario(s), %d periods each\n\n", len(files), periods)
	tw := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tkind\tperiod\tdelivered\tbound\tratio\tinit\tok\t")
	verdict := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	for _, sum := range sweep.Scenarios {
		if sum.Error != "" {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t-\terror\t\n", sum.Name)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%.4f\t%d\t%s\t\n",
			sum.Name, sum.Kind, sum.Period, sum.Delivered, sum.Bound, sum.Ratio, sum.FirstFull, verdict(sum.OK))
		for i, mem := range sum.Members {
			fmt.Fprintf(tw, "  %s/%s\t%s\t\t%s\t%s\t%.4f\t\t%s\t\n",
				sum.Name, strings.TrimSuffix(steadystate.SimMemberPrefix(i), ":"),
				mem.Kind, mem.Delivered, mem.Bound, mem.Ratio, verdict(mem.OK))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\n%d ok, %d conformance failure(s), %d error(s)\n", okCount, sweep.Failures, sweep.Errors)

	if reportFile != "" {
		data, err := json.MarshalIndent(sweep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(reportFile, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", reportFile, err)
		}
		fmt.Fprintf(stderr, "wrote %s\n", reportFile)
	}
	if sweep.Failures > 0 {
		return fmt.Errorf("%d scenario(s) failed sim conformance", sweep.Failures)
	}
	return nil
}
