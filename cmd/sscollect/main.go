// Command sscollect solves a steady-state collective on a platform file
// and prints the optimal throughput, the LP solution, and optionally the
// periodic schedule, extracted reduction trees, and a protocol simulation.
//
// Usage:
//
//	sscollect -platform p.json -op scatter -source n0 -targets n1,n2
//	sscollect -platform p.json -op gossip  -sources n0,n1 -targets n2,n3
//	sscollect -platform p.json -op reduce  -order n0,n1,n2 -target n0 -trees -schedule
//	sscollect -platform p.json -op prefix  -order n0,n1,n2 -simulate 100
//
// Omit -platform to use the paper's figure platforms: -platform fig2|fig6|fig9.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"strings"

	steadystate "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "sscollect: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool; factored out of main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sscollect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		platformFile = fs.String("platform", "", "platform JSON file, or fig2|fig6|fig9")
		op           = fs.String("op", "scatter", "collective: scatter|gossip|reduce|prefix")
		source       = fs.String("source", "", "scatter source node name")
		sources      = fs.String("sources", "", "gossip source names, comma separated")
		targets      = fs.String("targets", "", "scatter/gossip target names, comma separated")
		order        = fs.String("order", "", "reduce/prefix participant names in rank order")
		target       = fs.String("target", "", "reduce target node name")
		size         = fs.String("size", "1", "uniform message size (reduce/prefix)")
		showSched    = fs.Bool("schedule", false, "print the periodic schedule (Gantt)")
		showTrees    = fs.Bool("trees", false, "print extracted reduction trees (reduce)")
		simulate     = fs.Int("simulate", 0, "simulate the protocol for N periods")
		latency      = fs.Bool("latency", false, "with -simulate: also report per-operation pipeline latency")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, figSource, figTargets, figOrder, figTarget, err := loadPlatform(*platformFile)
	if err != nil {
		return err
	}

	var lookupErr error
	lookup := func(name string) steadystate.NodeID {
		id, ok := p.Lookup(name)
		if !ok && lookupErr == nil {
			lookupErr = fmt.Errorf("unknown node %q", name)
		}
		return id
	}
	lookupList := func(csv string) []steadystate.NodeID {
		var out []steadystate.NodeID
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name != "" {
				out = append(out, lookup(name))
			}
		}
		return out
	}

	switch *op {
	case "scatter":
		src := figSource
		tgt := figTargets
		if *source != "" {
			src = lookup(*source)
		}
		if *targets != "" {
			tgt = lookupList(*targets)
		}
		if lookupErr != nil {
			return lookupErr
		}
		sol, err := steadystate.SolveScatter(p, src, tgt)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, sol.String())
		if *showSched {
			sched, err := steadystate.ScatterSchedule(sol)
			if err != nil {
				return fmt.Errorf("schedule: %w", err)
			}
			fmt.Fprint(stdout, sched.Gantt())
		}
		if *simulate > 0 {
			return simReport(stdout, steadystate.ScatterSimModel(sol), *simulate, sol.Throughput(), *latency)
		}

	case "gossip":
		if *sources == "" || *targets == "" {
			return fmt.Errorf("gossip needs -sources and -targets")
		}
		srcs := lookupList(*sources)
		tgts := lookupList(*targets)
		if lookupErr != nil {
			return lookupErr
		}
		sol, err := steadystate.SolveGossip(p, srcs, tgts)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, sol.String())
		if *showSched {
			sched, err := steadystate.GossipSchedule(sol)
			if err != nil {
				return fmt.Errorf("schedule: %w", err)
			}
			fmt.Fprint(stdout, sched.Gantt())
		}
		if *simulate > 0 {
			return simReport(stdout, steadystate.GossipSimModel(sol), *simulate, sol.Throughput(), *latency)
		}

	case "reduce":
		ord := figOrder
		tgt := figTarget
		if *order != "" {
			ord = lookupList(*order)
		}
		if *target != "" {
			tgt = lookup(*target)
		}
		if lookupErr != nil {
			return lookupErr
		}
		pr, err := steadystate.NewReduceProblem(p, ord, tgt)
		if err != nil {
			return err
		}
		sz, err := steadystate.ParseRat(*size)
		if err != nil {
			return fmt.Errorf("bad -size: %w", err)
		}
		pr.SizeOf = func(steadystate.ReduceRange) steadystate.Rat { return sz }
		sol, err := pr.Solve()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, sol.String())
		app := sol.Integerize()
		trees, err := app.ExtractTrees()
		if err != nil {
			return fmt.Errorf("trees: %w", err)
		}
		fmt.Fprintf(stdout, "%d reduction trees cover %s operations per period %s\n",
			len(trees), app.Ops.String(), app.Period.String())
		if *showTrees {
			for _, tr := range trees {
				fmt.Fprint(stdout, tr.String(pr))
			}
		}
		if *showSched {
			sched, err := steadystate.ReduceSchedule(app, trees, nil)
			if err != nil {
				return fmt.Errorf("schedule: %w", err)
			}
			fmt.Fprint(stdout, sched.Gantt())
		}
		if *simulate > 0 {
			return simReport(stdout, steadystate.ReduceSimModel(app), *simulate, sol.Throughput(), *latency)
		}

	case "prefix":
		ord := figOrder
		if *order != "" {
			ord = lookupList(*order)
		}
		if lookupErr != nil {
			return lookupErr
		}
		sol, err := steadystate.SolvePrefix(p, ord)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, sol.String())

	default:
		return fmt.Errorf("unknown -op %q", *op)
	}
	return nil
}

// loadPlatform loads a JSON platform or one of the canned figure
// platforms, returning figure defaults where applicable.
func loadPlatform(spec string) (p *steadystate.Platform, src steadystate.NodeID,
	targets []steadystate.NodeID, order []steadystate.NodeID, target steadystate.NodeID, err error) {
	switch spec {
	case "fig2":
		p, src, targets = steadystate.PaperFig2()
		return p, src, targets, nil, 0, nil
	case "fig6":
		p, order, target = steadystate.PaperFig6()
		return p, 0, nil, order, target, nil
	case "fig9":
		p, order, target = steadystate.PaperFig9()
		return p, 0, nil, order, target, nil
	case "":
		return nil, 0, nil, nil, 0, fmt.Errorf("need -platform (a JSON file or fig2|fig6|fig9)")
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, 0, nil, nil, 0, fmt.Errorf("read %s: %w", spec, err)
	}
	p = steadystate.NewPlatform()
	if err := json.Unmarshal(data, p); err != nil {
		return nil, 0, nil, nil, 0, fmt.Errorf("parse %s: %w", spec, err)
	}
	return p, 0, nil, nil, 0, nil
}

func simReport(stdout io.Writer, m *steadystate.SimModel, periods int, tp steadystate.Rat, latency bool) error {
	res, err := steadystate.Simulate(m, periods)
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}
	k := new(big.Int).Mul(big.NewInt(int64(periods)), m.Period)
	bound := new(big.Rat).Mul(tp, new(big.Rat).SetInt(k))
	delivered := new(big.Rat).SetInt(res.MinDelivered())
	ratio := new(big.Rat)
	if bound.Sign() > 0 {
		ratio.Quo(delivered, bound)
	}
	f, _ := ratio.Float64()
	fmt.Fprintf(stdout, "simulated %d periods (K = %s time units): delivered %s ops, bound %s, ratio %.4f (init ends period %d)\n",
		periods, k.String(), res.MinDelivered().String(), bound.RatString(), f, res.FirstFullPeriod)
	if latency {
		lat, err := steadystate.SimulateLatency(m, periods)
		if err != nil {
			return fmt.Errorf("latency simulation: %w", err)
		}
		fmt.Fprintf(stdout, "pipeline latency: min %d, mean %.2f, max %d periods\n",
			lat.MinLatency, lat.MeanLatency(), lat.MaxLatency)
	}
	return nil
}
