// Command sscollect solves a steady-state collective on a platform or
// scenario file and prints the optimal throughput, the LP solution, and
// optionally the periodic schedule, extracted reduction trees, a protocol
// simulation, and a machine-readable report.
//
// Usage:
//
//	sscollect -platform p.json -op scatter -source n0 -targets n1,n2
//	sscollect -platform p.json -op broadcast -source n0 -targets n1,n2 -schedule
//	sscollect -platform p.json -op gossip  -sources n0,n1 -targets n2,n3
//	sscollect -platform p.json -op reduce  -order n0,n1,n2 -target n0 -trees -schedule
//	sscollect -platform p.json -op gather  -order n0,n1,n2 -target n0 -blocksize 2
//	sscollect -platform p.json -op prefix  -order n0,n1,n2
//	sscollect -platform p.json -op reducescatter -order n0,n1,n2 -schedule
//	sscollect -platform p.json -op allreduce -order n0,n1,n2 -schedule
//	sscollect -platform scenario.json -report report.json
//	sscollect -op trace -in traces.jsonl -top 5   # summarize a sweep trace JSONL
//	sscollect -op warm -in warm.jsonl             # summarize a warm sweep's cold-vs-warm deltas
//	sscollect -op sim -in scenarios/ -simulate 50 # sim-conformance sweep: replay each scenario,
//	                                              # check delivered ∈ [TP·K − warmup, TP·K]
//
// A scenario file (cmd/topogen -spec) carries both the platform and the
// collective spec, so -op and the role flags become optional overrides;
// the same files drive cmd/sweep in batches and cmd/solverd over HTTP.
// Omit -platform to use the paper's figure platforms: -platform
// fig2|fig6|fig9.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"strings"

	steadystate "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "sscollect: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool; factored out of main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sscollect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		platformFile = fs.String("platform", "", "platform or scenario JSON file, or fig2|fig6|fig9")
		op           = fs.String("op", "", "collective: scatter|broadcast|gossip|reduce|gather|prefix|reducescatter|allreduce (default: the scenario's spec, else scatter), trace/warm to summarize a sweep's trace/result JSONL, or sim for a sim-conformance sweep over -in scenarios")
		source       = fs.String("source", "", "scatter source node name")
		sources      = fs.String("sources", "", "gossip source names, comma separated")
		targets      = fs.String("targets", "", "scatter/gossip target names, comma separated")
		order        = fs.String("order", "", "reduce/gather/prefix participant names in rank order")
		target       = fs.String("target", "", "reduce/gather target node name")
		size         = fs.String("size", "1", "uniform message size (reduce)")
		blockSize    = fs.String("blocksize", "1", "per-participant block size (gather)")
		fixedPeriod  = fs.Int64("fixedperiod", 0, "truncate the reduce tree family to this period (Section 4.6)")
		showSched    = fs.Bool("schedule", false, "print the periodic schedule (Gantt)")
		showTrees    = fs.Bool("trees", false, "print extracted reduction trees (reduce/gather)")
		simulate     = fs.Int("simulate", 0, "simulate the protocol for N periods")
		latency      = fs.Bool("latency", false, "with -simulate: also report per-operation pipeline latency")
		reportFile   = fs.String("report", "", "write the solution summary as JSON to this file")
		traceIn      = fs.String("in", "", "with -op trace or -op warm: sweep JSONL to summarize (\"-\": stdin); with -op sim: comma-separated scenario files or directories")
		topSpans     = fs.Int("top", 5, "with -op trace: slowest spans to list")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *op == "trace" {
		// Trace summarization is an offline aggregation — no platform, no
		// solve — so it branches before scenario loading.
		return traceSummary(*traceIn, *topSpans, stdout)
	}
	if *op == "warm" {
		// Likewise offline: per-chain cold-vs-warm deltas from a warm
		// sweep's result JSONL.
		return warmSummary(*traceIn, stdout)
	}
	if *op == "sim" {
		// A batch of its own solves: replay every -in scenario and check
		// delivered counts against the Lemma-1 window.
		return simSweep(*traceIn, *simulate, *reportFile, stdout, stderr)
	}

	sc, err := loadScenario(*platformFile)
	if err != nil {
		return err
	}
	p, spec := sc.Platform, sc.Spec
	if *op != "" {
		spec.Kind = steadystate.Kind(*op)
	}
	if spec.Kind == "" {
		spec.Kind = steadystate.KindScatter
	}

	var lookupErr error
	lookup := func(name string) steadystate.NodeID {
		id, ok := p.Lookup(name)
		if !ok && lookupErr == nil {
			lookupErr = fmt.Errorf("unknown node %q", name)
		}
		return id
	}
	lookupList := func(csv string) []steadystate.NodeID {
		var out []steadystate.NodeID
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name != "" {
				out = append(out, lookup(name))
			}
		}
		return out
	}
	if *source != "" {
		spec.Source = lookup(*source)
	}
	if *sources != "" {
		spec.Sources = lookupList(*sources)
	}
	if *targets != "" {
		spec.Targets = lookupList(*targets)
	}
	if *order != "" {
		spec.Order = lookupList(*order)
	}
	if *target != "" {
		spec.Target = lookup(*target)
	}
	if lookupErr != nil {
		return lookupErr
	}

	var opts []steadystate.SolveOption
	switch spec.Kind {
	case steadystate.KindReduce, steadystate.KindReduceScatter:
		sz, err := steadystate.ParseRat(*size)
		if err != nil {
			return fmt.Errorf("bad -size: %w", err)
		}
		opts = append(opts, steadystate.WithMessageSize(sz))
	case steadystate.KindAllreduce:
		if *size != "1" {
			return fmt.Errorf("-size is not supported for allreduce (the allgather phase moves unit-size segments)")
		}
	case steadystate.KindGather:
		bs, err := steadystate.ParseRat(*blockSize)
		if err != nil {
			return fmt.Errorf("bad -blocksize: %w", err)
		}
		opts = append(opts, steadystate.WithBlockSize(bs))
	}
	if *fixedPeriod < 0 {
		return fmt.Errorf("bad -fixedperiod: %d is not a positive period", *fixedPeriod)
	}
	if *fixedPeriod > 0 {
		opts = append(opts, steadystate.WithFixedPeriod(big.NewInt(*fixedPeriod)))
	}

	sol, err := steadystate.Solve(context.Background(), p, spec, opts...)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, sol.String())

	if c, ok := sol.(steadystate.Certified); ok {
		app, trees, err := c.Certificate()
		if err != nil {
			return fmt.Errorf("trees: %w", err)
		}
		fmt.Fprintf(stdout, "%d reduction trees cover %s operations per period %s\n",
			len(trees), app.Ops.String(), app.Period.String())
		if *showTrees {
			pr := sol.Unwrap().(*steadystate.ReduceSolution).Problem
			for _, tr := range trees {
				fmt.Fprint(stdout, tr.String(pr))
			}
		}
	}

	if *showSched {
		sched, err := sol.Schedule()
		switch {
		case errors.Is(err, steadystate.ErrUnsupported):
			fmt.Fprintf(stderr, "sscollect: no schedule construction for %s; skipping -schedule\n", spec.Kind)
		case err != nil:
			return fmt.Errorf("schedule: %w", err)
		default:
			fmt.Fprint(stdout, sched.Gantt())
		}
	}

	if *simulate > 0 {
		// Every kind builds a simulation model (composites via the merged
		// member models), so there is no ErrUnsupported escape here.
		m, err := sol.SimModel()
		if err != nil {
			return fmt.Errorf("simulation model: %w", err)
		}
		if err := simReport(stdout, m, *simulate, sol, *latency); err != nil {
			return err
		}
	}

	if *reportFile != "" {
		rep, err := sol.Report()
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportFile, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *reportFile, err)
		}
		fmt.Fprintf(stderr, "wrote %s\n", *reportFile)
	}
	return nil
}

// loadScenario loads a scenario or bare-platform JSON file, or one of the
// canned figure platforms with their canonical specs.
func loadScenario(spec string) (*steadystate.Scenario, error) {
	switch spec {
	case "fig2":
		p, src, targets := steadystate.PaperFig2()
		return &steadystate.Scenario{Platform: p, Spec: steadystate.ScatterSpec(src, targets...)}, nil
	case "fig6":
		p, order, target := steadystate.PaperFig6()
		return &steadystate.Scenario{Platform: p, Spec: steadystate.ReduceSpec(order, target)}, nil
	case "fig9":
		p, order, target := steadystate.PaperFig9()
		return &steadystate.Scenario{Platform: p, Spec: steadystate.ReduceSpec(order, target)}, nil
	case "":
		return nil, fmt.Errorf("need -platform (a JSON file or fig2|fig6|fig9)")
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", spec, err)
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("parse %s: %w", spec, err)
	}
	if _, ok := probe["platform"]; ok {
		sc := &steadystate.Scenario{}
		if err := json.Unmarshal(data, sc); err != nil {
			return nil, fmt.Errorf("parse scenario %s: %w", spec, err)
		}
		return sc, nil
	}
	p := steadystate.NewPlatform()
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("parse %s: %w", spec, err)
	}
	return &steadystate.Scenario{Platform: p}, nil
}

func simReport(stdout io.Writer, m *steadystate.SimModel, periods int, sol steadystate.Solution, latency bool) error {
	res, err := steadystate.Simulate(m, periods)
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}
	k := new(big.Int).Mul(big.NewInt(int64(periods)), m.Period)
	bound := new(big.Rat).Mul(sol.Throughput(), new(big.Rat).SetInt(k))
	delivered := new(big.Rat).SetInt(res.MinDelivered())
	ratio := new(big.Rat)
	if bound.Sign() > 0 {
		ratio.Quo(delivered, bound)
	}
	f, _ := ratio.Float64()
	fmt.Fprintf(stdout, "simulated %d periods (K = %s time units): delivered %s ops, bound %s, ratio %.4f (init ends period %d)\n",
		periods, k.String(), res.MinDelivered().String(), bound.RatString(), f, res.FirstFullPeriod)
	if conc, ok := sol.(steadystate.Concurrent); ok {
		// The merged replay carries every member under its own commodity
		// namespace: report each member's share against its own bound.
		for i, member := range conc.Members() {
			d := res.MinDeliveredPrefix(steadystate.SimMemberPrefix(i))
			mb := new(big.Rat).Mul(member.Throughput(), new(big.Rat).SetInt(k))
			mr := new(big.Rat)
			if mb.Sign() > 0 {
				mr.Quo(new(big.Rat).SetInt(d), mb)
			}
			mf, _ := mr.Float64()
			fmt.Fprintf(stdout, "  member %s (%s): delivered %s ops, bound %s, ratio %.4f\n",
				strings.TrimSuffix(steadystate.SimMemberPrefix(i), ":"), member.Kind(), d.String(), mb.RatString(), mf)
		}
	}
	if latency {
		lat, err := steadystate.SimulateLatency(m, periods)
		if err != nil {
			return fmt.Errorf("latency simulation: %w", err)
		}
		fmt.Fprintf(stdout, "pipeline latency: min %d, mean %.2f, max %d periods\n",
			lat.MinLatency, lat.MeanLatency(), lat.MaxLatency)
	}
	return nil
}
