// trace.go implements sscollect -op trace: offline summarization of the
// span-structured solve traces that cmd/sweep -trace (and solverd's
// ?trace=1) stream as JSONL. The summary is deterministic given the
// trace structure — per-kind pivot and phase aggregates come from exact
// span attributes — while the slowest-span table reads the spans' timing
// blocks, the one wall-clock part of a trace.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	steadystate "repro"
	"repro/internal/sweep"
)

// kindAgg accumulates the pivot/phase statistics of one collective kind
// across a trace batch.
type kindAgg struct {
	traces     int
	spans      int
	phase1     int // lp.phase1 "pivots" (includes artificial drive-out)
	driveout   int // lp.phase1 "driveout_pivots"
	phase2     int // lp.phase2 "pivots"
	degenerate int // degenerate pivots across both phases
	blandAct   int // Bland's-rule activations across both phases
}

// spanCost labels one span's wall-clock cost for the slowest-span table.
type spanCost struct {
	scenario string
	path     string // slash-joined span path, e.g. solve/lp.phase2
	durMS    float64
}

// traceSummary aggregates a sweep trace JSONL into per-kind pivot/phase
// aggregates and the top-N slowest spans.
func traceSummary(path string, topN int, stdout io.Writer) error {
	if path == "" {
		return fmt.Errorf("-op trace needs -in (a trace JSONL from sweep -trace, \"-\": stdin)")
	}
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("open -in: %w", err)
		}
		defer f.Close()
		in = f
	}

	kinds := make(map[steadystate.Kind]*kindAgg)
	var costs []spanCost
	traces := 0
	scanner := bufio.NewScanner(in)
	scanner.Buffer(nil, 64<<20) // traces of big scenarios outgrow the default line cap
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec sweep.TraceRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("parse line %d: %w", lineNo, err)
		}
		if rec.Trace == nil || rec.Trace.Root == nil {
			continue
		}
		traces++
		agg := kinds[rec.Kind]
		if agg == nil {
			agg = &kindAgg{}
			kinds[rec.Kind] = agg
		}
		agg.traces++

		var walk func(s *steadystate.Span, prefix string)
		walk = func(s *steadystate.Span, prefix string) {
			p := s.Name
			if prefix != "" {
				p = prefix + "/" + s.Name
			}
			agg.spans++
			if s.Timing != nil {
				costs = append(costs, spanCost{scenario: rec.Name, path: p, durMS: s.Timing.DurMS})
			}
			switch s.Name {
			case "lp.phase1":
				agg.phase1 += intAttr(s, "pivots")
				agg.driveout += intAttr(s, "driveout_pivots")
				agg.degenerate += intAttr(s, "degenerate_pivots")
				agg.blandAct += intAttr(s, "bland_activations")
			case "lp.phase2":
				agg.phase2 += intAttr(s, "pivots")
				agg.degenerate += intAttr(s, "degenerate_pivots")
				agg.blandAct += intAttr(s, "bland_activations")
			}
			for _, c := range s.Children {
				walk(c, p)
			}
		}
		walk(rec.Trace.Root, "")
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("read -in: %w", err)
	}

	fmt.Fprintf(stdout, "trace summary: %d trace(s)\n\n", traces)
	names := make([]steadystate.Kind, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	tw := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "kind\ttraces\tspans\tphase1_pivots\tdriveout\tphase2_pivots\tdegenerate\tbland_activations\t")
	for _, k := range names {
		a := kinds[k]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			k, a.traces, a.spans, a.phase1, a.driveout, a.phase2, a.degenerate, a.blandAct)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if topN > 0 && len(costs) > 0 {
		sort.Slice(costs, func(i, j int) bool {
			if costs[i].durMS != costs[j].durMS {
				return costs[i].durMS > costs[j].durMS
			}
			if costs[i].scenario != costs[j].scenario {
				return costs[i].scenario < costs[j].scenario
			}
			return costs[i].path < costs[j].path
		})
		if topN > len(costs) {
			topN = len(costs)
		}
		fmt.Fprintf(stdout, "\ntop %d slowest span(s):\n", topN)
		for _, c := range costs[:topN] {
			fmt.Fprintf(stdout, "  %10.3f ms  %s  %s\n", c.durMS, c.scenario, c.path)
		}
	}
	return nil
}

// intAttr reads an integer span attribute; a JSON round trip delivers
// numeric attributes as float64.
func intAttr(s *steadystate.Span, key string) int {
	v, ok := s.Attrs[key].(float64)
	if !ok {
		return 0
	}
	return int(v)
}
