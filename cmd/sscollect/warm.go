// warm.go implements sscollect -op warm: offline summarization of a
// warm sweep's JSONL result stream (cmd/sweep -warm -jsonl). Records are
// grouped into perturbation chains by name stem; each chain's head (the
// unperturbed base, solved cold) anchors the cold-versus-warm comparison
// of phase-1 pivots and solve time. Pivot columns are exact counters and
// deterministic; the millisecond columns are measurement.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/sweep"
)

// warmChain accumulates one perturbation chain's records in name order.
type warmChain struct {
	name    string
	members int
	// Head (chain base, cold) pivots and solve time.
	headPhase1 int
	headMS     float64
	// Totals across the non-head members (the warm-eligible solves).
	restPhase1 int
	restMS     float64
	warmStarts int
	saved      int
}

// warmSummary aggregates a warm sweep JSONL into per-chain cold-vs-warm
// deltas and a reject-reason histogram.
func warmSummary(path string, stdout io.Writer) error {
	if path == "" {
		return fmt.Errorf("-op warm needs -in (a result JSONL from sweep -warm -jsonl, \"-\": stdin)")
	}
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("open -in: %w", err)
		}
		defer f.Close()
		in = f
	}

	// Records arrive in completion order; collect and name-sort so the
	// summary is deterministic and each chain's head (-p00, sorting first)
	// is identified by position.
	var recs []sweep.Record
	scanner := bufio.NewScanner(in)
	scanner.Buffer(nil, 64<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec sweep.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("parse line %d: %w", lineNo, err)
		}
		recs = append(recs, rec)
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("read -in: %w", err)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })

	chains := make(map[string]*warmChain)
	var order []string
	rejects := make(map[string]int)
	warmStarts, warmRejects, failed := 0, 0, 0
	for _, rec := range recs {
		if rec.Error != "" || rec.Report == nil {
			failed++
			continue
		}
		rep := rec.Report
		key := sweep.ChainKey(rec.Name)
		ch := chains[key]
		if ch == nil {
			ch = &warmChain{name: key}
			chains[key] = ch
			order = append(order, key)
		}
		ch.members++
		if ch.members == 1 {
			ch.headPhase1 = rep.LPPhase1Pivots
			ch.headMS = rec.SolveMS
		} else {
			ch.restPhase1 += rep.LPPhase1Pivots
			ch.restMS += rec.SolveMS
		}
		if rep.WarmStart {
			ch.warmStarts++
			ch.saved += rep.WarmPivotsSaved
			warmStarts++
		}
		if rep.WarmReject != "" {
			rejects[rep.WarmReject]++
			warmRejects++
		}
	}

	fmt.Fprintf(stdout, "warm sweep summary: %d chain(s), %d scenario(s), %d failed\n",
		len(order), len(recs)-failed, failed)
	fmt.Fprintf(stdout, "warm_starts %d  warm_rejects %d\n\n", warmStarts, warmRejects)

	tw := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "chain\tmembers\twarm\thead_phase1\twarm_phase1\tpivots_saved\thead_ms\twarm_mean_ms\t")
	for _, key := range order {
		ch := chains[key]
		meanMS := 0.0
		if ch.members > 1 {
			meanMS = ch.restMS / float64(ch.members-1)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t\n",
			ch.name, ch.members, ch.warmStarts, ch.headPhase1, ch.restPhase1, ch.saved, ch.headMS, meanMS)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if len(rejects) > 0 {
		reasons := make([]string, 0, len(rejects))
		for r := range rejects {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		fmt.Fprintf(stdout, "\nreject reasons:\n")
		for _, r := range reasons {
			fmt.Fprintf(stdout, "  %s  %d\n", r, rejects[r])
		}
	}
	return nil
}
