// Command sweep runs the sharded scenario-sweep engine (internal/sweep)
// over a batch of scenario files: every scenario is solved through a
// shared, platform-deduplicated Solver session pool with bounded
// parallelism, and the outcomes are aggregated into one deterministic
// SweepReport (per-kind throughput table, LP cost counters, solve-time
// percentiles, failure list). Malformed or unsolvable scenarios land in
// the failure list; they never abort the sweep.
//
// Usage:
//
//	sweep -dir scenarios/                      # sweep every *.json in a directory
//	sweep -dir scenarios/ -glob 'tiers-*.json' # restrict by glob
//	sweep a.json b.json c.json                 # sweep explicit files
//	sweep -dir s/ -jobs 8 -timeout 30s         # 8 workers, 30s per solve
//	sweep -dir s/ -shard 0/4                   # this process solves shard 0 of 4
//	sweep -dir s/ -out report.json -jsonl log.jsonl
//	sweep -dir s/ -trace traces.jsonl          # span-structured solve traces, one line per scenario
//	sweep -dir chains/ -warm                   # warm-start each perturbation chain through a basis cache
//
// The end-to-end pipeline from a single seed (generate → sweep):
//
//	topogen -kind tiers -count 16 -seed 42 -spec -op scatter -out scenarios/
//	sweep -dir scenarios/ -jobs 8 -out report.json
//
// The warm-start pipeline over perturbation chains (generate chains of
// slightly-mutated platforms, then re-solve each chain incrementally —
// throughputs are bit-identical to a cold sweep, phase-1 pivots are not):
//
//	topogen -kind tiers -count 4 -perturb 8 -seed 42 -spec -op scatter -out chains/
//	sweep -dir chains/ -warm -out warm.json
//
// Everything in the report except its "timing" block is deterministic:
// -jobs 1 and -jobs 8 produce identical aggregates, and complementary
// -shard i/n runs union to the full result set. The JSONL stream (-jsonl)
// is the live view — one line per completed scenario, in completion
// order, each carrying the full solution report or the error.
//
// For a long-running serving counterpart of this batch engine — the same
// scenario files posted over HTTP with session reuse and a report cache —
// see cmd/solverd; its /sweep endpoint streams this same record format.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/sweep"
)

func main() {
	// Ctrl-C cancels the run context: workers stop, the partial report
	// and JSONL lines written so far survive.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool; factored out of main for testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir     = fs.String("dir", "", "directory of scenario JSON files to sweep")
		glob    = fs.String("glob", "*.json", "base-name glob selecting files within -dir")
		jobs    = fs.Int("jobs", 0, "max concurrent solves (0: GOMAXPROCS)")
		shard   = fs.String("shard", "", "solve shard i of n, as \"i/n\" (deterministic split of the name-sorted batch)")
		timeout = fs.Duration("timeout", 0, "per-solve deadline (0: none)")
		out     = fs.String("out", "", "write the aggregated SweepReport JSON here (default stdout)")
		jsonl   = fs.String("jsonl", "", "stream one JSON line per completed scenario to this file (\"-\": stderr)")
		trace   = fs.String("trace", "", "solve with tracing and stream one trace JSON line per solved scenario to this file (\"-\": stderr)")
		warm    = fs.Bool("warm", false, "warm-start perturbation chains: group scenarios by name stem (topogen -perturb suffixes), solve each chain in order through a shared basis cache")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var jobsList []sweep.Job
	if *dir != "" {
		loaded, err := sweep.LoadDir(*dir, *glob)
		if err != nil {
			return err
		}
		jobsList = loaded
	}
	jobsList = append(jobsList, sweep.LoadFiles(fs.Args())...)
	if len(jobsList) == 0 {
		return fmt.Errorf("no scenarios to sweep (use -dir and/or file arguments)")
	}

	opts := sweep.Options{Jobs: *jobs, SolveTimeout: *timeout, Warm: *warm}
	if *shard != "" {
		// Strict i/n parsing: trailing garbage must not silently run the
		// wrong split in a multi-process deployment.
		i, n, ok := strings.Cut(*shard, "/")
		var err1, err2 error
		if ok {
			opts.ShardIndex, err1 = strconv.Atoi(i)
			opts.ShardCount, err2 = strconv.Atoi(n)
		}
		if !ok || err1 != nil || err2 != nil {
			return fmt.Errorf("bad -shard %q (want \"i/n\")", *shard)
		}
		if opts.ShardCount < 1 || opts.ShardIndex < 0 || opts.ShardIndex >= opts.ShardCount {
			return fmt.Errorf("bad -shard %q: index must be in [0,n)", *shard)
		}
	}
	switch *jsonl {
	case "":
	case "-":
		opts.JSONL = stderr
	default:
		f, err := os.Create(*jsonl)
		if err != nil {
			return fmt.Errorf("create -jsonl: %w", err)
		}
		defer f.Close()
		opts.JSONL = f
	}
	switch *trace {
	case "":
	case "-":
		opts.Trace = stderr
	default:
		f, err := os.Create(*trace)
		if err != nil {
			return fmt.Errorf("create -trace: %w", err)
		}
		defer f.Close()
		opts.Trace = f
	}

	start := time.Now()
	report, runErr := sweep.Run(ctx, jobsList, opts)
	if report == nil {
		return runErr
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", *out, err)
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(stderr, "sweep: %d scenarios, %d solved, %d failed, %d platform(s), %d workers in %v\n",
		report.Scenarios, report.Solved, report.Failed, report.Platforms,
		workers, time.Since(start).Round(time.Millisecond))
	if runErr != nil {
		return fmt.Errorf("sweep interrupted (partial report written): %w", runErr)
	}
	return nil
}
