package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	steadystate "repro"
	"repro/internal/sweep"
)

const fixtureDir = "../../testdata/sweep"

func runOK(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(context.Background(), args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errOut.String())
	}
	return out.String(), errOut.String()
}

// TestSweepDirToFiles drives the full CLI path: sweep the fixture
// directory, write the aggregate and the JSONL stream to files, and check
// both parse and agree with each other.
func TestSweepDirToFiles(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.json")
	jsonlPath := filepath.Join(dir, "log.jsonl")
	_, errOut := runOK(t, "-dir", fixtureDir, "-jobs", "4", "-out", outPath, "-jsonl", jsonlPath)
	if !strings.Contains(errOut, "solved") {
		t.Errorf("missing summary on stderr: %q", errOut)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var report steadystate.SweepReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("aggregate does not parse: %v", err)
	}
	if report.Failed != 1 || report.Solved != report.Scenarios-1 {
		t.Errorf("solved/failed = %d/%d of %d, want exactly the malformed fixture failing",
			report.Solved, report.Failed, report.Scenarios)
	}
	if report.Timing == nil {
		t.Error("CLI aggregate should include the timing block")
	}

	lines, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(strings.TrimSpace(string(lines)), "\n") {
		var rec sweep.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("JSONL line does not parse: %v (%q)", err, line)
		}
		n++
	}
	if n != report.Scenarios {
		t.Errorf("JSONL has %d lines for %d scenarios", n, report.Scenarios)
	}
}

// TestSweepStdout: without -out the aggregate goes to stdout.
func TestSweepStdout(t *testing.T) {
	out, _ := runOK(t, "-dir", fixtureDir, "-glob", "fig6-*.json", "-jobs", "2")
	var report steadystate.SweepReport
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("stdout is not a SweepReport: %v", err)
	}
	if report.Scenarios != 3 || report.Failed != 0 {
		t.Errorf("glob sweep saw %d scenarios (%d failed), want 3 clean fig6 solves",
			report.Scenarios, report.Failed)
	}
}

// TestSweepExplicitFiles: positional file arguments join the batch.
func TestSweepExplicitFiles(t *testing.T) {
	out, _ := runOK(t, filepath.Join(fixtureDir, "fig6-reduce.json"))
	var report steadystate.SweepReport
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatal(err)
	}
	if report.Solved != 1 {
		t.Errorf("solved = %d, want 1", report.Solved)
	}
}

// TestSweepShardFlag: a shard run is labeled and strictly smaller than
// the batch.
func TestSweepShardFlag(t *testing.T) {
	out, _ := runOK(t, "-dir", fixtureDir, "-shard", "0/2")
	var report steadystate.SweepReport
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatal(err)
	}
	if report.Shard != "0/2" {
		t.Errorf("shard label = %q, want 0/2", report.Shard)
	}
	if report.Scenarios == 0 || report.Scenarios >= 8 {
		t.Errorf("shard 0/2 covers %d scenarios, want a strict subset of 8", report.Scenarios)
	}
}

func TestSweepErrors(t *testing.T) {
	cases := [][]string{
		{},                         // no inputs
		{"-dir", "does-not-exist"}, // unlistable dir
		{"-dir", fixtureDir, "-shard", "nope"},
		{"-dir", fixtureDir, "-shard", "2/2"},
		{"-dir", fixtureDir, "-shard", "-1/2"},
		{"-dir", fixtureDir, "-shard", "0/2/4"}, // trailing garbage
		{"-dir", fixtureDir, "-shard", "1/2x"},
		{"-dir", fixtureDir, "-shard", "1/"},
		{"-dir", fixtureDir, "-glob", "[bad"},
		{"-badflag"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
