// Command sslint runs the repository's static-analysis suite: seven
// analyzers mechanizing the invariants the steady-state stack's
// guarantees rest on — exact rational arithmetic in the LP path
// (ratfloat), no map-iteration order in observable output
// (mapdeterminism), contexts threaded into every solver loop (ctxflow),
// the fragment contract for shared-capacity LPs (fragmentcontract),
// stable serving-layer wire error codes (errcode), tracers minted only
// at the solve root (obsflow), and doc comments on every exported
// identifier (exporteddoc).
//
// Usage:
//
//	sslint [-list] [-checks name,name] packages...
//
// Packages are go-tool patterns (typically ./...). Findings print one
// per line as file:line:col: message (analyzer); any finding makes the
// command exit non-zero — CI's lint job is exactly `sslint ./...`.
//
// A finding is suppressed by an end-of-line (or preceding-line) comment
//
//	//sslint:allow <reason>
//
// whose reason is mandatory: a bare //sslint:allow is itself a finding.
// Test files are not analyzed; fixtures and golden writers bend the
// invariants on purpose.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/sslint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the suite and returns the process exit code: 0 clean,
// 1 findings. Factored out of main for testability.
func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("sslint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	suite := sslint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	if *checks != "" {
		named, ok := sslint.ByName(strings.Split(*checks, ","))
		if !ok {
			return 2, fmt.Errorf("unknown analyzer in -checks=%s (try -list)", *checks)
		}
		suite = named
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		return 2, fmt.Errorf("no packages given (try sslint ./...)")
	}
	wd, err := os.Getwd()
	if err != nil {
		return 2, err
	}
	diags, err := analysis.Run(wd, patterns, suite)
	if err != nil {
		return 2, err
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "sslint: %d finding(s)\n", len(diags))
		return 1, nil
	}
	return 0, nil
}
