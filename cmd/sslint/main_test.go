package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tempOut returns a file to capture run's output, plus a reader.
func tempOut(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "sslint-out")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// readBack returns everything written to f.
func readBack(t *testing.T, f *os.File) string {
	t.Helper()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSuiteCleanOnRepo is the driver-level smoke test: the full suite
// over the whole module must come back clean — every real violation is
// either fixed or carries a reasoned //sslint:allow.
func TestSuiteCleanOnRepo(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(root)
	out := tempOut(t)
	code, err := run([]string{"./..."}, out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("suite found violations in the repository (exit %d):\n%s", code, readBack(t, out))
	}
}

// TestListNamesEveryAnalyzer checks -list prints the seven analyzers.
func TestListNamesEveryAnalyzer(t *testing.T) {
	out := tempOut(t)
	code, err := run([]string{"-list"}, out)
	if err != nil || code != 0 {
		t.Fatalf("run -list: code %d, err %v", code, err)
	}
	got := readBack(t, out)
	for _, name := range []string{"ctxflow", "errcode", "exporteddoc", "fragmentcontract", "mapdeterminism", "obsflow", "ratfloat"} {
		if !strings.Contains(got, name) {
			t.Errorf("-list output missing %s:\n%s", name, got)
		}
	}
}

// TestUnknownCheckRejected checks an unknown -checks name is a usage
// error, not a silent no-op.
func TestUnknownCheckRejected(t *testing.T) {
	out := tempOut(t)
	if code, err := run([]string{"-checks", "nosuch", "./..."}, out); err == nil || code != 2 {
		t.Fatalf("run -checks=nosuch: code %d, err %v, want code 2 with error", code, err)
	}
}
