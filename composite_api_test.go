// Tests for concurrent collectives through the unified API: bit-exact
// degeneration of single-member composites to the plain per-kind solvers,
// reduce-scatter semantics and golden values, merged-schedule validity,
// and the composite Spec/Scenario/Report serialization.
package steadystate_test

import (
	"context"
	"encoding/json"
	"math/big"
	"reflect"
	"testing"

	steadystate "repro"
)

// TestCompositeSingleMemberBitExact: a composite of one member with weight
// 1 must degenerate to the plain solver bit-exactly — same throughput and
// same period — for every base kind. The composite assembles the same LP
// phase by phase, so the simplex walks the same pivots.
func TestCompositeSingleMemberBitExact(t *testing.T) {
	ctx := context.Background()
	p2, src, targets := steadystate.PaperFig2()
	p6, order, target := steadystate.PaperFig6()
	chain := steadystate.Chain(3, steadystate.R(1, 2), steadystate.R(1, 1))
	chainOrder := chain.Participants()

	cases := []struct {
		name string
		p    *steadystate.Platform
		spec steadystate.Spec
		opts []steadystate.SolveOption
	}{
		{"scatter", p2, steadystate.ScatterSpec(src, targets...), nil},
		{"gossip", p6, steadystate.GossipSpec(order, order), nil},
		{"reduce", p6, steadystate.ReduceSpec(order, target), nil},
		{"gather", chain, steadystate.GatherSpec(chainOrder, chainOrder[0]),
			[]steadystate.SolveOption{steadystate.WithBlockSize(steadystate.R(2, 1))}},
		{"prefix", p6, steadystate.PrefixSpec(order...), nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plain, err := steadystate.Solve(ctx, c.p, c.spec, c.opts...)
			if err != nil {
				t.Fatalf("plain Solve: %v", err)
			}
			comp, err := steadystate.Solve(ctx, c.p,
				steadystate.CompositeSpec([]steadystate.Spec{c.spec}, nil), c.opts...)
			if err != nil {
				t.Fatalf("composite Solve: %v", err)
			}
			if comp.Throughput().Cmp(plain.Throughput()) != 0 {
				t.Errorf("TP = %s, want %s", comp.Throughput().RatString(), plain.Throughput().RatString())
			}
			if comp.Period().Cmp(plain.Period()) != 0 {
				t.Errorf("period = %s, want %s", comp.Period(), plain.Period())
			}
			if err := comp.Verify(); err != nil {
				t.Errorf("Verify: %v", err)
			}
			members := comp.(steadystate.Concurrent).Members()
			if len(members) != 1 {
				t.Fatalf("got %d members, want 1", len(members))
			}
			if members[0].Kind() != c.spec.Kind {
				t.Errorf("member kind = %q, want %q", members[0].Kind(), c.spec.Kind)
			}
			if members[0].Throughput().Cmp(plain.Throughput()) != 0 {
				t.Errorf("member TP = %s, want %s",
					members[0].Throughput().RatString(), plain.Throughput().RatString())
			}
		})
	}
}

// TestReduceScatterTwoParticipantsEqualsReduce: on a symmetric link-bound
// two-node platform the two member reduces use opposite link directions
// and distinct compute nodes, so the concurrent common rate equals the
// plain reduce throughput bit-exactly. (On compute-bound platforms the
// standalone optimum spreads tasks over both nodes and concurrency must
// halve the rate instead.)
func TestReduceScatterTwoParticipantsEqualsReduce(t *testing.T) {
	p := steadystate.NewPlatform()
	a := p.AddNode("a", steadystate.R(1, 1))
	b := p.AddNode("b", steadystate.R(1, 1))
	p.AddLink(a, b, steadystate.R(1, 1))

	plain, err := steadystate.Solve(context.Background(), p,
		steadystate.ReduceSpec([]steadystate.NodeID{a, b}, a))
	if err != nil {
		t.Fatalf("reduce Solve: %v", err)
	}
	rs, err := steadystate.Solve(context.Background(), p, steadystate.ReduceScatterSpec(a, b))
	if err != nil {
		t.Fatalf("reduce-scatter Solve: %v", err)
	}
	if rs.Throughput().Cmp(plain.Throughput()) != 0 {
		t.Errorf("reduce-scatter TP = %s, want plain reduce %s",
			rs.Throughput().RatString(), plain.Throughput().RatString())
	}
	if err := rs.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	sched, err := rs.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("merged schedule invalid: %v", err)
	}
}

// TestReduceScatterGoldenFig6: golden values on the paper's Figure 6
// triangle — three concurrent reduces saturate the triangle at a common
// rate of 1/4 (a single reduce alone achieves 1).
func TestReduceScatterGoldenFig6(t *testing.T) {
	p, order, _ := steadystate.PaperFig6()
	sol, err := steadystate.Solve(context.Background(), p, steadystate.ReduceScatterSpec(order...))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ratEq(t, sol.Throughput(), "1/4", "fig6 reduce-scatter TP")
	if got := sol.Period().String(); got != "4" {
		t.Errorf("period = %s, want 4", got)
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	for i, m := range sol.(steadystate.Concurrent).Members() {
		ratEq(t, m.Throughput(), "1/4", "member TP")
		if m.Spec().Target != order[i] {
			t.Errorf("member %d targets node %d, want %d", i, m.Spec().Target, order[i])
		}
		if err := m.Verify(); err != nil {
			t.Errorf("member %d Verify: %v", i, err)
		}
	}
	sched, err := sol.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("merged schedule invalid: %v", err)
	}
	rep, err := sol.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if rep.Kind != steadystate.KindReduceScatter || len(rep.Members) != 3 {
		t.Errorf("report = %+v, want reducescatter with 3 members", rep)
	}
	for _, mr := range rep.Members {
		if mr.Throughput != "1/4" || mr.Weight != "1" {
			t.Errorf("member report = %+v, want TP 1/4 weight 1", mr)
		}
	}
}

// TestReduceScatterGoldenTiers: golden values for a reduce-scatter over
// the first three participants of the seed-42 Tiers platform.
func TestReduceScatterGoldenTiers(t *testing.T) {
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(42))
	order := p.Participants()[:3]
	sol, err := steadystate.Solve(context.Background(), p, steadystate.ReduceScatterSpec(order...))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ratEq(t, sol.Throughput(), "695/283", "tiers reduce-scatter TP")
	if got := sol.Period().String(); got != "283" {
		t.Errorf("period = %s, want 283", got)
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	sched, err := sol.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("merged schedule invalid: %v", err)
	}
}

// TestCompositeWeightsScaleMembers: a 2:1 weighted composite of two
// scatters delivers member rates in exactly that proportion.
func TestCompositeWeightsScaleMembers(t *testing.T) {
	p, order, _ := steadystate.PaperFig6()
	specs := []steadystate.Spec{
		steadystate.ScatterSpec(order[0], order[1]),
		steadystate.ScatterSpec(order[1], order[2]),
	}
	sol, err := steadystate.Solve(context.Background(), p,
		steadystate.CompositeSpec(specs, []steadystate.Rat{steadystate.R(2, 1), steadystate.R(1, 1)}))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	members := sol.(steadystate.Concurrent).Members()
	want := new(big.Rat).Mul(big.NewRat(2, 1), sol.Throughput())
	if members[0].Throughput().Cmp(want) != 0 {
		t.Errorf("member 0 TP = %s, want 2·TP = %s",
			members[0].Throughput().RatString(), want.RatString())
	}
	if members[1].Throughput().Cmp(sol.Throughput()) != 0 {
		t.Errorf("member 1 TP = %s, want TP = %s",
			members[1].Throughput().RatString(), sol.Throughput().RatString())
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// TestCompositeSpecJSONRoundTrip: composite and reduce-scatter specs (and
// scenarios embedding them) survive JSON round trips, with weights as
// exact rational strings.
func TestCompositeSpecJSONRoundTrip(t *testing.T) {
	p, order, target := steadystate.PaperFig6()
	spec := steadystate.CompositeSpec(
		[]steadystate.Spec{
			steadystate.ReduceSpec(order, target),
			steadystate.ScatterSpec(order[0], order[1:]...),
		},
		[]steadystate.Rat{steadystate.R(1, 3), steadystate.R(2, 1)},
	)
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back steadystate.Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Errorf("composite spec round trip changed:\n%+v\nvs\n%+v", back, spec)
	}

	rsSpec := steadystate.ReduceScatterSpec(order...)
	data, err = json.Marshal(rsSpec)
	if err != nil {
		t.Fatalf("marshal rs: %v", err)
	}
	var rsBack steadystate.Spec
	if err := json.Unmarshal(data, &rsBack); err != nil {
		t.Fatalf("unmarshal rs: %v", err)
	}
	if !reflect.DeepEqual(rsBack, rsSpec) {
		t.Errorf("reduce-scatter spec round trip changed: %+v vs %+v", rsBack, rsSpec)
	}

	// A scenario carrying a composite spec solves after the round trip,
	// and its serialization is compact at every nesting level.
	sc := &steadystate.Scenario{Platform: p, Spec: rsSpec}
	data, err = json.Marshal(sc)
	if err != nil {
		t.Fatalf("scenario marshal: %v", err)
	}
	direct, err := sc.MarshalJSON()
	if err != nil {
		t.Fatalf("scenario MarshalJSON: %v", err)
	}
	if string(direct) != string(data) {
		t.Errorf("scenario top-level and nested serialization disagree:\n%s\nvs\n%s", direct, data)
	}
	var scBack steadystate.Scenario
	if err := json.Unmarshal(data, &scBack); err != nil {
		t.Fatalf("scenario unmarshal: %v", err)
	}
	sol, err := scBack.Solve(context.Background())
	if err != nil {
		t.Fatalf("round-tripped scenario solve: %v", err)
	}
	ratEq(t, sol.Throughput(), "1/4", "round-tripped reduce-scatter TP")
}

// TestCompositeErrorPaths: malformed composite specs fail loudly.
func TestCompositeErrorPaths(t *testing.T) {
	ctx := context.Background()
	p, order, target := steadystate.PaperFig6()
	red := steadystate.ReduceSpec(order, target)

	if _, err := steadystate.Solve(ctx, p, steadystate.CompositeSpec(nil, nil)); err == nil {
		t.Error("empty composite should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.CompositeSpec(
		[]steadystate.Spec{red}, []steadystate.Rat{steadystate.R(1, 1), steadystate.R(1, 1)})); err == nil {
		t.Error("weight/member length mismatch should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.CompositeSpec(
		[]steadystate.Spec{red}, []steadystate.Rat{steadystate.R(0, 1)})); err == nil {
		t.Error("zero weight should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.CompositeSpec(
		[]steadystate.Spec{red}, []steadystate.Rat{nil})); err == nil {
		t.Error("nil weight should fail")
	}
	nested := steadystate.CompositeSpec([]steadystate.Spec{red}, nil)
	if _, err := steadystate.Solve(ctx, p, steadystate.CompositeSpec(
		[]steadystate.Spec{nested}, nil)); err == nil {
		t.Error("nested composite should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.ReduceScatterSpec(order[0])); err == nil {
		t.Error("single-participant reduce-scatter should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.ReduceScatterSpec(order...),
		steadystate.WithFixedPeriod(big.NewInt(10))); err == nil {
		t.Error("WithFixedPeriod on reduce-scatter should fail")
	}
	sol, err := steadystate.Solve(ctx, p, steadystate.ReduceScatterSpec(order...))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	m, err := sol.SimModel()
	if err != nil {
		t.Fatalf("reduce-scatter SimModel: %v", err)
	}
	res, err := steadystate.Simulate(m, 40)
	if err != nil {
		t.Fatalf("reduce-scatter Simulate: %v", err)
	}
	// Each of the N reduce members must deliver, and none may beat its
	// member bound weight·TP·K (Lemma 1 per member).
	for i := range order {
		delivered := res.MinDeliveredPrefix(steadystate.SimMemberPrefix(i))
		if delivered.Sign() <= 0 {
			t.Errorf("member %d delivered nothing", i)
		}
		k := new(big.Int).Mul(big.NewInt(40), m.Period)
		memberTP := sol.(steadystate.Concurrent).Members()[i].Throughput()
		bound := new(big.Rat).Mul(memberTP, new(big.Rat).SetInt(k))
		if new(big.Rat).SetInt(delivered).Cmp(bound) > 0 {
			t.Errorf("member %d delivered %s, above bound %s", i, delivered, bound.RatString())
		}
	}
}
