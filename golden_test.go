// Golden-file tests: the on-disk platform format must stay stable (the
// fixtures in testdata/ were produced by cmd/topogen) and the canned paper
// platforms must keep serializing to the same structures.
package steadystate_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	steadystate "repro"
)

func loadFixture(t *testing.T, name string) *steadystate.Platform {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	p := steadystate.NewPlatform()
	if err := json.Unmarshal(data, p); err != nil {
		t.Fatalf("parse fixture %s: %v", name, err)
	}
	return p
}

func TestGoldenFig9Fixture(t *testing.T) {
	p := loadFixture(t, "fig9.json")
	want, _, _ := steadystate.PaperFig9()
	if p.NumNodes() != want.NumNodes() || p.NumEdges() != want.NumEdges() {
		t.Fatalf("fixture drifted: %d/%d nodes, %d/%d edges",
			p.NumNodes(), want.NumNodes(), p.NumEdges(), want.NumEdges())
	}
	// Node-by-node equality: names, speeds, router flags, edge costs.
	for _, n := range want.Nodes() {
		id, ok := p.Lookup(n.Name)
		if !ok {
			t.Fatalf("fixture lost node %s", n.Name)
		}
		got := p.Node(id)
		if got.Router != n.Router || got.Speed.Cmp(n.Speed) != 0 {
			t.Errorf("node %s drifted: router=%v speed=%s", n.Name, got.Router, got.Speed.RatString())
		}
	}
	for _, e := range want.Edges() {
		from := p.MustLookup(want.Node(e.From).Name)
		to := p.MustLookup(want.Node(e.To).Name)
		ge, ok := p.FindEdge(from, to)
		if !ok || ge.Cost.Cmp(e.Cost) != 0 {
			t.Errorf("edge %s→%s drifted", want.Node(e.From).Name, want.Node(e.To).Name)
		}
	}
}

func TestGoldenTiersFixtureSolves(t *testing.T) {
	p := loadFixture(t, "tiers42.json")
	if err := p.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	parts := p.Participants()
	sol, err := steadystate.SolveScatter(p, parts[0], parts[1:3])
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if sol.Throughput().Sign() <= 0 {
		t.Error("fixture scatter TP must be positive")
	}
	// Round trip: marshal and re-parse must preserve solvability.
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q := steadystate.NewPlatform()
	if err := json.Unmarshal(data, q); err != nil {
		t.Fatal(err)
	}
	sol2, err := steadystate.SolveScatter(q, parts[0], parts[1:3])
	if err != nil {
		t.Fatalf("re-parsed solve: %v", err)
	}
	if sol.Throughput().Cmp(sol2.Throughput()) != 0 {
		t.Errorf("round trip changed TP: %s vs %s",
			sol.Throughput().RatString(), sol2.Throughput().RatString())
	}
}
