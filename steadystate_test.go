package steadystate_test

import (
	"math/big"
	"testing"

	steadystate "repro"
)

func TestPublicScatterEndToEnd(t *testing.T) {
	p, src, targets := steadystate.PaperFig2()
	sol, err := steadystate.SolveScatter(p, src, targets)
	if err != nil {
		t.Fatalf("SolveScatter: %v", err)
	}
	if sol.Throughput().RatString() != "1/2" {
		t.Errorf("TP = %s, want 1/2", sol.Throughput().RatString())
	}
	sched, err := steadystate.ScatterSchedule(sol)
	if err != nil {
		t.Fatalf("ScatterSchedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("schedule: %v", err)
	}
	res, err := steadystate.Simulate(steadystate.ScatterSimModel(sol), 200)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.MinDelivered().Sign() <= 0 {
		t.Error("simulation delivered nothing")
	}
}

func TestPublicReduceEndToEnd(t *testing.T) {
	p, order, target := steadystate.PaperFig6()
	sol, err := steadystate.SolveReduce(p, order, target)
	if err != nil {
		t.Fatalf("SolveReduce: %v", err)
	}
	if sol.Throughput().RatString() != "1" {
		t.Errorf("TP = %s, want 1", sol.Throughput().RatString())
	}
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		t.Fatalf("ExtractTrees: %v", err)
	}
	if err := steadystate.VerifyTreeDecomposition(app, trees); err != nil {
		t.Errorf("decomposition: %v", err)
	}
	sched, err := steadystate.ReduceSchedule(app, trees, nil)
	if err != nil {
		t.Fatalf("ReduceSchedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("schedule: %v", err)
	}
	plan, err := steadystate.ApproximateFixedPeriod(app, trees, big.NewInt(50))
	if err != nil {
		t.Fatalf("ApproximateFixedPeriod: %v", err)
	}
	if plan.Loss.Sign() < 0 {
		t.Error("negative loss")
	}
}

func TestPublicGossipAndPrefix(t *testing.T) {
	p := steadystate.Ring(4, steadystate.R(1, 2), steadystate.R(1, 1))
	var nodes []steadystate.NodeID
	for _, n := range p.Nodes() {
		nodes = append(nodes, n.ID)
	}
	gsol, err := steadystate.SolveGossip(p, nodes, nodes)
	if err != nil {
		t.Fatalf("SolveGossip: %v", err)
	}
	if gsol.Throughput().Sign() <= 0 {
		t.Error("gossip TP must be positive")
	}
	if _, err := steadystate.GossipSchedule(gsol); err != nil {
		t.Errorf("GossipSchedule: %v", err)
	}
	psol, err := steadystate.SolvePrefix(p, nodes)
	if err != nil {
		t.Fatalf("SolvePrefix: %v", err)
	}
	if psol.Throughput().Sign() <= 0 {
		t.Error("prefix TP must be positive")
	}
}

func TestPublicBaselinesAndTopologies(t *testing.T) {
	p := steadystate.Star(3, steadystate.R(1, 1), steadystate.R(1, 1))
	center := p.MustLookup("center")
	var leaves []steadystate.NodeID
	for _, n := range p.Nodes() {
		if n.ID != center {
			leaves = append(leaves, n.ID)
		}
	}
	base, err := steadystate.SinglePathScatter(p, center, leaves)
	if err != nil {
		t.Fatalf("SinglePathScatter: %v", err)
	}
	sol, err := steadystate.SolveScatter(p, center, leaves)
	if err != nil {
		t.Fatalf("SolveScatter: %v", err)
	}
	if sol.Throughput().Cmp(base.Throughput) < 0 {
		t.Error("LP below baseline")
	}

	rp, err := steadystate.NewReduceProblem(p, append([]steadystate.NodeID{center}, leaves...), center)
	if err != nil {
		t.Fatalf("NewReduceProblem: %v", err)
	}
	if _, err := steadystate.FlatReduceTree(rp); err != nil {
		t.Errorf("FlatReduceTree: %v", err)
	}
	if _, err := steadystate.BinaryReduceTree(rp); err != nil {
		t.Errorf("BinaryReduceTree: %v", err)
	}

	tiers := steadystate.Tiers(steadystate.DefaultTiersConfig(5))
	if err := tiers.Validate(); err != nil {
		t.Errorf("tiers: %v", err)
	}
	if r, err := steadystate.ParseRat("2/9"); err != nil || r.RatString() != "2/9" {
		t.Errorf("ParseRat: %v %v", r, err)
	}
}
